// Scheduler fairness demo (paper §5.3, Figure 3): eight processes each
// read a 32 MB file concurrently. Under the Elevator (bufqdisksort) the
// reader whose blocks sit just ahead of the head monopolizes the disk:
// completion times form a staircase. Under N-step CSCAN everyone
// finishes together — much later. Run with:
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"nfstricks"
)

func main() {
	fmt.Println("8 concurrent readers on ide1 (4 MB files, scaled from the paper's 32 MB)")
	for _, sched := range []string{"elevator", "ncscan"} {
		tb, err := nfstricks.NewTestbed(nfstricks.Options{
			Seed:      11,
			Disk:      nfstricks.IDE,
			Scheduler: sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := nfstricks.CreateFileSet(tb.FS, 8); err != nil {
			log.Fatal(err)
		}
		res, err := nfstricks.RunLocalReaders(tb, nfstricks.FilesFor(8))
		tb.K.Shutdown()
		if err != nil {
			log.Fatal(err)
		}
		sorted := append([]time.Duration(nil), res.PerReader...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		maxSec := sorted[len(sorted)-1].Seconds()
		fmt.Printf("\n%s (total %.1f MB/s):\n", sched, res.ThroughputMBps())
		for i, d := range sorted {
			bar := strings.Repeat("#", 1+int(50*d.Seconds()/maxSec))
			fmt.Printf("  reader %d done %7.3fs %s\n", i+1, d.Seconds(), bar)
		}
		ratio := sorted[len(sorted)-1].Seconds() / sorted[0].Seconds()
		fmt.Printf("  slowest/fastest = %.1fx\n", ratio)
	}
	fmt.Println("\nLesson: the Elevator is fast because it is unfair; N-CSCAN is fair")
	fmt.Println("at half the bandwidth. Know which one your kernel is running.")
}
