// Quickstart: assemble the paper's testbed, export a file over
// simulated NFS/UDP, and read it with two different server read-ahead
// heuristics. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nfstricks"
	"nfstricks/internal/nfsserver"
)

func main() {
	fmt.Println("nfstricks quickstart: 32 MB sequential read over simulated NFS/UDP")
	for _, heuristic := range []nfstricks.Heuristic{
		nfstricks.Default{},
		nfstricks.SlowDown{},
		nfstricks.Always{},
	} {
		tb, err := nfstricks.NewTestbed(nfstricks.Options{
			Seed: 42,
			Disk: nfstricks.IDE,
			Server: nfsserver.Config{
				Heuristic: heuristic,
				Table:     nfstricks.ImprovedNfsheur(),
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tb.FS.Create("data", 32<<20); err != nil {
			log.Fatal(err)
		}
		if err := tb.Start(); err != nil {
			log.Fatal(err)
		}
		res, err := nfstricks.RunNFSReaders(tb, []string{"data"})
		tb.K.Shutdown()
		if err != nil {
			log.Fatal(err)
		}
		st := tb.Server.Stats()
		fmt.Printf("  %-9s %6.1f MB/s  (%d READs, %d observed out of order)\n",
			heuristic.Name(), res.ThroughputMBps(), st.Reads, st.ReorderedReads)
	}
	fmt.Println("\nNext: go run ./cmd/nfsbench -list")
}
