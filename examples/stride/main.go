// Stride reader demo (paper §7, Figure 8): a single process reads a
// file as s interleaved sequential sub-streams — blocks 0, N/2, 1,
// N/2+1, ... To the default sequentiality heuristic this looks random
// and read-ahead shuts off; the cursor heuristic tracks each sub-stream
// separately. Run with:
//
//	go run ./examples/stride
package main

import (
	"fmt"
	"log"

	"nfstricks"
	"nfstricks/internal/nfsserver"
)

func main() {
	fmt.Println("Stride reads of a 32 MB file over simulated NFS/UDP (ide1)")
	fmt.Printf("%-8s %-16s %-16s %-8s\n", "stride", "default MB/s", "cursor MB/s", "gain")
	for _, s := range []int{2, 4, 8} {
		var rates [2]float64
		for i, heuristic := range []nfstricks.Heuristic{
			nfstricks.Default{},
			&nfstricks.CursorHeuristic{},
		} {
			tb, err := nfstricks.NewTestbed(nfstricks.Options{
				Seed: 3,
				Disk: nfstricks.IDE,
				Server: nfsserver.Config{
					Heuristic: heuristic,
					Table:     nfstricks.ImprovedNfsheur(),
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := tb.FS.Create("stride", 32<<20); err != nil {
				log.Fatal(err)
			}
			if err := tb.Start(); err != nil {
				log.Fatal(err)
			}
			res, err := nfstricks.RunNFSStrideReader(tb, "stride", s)
			tb.K.Shutdown()
			if err != nil {
				log.Fatal(err)
			}
			rates[i] = res.ThroughputMBps()
		}
		fmt.Printf("%-8d %-16.2f %-16.2f +%.0f%%\n",
			s, rates[0], rates[1], 100*(rates[1]/rates[0]-1))
	}
	fmt.Println("\nPaper's Table 1 (ide1): default 7.66/7.83/5.26, cursor 11.49/14.15/12.66")
}
