// Live server demo: the same XDR/RPC/NFS stack the simulator uses,
// served over real loopback sockets. A SlowDown-equipped server is
// started on 127.0.0.1, then read sequentially over TCP and UDP, and in
// a 2-stride pattern against a cursor-equipped server — watching the
// server-side seqcount respond. Run with:
//
//	go run ./examples/liveserver
package main

import (
	"fmt"
	"log"
	"time"

	"nfstricks"
)

const fileSize = 2 << 20

func main() {
	fs := nfstricks.NewLiveFS()
	data := make([]byte, fileSize)
	for i := range data {
		data[i] = byte(i * 131)
	}
	fs.Create(nfstricks.LiveRootFH, "demo", data)

	svc := nfstricks.NewLiveService(fs, nfstricks.SlowDown{}, nil)
	srv, err := nfstricks.ServeLive("127.0.0.1:0", svc)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("live NFS-ish server on %s (real UDP+TCP sockets)\n\n", srv.Addr())

	for _, network := range []string{"tcp", "udp"} {
		c, err := nfstricks.DialLive(network, srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		fh, size, err := c.Lookup(nfstricks.LiveRootFH, "demo")
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		var total int
		for off := uint64(0); off < uint64(size); off += 8192 {
			blk, _, err := c.Read(fh, off, 8192)
			if err != nil {
				log.Fatal(err)
			}
			total += len(blk)
		}
		elapsed := time.Since(start)
		c.Close()
		fmt.Printf("%-4s sequential read: %d KB in %v (%.1f MB/s), server maxSeqCount=%d\n",
			network, total/1024, elapsed.Round(time.Millisecond),
			float64(total)/1e6/elapsed.Seconds(), svc.Stats().MaxSeqCount)
	}

	// Stride read against a cursor-equipped server.
	cursorSvc := nfstricks.NewLiveService(fs, &nfstricks.CursorHeuristic{}, nil)
	srv2, err := nfstricks.ServeLive("127.0.0.1:0", cursorSvc)
	if err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	c, err := nfstricks.DialLive("tcp", srv2.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fh, size, err := c.Lookup(nfstricks.LiveRootFH, "demo")
	if err != nil {
		log.Fatal(err)
	}
	half := uint64(size) / 2
	for i := uint64(0); i < half/8192; i++ {
		if _, _, err := c.Read(fh, i*8192, 8192); err != nil {
			log.Fatal(err)
		}
		if _, _, err := c.Read(fh, half+i*8192, 8192); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\n2-stride read with cursor heuristic: server maxSeqCount=%d\n",
		cursorSvc.Stats().MaxSeqCount)
	fmt.Println("(the default heuristic would have pinned seqcount at 1 for this pattern)")
}
