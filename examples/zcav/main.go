// ZCAV demo (paper §5.1): the same local benchmark run on the outermost
// and innermost quarter of each drive. Identical software, identical
// workload — different numbers, purely because outer tracks hold more
// sectors. Run with:
//
//	go run ./examples/zcav
package main

import (
	"fmt"
	"log"

	"nfstricks"
)

func main() {
	fmt.Println("The ZCAV trap: one benchmark, four partitions (8 readers, 32 MB total)")
	fmt.Printf("%-8s %-12s %-14s\n", "disk", "partition", "throughput")
	for _, kind := range []nfstricks.DiskKind{nfstricks.IDE, nfstricks.SCSI} {
		for _, part := range []int{1, 4} {
			tb, err := nfstricks.NewTestbed(nfstricks.Options{
				Seed:      7,
				Disk:      kind,
				Partition: part,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := nfstricks.CreateFileSet(tb.FS, 8); err != nil {
				log.Fatal(err)
			}
			res, err := nfstricks.RunLocalReaders(tb, nfstricks.FilesFor(8))
			tb.K.Shutdown()
			if err != nil {
				log.Fatal(err)
			}
			where := "outermost"
			if part == 4 {
				where = "innermost"
			}
			fmt.Printf("%-8s %d (%s) %6.1f MB/s\n", kind, part, where, res.ThroughputMBps())
		}
	}
	fmt.Println("\nLesson: confine benchmarks to a small slice of the disk, or ZCAV")
	fmt.Println("variation will swamp the effect you are trying to measure.")
}
