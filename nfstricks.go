// Package nfstricks reproduces "NFS Tricks and Benchmarking Traps"
// (Daniel Ellard and Margo Seltzer, FREENIX track, USENIX 2003): the
// SlowDown and cursor-based NFS read-ahead heuristics, the nfsheur
// table fix, and the paper's catalogue of benchmarking traps (ZCAV,
// tagged command queues, disk scheduler fairness, UDP vs TCP), all on a
// deterministic discrete-event simulation of the paper's testbed.
//
// The package is a facade over the implementation packages:
//
//   - Heuristics (the paper's contribution): [Default], [SlowDown],
//     [Always], [CursorHeuristic] and the per-file [HeurState], plus the
//     [NfsheurTable] that caches heuristic state on a stateless server.
//   - Testbed: [NewTestbed] assembles the paper's server, disks,
//     network and client; [Options] exposes every knob the paper turns.
//   - Experiments: [Experiments] and [LookupExperiment] run the
//     reproductions of every figure and table, returning formatted
//     [BenchResult] values ("nfsbench -exp fig1" from the CLI).
//   - Live mode: [NewLiveFS], [NewLiveService], [ServeLive] and
//     [DialLive] run the same protocol stack over real loopback
//     sockets.
//   - Write path: [NewLiveServiceGather] serves UNSTABLE WRITE +
//     COMMIT through a server-side write-gathering engine
//     ([WriteGatherConfig]); [LiveWriteBehind] is the matching
//     biod-style client pipeline with verifier-change recovery.
//   - Trace capture & replay: [ServeLiveTraced] records the live
//     server's request stream to a .nft trace file;
//     [AnalyzeTraceFile] runs the paper's §6 analysis on it and
//     [ReplayTraceFile] plays it back as a benchmark workload.
//   - Fault path: [ServeLiveFaulty] injects seeded wire faults on the
//     live transports, [DialLiveRetry] adds the client retransmission
//     layer, and [DRCConfig] switches on the server's duplicate
//     request cache ("nfsbench -exp fault-path").
//   - Observability: [NewObsRegistry] plus [ServeLiveObserved] time
//     every request through per-stage spans, and [ServeObsAdmin]
//     exposes the registry live on /metrics, /statsz and
//     /debug/pprof ("nfsserve -admin :7070").
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	tb, _ := nfstricks.NewTestbed(nfstricks.Options{Disk: nfstricks.IDE})
//	tb.FS.Create("data", 8<<20)
//	tb.Start()
//	res, _ := nfstricks.RunNFSReaders(tb, []string{"data"})
//	fmt.Printf("%.1f MB/s\n", res.ThroughputMBps())
package nfstricks

import (
	"time"

	"nfstricks/internal/bench"
	"nfstricks/internal/cluster"
	"nfstricks/internal/disk"
	"nfstricks/internal/drc"
	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/nfstrace"
	"nfstricks/internal/obs"
	"nfstricks/internal/readahead"
	"nfstricks/internal/replay"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/testbed"
	"nfstricks/internal/tracefile"
	"nfstricks/internal/vfs"
	"nfstricks/internal/wgather"
	"nfstricks/internal/workload"
	"nfstricks/internal/zonefs"
)

// Sequentiality heuristics (paper §6-7).
type (
	// Heuristic maps observed read offsets to a sequentiality count.
	Heuristic = readahead.Heuristic
	// HeurState is the per-file-handle heuristic record.
	HeurState = readahead.State
	// Default is the FreeBSD 4.x heuristic: reset on any out-of-order
	// request.
	Default = readahead.Default
	// SlowDown is the paper's jitter-tolerant AIMD heuristic (§6.2).
	SlowDown = readahead.SlowDown
	// Always hard-wires maximum read-ahead (§6.1's upper bound).
	Always = readahead.Always
	// CursorHeuristic detects sequential sub-streams (strides, §7).
	CursorHeuristic = readahead.CursorHeuristic
)

// SeqMax is the OS-imposed ceiling on the sequentiality count (127).
const SeqMax = readahead.SeqMax

// The nfsheur table (paper §6.3).
type (
	// NfsheurTable caches per-file heuristic state on the server. It is
	// lock-striped (NfsheurParams.Shards) and safe for concurrent use.
	NfsheurTable = nfsheur.Table
	// NfsheurParams configures table geometry and shard count.
	NfsheurParams = nfsheur.Params
	// NfsheurStats is the table's hit/miss/ejection counters.
	NfsheurStats = nfsheur.Stats
)

// NewNfsheurTable builds a table with the given geometry.
func NewNfsheurTable(p NfsheurParams) *NfsheurTable { return nfsheur.New(p) }

// DefaultNfsheur is the FreeBSD 4.x table the paper found too small.
func DefaultNfsheur() NfsheurParams { return nfsheur.DefaultParams() }

// ImprovedNfsheur is the paper's enlarged table.
func ImprovedNfsheur() NfsheurParams { return nfsheur.ImprovedParams() }

// ScaledNfsheur is the live server's default: a GOMAXPROCS-sharded
// table so concurrent READs on distinct files never contend on a lock.
func ScaledNfsheur() NfsheurParams { return nfsheur.ScaledParams() }

// Testbed assembly (paper §4).
type (
	// Testbed is the assembled simulation of the paper's rig.
	Testbed = testbed.TB
	// Options selects disk, partition, scheduler, TCQ, transport,
	// heuristics and client load.
	Options = testbed.Options
	// DiskKind names one of the paper's drives.
	DiskKind = testbed.DiskKind
)

// The paper's two test drives.
const (
	SCSI = testbed.SCSI
	IDE  = testbed.IDE
)

// NewTestbed assembles a testbed.
func NewTestbed(opts Options) (*Testbed, error) { return testbed.New(opts) }

// Disk models (paper §4.1), usable standalone for ZCAV studies.
type DiskModel = disk.Model

// SCSIModel returns the IBM DDYS-T36950N model.
func SCSIModel() *DiskModel { return disk.IBMDDYS36950() }

// IDEModel returns the WD WD200BB model.
func IDEModel() *DiskModel { return disk.WD200BB() }

// Workloads (paper §4.2, §7).
type WorkloadResult = workload.Result

// CreateFileSet populates fs with the paper's benchmark files, scaled
// down by scale (1 = full size).
var CreateFileSet = workload.CreateFileSet

// FilesFor names the files the n-reader iteration reads.
var FilesFor = workload.FilesFor

// RunLocalReaders runs concurrent local sequential readers (Figs 1-3).
var RunLocalReaders = workload.RunLocalReaders

// RunNFSReaders runs concurrent NFS sequential readers (Figs 4-7).
var RunNFSReaders = workload.RunNFSReaders

// RunNFSStrideReader runs the §7 stride reader (Fig 8 / Table 1).
var RunNFSStrideReader = workload.RunNFSStrideReader

// ReaderCounts is the paper's sweep of concurrent reader counts.
var ReaderCounts = workload.ReaderCounts

// Experiments (every table and figure, plus ablations).
type (
	// Experiment is one named reproduction.
	Experiment = bench.Experiment
	// BenchParams controls runs, scale and seeding.
	BenchParams = bench.Params
	// BenchResult is a reproduced figure/table with formatting helpers.
	BenchResult = bench.Result
)

// Experiments lists all reproductions in paper order.
func Experiments() []Experiment { return bench.Experiments() }

// LookupExperiment finds a reproduction by ID ("fig1" .. "table1",
// "ablate-*").
func LookupExperiment(id string) (Experiment, bool) { return bench.Lookup(id) }

// Run comparison with variance discipline (`nfsbench compare`).
type (
	// BenchArtifact is the JSON document nfsbench -json writes.
	BenchArtifact = bench.Artifact
	// CompareOptions parameterizes a comparison (alpha, confidence,
	// effect floor, bootstrap resamples).
	CompareOptions = bench.CompareOptions
	// Comparison is a cell-by-cell comparison of two runs, with a gate
	// verdict that only flags differences beyond run-to-run noise.
	Comparison = bench.Comparison
	// CellDelta is one compared cell: medians, bootstrap intervals,
	// Mann-Whitney p, verdict.
	CellDelta = bench.CellDelta
)

// LoadBenchArtifact reads an nfsbench -json artifact from disk.
func LoadBenchArtifact(path string) (*BenchArtifact, error) { return bench.LoadArtifact(path) }

// CompareBenchArtifacts pairs every cell of two runs by (experiment,
// series, x) and tests each pair: Mann-Whitney U on the raw runs plus
// bootstrap confidence intervals on the median shift. Only differences
// that clear noise are flagged; Regressions() is what a CI gate fails
// on.
func CompareBenchArtifacts(old, new *BenchArtifact, opt CompareOptions) *Comparison {
	return bench.CompareArtifacts(old, new, opt)
}

// Tracing (the measurement methodology behind the paper's §6).
type (
	// Tracer records NFS requests at the simulated server
	// (nfsserver.Config.Tracer).
	Tracer = nfstrace.Tracer
	// TraceRecord is one traced request.
	TraceRecord = nfstrace.Record
	// TraceAnalysis summarizes reordering and sequentiality.
	TraceAnalysis = nfstrace.Analysis
)

// AnalyzeTrace computes reordering/sequentiality metrics over READ
// records.
func AnalyzeTrace(records []TraceRecord) TraceAnalysis {
	return nfstrace.Analyze(records, nfsproto.ProcRead)
}

// Live mode: the same protocol stack over real loopback sockets,
// layered as rpcnet (transport) → nfsd (dispatch: proc switch,
// heuristics, write gathering, tracing) → a pluggable storage backend
// (StorageBackend): the in-memory LiveFS or the ZCAV disk-backed
// ZoneFS. The whole stack is safe for concurrent use: the service's
// READ path takes no global lock (heuristic state is striped across
// the nfsheur table's shards), and a client pipelines concurrent calls
// over one connection, demultiplexing replies by XID. "nfsbench -exp
// live-scale" measures this path as concurrent clients grow;
// "nfsbench -exp zcav-live" demonstrates the ZCAV and cache-warmth
// traps on it.
type (
	// StorageBackend is the contract a store must meet to be mounted
	// behind the live dispatch layer (copy-on-write read views,
	// deferred durability via Commit; see internal/vfs).
	StorageBackend = vfs.Backend
	// LiveConfig assembles a live service around any backend:
	// heuristic, nfsheur table, write-gather configuration, read-ahead
	// cap.
	LiveConfig = nfsd.Config
	// LiveFS is an in-memory file store for the live service.
	LiveFS = memfs.FS
	// ZoneFS is a disk-backed store: files placed by LBA on a
	// simulated zoned drive behind a block buffer cache, so live reads
	// pay real elapsed time that depends on zone placement and cache
	// warmth.
	ZoneFS = zonefs.FS
	// ZoneConfig selects the drive model, placement, cache size and
	// scheduler for a ZoneFS.
	ZoneConfig = zonefs.Config
	// ZonePlacement picks the outer or inner quarter of the drive.
	ZonePlacement = zonefs.Placement
	// LiveService serves NFS v3 over rpcnet with real heuristics. Safe
	// for concurrent use; its hot path holds no global lock.
	LiveService = nfsd.Service
	// LiveClient is an NFS client for the live service, safe for
	// concurrent use by multiple goroutines (calls are pipelined).
	LiveClient = memfs.Client
	// RPCServer is the underlying UDP+TCP ONC RPC server.
	RPCServer = rpcnet.Server
)

// Zone placements for ZoneConfig.
const (
	ZoneOuter = zonefs.Outer
	ZoneInner = zonefs.Inner
)

// NewZoneFS returns an empty disk-backed store (zero-value config:
// the paper's IDE drive, outer placement, 64 MB cache).
func NewZoneFS(cfg ZoneConfig) *ZoneFS { return zonefs.New(cfg) }

// NewLiveServiceBackend mounts any storage backend behind the live
// dispatch layer. NewLiveService and NewLiveServiceGather are the
// memfs-specific shorthands.
func NewLiveServiceBackend(b StorageBackend, cfg LiveConfig) *LiveService {
	return nfsd.New(b, cfg)
}

// LiveFH is a live-service file handle.
type LiveFH = nfsproto.FH

// LiveRootFH is the live service's root directory handle.
const LiveRootFH = memfs.RootFH

// NewLiveFS returns an empty in-memory store.
func NewLiveFS() *LiveFS { return memfs.NewFS() }

// NewLiveService wraps fs with a heuristic and nfsheur table. Nil
// defaults are the live-serving configuration: SlowDown over a
// GOMAXPROCS-sharded ScaledNfsheur table. Pass an explicit
// NewNfsheurTable(ImprovedNfsheur()) to reproduce the paper's
// deterministic single table instead.
func NewLiveService(fs *LiveFS, h Heuristic, t *NfsheurTable) *LiveService {
	return memfs.NewService(fs, h, t)
}

// ServeLive binds addr (e.g. "127.0.0.1:0") and serves svc over real
// UDP and TCP sockets.
func ServeLive(addr string, svc *LiveService) (*RPCServer, error) {
	return memfs.NewServer(addr, svc)
}

// DialLive connects to a live service over "udp" or "tcp".
func DialLive(network, addr string) (*LiveClient, error) {
	return memfs.DialClient(network, addr)
}

// The asynchronous write path (RFC 1813's UNSTABLE WRITE + COMMIT) with
// server-side write gathering: UNSTABLE writes land in the page cache
// and their stable-storage flush is deferred inside a configurable
// gather window, during which adjacent/overlapping dirty ranges
// coalesce — the write half of the paper's server-side tricks.
// "nfsbench -exp write-path" sweeps the gather window against a
// throttled sink.
type (
	// WriteGatherConfig configures the live service's gathering engine:
	// gather window (0 = synchronous write-through), per-file and total
	// dirty-byte bounds, the stable-storage sink and the verifier seed.
	WriteGatherConfig = wgather.Config
	// WriteGatherStats counts writes by stability, commits, sink
	// flushes and bytes gathered/coalesced/flushed.
	WriteGatherStats = wgather.Stats
	// StableSink is pluggable stable storage for the gathering engine.
	StableSink = wgather.Sink
	// MemStableSink retains flushed bytes (the observable "disk" of the
	// crash/rewrite tests).
	MemStableSink = wgather.MemSink
	// ThrottledStableSink charges a latency/bandwidth cost per flush —
	// the disk-like sink gathering wins against.
	ThrottledStableSink = wgather.ThrottledSink
	// LiveWriteBehind is the client-side biod-style pipeline: bounded
	// in-flight UNSTABLE writes, COMMIT with verifier checking, and
	// automatic rewrite after a server reboot.
	LiveWriteBehind = memfs.WriteBehind
)

// NewLiveServiceGather is NewLiveService with an explicit write-gather
// configuration. Close the service to stop the engine's background
// flusher and flush remaining dirty data.
func NewLiveServiceGather(fs *LiveFS, h Heuristic, t *NfsheurTable, cfg WriteGatherConfig) *LiveService {
	return memfs.NewServiceGather(fs, h, t, cfg)
}

// NewMemStableSink returns an empty retaining sink.
func NewMemStableSink() *MemStableSink { return wgather.NewMemSink() }

// Unified observability: every layer publishes into one ObsRegistry —
// lock-free sharded counters, log-bucketed latency histograms, and
// per-request stage spans (receive → decode → drc → execute → backend →
// disk → gather → reply) whose stage durations sum exactly to the
// end-to-end latency. The registry's Dump is the single source for the
// Prometheus /metrics text, the /statsz JSON and the human-readable
// final-stats lines, so no two views can disagree. Instrumentation adds
// zero allocations to the live READ path (pinned by test).
type (
	// ObsRegistry is the process-wide metrics registry. Pass it as
	// LiveConfig.Obs to instrument a live service.
	ObsRegistry = obs.Registry
	// ObsHistogram is a mergeable log-bucketed latency histogram with
	// lock-free recording and p50/p90/p99/p999 summaries.
	ObsHistogram = obs.Histogram
	// ObsCounter is a cache-line-sharded counter for hot-path counting.
	ObsCounter = obs.Counter
	// ObsSpan carries one request's per-stage latency decomposition.
	ObsSpan = obs.Span
	// ObsSpanTable records finished spans into per-procedure, per-stage
	// histograms and owns the slow-op log.
	ObsSpanTable = obs.SpanTable
	// ObsStage names one segment of the request path.
	ObsStage = obs.Stage
	// ObsAdminServer serves /metrics, /statsz and /debug/pprof.
	ObsAdminServer = obs.AdminServer
)

// NewObsRegistry returns an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// ServeObsAdmin serves reg on addr: /metrics (Prometheus text
// exposition), /statsz (JSON snapshot) and /debug/pprof/* (live CPU,
// heap and trace profiles). Safe to query concurrently with traffic.
func ServeObsAdmin(addr string, reg *ObsRegistry) (*ObsAdminServer, error) {
	return obs.ServeAdmin(addr, reg)
}

// ServeObsAdminMeta is ServeObsAdmin with an identity block: meta (any
// JSON-marshalable value, typically environment metadata) is rendered
// under "meta" in every /statsz response alongside the process uptime.
func ServeObsAdminMeta(addr string, reg *ObsRegistry, meta any) (*ObsAdminServer, error) {
	return obs.ServeAdminMeta(addr, reg, meta)
}

// ServeLiveObserved is ServeLive with per-request stage spans: each
// served call is timed through the span table the service registered
// in its LiveConfig.Obs registry (no-op when Obs was nil).
func ServeLiveObserved(addr string, svc *LiveService) (*RPCServer, error) {
	return nfsd.NewServerOpts(addr, svc, rpcnet.ServerOptions{Spans: svc.SpanTable()})
}

// Trace capture & replay: record the live server's real request stream
// to a compact on-disk trace (.nft) and replay it as a first-class
// benchmark workload ("nfsbench -exp trace-replay"; cmd/nfstrace is the
// CLI for capture/info/analyze/replay).
type (
	// TraceFileRecord is one on-disk trace record (arrival time, stream,
	// proc, FH, offset, count, status, latency).
	TraceFileRecord = tracefile.Record
	// TraceFileWriter streams records to a .nft file with a pooled
	// zero-allocation append path.
	TraceFileWriter = tracefile.Writer
	// TraceCapture bridges a live server's RPC tap to a trace writer.
	TraceCapture = nfstrace.Capture
	// ReplayOptions selects transport, timing policy (as-fast /
	// faithful / scaled) and open- vs closed-loop dispatch.
	ReplayOptions = replay.Options
	// ReplayStats summarizes a replay run (ops/s, latency percentiles,
	// issue-span fidelity).
	ReplayStats = replay.Stats
)

// CreateTrace opens a .nft trace file for writing.
func CreateTrace(path string) (*TraceFileWriter, error) {
	return tracefile.Create(path, time.Now())
}

// ServeLiveTraced is ServeLive with every served RPC recorded through
// capture (see NewTraceCapture).
func ServeLiveTraced(addr string, svc *LiveService, capture *TraceCapture) (*RPCServer, error) {
	return memfs.NewServerTap(addr, svc, capture.Tap)
}

// NewTraceCapture wraps a trace writer for use with ServeLiveTraced.
func NewTraceCapture(w *TraceFileWriter) *TraceCapture {
	return nfstrace.NewCapture(w)
}

// ReadTraceFile loads a captured trace.
func ReadTraceFile(path string) ([]TraceFileRecord, error) {
	_, recs, err := tracefile.ReadFile(path)
	return recs, err
}

// AnalyzeTraceFile runs the §6 reordering/sequentiality analysis over a
// captured live trace.
func AnalyzeTraceFile(path string) (TraceAnalysis, error) {
	return nfstrace.AnalyzeFile(path)
}

// ReplayTrace replays captured records against a live server.
func ReplayTrace(records []TraceFileRecord, opts ReplayOptions) (*ReplayStats, error) {
	return replay.Run(records, opts)
}

// ReplayTraceFile replays a trace file against a live server.
func ReplayTraceFile(path string, opts ReplayOptions) (*ReplayStats, error) {
	return replay.File(path, opts)
}

// The fault-tolerant RPC path: seeded wire-fault injection on the live
// transports, a server-side duplicate request cache (replay the
// original reply to a retransmitted non-idempotent call instead of
// re-executing it), and the client's unified retransmission layer
// (same-XID resend, Jacobson-estimated RTO, exponential backoff,
// major timeout). "nfsbench -exp fault-path" sweeps loss x transport x
// DRC over this stack and asserts zero duplicated side effects with
// the cache on.
type (
	// FaultConfig parameterizes the injector: per-message probabilities
	// for drop/dup/delay/truncate (UDP) and stall/reset (TCP), plus a
	// seed making the decision stream reproducible.
	FaultConfig = rpcnet.FaultConfig
	// FaultInjector draws seeded per-message fault decisions; plug one
	// into ServeLiveFaulty (server side) or DialLiveRetry (client side).
	FaultInjector = rpcnet.FaultInjector
	// FaultStats counts messages examined and faults injected in one
	// direction (FaultDirIn/FaultDirOut).
	FaultStats = rpcnet.FaultStats
	// RetryPolicy bounds the client retransmission loop: transmissions
	// per call, initial RTO before an RTT sample, RTO clamp, jitter.
	RetryPolicy = rpcnet.RetryPolicy
	// RetryStats counts calls, retransmissions, send failures and major
	// timeouts.
	RetryStats = rpcnet.RetryStats
	// RPCRetrier is the retransmission layer over one RPC client.
	RPCRetrier = rpcnet.Retrier
	// DRCConfig switches the live service's duplicate request cache on
	// and budgets it.
	DRCConfig = nfsd.DRCConfig
	// DRCStats counts cache hits (replays), misses, busy-drops,
	// evictions and occupancy.
	DRCStats = drc.Stats
)

// Fault injector stat directions.
const (
	FaultDirIn  = rpcnet.DirIn
	FaultDirOut = rpcnet.DirOut
)

// Typed wire errors for errors.Is: a transmission that died at the
// socket, a reply that never came, and a call abandoned after its
// transmit budget.
var (
	ErrRPCSendFailed   = rpcnet.ErrSendFailed
	ErrRPCReplyTimeout = rpcnet.ErrReplyTimeout
	ErrRPCMajorTimeout = rpcnet.ErrMajorTimeout
)

// NewFaultInjector builds a seeded injector for cfg.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return rpcnet.NewFaultInjector(cfg)
}

// ParseFaultSpec parses the CLI fault syntax, e.g.
// "drop=0.05,dup=0.01,delay=0.02:1ms-5ms,stall=0.05:20ms".
func ParseFaultSpec(spec string) (FaultConfig, error) {
	return rpcnet.ParseFaultSpec(spec)
}

// ServeLiveFaulty is ServeLive with wire faults injected on the
// server's sockets (nil = perfect network).
func ServeLiveFaulty(addr string, svc *LiveService, faults *FaultInjector) (*RPCServer, error) {
	return nfsd.NewServerOpts(addr, svc, rpcnet.ServerOptions{Faults: faults})
}

// DialLiveRetry is DialLive with the unified retransmission layer on
// every call (and, optionally, client-side wire faults). The zero
// RetryPolicy gets kernel-ish defaults.
func DialLiveRetry(network, addr string, policy RetryPolicy, faults *FaultInjector) (*LiveClient, error) {
	return memfs.DialClientRetry(network, addr, policy, faults)
}

// Scale-out: the namespace sharded across N in-process nfsd instances
// by consistent hashing on file handle (the nfsheur lock-striping
// pattern lifted to process level), coordinated by a tiny control
// plane that hands shard-aware clients a versioned shard map. Stale
// clients are redirected with the version to refresh to, so a shard
// drain mid-traffic completes with zero failed operations
// ("nfsbench -exp cluster-scale"; "nfsserve -cluster N").
type (
	// Cluster is the in-process shard group plus its control plane.
	Cluster = cluster.Cluster
	// ClusterConfig sizes a cluster (shard count, bind addresses,
	// per-shard nfsheur stripes).
	ClusterConfig = cluster.Config
	// ClusterClient routes calls by handle, chases wrong-shard
	// redirects, and refreshes its map from the control plane.
	ClusterClient = cluster.Client
	// ClusterClientConfig bounds the client's per-shard connection
	// pool, call timeout, and redirect budget.
	ClusterClientConfig = cluster.ClientConfig
	// ClusterMap is one version of the shard layout: strictly
	// monotonic versions over a consistent-hash ring.
	ClusterMap = cluster.Map
	// ClusterShardInfo is one shard's map entry (id, address).
	ClusterShardInfo = cluster.ShardInfo
)

// NewCluster starts an in-process cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	return cluster.New(cfg)
}

// DialCluster connects a shard-aware client via the control plane.
func DialCluster(network, ctrlAddr string, cfg ClusterClientConfig) (*ClusterClient, error) {
	return cluster.DialClient(network, ctrlAddr, cfg)
}
