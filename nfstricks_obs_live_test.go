package nfstricks

// Live observability contract through the public facade: a fully
// instrumented server under concurrent client load must serve
// /metrics, /statsz and a CPU profile from its admin endpoint at the
// same time, and every view must agree with the service's own
// counters. CI runs this under -race.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"nfstricks/internal/nfsproto"
)

func adminGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %.200s", url, resp.StatusCode, body)
	}
	return body
}

// TestLiveAdminUnderTraffic serves real READ traffic while concurrently
// scraping /metrics, /statsz and /debug/pprof/profile from the admin
// endpoint — the issue's acceptance scenario: observability must be
// readable live, not only after shutdown.
func TestLiveAdminUnderTraffic(t *testing.T) {
	const clients = 4
	const fileSize = 128 * 1024

	reg := NewObsRegistry()
	fs := NewLiveFS()
	payload := make([]byte, fileSize)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	for i := 0; i < clients; i++ {
		fs.Create(LiveRootFH, fmt.Sprintf("f%d", i), payload)
	}
	svc := NewLiveServiceBackend(fs, LiveConfig{Obs: reg})
	defer svc.Close()
	srv, err := ServeLiveObserved("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	adm, err := ServeObsAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	base := "http://" + adm.Addr()

	// Traffic: each client loops over its file until told to stop.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialLive("tcp", srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			fh, size, err := c.Lookup(LiveRootFH, fmt.Sprintf("f%d", i))
			if err != nil {
				errs <- err
				return
			}
			for {
				for off := uint64(0); off < uint64(size); off += 8192 {
					select {
					case <-stop:
						return
					default:
					}
					if _, _, err := c.Read(fh, off, 8192); err != nil {
						errs <- err
						return
					}
				}
			}
		}(i)
	}

	// Scrapes, all while the readers are running. The profile endpoint
	// holds the CPU profiler open for a second of live traffic.
	var scrape sync.WaitGroup
	scrapeErr := make(chan error, 3)
	scrape.Add(3)
	go func() {
		defer scrape.Done()
		deadline := time.Now().Add(5 * time.Second)
		for {
			metrics := string(adminGet(t, base+"/metrics"))
			if !strings.Contains(metrics, `nfsd_executed_total{proc="READ"}`) {
				scrapeErr <- fmt.Errorf("/metrics missing the READ counter:\n%.500s", metrics)
				return
			}
			// Traffic has flowed once the span summary shows up.
			if strings.Contains(metrics, `nfsd_op_seconds{proc="READ",quantile="0.5"}`) {
				return
			}
			if time.Now().After(deadline) {
				scrapeErr <- fmt.Errorf("/metrics never showed READ spans under live traffic")
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	go func() {
		defer scrape.Done()
		var snap struct {
			Counters map[string]int64 `json:"counters"`
		}
		blob := adminGet(t, base+"/statsz")
		if err := json.Unmarshal(blob, &snap); err != nil {
			scrapeErr <- fmt.Errorf("/statsz is not JSON: %v\n%.300s", err, blob)
			return
		}
		if _, ok := snap.Counters[`nfsd_executed_total{proc="READ"}`]; !ok {
			scrapeErr <- fmt.Errorf("/statsz missing the READ counter")
		}
	}()
	go func() {
		defer scrape.Done()
		prof := adminGet(t, base+"/debug/pprof/profile?seconds=1")
		if len(prof) == 0 {
			scrapeErr <- fmt.Errorf("CPU profile came back empty")
		}
	}()
	scrape.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	close(scrapeErr)
	for err := range errs {
		t.Fatal(err)
	}
	for err := range scrapeErr {
		t.Fatal(err)
	}

	// The views agree with the service's own accounting: the registry
	// counter is the same atomic ProcCounts reads.
	snap := reg.Dump()
	got := snap.Counters[`nfsd_executed_total{proc="READ"}`]
	if got == 0 {
		t.Fatal("no READs recorded in the registry")
	}
	if want := svc.ProcCounts()[nfsproto.ProcRead]; got != want {
		t.Fatalf("registry READ counter %d != service ProcCounts %d", got, want)
	}
	if snap.Spans["nfsd_op"].Procs["READ"].Count == 0 {
		t.Fatal("no READ spans recorded")
	}
}
