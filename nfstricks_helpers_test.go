package nfstricks

import (
	"nfstricks/internal/nfsserver"
	"nfstricks/internal/nfstrace"
)

// nfsserverConfigWithTracer builds a server config carrying a tracer;
// kept in a helper so the facade test reads cleanly.
func nfsserverConfigWithTracer(tr *nfstrace.Tracer) nfsserver.Config {
	return nfsserver.Config{Tracer: tr}
}
