// Package tracefile defines the .nft on-disk format for captured NFS
// request traces: a compact, versioned binary stream of per-request
// records (arrival time, stream, procedure, file handle, offset, count,
// status, service latency) with a streaming Writer and Reader. It is
// the persistence layer of the live trace subsystem — the capture tap
// (internal/nfstrace) writes it, the analyzers and the replay engine
// (internal/replay) read it — so real request streams become on-disk
// artifacts that can be inspected and replayed as first-class benchmark
// workloads.
//
// # File format (version 2)
//
// A trace file is a fixed 16-byte header followed by records until EOF:
//
//	offset 0:  4-byte magic "NFT2"
//	offset 4:  4-byte reserved (zero)
//	offset 8:  8-byte big-endian capture start time (Unix nanoseconds)
//
// Each record is a sequence of varints (encoding/binary uvarint; the
// timestamp delta is zigzag-signed because records are written in
// completion order, so arrival times may regress by up to a service
// latency):
//
//	dt      zigzag varint, nanoseconds since the previous record's When
//	stream  uvarint, per-connection (TCP) / per-peer (UDP) stream id
//	proc    uvarint, NFS procedure number
//	fh      uvarint, file handle
//	offset  uvarint, byte offset (READ/WRITE/COMMIT; 0 otherwise)
//	count   uvarint, byte count (READ/WRITE/COMMIT; 0 otherwise)
//	stable  uvarint, requested write stability (WRITE; 0 otherwise)
//	status  uvarint, NFS status, or StatusRPCError|accept_stat for
//	        calls rejected at the RPC layer
//	latency uvarint, nanoseconds of server-side service time
//
// Varint-delta timestamps make the format compact: a steady request
// stream costs ~10-15 bytes per record instead of the ~48 bytes of a
// fixed-width layout.
//
// # Version 1
//
// Version-1 files (magic "NFT1") predate the asynchronous write path
// and lack the stable field. The Reader auto-detects them by magic and
// decodes their records with Stable set to V1Stable (FILE_SYNC — the
// only stability the version-1-era live client ever sent). The Writer
// always emits version 2.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Version is the current format version (encoded in the magic).
const Version = 2

// V1Stable is the Stable value synthesized for records read from
// version-1 files: FILE_SYNC, the only stability the version-1-era
// live client ever requested (and the only one its server honoured).
const V1Stable = 2

// magicV1 and magicV2 identify trace-file versions; the Writer emits
// magicV2, the Reader accepts both.
var (
	magicV1 = [4]byte{'N', 'F', 'T', '1'}
	magicV2 = [4]byte{'N', 'F', 'T', '2'}
)

// headerSize is the fixed encoded size of the file header.
const headerSize = 16

// StatusRPCError is OR-ed into a record's Status when the call never
// reached the NFS handler: the low bits then hold the RPC accept_stat
// (prog unavailable, garbage args, ...) instead of an NFS status.
const StatusRPCError = 1 << 31

// StatusRetransmit is OR-ed into a record's Status when the capture
// recognized the call as a retransmission: the same stream recently
// carried the same XID. Distinguishing retransmissions from fresh
// requests is what lets a trace of a lossy run be analyzed for offered
// load versus goodput instead of conflating the two. (Status is an
// uvarint on the wire, so a new flag bit needs no format bump; readers
// of older tools see a large status value only on traces that actually
// captured retransmissions.)
const StatusRetransmit = 1 << 30

// StatusFlags masks the flag bits off a Status, leaving the NFS status
// or accept_stat value.
const StatusFlags = StatusRPCError | StatusRetransmit

// ErrBadMagic is returned by NewReader for streams that are not
// trace files of a known version.
var ErrBadMagic = errors.New("tracefile: bad magic (not a .nft version 1 or 2 trace)")

// Record is one traced request. When is relative to the capture start
// recorded in the header, so traces are position-independent.
type Record struct {
	When    time.Duration // arrival time since capture start
	Stream  uint32        // client connection (TCP) / peer (UDP) id
	Proc    uint32        // NFS procedure number
	FH      uint64        // file handle (dir handle for LOOKUP/CREATE)
	Offset  uint64        // byte offset (READ/WRITE/COMMIT)
	Count   uint32        // byte count (READ/WRITE/COMMIT)
	Stable  uint32        // requested write stability (WRITE; V1Stable for v1 files)
	Status  uint32        // NFS status, or StatusRPCError|accept_stat
	Latency time.Duration // server-side service time
}

// Header is the decoded file header.
type Header struct {
	Version int
	Start   time.Time // capture wall-clock start
}

// recBufs recycles Writer staging buffers (the PR 2 pooled-buffer
// idiom): a Writer takes one for its whole life and returns it on
// Close, so appends allocate nothing and short-lived capture sessions
// do not churn 64 KB buffers.
var recBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64*1024)
		return &b
	},
}

// maxRecordSize bounds one encoded record (9 varints of at most 10
// bytes each); the staging buffer is flushed when less than this much
// headroom remains, so Append never grows it.
const maxRecordSize = 9 * binary.MaxVarintLen64

// Writer encodes records onto an io.Writer. Append is allocation-free:
// each record is varint-encoded into a pooled staging buffer that is
// flushed to the underlying writer as it fills. Writer is not safe for
// concurrent use; the capture tap serializes callers.
type Writer struct {
	w      io.Writer
	buf    *[]byte
	start  time.Time     // wall-clock origin written to the header
	prev   time.Duration // previous record's When, for delta encoding
	n      int64         // records appended
	closer io.Closer     // set by Create: closes the backing file
	err    error         // first write error; sticky
}

// NewWriter starts a trace on w, writing the header immediately. start
// is the capture's wall-clock origin (records carry offsets from it).
func NewWriter(w io.Writer, start time.Time) (*Writer, error) {
	tw := &Writer{w: w, buf: recBufs.Get().(*[]byte), start: start}
	hdr := make([]byte, headerSize)
	copy(hdr, magicV2[:])
	binary.BigEndian.PutUint64(hdr[8:], uint64(start.UnixNano()))
	if _, err := w.Write(hdr); err != nil {
		tw.release()
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	return tw, nil
}

// Create opens path (truncating) and starts a trace on it; Close
// flushes and closes the file.
func Create(path string, start time.Time) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	w, err := NewWriter(f, start)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.closer = f
	return w, nil
}

// release returns the staging buffer to the pool.
func (w *Writer) release() {
	if w.buf != nil {
		*w.buf = (*w.buf)[:0]
		recBufs.Put(w.buf)
		w.buf = nil
	}
}

// Append encodes one record. It buffers internally; call Flush (or
// Close) to push buffered records to the underlying writer. After a
// write error every Append returns that error and drops the record.
func (w *Writer) Append(r Record) error {
	if w.err != nil {
		return w.err
	}
	buf := *w.buf
	if cap(buf)-len(buf) < maxRecordSize {
		if err := w.Flush(); err != nil {
			return err
		}
		buf = *w.buf
	}
	// Zigzag-encode the timestamp delta: completion-order writes mean
	// When can step backwards by up to a service latency.
	dt := int64(r.When - w.prev)
	buf = binary.AppendUvarint(buf, uint64(dt)<<1^uint64(dt>>63))
	buf = binary.AppendUvarint(buf, uint64(r.Stream))
	buf = binary.AppendUvarint(buf, uint64(r.Proc))
	buf = binary.AppendUvarint(buf, r.FH)
	buf = binary.AppendUvarint(buf, r.Offset)
	buf = binary.AppendUvarint(buf, uint64(r.Count))
	buf = binary.AppendUvarint(buf, uint64(r.Stable))
	buf = binary.AppendUvarint(buf, uint64(r.Status))
	buf = binary.AppendUvarint(buf, uint64(r.Latency))
	*w.buf = buf
	w.prev = r.When
	w.n++
	return nil
}

// Total reports how many records were appended.
func (w *Writer) Total() int64 { return w.n }

// Start returns the wall-clock origin written to the header. Record
// producers should timestamp relative to it (nfstrace.NewCapture does),
// so header and offsets share one exact origin.
func (w *Writer) Start() time.Time { return w.start }

// Flush writes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	buf := *w.buf
	if len(buf) == 0 {
		return nil
	}
	if _, err := w.w.Write(buf); err != nil {
		w.err = fmt.Errorf("tracefile: %w", err)
		return w.err
	}
	*w.buf = buf[:0]
	return nil
}

// Close flushes, recycles the staging buffer and, for Create-backed
// writers, closes the file. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	err := w.Flush()
	w.release()
	if w.err == nil {
		// Poison further appends without masking the flush result.
		w.err = errors.New("tracefile: writer closed")
	}
	if w.closer != nil {
		cerr := w.closer.Close()
		w.closer = nil
		if err == nil && cerr != nil {
			err = fmt.Errorf("tracefile: %w", cerr)
		}
	}
	return err
}

// Reader decodes a trace stream, auto-detecting version 1 and 2 files
// by magic (Header().Version reports which was found).
type Reader struct {
	br     *bufio.Reader
	hdr    Header
	prev   time.Duration
	closer io.Closer
}

// NewReader parses the header and prepares to stream records.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrBadMagic
		}
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	var version int
	switch [4]byte(hdr[:4]) {
	case magicV1:
		version = 1
	case magicV2:
		version = 2
	default:
		return nil, ErrBadMagic
	}
	return &Reader{
		br: br,
		hdr: Header{
			Version: version,
			Start:   time.Unix(0, int64(binary.BigEndian.Uint64(hdr[8:]))),
		},
	}, nil
}

// Open opens a trace file for streaming reads; Close releases it.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// Header returns the decoded file header.
func (r *Reader) Header() Header { return r.hdr }

// Next decodes the next record into rec. It returns io.EOF at a clean
// end of stream and io.ErrUnexpectedEOF for a record cut mid-encode
// (e.g. a capture killed before its final flush).
func (r *Reader) Next(rec *Record) error {
	zz, err := binary.ReadUvarint(r.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("tracefile: %w", err)
	}
	dt := int64(zz>>1) ^ -int64(zz&1)
	// Version 1 records have no stable field; one fewer varint.
	nFields := 8
	if r.hdr.Version == 1 {
		nFields = 7
	}
	fields := [8]uint64{}
	for i := 0; i < nFields; i++ {
		v, err := binary.ReadUvarint(r.br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("tracefile: truncated record: %w", err)
		}
		fields[i] = v
	}
	r.prev += time.Duration(dt)
	*rec = Record{
		When:   r.prev,
		Stream: uint32(fields[0]),
		Proc:   uint32(fields[1]),
		FH:     fields[2],
		Offset: fields[3],
		Count:  uint32(fields[4]),
	}
	if r.hdr.Version == 1 {
		rec.Stable = V1Stable
		rec.Status = uint32(fields[5])
		rec.Latency = time.Duration(fields[6])
	} else {
		rec.Stable = uint32(fields[5])
		rec.Status = uint32(fields[6])
		rec.Latency = time.Duration(fields[7])
	}
	return nil
}

// Close releases the backing file of an Open-backed reader (no-op for
// NewReader).
func (r *Reader) Close() error {
	if r.closer == nil {
		return nil
	}
	err := r.closer.Close()
	r.closer = nil
	return err
}

// ReadAll decodes every record from r.
func ReadAll(r io.Reader) (Header, []Record, error) {
	tr, err := NewReader(r)
	if err != nil {
		return Header{}, nil, err
	}
	var recs []Record
	var rec Record
	for {
		if err := tr.Next(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return tr.Header(), recs, nil
			}
			return tr.Header(), recs, err
		}
		recs = append(recs, rec)
	}
}

// ReadFile decodes a whole trace file.
func ReadFile(path string) (Header, []Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, fmt.Errorf("tracefile: %w", err)
	}
	defer f.Close()
	return ReadAll(f)
}

// WriteAll writes a header plus all records to w (convenience for
// tests and trace rewriting; capture uses the streaming Writer).
func WriteAll(w io.Writer, start time.Time, recs []Record) error {
	tw, err := NewWriter(w, start)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := tw.Append(r); err != nil {
			tw.Close()
			return err
		}
	}
	return tw.Close()
}
