package tracefile

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// goldenV1Records is the exact content of testdata/golden_v1.nft, a
// fixture written in the PR 3 (version 1) layout: 7 varints per record,
// no stability field. Readers must surface these records with Stable =
// V1Stable.
var goldenV1Records = []Record{
	{When: 0, Stream: 1, Proc: 6, FH: 2, Offset: 0, Count: 8192, Stable: V1Stable, Status: 0, Latency: 1500},
	{When: 2 * time.Millisecond, Stream: 2, Proc: 7, FH: 3, Offset: 8192, Count: 8192, Stable: V1Stable, Status: 0, Latency: 900},
	{When: 1 * time.Millisecond, Stream: 1, Proc: 6, FH: 2, Offset: 8192, Count: 8192, Stable: V1Stable, Status: 0, Latency: 1100},
	{When: 5 * time.Millisecond, Stream: 2, Proc: 1, FH: 3, Offset: 0, Count: 0, Stable: V1Stable, Status: 70, Latency: 50},
	{When: 6 * time.Millisecond, Stream: 3, Proc: 0, FH: 0, Offset: 0, Count: 0, Stable: V1Stable, Status: 0, Latency: 10},
}

// goldenV1Start is the capture start stamped into the fixture header.
const goldenV1Start = 1700000000123456789

// TestGoldenV1Fixture loads the committed version-1 trace and checks
// every decoded field — the backward-compatibility contract that keeps
// PR 3 era traces loading forever.
func TestGoldenV1Fixture(t *testing.T) {
	hdr, recs, err := ReadFile("testdata/golden_v1.nft")
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != 1 {
		t.Fatalf("version = %d, want 1", hdr.Version)
	}
	if hdr.Start.UnixNano() != goldenV1Start {
		t.Fatalf("start = %d, want %d", hdr.Start.UnixNano(), goldenV1Start)
	}
	if len(recs) != len(goldenV1Records) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(goldenV1Records))
	}
	for i, got := range recs {
		if got != goldenV1Records[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got, goldenV1Records[i])
		}
	}
}

// writeV1 encodes records in the version-1 layout (no stable field),
// reproducing the PR 3 writer for compatibility tests.
func writeV1(start time.Time, recs []Record) []byte {
	out := make([]byte, headerSize)
	copy(out, magicV1[:])
	binary.BigEndian.PutUint64(out[8:], uint64(start.UnixNano()))
	var prev time.Duration
	for _, r := range recs {
		dt := int64(r.When - prev)
		prev = r.When
		out = binary.AppendUvarint(out, uint64(dt)<<1^uint64(dt>>63))
		out = binary.AppendUvarint(out, uint64(r.Stream))
		out = binary.AppendUvarint(out, uint64(r.Proc))
		out = binary.AppendUvarint(out, r.FH)
		out = binary.AppendUvarint(out, r.Offset)
		out = binary.AppendUvarint(out, uint64(r.Count))
		out = binary.AppendUvarint(out, uint64(r.Status))
		out = binary.AppendUvarint(out, uint64(r.Latency))
	}
	return out
}

// TestV1AutoDetection feeds a synthesized v1 stream and the same
// records as v2 through one Reader path: v1 surfaces Stable=V1Stable,
// v2 preserves the written stability, and all other fields agree.
func TestV1AutoDetection(t *testing.T) {
	src := []Record{
		{When: 0, Stream: 1, Proc: 7, FH: 9, Offset: 0, Count: 4096, Stable: 0, Status: 0, Latency: 100},
		{When: time.Millisecond, Stream: 1, Proc: 21, FH: 9, Offset: 0, Count: 0, Stable: 0, Status: 0, Latency: 300},
	}
	start := time.Unix(0, 42)

	hdr1, v1recs, err := ReadAll(bytes.NewReader(writeV1(start, src)))
	if err != nil {
		t.Fatal(err)
	}
	if hdr1.Version != 1 {
		t.Fatalf("v1 stream decoded as version %d", hdr1.Version)
	}
	for i, r := range v1recs {
		if r.Stable != V1Stable {
			t.Fatalf("v1 record %d: Stable = %d, want V1Stable", i, r.Stable)
		}
		want := src[i]
		want.Stable = V1Stable
		if r != want {
			t.Fatalf("v1 record %d: got %+v, want %+v", i, r, want)
		}
	}

	var buf bytes.Buffer
	if err := WriteAll(&buf, start, src); err != nil {
		t.Fatal(err)
	}
	hdr2, v2recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr2.Version != 2 {
		t.Fatalf("writer emitted version %d, want 2", hdr2.Version)
	}
	for i, r := range v2recs {
		if r != src[i] {
			t.Fatalf("v2 record %d: got %+v, want %+v", i, r, src[i])
		}
	}
}

// TestStableSurvivesRoundTrip pins the new field across the full
// write/read cycle for every stability level.
func TestStableSurvivesRoundTrip(t *testing.T) {
	var recs []Record
	for s := uint32(0); s < 4; s++ {
		recs = append(recs, Record{
			When: time.Duration(s) * time.Millisecond, Stream: 1,
			Proc: 7, FH: 5, Offset: uint64(s) * 8192, Count: 8192, Stable: s,
		})
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, time.Unix(0, 0), recs); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Stable != recs[i].Stable {
			t.Fatalf("record %d: Stable = %d, want %d", i, r.Stable, recs[i].Stable)
		}
	}
}

// TestTruncatedV1Record checks the v1 decode path reports a cut record
// the same way the v2 path does.
func TestTruncatedV1Record(t *testing.T) {
	full := writeV1(time.Unix(0, 0), goldenV1Records[:1])
	_, _, err := ReadAll(bytes.NewReader(full[:len(full)-2]))
	if err == nil {
		t.Fatal("truncated v1 record decoded cleanly")
	}
}
