package tracefile

import (
	"bytes"
	"errors"
	"io"
	"math"
	"path/filepath"
	"testing"
	"time"
)

func sampleRecords() []Record {
	return []Record{
		{When: 0, Stream: 1, Proc: 6, FH: 42, Offset: 0, Count: 8192, Status: 0, Latency: 120 * time.Microsecond},
		{When: 1 * time.Millisecond, Stream: 2, Proc: 6, FH: 43, Offset: 8192, Count: 8192, Status: 0, Latency: 90 * time.Microsecond},
		// Completion-order regression: earlier arrival written later.
		{When: 900 * time.Microsecond, Stream: 1, Proc: 7, FH: 42, Offset: 16384, Count: 4096, Status: 0, Latency: 2 * time.Millisecond},
		{When: 5 * time.Millisecond, Stream: 1, Proc: 1, FH: 42, Status: 70, Latency: time.Microsecond},
		{When: 5 * time.Millisecond, Stream: 3, Proc: 0, Status: StatusRPCError | 4},
	}
}

func TestRoundTrip(t *testing.T) {
	start := time.Unix(1700000000, 123456789)
	var buf bytes.Buffer
	if err := WriteAll(&buf, start, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	hdr, got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != Version {
		t.Fatalf("version = %d", hdr.Version)
	}
	if !hdr.Start.Equal(start) {
		t.Fatalf("start = %v, want %v", hdr.Start, start)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWriterStreamingAndTotal(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000 // forces several internal flushes
	for i := 0; i < n; i++ {
		if err := w.Append(Record{
			When: time.Duration(i) * time.Microsecond, Stream: uint32(i % 7),
			Proc: 6, FH: uint64(i % 13), Offset: uint64(i) * 8192, Count: 8192,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Total() != n {
		t.Fatalf("Total = %d", w.Total())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Append(Record{}) == nil {
		t.Fatal("Append after Close succeeded")
	}
	_, recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("read back %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.When != time.Duration(i)*time.Microsecond || r.Offset != uint64(i)*8192 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// A steady stream must beat the fixed-width encoding (~44 B/record).
	if perRec := float64(buf.Len()-16) / n; perRec > 20 {
		t.Fatalf("encoding too fat: %.1f bytes/record", perRec)
	}
}

// TestAppendAllocFree pins the zero-allocation append path.
func TestAppendAllocFree(t *testing.T) {
	w, err := NewWriter(io.Discard, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r := Record{Stream: 1, Proc: 6, FH: 9, Offset: 1 << 20, Count: 8192, Latency: time.Millisecond}
	allocs := testing.AllocsPerRun(1000, func() {
		r.When += 10 * time.Microsecond
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Append allocates %.1f objects/op, want 0", allocs)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.nft")
	start := time.Unix(99, 0)
	w, err := Create(path, start)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Streaming reader over the file.
	tr, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if !tr.Header().Start.Equal(start) {
		t.Fatalf("header start = %v", tr.Header().Start)
	}
	var rec Record
	for i := 0; ; i++ {
		err := tr.Next(&rec)
		if errors.Is(err, io.EOF) {
			if i != len(want) {
				t.Fatalf("EOF after %d records, want %d", i, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want[i])
		}
	}

	// Whole-file helper agrees.
	hdr, recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !hdr.Start.Equal(start) || len(recs) != len(want) {
		t.Fatalf("ReadFile: hdr=%+v len=%d", hdr, len(recs))
	}
}

func TestBadMagic(t *testing.T) {
	for _, in := range [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTATRACEFILE123"),
		// A future version the reader does not know.
		append([]byte("NFT3"), make([]byte, 12)...),
	} {
		if _, err := NewReader(bytes.NewReader(in)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("NewReader(%q) err = %v, want ErrBadMagic", in, err)
		}
	}
	// Both known versions parse.
	for _, magic := range []string{"NFT1", "NFT2"} {
		if _, err := NewReader(bytes.NewReader(append([]byte(magic), make([]byte, 12)...))); err != nil {
			t.Fatalf("NewReader(%s header) err = %v", magic, err)
		}
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, time.Unix(0, 0), sampleRecords()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	tr, err := NewReader(bytes.NewReader(b[:len(b)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	var sawErr error
	for {
		if err := tr.Next(&rec); err != nil {
			sawErr = err
			break
		}
	}
	if errors.Is(sawErr, io.EOF) || !errors.Is(sawErr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated trace error = %v, want ErrUnexpectedEOF", sawErr)
	}
}

func TestExtremeValues(t *testing.T) {
	recs := []Record{
		{When: math.MaxInt64 / 2, Stream: math.MaxUint32, Proc: math.MaxUint32,
			FH: math.MaxUint64, Offset: math.MaxUint64, Count: math.MaxUint32,
			Status: math.MaxUint32, Latency: math.MaxInt64},
		{When: 0}, // max negative delta
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, time.Unix(0, 0), recs); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}
