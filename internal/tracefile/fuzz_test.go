//go:build go1.18

package tracefile

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// FuzzRoundTrip drives arbitrary record streams through Writer and
// Reader and asserts the acceptance property of the trace subsystem:
// every decoded record equals its source, and in particular the
// per-stream (proc, FH, offset, count) sequences — what the replay
// engine dispatches in order per stream — survive the disk format
// exactly. The raw fuzz bytes are sliced into records so the fuzzer
// explores field widths (small varints through 10-byte ones), timestamp
// regressions and stream interleavings. Explore with:
//
//	go test -fuzz FuzzRoundTrip ./internal/tracefile/
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{}, int64(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int64(1700000000))
	seed := make([]byte, 0, 46*3)
	for i := 0; i < 46*3; i++ {
		seed = append(seed, byte(i*37))
	}
	f.Add(seed, int64(-1))

	f.Fuzz(func(t *testing.T, raw []byte, startNanos int64) {
		// Slice raw into records: 46 bytes each (6 uint64 + uint16 for
		// the stream, keeping stream cardinality low enough that streams
		// actually interleave). The stability field is derived from the
		// same bytes, covering small legal values and huge illegal ones.
		const recBytes = 46
		var want []Record
		var when time.Duration
		for len(raw) >= recBytes {
			u := func(i int) uint64 { return binary.LittleEndian.Uint64(raw[i:]) }
			// Deltas jitter forwards and backwards like completion-order
			// capture writes do.
			when += time.Duration(int64(u(0))%int64(time.Second)) / 2
			if when < 0 {
				when = 0
			}
			want = append(want, Record{
				When:    when,
				Stream:  uint32(binary.LittleEndian.Uint16(raw[8:])),
				Proc:    uint32(u(10)),
				FH:      u(18),
				Offset:  u(26),
				Count:   uint32(u(34)),
				Stable:  uint32(u(18) >> 32),
				Status:  uint32(u(34) >> 32),
				Latency: time.Duration(u(38) % uint64(time.Minute)),
			})
			raw = raw[recBytes:]
		}

		start := time.Unix(0, startNanos)
		var buf bytes.Buffer
		if err := WriteAll(&buf, start, want); err != nil {
			t.Fatal(err)
		}
		hdr, got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Start.UnixNano() != startNanos {
			t.Fatalf("start = %d, want %d", hdr.Start.UnixNano(), startNanos)
		}
		if len(got) != len(want) {
			t.Fatalf("decoded %d records, want %d", len(got), len(want))
		}
		perStream := make(map[uint32][]Record)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
			}
			perStream[want[i].Stream] = append(perStream[want[i].Stream], want[i])
		}
		// Per-stream dispatch sequences: filter the decode by stream and
		// compare (proc, FH, offset, count, stable) in order.
		for stream, wantSeq := range perStream {
			var i int
			for _, r := range got {
				if r.Stream != stream {
					continue
				}
				w := wantSeq[i]
				if r.Proc != w.Proc || r.FH != w.FH || r.Offset != w.Offset || r.Count != w.Count || r.Stable != w.Stable {
					t.Fatalf("stream %d op %d: got (%d,%d,%d,%d,%d), want (%d,%d,%d,%d,%d)",
						stream, i, r.Proc, r.FH, r.Offset, r.Count, r.Stable, w.Proc, w.FH, w.Offset, w.Count, w.Stable)
				}
				i++
			}
			if i != len(wantSeq) {
				t.Fatalf("stream %d: %d of %d ops survived", stream, i, len(wantSeq))
			}
		}
	})
}
