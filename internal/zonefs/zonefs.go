// Package zonefs is a vfs.Backend that stores file data behind the
// repository's ZCAV disk stack: every file is placed at concrete
// logical block addresses on a simulated zoned drive (internal/disk),
// demand reads and heuristic-driven read-ahead go through the block
// buffer cache (internal/buffercache) and a host I/O scheduler
// (internal/iosched), and the simulated service time of every disk
// command is converted into real elapsed time before the RPC reply
// leaves. Mounting it behind the live dispatch layer (internal/nfsd)
// makes live-socket benchmarks position- and cache-sensitive — the
// paper's headline traps, ZCAV transfer-rate variation by disk
// position and cache-warmth effects, finally apply to the live server
// instead of only to the simulator.
//
// File bytes live in an embedded memfs store (the page cache — the
// copy-on-write read-view contract is inherited from it verbatim);
// the disk stack carries no data, only timing. WriteAt lands in the
// page cache for free, exactly like a real server; Commit writes the
// range through to the simulated disk and costs real time at the
// file's zone rate. A cold cache pays media-rate transfers that
// depend on zone placement (outer tracks pass more sectors per
// revolution); a warm cache serves from memory and the placement
// stops mattering — which is precisely the benchmarking trap the
// zcav-live experiment demonstrates.
package zonefs

import (
	"fmt"
	"sync"
	"time"

	"nfstricks/internal/buffercache"
	"nfstricks/internal/disk"
	"nfstricks/internal/iosched"
	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/obs"
	"nfstricks/internal/sim"
	"nfstricks/internal/vfs"
)

// BlockSize is the file-system block size (8 KB, shared with
// buffercache).
const BlockSize = buffercache.BlockSize

// sectorsPerBlock is BlockSize in disk sectors.
const sectorsPerBlock = buffercache.SectorsPerBlock

// Placement selects where on the drive files are laid out: the
// outermost quarter (partition 1 in the paper's scsi1..scsi4 naming —
// the fastest zones) or the innermost quarter (partition 4, the
// slowest).
type Placement int

const (
	// Outer places files in the drive's outermost quarter.
	Outer Placement = iota
	// Inner places files in the drive's innermost quarter.
	Inner
)

// String names the placement ("outer"/"inner").
func (p Placement) String() string {
	if p == Inner {
		return "inner"
	}
	return "outer"
}

// Config assembles a zonefs store. The zero value is usable: the
// paper's IDE drive (the one with the pronounced ZCAV spread), outer
// placement, a 64 MB cache, elevator scheduling.
type Config struct {
	// Model is the drive's performance model (nil = disk.WD200BB, the
	// paper's IDE drive).
	Model *disk.Model
	// Placement picks the quarter of the drive files land on.
	Placement Placement
	// CacheMB is the buffer cache capacity in MB (0 = 64).
	CacheMB int
	// Scheduler is the host-side disk scheduler (nil = elevator).
	Scheduler iosched.Scheduler
	// Seed seeds the simulation's random source (rotational latency).
	Seed int64
	// TimeScale multiplies simulated disk time before it is slept out
	// (0 = 1.0, real-time fidelity; tests may shrink it). At exactly
	// 1.0 the simulated clock also tracks the wall clock between
	// requests, so idle gaps credit the drive's firmware prefetch as
	// they would on hardware; at any other scale the store runs on
	// pure event time and is deterministic for a given seed — wall
	// jitter amplified by the scale must not leak into timing.
	TimeScale float64
}

// Stats counts zonefs-level activity (the cache and device keep their
// own counters, reachable via CacheStats and DiskStats).
type Stats struct {
	// DemandHits and DemandMisses count demanded (non-read-ahead)
	// blocks by cache residency at request time.
	DemandHits   int64
	DemandMisses int64
	// DiskTime is the total simulated disk time charged (and slept).
	DiskTime time.Duration
	// BlocksAllocated counts blocks of LBA space handed to files.
	BlocksAllocated int64
}

// extent is one file's on-disk placement: a contiguous block run.
type extent struct {
	startLBA int64
	blocks   int64
}

// FS is a ZCAV disk-backed file store implementing vfs.Backend. Safe
// for concurrent use; disk-time accounting serializes on one mutex
// (there is one disk), but the sleep that charges the time happens
// outside it, so cache hits never wait behind a miss's mechanical
// delay — they only wait behind the busy disk itself, exactly like
// queueing at a real drive.
type FS struct {
	store *memfs.FS
	cfg   Config

	mu      sync.Mutex
	k       *sim.Kernel
	dev     *disk.Device
	cache   *buffercache.Cache
	region  disk.Partition
	nextLBA int64
	extents map[nfsproto.FH]*extent
	// epoch anchors the mapping from wall-clock to simulated time, so
	// idle gaps between requests credit the drive's firmware prefetch
	// exactly as they would on hardware.
	epoch time.Time
	// busyUntil is when the (single) disk finishes its queued work, in
	// wall-clock terms; the queueing model behind the sleeps.
	busyUntil time.Time

	demandHits   int64
	demandMisses int64
	diskTime     time.Duration
	blocksAlloc  int64
}

// New builds an empty store on a fresh simulated drive.
func New(cfg Config) *FS {
	if cfg.Model == nil {
		cfg.Model = disk.WD200BB()
	}
	if cfg.CacheMB <= 0 {
		cfg.CacheMB = 64
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = iosched.NewElevator()
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1.0
	}
	k := sim.NewKernel(cfg.Seed)
	dev := disk.NewDevice(k, cfg.Model)
	dr := disk.NewDriver(k, dev, cfg.Scheduler)
	cache := buffercache.New(k, dr, cfg.CacheMB<<20/BlockSize)
	quarters := cfg.Model.Geo.QuarterPartitions("part")
	region := quarters[0]
	if cfg.Placement == Inner {
		region = quarters[3]
	}
	fs := &FS{
		store:   memfs.NewFS(),
		cfg:     cfg,
		k:       k,
		dev:     dev,
		cache:   cache,
		region:  region,
		nextLBA: region.StartLBA,
		extents: make(map[nfsproto.FH]*extent),
		epoch:   time.Now(),
	}
	// The root directory exists from construction; its entry blocks get
	// placement like any other object. A fresh store is cold: the first
	// readdir pays the media.
	fs.extents[vfs.RootFH] = &extent{startLBA: fs.allocate(1), blocks: 1}
	return fs
}

// Placement reports where this store lays out its files.
func (fs *FS) Placement() Placement { return fs.cfg.Placement }

// Model returns the drive model backing the store.
func (fs *FS) Model() *disk.Model { return fs.cfg.Model }

// Stats snapshots the zonefs counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return Stats{
		DemandHits:      fs.demandHits,
		DemandMisses:    fs.demandMisses,
		DiskTime:        fs.diskTime,
		BlocksAllocated: fs.blocksAlloc,
	}
}

// CacheStats snapshots the buffer cache counters.
func (fs *FS) CacheStats() buffercache.Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cache.Stats()
}

// DiskStats snapshots the device counters.
func (fs *FS) DiskStats() disk.Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.dev.Stats()
}

// DropCaches empties the buffer cache — the paper's "defeat the
// cache" step between benchmark runs. File data is untouched (it
// lives on the simulated disk); the next read of every block pays the
// media again.
func (fs *FS) DropCaches() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cache.Flush()
}

// blocksFor returns the block count covering n bytes (minimum 1, so
// every file owns an address).
func blocksFor(n int) int64 {
	b := (int64(n) + BlockSize - 1) / BlockSize
	if b == 0 {
		b = 1
	}
	return b
}

// allocate carves blocks of LBA space from the placement region.
// Caller holds fs.mu. Returns -1 when the region is exhausted.
func (fs *FS) allocate(blocks int64) int64 {
	need := blocks * sectorsPerBlock
	if fs.nextLBA+need > fs.region.StartLBA+fs.region.Sectors {
		return -1
	}
	lba := fs.nextLBA
	fs.nextLBA += need
	fs.blocksAlloc += blocks
	return lba
}

// Create adds a file under dir with the given contents, placing it at
// the next free LBAs of the configured region, and returns its handle
// (vfs.Backend). The data starts on disk and not in the cache: a
// fresh file is cold.
func (fs *FS) Create(dir nfsproto.FH, name string, data []byte) (nfsproto.FH, error) {
	return fs.create(dir, len(data), func() (nfsproto.FH, error) { return fs.store.Create(dir, name, data) })
}

// CreateSized adds a zero-filled file of size bytes
// (vfs.SizedCreator).
func (fs *FS) CreateSized(dir nfsproto.FH, name string, size uint64) (nfsproto.FH, error) {
	return fs.create(dir, int(size), func() (nfsproto.FH, error) { return fs.store.CreateSized(dir, name, size) })
}

// create allocates placement for n bytes, then registers the file the
// store builds. Replacing an existing name leaks the old extent's
// address space; a benchmark store never reclaims. The parent's
// mutated entry blocks become resident dirty pages (see touchDirLocked).
func (fs *FS) create(dir nfsproto.FH, n int, mk func() (nfsproto.FH, error)) (nfsproto.FH, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	blocks := blocksFor(n)
	start := fs.allocate(blocks)
	if start < 0 {
		return 0, fmt.Errorf("%w: %s region full", vfs.ErrNoSpace, fs.cfg.Placement)
	}
	fh, err := mk()
	if err != nil {
		return 0, err // the just-allocated blocks leak; never reclaimed
	}
	fs.extents[fh] = &extent{startLBA: start, blocks: blocks}
	if err := fs.touchDirLocked(dir); err != nil {
		return 0, err
	}
	return fh, nil
}

// Mkdir creates a directory under dir (vfs.Backend). The new
// directory gets one entry block of placement; the block is a dirty
// page (resident) until the cache drops it.
func (fs *FS) Mkdir(dir nfsproto.FH, name string) (nfsproto.FH, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start := fs.allocate(1)
	if start < 0 {
		return 0, fmt.Errorf("%w: %s region full", vfs.ErrNoSpace, fs.cfg.Placement)
	}
	fh, err := fs.store.Mkdir(dir, name)
	if err != nil {
		return 0, err
	}
	fs.extents[fh] = &extent{startLBA: start, blocks: 1}
	fs.cache.Install(start)
	if err := fs.touchDirLocked(dir); err != nil {
		return 0, err
	}
	return fh, nil
}

// touchDirLocked reflects a namespace mutation of dir into the disk
// model: the directory's extent is grown to cover its entry bytes
// (entries × vfs.DirEntryBytes) and the covering blocks are installed
// as resident dirty pages — a mutation rewrites them in the page
// cache, it does not read the media. Caller holds fs.mu.
func (fs *FS) touchDirLocked(dir nfsproto.FH) error {
	attr, ok := fs.store.Getattr(dir)
	if !ok {
		return fmt.Errorf("%w: %d", vfs.ErrStale, dir)
	}
	ext := fs.extents[dir]
	if ext == nil {
		return fmt.Errorf("zonefs: dir %d has no extent", dir)
	}
	need := blocksFor(int(attr.Size))
	if need > ext.blocks {
		if err := fs.growLocked(dir, ext, need, attr.Size); err != nil {
			return err
		}
	}
	for b := int64(0); b < need && b < ext.blocks; b++ {
		fs.cache.Install(ext.startLBA + b*sectorsPerBlock)
	}
	return nil
}

// Lookup resolves a name under dir (vfs.Backend). Name resolution is
// charged nothing: the paper-era servers hold the directory name
// cache (dnlc) in memory, and so do we — only entry-block scans
// (Readdir) touch the media.
func (fs *FS) Lookup(dir nfsproto.FH, name string) (nfsproto.FH, vfs.Attr, error) {
	return fs.store.Lookup(dir, name)
}

// Readdir returns a page of dir's entries (vfs.Backend). Entry blocks
// that are not resident are fetched from the simulated disk as one
// clustered read — a cold directory scan pays seek plus media time at
// the directory's zone rate, a warm one is free. Paging cost is front
// loaded: the first page of a scan fetches the whole directory's
// entry blocks (the media read is clustered regardless of how many
// entries the reply carries), so later pages ride the now-warm cache.
func (fs *FS) Readdir(dir nfsproto.FH, cookie, cookieverf uint64, maxEntries int) (vfs.ReaddirPage, error) {
	page, err := fs.store.Readdir(dir, cookie, cookieverf, maxEntries)
	if err != nil {
		return page, err
	}
	attr, ok := fs.store.Getattr(dir)
	if !ok {
		return vfs.ReaddirPage{}, fmt.Errorf("%w: %d", vfs.ErrStale, dir)
	}
	fs.mu.Lock()
	ext := fs.extents[dir]
	if ext == nil {
		fs.mu.Unlock()
		return vfs.ReaddirPage{}, fmt.Errorf("zonefs: dir %d has no extent", dir)
	}
	bEnd := blocksFor(int(attr.Size))
	if bEnd > ext.blocks {
		bEnd = ext.blocks
	}
	misses := 0
	for b := int64(0); b < bEnd; b++ {
		if fs.cache.Contains(ext.startLBA + b*sectorsPerBlock) {
			fs.demandHits++
		} else {
			fs.demandMisses++
			misses++
		}
	}
	var deadline time.Time
	if misses > 0 {
		fs.advanceClock()
		before := fs.k.Now()
		fs.cache.FetchSpan(ext.startLBA, int(bEnd), int(bEnd))
		deadline = fs.chargeLocked(before)
	}
	fs.mu.Unlock()
	sleepUntil(deadline)
	return page, nil
}

// Remove unlinks dir/name (vfs.Backend). The removed object's address
// space leaks — a benchmark store never reclaims — and its extent
// mapping is dropped with the handle.
func (fs *FS) Remove(dir nfsproto.FH, name string) (nfsproto.FH, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	removed, err := fs.store.Remove(dir, name)
	if err != nil {
		return 0, err
	}
	delete(fs.extents, removed)
	if err := fs.touchDirLocked(dir); err != nil {
		return 0, err
	}
	return removed, nil
}

// Rename moves fromDir/fromName to toDir/toName (vfs.Backend). A
// replaced target's extent mapping is dropped (its address space
// leaks); both parents' entry blocks are rewritten in the page cache.
func (fs *FS) Rename(fromDir nfsproto.FH, fromName string, toDir nfsproto.FH, toName string) (nfsproto.FH, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	replaced, err := fs.store.Rename(fromDir, fromName, toDir, toName)
	if err != nil {
		return 0, err
	}
	if replaced != 0 {
		delete(fs.extents, replaced)
	}
	if err := fs.touchDirLocked(fromDir); err != nil {
		return 0, err
	}
	if fromDir != toDir {
		if err := fs.touchDirLocked(toDir); err != nil {
			return 0, err
		}
	}
	return replaced, nil
}

// Setattr sets a file's size (vfs.Backend). An extension grows the
// extent and installs the new blocks as dirty pages (they are
// zero-filled in the page cache, not read from media); a truncation
// keeps the placement — allocation slack, like everywhere else here,
// is never reclaimed.
func (fs *FS) Setattr(fh nfsproto.FH, size uint64) error {
	fs.mu.Lock()
	attr, ok := fs.store.Getattr(fh)
	if !ok {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	if attr.Dir {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %d", vfs.ErrIsDir, fh)
	}
	ext := fs.extents[fh]
	if ext == nil {
		fs.mu.Unlock()
		return fmt.Errorf("zonefs: file %d has no extent", fh)
	}
	if size > vfs.MaxFileSize {
		fs.mu.Unlock()
		return fmt.Errorf("%w (setattr size=%d)", vfs.ErrTooBig, size)
	}
	if need := blocksFor(int(size)); need > ext.blocks {
		if err := fs.growLocked(fh, ext, need, attr.Size); err != nil {
			fs.mu.Unlock()
			return err
		}
	}
	fs.mu.Unlock()
	if err := fs.store.Setattr(fh, size); err != nil {
		return err
	}
	if int64(size) > attr.Size {
		fs.mu.Lock()
		if ext := fs.extents[fh]; ext != nil {
			b0 := attr.Size / BlockSize
			bEnd := (int64(size) + BlockSize - 1) / BlockSize
			for b := b0; b < bEnd && b < ext.blocks; b++ {
				fs.cache.Install(ext.startLBA + b*sectorsPerBlock)
			}
		}
		fs.mu.Unlock()
	}
	return nil
}

// Getattr returns an object's attributes (vfs.Backend).
func (fs *FS) Getattr(fh nfsproto.FH) (vfs.Attr, bool) {
	return fs.store.Getattr(fh)
}

// Access grants the file or directory mask on any live handle
// (vfs.Backend).
func (fs *FS) Access(fh nfsproto.FH, mask uint32) (uint32, bool) {
	return fs.store.Access(fh, mask)
}

// Fsstat reports the placement region's capacity and what allocation
// has not yet consumed (vfs.Backend).
func (fs *FS) Fsstat() (total, free uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	total = uint64(fs.region.Bytes())
	used := uint64(fs.blocksAlloc) * BlockSize
	if used > total {
		return total, 0
	}
	return total, total - used
}

// advanceClock brings simulated time up to the wall clock. The drive
// firmware turns idle time into prefetch for the last-serviced stream,
// so a latency-bound client re-reading sequentially gets buffer-speed
// service — the effect the paper's §5 calls out. Only meaningful at
// real-time fidelity: a scaled store would amplify scheduler jitter
// by 1/TimeScale into simulated idle, so it runs on pure event time
// instead (see Config.TimeScale). Caller holds fs.mu.
func (fs *FS) advanceClock() {
	if fs.cfg.TimeScale != 1.0 {
		return
	}
	if target := time.Since(fs.epoch); target > fs.k.Now() {
		fs.k.RunUntil(target)
	}
}

// chargeLocked runs the simulation until all issued disk commands
// complete and folds the simulated delta into the busy-until queue
// model. It returns the wall-clock instant the disk is free again;
// the caller sleeps until then after releasing fs.mu. Caller holds
// fs.mu.
func (fs *FS) chargeLocked(before time.Duration) time.Time {
	fs.k.Run()
	delta := time.Duration(float64(fs.k.Now()-before) * fs.cfg.TimeScale)
	if delta <= 0 {
		return time.Time{}
	}
	fs.diskTime += delta
	now := time.Now()
	start := fs.busyUntil
	if now.After(start) {
		start = now
	}
	fs.busyUntil = start.Add(delta)
	return fs.busyUntil
}

// sleepUntil waits out the disk's service time in real time.
func sleepUntil(deadline time.Time) {
	if deadline.IsZero() {
		return
	}
	if d := time.Until(deadline); d > 0 {
		time.Sleep(d)
	}
}

// ReadAt returns up to count bytes at off as a copy-on-write view
// (vfs.Backend). Blocks of the demanded range that are not resident
// in the buffer cache are fetched from the simulated disk — clustered
// into large commands, together with `ahead` blocks of heuristic
// read-ahead — and the commands' simulated service time elapses for
// real before the data is returned. Resident blocks cost nothing:
// cache warmth decides whether zone placement is visible at all.
func (fs *FS) ReadAt(fh nfsproto.FH, off uint64, count uint32, ahead int) (data []byte, size uint64, eof bool, err error) {
	return fs.ReadAtSpan(fh, off, count, ahead, nil)
}

// ReadAtSpan is ReadAt with stage attribution (vfs.SpanReader): the
// wall time actually slept for simulated disk service is reported as
// obs.StageDisk, carved out of the caller's backend stage — so a
// span's backend time is cache/bookkeeping cost and its disk time is
// the disk, separately visible. A nil span is exactly ReadAt.
func (fs *FS) ReadAtSpan(fh nfsproto.FH, off uint64, count uint32, ahead int, sp *obs.Span) (data []byte, size uint64, eof bool, err error) {
	data, size, eof, err = fs.store.ReadAt(fh, off, count, 0)
	if err != nil || len(data) == 0 {
		return data, size, eof, err
	}

	fs.mu.Lock()
	ext := fs.extents[fh]
	if ext == nil {
		// A store file without placement cannot happen via the Backend
		// surface; fail loudly rather than serve untimed data.
		fs.mu.Unlock()
		return nil, 0, false, fmt.Errorf("zonefs: file %d has no extent", fh)
	}
	b0 := int64(off) / BlockSize
	bEnd := (int64(off) + int64(len(data)) + BlockSize - 1) / BlockSize
	if bEnd > ext.blocks {
		bEnd = ext.blocks
	}
	var deadline time.Time
	demandMisses := false
	for b := b0; b < bEnd; b++ {
		if fs.cache.Contains(ext.startLBA + b*sectorsPerBlock) {
			fs.demandHits++
		} else {
			fs.demandMisses++
			demandMisses = true
		}
	}
	// Fetch the demand range plus the heuristic's read-ahead window in
	// one clustered pass. When everything demanded is resident the
	// read-ahead has either happened already or was never earned —
	// issuing it again would just re-scan the cache, so skip the disk
	// entirely (the hit path must stay lock-cheap).
	if demandMisses {
		fs.advanceClock()
		before := fs.k.Now()
		span := bEnd - b0 + int64(ahead)
		if b0+span > ext.blocks {
			span = ext.blocks - b0
		}
		fs.cache.FetchSpan(ext.startLBA+b0*sectorsPerBlock, int(span), int(bEnd-b0))
		deadline = fs.chargeLocked(before)
	}
	fs.mu.Unlock()
	if sp != nil && !deadline.IsZero() {
		start := time.Now()
		sleepUntil(deadline)
		sp.Observe(obs.StageDisk, time.Since(start))
		return data, size, eof, err
	}
	sleepUntil(deadline)
	return data, size, eof, err
}

// WriteAt stores data at off in the page cache (vfs.Backend). No disk
// time is charged — the touched blocks become resident dirty pages,
// and durability waits for Commit, exactly the asymmetry that makes
// UNSTABLE writes fast on a real server.
//
// Validation and extent growth happen under fs.mu before the page
// cache is touched, so a write refused for space (or bounds) leaves
// nothing behind — readers never see bytes the writer was told were
// rejected — and concurrent writers to one file (a write-behind
// pipeline) see a consistent size when an extent is relocated.
func (fs *FS) WriteAt(fh nfsproto.FH, off uint64, data []byte) error {
	fs.mu.Lock()
	attr, ok := fs.store.Getattr(fh)
	if !ok {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	if attr.Dir {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %d", vfs.ErrIsDir, fh)
	}
	size := attr.Size
	ext := fs.extents[fh]
	if ext == nil {
		fs.mu.Unlock()
		return fmt.Errorf("zonefs: file %d has no extent", fh)
	}
	// The store enforces the same bound; checking here keeps the
	// extent untouched on a write that would be refused anyway.
	if off > vfs.MaxFileSize || uint64(len(data)) > vfs.MaxFileSize-off {
		fs.mu.Unlock()
		return fmt.Errorf("%w (off=%d len=%d)", vfs.ErrTooBig, off, len(data))
	}
	newEnd := int64(off) + int64(len(data))
	if newEnd < size {
		newEnd = size
	}
	if need := blocksFor(int(newEnd)); need > ext.blocks {
		if err := fs.growLocked(fh, ext, need, size); err != nil {
			fs.mu.Unlock()
			return err
		}
	}
	fs.mu.Unlock()
	if err := fs.store.WriteAt(fh, off, data); err != nil {
		return err
	}
	// The written blocks are resident by definition — they are the
	// page cache's dirty pages. Installed after the store write under
	// a fresh lock acquisition: if a concurrent grower relocated the
	// extent in between, startLBA here is the new placement.
	fs.mu.Lock()
	if ext := fs.extents[fh]; ext != nil {
		b0 := int64(off) / BlockSize
		bEnd := (int64(off) + int64(len(data)) + BlockSize - 1) / BlockSize
		for b := b0; b < bEnd && b < ext.blocks; b++ {
			fs.cache.Install(ext.startLBA + b*sectorsPerBlock)
		}
	}
	fs.mu.Unlock()
	return nil
}

// growLocked extends a file's placement. If the file owns the last
// allocation it grows in place; otherwise it is relocated to a fresh,
// larger extent (the old address space leaks — FFS would reallocate
// similarly under fragmentation, and the page cache holds the bytes
// so nothing is copied). Caller holds fs.mu.
func (fs *FS) growLocked(fh nfsproto.FH, ext *extent, need int64, oldSize int64) error {
	endLBA := ext.startLBA + ext.blocks*sectorsPerBlock
	if endLBA == fs.nextLBA {
		extra := need - ext.blocks
		if fs.allocate(extra) < 0 {
			return fmt.Errorf("%w: %s region full", vfs.ErrNoSpace, fs.cfg.Placement)
		}
		ext.blocks = need
		return nil
	}
	start := fs.allocate(need)
	if start < 0 {
		return fmt.Errorf("%w: %s region full", vfs.ErrNoSpace, fs.cfg.Placement)
	}
	// Carry residency across the move: exactly the blocks resident
	// under the old placement are resident under the new one. Blocks
	// that were never read stay cold — relocation must not warm a
	// file the benchmark believes is on disk. The old LBAs' entries
	// stay in the cache until evicted; harmless (never demanded
	// again).
	for b := int64(0); b < blocksFor(int(oldSize)) && b < need; b++ {
		if fs.cache.Contains(ext.startLBA + b*sectorsPerBlock) {
			fs.cache.Install(start + b*sectorsPerBlock)
		}
	}
	ext.startLBA = start
	ext.blocks = need
	return nil
}

// Commit writes [off, off+count) — or the whole file when count is 0
// — through to the simulated disk, charging real time for the write
// commands at the file's zone rate (vfs.Backend).
func (fs *FS) Commit(fh nfsproto.FH, off uint64, count uint32) error {
	attr, ok := fs.store.Getattr(fh)
	if !ok {
		return fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	if attr.Dir {
		// COMMIT of a directory handle is a no-op: entry blocks are
		// written through by the namespace mutation path.
		return nil
	}
	size := attr.Size
	fs.mu.Lock()
	ext := fs.extents[fh]
	if ext == nil {
		fs.mu.Unlock()
		return fmt.Errorf("zonefs: file %d has no extent", fh)
	}
	// count 0 means the whole file, whatever off says (the vfs
	// contract); either way nothing past EOF is written through —
	// allocation slack holds no data.
	fileEnd := (size + BlockSize - 1) / BlockSize
	b0 := int64(off) / BlockSize
	bEnd := fileEnd
	if count == 0 {
		b0 = 0
	} else if e := (int64(off) + int64(count) + BlockSize - 1) / BlockSize; e < bEnd {
		bEnd = e
	}
	if bEnd > ext.blocks {
		bEnd = ext.blocks
	}
	var deadline time.Time
	if b0 < bEnd {
		fs.advanceClock()
		before := fs.k.Now()
		for b := b0; b < bEnd; b++ {
			fs.cache.Write(ext.startLBA + b*sectorsPerBlock)
		}
		deadline = fs.chargeLocked(before)
	}
	fs.mu.Unlock()
	sleepUntil(deadline)
	return nil
}
