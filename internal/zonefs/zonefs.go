// Package zonefs is a vfs.Backend that stores file data behind the
// repository's ZCAV disk stack: every file is placed at concrete
// logical block addresses on a simulated zoned drive (internal/disk),
// demand reads and heuristic-driven read-ahead go through the block
// buffer cache (internal/buffercache) and a host I/O scheduler
// (internal/iosched), and the simulated service time of every disk
// command is converted into real elapsed time before the RPC reply
// leaves. Mounting it behind the live dispatch layer (internal/nfsd)
// makes live-socket benchmarks position- and cache-sensitive — the
// paper's headline traps, ZCAV transfer-rate variation by disk
// position and cache-warmth effects, finally apply to the live server
// instead of only to the simulator.
//
// File bytes live in an embedded memfs store (the page cache — the
// copy-on-write read-view contract is inherited from it verbatim);
// the disk stack carries no data, only timing. WriteAt lands in the
// page cache for free, exactly like a real server; Commit writes the
// range through to the simulated disk and costs real time at the
// file's zone rate. A cold cache pays media-rate transfers that
// depend on zone placement (outer tracks pass more sectors per
// revolution); a warm cache serves from memory and the placement
// stops mattering — which is precisely the benchmarking trap the
// zcav-live experiment demonstrates.
package zonefs

import (
	"fmt"
	"sync"
	"time"

	"nfstricks/internal/buffercache"
	"nfstricks/internal/disk"
	"nfstricks/internal/iosched"
	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/sim"
	"nfstricks/internal/vfs"
)

// BlockSize is the file-system block size (8 KB, shared with
// buffercache).
const BlockSize = buffercache.BlockSize

// sectorsPerBlock is BlockSize in disk sectors.
const sectorsPerBlock = buffercache.SectorsPerBlock

// Placement selects where on the drive files are laid out: the
// outermost quarter (partition 1 in the paper's scsi1..scsi4 naming —
// the fastest zones) or the innermost quarter (partition 4, the
// slowest).
type Placement int

const (
	// Outer places files in the drive's outermost quarter.
	Outer Placement = iota
	// Inner places files in the drive's innermost quarter.
	Inner
)

// String names the placement ("outer"/"inner").
func (p Placement) String() string {
	if p == Inner {
		return "inner"
	}
	return "outer"
}

// Config assembles a zonefs store. The zero value is usable: the
// paper's IDE drive (the one with the pronounced ZCAV spread), outer
// placement, a 64 MB cache, elevator scheduling.
type Config struct {
	// Model is the drive's performance model (nil = disk.WD200BB, the
	// paper's IDE drive).
	Model *disk.Model
	// Placement picks the quarter of the drive files land on.
	Placement Placement
	// CacheMB is the buffer cache capacity in MB (0 = 64).
	CacheMB int
	// Scheduler is the host-side disk scheduler (nil = elevator).
	Scheduler iosched.Scheduler
	// Seed seeds the simulation's random source (rotational latency).
	Seed int64
	// TimeScale multiplies simulated disk time before it is slept out
	// (0 = 1.0, real-time fidelity; tests may shrink it). At exactly
	// 1.0 the simulated clock also tracks the wall clock between
	// requests, so idle gaps credit the drive's firmware prefetch as
	// they would on hardware; at any other scale the store runs on
	// pure event time and is deterministic for a given seed — wall
	// jitter amplified by the scale must not leak into timing.
	TimeScale float64
}

// Stats counts zonefs-level activity (the cache and device keep their
// own counters, reachable via CacheStats and DiskStats).
type Stats struct {
	// DemandHits and DemandMisses count demanded (non-read-ahead)
	// blocks by cache residency at request time.
	DemandHits   int64
	DemandMisses int64
	// DiskTime is the total simulated disk time charged (and slept).
	DiskTime time.Duration
	// BlocksAllocated counts blocks of LBA space handed to files.
	BlocksAllocated int64
}

// extent is one file's on-disk placement: a contiguous block run.
type extent struct {
	startLBA int64
	blocks   int64
}

// FS is a ZCAV disk-backed file store implementing vfs.Backend. Safe
// for concurrent use; disk-time accounting serializes on one mutex
// (there is one disk), but the sleep that charges the time happens
// outside it, so cache hits never wait behind a miss's mechanical
// delay — they only wait behind the busy disk itself, exactly like
// queueing at a real drive.
type FS struct {
	store *memfs.FS
	cfg   Config

	mu      sync.Mutex
	k       *sim.Kernel
	dev     *disk.Device
	cache   *buffercache.Cache
	region  disk.Partition
	nextLBA int64
	extents map[nfsproto.FH]*extent
	// epoch anchors the mapping from wall-clock to simulated time, so
	// idle gaps between requests credit the drive's firmware prefetch
	// exactly as they would on hardware.
	epoch time.Time
	// busyUntil is when the (single) disk finishes its queued work, in
	// wall-clock terms; the queueing model behind the sleeps.
	busyUntil time.Time

	demandHits   int64
	demandMisses int64
	diskTime     time.Duration
	blocksAlloc  int64
}

// New builds an empty store on a fresh simulated drive.
func New(cfg Config) *FS {
	if cfg.Model == nil {
		cfg.Model = disk.WD200BB()
	}
	if cfg.CacheMB <= 0 {
		cfg.CacheMB = 64
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = iosched.NewElevator()
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1.0
	}
	k := sim.NewKernel(cfg.Seed)
	dev := disk.NewDevice(k, cfg.Model)
	dr := disk.NewDriver(k, dev, cfg.Scheduler)
	cache := buffercache.New(k, dr, cfg.CacheMB<<20/BlockSize)
	quarters := cfg.Model.Geo.QuarterPartitions("part")
	region := quarters[0]
	if cfg.Placement == Inner {
		region = quarters[3]
	}
	return &FS{
		store:   memfs.NewFS(),
		cfg:     cfg,
		k:       k,
		dev:     dev,
		cache:   cache,
		region:  region,
		nextLBA: region.StartLBA,
		extents: make(map[nfsproto.FH]*extent),
		epoch:   time.Now(),
	}
}

// Placement reports where this store lays out its files.
func (fs *FS) Placement() Placement { return fs.cfg.Placement }

// Model returns the drive model backing the store.
func (fs *FS) Model() *disk.Model { return fs.cfg.Model }

// Stats snapshots the zonefs counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return Stats{
		DemandHits:      fs.demandHits,
		DemandMisses:    fs.demandMisses,
		DiskTime:        fs.diskTime,
		BlocksAllocated: fs.blocksAlloc,
	}
}

// CacheStats snapshots the buffer cache counters.
func (fs *FS) CacheStats() buffercache.Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cache.Stats()
}

// DiskStats snapshots the device counters.
func (fs *FS) DiskStats() disk.Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.dev.Stats()
}

// DropCaches empties the buffer cache — the paper's "defeat the
// cache" step between benchmark runs. File data is untouched (it
// lives on the simulated disk); the next read of every block pays the
// media again.
func (fs *FS) DropCaches() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cache.Flush()
}

// blocksFor returns the block count covering n bytes (minimum 1, so
// every file owns an address).
func blocksFor(n int) int64 {
	b := (int64(n) + BlockSize - 1) / BlockSize
	if b == 0 {
		b = 1
	}
	return b
}

// allocate carves blocks of LBA space from the placement region.
// Caller holds fs.mu. Returns -1 when the region is exhausted.
func (fs *FS) allocate(blocks int64) int64 {
	need := blocks * sectorsPerBlock
	if fs.nextLBA+need > fs.region.StartLBA+fs.region.Sectors {
		return -1
	}
	lba := fs.nextLBA
	fs.nextLBA += need
	fs.blocksAlloc += blocks
	return lba
}

// Create adds a file with the given contents, placing it at the next
// free LBAs of the configured region, and returns its handle — or 0
// when the region has no room (vfs.Backend). The data starts on disk
// and not in the cache: a fresh store is cold.
func (fs *FS) Create(name string, data []byte) nfsproto.FH {
	return fs.create(len(data), func() nfsproto.FH { return fs.store.Create(name, data) })
}

// CreateSized adds a zero-filled file of size bytes
// (vfs.SizedCreator).
func (fs *FS) CreateSized(name string, size uint64) nfsproto.FH {
	return fs.create(int(size), func() nfsproto.FH { return fs.store.CreateSized(name, size) })
}

// create allocates placement for n bytes, then registers the file the
// store builds. Replacing an existing name leaks the old extent's
// address space; a benchmark store never reclaims.
func (fs *FS) create(n int, mk func() nfsproto.FH) nfsproto.FH {
	fs.mu.Lock()
	blocks := blocksFor(n)
	start := fs.allocate(blocks)
	if start < 0 {
		fs.mu.Unlock()
		return 0
	}
	fh := mk()
	fs.extents[fh] = &extent{startLBA: start, blocks: blocks}
	fs.mu.Unlock()
	return fh
}

// Lookup resolves a name (vfs.Backend).
func (fs *FS) Lookup(name string) (nfsproto.FH, int64, bool) {
	return fs.store.Lookup(name)
}

// Getattr returns a file's size (vfs.Backend).
func (fs *FS) Getattr(fh nfsproto.FH) (int64, bool) {
	return fs.store.Getattr(fh)
}

// Access grants read/modify/extend on any live handle (vfs.Backend).
func (fs *FS) Access(fh nfsproto.FH, mask uint32) (uint32, bool) {
	return fs.store.Access(fh, mask)
}

// Fsstat reports the placement region's capacity and what allocation
// has not yet consumed (vfs.Backend).
func (fs *FS) Fsstat() (total, free uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	total = uint64(fs.region.Bytes())
	used := uint64(fs.blocksAlloc) * BlockSize
	if used > total {
		return total, 0
	}
	return total, total - used
}

// advanceClock brings simulated time up to the wall clock. The drive
// firmware turns idle time into prefetch for the last-serviced stream,
// so a latency-bound client re-reading sequentially gets buffer-speed
// service — the effect the paper's §5 calls out. Only meaningful at
// real-time fidelity: a scaled store would amplify scheduler jitter
// by 1/TimeScale into simulated idle, so it runs on pure event time
// instead (see Config.TimeScale). Caller holds fs.mu.
func (fs *FS) advanceClock() {
	if fs.cfg.TimeScale != 1.0 {
		return
	}
	if target := time.Since(fs.epoch); target > fs.k.Now() {
		fs.k.RunUntil(target)
	}
}

// chargeLocked runs the simulation until all issued disk commands
// complete and folds the simulated delta into the busy-until queue
// model. It returns the wall-clock instant the disk is free again;
// the caller sleeps until then after releasing fs.mu. Caller holds
// fs.mu.
func (fs *FS) chargeLocked(before time.Duration) time.Time {
	fs.k.Run()
	delta := time.Duration(float64(fs.k.Now()-before) * fs.cfg.TimeScale)
	if delta <= 0 {
		return time.Time{}
	}
	fs.diskTime += delta
	now := time.Now()
	start := fs.busyUntil
	if now.After(start) {
		start = now
	}
	fs.busyUntil = start.Add(delta)
	return fs.busyUntil
}

// sleepUntil waits out the disk's service time in real time.
func sleepUntil(deadline time.Time) {
	if deadline.IsZero() {
		return
	}
	if d := time.Until(deadline); d > 0 {
		time.Sleep(d)
	}
}

// ReadAt returns up to count bytes at off as a copy-on-write view
// (vfs.Backend). Blocks of the demanded range that are not resident
// in the buffer cache are fetched from the simulated disk — clustered
// into large commands, together with `ahead` blocks of heuristic
// read-ahead — and the commands' simulated service time elapses for
// real before the data is returned. Resident blocks cost nothing:
// cache warmth decides whether zone placement is visible at all.
func (fs *FS) ReadAt(fh nfsproto.FH, off uint64, count uint32, ahead int) (data []byte, size uint64, eof bool, err error) {
	data, size, eof, err = fs.store.ReadAt(fh, off, count, 0)
	if err != nil || len(data) == 0 {
		return data, size, eof, err
	}

	fs.mu.Lock()
	ext := fs.extents[fh]
	if ext == nil {
		// A store file without placement cannot happen via the Backend
		// surface; fail loudly rather than serve untimed data.
		fs.mu.Unlock()
		return nil, 0, false, fmt.Errorf("zonefs: file %d has no extent", fh)
	}
	b0 := int64(off) / BlockSize
	bEnd := (int64(off) + int64(len(data)) + BlockSize - 1) / BlockSize
	if bEnd > ext.blocks {
		bEnd = ext.blocks
	}
	var deadline time.Time
	demandMisses := false
	for b := b0; b < bEnd; b++ {
		if fs.cache.Contains(ext.startLBA + b*sectorsPerBlock) {
			fs.demandHits++
		} else {
			fs.demandMisses++
			demandMisses = true
		}
	}
	// Fetch the demand range plus the heuristic's read-ahead window in
	// one clustered pass. When everything demanded is resident the
	// read-ahead has either happened already or was never earned —
	// issuing it again would just re-scan the cache, so skip the disk
	// entirely (the hit path must stay lock-cheap).
	if demandMisses {
		fs.advanceClock()
		before := fs.k.Now()
		span := bEnd - b0 + int64(ahead)
		if b0+span > ext.blocks {
			span = ext.blocks - b0
		}
		fs.cache.FetchSpan(ext.startLBA+b0*sectorsPerBlock, int(span), int(bEnd-b0))
		deadline = fs.chargeLocked(before)
	}
	fs.mu.Unlock()
	sleepUntil(deadline)
	return data, size, eof, err
}

// WriteAt stores data at off in the page cache (vfs.Backend). No disk
// time is charged — the touched blocks become resident dirty pages,
// and durability waits for Commit, exactly the asymmetry that makes
// UNSTABLE writes fast on a real server.
//
// Validation and extent growth happen under fs.mu before the page
// cache is touched, so a write refused for space (or bounds) leaves
// nothing behind — readers never see bytes the writer was told were
// rejected — and concurrent writers to one file (a write-behind
// pipeline) see a consistent size when an extent is relocated.
func (fs *FS) WriteAt(fh nfsproto.FH, off uint64, data []byte) error {
	fs.mu.Lock()
	size, ok := fs.store.Getattr(fh)
	if !ok {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	ext := fs.extents[fh]
	if ext == nil {
		fs.mu.Unlock()
		return fmt.Errorf("zonefs: file %d has no extent", fh)
	}
	// The store enforces the same bound; checking here keeps the
	// extent untouched on a write that would be refused anyway.
	if off > vfs.MaxFileSize || uint64(len(data)) > vfs.MaxFileSize-off {
		fs.mu.Unlock()
		return fmt.Errorf("%w (off=%d len=%d)", vfs.ErrTooBig, off, len(data))
	}
	newEnd := int64(off) + int64(len(data))
	if newEnd < size {
		newEnd = size
	}
	if need := blocksFor(int(newEnd)); need > ext.blocks {
		if err := fs.growLocked(fh, ext, need, size); err != nil {
			fs.mu.Unlock()
			return err
		}
	}
	fs.mu.Unlock()
	if err := fs.store.WriteAt(fh, off, data); err != nil {
		return err
	}
	// The written blocks are resident by definition — they are the
	// page cache's dirty pages. Installed after the store write under
	// a fresh lock acquisition: if a concurrent grower relocated the
	// extent in between, startLBA here is the new placement.
	fs.mu.Lock()
	if ext := fs.extents[fh]; ext != nil {
		b0 := int64(off) / BlockSize
		bEnd := (int64(off) + int64(len(data)) + BlockSize - 1) / BlockSize
		for b := b0; b < bEnd && b < ext.blocks; b++ {
			fs.cache.Install(ext.startLBA + b*sectorsPerBlock)
		}
	}
	fs.mu.Unlock()
	return nil
}

// growLocked extends a file's placement. If the file owns the last
// allocation it grows in place; otherwise it is relocated to a fresh,
// larger extent (the old address space leaks — FFS would reallocate
// similarly under fragmentation, and the page cache holds the bytes
// so nothing is copied). Caller holds fs.mu.
func (fs *FS) growLocked(fh nfsproto.FH, ext *extent, need int64, oldSize int64) error {
	endLBA := ext.startLBA + ext.blocks*sectorsPerBlock
	if endLBA == fs.nextLBA {
		extra := need - ext.blocks
		if fs.allocate(extra) < 0 {
			return fmt.Errorf("%w: %s region full", vfs.ErrNoSpace, fs.cfg.Placement)
		}
		ext.blocks = need
		return nil
	}
	start := fs.allocate(need)
	if start < 0 {
		return fmt.Errorf("%w: %s region full", vfs.ErrNoSpace, fs.cfg.Placement)
	}
	// Carry residency across the move: exactly the blocks resident
	// under the old placement are resident under the new one. Blocks
	// that were never read stay cold — relocation must not warm a
	// file the benchmark believes is on disk. The old LBAs' entries
	// stay in the cache until evicted; harmless (never demanded
	// again).
	for b := int64(0); b < blocksFor(int(oldSize)) && b < need; b++ {
		if fs.cache.Contains(ext.startLBA + b*sectorsPerBlock) {
			fs.cache.Install(start + b*sectorsPerBlock)
		}
	}
	ext.startLBA = start
	ext.blocks = need
	return nil
}

// Commit writes [off, off+count) — or the whole file when count is 0
// — through to the simulated disk, charging real time for the write
// commands at the file's zone rate (vfs.Backend).
func (fs *FS) Commit(fh nfsproto.FH, off uint64, count uint32) error {
	size, ok := fs.store.Getattr(fh)
	if !ok {
		return fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	fs.mu.Lock()
	ext := fs.extents[fh]
	if ext == nil {
		fs.mu.Unlock()
		return fmt.Errorf("zonefs: file %d has no extent", fh)
	}
	// count 0 means the whole file, whatever off says (the vfs
	// contract); either way nothing past EOF is written through —
	// allocation slack holds no data.
	fileEnd := (size + BlockSize - 1) / BlockSize
	b0 := int64(off) / BlockSize
	bEnd := fileEnd
	if count == 0 {
		b0 = 0
	} else if e := (int64(off) + int64(count) + BlockSize - 1) / BlockSize; e < bEnd {
		bEnd = e
	}
	if bEnd > ext.blocks {
		bEnd = ext.blocks
	}
	var deadline time.Time
	if b0 < bEnd {
		fs.advanceClock()
		before := fs.k.Now()
		for b := b0; b < bEnd; b++ {
			fs.cache.Write(ext.startLBA + b*sectorsPerBlock)
		}
		deadline = fs.chargeLocked(before)
	}
	fs.mu.Unlock()
	sleepUntil(deadline)
	return nil
}
