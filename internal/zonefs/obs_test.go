package zonefs_test

import (
	"bytes"
	"testing"

	"nfstricks/internal/obs"
	"nfstricks/internal/zonefs"
)

// TestReadAtSpanDiskAttribution pins the vfs.SpanReader contract: a
// cold read (demand misses, simulated disk service slept out) reports
// nonzero obs.StageDisk time on the span, a warm re-read of the same
// range reports none, and the returned data is identical either way.
func TestReadAtSpanDiskAttribution(t *testing.T) {
	fs := zonefs.New(zonefs.Config{Placement: zonefs.Outer, CacheMB: 64, Seed: 1})
	payload := bytes.Repeat([]byte{0xd1}, 1<<20)
	fh := create(t, fs, "f", payload)
	fs.DropCaches()

	table := obs.NewSpanTable("t", []string{"READ"})

	cold := table.Acquire()
	data, _, _, err := fs.ReadAtSpan(fh, 0, 256<<10, 0, cold)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload[:256<<10]) {
		t.Fatal("cold ReadAtSpan returned wrong data")
	}
	if cold.StageDur(obs.StageDisk) <= 0 {
		t.Fatal("cold read slept out simulated disk time but reported no StageDisk")
	}
	table.Finish(cold)

	warm := table.Acquire()
	data, _, _, err = fs.ReadAtSpan(fh, 0, 256<<10, 0, warm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload[:256<<10]) {
		t.Fatal("warm ReadAtSpan returned wrong data")
	}
	if d := warm.StageDur(obs.StageDisk); d != 0 {
		t.Fatalf("warm read reported %v StageDisk, want 0 (fully resident)", d)
	}
	table.Finish(warm)

	// A nil span must behave exactly like ReadAt.
	if _, _, _, err := fs.ReadAtSpan(fh, 0, 64<<10, 0, nil); err != nil {
		t.Fatal(err)
	}
}
