package zonefs_test

import (
	"testing"
	"time"

	"nfstricks/internal/nfsproto"

	"nfstricks/internal/buffercache"
	"nfstricks/internal/disk"
	"nfstricks/internal/vfs"
	"nfstricks/internal/vfs/vfstest"
	"nfstricks/internal/zonefs"
)

// create is the test shorthand for a root-directory file create.
func create(t *testing.T, fs *zonefs.FS, name string, data []byte) nfsproto.FH {
	t.Helper()
	fh, err := fs.Create(vfs.RootFH, name, data)
	if err != nil {
		t.Fatal(err)
	}
	return fh
}

// fastCfg shrinks simulated disk time 1000x so the conformance suite
// (which cares about semantics, not timing) stays fast.
func fastCfg(p zonefs.Placement) zonefs.Config {
	return zonefs.Config{Placement: p, CacheMB: 4, Seed: 1, TimeScale: 1e-3}
}

// TestBackendConformance runs the shared vfs.Backend suite against the
// disk-backed store, both placements.
func TestBackendConformance(t *testing.T) {
	for _, p := range []zonefs.Placement{zonefs.Outer, zonefs.Inner} {
		t.Run(p.String(), func(t *testing.T) {
			vfstest.Run(t, func(t *testing.T) vfs.Backend { return zonefs.New(fastCfg(p)) })
		})
	}
}

// TestColdReadTouchesDisk: a fresh store is cold — the first
// sequential read of a file must fetch every block from the simulated
// disk, and a second pass over a large-enough cache must be all hits.
func TestColdReadTouchesDisk(t *testing.T) {
	fs := zonefs.New(fastCfg(zonefs.Outer))
	const size = 64 * zonefs.BlockSize
	fh := create(t, fs, "f", make([]byte, size))

	readAll := func() {
		for off := uint64(0); off < size; off += 8192 {
			if _, _, _, err := fs.ReadAt(fh, off, 8192, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	readAll()
	st := fs.Stats()
	if st.DemandMisses == 0 {
		t.Fatalf("cold pass saw no demand misses: %+v", st)
	}
	if st.DiskTime == 0 {
		t.Fatal("cold pass charged no disk time")
	}
	if ds := fs.DiskStats(); ds.Commands == 0 {
		t.Fatal("cold pass issued no disk commands")
	}

	warmBefore := fs.Stats()
	readAll()
	st = fs.Stats()
	if st.DemandMisses != warmBefore.DemandMisses {
		t.Fatalf("warm pass missed: %d -> %d", warmBefore.DemandMisses, st.DemandMisses)
	}
	if st.DemandHits <= warmBefore.DemandHits {
		t.Fatal("warm pass recorded no hits")
	}

	// Dropping the cache makes the next pass cold again.
	fs.DropCaches()
	readAll()
	if fs.Stats().DemandMisses <= st.DemandMisses {
		t.Fatal("post-DropCaches pass saw no new misses")
	}
}

// TestOuterFasterThanInner pins the ZCAV effect at the source: the
// same cold sequential read charges measurably less simulated disk
// time on the outer placement than the inner one.
func TestOuterFasterThanInner(t *testing.T) {
	times := make(map[zonefs.Placement]time.Duration)
	for _, p := range []zonefs.Placement{zonefs.Outer, zonefs.Inner} {
		fs := zonefs.New(fastCfg(p))
		const size = 128 * zonefs.BlockSize
		fh := create(t, fs, "f", make([]byte, size))
		for off := uint64(0); off < size; off += 8192 {
			if _, _, _, err := fs.ReadAt(fh, off, 8192, 8); err != nil {
				t.Fatal(err)
			}
		}
		times[p] = fs.Stats().DiskTime
	}
	if times[zonefs.Outer] >= times[zonefs.Inner] {
		t.Fatalf("outer disk time %v not below inner %v", times[zonefs.Outer], times[zonefs.Inner])
	}
	ratio := float64(times[zonefs.Inner]) / float64(times[zonefs.Outer])
	if ratio < 1.2 {
		t.Errorf("inner/outer simulated-time ratio %.2f, want >= 1.2 (ZCAV)", ratio)
	}
}

// TestCommitChargesDisk: WriteAt is free (page cache), Commit pays the
// disk, and the committed blocks are resident afterwards.
func TestCommitChargesDisk(t *testing.T) {
	fs := zonefs.New(fastCfg(zonefs.Outer))
	fh := create(t, fs, "f", make([]byte, 16*zonefs.BlockSize))
	before := fs.Stats().DiskTime
	if err := fs.WriteAt(fh, 0, make([]byte, 4*zonefs.BlockSize)); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats().DiskTime; got != before {
		t.Fatalf("WriteAt charged disk time: %v -> %v", before, got)
	}
	if err := fs.Commit(fh, 0, 4*zonefs.BlockSize); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats().DiskTime; got <= before {
		t.Fatal("Commit charged no disk time")
	}
	if cs := fs.CacheStats(); cs.Writes != 4 {
		t.Fatalf("cache writes = %d, want 4", cs.Writes)
	}
}

// tinyModel is the WD200BB timing envelope on a doll-house geometry
// (192 KB drive, 48 KB per quarter), so exhaustion tests never
// allocate real gigabytes.
func tinyModel() *disk.Model {
	m := disk.WD200BB()
	m.Geo = disk.MustGeometry(1, []disk.Zone{
		{Cylinders: 4, SectorsPerTrack: 64},
		{Cylinders: 4, SectorsPerTrack: 32},
	})
	return m
}

// TestRegionExhaustion: creates larger than the placement region
// report no space (Create returns 0), and the store keeps its space
// accounting consistent at the edge.
func TestRegionExhaustion(t *testing.T) {
	cfg := fastCfg(zonefs.Outer)
	cfg.Model = tinyModel()
	fs := zonefs.New(cfg)
	total, _ := fs.Fsstat()
	if _, err := fs.Create(vfs.RootFH, "huge", nil); err != nil {
		t.Fatalf("1-block create failed on an empty region: %v", err)
	}
	chunk := int(total / 4)
	n := 0
	for ; n < 8; n++ {
		if _, err := fs.Create(vfs.RootFH, "c", make([]byte, chunk)); err != nil {
			break
		}
	}
	if n == 8 {
		t.Fatalf("region never filled (total=%d, chunk=%d)", total, chunk)
	}
	if _, free := fs.Fsstat(); free > total {
		t.Fatalf("free %d exceeds total %d", free, total)
	}
}

// TestCommitWholeFileIgnoresOffset: count 0 means the whole file per
// the vfs contract, even with a nonzero offset — and nothing past EOF
// is written through.
func TestCommitWholeFileIgnoresOffset(t *testing.T) {
	fs := zonefs.New(fastCfg(zonefs.Outer))
	const blocks = 5
	fh := create(t, fs, "f", make([]byte, blocks*zonefs.BlockSize+100)) // 6 blocks of data, extent rounds up
	if err := fs.Commit(fh, 2*zonefs.BlockSize, 0); err != nil {
		t.Fatal(err)
	}
	if cs := fs.CacheStats(); cs.Writes != blocks+1 {
		t.Fatalf("whole-file commit at off>0 wrote %d blocks, want %d", cs.Writes, blocks+1)
	}
}

// TestRelocationDoesNotWarmColdBlocks: growing a file that is not the
// last allocation relocates its extent; blocks that were never
// resident must stay cold at the new placement (only resident blocks
// carry their residency across the move).
func TestRelocationDoesNotWarmColdBlocks(t *testing.T) {
	fs := zonefs.New(fastCfg(zonefs.Outer))
	const blocks = 8
	a := create(t, fs, "a", make([]byte, blocks*zonefs.BlockSize))
	create(t, fs, "b", []byte("pin the allocation frontier"))
	// Warm only block 0 of a, then grow a past its extent (relocates).
	if _, _, _, err := fs.ReadAt(a, 0, 8192, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt(a, blocks*zonefs.BlockSize, []byte("grow")); err != nil {
		t.Fatal(err)
	}
	pre := fs.Stats()
	// Block 0 must still be warm, the untouched middle still cold.
	if _, _, _, err := fs.ReadAt(a, 0, 8192, 0); err != nil {
		t.Fatal(err)
	}
	if st := fs.Stats(); st.DemandHits != pre.DemandHits+1 {
		t.Fatalf("block 0 went cold across relocation: hits %d -> %d", pre.DemandHits, st.DemandHits)
	}
	if _, _, _, err := fs.ReadAt(a, 4*zonefs.BlockSize, 8192, 0); err != nil {
		t.Fatal(err)
	}
	if st := fs.Stats(); st.DemandMisses != pre.DemandMisses+1 {
		t.Fatalf("never-read block is warm after relocation: misses %d -> %d", pre.DemandMisses, st.DemandMisses)
	}
}

// TestReadAheadClusters: with a generous read-ahead hint the cache
// issues multi-block clustered commands instead of one command per
// block.
func TestReadAheadClusters(t *testing.T) {
	fs := zonefs.New(fastCfg(zonefs.Outer))
	const blocks = 64
	fh := create(t, fs, "f", make([]byte, blocks*zonefs.BlockSize))
	for off := uint64(0); off < blocks*zonefs.BlockSize; off += 8192 {
		if _, _, _, err := fs.ReadAt(fh, off, 8192, buffercache.MaxClusterBlocks); err != nil {
			t.Fatal(err)
		}
	}
	cs := fs.CacheStats()
	if cs.Clusters >= blocks {
		t.Fatalf("%d clusters for %d blocks — no clustering happened", cs.Clusters, blocks)
	}
	if cs.ReadAheads == 0 {
		t.Fatal("no read-ahead blocks fetched despite the hint")
	}
}
