package obs

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// counterShards is the per-counter stripe count: the next power of two
// covering GOMAXPROCS at init, capped so an over-provisioned host does
// not bloat every counter. Reads sum the stripes, so the count is exact
// regardless of how adds spread.
var counterShards = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n
}()

// pad keeps each stripe on its own cache line so concurrent adders on
// different cores do not false-share.
type counterCell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a lock-free sharded counter: Add picks a stripe from the
// caller's stack address (distinct goroutines run on distinct stacks,
// so concurrent adders spread across stripes instead of contending on
// one cache line) and Load sums the stripes. The total is exact — adds
// are atomic, and sharding only changes where they land. A nil Counter
// is a no-op/zero, so disabled-metrics paths need no branches.
type Counter struct {
	cells []counterCell
}

// NewCounter returns a counter with the process-wide stripe count.
func NewCounter() *Counter {
	return &Counter{cells: make([]counterCell, counterShards)}
}

// stripe derives a stripe index from the address of a stack local: a
// cheap, allocation-free proxy for "which goroutine is calling".
// Goroutine stacks are spread across the address space, so the folded
// page bits spread adders; a collision only costs a shared cache line,
// never a wrong count.
func stripe() int {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return int((p >> 10) ^ (p >> 17))
}

// Add adds n to the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.cells[stripe()&(len(c.cells)-1)].v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the exact sum across stripes. Under concurrent adders
// the value is a linearization-point snapshot like any atomic read.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}
