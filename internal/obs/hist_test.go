package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundsRoundTrip property-tests the bucket layout: every
// bucket's bounds must map back to that bucket (lower in, upper out),
// buckets must tile the axis with no gaps or overlap, and random values
// must always land in a bucket whose bounds contain them.
func TestBucketBoundsRoundTrip(t *testing.T) {
	prevUpper := int64(0)
	for idx := 0; idx < HistBuckets; idx++ {
		lower, upper := bucketBounds(idx)
		if lower >= upper {
			t.Fatalf("bucket %d: empty range [%d,%d)", idx, lower, upper)
		}
		if lower != prevUpper {
			t.Fatalf("bucket %d: lower %d != previous upper %d (gap/overlap)",
				idx, lower, prevUpper)
		}
		prevUpper = upper
		if got := bucketFor(lower); got != idx {
			t.Fatalf("bucketFor(lower=%d) = %d, want %d", lower, got, idx)
		}
		if upper < math.MaxInt64 {
			if got := bucketFor(upper - 1); got != idx {
				t.Fatalf("bucketFor(upper-1=%d) = %d, want %d", upper-1, got, idx)
			}
			if got := bucketFor(upper); got == idx && idx < HistBuckets-1 {
				t.Fatalf("bucketFor(upper=%d) still bucket %d", upper, idx)
			}
		}
		mid := bucketMid(idx)
		if mid < lower || (idx < HistBuckets-1 && mid >= upper) {
			t.Fatalf("bucket %d: mid %d outside [%d,%d)", idx, mid, lower, upper)
		}
	}
	if prevUpper != math.MaxInt64 {
		t.Fatalf("buckets do not cover the axis: last upper = %d", prevUpper)
	}

	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100000; i++ {
		// Exercise every magnitude, not just the uniform-int64 high end.
		ns := rng.Int63() >> uint(rng.Intn(63))
		idx := bucketFor(ns)
		lower, upper := bucketBounds(idx)
		if ns < lower || ns >= upper {
			t.Fatalf("ns=%d in bucket %d [%d,%d)", ns, idx, lower, upper)
		}
	}
}

// TestHistogramQuantileBucketAccuracy checks quantiles land in the
// bucket actually holding that rank.
func TestHistogramQuantileBucketAccuracy(t *testing.T) {
	var h Histogram
	// 90 fast ops at 10µs, 10 slow ops at 5ms.
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	inBucket := func(q float64, want time.Duration) {
		t.Helper()
		got := h.Quantile(q)
		lo, up := bucketBounds(bucketFor(int64(want)))
		if int64(got) < lo || int64(got) >= up {
			t.Fatalf("Quantile(%g) = %v, want inside bucket of %v [%d,%d)",
				q, got, want, lo, up)
		}
	}
	inBucket(0.50, 10*time.Microsecond)
	inBucket(0.90, 10*time.Microsecond)
	inBucket(0.99, 5*time.Millisecond)
	inBucket(0.999, 5*time.Millisecond)

	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	wantSum := 90*10*time.Microsecond + 10*5*time.Millisecond
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %v, want %v (sum must be exact, not bucketized)", got, wantSum)
	}
	if got := h.Mean(); got != wantSum/100 {
		t.Fatalf("Mean = %v, want %v", got, wantSum/100)
	}
}

// TestHistogramConcurrentExact hammers one histogram from 16 goroutines
// and asserts the merged totals are exact: sharding and atomics must
// never lose an observation. Run under -race in CI.
func TestHistogramConcurrentExact(t *testing.T) {
	const goroutines = 16
	const perG = 5000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d", got, goroutines*perG)
	}
	var bucketSum uint64
	for i := 0; i < HistBuckets; i++ {
		bucketSum += h.buckets[i].Load()
	}
	if bucketSum != goroutines*perG {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, goroutines*perG)
	}
}

// TestHistogramMerge checks merged histograms carry exact counts and
// sums and identical bucket contents.
func TestHistogramMerge(t *testing.T) {
	var a, b, merged Histogram
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Microsecond)
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	merged.Merge(&a)
	merged.Merge(&b)
	if merged.Count() != a.Count()+b.Count() {
		t.Fatalf("merged count %d != %d + %d", merged.Count(), a.Count(), b.Count())
	}
	if merged.Sum() != a.Sum()+b.Sum() {
		t.Fatalf("merged sum %v != %v + %v", merged.Sum(), a.Sum(), b.Sum())
	}
	for i := 0; i < HistBuckets; i++ {
		if got, want := merged.buckets[i].Load(), a.buckets[i].Load()+b.buckets[i].Load(); got != want {
			t.Fatalf("bucket %d: merged %d, want %d", i, got, want)
		}
	}
}

// TestHistogramNilAndEmpty pins nil-receiver and empty behavior.
func TestHistogramNilAndEmpty(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Mean() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read as zero")
	}
	nilH.Merge(&Histogram{})
	if st := nilH.Stats(); st.Count != 0 {
		t.Fatal("nil histogram Stats must be zero")
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	empty.Observe(-time.Second) // clamps to zero, lands in underflow
	if empty.Count() != 1 || empty.Sum() != 0 {
		t.Fatalf("negative observe: count=%d sum=%v", empty.Count(), empty.Sum())
	}
}
