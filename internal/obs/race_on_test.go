//go:build race

package obs

// raceEnabled reports that the race detector is instrumenting this
// build; quantitative allocation bounds are unreliable under its
// shadow-memory overhead.
const raceEnabled = true
