//go:build !race

package obs

// raceEnabled reports whether the race detector is instrumenting this
// build.
const raceEnabled = false
