package obs

import (
	"strings"
	"testing"
	"time"
)

// shardRegistry builds a registry shaped like one cluster shard's:
// plain and labeled counters, a gauge, a histogram, and a span table —
// every instrument kind the merge must relabel.
func shardRegistry(calls int64) *Registry {
	reg := NewRegistry()
	reg.Counter("nfsd_executed_total").Add(calls)
	reg.Counter(`nfsd_executed_total{proc="READ"}`).Add(calls)
	reg.Counter("cluster_redirects_total").Add(1)
	reg.GaugeFunc("store_bytes", func() float64 { return float64(calls) * 10 })
	h := reg.Histogram("flush_latency")
	h.Observe(2 * time.Millisecond)
	sp := reg.Spans("nfsd_op", []string{"NULL", "READ"})
	s := sp.Acquire()
	s.SetProc(1)
	s.Mark(StageExec)
	sp.Finish(s)
	return reg
}

// TestMergeLabeledPrometheus: a multi-registry merge with a shard
// label must render as legal exposition text (the strict validator),
// keep same-named metrics from different shards distinct, and emit
// each family's TYPE header exactly once.
func TestMergeLabeledPrometheus(t *testing.T) {
	parts := []LabeledSnapshot{
		{Value: "0", Snap: shardRegistry(5).Dump()},
		{Value: "1", Snap: shardRegistry(7).Dump()},
		{Value: "cp", Snap: func() Snapshot {
			reg := NewRegistry()
			reg.Counter("cluster_map_fetches_total").Add(3)
			reg.GaugeFunc("cluster_map_version", func() float64 { return 4 })
			return reg.Dump()
		}()},
	}
	merged := MergeLabeled("shard", parts)

	var b strings.Builder
	WriteSnapshot(&b, merged)
	out := b.String()
	if err := validatePromText(out); err != nil {
		t.Fatalf("merged exposition invalid: %v\n%s", err, out)
	}

	for _, want := range []string{
		`nfsd_executed_total{shard="0"} 5`,
		`nfsd_executed_total{shard="1"} 7`,
		`nfsd_executed_total{proc="READ",shard="0"} 5`,
		`nfsd_executed_total{proc="READ",shard="1"} 7`,
		`cluster_map_fetches_total{shard="cp"} 3`,
		`store_bytes{shard="0"} 50`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("merged output missing %q", want)
		}
	}
	// Histogram and span summaries must carry the shard label inside
	// the braces with the _seconds suffix on the base name.
	for _, want := range []string{
		`flush_latency_seconds{shard="0",quantile="0.5"}`,
		`flush_latency_seconds_count{shard="1"}`,
		`nfsd_op_seconds_count{shard="0",proc="READ"}`,
		`nfsd_op_stage_seconds_count{shard="1",proc="READ",stage="exec"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged output missing %q\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# TYPE nfsd_executed_total counter"); got != 1 {
		t.Errorf("TYPE header for nfsd_executed_total appears %d times, want 1", got)
	}
	if got := strings.Count(out, "# TYPE flush_latency_seconds summary"); got != 1 {
		t.Errorf("TYPE header for flush_latency_seconds appears %d times, want 1", got)
	}
}
