package obs

import (
	"sync"
	"testing"
)

// TestCounterConcurrentExact hammers one counter from 16 goroutines and
// asserts the striped total is exact. Run under -race in CI.
func TestCounterConcurrentExact(t *testing.T) {
	const goroutines = 16
	const perG = 100000
	c := NewCounter()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("Load = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterAddAndNil(t *testing.T) {
	c := NewCounter()
	c.Add(5)
	c.Add(-2)
	if got := c.Load(); got != 3 {
		t.Fatalf("Load = %d, want 3", got)
	}
	var nilC *Counter
	nilC.Add(7) // must not panic
	nilC.Inc()
	if nilC.Load() != 0 {
		t.Fatal("nil counter must read 0")
	}
}

func TestCounterShardsPowerOfTwo(t *testing.T) {
	if counterShards < 1 || counterShards&(counterShards-1) != 0 {
		t.Fatalf("counterShards = %d, want a power of two", counterShards)
	}
}
