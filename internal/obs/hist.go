package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram's bucket layout is fixed and shared by every Histogram
// in the process, which is what makes histograms mergeable by plain
// bucket-wise addition: log-linear buckets — four linear sub-buckets
// per power-of-two octave — covering 2^histMinExp ns (256 ns) through
// 2^(histMaxExp+1) ns (~9 minutes), with an underflow bucket below and
// an overflow bucket above. The relative width of a bucket is 1/4 of
// an octave, so a value reported from its bucket midpoint is within
// ~12% of the true value at any magnitude — quantile extraction is
// bucket-accurate while a histogram stays ~1 KB of atomics.
const (
	histMinExp = 8  // 2^8 ns = 256 ns: first bucketed octave
	histMaxExp = 38 // 2^38 ns ≈ 275 s: last bucketed octave
	histSubs   = 4  // linear sub-buckets per octave

	// HistBuckets is the fixed bucket count: underflow + the bucketed
	// octaves + overflow.
	HistBuckets = 2 + (histMaxExp-histMinExp+1)*histSubs
)

// bucketFor maps a duration in nanoseconds to its bucket index.
func bucketFor(ns int64) int {
	if ns < 1<<histMinExp {
		return 0
	}
	exp := bits.Len64(uint64(ns)) - 1 // floor(log2 ns)
	if exp > histMaxExp {
		return HistBuckets - 1
	}
	sub := int(ns>>(exp-2)) & (histSubs - 1)
	return 1 + (exp-histMinExp)*histSubs + sub
}

// bucketBounds returns a bucket's [lower, upper) duration bounds in
// nanoseconds. The overflow bucket's upper bound is MaxInt64.
func bucketBounds(idx int) (lower, upper int64) {
	if idx <= 0 {
		return 0, 1 << histMinExp
	}
	if idx >= HistBuckets-1 {
		return 1 << (histMaxExp + 1), math.MaxInt64
	}
	k := idx - 1
	exp := histMinExp + k/histSubs
	sub := int64(k % histSubs)
	lower = (int64(histSubs) + sub) << (exp - 2)
	upper = (int64(histSubs) + sub + 1) << (exp - 2)
	return lower, upper
}

// bucketMid returns the representative value reported for a bucket
// (its midpoint; the overflow bucket reports its lower bound).
func bucketMid(idx int) int64 {
	lower, upper := bucketBounds(idx)
	if idx >= HistBuckets-1 {
		return lower
	}
	return lower + (upper-lower)/2
}

// Histogram is a fixed-layout log-bucketed latency histogram. Recording
// is one atomic add to a bucket plus count/sum updates — lock-free, no
// allocation, safe for any number of concurrent writers. The zero value
// is ready to use, so histograms embed by value in larger tables.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // exact total in nanoseconds (means are not bucketized)
}

// Observe records one duration. Negative durations record as zero. A
// nil receiver is a no-op, so disabled-metrics paths need no branches.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact total of recorded durations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the exact mean of recorded durations (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Merge adds other's buckets into h. Both histograms may be written
// concurrently; the merge is per-bucket atomic (a torn cross-bucket
// view is at most one in-flight observation per bucket).
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// Quantile returns the q-th quantile (0 < q <= 1) as the midpoint of
// the bucket holding that rank, or 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return time.Duration(bucketMid(i))
		}
	}
	return time.Duration(bucketMid(HistBuckets - 1))
}

// HistStats is a point-in-time summary of a histogram, the shape the
// /statsz JSON and the final-stats text render. Durations are
// milliseconds (floats) for readability.
type HistStats struct {
	Count  uint64  `json:"count"`
	SumMS  float64 `json:"sum_ms"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Stats summarizes the histogram. The summary is taken from live
// atomics; under concurrent writers it may be torn by in-flight
// observations, like every snapshot in this repository.
func (h *Histogram) Stats() HistStats {
	if h == nil {
		return HistStats{}
	}
	return HistStats{
		Count:  h.Count(),
		SumMS:  ms(h.Sum()),
		MeanMS: ms(h.Mean()),
		P50MS:  ms(h.Quantile(0.50)),
		P90MS:  ms(h.Quantile(0.90)),
		P99MS:  ms(h.Quantile(0.99)),
		P999MS: ms(h.Quantile(0.999)),
	}
}
