package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one segment of a request's path through the server. The
// set is fixed so spans can carry per-stage accumulators in a flat
// array with no allocation; layers record only the stages they own.
type Stage uint8

const (
	// StageRecv is socket read to dispatch-goroutine pickup: scheduling
	// delay plus any injected inbound network fault hold.
	StageRecv Stage = iota
	// StageDecode is the RPC call header decode.
	StageDecode
	// StageDRC is the duplicate request cache lookup/complete.
	StageDRC
	// StageExec is the dispatch layer's own work: argument decode,
	// heuristic updates, reply marshalling.
	StageExec
	// StageBackend is storage backend access (page cache reads/writes
	// and placement bookkeeping), excluding simulated disk time.
	StageBackend
	// StageDisk is simulated disk service time actually slept out.
	StageDisk
	// StageGather is the write-gathering engine: insert/flush on WRITE,
	// full-file flush on COMMIT (backend durability cost included).
	StageGather
	// StageReply is the reply's socket write.
	StageReply

	// NumStages is the stage count (array sizing).
	NumStages
)

var stageNames = [NumStages]string{
	"recv", "decode", "drc", "exec", "backend", "disk", "gather", "reply",
}

// String names the stage as it appears in metrics and logs.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns the fixed stage name list in stage order.
func StageNames() []string {
	return append([]string(nil), stageNames[:]...)
}

// Span carries one request's per-stage latency decomposition through
// the dispatch path. Usage is strictly sequential within the serving
// goroutine: Mark(stage) charges the time since the previous mark to
// that stage, and Observe(stage, d) attributes d to a stage while
// carving it out of the enclosing Mark delta — so a backend that sleeps
// out simulated disk time can report it as StageDisk without it double
// counting inside StageBackend. Stage durations therefore sum exactly
// to last-mark minus start, the span's end-to-end total.
//
// All methods are nil-receiver safe no-ops, so code threads spans
// unconditionally and pays one predictable branch when metrics are off.
// Spans are pooled by their SpanTable; the hot path allocates nothing.
//
// Timestamps are nanoseconds since a package epoch, read off the
// monotonic clock alone (time.Since of a monotonic base) — roughly half
// the cost of time.Now, which also reads the wall clock, and the mark
// rate is the dominant cost of instrumenting a microsecond-scale
// request path.
type Span struct {
	start  int64         // ns since epoch
	last   int64         // ns since epoch
	carved time.Duration // Observe()d time to exclude from the next Mark
	proc   uint32
	stages [NumStages]time.Duration
}

// epoch anchors span timestamps; only differences are ever used.
var epoch = time.Now()

// nowNS reads the monotonic clock as nanoseconds since the epoch.
func nowNS() int64 { return int64(time.Since(epoch)) }

// begin resets the span to a fresh request arriving at t (ns since
// epoch).
func (sp *Span) begin(t int64) {
	sp.start = t
	sp.last = t
	sp.carved = 0
	sp.proc = 0
	for i := range sp.stages {
		sp.stages[i] = 0
	}
}

// SetProc records the request's procedure number (the span table row
// it will be recorded under).
func (sp *Span) SetProc(proc uint32) {
	if sp == nil {
		return
	}
	sp.proc = proc
}

// Mark charges the time since the previous mark — minus any Observe()d
// carve-outs in between — to stage s, and advances the mark.
func (sp *Span) Mark(s Stage) {
	if sp == nil {
		return
	}
	now := nowNS()
	delta := time.Duration(now-sp.last) - sp.carved
	if delta < 0 {
		delta = 0
	}
	sp.stages[s] += delta
	sp.last = now
	sp.carved = 0
}

// Observe attributes d to stage s directly, carving it out of the
// enclosing Mark delta (see Span).
func (sp *Span) Observe(s Stage, d time.Duration) {
	if sp == nil || d <= 0 {
		return
	}
	sp.stages[s] += d
	sp.carved += d
}

// StageDur returns the duration accumulated for stage s so far.
func (sp *Span) StageDur(s Stage) time.Duration {
	if sp == nil {
		return 0
	}
	return sp.stages[s]
}

// Total returns start-to-last-mark: the end-to-end latency the stage
// durations sum to.
func (sp *Span) Total() time.Duration {
	if sp == nil {
		return 0
	}
	return time.Duration(sp.last - sp.start)
}

// spanRow is one procedure's histograms: end-to-end plus per-stage.
type spanRow struct {
	total  Histogram
	stages [NumStages]Histogram
}

// SpanTable records finished spans into per-procedure, per-stage
// histograms. Rows are indexed by procedure number; procedures at or
// beyond the name list land in a shared overflow row ("other"). The
// table owns a span pool (Acquire/Finish/Discard) and the slow-op log.
type SpanTable struct {
	name  string
	procs []string // row names; rows[len(procs)] is the overflow row
	rows  []spanRow

	pool sync.Pool

	slowOver  atomic.Int64 // threshold in ns; 0 = slow-op log off
	slowMu    sync.Mutex
	slowOut   io.Writer
	slowCount atomic.Int64
}

// NewSpanTable builds a table with one row per procedure name plus an
// overflow row. Most callers use Registry.Spans, which also exports the
// table on /metrics and in Dump.
func NewSpanTable(name string, procs []string) *SpanTable {
	t := &SpanTable{
		name:  name,
		procs: append([]string(nil), procs...),
		rows:  make([]spanRow, len(procs)+1),
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Name returns the table's metric name.
func (t *SpanTable) Name() string { return t.name }

// Acquire returns a pooled span begun at now. Nil-safe: a nil table
// returns a nil span, and every span method no-ops on nil.
func (t *SpanTable) Acquire() *Span {
	if t == nil {
		return nil
	}
	sp := t.pool.Get().(*Span)
	sp.begin(nowNS())
	return sp
}

// AcquireAt is Acquire with an explicit arrival time (a server that
// already stamped the request's arrival passes it through). The time
// must carry a monotonic reading (i.e. come from time.Now, not from
// parsing) for the span's arithmetic to hold.
func (t *SpanTable) AcquireAt(at time.Time) *Span {
	if t == nil {
		return nil
	}
	sp := t.pool.Get().(*Span)
	sp.begin(int64(at.Sub(epoch)))
	return sp
}

// row resolves the histogram row for a procedure number.
func (t *SpanTable) row(proc uint32) *spanRow {
	if int(proc) < len(t.procs) {
		return &t.rows[proc]
	}
	return &t.rows[len(t.procs)]
}

// Finish records the span's total and stage durations under its
// procedure, emits a slow-op log line if the total clears the
// threshold, and recycles the span. The span must not be used after.
func (t *SpanTable) Finish(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	row := t.row(sp.proc)
	total := sp.Total()
	row.total.Observe(total)
	for s := Stage(0); s < NumStages; s++ {
		if d := sp.stages[s]; d > 0 {
			row.stages[s].Observe(d)
		}
	}
	if over := t.slowOver.Load(); over > 0 && int64(total) >= over {
		t.logSlow(sp, total)
	}
	t.pool.Put(sp)
}

// Discard recycles a span without recording it (request dropped before
// service: garbage call, StatDrop).
func (t *SpanTable) Discard(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	t.pool.Put(sp)
}

// EnableSlowLog turns on the slow-op log: any finished span whose total
// meets or exceeds `over` is written to w as one structured line with
// its full stage breakdown. over <= 0 disables.
func (t *SpanTable) EnableSlowLog(w io.Writer, over time.Duration) {
	t.slowMu.Lock()
	t.slowOut = w
	t.slowMu.Unlock()
	if over <= 0 {
		t.slowOver.Store(0)
		return
	}
	t.slowOver.Store(int64(over))
}

// SlowOps counts slow-op log lines emitted.
func (t *SpanTable) SlowOps() int64 {
	if t == nil {
		return 0
	}
	return t.slowCount.Load()
}

// procName names a row for logs and exports.
func (t *SpanTable) procName(proc uint32) string {
	if int(proc) < len(t.procs) {
		return t.procs[proc]
	}
	return "other"
}

// logSlow emits one structured slow-op line. This is the exceptional
// path; it may allocate.
func (t *SpanTable) logSlow(sp *Span, total time.Duration) {
	t.slowCount.Add(1)
	var b strings.Builder
	fmt.Fprintf(&b, `{"slow_op":%q,"proc":%q,"total_ms":%.3f,"stages_ms":{`,
		t.name, t.procName(sp.proc), ms(total))
	first := true
	for s := Stage(0); s < NumStages; s++ {
		if sp.stages[s] <= 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:%.3f", s.String(), ms(sp.stages[s]))
	}
	fmt.Fprintf(&b, "}}\n")
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	if t.slowOut != nil {
		io.WriteString(t.slowOut, b.String())
	}
}

// ProcStats is one procedure's recorded span summary.
type ProcStats struct {
	Count  uint64               `json:"count"`
	Total  HistStats            `json:"total"`
	Stages map[string]HistStats `json:"stages,omitempty"`
}

// SpanStats is a point-in-time summary of a span table: procedures with
// at least one recorded span, each with its end-to-end and per-stage
// histogram summaries.
type SpanStats struct {
	Procs map[string]ProcStats `json:"procs"`
}

// Stats summarizes the table.
func (t *SpanTable) Stats() SpanStats {
	out := SpanStats{Procs: make(map[string]ProcStats)}
	if t == nil {
		return out
	}
	for i := range t.rows {
		row := &t.rows[i]
		if row.total.Count() == 0 {
			continue
		}
		ps := ProcStats{
			Count:  row.total.Count(),
			Total:  row.total.Stats(),
			Stages: make(map[string]HistStats),
		}
		for s := Stage(0); s < NumStages; s++ {
			if row.stages[s].Count() > 0 {
				ps.Stages[s.String()] = row.stages[s].Stats()
			}
		}
		out.Procs[t.procName(uint32(i))] = ps
	}
	return out
}

// ProcSummary returns one procedure's summary by row name.
func (t *SpanTable) ProcSummary(proc string) (ProcStats, bool) {
	if t == nil {
		return ProcStats{}, false
	}
	for i := range t.rows {
		if t.procName(uint32(i)) == proc && t.rows[i].total.Count() > 0 {
			st := t.Stats()
			ps, ok := st.Procs[proc]
			return ps, ok
		}
	}
	return ProcStats{}, false
}

// Note renders the summary as one compact human-readable line: mean
// stage breakdown (exact attribution — stage means sum to the total
// mean up to the finish residual), the dominant stage's share, and
// end-to-end p50/p99.
func (p ProcStats) Note() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d total mean=%.3fms p50=%.3fms p99=%.3fms; stages(mean ms):",
		p.Count, p.Total.MeanMS, p.Total.P50MS, p.Total.P99MS)
	domName, domMS := "", 0.0
	for s := Stage(0); s < NumStages; s++ {
		name := s.String()
		hs, ok := p.Stages[name]
		if !ok {
			continue
		}
		// A stage histogram only counts requests that hit the stage, so
		// its contribution to the per-request mean is its sum over the
		// row count, not its own mean.
		contrib := hs.SumMS / float64(p.Count)
		fmt.Fprintf(&b, " %s=%.3f", name, contrib)
		if contrib > domMS {
			domName, domMS = name, contrib
		}
	}
	if domName != "" && p.Total.MeanMS > 0 {
		fmt.Fprintf(&b, "; %s=%.0f%% of total", domName, 100*domMS/p.Total.MeanMS)
	}
	return b.String()
}
