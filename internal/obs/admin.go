package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminServer is the optional observability HTTP listener: /metrics
// (Prometheus text), /statsz (JSON snapshot), and /debug/pprof/*. It
// runs on its own mux so enabling it never exposes handlers the caller
// didn't ask for, and on its own listener so it shares nothing with the
// RPC data path.
type AdminServer struct {
	dump  func() Snapshot
	meta  any // caller-supplied identity block for /statsz (nil = none)
	start time.Time
	ln    net.Listener
	srv   *http.Server
}

// ServeAdmin starts the admin listener on addr and serves in a
// background goroutine until Close.
func ServeAdmin(addr string, reg *Registry) (*AdminServer, error) {
	return ServeAdminMeta(addr, reg, nil)
}

// ServeAdminMeta is ServeAdmin with an identity block: meta is any
// JSON-marshalable value (the server passes its environment metadata —
// git revision, Go version, GOMAXPROCS) rendered under "meta" in every
// /statsz response, alongside the process uptime. obs stays ignorant
// of where the block comes from, so no import points back at the
// packages that collect it.
func ServeAdminMeta(addr string, reg *Registry, meta any) (*AdminServer, error) {
	return ServeAdminSnap(addr, reg.Dump, meta)
}

// ServeAdminSnap serves an arbitrary snapshot source instead of a
// single registry — a sharded server passes its merged multi-registry
// view here, and /metrics and /statsz render it exactly as they would
// one registry's.
func ServeAdminSnap(addr string, dump func() Snapshot, meta any) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &AdminServer{dump: dump, meta: meta, start: time.Now(), ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/statsz", a.handleStatsz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close shuts the listener down.
func (a *AdminServer) Close() error { return a.srv.Close() }

func (a *AdminServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteSnapshot(w, a.dump())
}

// statszDoc is the /statsz response: the snapshot plus the identity
// block a scraped number is meaningless without — which build, which
// machine, up for how long.
type statszDoc struct {
	Meta          any     `json:"meta,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Snapshot
}

func (a *AdminServer) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(statszDoc{
		Meta:          a.meta,
		UptimeSeconds: time.Since(a.start).Seconds(),
		Snapshot:      a.dump(),
	})
}
