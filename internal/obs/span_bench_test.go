package obs

import "testing"

// BenchmarkSpanLifecycleRead is the per-request cost of full span
// instrumentation on a READ-shaped path: acquire, the marks the RPC and
// dispatch layers make, finish (histogram recording + pool return).
// This number, times the request rate, is the observability tax — the
// mark count and the clock-read cost dominate it, which is why spans
// read the monotonic clock alone.
func BenchmarkSpanLifecycleRead(b *testing.B) {
	t := NewSpanTable("b", []string{"NULL", "GETATTR", "READ"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := t.Acquire()
		sp.Mark(StageRecv)
		sp.SetProc(2)
		sp.Mark(StageDecode)
		sp.Mark(StageExec)
		sp.Mark(StageBackend)
		sp.Mark(StageReply)
		t.Finish(sp)
	}
}
