package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryDumpViewsAgree records through every instrument kind and
// checks the three views (Dump snapshot, Prometheus text, text lines)
// report the same values — the satellite contract that text, /statsz,
// and /metrics can never disagree.
func TestRegistryDumpViewsAgree(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`ops_total{proc="READ"}`).Add(7)
	reg.Counter(`ops_total{proc="WRITE"}`).Add(3)
	reg.Counter("unused_total") // zero: in machine views, not text
	reg.CounterFunc("drc_hits_total", func() int64 { return 42 })
	reg.GaugeFunc("up", func() float64 { return 1 })
	reg.Histogram("flush_latency").Observe(2 * time.Millisecond)
	table := reg.Spans("op", []string{"NULL", "READ"})
	sp := table.Acquire()
	sp.SetProc(1)
	sp.Mark(StageExec)
	table.Finish(sp)

	snap := reg.Dump()
	if snap.Counters[`ops_total{proc="READ"}`] != 7 ||
		snap.Counters[`ops_total{proc="WRITE"}`] != 3 ||
		snap.Counters["drc_hits_total"] != 42 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	if _, ok := snap.Counters["unused_total"]; !ok {
		t.Fatal("zero counters must still be present in the snapshot")
	}
	if snap.Gauges["up"] != 1 {
		t.Fatalf("gauges: %+v", snap.Gauges)
	}
	if snap.Histograms["flush_latency"].Count != 1 {
		t.Fatalf("histograms: %+v", snap.Histograms)
	}
	if snap.Spans["op"].Procs["READ"].Count != 1 {
		t.Fatalf("spans: %+v", snap.Spans)
	}

	var prom strings.Builder
	reg.WritePrometheus(&prom)
	promText := prom.String()
	for _, want := range []string{
		`ops_total{proc="READ"} 7`,
		`ops_total{proc="WRITE"} 3`,
		"drc_hits_total 42",
		"unused_total 0",
		"up 1",
		"# TYPE ops_total counter",
		"# TYPE up gauge",
		"# TYPE flush_latency_seconds summary",
		`op_seconds_count{proc="READ"} 1`,
		`op_stage_seconds_count{proc="READ",stage="exec"} 1`,
	} {
		if !strings.Contains(promText, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, promText)
		}
	}

	lines := strings.Join(reg.Lines(), "\n")
	for _, want := range []string{
		"ops_total: READ=7 WRITE=3",
		"drc_hits_total: 42",
		"up: 1",
		"flush_latency: n=1",
		"op[READ]: n=1",
	} {
		if !strings.Contains(lines, want) {
			t.Fatalf("text lines missing %q:\n%s", want, lines)
		}
	}
	if strings.Contains(lines, "unused_total") {
		t.Fatalf("zero counter must be skipped in text lines:\n%s", lines)
	}

	// Snapshot must round-trip as JSON (the /statsz body).
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counters["drc_hits_total"] != 42 {
		t.Fatalf("round-trip lost counters: %+v", back.Counters)
	}
}

// TestRegistryIdempotentRegistration: same name returns same instrument.
func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("Counter must be idempotent by name")
	}
	if reg.Histogram("h") != reg.Histogram("h") {
		t.Fatal("Histogram must be idempotent by name")
	}
	if reg.Spans("s", []string{"X"}) != reg.Spans("s", nil) {
		t.Fatal("Spans must be idempotent by name")
	}
}

// TestRegistryNil: a nil registry hands out nil no-op instruments.
func TestRegistryNil(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Add(1)
	reg.Histogram("h").Observe(time.Second)
	sp := reg.Spans("s", nil).Acquire()
	sp.Mark(StageExec)
	reg.Spans("s", nil).Finish(sp)
	reg.CounterFunc("f", func() int64 { return 1 })
	reg.GaugeFunc("g", func() float64 { return 1 })
	snap := reg.Dump()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 {
		t.Fatalf("nil registry snapshot must be empty: %+v", snap)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatalf("nil registry prometheus output must be empty: %q", b.String())
	}
}

// TestRegistryConcurrent hammers registration and recording from 16
// goroutines under -race; dump runs concurrently with writers.
func TestRegistryConcurrent(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.Counter("shared_total")
			h := reg.Histogram("shared_latency")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Nanosecond)
				if i%500 == 0 {
					reg.Dump()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := reg.Dump()
	if snap.Counters["shared_total"] != goroutines*perG {
		t.Fatalf("shared_total = %d, want %d", snap.Counters["shared_total"], goroutines*perG)
	}
	if snap.Histograms["shared_latency"].Count != goroutines*perG {
		t.Fatalf("shared_latency count = %d, want %d",
			snap.Histograms["shared_latency"].Count, goroutines*perG)
	}
}

// TestAdminServer boots the admin listener and checks /metrics,
// /statsz, and /debug/pprof/ all serve.
func TestAdminServer(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("test_up", func() float64 { return 1 })
	reg.Counter("test_ops_total").Add(5)

	adm, err := ServeAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("ServeAdmin: %v", err)
	}
	defer adm.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", adm.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, "test_up 1") ||
		!strings.Contains(body, "test_ops_total 5") {
		t.Fatalf("/metrics missing expected series:\n%s", body)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/statsz")), &snap); err != nil {
		t.Fatalf("/statsz not JSON: %v", err)
	}
	if snap.Gauges["test_up"] != 1 || snap.Counters["test_ops_total"] != 5 {
		t.Fatalf("/statsz wrong values: %+v", snap)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

// TestAdminServerStatszMeta: the identity block passed to
// ServeAdminMeta must come back verbatim under "meta", next to a
// sane uptime, without disturbing the snapshot fields.
func TestAdminServerStatszMeta(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_ops_total").Add(3)
	meta := map[string]any{
		"git_rev":    "abc123",
		"go_version": "go1.x",
		"gomaxprocs": 8,
	}
	adm, err := ServeAdminMeta("127.0.0.1:0", reg, meta)
	if err != nil {
		t.Fatalf("ServeAdminMeta: %v", err)
	}
	defer adm.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/statsz", adm.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Meta          map[string]any `json:"meta"`
		UptimeSeconds float64        `json:"uptime_seconds"`
		Counters      map[string]int64
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/statsz not JSON: %v", err)
	}
	if doc.Meta["git_rev"] != "abc123" || doc.Meta["go_version"] != "go1.x" ||
		doc.Meta["gomaxprocs"] != float64(8) {
		t.Fatalf("meta block wrong: %+v", doc.Meta)
	}
	if doc.UptimeSeconds < 0 || doc.UptimeSeconds > 60 {
		t.Fatalf("uptime %v implausible", doc.UptimeSeconds)
	}
	if doc.Counters["test_ops_total"] != 3 {
		t.Fatalf("snapshot fields disturbed: %+v", doc.Counters)
	}

	// Without meta the block is omitted entirely.
	adm2, err := ServeAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer adm2.Close()
	resp2, err := http.Get(fmt.Sprintf("http://%s/statsz", adm2.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(raw), `"meta"`) {
		t.Fatalf("meta block present without ServeAdminMeta:\n%s", raw)
	}
}
