package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// goldenRegistry builds a registry whose WritePrometheus output is
// fully deterministic: plain and labeled counters, counter/gauge
// funcs, and a histogram with fixed observations. Span tables are
// populated in the validator test instead — their values come from
// wall-clock marks, so they can't be pinned byte for byte.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("rpc_calls_total").Add(100)
	reg.Counter(`rpc_errors_total{proc="READ"}`).Add(2)
	reg.Counter(`rpc_errors_total{proc="WRITE"}`).Add(3)
	reg.CounterFunc("drc_hits_total", func() int64 { return 42 })
	reg.GaugeFunc("cache_bytes", func() float64 { return 4096 })
	reg.GaugeFunc(`shard_depth{shard="0"}`, func() float64 { return 1.5 })
	h := reg.Histogram("flush_latency")
	for i := 1; i <= 10; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	return reg
}

const promGolden = `# TYPE cache_bytes gauge
cache_bytes 4096
# TYPE drc_hits_total counter
drc_hits_total 42
# TYPE flush_latency_seconds summary
flush_latency_seconds{quantile="0.5"} 0.004718592
flush_latency_seconds{quantile="0.9"} 0.009437184
flush_latency_seconds{quantile="0.99"} 0.009437184
flush_latency_seconds{quantile="0.999"} 0.009437184
flush_latency_seconds_sum 0.055
flush_latency_seconds_count 10
# TYPE rpc_calls_total counter
rpc_calls_total 100
# TYPE rpc_errors_total counter
rpc_errors_total{proc="READ"} 2
rpc_errors_total{proc="WRITE"} 3
# TYPE shard_depth gauge
shard_depth{shard="0"} 1.5
`

// TestWritePrometheusGolden pins the exposition output byte for byte:
// sorted families, one TYPE header per family even with labeled
// variants, summary rendering in seconds.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	goldenRegistry().WritePrometheus(&b)
	if b.String() != promGolden {
		t.Fatalf("golden mismatch\n--- got ---\n%s--- want ---\n%s", b.String(), promGolden)
	}
}

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// validatePromText enforces the text-exposition rules a scraper relies
// on: every line is a well-formed TYPE comment or sample; each
// family's TYPE appears exactly once and before any of its samples;
// samples only belong to declared families (summary samples may use
// the family's _sum/_count suffixes); label pairs are well-formed with
// quoted, escape-clean values; no sample (name + label set) repeats.
func validatePromText(text string) error {
	typed := map[string]string{} // family -> declared type
	seen := map[string]bool{}    // full sample identity -> emitted
	family := func(name string) string {
		for _, suffix := range []string{"_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "summary" {
				return base
			}
		}
		return name
	}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		return fmt.Errorf("empty exposition output")
	}
	for i, line := range lines {
		if strings.HasPrefix(line, "#") {
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				return fmt.Errorf("line %d: malformed comment %q", i+1, line)
			}
			if _, dup := typed[m[1]]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for family %s", i+1, m[1])
			}
			typed[m[1]] = m[2]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", i+1, line)
		}
		name, labels, value := m[1], m[2], m[3]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: unparsable value %q in %q", i+1, value, line)
		}
		if _, ok := typed[family(name)]; !ok {
			return fmt.Errorf("line %d: sample %q before/without its TYPE header", i+1, line)
		}
		if labels != "" {
			for _, pair := range splitLabelPairs(labels[1 : len(labels)-1]) {
				if !labelRe.MatchString(pair) {
					return fmt.Errorf("line %d: malformed label pair %q in %q", i+1, pair, line)
				}
			}
		}
		id := name + labels
		if seen[id] {
			return fmt.Errorf("line %d: duplicate sample %q", i+1, id)
		}
		seen[id] = true
	}
	return nil
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes,
// honoring backslash escapes.
func splitLabelPairs(s string) []string {
	var pairs []string
	inQuotes, start := false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			inQuotes = !inQuotes
		case ',':
			if !inQuotes {
				pairs = append(pairs, s[start:i])
				start = i + 1
			}
		}
	}
	return append(pairs, s[start:])
}

// TestWritePrometheusFormat runs the strict validator over a fully
// populated registry — including span tables, whose per-proc,
// per-stage summaries exercise the multi-label merge path — plus a
// label value that needs escaping.
func TestWritePrometheusFormat(t *testing.T) {
	reg := goldenRegistry()
	reg.Counter(`odd_total{path="a\"b\\c"}`).Add(1)
	st := reg.Spans("rpc_server", []string{"NULL", "READ"})
	for proc := uint32(0); proc < 3; proc++ { // includes the overflow row
		sp := st.Acquire()
		sp.SetProc(proc)
		sp.Observe(StageRecv, time.Millisecond)
		sp.Observe(StageDecode, 2*time.Millisecond)
		sp.Mark(StageReply)
		st.Finish(sp)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if err := validatePromText(out); err != nil {
		t.Fatalf("%v\n--- output ---\n%s", err, out)
	}
	for _, want := range []string{
		`rpc_server_seconds{proc="READ",quantile="0.5"}`,
		`rpc_server_stage_seconds{proc="READ",stage="recv",quantile="0.5"}`,
		`rpc_server_seconds_count{proc="READ"}`,
		`odd_total{path="a\"b\\c"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestPromValidatorCatchesViolations keeps the validator honest: each
// hand-built violation must be rejected.
func TestPromValidatorCatchesViolations(t *testing.T) {
	bad := map[string]string{
		"sample before TYPE": "a_total 1\n# TYPE a_total counter\n",
		"duplicate TYPE":     "# TYPE a_total counter\na_total 1\n# TYPE a_total counter\n",
		"duplicate sample":   "# TYPE a_total counter\na_total 1\na_total 1\n",
		"bad value":          "# TYPE a_total counter\na_total one\n",
		"unquoted label":     "# TYPE a_total counter\na_total{x=y} 1\n",
		"empty output":       "",
	}
	for name, text := range bad {
		if err := validatePromText(text); err == nil {
			t.Errorf("validator accepted %s:\n%s", name, text)
		}
	}
	if err := validatePromText(promGolden); err != nil {
		t.Errorf("validator rejected the golden output: %v", err)
	}
}
