// Package obs is the repository's zero-dependency observability layer:
// lock-free sharded counters, fixed-layout mergeable latency histograms
// with quantile extraction, per-request stage spans, and a registry that
// renders all of it three ways — Prometheus text for /metrics, JSON for
// /statsz, and human-readable lines for the final stats print — from
// the same snapshot, so the views cannot disagree.
//
// Everything is nil-safe end to end: a nil *Registry hands out nil
// counters, histograms, and span tables whose methods no-op, so
// instrumented code threads metrics unconditionally and a disabled
// configuration costs one predictable branch per call site.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry owns a process's metrics. Registration (Counter, GaugeFunc,
// …) is mutex-guarded and expected at setup time; the instruments it
// hands out are lock-free on the record path.
type Registry struct {
	mu       sync.Mutex
	counters []namedCounter
	cfuncs   []namedIntFunc
	gauges   []namedFloatFunc
	hists    []namedHist
	spans    []*SpanTable
}

type namedCounter struct {
	name string
	c    *Counter
}

type namedIntFunc struct {
	name string
	fn   func() int64
}

type namedFloatFunc struct {
	name string
	fn   func() float64
}

type namedHist struct {
	name string
	h    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a sharded counter. Metric names may
// embed Prometheus labels verbatim (`nfsd_executed_total{proc="READ"}`);
// the exporter splits the base name for TYPE lines. Registering the
// same name twice returns the existing counter. A nil registry returns
// a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, nc := range r.counters {
		if nc.name == name {
			return nc.c
		}
	}
	c := NewCounter()
	r.counters = append(r.counters, namedCounter{name, c})
	return c
}

// CounterFunc registers a cumulative value computed at snapshot time —
// the bridge for subsystems that already keep their own atomics (DRC,
// fault injector, disk model). No-op on a nil registry.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfuncs = append(r.cfuncs, namedIntFunc{name, fn})
}

// GaugeFunc registers a point-in-time value computed at snapshot time.
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, namedFloatFunc{name, fn})
}

// Histogram registers and returns a standalone latency histogram.
// Same-name registration returns the existing histogram; a nil registry
// returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, nh := range r.hists {
		if nh.name == name {
			return nh.h
		}
	}
	h := new(Histogram)
	r.hists = append(r.hists, namedHist{name, h})
	return h
}

// Spans registers and returns a span table with one row per procedure
// name. Same-name registration returns the existing table; a nil
// registry returns a nil table (whose Acquire returns nil spans).
func (r *Registry) Spans(name string, procs []string) *SpanTable {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.spans {
		if t.name == name {
			return t
		}
	}
	t := NewSpanTable(name, procs)
	r.spans = append(r.spans, t)
	return t
}

// SpanTables returns the registered span tables (setup-order).
func (r *Registry) SpanTables() []*SpanTable {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*SpanTable(nil), r.spans...)
}

// Snapshot is one coherent read of the registry, the single source for
// /statsz JSON, /metrics text, and the final-stats lines.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]HistStats `json:"histograms,omitempty"`
	Spans      map[string]SpanStats `json:"spans,omitempty"`
}

// Dump snapshots every registered instrument. Counters and gauges with
// value zero are included — presence is part of the contract (CI greps
// /metrics for known names).
func (r *Registry) Dump() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistStats{},
		Spans:      map[string]SpanStats{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := append([]namedCounter(nil), r.counters...)
	cfuncs := append([]namedIntFunc(nil), r.cfuncs...)
	gauges := append([]namedFloatFunc(nil), r.gauges...)
	hists := append([]namedHist(nil), r.hists...)
	spans := append([]*SpanTable(nil), r.spans...)
	r.mu.Unlock()
	for _, nc := range counters {
		snap.Counters[nc.name] = nc.c.Load()
	}
	for _, nf := range cfuncs {
		snap.Counters[nf.name] = nf.fn()
	}
	for _, ng := range gauges {
		snap.Gauges[ng.name] = ng.fn()
	}
	for _, nh := range hists {
		if nh.h.Count() > 0 {
			snap.Histograms[nh.name] = nh.h.Stats()
		}
	}
	for _, t := range spans {
		st := t.Stats()
		if len(st.Procs) > 0 {
			snap.Spans[t.name] = st
		}
	}
	return snap
}

// baseName splits any embedded Prometheus label block off a metric
// name: `a_total{proc="READ"}` → `a_total`, `{proc="READ"}`.
func baseName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// mergeLabels splices extra label pairs into a (possibly empty)
// `{...}` label block.
func mergeLabels(labels string, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// LabeledSnapshot pairs one registry's snapshot with the label value
// identifying its origin in a merge (e.g. a shard id).
type LabeledSnapshot struct {
	Value string
	Snap  Snapshot
}

// MergeLabeled combines per-origin snapshots into one, splicing
// `label="value"` into every metric name so same-named instruments from
// different origins stay distinct (`nfsd_executed_total{proc="READ"}` →
// `nfsd_executed_total{proc="READ",shard="2"}`). The result renders
// through WriteSnapshot with one TYPE header per family, exactly as a
// single registry would.
func MergeLabeled(label string, parts []LabeledSnapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistStats{},
		Spans:      map[string]SpanStats{},
	}
	for _, p := range parts {
		pair := fmt.Sprintf("%s=%q", label, p.Value)
		tag := func(name string) string {
			base, labels := baseName(name)
			return base + mergeLabels(labels, pair)
		}
		for name, v := range p.Snap.Counters {
			out.Counters[tag(name)] += v
		}
		for name, v := range p.Snap.Gauges {
			out.Gauges[tag(name)] = v
		}
		for name, hs := range p.Snap.Histograms {
			out.Histograms[tag(name)] = hs
		}
		for name, st := range p.Snap.Spans {
			out.Spans[tag(name)] = st
		}
	}
	return out
}

var promQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999},
}

// WritePrometheus renders the registry in Prometheus text exposition
// format. Counters export as-is; histograms and span tables export
// summary-style (`<name>_seconds{quantile=…}`, `_sum`, `_count`), span
// tables additionally per proc and per stage. Output is sorted by
// metric name so scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) {
	WriteSnapshot(w, r.Dump())
}

// WriteSnapshot is WritePrometheus for an already-taken snapshot —
// the path a merged multi-registry view (MergeLabeled) exports through,
// since a merge has no registry to dump.
func WriteSnapshot(w io.Writer, snap Snapshot) {
	var lines []string
	for name, v := range snap.Counters {
		base, _ := baseName(name)
		lines = append(lines,
			fmt.Sprintf("# TYPE %s counter\n%s %d\n", base, name, v))
	}
	for name, v := range snap.Gauges {
		base, _ := baseName(name)
		lines = append(lines,
			fmt.Sprintf("# TYPE %s gauge\n%s %g\n", base, name, v))
	}
	for name, hs := range snap.Histograms {
		lines = append(lines, promSummary(name, "", hs))
	}
	for name, st := range snap.Spans {
		// A span name may already carry a label block (merged
		// snapshots); the summary suffix must land on the base, not
		// after the braces.
		base, labels := baseName(name)
		for proc, ps := range st.Procs {
			procLbl := fmt.Sprintf("proc=%q", proc)
			lines = append(lines,
				promSummary(base+"_seconds"+labels, procLbl, ps.Total))
			for stage, hs := range ps.Stages {
				lines = append(lines, promSummary(base+"_stage_seconds"+labels,
					procLbl+fmt.Sprintf(",stage=%q", stage), hs))
			}
		}
	}
	sort.Strings(lines)
	// Labeled variants of one family sort adjacent; emit each family's
	// "# TYPE" header once (the format allows it only once per family).
	lastType := ""
	for _, l := range lines {
		if nl := strings.IndexByte(l, '\n'); nl >= 0 && strings.HasPrefix(l, "# TYPE ") {
			if l[:nl] == lastType {
				l = l[nl+1:]
			} else {
				lastType = l[:nl]
			}
		}
		io.WriteString(w, l)
	}
}

// promSummary renders one histogram summary as a Prometheus text block
// (seconds, per convention).
func promSummary(name, extraLabels string, hs HistStats) string {
	base, labels := baseName(name)
	if !strings.HasSuffix(base, "_seconds") {
		base += "_seconds"
		name = base + labels
	}
	if extraLabels != "" {
		labels = mergeLabels(labels, extraLabels)
		name = base + labels
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE %s summary\n", base)
	for _, pq := range promQuantiles {
		var v float64
		switch pq.label {
		case "0.5":
			v = hs.P50MS
		case "0.9":
			v = hs.P90MS
		case "0.99":
			v = hs.P99MS
		default:
			v = hs.P999MS
		}
		fmt.Fprintf(&b, "%s %g\n",
			base+mergeLabels(labels, fmt.Sprintf("quantile=%q", pq.label)),
			v/1e3)
	}
	fmt.Fprintf(&b, "%s_sum%s %g\n", base, labels, hs.SumMS/1e3)
	fmt.Fprintf(&b, "%s_count%s %d\n", base, labels, hs.Count)
	return b.String()
}

// Lines renders the snapshot as human-readable final-stats lines —
// zero-valued counters are skipped here (the text view is for people;
// the machine views keep them). Counter names are grouped by base name
// so labeled variants print as one line.
func (r *Registry) Lines() []string {
	snap := r.Dump()
	var out []string

	// Group labeled counters: base -> "label=value" pairs in name order.
	groups := map[string][]string{}
	var order []string
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := snap.Counters[name]
		if v == 0 {
			continue
		}
		base, labels := baseName(name)
		if _, seen := groups[base]; !seen {
			order = append(order, base)
		}
		if labels == "" {
			groups[base] = append(groups[base], fmt.Sprintf("%d", v))
		} else {
			groups[base] = append(groups[base],
				fmt.Sprintf("%s=%d", labelValues(labels), v))
		}
	}
	for _, base := range order {
		out = append(out, fmt.Sprintf("%s: %s", base, strings.Join(groups[base], " ")))
	}

	gnames := make([]string, 0, len(snap.Gauges))
	for name := range snap.Gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		if v := snap.Gauges[name]; v != 0 {
			out = append(out, fmt.Sprintf("%s: %g", name, v))
		}
	}

	hnames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		hs := snap.Histograms[name]
		out = append(out, fmt.Sprintf(
			"%s: n=%d mean=%.3fms p50=%.3fms p99=%.3fms",
			name, hs.Count, hs.MeanMS, hs.P50MS, hs.P99MS))
	}

	snames := make([]string, 0, len(snap.Spans))
	for name := range snap.Spans {
		snames = append(snames, name)
	}
	sort.Strings(snames)
	for _, name := range snames {
		st := snap.Spans[name]
		procs := make([]string, 0, len(st.Procs))
		for proc := range st.Procs {
			procs = append(procs, proc)
		}
		sort.Strings(procs)
		for _, proc := range procs {
			out = append(out, fmt.Sprintf("%s[%s]: %s", name, proc, st.Procs[proc].Note()))
		}
	}
	return out
}

// labelValues extracts just the values from a `{k="v",k2="v2"}` block
// for the compact text view: `READ` or `READ,in`.
func labelValues(labels string) string {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	parts := strings.Split(inner, ",")
	vals := make([]string, 0, len(parts))
	for _, p := range parts {
		if i := strings.IndexByte(p, '='); i >= 0 {
			vals = append(vals, strings.Trim(p[i+1:], `"`))
		} else {
			vals = append(vals, p)
		}
	}
	return strings.Join(vals, ",")
}
