package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanCarveArithmetic pins the additive-attribution contract: stage
// durations (Marks plus carved Observes) sum exactly to Total().
func TestSpanCarveArithmetic(t *testing.T) {
	table := NewSpanTable("test_span", []string{"NULL", "READ"})
	t0 := time.Now()
	sp := table.AcquireAt(t0)
	sp.SetProc(1)

	// A recv mark, then a backend mark whose interval includes really
	// elapsed (slept) disk time that must be carved out of the backend
	// stage — the zonefs usage pattern.
	sp.Mark(StageRecv)
	sleepStart := time.Now()
	time.Sleep(2 * time.Millisecond)
	slept := time.Since(sleepStart)
	sp.Observe(StageDisk, slept)
	sp.Mark(StageBackend)
	sp.Mark(StageReply)

	var stageSum time.Duration
	for s := Stage(0); s < NumStages; s++ {
		stageSum += sp.StageDur(s)
	}
	if got := sp.Total(); stageSum != got {
		t.Fatalf("stage sum %v != total %v (carve must keep stages additive)", stageSum, got)
	}
	if sp.StageDur(StageDisk) != slept {
		t.Fatalf("disk stage = %v, want %v", sp.StageDur(StageDisk), slept)
	}
	if sp.StageDur(StageBackend) >= slept {
		t.Fatalf("backend stage %v should exclude the %v carved disk time",
			sp.StageDur(StageBackend), slept)
	}
	table.Finish(sp)

	st := table.Stats()
	ps, ok := st.Procs["READ"]
	if !ok {
		t.Fatalf("no READ row in stats: %+v", st)
	}
	if ps.Count != 1 {
		t.Fatalf("READ count = %d, want 1", ps.Count)
	}
	if _, ok := ps.Stages["disk"]; !ok {
		t.Fatalf("disk stage missing from stats: %+v", ps.Stages)
	}
}

// TestSpanCarveClampsNegative: if Observe attributes more time than the
// wall interval (coarse clocks), the next Mark clamps at zero rather
// than recording negative time.
func TestSpanCarveClampsNegative(t *testing.T) {
	table := NewSpanTable("test_span", []string{"NULL"})
	sp := table.Acquire()
	sp.Observe(StageDisk, time.Hour) // far exceeds real elapsed time
	sp.Mark(StageBackend)
	if d := sp.StageDur(StageBackend); d != 0 {
		t.Fatalf("backend stage = %v, want 0 (clamped)", d)
	}
	table.Discard(sp)
}

// TestSpanNilSafety: every method must no-op on nil spans and tables so
// disabled metrics need no call-site branches.
func TestSpanNilSafety(t *testing.T) {
	var table *SpanTable
	sp := table.Acquire()
	if sp != nil {
		t.Fatal("nil table must hand out nil spans")
	}
	sp.SetProc(3)
	sp.Mark(StageExec)
	sp.Observe(StageDisk, time.Second)
	if sp.Total() != 0 || sp.StageDur(StageDisk) != 0 {
		t.Fatal("nil span must read as zero")
	}
	table.Finish(sp)
	table.Discard(sp)
	if table.SlowOps() != 0 {
		t.Fatal("nil table SlowOps must be 0")
	}
	if st := table.Stats(); len(st.Procs) != 0 {
		t.Fatal("nil table Stats must be empty")
	}
}

// TestSpanSlowLog: spans over threshold emit one structured line with
// the stage breakdown; spans under it don't.
func TestSpanSlowLog(t *testing.T) {
	table := NewSpanTable("nfsd_op", []string{"NULL", "READ"})
	var buf strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.WriteString(string(p))
	})
	table.EnableSlowLog(w, 10*time.Millisecond)

	fast := table.Acquire()
	fast.SetProc(0)
	fast.Mark(StageExec)
	table.Finish(fast)

	slow := table.AcquireAt(time.Now().Add(-50 * time.Millisecond))
	slow.SetProc(1)
	slow.Observe(StageDisk, 45*time.Millisecond)
	slow.Mark(StageBackend)
	slow.Mark(StageReply)
	table.Finish(slow)

	if table.SlowOps() != 1 {
		t.Fatalf("SlowOps = %d, want 1", table.SlowOps())
	}
	mu.Lock()
	line := buf.String()
	mu.Unlock()
	for _, want := range []string{`"slow_op":"nfsd_op"`, `"proc":"READ"`, `"disk":`, `"total_ms":`} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow log %q missing %q", line, want)
		}
	}
	if strings.Contains(line, `"proc":"NULL"`) {
		t.Fatalf("fast op leaked into slow log: %q", line)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestSpanOverflowRow: procs beyond the name list land in "other".
func TestSpanOverflowRow(t *testing.T) {
	table := NewSpanTable("t", []string{"NULL"})
	sp := table.Acquire()
	sp.SetProc(99)
	sp.Mark(StageExec)
	table.Finish(sp)
	if _, ok := table.Stats().Procs["other"]; !ok {
		t.Fatal("overflow proc must land in the \"other\" row")
	}
}

// TestSpanConcurrentFinish hammers one table from 16 goroutines and
// asserts the recorded count is exact. Run under -race in CI.
func TestSpanConcurrentFinish(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	table := NewSpanTable("t", []string{"NULL", "READ", "WRITE"})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := table.Acquire()
				sp.SetProc(uint32(i % 3))
				sp.Observe(StageDisk, time.Duration(i)*time.Microsecond)
				sp.Mark(StageBackend)
				sp.Mark(StageReply)
				table.Finish(sp)
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, ps := range table.Stats().Procs {
		total += ps.Count
	}
	if total != goroutines*perG {
		t.Fatalf("recorded %d spans, want %d", total, goroutines*perG)
	}
}

// TestSpanZeroAlloc pins the hot path: a full acquire → mark → observe
// → finish cycle must not allocate in steady state (the pool reuses
// spans; histograms are fixed arrays of atomics).
func TestSpanZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	table := NewSpanTable("t", []string{"NULL", "READ"})
	// Warm the pool so steady state is measured, not first-use growth.
	for i := 0; i < 100; i++ {
		sp := table.Acquire()
		sp.SetProc(1)
		sp.Mark(StageRecv)
		sp.Observe(StageDisk, time.Microsecond)
		sp.Mark(StageBackend)
		sp.Mark(StageReply)
		table.Finish(sp)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := table.Acquire()
		sp.SetProc(1)
		sp.Mark(StageRecv)
		sp.Observe(StageDisk, time.Microsecond)
		sp.Mark(StageBackend)
		sp.Mark(StageReply)
		table.Finish(sp)
	})
	if allocs != 0 {
		t.Fatalf("span cycle allocates %.1f/op, want 0", allocs)
	}
}

// TestProcStatsNote smoke-tests the bench per-cell summary line.
func TestProcStatsNote(t *testing.T) {
	table := NewSpanTable("t", []string{"READ"})
	for i := 0; i < 10; i++ {
		sp := table.Acquire()
		sp.SetProc(0)
		sp.Observe(StageDisk, 9*time.Millisecond)
		sp.Mark(StageBackend)
		sp.Mark(StageReply)
		table.Finish(sp)
	}
	ps, ok := table.ProcSummary("READ")
	if !ok {
		t.Fatal("no READ summary")
	}
	note := ps.Note()
	for _, want := range []string{"n=10", "disk=", "% of total"} {
		if !strings.Contains(note, want) {
			t.Fatalf("note %q missing %q", note, want)
		}
	}
	// Disk dominates: its share of the mean should be the reported
	// dominant stage.
	if !strings.Contains(note, "disk=") || !strings.Contains(note, "; disk=") {
		t.Fatalf("note %q should report disk as dominant", note)
	}
}
