//go:build race

package nfsd_test

// raceEnabled reports that the race detector is instrumenting this
// build; quantitative allocation bounds are unreliable under its
// shadow-memory overhead.
const raceEnabled = true
