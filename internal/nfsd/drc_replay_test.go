package nfsd_test

import (
	"bytes"
	"net/netip"
	"testing"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/sunrpc"
	"nfstricks/internal/vfs"
)

// replayHarness drives the service's InfoHandler directly, playing the
// role of the RPC layer: same client address, chosen XIDs, raw bodies.
type replayHarness struct {
	t *testing.T
	h rpcnet.InfoHandler
}

func newReplayHarness(t *testing.T, drcOn bool) (*replayHarness, *nfsd.Service) {
	t.Helper()
	svc := nfsd.New(memfs.NewFS(), nfsd.Config{DRC: nfsd.DRCConfig{Enabled: drcOn}})
	t.Cleanup(func() { svc.Close() })
	return &replayHarness{t: t, h: svc.InfoHandler()}, svc
}

// call sends one request and requires RPC-level acceptance.
func (rh *replayHarness) call(xid, proc uint32, args []byte) []byte {
	rh.t.Helper()
	info := rpcnet.CallInfo{
		XID:    xid,
		Client: netip.MustParseAddrPort("127.0.0.1:700"),
	}
	out, stat := rh.h(info, proc, args, nil)
	if stat != sunrpc.AcceptSuccess {
		rh.t.Fatalf("proc %s xid %d: accept stat %d", nfsproto.ProcName(proc), xid, stat)
	}
	return out
}

// status decodes the nfsstat3 leading every reduced result.
func status(t *testing.T, reply []byte) uint32 {
	t.Helper()
	if len(reply) < 4 {
		t.Fatalf("reply too short: %d bytes", len(reply))
	}
	return uint32(reply[0])<<24 | uint32(reply[1])<<16 | uint32(reply[2])<<8 | uint32(reply[3])
}

// TestDRCReplayNonIdempotent is the regression table for the wrong
// answers retransmission produces: each non-idempotent procedure is
// sent twice with the same XID and arguments — the wire pattern of a
// client whose reply was lost. With the DRC on, the replay returns the
// original's reply bytes and the procedure executes exactly once. With
// it off, the pinned wrong answer comes back: EXIST from MKDIR, NOENT
// from REMOVE and RENAME, and CREATE silently replacing the file with a
// fresh handle while the client still holds the old one.
func TestDRCReplayNonIdempotent(t *testing.T) {
	cases := []struct {
		name string
		proc uint32
		// setup prepares state and returns the request body.
		setup func(rh *replayHarness) []byte
		// wrongStatus is the DRC-off replay's status (OK for CREATE,
		// whose wrong answer is a different handle, checked separately).
		wrongStatus uint32
	}{
		{
			name: "create",
			proc: nfsproto.ProcCreate,
			setup: func(rh *replayHarness) []byte {
				return (&nfsproto.CreateArgs{Dir: vfs.RootFH, Name: "f", Size: 64}).Marshal()
			},
			wrongStatus: nfsproto.OK,
		},
		{
			name: "mkdir",
			proc: nfsproto.ProcMkdir,
			setup: func(rh *replayHarness) []byte {
				return (&nfsproto.MkdirArgs{Dir: vfs.RootFH, Name: "d"}).Marshal()
			},
			wrongStatus: nfsproto.ErrExist,
		},
		{
			name: "remove",
			proc: nfsproto.ProcRemove,
			setup: func(rh *replayHarness) []byte {
				rh.call(1, nfsproto.ProcCreate,
					(&nfsproto.CreateArgs{Dir: vfs.RootFH, Name: "victim"}).Marshal())
				return (&nfsproto.RemoveArgs{Dir: vfs.RootFH, Name: "victim"}).Marshal()
			},
			wrongStatus: nfsproto.ErrNoEnt,
		},
		{
			name: "rename",
			proc: nfsproto.ProcRename,
			setup: func(rh *replayHarness) []byte {
				rh.call(1, nfsproto.ProcCreate,
					(&nfsproto.CreateArgs{Dir: vfs.RootFH, Name: "a"}).Marshal())
				return (&nfsproto.RenameArgs{
					FromDir: vfs.RootFH, FromName: "a",
					ToDir: vfs.RootFH, ToName: "b",
				}).Marshal()
			},
			wrongStatus: nfsproto.ErrNoEnt,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name+"/drc=on", func(t *testing.T) {
			rh, svc := newReplayHarness(t, true)
			body := tc.setup(rh)
			const xid = 42
			first := append([]byte(nil), rh.call(xid, tc.proc, body)...)
			if st := status(t, first); st != nfsproto.OK {
				t.Fatalf("original returned status %d", st)
			}
			replay := rh.call(xid, tc.proc, body)
			if !bytes.Equal(first, replay) {
				t.Fatalf("replayed reply differs from original:\n first: %x\nreplay: %x", first, replay)
			}
			if n := svc.ProcCounts()[tc.proc]; n != 1 {
				t.Fatalf("%s executed %d times, want once", nfsproto.ProcName(tc.proc), n)
			}
			st := svc.DRCStats()
			if st.Hits != 1 {
				t.Fatalf("drc stats %v, want 1 hit", st)
			}
		})
		t.Run(tc.name+"/drc=off", func(t *testing.T) {
			rh, svc := newReplayHarness(t, false)
			body := tc.setup(rh)
			const xid = 42
			first := append([]byte(nil), rh.call(xid, tc.proc, body)...)
			if st := status(t, first); st != nfsproto.OK {
				t.Fatalf("original returned status %d", st)
			}
			replay := rh.call(xid, tc.proc, body)
			if st := status(t, replay); st != tc.wrongStatus {
				t.Fatalf("replay status %d, want the pinned wrong answer %d", st, tc.wrongStatus)
			}
			if tc.proc == nfsproto.ProcCreate {
				// CREATE's wrong answer is quieter: success, but the
				// replacement got a new handle — the client's original
				// handle now points at an orphan.
				f, err := nfsproto.UnmarshalCreateRes(first)
				if err != nil {
					t.Fatal(err)
				}
				r, err := nfsproto.UnmarshalCreateRes(replay)
				if err != nil {
					t.Fatal(err)
				}
				if f.FH == r.FH {
					t.Fatal("re-executed CREATE returned the same handle; expected a replacement")
				}
			}
			if svc.DRCEnabled() {
				t.Fatal("DRC reported enabled in the off harness")
			}
		})
	}
}

// gatedBackend blocks Mkdir until released, so a test can hold a
// non-idempotent call in-execution while a retransmission arrives.
type gatedBackend struct {
	*memfs.FS
	entered chan struct{}
	release chan struct{}
}

func (g *gatedBackend) Mkdir(dir nfsproto.FH, name string) (nfsproto.FH, error) {
	g.entered <- struct{}{}
	<-g.release
	return g.FS.Mkdir(dir, name)
}

// TestDRCBusyDropsRacingRetransmission: while the original is still
// executing, an identical retransmission must be dropped without a
// reply (StatDrop) — not executed again, not blocked on — and once the
// original completes, the next retransmission replays its reply.
func TestDRCBusyDropsRacingRetransmission(t *testing.T) {
	gb := &gatedBackend{FS: memfs.NewFS(), entered: make(chan struct{}, 1), release: make(chan struct{})}
	svc := nfsd.New(gb, nfsd.Config{DRC: nfsd.DRCConfig{Enabled: true}})
	defer svc.Close()
	h := svc.InfoHandler()
	info := rpcnet.CallInfo{XID: 9, Client: netip.MustParseAddrPort("127.0.0.1:700")}
	body := (&nfsproto.MkdirArgs{Dir: vfs.RootFH, Name: "slow"}).Marshal()

	firstDone := make(chan []byte, 1)
	go func() {
		out, _ := h(info, nfsproto.ProcMkdir, body, nil)
		firstDone <- append([]byte(nil), out...)
	}()
	<-gb.entered // the original is inside the backend
	if _, stat := h(info, nfsproto.ProcMkdir, body, nil); stat != rpcnet.StatDrop {
		t.Fatalf("racing retransmission stat %d, want StatDrop", stat)
	}
	close(gb.release)
	first := <-firstDone
	replay, stat := h(info, nfsproto.ProcMkdir, body, nil)
	if stat != sunrpc.AcceptSuccess || !bytes.Equal(first, replay) {
		t.Fatalf("post-completion retransmission: stat %d, reply match %v", stat, bytes.Equal(first, replay))
	}
	st := svc.DRCStats()
	if st.Busy != 1 || st.Hits != 1 {
		t.Fatalf("drc stats %v, want 1 busy drop and 1 hit", st)
	}
}

// TestDRCAbortReleasesReservation: a call rejected above the NFS layer
// (garbage args) must not leave a stuck in-progress reservation — the
// client's clean retry has to execute, not hang on Busy forever.
func TestDRCAbortReleasesReservation(t *testing.T) {
	rh, svc := newReplayHarness(t, true)
	garbage := []byte{0xff} // too short for CreateArgs
	info := rpcnet.CallInfo{XID: 7, Client: netip.MustParseAddrPort("127.0.0.1:700")}
	if _, stat := rh.h(info, nfsproto.ProcCreate, garbage, nil); stat != sunrpc.AcceptGarbageArgs {
		t.Fatalf("garbage args accepted: stat %d", stat)
	}
	// Same XID, now with well-formed args (different checksum → a
	// different DRC identity, but the aborted reservation must be gone
	// either way; replay the garbage to prove the slot was released).
	if _, stat := rh.h(info, nfsproto.ProcCreate, garbage, nil); stat != sunrpc.AcceptGarbageArgs {
		t.Fatalf("garbage retry stat %d, want GarbageArgs again (not a cached reply, not a drop)", stat)
	}
	if st := svc.DRCStats(); st.Busy != 0 || st.Entries != 0 {
		t.Fatalf("drc stats %v, want no busy drops and no stuck reservations", st)
	}
}
