//go:build !race

package nfsd_test

// raceEnabled reports whether the race detector is instrumenting this
// build.
const raceEnabled = false
