package nfsd_test

import (
	"bytes"
	"testing"
	"time"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/sunrpc"
	"nfstricks/internal/vfs"
	"nfstricks/internal/wgather"
)

// startLive serves an in-memory backend over real loopback sockets.
func startLive(t *testing.T) (*memfs.FS, *nfsd.Service, string) {
	t.Helper()
	fs := memfs.NewFS()
	fs.Create(vfs.RootFH, "hello", []byte("hello, world"))
	svc := nfsd.New(fs, nfsd.Config{})
	srv, err := nfsd.NewServer("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return fs, svc, srv.Addr()
}

// TestLiveAccess: clients probe ACCESS before first I/O; the dispatch
// layer must answer for the root and for files instead of
// PROC_UNAVAIL.
func TestLiveAccess(t *testing.T) {
	_, svc, addr := startLive(t)
	for _, network := range []string{"udp", "tcp"} {
		c, err := memfs.DialClient(network, addr)
		if err != nil {
			t.Fatalf("%s: %v", network, err)
		}
		defer c.Close()

		mask := uint32(nfsproto.AccessRead | nfsproto.AccessLookup |
			nfsproto.AccessModify | nfsproto.AccessDelete)
		granted, err := c.Access(vfs.RootFH, mask)
		if err != nil {
			t.Fatalf("%s root access: %v", network, err)
		}
		if granted&nfsproto.AccessLookup == 0 || granted&nfsproto.AccessDelete == 0 {
			t.Fatalf("%s root granted %#x, want lookup and delete (REMOVE is served)", network, granted)
		}

		fh, _, err := c.Lookup(vfs.RootFH, "hello")
		if err != nil {
			t.Fatal(err)
		}
		granted, err = c.Access(fh, mask)
		if err != nil {
			t.Fatalf("%s file access: %v", network, err)
		}
		if granted&nfsproto.AccessRead == 0 || granted&nfsproto.AccessModify == 0 {
			t.Fatalf("%s file granted %#x, want read|modify", network, granted)
		}
		if _, err := c.Access(fh+12345, mask); err == nil {
			t.Fatalf("%s: ACCESS on a stale handle succeeded", network)
		}
	}
	// 3 probes per transport; the stale one is an NFS-level error but
	// still a served RPC.
	counts := svc.ProcCounts()
	if counts[nfsproto.ProcAccess] != 6 {
		t.Fatalf("ACCESS proc count = %d, want 6", counts[nfsproto.ProcAccess])
	}
}

// TestLiveFsstat: FSSTAT must report capacity and shrink free space as
// files appear.
func TestLiveFsstat(t *testing.T) {
	fs, svc, addr := startLive(t)
	c, err := memfs.DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	total, free, err := c.Fsstat(vfs.RootFH)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 || free == 0 || free > total {
		t.Fatalf("fsstat = (%d, %d)", total, free)
	}
	fs.Create(vfs.RootFH, "big", make([]byte, 1<<20))
	_, free2, err := c.Fsstat(vfs.RootFH)
	if err != nil {
		t.Fatal(err)
	}
	if free2 >= free {
		t.Fatalf("free space did not shrink: %d -> %d", free, free2)
	}
	if _, _, err := c.Fsstat(nfsproto.FH(9999)); err == nil {
		t.Fatal("FSSTAT on a stale handle succeeded")
	}
	if got := svc.ProcCounts()[nfsproto.ProcFsstat]; got != 3 {
		t.Fatalf("FSSTAT proc count = %d, want 3", got)
	}
}

// TestLiveCreateWriteReadBack exercises the CREATE procedure the
// backend interface carries: create over the wire, write, read back.
func TestLiveCreateWriteReadBack(t *testing.T) {
	_, _, addr := startLive(t)
	c, err := memfs.DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, err := c.Create(vfs.RootFH, "fresh", 16)
	if err != nil {
		t.Fatal(err)
	}
	data, eof, err := c.Read(fh, 0, 64)
	if err != nil || !eof || !bytes.Equal(data, make([]byte, 16)) {
		t.Fatalf("fresh file read = %v eof=%v err=%v, want 16 zeros", data, eof, err)
	}
	if err := c.Write(fh, 4, []byte("mark")); err != nil {
		t.Fatal(err)
	}
	data, _, err = c.Read(fh, 0, 64)
	want := []byte{0, 0, 0, 0, 'm', 'a', 'r', 'k', 0, 0, 0, 0, 0, 0, 0, 0}
	if err != nil || !bytes.Equal(data, want) {
		t.Fatalf("read back %v err=%v", data, err)
	}
	// Absurd sizes must be refused, not allocated.
	if _, err := c.Create(vfs.RootFH, "bomb", vfs.MaxCreateSize+1); err == nil {
		t.Fatal("oversized CREATE succeeded")
	}
}

// TestCreateReplaceDoesNotPoisonGather: replacing a file that still
// has dirty gathered extents must not leave the engine flushing a
// stale handle — which would latch a permanent asynchronous error and
// fail every later COMMIT with ErrIO.
func TestCreateReplaceDoesNotPoisonGather(t *testing.T) {
	fs := memfs.NewFS()
	fs.Create(vfs.RootFH, "victim", make([]byte, 8192))
	fs.Create(vfs.RootFH, "other", make([]byte, 8192))
	svc := nfsd.New(fs, nfsd.Config{Gather: wgather.Config{Window: 50 * time.Millisecond}})
	defer svc.Close()
	srv, err := nfsd.NewServer("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := memfs.DialClient("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fh, _, err := c.Lookup(vfs.RootFH, "victim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteUnstable(fh, 0, []byte("doomed dirty bytes")); err != nil {
		t.Fatal(err)
	}
	// Replace the file while its write is still inside the gather
	// window, then wait for the window to expire so the background
	// flusher runs against the replaced handle.
	if _, err := c.Create(vfs.RootFH, "victim", 16); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)

	otherFH, _, err := c.Lookup(vfs.RootFH, "other")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteUnstable(otherFH, 0, []byte("fine")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(otherFH, 0, 0); err != nil {
		t.Fatalf("COMMIT after replacing a dirty file: %v", err)
	}
}

// TestRemoveRenameDoesNotPoisonGather: REMOVE and RENAME-over of
// files that still hold dirty gathered extents must Forget them from
// the engine. Otherwise the background flusher's deadline queue runs
// against a dead handle, latches a permanent asynchronous error, and
// every later COMMIT on unrelated files fails with ErrIO — and the
// removed file's extents leak in the dirty accounting forever.
func TestRemoveRenameDoesNotPoisonGather(t *testing.T) {
	fs := memfs.NewFS()
	fs.Create(vfs.RootFH, "removed", make([]byte, 8192))
	fs.Create(vfs.RootFH, "renamed-over", make([]byte, 8192))
	fs.Create(vfs.RootFH, "renamed-away", make([]byte, 8192))
	fs.Create(vfs.RootFH, "other", make([]byte, 8192))
	svc := nfsd.New(fs, nfsd.Config{Gather: wgather.Config{Window: 50 * time.Millisecond}})
	defer svc.Close()
	srv, err := nfsd.NewServer("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := memfs.DialClient("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Dirty three victims inside the gather window, then unlink each a
	// different way: plain REMOVE, RENAME onto it (replacement), and
	// RENAME it away over another dirty file.
	for _, name := range []string{"removed", "renamed-over", "renamed-away"} {
		fh, _, err := c.Lookup(vfs.RootFH, name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.WriteUnstable(fh, 0, []byte("doomed dirty bytes")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Remove(vfs.RootFH, "removed"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(vfs.RootFH, "renamed-away", vfs.RootFH, "renamed-over"); err != nil {
		t.Fatal(err)
	}
	// "renamed-away" (now living at "renamed-over") is still a live
	// file with dirty bytes — only the two unlinked inodes must be
	// forgotten. Wait out the window so the flusher drains.
	time.Sleep(150 * time.Millisecond)

	otherFH, _, err := c.Lookup(vfs.RootFH, "other")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteUnstable(otherFH, 0, []byte("fine")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(otherFH, 0, 0); err != nil {
		t.Fatalf("COMMIT after removing/renaming dirty files: %v", err)
	}
	if _, err := c.Commit(otherFH, 0, 0); err != nil {
		t.Fatalf("second COMMIT (no latched async error): %v", err)
	}
	if st := svc.WriteStats(); st.DirtyBytes != 0 {
		t.Fatalf("dirty = %d after flush, want 0 (forgotten extents must not leak)", st.DirtyBytes)
	}
}

// TestDispatchUnknownProcStillUnavail pins the dispatch boundary:
// procedures outside the served subset keep answering PROC_UNAVAIL.
func TestDispatchUnknownProcStillUnavail(t *testing.T) {
	fs := memfs.NewFS()
	svc := nfsd.New(fs, nfsd.Config{})
	defer svc.Close()
	h := svc.Handler()
	for _, proc := range []uint32{5 /* READLINK */, 10 /* SYMLINK */, 13 /* RMDIR */, 99} {
		if _, stat := h(proc, nil, nil); stat != sunrpc.AcceptProcUnavail {
			t.Fatalf("proc %d: stat %d, want PROC_UNAVAIL", proc, stat)
		}
	}
}
