// Package nfsd is the backend-agnostic live NFS dispatch layer: it
// owns the procedure switch, per-procedure counters, the nfsheur
// read-ahead table and its per-shard heuristics, the write-gathering
// engine, and the capture-tap server wiring — everything between the
// RPC transport (rpcnet) and a storage backend (vfs.Backend). Any
// backend mounted behind it gets write gathering, tracing, stats and
// heuristic-driven read-ahead for free; internal/memfs provides the
// in-memory backend, internal/zonefs the ZCAV disk-backed one.
//
// The hot path holds no global lock: heuristic state is striped across
// the nfsheur table's shards (one forked heuristic per shard, mutated
// only under that shard's lock), counters are atomics, and file data
// access is whatever the backend does (memfs reads under an RWMutex
// read lock only).
package nfsd

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"nfstricks/internal/drc"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/obs"
	"nfstricks/internal/readahead"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/sunrpc"
	"nfstricks/internal/vfs"
	"nfstricks/internal/wgather"
)

// DefaultMaxReadAhead caps the per-READ read-ahead window the
// heuristic may request, in blocks (32 blocks = 256 KB, the simulated
// server's default).
const DefaultMaxReadAhead = 32

// Config assembles a Service. The zero value is the live default:
// SlowDown heuristic, GOMAXPROCS-sharded nfsheur table, synchronous
// write-through (gather window 0) with durability delegated to the
// backend's Commit.
type Config struct {
	// Heuristic computes per-READ seqcounts (nil = readahead.SlowDown).
	Heuristic readahead.Heuristic
	// Table is the nfsheur table (nil = nfsheur.ScaledParams; pass
	// Shards: 1 to reproduce the paper's single-table behaviour).
	Table *nfsheur.Table
	// Gather configures the write-gathering engine (window, byte
	// bounds, sink, verifier seed). Gather.Source is always the
	// backend — any caller value is ignored. Gather.Sink, when set,
	// observes every flush before the backend's Commit is charged.
	Gather wgather.Config
	// MaxReadAhead caps the heuristic's read-ahead window in blocks
	// (0 = DefaultMaxReadAhead).
	MaxReadAhead int
	// DRC configures the duplicate request cache shielding
	// non-idempotent procedures (CREATE/MKDIR/REMOVE/RENAME) from
	// retransmissions. Off by default: a loopback bench with no fault
	// injection should not pay for a cache it cannot hit.
	DRC DRCConfig
	// Obs, when non-nil, is the observability registry this service
	// publishes into: per-proc executed counters, byte counters, write
	// gathering and DRC stats (all as snapshot-time funcs over the
	// existing atomics — the hot path is unchanged), a gather-flush
	// latency histogram, and the per-proc stage span table (see
	// Service.SpanTable). Nil = no metrics, no cost.
	Obs *obs.Registry
}

// DRCConfig enables and bounds the duplicate request cache.
type DRCConfig struct {
	// Enabled turns the cache on.
	Enabled bool
	// MaxBytes budgets retained replies (0 = drc.DefaultMaxBytes).
	MaxBytes int
}

// Stats counts live-service activity.
type Stats struct {
	Reads     int64
	BytesRead int64
	// MaxSeqCount is the highest seqcount the heuristic produced — a
	// live view of read-ahead confidence.
	MaxSeqCount int
	// Writes and BytesWritten count served WRITE RPCs (any stability);
	// Commits counts served COMMITs. The per-stability split and the
	// gather/flush accounting live in Service.WriteStats.
	Writes       int64
	BytesWritten int64
	Commits      int64
}

// Service adapts a vfs.Backend to an rpcnet.Handler speaking the NFS
// v3 subset, running a real nfsheur table + heuristic on the READ path
// and the write-gathering engine on the WRITE path. Safe for
// concurrent use by multiple goroutines.
type Service struct {
	b     vfs.Backend
	table *nfsheur.Table
	// heur has one heuristic per table shard; heur[i] is only used
	// while shard i's lock is held, which makes stateful heuristics
	// (cursor) race-free without any lock of their own.
	heur []readahead.Heuristic
	// engine is the write-gathering engine every WRITE and COMMIT
	// routes through. The default (gather window 0) is write-through:
	// each write is durable before its reply, the behaviour the live
	// service had before the engine existed.
	engine   *wgather.Engine
	maxAhead int
	// dupcache, when non-nil, shields non-idempotent procedures from
	// retransmissions (see InfoHandler; the identity-blind Handler path
	// cannot consult it).
	dupcache *drc.Cache
	// spans is the per-proc stage span table (nil without Config.Obs);
	// the transport drives span lifecycle (rpcnet.ServerOptions.Spans),
	// the dispatch path marks the stages it owns.
	spans *obs.SpanTable
	// spanReader caches the backend's optional stage-attribution
	// capability, asserted once at mount so the READ path pays a nil
	// check instead of a per-request type assertion.
	spanReader vfs.SpanReader

	reads        atomic.Int64
	bytesRead    atomic.Int64
	maxSeq       atomic.Int64
	writes       atomic.Int64
	bytesWritten atomic.Int64
	commits      atomic.Int64
	// procs counts served RPCs by procedure number (garbage-args and
	// unknown procedures excluded).
	procs [nfsproto.ProcCommit + 1]atomic.Int64
}

// backendSink routes the gathering engine's flushes into the backend's
// durability path: the optional observer sink (Config.Gather.Sink)
// sees the bytes first, then the backend's Commit is charged for the
// range. For memfs Commit is free; for zonefs it is the disk.
type backendSink struct {
	b     vfs.Backend
	inner wgather.Sink
	// hist, when non-nil, records each flush's wall time (observer sink
	// plus backend Commit) — the durability cost a deferred write pays.
	hist *obs.Histogram
}

func (s backendSink) Flush(fh uint64, off uint64, data []byte) error {
	if s.hist == nil {
		return s.flush(fh, off, data)
	}
	start := time.Now()
	err := s.flush(fh, off, data)
	s.hist.Observe(time.Since(start))
	return err
}

func (s backendSink) flush(fh uint64, off uint64, data []byte) error {
	if s.inner != nil {
		if err := s.inner.Flush(fh, off, data); err != nil {
			return err
		}
	}
	return s.b.Commit(nfsproto.FH(fh), off, uint32(len(data)))
}

// New wraps backend b in a Service.
func New(b vfs.Backend, cfg Config) *Service {
	if cfg.Heuristic == nil {
		cfg.Heuristic = readahead.SlowDown{}
	}
	if cfg.Table == nil {
		cfg.Table = nfsheur.New(nfsheur.ScaledParams())
	}
	if cfg.MaxReadAhead <= 0 {
		cfg.MaxReadAhead = DefaultMaxReadAhead
	}
	gcfg := cfg.Gather
	gcfg.Source = func(fh, off uint64, count uint32) ([]byte, error) {
		data, _, _, err := b.ReadAt(nfsproto.FH(fh), off, count, 0)
		if errors.Is(err, vfs.ErrStale) {
			// The file vanished between the write and its flush (a
			// CREATE replaced it): nothing left to persist. Empty data
			// tells the engine to skip the extent rather than latch a
			// sticky asynchronous error.
			return nil, nil
		}
		return data, err
	}
	// A nil registry hands out a nil histogram, which the sink treats as
	// "don't time flushes".
	gcfg.Sink = backendSink{b: b, inner: cfg.Gather.Sink,
		hist: cfg.Obs.Histogram("wgather_flush_latency")}
	engine, err := wgather.New(gcfg)
	if err != nil {
		// Source and Sink are set above; Config has no other invalid
		// states.
		panic(err)
	}
	// ForkN gives every shard its own heuristic instance (or a safely
	// shared one), so the service never races on the caller's value.
	svc := &Service{
		b:        b,
		table:    cfg.Table,
		heur:     readahead.ForkN(cfg.Heuristic, cfg.Table.ShardCount()),
		engine:   engine,
		maxAhead: cfg.MaxReadAhead,
	}
	if cfg.DRC.Enabled {
		svc.dupcache = drc.New(drc.Config{MaxBytes: cfg.DRC.MaxBytes})
	}
	svc.spanReader, _ = b.(vfs.SpanReader)
	if cfg.Obs != nil {
		procs := make([]string, len(svc.procs))
		for i := range procs {
			procs[i] = nfsproto.ProcName(uint32(i))
		}
		svc.spans = cfg.Obs.Spans("nfsd_op", procs)
		svc.register(cfg.Obs)
	}
	return svc
}

// register publishes the service's counters into the registry as
// snapshot-time funcs over the existing atomics.
func (s *Service) register(reg *obs.Registry) {
	for i := range s.procs {
		proc := uint32(i)
		reg.CounterFunc(
			fmt.Sprintf("nfsd_executed_total{proc=%q}", nfsproto.ProcName(proc)),
			func() int64 { return s.procs[proc].Load() })
	}
	reg.CounterFunc("nfsd_read_bytes_total", s.bytesRead.Load)
	reg.CounterFunc("nfsd_written_bytes_total", s.bytesWritten.Load)
	reg.GaugeFunc("nfsd_max_seqcount", func() float64 { return float64(s.maxSeq.Load()) })

	reg.CounterFunc(`wgather_writes_total{stability="unstable"}`,
		func() int64 { return s.engine.Stats().WritesUnstable })
	reg.CounterFunc(`wgather_writes_total{stability="datasync"}`,
		func() int64 { return s.engine.Stats().WritesDataSync })
	reg.CounterFunc(`wgather_writes_total{stability="filesync"}`,
		func() int64 { return s.engine.Stats().WritesFileSync })
	reg.CounterFunc("wgather_flushes_total",
		func() int64 { return s.engine.Stats().Flushes })
	reg.CounterFunc("wgather_flushed_bytes_total",
		func() int64 { return s.engine.Stats().FlushedBytes })
	reg.CounterFunc("wgather_gathered_bytes_total",
		func() int64 { return s.engine.Stats().GatheredBytes })
	reg.CounterFunc("wgather_coalesced_bytes_total",
		func() int64 { return s.engine.Stats().CoalescedBytes })
	reg.CounterFunc("wgather_reboots_total",
		func() int64 { return s.engine.Stats().Reboots })
	reg.GaugeFunc("wgather_dirty_bytes",
		func() float64 { return float64(s.engine.Stats().DirtyBytes) })

	if s.dupcache != nil {
		reg.CounterFunc("drc_hits_total", func() int64 { return s.dupcache.Stats().Hits })
		reg.CounterFunc("drc_misses_total", func() int64 { return s.dupcache.Stats().Misses })
		reg.CounterFunc("drc_busy_total", func() int64 { return s.dupcache.Stats().Busy })
		reg.CounterFunc("drc_evictions_total", func() int64 { return s.dupcache.Stats().Evictions })
		reg.CounterFunc("drc_bypasses_total", func() int64 { return s.dupcache.Stats().Bypasses })
		reg.GaugeFunc("drc_entries", func() float64 { return float64(s.dupcache.Stats().Entries) })
		reg.GaugeFunc("drc_bytes", func() float64 { return float64(s.dupcache.Stats().Bytes) })
	}
}

// SpanTable exposes the service's per-proc stage span table (nil
// without Config.Obs). Hand it to rpcnet.ServerOptions.Spans so the
// transport acquires and finishes a span around every call; the
// dispatch path marks its stages through rpcnet.CallInfo.Span.
func (s *Service) SpanTable() *obs.SpanTable { return s.spans }

// Backend exposes the mounted storage backend.
func (s *Service) Backend() vfs.Backend { return s.b }

// Table exposes the service's nfsheur table (for instrumentation).
func (s *Service) Table() *nfsheur.Table { return s.table }

// WriteStats exposes the write-gathering engine's counters: writes by
// stability, commits, sink flushes, bytes gathered vs coalesced vs
// flushed.
func (s *Service) WriteStats() wgather.Stats { return s.engine.Stats() }

// WriteVerifier returns the server's current write verifier.
func (s *Service) WriteVerifier() uint64 { return s.engine.Verifier() }

// Reboot simulates a server crash/restart on the write path: dirty
// uncommitted data is dropped and the write verifier changes, so
// clients holding unstable writes must detect the new verifier and
// re-send. File handles remain valid across a Reboot (NFS FHs survive
// server restarts by design).
func (s *Service) Reboot() { s.engine.Reboot() }

// Flush pushes all dirty data through to the backend without changing
// the verifier (an orderly sync).
func (s *Service) Flush() error { return s.engine.FlushAll() }

// Close stops the gathering engine, flushing remaining dirty data.
func (s *Service) Close() error { return s.engine.Close() }

// ProcCounts returns served-RPC counts indexed by procedure number.
func (s *Service) ProcCounts() []int64 {
	out := make([]int64, len(s.procs))
	for i := range s.procs {
		out[i] = s.procs[i].Load()
	}
	return out
}

// Stats returns a snapshot of the counters. The counters are
// independent atomics (the READ path takes no common lock), so a
// snapshot taken while requests are in flight may be torn by up to a
// request's worth of updates. Quiesce the service for exact
// cross-counter arithmetic.
func (s *Service) Stats() Stats {
	return Stats{
		Reads:        s.reads.Load(),
		BytesRead:    s.bytesRead.Load(),
		MaxSeqCount:  int(s.maxSeq.Load()),
		Writes:       s.writes.Load(),
		BytesWritten: s.bytesWritten.Load(),
		Commits:      s.commits.Load(),
	}
}

// countProc tallies one served RPC for ProcCounts.
func (s *Service) countProc(proc uint32) {
	if proc < uint32(len(s.procs)) {
		s.procs[proc].Add(1)
	}
}

// Handler returns the rpcnet handler for the NFS program. Results are
// appended straight into the server's pooled reply buffer; on the READ
// path the payload is a copy-on-write view of the file segment, so the
// append is the single payload copy between storage and the socket.
func (s *Service) Handler() rpcnet.Handler {
	return func(proc uint32, body []byte, reply []byte) ([]byte, uint32) {
		out, stat := s.dispatch(nil, proc, body, reply)
		if stat == sunrpc.AcceptSuccess {
			// Served RPCs only: garbage args and unknown procedures are
			// rejected above the NFS layer and stay out of ProcCounts.
			s.countProc(proc)
		}
		return out, stat
	}
}

// InfoHandler is Handler plus the duplicate request cache: with the
// call's wire identity in hand, a retransmitted non-idempotent call is
// answered from the cache (Hit), dropped while its original executes
// (Busy — the retransmission's next round finds the reply), or executed
// and its reply retained (Miss). Cache hits do NOT count in ProcCounts,
// so ProcCounts stays "procedures actually executed" — the number an
// experiment checks to assert zero duplicated side effects.
func (s *Service) InfoHandler() rpcnet.InfoHandler {
	return func(info rpcnet.CallInfo, proc uint32, body, reply []byte) ([]byte, uint32) {
		sp := info.Span
		if s.dupcache == nil || !nfsproto.NonIdempotent(proc) {
			out, stat := s.dispatch(sp, proc, body, reply)
			if stat == sunrpc.AcceptSuccess {
				s.countProc(proc)
			}
			// Residual handler time (reply marshalling, counting) joins
			// the execute stage. The span-routed procedures already
			// marked their stages inside dispatch — their residual is
			// caught by the reply mark, and the hottest path saves a
			// clock read.
			if !spanRouted(proc) {
				sp.Mark(obs.StageExec)
			}
			return out, stat
		}
		key := drc.Key{Client: info.Client, XID: info.XID, Proc: proc,
			Sum: nfsproto.ArgsChecksum(body)}
		outcome, cached, stat := s.dupcache.Begin(key)
		sp.Mark(obs.StageDRC)
		switch outcome {
		case drc.Hit:
			out := append(reply, cached...)
			sp.Mark(obs.StageExec)
			return out, stat
		case drc.Busy:
			return reply, rpcnet.StatDrop
		}
		start := len(reply)
		out, stat := s.dispatch(sp, proc, body, reply)
		if stat == sunrpc.AcceptSuccess {
			s.countProc(proc)
			s.dupcache.Complete(key, out[start:], stat)
		} else {
			// Rejected above the NFS layer (garbage args): nothing worth
			// replaying — release the reservation so a clean retry
			// re-executes.
			s.dupcache.Abort(key)
		}
		// DRC completion and reply bookkeeping join the execute stage
		// (the cache's own lookup cost is already under StageDRC).
		sp.Mark(obs.StageExec)
		return out, stat
	}
}

// DRCEnabled reports whether the duplicate request cache is on.
func (s *Service) DRCEnabled() bool { return s.dupcache != nil }

// DRCStats returns the duplicate request cache's counters (zero when
// the cache is disabled).
func (s *Service) DRCStats() drc.Stats {
	if s.dupcache == nil {
		return drc.Stats{}
	}
	return s.dupcache.Stats()
}

// spanRouted reports whether dispatch threads the span into the
// procedure's handler (which then owns its stage marks).
func spanRouted(proc uint32) bool {
	switch proc {
	case nfsproto.ProcRead, nfsproto.ProcWrite, nfsproto.ProcCommit:
		return true
	}
	return false
}

// dispatch routes one call. sp (nil when spans are off) reaches the
// procedures that cross stage boundaries — READ/WRITE/COMMIT mark
// backend, disk and gather time; everything else runs entirely inside
// the execute stage the caller marks.
func (s *Service) dispatch(sp *obs.Span, proc uint32, body, reply []byte) ([]byte, uint32) {
	switch proc {
	case nfsproto.ProcNull:
		return reply, sunrpc.AcceptSuccess
	case nfsproto.ProcLookup:
		return s.lookup(body, reply)
	case nfsproto.ProcAccess:
		return s.access(body, reply)
	case nfsproto.ProcRead:
		return s.read(sp, body, reply)
	case nfsproto.ProcWrite:
		return s.write(sp, body, reply)
	case nfsproto.ProcCreate:
		return s.create(body, reply)
	case nfsproto.ProcCommit:
		return s.commit(sp, body, reply)
	case nfsproto.ProcGetattr:
		return s.getattr(body, reply)
	case nfsproto.ProcSetattr:
		return s.setattr(body, reply)
	case nfsproto.ProcMkdir:
		return s.mkdir(body, reply)
	case nfsproto.ProcRemove:
		return s.remove(body, reply)
	case nfsproto.ProcRename:
		return s.rename(body, reply)
	case nfsproto.ProcReaddir:
		return s.readdir(body, reply)
	case nfsproto.ProcReaddirplus:
		return s.readdirplus(body, reply)
	case nfsproto.ProcFsstat:
		return s.fsstat(body, reply)
	default:
		return reply, sunrpc.AcceptProcUnavail
	}
}

// fileAttrs fills the regular-file attribute block the data-path
// replies carry.
func fileAttrs(fh nfsproto.FH, size uint64) nfsproto.Fattr {
	return nfsproto.Fattr{Type: nfsproto.TypeReg, Mode: 0644, Nlink: 1,
		Size: size, Used: size, FileID: uint64(fh)}
}

// objAttrs fills the attribute block for any backend object.
func objAttrs(fh nfsproto.FH, a vfs.Attr) nfsproto.Fattr {
	if a.Dir {
		return nfsproto.Fattr{Type: nfsproto.TypeDir, Mode: 0755, Nlink: 2,
			Size: uint64(a.Size), Used: uint64(a.Size), FileID: uint64(fh)}
	}
	return fileAttrs(fh, uint64(a.Size))
}

// statusOf maps a backend sentinel error to its nfsstat3 code.
func statusOf(err error) uint32 {
	switch {
	case errors.Is(err, vfs.ErrNoEnt):
		return nfsproto.ErrNoEnt
	case errors.Is(err, vfs.ErrExist):
		return nfsproto.ErrExist
	case errors.Is(err, vfs.ErrNotDir):
		return nfsproto.ErrNotDir
	case errors.Is(err, vfs.ErrIsDir):
		return nfsproto.ErrIsDir
	case errors.Is(err, vfs.ErrNotEmpty):
		return nfsproto.ErrNotEmpty
	case errors.Is(err, vfs.ErrBadCookie):
		return nfsproto.ErrBadCookie
	case errors.Is(err, vfs.ErrInval):
		return nfsproto.ErrInval
	case errors.Is(err, vfs.ErrTooBig):
		return nfsproto.ErrFBig
	case errors.Is(err, vfs.ErrNoSpace):
		return nfsproto.ErrNoSpc
	case errors.Is(err, vfs.ErrStale):
		return nfsproto.ErrStale
	default:
		return nfsproto.ErrIO
	}
}

func (s *Service) lookup(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalLookupArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	fh, a, lerr := s.b.Lookup(args.Dir, args.Name)
	if lerr != nil {
		res := nfsproto.LookupRes{Status: statusOf(lerr)}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	attrs := objAttrs(fh, a)
	res := nfsproto.LookupRes{Status: nfsproto.OK, FH: fh, Attrs: &attrs}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// access serves ACCESS: directories (the root included) grant the
// directory mask, files grant whatever the backend reports
// (read/modify/extend for the current backends). Clients probe this
// before their first I/O on a handle.
func (s *Service) access(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalAccessArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	granted, ok := s.b.Access(args.FH, args.Access)
	if !ok {
		res := nfsproto.AccessRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	a, _ := s.b.Getattr(args.FH)
	attrs := objAttrs(args.FH, a)
	res := nfsproto.AccessRes{Status: nfsproto.OK, Attrs: &attrs, Access: granted}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

func (s *Service) read(sp *obs.Span, body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalReadArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	if args.Count > nfsproto.MaxData {
		args.Count = nfsproto.MaxData
	}
	if args.FH == 0 {
		// The nfsheur table panics on handle 0; a crafted packet must
		// get a stale-handle error, not crash the server.
		res := nfsproto.ReadRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}

	// The paper's code path: nfsheur lookup + heuristic update. The
	// seqcount sizes the read-ahead window handed to the backend (the
	// disk-backed backend turns it into clustered prefetch; memfs
	// ignores it). Only the handle's shard is locked, so reads of
	// distinct files proceed in parallel.
	var seq int
	s.table.Update(uint64(args.FH), func(shard int, e *nfsheur.Entry, found bool) {
		seq = s.heur[shard].Update(&e.State, args.Offset, uint64(args.Count))
	})
	for {
		cur := s.maxSeq.Load()
		if int64(seq) <= cur || s.maxSeq.CompareAndSwap(cur, int64(seq)) {
			break
		}
	}
	s.reads.Add(1)

	ahead := readahead.Window(seq, s.maxAhead)
	// Argument decode and heuristic work so far is execute time; the
	// backend call is its own stage (with disk time carved out by a
	// SpanReader backend).
	sp.Mark(obs.StageExec)
	var data []byte
	var size uint64
	var eof bool
	var rerr error
	if sp != nil && s.spanReader != nil {
		data, size, eof, rerr = s.spanReader.ReadAtSpan(args.FH, args.Offset, args.Count, ahead, sp)
	} else {
		data, size, eof, rerr = s.b.ReadAt(args.FH, args.Offset, args.Count, ahead)
	}
	sp.Mark(obs.StageBackend)
	if rerr != nil {
		res := nfsproto.ReadRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	s.bytesRead.Add(int64(len(data)))
	attrs := fileAttrs(args.FH, size)
	res := nfsproto.ReadRes{Status: nfsproto.OK, Attrs: &attrs,
		Count: uint32(len(data)), EOF: eof, Data: data}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// write applies the data to the backend's page cache, then routes the
// stability decision through the gathering engine: UNSTABLE writes are
// deferred inside the gather window, DATA_SYNC/FILE_SYNC writes (and
// every write when the window is 0) are made durable before the
// reply. The reply's Committed reports what the server achieved and
// Verf carries the write verifier clients compare across a COMMIT.
func (s *Service) write(sp *obs.Span, body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalWriteArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	sp.Mark(obs.StageExec)
	if err := s.b.WriteAt(args.FH, args.Offset, args.Data); err != nil {
		sp.Mark(obs.StageBackend)
		status := uint32(nfsproto.ErrStale)
		switch {
		case errors.Is(err, vfs.ErrTooBig):
			status = nfsproto.ErrFBig
		case errors.Is(err, vfs.ErrNoSpace):
			status = nfsproto.ErrNoSpc
		}
		res := nfsproto.WriteRes{Status: status}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	// Page-cache apply is backend time; the gathering engine's decision
	// (and any synchronous flush it forces) is the gather stage.
	sp.Mark(obs.StageBackend)
	committed, werr := s.engine.Write(uint64(args.FH), args.Offset, uint32(len(args.Data)), args.Stable)
	sp.Mark(obs.StageGather)
	if werr != nil {
		res := nfsproto.WriteRes{Status: nfsproto.ErrIO}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	s.writes.Add(1)
	s.bytesWritten.Add(int64(len(args.Data)))
	a, _ := s.b.Getattr(args.FH)
	attrs := objAttrs(args.FH, a)
	res := nfsproto.WriteRes{Status: nfsproto.OK, Attrs: &attrs,
		Count: uint32(len(args.Data)), Committed: committed,
		Verf: s.engine.Verifier()}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// create serves CREATE: a named file of the requested initial size
// (zero-filled) under the given directory, replacing any existing file
// of that name.
func (s *Service) create(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalCreateArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	if args.Size > vfs.MaxCreateSize {
		res := nfsproto.CreateRes{Status: nfsproto.ErrFBig}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	// Replacing a file orphans its handle; drop any dirty extents the
	// gather engine still tracks for it, or a deferred flush would hit
	// a stale handle and latch a permanent async error.
	if old, a, lerr := s.b.Lookup(args.Dir, args.Name); lerr == nil && !a.Dir {
		s.engine.Forget(uint64(old))
	}
	var fh nfsproto.FH
	var cerr error
	if sc, ok := s.b.(vfs.SizedCreator); ok {
		fh, cerr = sc.CreateSized(args.Dir, args.Name, args.Size)
	} else {
		fh, cerr = s.b.Create(args.Dir, args.Name, make([]byte, args.Size))
	}
	if cerr != nil {
		res := nfsproto.CreateRes{Status: statusOf(cerr)}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	attrs := fileAttrs(fh, args.Size)
	res := nfsproto.CreateRes{Status: nfsproto.OK, FH: fh, Attrs: &attrs}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// setattr serves the size attribute (truncate/extend); the reduced
// contract carries no others.
func (s *Service) setattr(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalSetattrArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	if serr := s.b.Setattr(args.FH, args.Size); serr != nil {
		res := nfsproto.SetattrRes{Status: statusOf(serr)}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	a, _ := s.b.Getattr(args.FH)
	attrs := objAttrs(args.FH, a)
	res := nfsproto.SetattrRes{Status: nfsproto.OK, Attrs: &attrs}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

func (s *Service) mkdir(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalMkdirArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	fh, merr := s.b.Mkdir(args.Dir, args.Name)
	if merr != nil {
		res := nfsproto.MkdirRes{Status: statusOf(merr)}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	a, _ := s.b.Getattr(fh)
	attrs := objAttrs(fh, a)
	res := nfsproto.MkdirRes{Status: nfsproto.OK, FH: fh, Attrs: &attrs}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// remove serves REMOVE for files and empty directories. The removed
// object's handle is orphaned, so any dirty extents the gather engine
// still tracks for it are dropped — the same stale-flush bug class the
// CREATE-replace path fixes.
func (s *Service) remove(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalRemoveArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	removed, rerr := s.b.Remove(args.Dir, args.Name)
	if rerr != nil {
		res := nfsproto.RemoveRes{Status: statusOf(rerr)}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	s.engine.Forget(uint64(removed))
	a, _ := s.b.Getattr(args.Dir)
	attrs := objAttrs(args.Dir, a)
	res := nfsproto.RemoveRes{Status: nfsproto.OK, Attrs: &attrs}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// rename serves RENAME. The moved object keeps its handle (dirty
// extents stay valid); a replaced target is orphaned and forgotten
// like a removed file.
func (s *Service) rename(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalRenameArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	replaced, rerr := s.b.Rename(args.FromDir, args.FromName, args.ToDir, args.ToName)
	if rerr != nil {
		res := nfsproto.RenameRes{Status: statusOf(rerr)}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	if replaced != 0 {
		s.engine.Forget(uint64(replaced))
	}
	fa, _ := s.b.Getattr(args.FromDir)
	fattrs := objAttrs(args.FromDir, fa)
	ta, _ := s.b.Getattr(args.ToDir)
	tattrs := objAttrs(args.ToDir, ta)
	res := nfsproto.RenameRes{Status: nfsproto.OK, FromAttrs: &fattrs, ToAttrs: &tattrs}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// direntWire is the encoded size of one READDIR entry (follows-bool +
// fileid + name string + cookie).
func direntWire(name string) int { return 4 + 8 + 4 + (len(name)+3)&^3 + 8 }

// readdirBudget clamps a client-supplied reply budget.
func readdirBudget(count uint32) int {
	if count == 0 || count > nfsproto.MaxData {
		return nfsproto.MaxData
	}
	return int(count)
}

// readdir serves one page of a directory scan: the backend yields
// entries past the cookie and the reply takes as many as fit the
// byte budget, at least one (RFC 1813: a reply too small for a single
// entry would be NFS3ERR_TOOSMALL; serving one keeps scans live).
func (s *Service) readdir(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalReaddirArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	page, rerr := s.b.Readdir(args.Dir, args.Cookie, args.Cookieverf, 0)
	if rerr != nil {
		res := nfsproto.ReaddirRes{Status: statusOf(rerr)}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	budget := readdirBudget(args.Count)
	used := 4 + 88 + 8 + 4 + 4 // status + post-op attrs + verf + terminator + eof
	var entries []nfsproto.DirEntry
	for _, e := range page.Entries {
		esz := direntWire(e.Name)
		if used+esz > budget && len(entries) > 0 {
			break
		}
		used += esz
		entries = append(entries, nfsproto.DirEntry{
			FileID: uint64(e.FH), Name: e.Name, Cookie: e.Cookie})
	}
	a, _ := s.b.Getattr(args.Dir)
	attrs := objAttrs(args.Dir, a)
	res := nfsproto.ReaddirRes{Status: nfsproto.OK, Attrs: &attrs,
		Cookieverf: page.Cookieverf, Entries: entries,
		EOF: page.EOF && len(entries) == len(page.Entries)}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// readdirplus is readdir with per-entry attributes and handles; the
// MaxCount budget covers the whole reply.
func (s *Service) readdirplus(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalReaddirplusArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	page, rerr := s.b.Readdir(args.Dir, args.Cookie, args.Cookieverf, 0)
	if rerr != nil {
		res := nfsproto.ReaddirplusRes{Status: statusOf(rerr)}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	budget := readdirBudget(args.MaxCount)
	used := 4 + 88 + 8 + 4 + 4
	var entries []nfsproto.DirEntryPlus
	for _, e := range page.Entries {
		esz := direntWire(e.Name) + 88 + 4 + 12 // + post-op attrs + post-op FH
		if used+esz > budget && len(entries) > 0 {
			break
		}
		used += esz
		ea := objAttrs(e.FH, e.Attr)
		entries = append(entries, nfsproto.DirEntryPlus{
			FileID: uint64(e.FH), Name: e.Name, Cookie: e.Cookie,
			Attrs: &ea, FH: e.FH})
	}
	a, _ := s.b.Getattr(args.Dir)
	attrs := objAttrs(args.Dir, a)
	res := nfsproto.ReaddirplusRes{Status: nfsproto.OK, Attrs: &attrs,
		Cookieverf: page.Cookieverf, Entries: entries,
		EOF: page.EOF && len(entries) == len(page.Entries)}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// commit serves COMMIT: every dirty extent of the file is flushed
// through the backend (the whole file — a server may commit more than
// the requested range, never less), and the reply carries the write
// verifier. Asynchronous flush errors surface here as ErrIO, per RFC
// 1813.
func (s *Service) commit(sp *obs.Span, body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalCommitArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	a, ok := s.b.Getattr(args.FH)
	if !ok {
		res := nfsproto.CommitRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	sp.Mark(obs.StageExec)
	verf, cerr := s.engine.Commit(uint64(args.FH))
	sp.Mark(obs.StageGather)
	if cerr != nil {
		res := nfsproto.CommitRes{Status: nfsproto.ErrIO}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	s.commits.Add(1)
	attrs := objAttrs(args.FH, a)
	res := nfsproto.CommitRes{Status: nfsproto.OK, Attrs: &attrs, Verf: verf}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

func (s *Service) getattr(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalGetattrArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	a, ok := s.b.Getattr(args.FH)
	if !ok {
		res := nfsproto.GetattrRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	res := nfsproto.GetattrRes{Status: nfsproto.OK, Attrs: objAttrs(args.FH, a)}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// fsstat serves FSSTAT from the backend's space accounting. Any valid
// handle (the root included) names the one file system.
func (s *Service) fsstat(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalFsstatArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	if args.FH != vfs.RootFH {
		if _, ok := s.b.Getattr(args.FH); !ok {
			res := nfsproto.FsstatRes{Status: nfsproto.ErrStale}
			return res.AppendTo(reply), sunrpc.AcceptSuccess
		}
	}
	total, free := s.b.Fsstat()
	res := nfsproto.FsstatRes{Status: nfsproto.OK, Tbytes: total, Fbytes: free}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// NewServer binds addr and serves svc over real UDP and TCP sockets.
func NewServer(addr string, svc *Service) (*rpcnet.Server, error) {
	return NewServerOpts(addr, svc, rpcnet.ServerOptions{})
}

// NewServerTap is NewServer with a capture tap observing every served
// RPC (nil tap = NewServer). Pair it with nfstrace.Capture to record
// live request streams to a .nft trace file:
//
//	w, _ := tracefile.Create("out.nft", time.Now())
//	cap := nfstrace.NewCapture(w)
//	srv, _ := nfsd.NewServerTap(addr, svc, cap.Tap)
//
// The tap adds one pointer check per request when nil and one record
// append (no payload copy) when capturing.
func NewServerTap(addr string, svc *Service, tap rpcnet.Tap) (*rpcnet.Server, error) {
	return NewServerOpts(addr, svc, rpcnet.ServerOptions{Tap: tap})
}

// NewServerOpts is the full-width constructor: capture tap and fault
// injection. The service always mounts through its InfoHandler, so a
// DRC-enabled Config works behind every constructor.
func NewServerOpts(addr string, svc *Service, opts rpcnet.ServerOptions) (*rpcnet.Server, error) {
	return rpcnet.NewServerInfo(addr, nfsproto.Program, nfsproto.Version3, svc.InfoHandler(), opts)
}
