package nfsd_test

import (
	"bytes"
	"net/netip"
	"testing"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/obs"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/sunrpc"
	"nfstricks/internal/vfs"
)

// readAllocsPerOp measures steady-state allocations per served 8 KB
// READ through the InfoHandler, with the span lifecycle the RPC layer
// would drive (acquire → handler → reply mark → finish). reg == nil is
// the metrics-off baseline: the span table is nil, every span nil.
func readAllocsPerOp(t *testing.T, reg *obs.Registry) float64 {
	t.Helper()
	fs := memfs.NewFS()
	payload := bytes.Repeat([]byte{0x7e}, 8<<10)
	if _, err := fs.Create(vfs.RootFH, "f", payload); err != nil {
		t.Fatal(err)
	}
	svc := nfsd.New(fs, nfsd.Config{Obs: reg})
	defer svc.Close()
	ih := svc.InfoHandler()
	table := svc.SpanTable()
	fh, _, err := fs.Lookup(vfs.RootFH, "f")
	if err != nil {
		t.Fatal(err)
	}
	body := (&nfsproto.ReadArgs{FH: fh, Offset: 0, Count: 8 << 10}).Marshal()
	reply := make([]byte, 0, 64*1024)
	client := netip.MustParseAddrPort("127.0.0.1:1053")

	var stat uint32
	op := func() {
		sp := table.Acquire()
		info := rpcnet.CallInfo{Client: client, Span: sp}
		_, stat = ih(info, nfsproto.ProcRead, body, reply)
		sp.Mark(obs.StageReply)
		table.Finish(sp)
	}
	// Warm the span pool and heuristic table out of first-use growth.
	for i := 0; i < 100; i++ {
		op()
	}
	allocs := testing.AllocsPerRun(500, op)
	if stat != sunrpc.AcceptSuccess {
		t.Fatalf("READ stat = %d", stat)
	}
	return allocs
}

// TestReadObsZeroExtraAllocs is the hot-path cost bound from the issue:
// the live 8 KB READ path with metrics enabled (span acquire, stage
// marks, per-proc histograms, finish) must allocate exactly as much as
// with metrics off — zero additional allocs/op.
func TestReadObsZeroExtraAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	off := readAllocsPerOp(t, nil)
	on := readAllocsPerOp(t, obs.NewRegistry())
	if on > off {
		t.Fatalf("metrics-on READ allocates %.2f/op vs %.2f/op off — observability leaked onto the hot path", on, off)
	}
}

// TestLiveSpanStageSums serves real READs over TCP with spans on and
// checks the recorded decomposition: every served call recorded, stage
// sums adding up (within tolerance) to the end-to-end total — the
// additive-attribution property the carve arithmetic guarantees.
func TestLiveSpanStageSums(t *testing.T) {
	reg := obs.NewRegistry()
	fs := memfs.NewFS()
	payload := bytes.Repeat([]byte{0x3c}, 256<<10)
	if _, err := fs.Create(vfs.RootFH, "f", payload); err != nil {
		t.Fatal(err)
	}
	svc := nfsd.New(fs, nfsd.Config{Obs: reg})
	defer svc.Close()
	srv, err := nfsd.NewServerOpts("127.0.0.1:0", svc,
		rpcnet.ServerOptions{Spans: svc.SpanTable()})
	if err != nil {
		t.Fatal(err)
	}
	c, err := memfs.DialClient("tcp", srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	fh, _, err := c.Lookup(vfs.RootFH, "f")
	if err != nil {
		t.Fatal(err)
	}
	const reads = 64
	for i := 0; i < reads; i++ {
		off := uint64(i%32) * (8 << 10)
		if _, _, err := c.Read(fh, off, 8<<10); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	srv.Close() // drains in-flight spans

	ps, ok := svc.SpanTable().ProcSummary("READ")
	if !ok {
		t.Fatal("no READ spans recorded")
	}
	if ps.Count != reads {
		t.Fatalf("recorded %d READ spans, want %d", ps.Count, reads)
	}
	for _, stage := range []string{"exec", "backend", "reply"} {
		hs, ok := ps.Stages[stage]
		if !ok || hs.Count != reads {
			t.Fatalf("stage %q: recorded %d of %d reads (%+v)", stage, hs.Count, reads, ps.Stages)
		}
	}
	var stageSum float64
	for _, hs := range ps.Stages {
		stageSum += hs.SumMS
	}
	diff := stageSum - ps.Total.SumMS
	if diff < 0 {
		diff = -diff
	}
	tol := 0.05 * ps.Total.SumMS
	if tol < 0.2 {
		tol = 0.2 // clock-resolution slack for very fast runs
	}
	if diff > tol {
		t.Fatalf("stage sum %.3fms vs total %.3fms (diff %.3fms > tol %.3fms) — stages must decompose the end-to-end latency",
			stageSum, ps.Total.SumMS, diff, tol)
	}

	// The registry views carry the same service: executed counter per
	// proc and the span table itself.
	snap := reg.Dump()
	if got := snap.Counters[`nfsd_executed_total{proc="READ"}`]; got != reads+0 {
		// +0: Lookup is a separate proc; READ count must match exactly.
		t.Fatalf("nfsd_executed_total READ = %d, want %d", got, reads)
	}
	if snap.Spans["nfsd_op"].Procs["READ"].Count != reads {
		t.Fatalf("registry span snapshot disagrees: %+v", snap.Spans["nfsd_op"].Procs["READ"])
	}
}
