// Package nfsserver implements the simulated NFS server under study: a
// pool of nfsd processes serving NFS v3 requests from UDP and TCP
// transports, with the nfsheur table and a pluggable sequentiality
// heuristic deciding how much file-system read-ahead each READ triggers
// — the exact code path the paper modifies in FreeBSD's nfsrv_read.
package nfsserver

import (
	"fmt"
	"time"

	"nfstricks/internal/ffs"
	"nfstricks/internal/netsim"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/nfsrpc"
	"nfstricks/internal/nfstrace"
	"nfstricks/internal/readahead"
	"nfstricks/internal/sim"
)

// Port is the NFS service port.
const Port = 2049

// Config tunes the server.
type Config struct {
	// NumNFSD is the nfsd pool size. The paper runs eight
	// ("the server runs eight nfsds instead of the default four").
	NumNFSD int
	// Heuristic computes seqcounts (default: readahead.Default).
	Heuristic readahead.Heuristic
	// Table configures the nfsheur table (default: nfsheur.DefaultParams).
	Table nfsheur.Params
	// MaxReadAhead caps the per-READ read-ahead window in blocks
	// (default 32 = 256 KB).
	MaxReadAhead int
	// PerOpCPU is the server CPU cost of one RPC (parse, VFS, UDP
	// stack, copies). Calibrated so NFS throughput lands at roughly
	// half the local rate, as the paper observes.
	PerOpCPU time.Duration
	// PerSegCPU is the additional CPU per TCP segment sent/received
	// (checksum + protocol processing), the paper-era cost of NFS/TCP.
	PerSegCPU time.Duration
	// Tracer, when non-nil, records every request for offline analysis
	// (request reordering fractions, sequentiality runs — the
	// measurements behind the paper's §6).
	Tracer *nfstrace.Tracer
}

func (c *Config) fill() {
	if c.NumNFSD == 0 {
		c.NumNFSD = 8
	}
	if c.Heuristic == nil {
		c.Heuristic = readahead.Default{}
	}
	if c.Table.Slots == 0 {
		c.Table = nfsheur.DefaultParams()
	}
	if c.MaxReadAhead == 0 {
		c.MaxReadAhead = 32
	}
	if c.PerOpCPU == 0 {
		c.PerOpCPU = 300 * time.Microsecond
	}
	if c.PerSegCPU == 0 {
		c.PerSegCPU = 25 * time.Microsecond
	}
}

// Stats aggregates server counters.
type Stats struct {
	Ops            int64
	Reads          int64
	BytesRead      int64
	Writes         int64
	ReorderedReads int64 // READs whose offset regressed for their file
}

// request is one inbound RPC with its reply path.
type request struct {
	call    nfsrpc.Call
	reply   func(netsim.Message)
	tcpSegs int // segments the request consumed (TCP only)
	tcp     bool
}

// Server is the simulated NFS server machine.
type Server struct {
	k     *sim.Kernel
	cpu   *sim.CPU
	cfg   Config
	table *nfsheur.Table

	exports []*ffs.FS
	workq   *sim.Chan[request]

	udp *netsim.UDPSocket
	lst *netsim.Listener

	stats   Stats
	lastOff map[nfsproto.FH]uint64
}

// New creates a server on host, with its own CPU resource.
func New(k *sim.Kernel, host *netsim.Host, cfg Config) *Server {
	cfg.fill()
	return &Server{
		k:       k,
		cpu:     sim.NewCPU(k),
		cfg:     cfg,
		table:   nfsheur.New(cfg.Table),
		workq:   sim.NewChan[request](k),
		udp:     host.UDP(Port),
		lst:     host.Listen(Port),
		lastOff: make(map[nfsproto.FH]uint64),
	}
}

// Export publishes a file system. Its files are reachable via LOOKUP
// against the FS root handle.
func (s *Server) Export(fs *ffs.FS) { s.exports = append(s.exports, fs) }

// Table exposes the nfsheur table (for instrumentation and tests).
func (s *Server) Table() *nfsheur.Table { return s.table }

// CPU exposes the server CPU resource.
func (s *Server) CPU() *sim.CPU { return s.cpu }

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats { return s.stats }

// Config returns the server configuration in effect.
func (s *Server) Config() Config { return s.cfg }

// RootFH returns the root handle of export i (the mount protocol,
// reduced to its essence).
func (s *Server) RootFH(i int) nfsproto.FH {
	return nfsproto.FH(s.exports[i].RootHandle())
}

// FlushState clears cross-run state: the nfsheur table and the
// reorder-detection map. (Buffer caches are flushed by the owner of the
// disk stack.)
func (s *Server) FlushState() {
	s.table.Flush()
	s.lastOff = make(map[nfsproto.FH]uint64)
	s.stats = Stats{}
}

// Start spawns the transport receivers and the nfsd pool.
func (s *Server) Start() {
	s.k.Go("nfs-udp-rx", func(p *sim.Proc) {
		for {
			pkt := s.udp.Recv(p)
			call := pkt.Msg.Payload.(nfsrpc.Call)
			from := pkt.From
			s.workq.Send(request{
				call: call,
				reply: func(m netsim.Message) {
					s.udp.SendTo(from, m)
				},
			})
		}
	})
	s.k.Go("nfs-tcp-accept", func(p *sim.Proc) {
		for {
			conn := s.lst.Accept(p)
			s.k.Go("nfs-tcp-rx", func(p *sim.Proc) {
				for {
					msg := conn.Recv(p)
					call := msg.Payload.(nfsrpc.Call)
					s.workq.Send(request{
						call:    call,
						tcp:     true,
						tcpSegs: segsFor(msg.Size),
						reply:   conn.Send,
					})
				}
			})
		}
	})
	for i := 0; i < s.cfg.NumNFSD; i++ {
		s.k.Go(fmt.Sprintf("nfsd%d", i), s.nfsd)
	}
}

// segsFor mirrors netsim's segment accounting for CPU charging.
func segsFor(size int) int {
	segs := (size + 4 + 1447) / 1448
	if segs < 1 {
		segs = 1
	}
	return segs
}

// nfsd is one server daemon: take a request, burn CPU, do the I/O,
// reply.
func (s *Server) nfsd(p *sim.Proc) {
	for {
		req := s.workq.Recv(p)
		s.stats.Ops++

		cost := s.cfg.PerOpCPU
		if req.tcp {
			cost += time.Duration(req.tcpSegs) * s.cfg.PerSegCPU
		}
		s.cpu.Use(p, cost)

		res := s.dispatch(p, req.call)
		size := nfsrpc.ReplySize(res)
		if req.tcp {
			s.cpu.Use(p, time.Duration(segsFor(size))*s.cfg.PerSegCPU)
		}
		req.reply(netsim.Message{
			Payload: nfsrpc.Reply{XID: req.call.XID, Res: res},
			Size:    size,
		})
	}
}

// dispatch executes one NFS procedure.
func (s *Server) dispatch(p *sim.Proc, call nfsrpc.Call) nfsrpc.Sized {
	if s.cfg.Tracer != nil {
		rec := nfstrace.Record{When: s.k.Now(), Proc: call.Proc}
		switch a := call.Args.(type) {
		case *nfsproto.ReadArgs:
			rec.FH, rec.Offset, rec.Count = uint64(a.FH), a.Offset, a.Count
		case *nfsproto.WriteArgs:
			rec.FH, rec.Offset, rec.Count = uint64(a.FH), a.Offset, a.Count
		case *nfsproto.GetattrArgs:
			rec.FH = uint64(a.FH)
		}
		s.cfg.Tracer.Add(rec)
	}
	switch call.Proc {
	case nfsproto.ProcRead:
		return s.read(p, call.Args.(*nfsproto.ReadArgs))
	case nfsproto.ProcWrite:
		return s.write(p, call.Args.(*nfsproto.WriteArgs))
	case nfsproto.ProcLookup:
		return s.lookup(call.Args.(*nfsproto.LookupArgs))
	case nfsproto.ProcGetattr:
		return s.getattr(call.Args.(*nfsproto.GetattrArgs))
	case nfsproto.ProcAccess:
		return s.access(call.Args.(*nfsproto.AccessArgs))
	case nfsproto.ProcCreate:
		return s.create(call.Args.(*nfsproto.CreateArgs))
	case nfsproto.ProcFsstat:
		return s.fsstat(call.Args.(*nfsproto.GetattrArgs))
	default:
		return &nfsproto.GetattrRes{Status: nfsproto.ErrIO}
	}
}

// resolve maps a handle to its file system and file.
func (s *Server) resolve(fh nfsproto.FH) (*ffs.FS, *ffs.File) {
	for _, fs := range s.exports {
		if f, ok := fs.ByHandle(uint64(fh)); ok {
			return fs, f
		}
	}
	return nil, nil
}

// resolveDir maps a root handle to its file system.
func (s *Server) resolveDir(fh nfsproto.FH) *ffs.FS {
	for _, fs := range s.exports {
		if fs.RootHandle() == uint64(fh) {
			return fs
		}
	}
	return nil
}

func attrsFor(f *ffs.File) *nfsproto.Fattr {
	return &nfsproto.Fattr{
		Type: nfsproto.TypeReg, Mode: 0644, Nlink: 1,
		Size: uint64(f.Size()), Used: uint64(f.Size()),
		FileID: f.Handle(),
	}
}

// read is the heart of the reproduction: FreeBSD's nfsrv_read. The
// nfsheur table supplies (or loses) the file's sequentiality state, the
// configured heuristic turns the observed offset into a seqcount, and
// the seqcount sizes the file-system read-ahead.
func (s *Server) read(p *sim.Proc, args *nfsproto.ReadArgs) nfsrpc.Sized {
	fs, f := s.resolve(args.FH)
	if f == nil {
		return &nfsproto.ReadRes{Status: nfsproto.ErrStale}
	}
	s.stats.Reads++
	if last, ok := s.lastOff[args.FH]; ok && args.Offset < last {
		s.stats.ReorderedReads++
	}
	if end := args.Offset + uint64(args.Count); end > s.lastOff[args.FH] {
		s.lastOff[args.FH] = end
	}

	entry, _ := s.table.Lookup(uint64(args.FH))
	seq := s.cfg.Heuristic.Update(&entry.State, args.Offset, uint64(args.Count))
	window := readahead.Window(seq, s.cfg.MaxReadAhead)
	frontier := s.cfg.Heuristic.Frontier(&entry.State)

	size := uint64(f.Size())
	if args.Offset >= size {
		return &nfsproto.ReadRes{Status: nfsproto.OK, Attrs: attrsFor(f), EOF: true}
	}
	count := uint64(args.Count)
	if args.Offset+count > size {
		count = size - args.Offset
	}
	first := int64(args.Offset) / ffs.BlockSize
	last := int64(args.Offset+count-1) / ffs.BlockSize
	fs.ReadBlocks(p, f, first, last-first+1)
	fs.Prefetch(f, last+1, window, frontier)

	s.stats.BytesRead += int64(count)
	return &nfsproto.ReadRes{
		Status:  nfsproto.OK,
		Attrs:   attrsFor(f),
		Count:   uint32(count),
		EOF:     args.Offset+count >= size,
		DataLen: uint32(count),
	}
}

func (s *Server) write(p *sim.Proc, args *nfsproto.WriteArgs) nfsrpc.Sized {
	fs, f := s.resolve(args.FH)
	if f == nil {
		return &nfsproto.WriteRes{Status: nfsproto.ErrStale}
	}
	s.stats.Writes++
	n := uint64(args.Count)
	if args.Data != nil {
		n = uint64(len(args.Data))
	} else if args.DataLen > 0 {
		n = uint64(args.DataLen)
	}
	first := int64(args.Offset) / ffs.BlockSize
	last := int64(args.Offset+n-1) / ffs.BlockSize
	if err := fs.WriteBlocks(p, f, first, last-first+1); err != nil {
		return &nfsproto.WriteRes{Status: nfsproto.ErrNoSpc}
	}
	return &nfsproto.WriteRes{
		Status: nfsproto.OK, Attrs: attrsFor(f),
		Count: uint32(n), Committed: args.Stable,
	}
}

func (s *Server) lookup(args *nfsproto.LookupArgs) nfsrpc.Sized {
	fs := s.resolveDir(args.Dir)
	if fs == nil {
		return &nfsproto.LookupRes{Status: nfsproto.ErrStale}
	}
	f, ok := fs.Lookup(args.Name)
	if !ok {
		return &nfsproto.LookupRes{Status: nfsproto.ErrNoEnt}
	}
	return &nfsproto.LookupRes{Status: nfsproto.OK, FH: nfsproto.FH(f.Handle()), Attrs: attrsFor(f)}
}

func (s *Server) getattr(args *nfsproto.GetattrArgs) nfsrpc.Sized {
	if fs := s.resolveDir(args.FH); fs != nil {
		return &nfsproto.GetattrRes{Status: nfsproto.OK,
			Attrs: nfsproto.Fattr{Type: nfsproto.TypeDir, Mode: 0755, Nlink: 2, FileID: uint64(args.FH)}}
	}
	_, f := s.resolve(args.FH)
	if f == nil {
		return &nfsproto.GetattrRes{Status: nfsproto.ErrStale}
	}
	return &nfsproto.GetattrRes{Status: nfsproto.OK, Attrs: *attrsFor(f)}
}

func (s *Server) access(args *nfsproto.AccessArgs) nfsrpc.Sized {
	_, f := s.resolve(args.FH)
	if f == nil && s.resolveDir(args.FH) == nil {
		return &nfsproto.AccessRes{Status: nfsproto.ErrStale}
	}
	var attrs *nfsproto.Fattr
	if f != nil {
		attrs = attrsFor(f)
	}
	return &nfsproto.AccessRes{Status: nfsproto.OK, Attrs: attrs, Access: args.Access}
}

func (s *Server) create(args *nfsproto.CreateArgs) nfsrpc.Sized {
	fs := s.resolveDir(args.Dir)
	if fs == nil {
		return &nfsproto.CreateRes{Status: nfsproto.ErrStale}
	}
	size := int64(args.Size)
	if size <= 0 {
		size = ffs.BlockSize
	}
	f, err := fs.Create(args.Name, size)
	if err != nil {
		return &nfsproto.CreateRes{Status: nfsproto.ErrExist}
	}
	return &nfsproto.CreateRes{Status: nfsproto.OK, FH: nfsproto.FH(f.Handle()), Attrs: attrsFor(f)}
}

func (s *Server) fsstat(args *nfsproto.GetattrArgs) nfsrpc.Sized {
	fs := s.resolveDir(args.FH)
	if fs == nil {
		return &nfsproto.FsstatRes{Status: nfsproto.ErrStale}
	}
	total := uint64(fs.Partition().Bytes())
	return &nfsproto.FsstatRes{Status: nfsproto.OK, Tbytes: total, Fbytes: total / 2}
}
