package nfsserver

import (
	"testing"

	"nfstricks/internal/buffercache"
	"nfstricks/internal/disk"
	"nfstricks/internal/ffs"
	"nfstricks/internal/iosched"
	"nfstricks/internal/netsim"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/nfsrpc"
	"nfstricks/internal/readahead"
	"nfstricks/internal/sim"
)

// rig builds a server with one exported FS and a raw UDP client socket.
type rig struct {
	k    *sim.Kernel
	srv  *Server
	fs   *ffs.FS
	sock *netsim.UDPSocket
	dst  netsim.Addr
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	m := disk.WD200BB()
	dev := disk.NewDevice(k, m)
	dr := disk.NewDriver(k, dev, iosched.NewElevator())
	cache := buffercache.New(k, dr, 4096)
	fsys := ffs.New(k, cache, m.Geo.QuarterPartitions("ide")[0], ffs.Config{})

	net := netsim.New(k, netsim.Config{})
	serverHost := net.Host("server", 54e6)
	clientHost := net.Host("client", 0)

	srv := New(k, serverHost, cfg)
	srv.Export(fsys)
	srv.Start()
	return &rig{
		k: k, srv: srv, fs: fsys,
		sock: clientHost.UDP(900),
		dst:  netsim.Addr{Host: "server", Port: Port},
	}
}

// rpc sends one call and returns the reply result.
func (r *rig) rpc(p *sim.Proc, proc uint32, args nfsrpc.Sized) nfsrpc.Sized {
	r.sock.SendTo(r.dst, netsim.Message{
		Payload: nfsrpc.Call{XID: 1, Proc: proc, Args: args},
		Size:    nfsrpc.CallSize(args),
	})
	pkt := r.sock.Recv(p)
	return pkt.Msg.Payload.(nfsrpc.Reply).Res
}

func TestLookupAndGetattr(t *testing.T) {
	r := newRig(t, Config{})
	f, _ := r.fs.Create("hello", 1<<20)
	r.k.Go("client", func(p *sim.Proc) {
		res := r.rpc(p, nfsproto.ProcLookup,
			&nfsproto.LookupArgs{Dir: r.srv.RootFH(0), Name: "hello"})
		lr := res.(*nfsproto.LookupRes)
		if lr.Status != nfsproto.OK || uint64(lr.FH) != f.Handle() {
			t.Errorf("lookup: %+v", lr)
		}
		if lr.Attrs == nil || lr.Attrs.Size != 1<<20 {
			t.Errorf("lookup attrs: %+v", lr.Attrs)
		}
		res = r.rpc(p, nfsproto.ProcGetattr, &nfsproto.GetattrArgs{FH: lr.FH})
		gr := res.(*nfsproto.GetattrRes)
		if gr.Status != nfsproto.OK || gr.Attrs.Size != 1<<20 {
			t.Errorf("getattr: %+v", gr)
		}
	})
	r.k.Run()
	r.k.Shutdown()
}

func TestLookupMissingAndStale(t *testing.T) {
	r := newRig(t, Config{})
	r.k.Go("client", func(p *sim.Proc) {
		res := r.rpc(p, nfsproto.ProcLookup,
			&nfsproto.LookupArgs{Dir: r.srv.RootFH(0), Name: "ghost"})
		if res.(*nfsproto.LookupRes).Status != nfsproto.ErrNoEnt {
			t.Error("missing lookup did not return NOENT")
		}
		res = r.rpc(p, nfsproto.ProcRead, &nfsproto.ReadArgs{FH: 0xdead, Count: 8192})
		if res.(*nfsproto.ReadRes).Status != nfsproto.ErrStale {
			t.Error("stale read did not return ESTALE")
		}
		res = r.rpc(p, nfsproto.ProcLookup, &nfsproto.LookupArgs{Dir: 0xbeef, Name: "x"})
		if res.(*nfsproto.LookupRes).Status != nfsproto.ErrStale {
			t.Error("bad dir handle did not return ESTALE")
		}
	})
	r.k.Run()
	r.k.Shutdown()
}

func TestReadReturnsDataAndEOF(t *testing.T) {
	r := newRig(t, Config{})
	f, _ := r.fs.Create("f", 3*8192+100)
	r.k.Go("client", func(p *sim.Proc) {
		fh := nfsproto.FH(f.Handle())
		res := r.rpc(p, nfsproto.ProcRead, &nfsproto.ReadArgs{FH: fh, Offset: 0, Count: 8192})
		rr := res.(*nfsproto.ReadRes)
		if rr.Status != nfsproto.OK || rr.Count != 8192 || rr.EOF {
			t.Errorf("first read: %+v", rr)
		}
		res = r.rpc(p, nfsproto.ProcRead, &nfsproto.ReadArgs{FH: fh, Offset: 3 * 8192, Count: 8192})
		rr = res.(*nfsproto.ReadRes)
		if rr.Status != nfsproto.OK || rr.Count != 100 || !rr.EOF {
			t.Errorf("tail read: %+v", rr)
		}
		res = r.rpc(p, nfsproto.ProcRead, &nfsproto.ReadArgs{FH: fh, Offset: 1 << 30, Count: 8192})
		rr = res.(*nfsproto.ReadRes)
		if rr.Status != nfsproto.OK || rr.Count != 0 || !rr.EOF {
			t.Errorf("past-EOF read: %+v", rr)
		}
	})
	r.k.Run()
	r.k.Shutdown()
}

func TestReadUpdatesHeuristicState(t *testing.T) {
	r := newRig(t, Config{Heuristic: readahead.SlowDown{}, Table: nfsheur.ImprovedParams()})
	f, _ := r.fs.Create("f", 1<<20)
	r.k.Go("client", func(p *sim.Proc) {
		fh := nfsproto.FH(f.Handle())
		for i := 0; i < 10; i++ {
			r.rpc(p, nfsproto.ProcRead,
				&nfsproto.ReadArgs{FH: fh, Offset: uint64(i) * 8192, Count: 8192})
		}
	})
	r.k.Run()
	r.k.Shutdown()
	entry, found := r.srv.Table().Lookup(f.Handle())
	if !found {
		t.Fatal("handle missing from nfsheur after reads")
	}
	if entry.State.SeqCount < 10 {
		t.Fatalf("seqcount = %d after 10 sequential reads", entry.State.SeqCount)
	}
	if r.srv.Stats().Reads != 10 {
		t.Fatalf("server reads = %d", r.srv.Stats().Reads)
	}
}

func TestReadAheadReachesCache(t *testing.T) {
	r := newRig(t, Config{Heuristic: readahead.Always{}, Table: nfsheur.ImprovedParams()})
	f, _ := r.fs.Create("f", 1<<20)
	r.k.Go("client", func(p *sim.Proc) {
		fh := nfsproto.FH(f.Handle())
		for i := 0; i < 4; i++ {
			r.rpc(p, nfsproto.ProcRead,
				&nfsproto.ReadArgs{FH: fh, Offset: uint64(i) * 8192, Count: 8192})
		}
		p.Sleep(100 * 1e6) // let prefetch land
	})
	r.k.Run()
	r.k.Shutdown()
	if r.fs.Cache().Stats().ReadAheads == 0 {
		t.Fatal("Always heuristic issued no read-ahead")
	}
}

func TestWriteAndCreate(t *testing.T) {
	r := newRig(t, Config{})
	r.k.Go("client", func(p *sim.Proc) {
		res := r.rpc(p, nfsproto.ProcCreate,
			&nfsproto.CreateArgs{Dir: r.srv.RootFH(0), Name: "new", Size: 4 * 8192})
		cr := res.(*nfsproto.CreateRes)
		if cr.Status != nfsproto.OK || cr.FH == 0 {
			t.Errorf("create: %+v", cr)
		}
		res = r.rpc(p, nfsproto.ProcWrite, &nfsproto.WriteArgs{
			FH: cr.FH, Offset: 0, Count: 8192,
			Stable: nfsproto.WriteFileSync, DataLen: 8192,
		})
		wr := res.(*nfsproto.WriteRes)
		if wr.Status != nfsproto.OK || wr.Count != 8192 {
			t.Errorf("write: %+v", wr)
		}
		// Duplicate create fails.
		res = r.rpc(p, nfsproto.ProcCreate,
			&nfsproto.CreateArgs{Dir: r.srv.RootFH(0), Name: "new", Size: 8192})
		if res.(*nfsproto.CreateRes).Status == nfsproto.OK {
			t.Error("duplicate create succeeded")
		}
	})
	r.k.Run()
	r.k.Shutdown()
	if r.srv.Stats().Writes != 1 {
		t.Fatalf("writes = %d", r.srv.Stats().Writes)
	}
}

func TestAccessAndFsstat(t *testing.T) {
	r := newRig(t, Config{})
	f, _ := r.fs.Create("f", 8192)
	r.k.Go("client", func(p *sim.Proc) {
		res := r.rpc(p, nfsproto.ProcAccess,
			&nfsproto.AccessArgs{FH: nfsproto.FH(f.Handle()), Access: 0x3f})
		ar := res.(*nfsproto.AccessRes)
		if ar.Status != nfsproto.OK || ar.Access != 0x3f {
			t.Errorf("access: %+v", ar)
		}
		res = r.rpc(p, nfsproto.ProcFsstat, &nfsproto.GetattrArgs{FH: r.srv.RootFH(0)})
		fr := res.(*nfsproto.FsstatRes)
		if fr.Status != nfsproto.OK || fr.Tbytes == 0 {
			t.Errorf("fsstat: %+v", fr)
		}
	})
	r.k.Run()
	r.k.Shutdown()
}

func TestReorderDetection(t *testing.T) {
	r := newRig(t, Config{})
	f, _ := r.fs.Create("f", 1<<20)
	r.k.Go("client", func(p *sim.Proc) {
		fh := nfsproto.FH(f.Handle())
		// Offsets 0, 2, then 1: the third regresses.
		for _, blk := range []uint64{0, 2, 1} {
			r.rpc(p, nfsproto.ProcRead,
				&nfsproto.ReadArgs{FH: fh, Offset: blk * 8192, Count: 8192})
		}
	})
	r.k.Run()
	r.k.Shutdown()
	if got := r.srv.Stats().ReorderedReads; got != 1 {
		t.Fatalf("reordered reads = %d, want 1", got)
	}
}

func TestFlushStateResets(t *testing.T) {
	r := newRig(t, Config{})
	f, _ := r.fs.Create("f", 1<<20)
	r.k.Go("client", func(p *sim.Proc) {
		r.rpc(p, nfsproto.ProcRead,
			&nfsproto.ReadArgs{FH: nfsproto.FH(f.Handle()), Count: 8192})
	})
	r.k.Run()
	r.k.Shutdown()
	if r.srv.Table().Active() == 0 {
		t.Fatal("table empty after read")
	}
	r.srv.FlushState()
	if r.srv.Table().Active() != 0 || r.srv.Stats().Reads != 0 {
		t.Fatal("FlushState left state behind")
	}
}
