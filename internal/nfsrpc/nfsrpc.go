// Package nfsrpc is the glue between the NFS message types and the
// transports: typed call/reply envelopes for the simulator that carry
// the exact wire size a marshalled ONC RPC message would occupy, so the
// simulated network's byte accounting matches the real encoding
// (verified against sunrpc marshalling in tests).
package nfsrpc

import (
	"nfstricks/internal/sunrpc"
)

// Sized is any NFS message exposing its exact XDR size.
type Sized interface {
	Marshal() []byte
	WireSize() int
}

// Call is a simulated RPC call: an NFS procedure plus its arguments.
type Call struct {
	XID  uint32
	Proc uint32
	Args Sized
}

// Reply is a simulated RPC reply.
type Reply struct {
	XID uint32
	Res Sized
}

// callHeaderBytes/replyHeaderBytes are the constant ONC RPC envelope
// sizes for the credentials this codebase uses (AUTH_UNIX calls,
// AUTH_NONE verifiers), computed from the real encoder.
var callHeaderBytes = len(sunrpc.MarshalCall(&sunrpc.Call{
	Cred: sunrpc.AuthUnixCred("client01", 1001, 1001),
	Verf: sunrpc.AuthNoneCred(),
}))

var replyHeaderBytes = len(sunrpc.MarshalReply(&sunrpc.Reply{
	Verf: sunrpc.AuthNoneCred(),
}))

// CallHeaderSize returns the RPC call envelope size in bytes.
func CallHeaderSize() int { return callHeaderBytes }

// ReplyHeaderSize returns the RPC reply envelope size in bytes.
func ReplyHeaderSize() int { return replyHeaderBytes }

// CallSize returns the full wire size of a call carrying args.
func CallSize(args Sized) int { return callHeaderBytes + args.WireSize() }

// ReplySize returns the full wire size of a reply carrying res.
func ReplySize(res Sized) int { return replyHeaderBytes + res.WireSize() }
