package nfsrpc

import (
	"testing"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/sunrpc"
)

func TestHeaderSizesMatchRealEncoding(t *testing.T) {
	args := &nfsproto.ReadArgs{FH: 42, Offset: 8192, Count: 8192}
	call := &sunrpc.Call{
		XID: 1, Prog: nfsproto.Program, Vers: nfsproto.Version3,
		Proc: nfsproto.ProcRead,
		Cred: sunrpc.AuthUnixCred("client01", 1001, 1001),
		Verf: sunrpc.AuthNoneCred(),
		Body: args.Marshal(),
	}
	if got, want := CallSize(args), len(sunrpc.MarshalCall(call)); got != want {
		t.Fatalf("CallSize = %d, real encoding = %d", got, want)
	}

	res := &nfsproto.ReadRes{Status: nfsproto.OK, Count: 8192, DataLen: 8192}
	reply := &sunrpc.Reply{XID: 1, Stat: sunrpc.AcceptSuccess,
		Verf: sunrpc.AuthNoneCred(), Body: res.Marshal()}
	if got, want := ReplySize(res), len(sunrpc.MarshalReply(reply)); got != want {
		t.Fatalf("ReplySize = %d, real encoding = %d", got, want)
	}
}

func TestHeaderSizesPositive(t *testing.T) {
	if CallHeaderSize() <= 24 {
		t.Fatalf("call header %d suspiciously small", CallHeaderSize())
	}
	if ReplyHeaderSize() < 24 {
		t.Fatalf("reply header %d too small", ReplyHeaderSize())
	}
}

func TestCallSizeTracksPayload(t *testing.T) {
	small := CallSize(&nfsproto.ReadArgs{})
	big := CallSize(&nfsproto.WriteArgs{DataLen: 8192})
	if big-small < 8192 {
		t.Fatalf("payload not reflected: %d vs %d", small, big)
	}
}
