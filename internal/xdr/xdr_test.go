package xdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUint32RoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint32(0xdeadbeef)
	d := NewDecoder(e.Bytes())
	if got := d.Uint32(); got != 0xdeadbeef || d.Err() != nil {
		t.Fatalf("got %x, err %v", got, d.Err())
	}
}

func TestUint64RoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(0x0102030405060708)
	d := NewDecoder(e.Bytes())
	if got := d.Uint64(); got != 0x0102030405060708 {
		t.Fatalf("got %x", got)
	}
}

func TestInt32Negative(t *testing.T) {
	e := NewEncoder(nil)
	e.Int32(-42)
	d := NewDecoder(e.Bytes())
	if got := d.Int32(); got != -42 {
		t.Fatalf("got %d", got)
	}
}

func TestBoolEncoding(t *testing.T) {
	e := NewEncoder(nil)
	e.Bool(true)
	e.Bool(false)
	want := []byte{0, 0, 0, 1, 0, 0, 0, 0}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("bool wire form = %v", e.Bytes())
	}
}

func TestOpaquePadding(t *testing.T) {
	for n := 0; n < 9; n++ {
		e := NewEncoder(nil)
		e.Opaque(make([]byte, n))
		if e.Len()%4 != 0 {
			t.Fatalf("opaque(%d) length %d not 4-aligned", n, e.Len())
		}
		d := NewDecoder(e.Bytes())
		got := d.Opaque(64)
		if len(got) != n || d.Err() != nil {
			t.Fatalf("opaque(%d) round-trip len=%d err=%v", n, len(got), d.Err())
		}
		if d.Remaining() != 0 {
			t.Fatalf("opaque(%d) left %d bytes", n, d.Remaining())
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.String("hello, nfs")
	d := NewDecoder(e.Bytes())
	if got := d.String(64); got != "hello, nfs" {
		t.Fatalf("got %q", got)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	d.Uint32()
	if d.Err() != ErrShortBuffer {
		t.Fatalf("err = %v", d.Err())
	}
	// Sticky: further reads keep failing and return zero values.
	if got := d.Uint64(); got != 0 || d.Err() != ErrShortBuffer {
		t.Fatalf("sticky error violated: %d %v", got, d.Err())
	}
}

func TestOpaqueLengthLimit(t *testing.T) {
	e := NewEncoder(nil)
	e.Opaque(make([]byte, 100))
	d := NewDecoder(e.Bytes())
	if d.Opaque(50); d.Err() == nil {
		t.Fatal("oversized opaque accepted")
	}
}

func TestOpaqueDecodeCopies(t *testing.T) {
	e := NewEncoder(nil)
	e.Opaque([]byte{1, 2, 3, 4})
	buf := e.Bytes()
	d := NewDecoder(buf)
	got := d.Opaque(16)
	buf[4] = 99 // mutate the source
	if got[0] != 1 {
		t.Fatal("decoded opaque aliases the input buffer")
	}
}

// Property: any sequence of mixed values round-trips exactly.
func TestMixedRoundTripProperty(t *testing.T) {
	f := func(a uint32, b uint64, s string, blob []byte, flag bool) bool {
		if len(s) > 1000 || len(blob) > 1000 {
			return true
		}
		e := NewEncoder(nil)
		e.Uint32(a)
		e.Uint64(b)
		e.String(s)
		e.Opaque(blob)
		e.Bool(flag)
		d := NewDecoder(e.Bytes())
		ga := d.Uint32()
		gb := d.Uint64()
		gs := d.String(2000)
		gblob := d.Opaque(2000)
		gflag := d.Bool()
		if d.Err() != nil || d.Remaining() != 0 {
			return false
		}
		return ga == a && gb == b && gs == s && bytes.Equal(gblob, blob) && gflag == flag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encoded length is always 4-byte aligned.
func TestAlignmentProperty(t *testing.T) {
	f := func(blobs [][]byte) bool {
		e := NewEncoder(nil)
		for _, b := range blobs {
			if len(b) > 500 {
				return true
			}
			e.Opaque(b)
			if e.Len()%4 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
