// Package xdr implements External Data Representation encoding
// (RFC 4506), the serialization under ONC RPC and therefore NFS. Only
// the subset the NFS v2/v3 protocols need is provided: 32/64-bit
// integers, booleans, and fixed/variable-length opaque data with 4-byte
// alignment padding.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned when a decode runs past the end of input.
var ErrShortBuffer = errors.New("xdr: short buffer")

// Encoder appends XDR-encoded items to a byte slice.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder, optionally reusing buf's storage.
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf[:0]} }

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded length.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned integer (XDR "unsigned hyper").
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Bool encodes a boolean as 0 or 1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint32(1)
	} else {
		e.Uint32(0)
	}
}

// Opaque encodes variable-length opaque data: length, bytes, padding.
func (e *Encoder) Opaque(b []byte) {
	e.Uint32(uint32(len(b)))
	e.FixedOpaque(b)
}

// FixedOpaque encodes fixed-length opaque data with padding but no
// length prefix.
func (e *Encoder) FixedOpaque(b []byte) {
	e.buf = append(e.buf, b...)
	for pad := (4 - len(b)%4) % 4; pad > 0; pad-- {
		e.buf = append(e.buf, 0)
	}
}

// String encodes an XDR string (same wire form as Opaque).
func (e *Encoder) String(s string) { e.Opaque([]byte(s)) }

// Decoder consumes XDR items from a byte slice. Errors are sticky: after
// the first failure all further reads return zero values and Err()
// reports the failure, so call sites can decode a full structure and
// check once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrShortBuffer
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Bool decodes a boolean; any nonzero word is true (RFC 4506 §4.4
// requires 0/1, but be liberal in what we accept).
func (d *Decoder) Bool() bool { return d.Uint32() != 0 }

// Opaque decodes variable-length opaque data. maxLen bounds the
// declared length to protect against corrupt or hostile input; pass a
// value appropriate to the field (e.g. NFS3 data limits).
func (d *Decoder) Opaque(maxLen uint32) []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > maxLen {
		d.err = fmt.Errorf("xdr: opaque length %d exceeds limit %d", n, maxLen)
		return nil
	}
	return d.FixedOpaque(int(n))
}

// FixedOpaque decodes n opaque bytes plus padding.
func (d *Decoder) FixedOpaque(n int) []byte {
	b := d.take(n)
	if b == nil {
		return nil
	}
	if pad := (4 - n%4) % 4; pad > 0 {
		d.take(pad)
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String decodes an XDR string bounded by maxLen.
func (d *Decoder) String(maxLen uint32) string {
	return string(d.Opaque(maxLen))
}
