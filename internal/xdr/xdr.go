// Package xdr implements External Data Representation encoding
// (RFC 4506), the serialization under ONC RPC and therefore NFS. Only
// the subset the NFS v2/v3 protocols need is provided: 32/64-bit
// integers, booleans, and fixed/variable-length opaque data with 4-byte
// alignment padding.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned when a decode runs past the end of input.
var ErrShortBuffer = errors.New("xdr: short buffer")

// Pad4 rounds n up to the next multiple of 4 (XDR item alignment).
func Pad4(n int) int { return (n + 3) &^ 3 }

// The Append family encodes XDR items into a caller-owned slice, in the
// style of strconv.AppendInt: each helper appends the wire form of one
// item to buf and returns the extended slice. They are the hot-path
// primitives under Encoder — callers that assemble a whole message into
// one pooled buffer (record mark, RPC header, NFS body, payload) use
// these directly so the only allocation is the buffer itself.

// AppendUint32 appends a 32-bit unsigned integer.
func AppendUint32(buf []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(buf, v)
}

// AppendUint64 appends a 64-bit unsigned integer (XDR "unsigned hyper").
func AppendUint64(buf []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(buf, v)
}

// AppendBool appends a boolean as 0 or 1.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return AppendUint32(buf, 1)
	}
	return AppendUint32(buf, 0)
}

// AppendFixedOpaque appends fixed-length opaque data plus alignment
// padding (no length prefix).
func AppendFixedOpaque(buf, b []byte) []byte {
	buf = append(buf, b...)
	return AppendZero(buf, Pad4(len(b))-len(b))
}

// AppendOpaque appends variable-length opaque data: length, bytes,
// padding.
func AppendOpaque(buf, b []byte) []byte {
	buf = AppendUint32(buf, uint32(len(b)))
	return AppendFixedOpaque(buf, b)
}

// AppendString appends an XDR string (same wire form as opaque data).
func AppendString(buf []byte, s string) []byte {
	buf = AppendUint32(buf, uint32(len(s)))
	buf = append(buf, s...)
	return AppendZero(buf, Pad4(len(s))-len(s))
}

// zeros is the shared source for zero-fill appends.
var zeros [4096]byte

// AppendZero appends n zero bytes without allocating scratch storage.
func AppendZero(buf []byte, n int) []byte {
	for n > len(zeros) {
		buf = append(buf, zeros[:]...)
		n -= len(zeros)
	}
	return append(buf, zeros[:n]...)
}

// AppendZeroOpaque appends a variable-length opaque of n zero bytes
// (length, zero fill, padding) without a scratch slice.
func AppendZeroOpaque(buf []byte, n int) []byte {
	buf = AppendUint32(buf, uint32(n))
	return AppendZero(buf, Pad4(n))
}

// Encoder appends XDR-encoded items to a byte slice.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder, optionally reusing buf's storage.
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf[:0]} }

// Reset rearms the encoder to encode into buf's storage (from length
// zero), making encoder reuse first-class: a long-lived Encoder plus a
// recycled buffer encodes an unbounded stream of messages with no
// per-message allocation.
func (e *Encoder) Reset(buf []byte) { e.buf = buf[:0] }

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded length.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint32 encodes a 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) { e.buf = AppendUint32(e.buf, v) }

// Int32 encodes a 32-bit signed integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 encodes a 64-bit unsigned integer (XDR "unsigned hyper").
func (e *Encoder) Uint64(v uint64) { e.buf = AppendUint64(e.buf, v) }

// Bool encodes a boolean as 0 or 1.
func (e *Encoder) Bool(v bool) { e.buf = AppendBool(e.buf, v) }

// Opaque encodes variable-length opaque data: length, bytes, padding.
func (e *Encoder) Opaque(b []byte) { e.buf = AppendOpaque(e.buf, b) }

// FixedOpaque encodes fixed-length opaque data with padding but no
// length prefix.
func (e *Encoder) FixedOpaque(b []byte) { e.buf = AppendFixedOpaque(e.buf, b) }

// String encodes an XDR string (same wire form as Opaque).
func (e *Encoder) String(s string) { e.buf = AppendString(e.buf, s) }

// Decoder consumes XDR items from a byte slice. Errors are sticky: after
// the first failure all further reads return zero values and Err()
// reports the failure, so call sites can decode a full structure and
// check once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrShortBuffer
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Bool decodes a boolean; any nonzero word is true (RFC 4506 §4.4
// requires 0/1, but be liberal in what we accept).
func (d *Decoder) Bool() bool { return d.Uint32() != 0 }

// Opaque decodes variable-length opaque data. maxLen bounds the
// declared length to protect against corrupt or hostile input; pass a
// value appropriate to the field (e.g. NFS3 data limits).
func (d *Decoder) Opaque(maxLen uint32) []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > maxLen {
		d.err = fmt.Errorf("xdr: opaque length %d exceeds limit %d", n, maxLen)
		return nil
	}
	return d.FixedOpaque(int(n))
}

// FixedOpaque decodes n opaque bytes plus padding.
func (d *Decoder) FixedOpaque(n int) []byte {
	b := d.FixedOpaqueView(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// OpaqueView is Opaque without the defensive copy: the returned slice
// aliases the decode buffer and is valid only as long as that buffer is.
// It is the decode half of the zero-copy pipeline — a server decoding
// from a pooled receive buffer must consume the view before the buffer
// is recycled.
func (d *Decoder) OpaqueView(maxLen uint32) []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > maxLen {
		d.err = fmt.Errorf("xdr: opaque length %d exceeds limit %d", n, maxLen)
		return nil
	}
	return d.FixedOpaqueView(int(n))
}

// FixedOpaqueView is FixedOpaque without the defensive copy (see
// OpaqueView for the aliasing contract).
func (d *Decoder) FixedOpaqueView(n int) []byte {
	b := d.take(n)
	if b == nil {
		return nil
	}
	if pad := Pad4(n) - n; pad > 0 {
		d.take(pad)
	}
	return b[:n:n]
}

// String decodes an XDR string bounded by maxLen.
func (d *Decoder) String(maxLen uint32) string {
	return string(d.Opaque(maxLen))
}
