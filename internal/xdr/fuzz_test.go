//go:build go1.18

package xdr

import (
	"bytes"
	"testing"
)

// FuzzEncodeDecodeReuse drives the same item stream through three
// encode forms — a fresh Encoder, a Reset-reused Encoder carrying
// garbage from a previous message, and the package-level Append helpers
// — asserting byte-identical output, then decodes the stream back with
// both the copying and view decode forms. Run the corpus as a normal
// test, or explore with:
//
//	go test -fuzz FuzzEncodeDecodeReuse ./internal/xdr/
func FuzzEncodeDecodeReuse(f *testing.F) {
	f.Add([]byte{}, uint32(0), uint64(0), false)
	f.Add([]byte{1, 2, 3}, uint32(7), uint64(1<<40), true)
	f.Add(bytes.Repeat([]byte{0xff}, 131), uint32(1<<31), uint64(1)<<63, false)
	f.Fuzz(func(t *testing.T, op []byte, u32 uint32, u64 uint64, b bool) {
		fresh := NewEncoder(nil)
		fresh.Uint32(u32)
		fresh.Uint64(u64)
		fresh.Bool(b)
		fresh.Opaque(op)
		fresh.FixedOpaque(op)
		fresh.String(string(op))
		want := fresh.Bytes()

		// A reused encoder must shed every trace of its previous life.
		reused := NewEncoder(nil)
		reused.String("stale message from a previous encode")
		reused.Reset(make([]byte, 0, 16))
		reused.Uint32(u32)
		reused.Uint64(u64)
		reused.Bool(b)
		reused.Opaque(op)
		reused.FixedOpaque(op)
		reused.String(string(op))
		if !bytes.Equal(reused.Bytes(), want) {
			t.Fatalf("Reset-reused encoder differs:\n got %x\nwant %x", reused.Bytes(), want)
		}

		var appended []byte
		appended = AppendUint32(appended, u32)
		appended = AppendUint64(appended, u64)
		appended = AppendBool(appended, b)
		appended = AppendOpaque(appended, op)
		appended = AppendFixedOpaque(appended, op)
		appended = AppendString(appended, string(op))
		if !bytes.Equal(appended, want) {
			t.Fatalf("Append helpers differ:\n got %x\nwant %x", appended, want)
		}

		// Zero-fill form against an explicit zero payload.
		zeroFill := AppendZeroOpaque(nil, len(op))
		explicit := AppendOpaque(nil, make([]byte, len(op)))
		if !bytes.Equal(zeroFill, explicit) {
			t.Fatalf("AppendZeroOpaque(%d) differs from explicit zeros", len(op))
		}

		// Decode it all back, copying and view forms agreeing.
		d := NewDecoder(want)
		if got := d.Uint32(); got != u32 {
			t.Fatalf("Uint32 = %d, want %d", got, u32)
		}
		if got := d.Uint64(); got != u64 {
			t.Fatalf("Uint64 = %d, want %d", got, u64)
		}
		if got := d.Bool(); got != b {
			t.Fatalf("Bool = %v, want %v", got, b)
		}
		if got := d.Opaque(uint32(len(op))); !bytes.Equal(got, op) {
			t.Fatalf("Opaque = %x, want %x", got, op)
		}
		if got := d.FixedOpaqueView(len(op)); !bytes.Equal(got, op) {
			t.Fatalf("FixedOpaqueView = %x, want %x", got, op)
		}
		if got := d.String(uint32(len(op))); got != string(op) {
			t.Fatalf("String = %q, want %q", got, op)
		}
		if err := d.Err(); err != nil {
			t.Fatalf("decode error: %v", err)
		}
		if d.Remaining() != 0 {
			t.Fatalf("%d bytes left undecoded", d.Remaining())
		}

		// A view decode of the variable-length opaque must agree too.
		dv := NewDecoder(want)
		dv.Uint32()
		dv.Uint64()
		dv.Bool()
		if got := dv.OpaqueView(uint32(len(op))); !bytes.Equal(got, op) {
			t.Fatalf("OpaqueView = %x, want %x", got, op)
		}
	})
}
