package workload

import (
	"testing"

	"nfstricks/internal/nfsclient"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsserver"
	"nfstricks/internal/readahead"
	"nfstricks/internal/testbed"
)

// Calibration probes: verbose-only diagnostics used while tuning the
// models against the paper's magnitudes. Kept as tests so they cannot
// rot.
func TestCalibrateLocal(t *testing.T) {
	for _, d := range []testbed.DiskKind{testbed.IDE, testbed.SCSI} {
		for _, n := range []int{1, 8} {
			for _, sched := range []string{"elevator", "ncscan"} {
				for _, tcq := range []bool{false, true} {
					tb, _ := testbed.New(testbed.Options{Seed: 1, Disk: d, DisableTCQ: !tcq, Scheduler: sched})
					CreateFileSet(tb.FS, 16)
					res, err := RunLocalReaders(tb, FilesFor(n))
					tb.K.Shutdown()
					if err != nil {
						t.Fatal(err)
					}
					ds := tb.Device.Stats()
					t.Logf("%s n=%d %s tcq=%v: %.1f MB/s (hits=%d repos=%d reord=%d)",
						d, n, sched, tcq, res.ThroughputMBps(), ds.CacheHits, ds.Repositions, ds.Reordered)
				}
			}
		}
	}
}

func TestCalibrateNFS(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		for _, n := range []int{1, 8, 32} {
			tb, _ := testbed.New(testbed.Options{
				Seed: 1, Disk: testbed.IDE,
				Server: nfsserver.Config{Heuristic: readahead.Always{}, Table: nfsheur.ImprovedParams()},
				Client: nfsclient.Config{UseTCP: tcp},
			})
			CreateFileSet(tb.FS, 16)
			tb.Start()
			res, err := RunNFSReaders(tb, FilesFor(n))
			tb.K.Shutdown()
			if err != nil {
				t.Fatal(err)
			}
			st := tb.Server.Stats()
			t.Logf("tcp=%v n=%2d always/improved: %.1f MB/s (reads=%d reord=%d %.1f%%)",
				tcp, n, res.ThroughputMBps(), st.Reads, st.ReorderedReads,
				100*float64(st.ReorderedReads)/float64(st.Reads))
		}
	}
	for _, n := range []int{1, 8, 32} {
		tb, _ := testbed.New(testbed.Options{
			Seed: 1, Disk: testbed.IDE,
			Server: nfsserver.Config{Heuristic: readahead.Default{}},
		})
		CreateFileSet(tb.FS, 16)
		tb.Start()
		res, err := RunNFSReaders(tb, FilesFor(n))
		tb.K.Shutdown()
		if err != nil {
			t.Fatal(err)
		}
		st := tb.Server.Stats()
		tblst := tb.Server.Table().Stats()
		t.Logf("udp n=%2d default/default: %.1f MB/s (reord=%.1f%% tbl miss=%d eject=%d)",
			n, res.ThroughputMBps(), 100*float64(st.ReorderedReads)/float64(st.Reads),
			tblst.Misses, tblst.Ejections)
	}
}

func TestCalibrateStride(t *testing.T) {
	for _, cur := range []bool{false, true} {
		h := readahead.Heuristic(readahead.Default{})
		if cur {
			h = &readahead.CursorHeuristic{}
		}
		for _, s := range []int{2, 4, 8} {
			for _, d := range []testbed.DiskKind{testbed.IDE, testbed.SCSI} {
				tb, _ := testbed.New(testbed.Options{
					Seed: 1, Disk: d,
					Server: nfsserver.Config{Heuristic: h, Table: nfsheur.ImprovedParams()},
				})
				tb.FS.Create("stride", 16*MB)
				tb.Start()
				res, err := RunNFSStrideReader(tb, "stride", s)
				tb.K.Shutdown()
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("%s cursor=%v s=%d: %.2f MB/s", d, cur, s, res.ThroughputMBps())
			}
		}
	}
}
