package workload

import (
	"testing"
	"time"

	"nfstricks/internal/nfsclient"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsserver"
	"nfstricks/internal/readahead"
	"nfstricks/internal/testbed"
)

func TestFileName(t *testing.T) {
	if got := FileName(256, 0); got != "f256m.0" {
		t.Fatalf("FileName = %q", got)
	}
	if got := FileName(8, 31); got != "f008m.31" {
		t.Fatalf("FileName = %q", got)
	}
}

func TestCreateFileSetAndFilesFor(t *testing.T) {
	tb, err := testbed.New(testbed.Options{Seed: 1, Disk: testbed.IDE})
	if err != nil {
		t.Fatal(err)
	}
	if err := CreateFileSet(tb.FS, 16); err != nil {
		t.Fatal(err)
	}
	for _, n := range ReaderCounts {
		names := FilesFor(n)
		if len(names) != n {
			t.Fatalf("FilesFor(%d) = %d names", n, len(names))
		}
		for _, name := range names {
			f, ok := tb.FS.Lookup(name)
			if !ok {
				t.Fatalf("file %s missing", name)
			}
			want := int64(256/n) * MB / 16
			if f.Size() != want {
				t.Fatalf("%s size = %d, want %d", name, f.Size(), want)
			}
		}
	}
}

func TestStrideOffsetsTwoWay(t *testing.T) {
	// 8 blocks, stride 2: 0, N/2, 1, N/2+1, ... in bytes.
	offs := StrideOffsets(8*BlockSize, BlockSize, 2)
	want := []int64{0, 4, 1, 5, 2, 6, 3, 7}
	if len(offs) != len(want) {
		t.Fatalf("len = %d", len(offs))
	}
	for i, w := range want {
		if offs[i] != w*BlockSize {
			t.Fatalf("offs[%d] = %d, want %d", i, offs[i], w*BlockSize)
		}
	}
}

func TestStrideOffsetsCoverEveryBlock(t *testing.T) {
	for _, s := range []int{2, 4, 8} {
		const blocks = 100
		offs := StrideOffsets(blocks*BlockSize, BlockSize, s)
		if len(offs) != blocks {
			t.Fatalf("s=%d: %d offsets, want %d", s, len(offs), blocks)
		}
		seen := make(map[int64]bool)
		for _, o := range offs {
			if o%BlockSize != 0 || seen[o] {
				t.Fatalf("s=%d: bad or duplicate offset %d", s, o)
			}
			seen[o] = true
		}
	}
}

func TestLocalReadersSmoke(t *testing.T) {
	tb, err := testbed.New(testbed.Options{Seed: 1, Disk: testbed.IDE})
	if err != nil {
		t.Fatal(err)
	}
	if err := CreateFileSet(tb.FS, 32); err != nil {
		t.Fatal(err)
	}
	res, err := RunLocalReaders(tb, FilesFor(4))
	tb.K.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 4*(64*MB/32) {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	mbps := res.ThroughputMBps()
	t.Logf("local 4 readers: %.1f MB/s, elapsed %v", mbps, res.Elapsed)
	if mbps < 10 || mbps > 60 {
		t.Fatalf("local throughput %.1f MB/s outside plausible disk range", mbps)
	}
}

func TestNFSReadersSmokeUDP(t *testing.T) {
	tb, err := testbed.New(testbed.Options{
		Seed: 1, Disk: testbed.IDE,
		Server: nfsserver.Config{
			Heuristic: readahead.SlowDown{},
			Table:     nfsheur.ImprovedParams(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CreateFileSet(tb.FS, 32); err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	res, err := RunNFSReaders(tb, FilesFor(2))
	tb.K.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	mbps := res.ThroughputMBps()
	st := tb.Server.Stats()
	t.Logf("NFS/UDP 2 readers: %.1f MB/s, elapsed %v, server reads %d, reordered %d",
		mbps, res.Elapsed, st.Reads, st.ReorderedReads)
	if st.Reads == 0 {
		t.Fatal("no READs reached the server")
	}
	if mbps < 3 || mbps > 54 {
		t.Fatalf("NFS throughput %.1f MB/s outside plausible range", mbps)
	}
}

func TestNFSReadersSmokeTCP(t *testing.T) {
	tb, err := testbed.New(testbed.Options{
		Seed:   1,
		Disk:   testbed.IDE,
		Client: clientTCP(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CreateFileSet(tb.FS, 32); err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	res, err := RunNFSReaders(tb, FilesFor(2))
	tb.K.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	st := tb.Server.Stats()
	t.Logf("NFS/TCP 2 readers: %.1f MB/s, server reads %d, reordered %d",
		res.ThroughputMBps(), st.Reads, st.ReorderedReads)
	if st.Reads == 0 {
		t.Fatal("no READs reached the server over TCP")
	}
	// The TCP mount serializes sends: reordering must be rare.
	if st.ReorderedReads*20 > st.Reads {
		t.Fatalf("TCP reordered %d of %d reads; send-lock not working",
			st.ReorderedReads, st.Reads)
	}
}

func clientTCP() (c nfsclient.Config) {
	c.UseTCP = true
	return
}

func TestNFSStrideSmoke(t *testing.T) {
	tb, err := testbed.New(testbed.Options{
		Seed: 1, Disk: testbed.IDE,
		Server: nfsserver.Config{
			Heuristic: &readahead.CursorHeuristic{},
			Table:     nfsheur.ImprovedParams(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.FS.Create("stridefile", 8*MB); err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	res, err := RunNFSStrideReader(tb, "stridefile", 4)
	tb.K.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("NFS stride-4: %.1f MB/s", res.ThroughputMBps())
	if res.Bytes != 8*MB {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestPerReaderTimesRecorded(t *testing.T) {
	tb, err := testbed.New(testbed.Options{Seed: 2, Disk: testbed.SCSI})
	if err != nil {
		t.Fatal(err)
	}
	if err := CreateFileSet(tb.FS, 64); err != nil {
		t.Fatal(err)
	}
	res, err := RunLocalReaders(tb, FilesFor(8))
	tb.K.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerReader) != 8 {
		t.Fatalf("per-reader count = %d", len(res.PerReader))
	}
	for i, d := range res.PerReader {
		if d <= 0 || d > time.Hour {
			t.Fatalf("reader %d time %v implausible", i, d)
		}
	}
}
