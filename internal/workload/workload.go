// Package workload implements the paper's benchmark workloads (§4.2):
// the file set (one 256 MB file, two 128 MB files, ... thirty-two 8 MB
// files), concurrent sequential readers, and the stride readers of §7.
// Readers work against either the local file system or an NFS mount.
package workload

import (
	"fmt"
	"time"

	"nfstricks/internal/ffs"
	"nfstricks/internal/sim"
	"nfstricks/internal/testbed"
)

// MB is 2^20 bytes.
const MB = 1 << 20

// BlockSize is the benchmark's read unit.
const BlockSize = ffs.BlockSize

// FileName names the j-th file of a given size class, e.g. "f032m.3".
func FileName(sizeMB, index int) string {
	return fmt.Sprintf("f%03dm.%d", sizeMB, index)
}

// ReaderCounts is the paper's sweep of concurrent reader counts.
var ReaderCounts = []int{1, 2, 4, 8, 16, 32}

// CreateFileSet populates the file system with the paper's file set,
// scaled down by scale (1 = full size: 256 MB total per reader count).
// Returns an error if the partition cannot hold it.
func CreateFileSet(fs *ffs.FS, scale int) error {
	if scale < 1 {
		scale = 1
	}
	for _, n := range ReaderCounts {
		sizeMB := 256 / n
		size := int64(sizeMB) * MB / int64(scale)
		if size < BlockSize {
			size = BlockSize
		}
		for j := 0; j < n; j++ {
			if _, err := fs.Create(FileName(sizeMB, j), size); err != nil {
				return err
			}
		}
	}
	return nil
}

// FilesFor returns the file names the n-reader iteration reads: n
// distinct files of 256/n MB.
func FilesFor(n int) []string {
	names := make([]string, n)
	for j := 0; j < n; j++ {
		names[j] = FileName(256/n, j)
	}
	return names
}

// Result is the outcome of one benchmark iteration.
type Result struct {
	// PerReader holds each reader's completion time, in start order.
	PerReader []time.Duration
	// Elapsed is the time until the last reader finished.
	Elapsed time.Duration
	// Bytes is the total data read.
	Bytes int64
}

// ThroughputMBps is the paper's metric: total MB read divided by the
// time the last reader needed.
func (r Result) ThroughputMBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / MB / r.Elapsed.Seconds()
}

// RunLocalReaders starts one local sequential reader per file name,
// concurrently, and runs the simulation until all complete — the
// Figure 1-3 workload.
func RunLocalReaders(tb *testbed.TB, names []string) (Result, error) {
	res := Result{PerReader: make([]time.Duration, len(names))}
	wg := sim.NewWaitGroup(tb.K)
	wg.Add(len(names))
	errs := make([]error, len(names))
	for i, name := range names {
		i, name := i, name
		tb.K.Go("reader-"+name, func(p *sim.Proc) {
			defer wg.Done()
			of, err := tb.FS.Open(name)
			if err != nil {
				errs[i] = err
				return
			}
			size := of.File().Size()
			start := p.Now()
			for off := int64(0); off < size; off += BlockSize {
				of.Read(p, off, BlockSize)
			}
			res.PerReader[i] = p.Now() - start
			res.Bytes += size
		})
	}
	done := sim.NewEvent(tb.K)
	tb.K.Go("waiter", func(p *sim.Proc) {
		wg.Wait(p)
		res.Elapsed = p.Now()
		done.Fire()
	})
	tb.K.Run()
	if !done.Fired() {
		return res, fmt.Errorf("workload: simulation stalled before readers finished")
	}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// RunNFSReaders is RunLocalReaders over the NFS mount — the Figure 4-7
// workload. The mount must be started.
func RunNFSReaders(tb *testbed.TB, names []string) (Result, error) {
	res := Result{PerReader: make([]time.Duration, len(names))}
	wg := sim.NewWaitGroup(tb.K)
	wg.Add(len(names))
	errs := make([]error, len(names))
	root := tb.RootFH()
	for i, name := range names {
		i, name := i, name
		tb.K.Go("nfs-reader-"+name, func(p *sim.Proc) {
			defer wg.Done()
			rf, err := tb.Mount.Open(p, root, name)
			if err != nil {
				errs[i] = err
				return
			}
			start := p.Now()
			size := rf.Size()
			for off := int64(0); off < size; off += BlockSize {
				rf.Read(p, off, BlockSize)
			}
			res.PerReader[i] = p.Now() - start
			res.Bytes += size
		})
	}
	done := sim.NewEvent(tb.K)
	tb.K.Go("waiter", func(p *sim.Proc) {
		wg.Wait(p)
		res.Elapsed = p.Now()
		done.Fire()
	})
	tb.K.Run()
	if !done.Fired() {
		return res, fmt.Errorf("workload: simulation stalled before NFS readers finished")
	}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// StrideOffsets generates the §7 stride read order for a file of
// size bytes read in blockSize units with s sequential sub-streams:
// block 0, N/s, 2N/s, ..., then 1, N/s+1, ... ("reading blocks 0, N/2,
// 1, N/2+1, ..." for s=2).
func StrideOffsets(size int64, blockSize int64, s int) []int64 {
	nBlocks := (size + blockSize - 1) / blockSize
	per := nBlocks / int64(s) // blocks per sub-stream
	var offs []int64
	for i := int64(0); i < per; i++ {
		for sub := 0; sub < s; sub++ {
			offs = append(offs, (int64(sub)*per+i)*blockSize)
		}
	}
	// Trailing blocks not covered by s*per land at the end, in order.
	for b := per * int64(s); b < nBlocks; b++ {
		offs = append(offs, b*blockSize)
	}
	return offs
}

// RunNFSStrideReader reads the named file once in an s-stride pattern
// over NFS and returns the result — the Figure 8 / Table 1 workload.
func RunNFSStrideReader(tb *testbed.TB, name string, s int) (Result, error) {
	var res Result
	var rerr error
	done := sim.NewEvent(tb.K)
	root := tb.RootFH()
	tb.K.Go("stride-reader", func(p *sim.Proc) {
		rf, err := tb.Mount.Open(p, root, name)
		if err != nil {
			rerr = err
			done.Fire()
			return
		}
		start := p.Now()
		for _, off := range StrideOffsets(rf.Size(), BlockSize, s) {
			rf.Read(p, off, BlockSize)
		}
		res.Elapsed = p.Now() - start
		res.PerReader = []time.Duration{res.Elapsed}
		res.Bytes = rf.Size()
		done.Fire()
	})
	tb.K.Run()
	if !done.Fired() {
		return res, fmt.Errorf("workload: stride reader stalled")
	}
	return res, rerr
}
