package sunrpc

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCallRoundTrip(t *testing.T) {
	c := &Call{
		XID:  7,
		Prog: 100003,
		Vers: 3,
		Proc: 6,
		Cred: AuthUnixCred("client1", 100, 100),
		Verf: AuthNoneCred(),
		Body: []byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
	got, err := UnmarshalCall(MarshalCall(c))
	if err != nil {
		t.Fatal(err)
	}
	if got.XID != 7 || got.Prog != 100003 || got.Vers != 3 || got.Proc != 6 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Cred.Flavor != AuthUnix {
		t.Fatalf("cred flavor = %d", got.Cred.Flavor)
	}
	if !bytes.Equal(got.Body, c.Body) {
		t.Fatalf("body = %v", got.Body)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	r := &Reply{XID: 99, Stat: AcceptSuccess, Verf: AuthNoneCred(), Body: []byte{9, 9, 9, 9}}
	got, err := UnmarshalReply(MarshalReply(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.XID != 99 || got.Stat != AcceptSuccess || !bytes.Equal(got.Body, r.Body) {
		t.Fatalf("reply mismatch: %+v", got)
	}
}

func TestUnmarshalCallRejectsReply(t *testing.T) {
	r := MarshalReply(&Reply{XID: 1})
	if _, err := UnmarshalCall(r); err == nil {
		t.Fatal("reply accepted as call")
	}
}

func TestUnmarshalReplyRejectsCall(t *testing.T) {
	c := MarshalCall(&Call{XID: 1})
	if _, err := UnmarshalReply(c); err == nil {
		t.Fatal("call accepted as reply")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	c := MarshalCall(&Call{XID: 1, Cred: AuthUnixCred("m", 0, 0)})
	for cut := 1; cut < len(c); cut += 5 {
		if _, err := UnmarshalCall(c[:cut]); err == nil {
			// Truncations that only lose body bytes are legal; header
			// truncations must fail. Header is at least 24 bytes.
			if cut < 24 {
				t.Fatalf("truncated call (%d bytes) accepted", cut)
			}
		}
	}
}

func TestRecordMarkingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{{1}, {2, 3}, make([]byte, 9000), {}}
	for _, m := range msgs {
		if err := WriteRecord(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadRecord(&buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: %d bytes, want %d", i, len(got), len(want))
		}
	}
}

func TestReadRecordMultiFragment(t *testing.T) {
	// Hand-build a two-fragment record: "ab" + "cd".
	raw := []byte{
		0x00, 0x00, 0x00, 0x02, 'a', 'b', // fragment, not last
		0x80, 0x00, 0x00, 0x02, 'c', 'd', // last fragment
	}
	got, err := ReadRecord(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcd" {
		t.Fatalf("got %q", got)
	}
}

func TestReadRecordRejectsHugeFragment(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadRecord(bytes.NewReader(raw)); err == nil {
		t.Fatal("huge fragment accepted")
	}
}

// Property: call marshalling round-trips for arbitrary field values.
func TestCallRoundTripProperty(t *testing.T) {
	f := func(xid, prog, vers, proc uint32, body []byte) bool {
		if len(body) > 4096 {
			return true
		}
		c := &Call{XID: xid, Prog: prog, Vers: vers, Proc: proc,
			Cred: AuthNoneCred(), Verf: AuthNoneCred(), Body: body}
		got, err := UnmarshalCall(MarshalCall(c))
		if err != nil {
			return false
		}
		return got.XID == xid && got.Prog == prog && got.Vers == vers &&
			got.Proc == proc && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: record marking is transparent for arbitrary payloads.
func TestRecordMarkingProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		for _, p := range payloads {
			if len(p) > 10000 {
				return true
			}
			if err := WriteRecord(&buf, p); err != nil {
				return false
			}
		}
		for _, want := range payloads {
			got, err := ReadRecord(&buf)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
