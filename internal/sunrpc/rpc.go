// Package sunrpc implements the ONC RPC v2 message layer (RFC 5531):
// call and reply headers with AUTH_NONE/AUTH_UNIX credentials, plus the
// record-marking framing RPC uses over TCP (RFC 5531 §11). The same
// marshalled bytes travel over the simulated network and over real
// sockets in the live server, so simulated message sizes are exact.
package sunrpc

import (
	"errors"
	"fmt"
	"io"

	"nfstricks/internal/xdr"
)

// RPCVersion is the only supported RPC protocol version.
const RPCVersion = 2

// Message types.
const (
	MsgCall  = 0
	MsgReply = 1
)

// Reply statuses.
const (
	ReplyAccepted = 0
	ReplyDenied   = 1
)

// Accept statuses.
const (
	AcceptSuccess      = 0
	AcceptProgUnavail  = 1
	AcceptProgMismatch = 2
	AcceptProcUnavail  = 3
	AcceptGarbageArgs  = 4
	AcceptSystemErr    = 5
)

// Auth flavors.
const (
	AuthNone = 0
	AuthUnix = 1
)

// maxAuthBody bounds credential bodies (RFC 5531: 400 bytes).
const maxAuthBody = 400

// Auth is an RPC authenticator: a flavor and opaque body.
type Auth struct {
	Flavor uint32
	Body   []byte
}

// AuthNoneCred is the empty credential.
func AuthNoneCred() Auth { return Auth{Flavor: AuthNone} }

// AuthUnixCred builds an AUTH_UNIX credential body.
func AuthUnixCred(machine string, uid, gid uint32) Auth {
	e := xdr.NewEncoder(nil)
	e.Uint32(0) // stamp
	e.String(machine)
	e.Uint32(uid)
	e.Uint32(gid)
	e.Uint32(0) // no auxiliary gids
	return Auth{Flavor: AuthUnix, Body: e.Bytes()}
}

// Call is an RPC call message.
type Call struct {
	XID  uint32
	Prog uint32
	Vers uint32
	Proc uint32
	Cred Auth
	Verf Auth
	// Body is the procedure-specific argument payload (already XDR).
	Body []byte
}

// Reply is an accepted RPC reply message. (Denied replies are folded
// into Unmarshal errors; NFS servers in this codebase always accept.)
type Reply struct {
	XID  uint32
	Stat uint32 // accept_stat
	Verf Auth
	Body []byte
}

func encodeAuth(e *xdr.Encoder, a Auth) {
	e.Uint32(a.Flavor)
	e.Opaque(a.Body)
}

func decodeAuth(d *xdr.Decoder) Auth {
	return Auth{Flavor: d.Uint32(), Body: d.Opaque(maxAuthBody)}
}

// MarshalCall encodes a call message.
func MarshalCall(c *Call) []byte {
	e := xdr.NewEncoder(make([]byte, 0, 64+len(c.Body)))
	e.Uint32(c.XID)
	e.Uint32(MsgCall)
	e.Uint32(RPCVersion)
	e.Uint32(c.Prog)
	e.Uint32(c.Vers)
	e.Uint32(c.Proc)
	encodeAuth(e, c.Cred)
	encodeAuth(e, c.Verf)
	out := e.Bytes()
	return append(out, c.Body...)
}

// UnmarshalCall decodes a call message.
func UnmarshalCall(b []byte) (*Call, error) {
	d := xdr.NewDecoder(b)
	c := &Call{XID: d.Uint32()}
	if mt := d.Uint32(); d.Err() == nil && mt != MsgCall {
		return nil, fmt.Errorf("sunrpc: message type %d is not a call", mt)
	}
	if rv := d.Uint32(); d.Err() == nil && rv != RPCVersion {
		return nil, fmt.Errorf("sunrpc: RPC version %d unsupported", rv)
	}
	c.Prog = d.Uint32()
	c.Vers = d.Uint32()
	c.Proc = d.Uint32()
	c.Cred = decodeAuth(d)
	c.Verf = decodeAuth(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	c.Body = append([]byte(nil), b[len(b)-d.Remaining():]...)
	return c, nil
}

// MarshalReply encodes an accepted reply.
func MarshalReply(r *Reply) []byte {
	e := xdr.NewEncoder(make([]byte, 0, 32+len(r.Body)))
	e.Uint32(r.XID)
	e.Uint32(MsgReply)
	e.Uint32(ReplyAccepted)
	encodeAuth(e, r.Verf)
	e.Uint32(r.Stat)
	out := e.Bytes()
	return append(out, r.Body...)
}

// UnmarshalReply decodes a reply, returning an error for denied replies.
func UnmarshalReply(b []byte) (*Reply, error) {
	d := xdr.NewDecoder(b)
	r := &Reply{XID: d.Uint32()}
	if mt := d.Uint32(); d.Err() == nil && mt != MsgReply {
		return nil, fmt.Errorf("sunrpc: message type %d is not a reply", mt)
	}
	if rs := d.Uint32(); d.Err() == nil && rs != ReplyAccepted {
		return nil, fmt.Errorf("sunrpc: reply denied (stat %d)", rs)
	}
	r.Verf = decodeAuth(d)
	r.Stat = d.Uint32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	r.Body = append([]byte(nil), b[len(b)-d.Remaining():]...)
	return r, nil
}

// Record marking (TCP framing): each record is sent as fragments with a
// 4-byte header whose high bit marks the final fragment.

const lastFragmentBit = 0x80000000

// maxFragment bounds accepted fragment sizes (1 MB is far beyond any
// NFS3 message this codebase produces).
const maxFragment = 1 << 20

// WriteRecord frames b as a single final fragment on w.
func WriteRecord(w io.Writer, b []byte) error {
	hdr := [4]byte{
		byte((uint32(len(b)) | lastFragmentBit) >> 24),
		byte(uint32(len(b)) >> 16),
		byte(uint32(len(b)) >> 8),
		byte(uint32(len(b))),
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadRecord reads one complete record (possibly multiple fragments)
// from r.
func ReadRecord(r io.Reader) ([]byte, error) {
	var out []byte
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
		last := n&lastFragmentBit != 0
		n &^= lastFragmentBit
		if n > maxFragment {
			return nil, errors.New("sunrpc: fragment too large")
		}
		frag := make([]byte, n)
		if _, err := io.ReadFull(r, frag); err != nil {
			return nil, err
		}
		out = append(out, frag...)
		if last {
			return out, nil
		}
	}
}
