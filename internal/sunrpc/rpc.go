// Package sunrpc implements the ONC RPC v2 message layer (RFC 5531):
// call and reply headers with AUTH_NONE/AUTH_UNIX credentials, plus the
// record-marking framing RPC uses over TCP (RFC 5531 §11). The same
// marshalled bytes travel over the simulated network and over real
// sockets in the live server, so simulated message sizes are exact.
package sunrpc

import (
	"errors"
	"fmt"
	"io"

	"nfstricks/internal/xdr"
)

// RPCVersion is the only supported RPC protocol version.
const RPCVersion = 2

// Message types.
const (
	MsgCall  = 0
	MsgReply = 1
)

// Reply statuses.
const (
	ReplyAccepted = 0
	ReplyDenied   = 1
)

// Accept statuses.
const (
	AcceptSuccess      = 0
	AcceptProgUnavail  = 1
	AcceptProgMismatch = 2
	AcceptProcUnavail  = 3
	AcceptGarbageArgs  = 4
	AcceptSystemErr    = 5
)

// Auth flavors.
const (
	AuthNone = 0
	AuthUnix = 1
)

// maxAuthBody bounds credential bodies (RFC 5531: 400 bytes).
const maxAuthBody = 400

// Auth is an RPC authenticator: a flavor and opaque body.
type Auth struct {
	Flavor uint32
	Body   []byte
}

// AuthNoneCred is the empty credential.
func AuthNoneCred() Auth { return Auth{Flavor: AuthNone} }

// AuthUnixCred builds an AUTH_UNIX credential body.
func AuthUnixCred(machine string, uid, gid uint32) Auth {
	e := xdr.NewEncoder(nil)
	e.Uint32(0) // stamp
	e.String(machine)
	e.Uint32(uid)
	e.Uint32(gid)
	e.Uint32(0) // no auxiliary gids
	return Auth{Flavor: AuthUnix, Body: e.Bytes()}
}

// Call is an RPC call message.
type Call struct {
	XID  uint32
	Prog uint32
	Vers uint32
	Proc uint32
	Cred Auth
	Verf Auth
	// Body is the procedure-specific argument payload (already XDR).
	Body []byte
}

// Reply is an accepted RPC reply message. (Denied replies are folded
// into Unmarshal errors; NFS servers in this codebase always accept.)
type Reply struct {
	XID  uint32
	Stat uint32 // accept_stat
	Verf Auth
	Body []byte
}

func decodeAuth(d *xdr.Decoder) Auth {
	// The body is a view into the decode buffer (see UnmarshalCall's
	// aliasing contract) — neither side of this codebase retains
	// authenticator bodies past the message they arrived in.
	return Auth{Flavor: d.Uint32(), Body: d.OpaqueView(maxAuthBody)}
}

func appendAuth(buf []byte, a Auth) []byte {
	buf = xdr.AppendUint32(buf, a.Flavor)
	return xdr.AppendOpaque(buf, a.Body)
}

// AppendTo appends the encoded call to buf and returns the extended
// slice. Header and body land in one buffer, so a client can marshal
// record mark (TCP), RPC header and procedure arguments in a single
// pooled allocation.
func (c *Call) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, c.XID)
	buf = xdr.AppendUint32(buf, MsgCall)
	buf = xdr.AppendUint32(buf, RPCVersion)
	buf = xdr.AppendUint32(buf, c.Prog)
	buf = xdr.AppendUint32(buf, c.Vers)
	buf = xdr.AppendUint32(buf, c.Proc)
	buf = appendAuth(buf, c.Cred)
	buf = appendAuth(buf, c.Verf)
	return append(buf, c.Body...)
}

// MarshalCall encodes a call message.
func MarshalCall(c *Call) []byte {
	return c.AppendTo(make([]byte, 0, 64+len(c.Body)))
}

// UnmarshalCall decodes a call message.
func UnmarshalCall(b []byte) (*Call, error) {
	d := xdr.NewDecoder(b)
	c := &Call{XID: d.Uint32()}
	if mt := d.Uint32(); d.Err() == nil && mt != MsgCall {
		return nil, fmt.Errorf("sunrpc: message type %d is not a call", mt)
	}
	if rv := d.Uint32(); d.Err() == nil && rv != RPCVersion {
		return nil, fmt.Errorf("sunrpc: RPC version %d unsupported", rv)
	}
	c.Prog = d.Uint32()
	c.Vers = d.Uint32()
	c.Proc = d.Uint32()
	c.Cred = decodeAuth(d)
	c.Verf = decodeAuth(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	// Body aliases b rather than copying it: the payload-bearing WRITE
	// path must not duplicate its data just to cross this layer. Callers
	// that recycle b (pooled receive buffers) must finish with the call —
	// including anything decoded from Body as a view — before reusing it.
	c.Body = b[len(b)-d.Remaining():]
	return c, nil
}

// AppendTo appends the encoded reply to buf and returns the extended
// slice. With a nil Body it emits just the accepted-reply header, after
// which the caller appends the procedure result directly — the shape the
// zero-copy server uses to build record mark, RPC header and NFS result
// in one buffer.
func (r *Reply) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, r.XID)
	buf = xdr.AppendUint32(buf, MsgReply)
	buf = xdr.AppendUint32(buf, ReplyAccepted)
	buf = appendAuth(buf, r.Verf)
	buf = xdr.AppendUint32(buf, r.Stat)
	return append(buf, r.Body...)
}

// MarshalReply encodes an accepted reply.
func MarshalReply(r *Reply) []byte {
	return r.AppendTo(make([]byte, 0, 32+len(r.Body)))
}

// UnmarshalReply decodes a reply, returning an error for denied replies.
func UnmarshalReply(b []byte) (*Reply, error) {
	d := xdr.NewDecoder(b)
	r := &Reply{XID: d.Uint32()}
	if mt := d.Uint32(); d.Err() == nil && mt != MsgReply {
		return nil, fmt.Errorf("sunrpc: message type %d is not a reply", mt)
	}
	if rs := d.Uint32(); d.Err() == nil && rs != ReplyAccepted {
		return nil, fmt.Errorf("sunrpc: reply denied (stat %d)", rs)
	}
	r.Verf = decodeAuth(d)
	r.Stat = d.Uint32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	r.Body = append([]byte(nil), b[len(b)-d.Remaining():]...)
	return r, nil
}

// Record marking (TCP framing): each record is sent as fragments with a
// 4-byte header whose high bit marks the final fragment.

const lastFragmentBit = 0x80000000

// maxFragment bounds accepted fragment sizes (1 MB is far beyond any
// NFS3 message this codebase produces).
const maxFragment = 1 << 20

// MarkSize is the size of the record-marking header BeginRecord
// reserves.
const MarkSize = 4

// BeginRecord reserves space for a record mark at the end of buf and
// returns the extended slice. The caller appends the record's bytes,
// then seals it with FinishRecord; the mark, RPC header and payload all
// land in one buffer so the whole record goes to the socket in a single
// write with no re-framing copy.
func BeginRecord(buf []byte) []byte {
	return append(buf, 0, 0, 0, 0)
}

// FinishRecord fills in the record mark reserved by BeginRecord at
// offset start, framing everything appended after it as one final
// fragment.
func FinishRecord(buf []byte, start int) {
	n := uint32(len(buf)-start-MarkSize) | lastFragmentBit
	buf[start] = byte(n >> 24)
	buf[start+1] = byte(n >> 16)
	buf[start+2] = byte(n >> 8)
	buf[start+3] = byte(n)
}

// WriteRecord frames b as a single final fragment on w.
func WriteRecord(w io.Writer, b []byte) error {
	hdr := [4]byte{
		byte((uint32(len(b)) | lastFragmentBit) >> 24),
		byte(uint32(len(b)) >> 16),
		byte(uint32(len(b)) >> 8),
		byte(uint32(len(b))),
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadRecord reads one complete record (possibly multiple fragments)
// from r.
func ReadRecord(r io.Reader) ([]byte, error) {
	return ReadRecordInto(r, nil)
}

// ReadRecordInto reads one complete record from r into buf's storage
// (appending from length zero, growing if needed) and returns the
// record. Callers that recycle buffers pass the previous return value —
// or a pooled buffer — back in, making steady-state record reads
// allocation-free.
func ReadRecordInto(r io.Reader, buf []byte) ([]byte, error) {
	out := buf[:0]
	for {
		var hdr [MarkSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
		last := n&lastFragmentBit != 0
		n &^= lastFragmentBit
		if n > maxFragment {
			return nil, errors.New("sunrpc: fragment too large")
		}
		start := len(out)
		if need := start + int(n); need <= cap(out) {
			out = out[:need]
		} else {
			out = xdr.AppendZero(out, int(n))
		}
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return nil, err
		}
		if last {
			return out, nil
		}
	}
}
