package buffercache

import (
	"testing"
	"time"

	"nfstricks/internal/disk"
	"nfstricks/internal/iosched"
	"nfstricks/internal/sim"
)

func rig(seed int64, capacity int) (*sim.Kernel, *Cache) {
	k := sim.NewKernel(seed)
	dev := disk.NewDevice(k, disk.WD200BB())
	dr := disk.NewDriver(k, dev, iosched.NewFIFO())
	return k, New(k, dr, capacity)
}

func TestReadMissThenHit(t *testing.T) {
	k, c := rig(1, 16)
	var missTime, hitTime time.Duration
	k.Go("reader", func(p *sim.Proc) {
		start := p.Now()
		c.Read(p, 1000)
		missTime = p.Now() - start
		start = p.Now()
		c.Read(p, 1000)
		hitTime = p.Now() - start
	})
	k.Run()
	k.Shutdown()
	if missTime == 0 {
		t.Fatal("miss cost nothing")
	}
	if hitTime != 0 {
		t.Fatalf("hit cost %v, want 0", hitTime)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("misses/hits = %d/%d", st.Misses, st.Hits)
	}
}

func TestInFlightCoalescing(t *testing.T) {
	k, c := rig(1, 16)
	done := 0
	for i := 0; i < 3; i++ {
		k.Go("reader", func(p *sim.Proc) {
			c.Read(p, 2000)
			done++
		})
	}
	k.Run()
	k.Shutdown()
	if done != 3 {
		t.Fatalf("readers completed = %d", done)
	}
	st := c.Stats()
	if st.Clusters != 1 {
		t.Fatalf("disk commands = %d, want 1 (coalesced)", st.Clusters)
	}
	if st.InFlight != 2 {
		t.Fatalf("in-flight joins = %d, want 2", st.InFlight)
	}
}

func TestReadAheadClusters(t *testing.T) {
	k, c := rig(1, 64)
	k.Go("ra", func(p *sim.Proc) {
		c.ReadAhead(0, 16) // 16 blocks = 2 clusters of MaxClusterBlocks
		p.Sleep(time.Second)
	})
	k.Run()
	k.Shutdown()
	st := c.Stats()
	if st.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2", st.Clusters)
	}
	if st.ReadAheads != 16 {
		t.Fatalf("read-ahead blocks = %d, want 16", st.ReadAheads)
	}
	if !c.Contains(0) || !c.Contains(15*SectorsPerBlock) {
		t.Fatal("read-ahead blocks not resident")
	}
}

func TestReadAheadSkipsResidentBlocks(t *testing.T) {
	k, c := rig(1, 64)
	k.Go("x", func(p *sim.Proc) {
		c.Read(p, 4*SectorsPerBlock) // block 4 resident
		before := c.Stats().Clusters
		c.ReadAhead(0, 8) // must split around block 4
		after := c.Stats().Clusters
		if after-before != 2 {
			t.Errorf("clusters issued = %d, want 2 (split around resident block)", after-before)
		}
		p.Sleep(time.Second)
	})
	k.Run()
	k.Shutdown()
}

func TestReadAheadIdempotent(t *testing.T) {
	k, c := rig(1, 64)
	k.Go("x", func(p *sim.Proc) {
		c.ReadAhead(0, 8)
		before := c.Stats().Clusters
		c.ReadAhead(0, 8) // everything in flight: no new commands
		if c.Stats().Clusters != before {
			t.Error("duplicate read-ahead issued disk commands")
		}
		p.Sleep(time.Second)
	})
	k.Run()
	k.Shutdown()
}

func TestLRUEviction(t *testing.T) {
	k, c := rig(1, 4)
	k.Go("reader", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			c.Read(p, int64(i)*SectorsPerBlock)
		}
	})
	k.Run()
	k.Shutdown()
	if c.Len() != 4 {
		t.Fatalf("cache len = %d, want capacity 4", c.Len())
	}
	if c.Contains(0) {
		t.Fatal("oldest block survived eviction")
	}
	if !c.Contains(7 * SectorsPerBlock) {
		t.Fatal("newest block missing")
	}
	if c.Stats().Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", c.Stats().Evictions)
	}
}

func TestFlushEmptiesCache(t *testing.T) {
	k, c := rig(1, 16)
	k.Go("reader", func(p *sim.Proc) {
		c.Read(p, 0)
		c.Flush()
		if c.Len() != 0 || c.Contains(0) {
			t.Error("flush left blocks resident")
		}
		// Re-read must miss again.
		before := c.Stats().Misses
		c.Read(p, 0)
		if c.Stats().Misses != before+1 {
			t.Error("read after flush did not miss")
		}
	})
	k.Run()
	k.Shutdown()
}

func TestWriteInsertsAndSubmits(t *testing.T) {
	k, c := rig(1, 16)
	c.Write(5 * SectorsPerBlock)
	if !c.Contains(5 * SectorsPerBlock) {
		t.Fatal("written block not resident")
	}
	k.Run()
	if c.Stats().Writes != 1 {
		t.Fatalf("writes = %d", c.Stats().Writes)
	}
}

func TestSequentialDemandReadsBenefitFromReadAhead(t *testing.T) {
	// Read 64 blocks with explicit read-ahead vs. without; read-ahead
	// must be substantially faster end-to-end.
	run := func(ra bool) time.Duration {
		k, c := rig(1, 256)
		var elapsed time.Duration
		k.Go("reader", func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < 64; i++ {
				lba := int64(i) * SectorsPerBlock
				c.Read(p, lba)
				if ra {
					c.ReadAhead(lba+SectorsPerBlock, 8)
				}
			}
			elapsed = p.Now() - start
		})
		k.Run()
		k.Shutdown()
		return elapsed
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("read-ahead did not help: with=%v without=%v", with, without)
	}
}
