// Package buffercache implements a block buffer cache over a disk
// driver: LRU replacement, coalescing of duplicate in-flight reads, and
// clustered asynchronous read-ahead. It plays the role of the FreeBSD
// buffer cache + cluster_read machinery in the paper's server: the
// sequentiality heuristics upstream only decide *how much* read-ahead to
// request; this package turns that into large contiguous disk commands.
package buffercache

import (
	"container/list"
	"time"

	"nfstricks/internal/disk"
	"nfstricks/internal/sim"
)

// BlockSize is the file-system and NFS block size (8 KB, the paper's
// request granularity).
const BlockSize = 8192

// SectorsPerBlock is BlockSize expressed in disk sectors.
const SectorsPerBlock = BlockSize / disk.SectorSize

// MaxClusterBlocks caps how many blocks a single disk command may cover
// (64 KB, FreeBSD's MAXPHYS-era clustering for this hardware class).
const MaxClusterBlocks = 8

// Stats aggregates cache counters.
type Stats struct {
	Hits       int64 // reads satisfied from cache
	Misses     int64 // reads that had to touch the disk
	InFlight   int64 // reads that joined an already-issued fetch
	ReadAheads int64 // blocks fetched speculatively
	Clusters   int64 // disk commands issued
	Evictions  int64
	Writes     int64
}

// Cache is a block cache keyed by LBA. All methods must be called from
// simulation context (process or event callback as documented).
type Cache struct {
	k        *sim.Kernel
	dr       *disk.Driver
	capacity int // in blocks

	lru      *list.List              // of int64 LBA, front = most recent
	entries  map[int64]*list.Element // lba -> lru element
	inflight map[int64]*sim.Event    // lba -> completion event

	stats Stats
}

// New returns a cache of capacityBlocks blocks backed by dr.
func New(k *sim.Kernel, dr *disk.Driver, capacityBlocks int) *Cache {
	if capacityBlocks < 1 {
		capacityBlocks = 1
	}
	return &Cache{
		k:        k,
		dr:       dr,
		capacity: capacityBlocks,
		lru:      list.New(),
		entries:  make(map[int64]*list.Element),
		inflight: make(map[int64]*sim.Event),
	}
}

// Driver returns the underlying disk driver.
func (c *Cache) Driver() *disk.Driver { return c.dr }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Len reports the number of cached blocks.
func (c *Cache) Len() int { return c.lru.Len() }

// Contains reports whether the block at lba is resident.
func (c *Cache) Contains(lba int64) bool {
	_, ok := c.entries[lba]
	return ok
}

// Flush drops every cached block (the paper's "defeating the cache"
// step between benchmark runs). In-flight fetches are left to complete;
// their blocks will be inserted when they land.
func (c *Cache) Flush() {
	c.lru.Init()
	c.entries = make(map[int64]*list.Element)
}

// Read returns once the block at lba is resident, blocking p on a disk
// fetch if needed. It counts as a demand (non-speculative) access.
func (c *Cache) Read(p *sim.Proc, lba int64) {
	if el, ok := c.entries[lba]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		return
	}
	if ev, ok := c.inflight[lba]; ok {
		c.stats.InFlight++
		ev.Wait(p)
		return
	}
	c.stats.Misses++
	ev := c.issue(lba, 1)
	ev.Wait(p)
}

// ReadAhead ensures the n blocks starting at lba are resident or being
// fetched, issuing clustered disk commands for the gaps. It never
// blocks; safe from both processes and event callbacks.
func (c *Cache) ReadAhead(lba int64, n int) {
	c.FetchSpan(lba, n, 0)
}

// FetchSpan is ReadAhead over a span whose first demand blocks are
// what the workload actually asked for: those count as hits/misses
// (in-flight joins included) while the tail counts as speculative
// read-ahead — but the whole span clusters together, so demand and
// read-ahead share disk commands exactly as cluster_read would issue
// them. It never blocks.
func (c *Cache) FetchSpan(lba int64, n, demand int) {
	runStart := int64(-1)
	runLen := 0
	flush := func() {
		if runLen == 0 {
			return
		}
		c.issue(runStart, runLen)
		runStart, runLen = -1, 0
	}
	for i := 0; i < n; i++ {
		b := lba + int64(i)*SectorsPerBlock
		speculative := i >= demand
		_, cached := c.entries[b]
		_, fetching := c.inflight[b]
		if cached || fetching {
			if !speculative {
				if cached {
					c.stats.Hits++
				} else {
					c.stats.InFlight++
				}
			}
			flush()
			continue
		}
		if speculative {
			c.stats.ReadAheads++
		} else {
			c.stats.Misses++
		}
		if runLen == 0 {
			runStart = b
		}
		runLen++
		if runLen == MaxClusterBlocks {
			flush()
		}
	}
	flush()
}

// Install marks the block at lba resident without any disk traffic —
// a dirty page entering the cache from a write system call rather than
// a fetch. The block is subject to normal LRU eviction; durability is
// the caller's problem (Write, or zonefs's Commit, issues the actual
// disk command).
func (c *Cache) Install(lba int64) {
	c.insert(lba)
}

// Write installs the block at lba as dirty and schedules an asynchronous
// write-through to disk (enough fidelity for the paper's read-dominated
// workloads and the WRITE extension).
func (c *Cache) Write(lba int64) {
	c.stats.Writes++
	c.insert(lba)
	c.dr.Submit(&disk.Request{LBA: lba, Sectors: SectorsPerBlock, Write: true})
}

// issue submits one clustered read of n blocks at lba and registers the
// in-flight entries. It returns the completion event.
func (c *Cache) issue(lba int64, n int) *sim.Event {
	ev := sim.NewEvent(c.k)
	for i := 0; i < n; i++ {
		c.inflight[lba+int64(i)*SectorsPerBlock] = ev
	}
	c.stats.Clusters++
	c.dr.Submit(&disk.Request{
		LBA:     lba,
		Sectors: n * SectorsPerBlock,
		Done: func(r *disk.Request) {
			for i := 0; i < n; i++ {
				b := lba + int64(i)*SectorsPerBlock
				delete(c.inflight, b)
				c.insert(b)
			}
			ev.Fire()
		},
	})
	return ev
}

// insert adds lba to the cache, evicting from the LRU tail if full.
func (c *Cache) insert(lba int64) {
	if el, ok := c.entries[lba]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.entries[lba] = c.lru.PushFront(lba)
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(int64))
		c.stats.Evictions++
	}
}

// AvgDiskWait exposes the driver's mean request latency, a useful
// diagnostic when calibrating experiments.
func (c *Cache) AvgDiskWait() time.Duration { return c.dr.AvgWait() }
