package nfsproto

import (
	"bytes"
	"testing"
)

// appender is the dual encode interface every nfsproto message
// supports: Marshal allocates, AppendTo extends a caller-owned buffer.
type appender interface {
	AppendTo([]byte) []byte
	Marshal() []byte
	WireSize() int
}

// appendCases covers every message type, including error-status arms,
// nil-versus-present attributes and the zero-fill payload paths.
func appendCases() []struct {
	name string
	msg  appender
} {
	attrs := &Fattr{
		Type: TypeReg, Mode: 0644, Nlink: 1, UID: 10, GID: 20,
		Size: 4096, Used: 4096, Rdev: 1, FSID: 2, FileID: 3,
		Atime: 4, Mtime: 5, Ctime: 6,
	}
	return []struct {
		name string
		msg  appender
	}{
		{"ReadArgs", &ReadArgs{FH: 7, Offset: 65536, Count: 8192}},
		{"ReadRes", &ReadRes{Status: OK, Attrs: attrs, Count: 5, EOF: true, Data: []byte("hello")}},
		{"ReadRes/no-attrs", &ReadRes{Status: OK, Count: 3, Data: []byte("abc")}},
		{"ReadRes/zero-fill", &ReadRes{Status: OK, Count: 9, DataLen: 9}},
		{"ReadRes/err", &ReadRes{Status: ErrStale}},
		{"WriteArgs", &WriteArgs{FH: 7, Offset: 8192, Count: 6, Stable: WriteFileSync, Data: []byte("payload")}},
		{"WriteArgs/zero-fill", &WriteArgs{FH: 7, Count: 11, DataLen: 11}},
		{"WriteArgs/unstable", &WriteArgs{FH: 7, Offset: 0, Count: 4, Stable: WriteUnstable, Data: []byte("asyn")}},
		{"WriteRes", &WriteRes{Status: OK, Attrs: attrs, Count: 6, Committed: WriteDataSync}},
		{"WriteRes/verifier", &WriteRes{Status: OK, Attrs: attrs, Count: 6,
			Committed: WriteUnstable, Verf: 0xdeadbeefcafef00d}},
		{"WriteRes/err", &WriteRes{Status: ErrNoSpc}},
		{"CommitArgs", &CommitArgs{FH: 7, Offset: 1 << 20, Count: 65536}},
		{"CommitArgs/whole-file", &CommitArgs{FH: 8}},
		{"CommitRes", &CommitRes{Status: OK, Attrs: attrs, Verf: 0x0123456789abcdef}},
		{"CommitRes/err", &CommitRes{Status: ErrIO}},
		{"LookupArgs", &LookupArgs{Dir: 1, Name: "file.dat"}},
		{"LookupRes", &LookupRes{Status: OK, FH: 9, Attrs: attrs}},
		{"LookupRes/err", &LookupRes{Status: ErrNoEnt}},
		{"GetattrArgs", &GetattrArgs{FH: 12}},
		{"GetattrRes", &GetattrRes{Status: OK, Attrs: *attrs}},
		{"GetattrRes/err", &GetattrRes{Status: ErrStale}},
		{"AccessArgs", &AccessArgs{FH: 3, Access: 0x1f}},
		{"AccessRes", &AccessRes{Status: OK, Attrs: attrs, Access: 0x0d}},
		{"AccessRes/err", &AccessRes{Status: ErrPerm}},
		{"CreateArgs", &CreateArgs{Dir: 1, Name: "new", Size: 1 << 20}},
		{"CreateRes", &CreateRes{Status: OK, FH: 44, Attrs: attrs}},
		{"CreateRes/err", &CreateRes{Status: ErrExist}},
		{"FsstatArgs", &FsstatArgs{FH: 1}},
		{"FsstatRes", &FsstatRes{Status: OK, Tbytes: 1 << 30, Fbytes: 1 << 29}},
		{"FsstatRes/err", &FsstatRes{Status: ErrIO}},
		{"SetattrArgs", &SetattrArgs{FH: 7, Size: 1 << 16}},
		{"SetattrArgs/truncate-to-zero", &SetattrArgs{FH: 7}},
		{"SetattrRes", &SetattrRes{Status: OK, Attrs: attrs}},
		{"SetattrRes/no-attrs", &SetattrRes{Status: OK}},
		{"SetattrRes/err", &SetattrRes{Status: ErrIsDir}},
		{"MkdirArgs", &MkdirArgs{Dir: 1, Name: "subdir"}},
		{"MkdirRes", &MkdirRes{Status: OK, FH: 31, Attrs: attrs}},
		{"MkdirRes/err", &MkdirRes{Status: ErrExist}},
		{"RemoveArgs", &RemoveArgs{Dir: 1, Name: "victim"}},
		{"RemoveRes", &RemoveRes{Status: OK, Attrs: attrs}},
		{"RemoveRes/err", &RemoveRes{Status: ErrNotEmpty}},
		{"RenameArgs", &RenameArgs{FromDir: 1, FromName: "a", ToDir: 2, ToName: "bb"}},
		{"RenameRes", &RenameRes{Status: OK, FromAttrs: attrs, ToAttrs: attrs}},
		{"RenameRes/one-sided", &RenameRes{Status: OK, FromAttrs: attrs}},
		{"RenameRes/err", &RenameRes{Status: ErrInval}},
		{"ReaddirArgs", &ReaddirArgs{Dir: 1, Cookie: 42, Cookieverf: 7, Count: 4096}},
		{"ReaddirArgs/fresh", &ReaddirArgs{Dir: 1, Count: 8192}},
		{"ReaddirRes", &ReaddirRes{Status: OK, Attrs: attrs, Cookieverf: 7, EOF: true,
			Entries: []DirEntry{{FileID: 2, Name: "a", Cookie: 1}, {FileID: 3, Name: "bcd", Cookie: 2}}}},
		{"ReaddirRes/empty", &ReaddirRes{Status: OK, Cookieverf: 1, EOF: true}},
		{"ReaddirRes/err", &ReaddirRes{Status: ErrBadCookie}},
		{"ReaddirplusArgs", &ReaddirplusArgs{Dir: 1, Cookie: 9, Cookieverf: 3, DirCount: 1024, MaxCount: 8192}},
		{"ReaddirplusRes", &ReaddirplusRes{Status: OK, Attrs: attrs, Cookieverf: 3, EOF: false,
			Entries: []DirEntryPlus{{FileID: 2, Name: "x", Cookie: 1, Attrs: attrs, FH: 2},
				{FileID: 4, Name: "no-fh", Cookie: 2}}}},
		{"ReaddirplusRes/err", &ReaddirplusRes{Status: ErrNotDir}},
	}
}

// TestAppendToMatchesMarshal asserts the two encode forms are
// byte-identical for every message, that AppendTo really appends (a
// non-empty prefix survives untouched), and that both agree with
// WireSize.
func TestAppendToMatchesMarshal(t *testing.T) {
	prefix := []byte("prefix≠xdr")
	for _, tc := range appendCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.msg.Marshal()
			if len(want) != tc.msg.WireSize() {
				t.Fatalf("Marshal len = %d, WireSize = %d", len(want), tc.msg.WireSize())
			}
			if got := tc.msg.AppendTo(nil); !bytes.Equal(got, want) {
				t.Fatalf("AppendTo(nil) = %x, Marshal = %x", got, want)
			}
			got := tc.msg.AppendTo(append([]byte(nil), prefix...))
			if !bytes.HasPrefix(got, prefix) {
				t.Fatalf("AppendTo clobbered the prefix: %x", got[:len(prefix)])
			}
			if !bytes.Equal(got[len(prefix):], want) {
				t.Fatalf("AppendTo after prefix = %x, Marshal = %x", got[len(prefix):], want)
			}
		})
	}
}

// TestZeroFillMatchesExplicitZeros pins the scratch-free zero-fill
// paths to the wire form of an explicit zero payload.
func TestZeroFillMatchesExplicitZeros(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 9, 8192} {
		implicit := (&ReadRes{Status: OK, Count: uint32(n), DataLen: uint32(n)}).Marshal()
		explicit := (&ReadRes{Status: OK, Count: uint32(n), Data: make([]byte, n)}).Marshal()
		if !bytes.Equal(implicit, explicit) {
			t.Fatalf("n=%d: zero-fill ReadRes differs from explicit zeros", n)
		}
		wImplicit := (&WriteArgs{FH: 1, Count: uint32(n), DataLen: uint32(n)}).Marshal()
		wExplicit := (&WriteArgs{FH: 1, Count: uint32(n), Data: make([]byte, n)}).Marshal()
		if !bytes.Equal(wImplicit, wExplicit) {
			t.Fatalf("n=%d: zero-fill WriteArgs differs from explicit zeros", n)
		}
	}
}

// TestZeroFillMarshalNoScratch asserts the DataLen path allocates no
// payload-sized scratch: a 32 KB zero-fill must cost only the output
// buffer, roughly one allocation.
func TestZeroFillMarshalNoScratch(t *testing.T) {
	if raceEnabled {
		t.Skip("exact allocation counts are unreliable under the race detector")
	}
	res := &ReadRes{Status: OK, Count: MaxData, DataLen: MaxData}
	buf := make([]byte, 0, res.WireSize())
	allocs := testing.AllocsPerRun(100, func() {
		res.AppendTo(buf)
	})
	if allocs > 0 {
		t.Errorf("zero-fill AppendTo into sized buffer allocates %v times, want 0", allocs)
	}
}

// BenchmarkReadResAppendTo measures the encode hot path: one 8 KB READ
// reply appended into a recycled buffer.
func BenchmarkReadResAppendTo(b *testing.B) {
	attrs := &Fattr{Type: TypeReg, Mode: 0644, Nlink: 1, Size: 8192, Used: 8192, FileID: 7}
	data := make([]byte, 8192)
	res := &ReadRes{Status: OK, Attrs: attrs, Count: 8192, Data: data}
	buf := make([]byte, 0, res.WireSize())
	b.SetBytes(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.AppendTo(buf)
	}
}

// BenchmarkReadResMarshal is the allocating form, for comparison.
func BenchmarkReadResMarshal(b *testing.B) {
	attrs := &Fattr{Type: TypeReg, Mode: 0644, Nlink: 1, Size: 8192, Used: 8192, FileID: 7}
	data := make([]byte, 8192)
	res := &ReadRes{Status: OK, Attrs: attrs, Count: 8192, Data: data}
	b.SetBytes(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Marshal()
	}
}
