// Package nfsproto defines the NFS version 3 (RFC 1813) message subset
// the reproduction needs: GETATTR, LOOKUP, ACCESS, READ, WRITE, CREATE
// and FSSTAT, with real XDR wire encodings. Each message also reports
// its exact wire size without marshalling, which lets the simulator
// move typed messages around while charging the network for the true
// byte counts (a property verified by tests).
package nfsproto

import (
	"fmt"

	"nfstricks/internal/xdr"
)

// Program and version numbers (RFC 1813).
const (
	Program  = 100003
	Version3 = 3
)

// Procedure numbers.
const (
	ProcNull    = 0
	ProcGetattr = 1
	ProcLookup  = 3
	ProcAccess  = 4
	ProcRead    = 6
	ProcWrite   = 7
	ProcCreate  = 8
	ProcFsstat  = 18
)

// Status codes (nfsstat3).
const (
	OK       = 0
	ErrPerm  = 1
	ErrNoEnt = 2
	ErrIO    = 5
	ErrExist = 17
	ErrFBig  = 27
	ErrNoSpc = 28
	ErrStale = 70
)

// MaxData is the largest READ/WRITE payload supported (rsize/wsize era
// value; the paper's workloads use 8 KB requests).
const MaxData = 32 * 1024

// MaxName bounds path component lengths.
const MaxName = 255

// FH is a file handle. NFS3 handles are variable-length opaques up to
// 64 bytes; this implementation uses a fixed 8-byte payload.
type FH uint64

const fhWireBytes = 8

func encodeFH(e *xdr.Encoder, fh FH) {
	var b [fhWireBytes]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(fh >> (8 * (7 - i)))
	}
	e.Opaque(b[:])
}

func decodeFH(d *xdr.Decoder) FH {
	b := d.Opaque(64)
	if len(b) != fhWireBytes {
		return 0
	}
	var fh FH
	for i := 0; i < 8; i++ {
		fh = fh<<8 | FH(b[i])
	}
	return fh
}

// fhWireSize is the encoded size of an FH (length word + 8 bytes).
const fhWireSize = 4 + fhWireBytes

// File types (ftype3).
const (
	TypeReg = 1
	TypeDir = 2
)

// Fattr is fattr3: the per-object attribute block (84 bytes on the
// wire).
type Fattr struct {
	Type   uint32
	Mode   uint32
	Nlink  uint32
	UID    uint32
	GID    uint32
	Size   uint64
	Used   uint64
	Rdev   uint64
	FSID   uint64
	FileID uint64
	Atime  uint64 // seconds<<32 | nseconds
	Mtime  uint64
	Ctime  uint64
}

// fattrWireSize is the fixed encoded size of fattr3.
const fattrWireSize = 84

func (a *Fattr) encode(e *xdr.Encoder) {
	e.Uint32(a.Type)
	e.Uint32(a.Mode)
	e.Uint32(a.Nlink)
	e.Uint32(a.UID)
	e.Uint32(a.GID)
	e.Uint64(a.Size)
	e.Uint64(a.Used)
	e.Uint64(a.Rdev)
	e.Uint64(a.FSID)
	e.Uint64(a.FileID)
	e.Uint64(a.Atime)
	e.Uint64(a.Mtime)
	e.Uint64(a.Ctime)
}

func decodeFattr(d *xdr.Decoder) Fattr {
	return Fattr{
		Type: d.Uint32(), Mode: d.Uint32(), Nlink: d.Uint32(),
		UID: d.Uint32(), GID: d.Uint32(),
		Size: d.Uint64(), Used: d.Uint64(), Rdev: d.Uint64(),
		FSID: d.Uint64(), FileID: d.Uint64(),
		Atime: d.Uint64(), Mtime: d.Uint64(), Ctime: d.Uint64(),
	}
}

// post-op attributes: bool + optional fattr3.
func encodePostOpAttr(e *xdr.Encoder, a *Fattr) {
	if a == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	a.encode(e)
}

func decodePostOpAttr(d *xdr.Decoder) *Fattr {
	if !d.Bool() {
		return nil
	}
	a := decodeFattr(d)
	return &a
}

func postOpAttrSize(a *Fattr) int {
	if a == nil {
		return 4
	}
	return 4 + fattrWireSize
}

func pad4(n int) int { return (n + 3) &^ 3 }

// ReadArgs is READ3args.
type ReadArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
}

// Marshal encodes the arguments.
func (r *ReadArgs) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, r.WireSize()))
	encodeFH(e, r.FH)
	e.Uint64(r.Offset)
	e.Uint32(r.Count)
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (r *ReadArgs) WireSize() int { return fhWireSize + 8 + 4 }

// UnmarshalReadArgs decodes READ3args.
func UnmarshalReadArgs(b []byte) (*ReadArgs, error) {
	d := xdr.NewDecoder(b)
	r := &ReadArgs{FH: decodeFH(d), Offset: d.Uint64(), Count: d.Uint32()}
	return r, d.Err()
}

// ReadRes is READ3res.
type ReadRes struct {
	Status uint32
	Attrs  *Fattr
	Count  uint32
	EOF    bool
	Data   []byte
	// DataLen is used in place of len(Data) when Data is nil — the
	// simulator's way of charging for payload bytes it does not carry.
	DataLen uint32
}

func (r *ReadRes) dataLen() int {
	if r.Data != nil {
		return len(r.Data)
	}
	return int(r.DataLen)
}

// Marshal encodes the result. When Data is nil but DataLen is set, the
// payload is zero-filled (used only by tests; the live server always
// carries real data).
func (r *ReadRes) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, r.WireSize()))
	e.Uint32(r.Status)
	encodePostOpAttr(e, r.Attrs)
	if r.Status == OK {
		e.Uint32(r.Count)
		e.Bool(r.EOF)
		if r.Data != nil {
			e.Opaque(r.Data)
		} else {
			e.Uint32(r.DataLen)
			e.FixedOpaque(make([]byte, r.DataLen))
		}
	}
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (r *ReadRes) WireSize() int {
	n := 4 + postOpAttrSize(r.Attrs)
	if r.Status == OK {
		n += 4 + 4 + 4 + pad4(r.dataLen())
	}
	return n
}

// UnmarshalReadRes decodes READ3res.
func UnmarshalReadRes(b []byte) (*ReadRes, error) {
	d := xdr.NewDecoder(b)
	r := &ReadRes{Status: d.Uint32(), Attrs: decodePostOpAttr(d)}
	if r.Status == OK {
		r.Count = d.Uint32()
		r.EOF = d.Bool()
		r.Data = d.Opaque(MaxData)
		r.DataLen = uint32(len(r.Data))
	}
	return r, d.Err()
}

// Write stability levels.
const (
	WriteUnstable = 0
	WriteDataSync = 1
	WriteFileSync = 2
)

// WriteArgs is WRITE3args.
type WriteArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
	Stable uint32
	Data   []byte
	// DataLen substitutes for len(Data) in the simulator (see ReadRes).
	DataLen uint32
}

func (w *WriteArgs) dataLen() int {
	if w.Data != nil {
		return len(w.Data)
	}
	return int(w.DataLen)
}

// Marshal encodes the arguments.
func (w *WriteArgs) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, w.WireSize()))
	encodeFH(e, w.FH)
	e.Uint64(w.Offset)
	e.Uint32(w.Count)
	e.Uint32(w.Stable)
	if w.Data != nil {
		e.Opaque(w.Data)
	} else {
		e.Uint32(w.DataLen)
		e.FixedOpaque(make([]byte, w.DataLen))
	}
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (w *WriteArgs) WireSize() int {
	return fhWireSize + 8 + 4 + 4 + 4 + pad4(w.dataLen())
}

// UnmarshalWriteArgs decodes WRITE3args.
func UnmarshalWriteArgs(b []byte) (*WriteArgs, error) {
	d := xdr.NewDecoder(b)
	w := &WriteArgs{FH: decodeFH(d), Offset: d.Uint64(), Count: d.Uint32(), Stable: d.Uint32()}
	w.Data = d.Opaque(MaxData)
	w.DataLen = uint32(len(w.Data))
	return w, d.Err()
}

// WriteRes is WRITE3res (wcc_data reduced to post-op attributes).
type WriteRes struct {
	Status    uint32
	Attrs     *Fattr
	Count     uint32
	Committed uint32
}

// Marshal encodes the result.
func (w *WriteRes) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, w.WireSize()))
	e.Uint32(w.Status)
	encodePostOpAttr(e, w.Attrs)
	if w.Status == OK {
		e.Uint32(w.Count)
		e.Uint32(w.Committed)
		e.Uint64(0) // write verifier
	}
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (w *WriteRes) WireSize() int {
	n := 4 + postOpAttrSize(w.Attrs)
	if w.Status == OK {
		n += 4 + 4 + 8
	}
	return n
}

// UnmarshalWriteRes decodes WRITE3res.
func UnmarshalWriteRes(b []byte) (*WriteRes, error) {
	d := xdr.NewDecoder(b)
	w := &WriteRes{Status: d.Uint32(), Attrs: decodePostOpAttr(d)}
	if w.Status == OK {
		w.Count = d.Uint32()
		w.Committed = d.Uint32()
		d.Uint64()
	}
	return w, d.Err()
}

// LookupArgs is LOOKUP3args.
type LookupArgs struct {
	Dir  FH
	Name string
}

// Marshal encodes the arguments.
func (l *LookupArgs) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, l.WireSize()))
	encodeFH(e, l.Dir)
	e.String(l.Name)
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (l *LookupArgs) WireSize() int { return fhWireSize + 4 + pad4(len(l.Name)) }

// UnmarshalLookupArgs decodes LOOKUP3args.
func UnmarshalLookupArgs(b []byte) (*LookupArgs, error) {
	d := xdr.NewDecoder(b)
	l := &LookupArgs{Dir: decodeFH(d), Name: d.String(MaxName)}
	return l, d.Err()
}

// LookupRes is LOOKUP3res.
type LookupRes struct {
	Status uint32
	FH     FH
	Attrs  *Fattr
}

// Marshal encodes the result.
func (l *LookupRes) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, l.WireSize()))
	e.Uint32(l.Status)
	if l.Status == OK {
		encodeFH(e, l.FH)
		encodePostOpAttr(e, l.Attrs)
	}
	encodePostOpAttr(e, nil) // dir post-op attributes
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (l *LookupRes) WireSize() int {
	n := 4
	if l.Status == OK {
		n += fhWireSize + postOpAttrSize(l.Attrs)
	}
	return n + 4
}

// UnmarshalLookupRes decodes LOOKUP3res.
func UnmarshalLookupRes(b []byte) (*LookupRes, error) {
	d := xdr.NewDecoder(b)
	l := &LookupRes{Status: d.Uint32()}
	if l.Status == OK {
		l.FH = decodeFH(d)
		l.Attrs = decodePostOpAttr(d)
	}
	decodePostOpAttr(d)
	return l, d.Err()
}

// GetattrArgs is GETATTR3args.
type GetattrArgs struct {
	FH FH
}

// Marshal encodes the arguments.
func (g *GetattrArgs) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, g.WireSize()))
	encodeFH(e, g.FH)
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (g *GetattrArgs) WireSize() int { return fhWireSize }

// UnmarshalGetattrArgs decodes GETATTR3args.
func UnmarshalGetattrArgs(b []byte) (*GetattrArgs, error) {
	d := xdr.NewDecoder(b)
	g := &GetattrArgs{FH: decodeFH(d)}
	return g, d.Err()
}

// GetattrRes is GETATTR3res.
type GetattrRes struct {
	Status uint32
	Attrs  Fattr
}

// Marshal encodes the result.
func (g *GetattrRes) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, g.WireSize()))
	e.Uint32(g.Status)
	if g.Status == OK {
		g.Attrs.encode(e)
	}
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (g *GetattrRes) WireSize() int {
	if g.Status == OK {
		return 4 + fattrWireSize
	}
	return 4
}

// UnmarshalGetattrRes decodes GETATTR3res.
func UnmarshalGetattrRes(b []byte) (*GetattrRes, error) {
	d := xdr.NewDecoder(b)
	g := &GetattrRes{Status: d.Uint32()}
	if g.Status == OK {
		g.Attrs = decodeFattr(d)
	}
	return g, d.Err()
}

// AccessArgs is ACCESS3args.
type AccessArgs struct {
	FH     FH
	Access uint32
}

// Marshal encodes the arguments.
func (a *AccessArgs) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, a.WireSize()))
	encodeFH(e, a.FH)
	e.Uint32(a.Access)
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (a *AccessArgs) WireSize() int { return fhWireSize + 4 }

// UnmarshalAccessArgs decodes ACCESS3args.
func UnmarshalAccessArgs(b []byte) (*AccessArgs, error) {
	d := xdr.NewDecoder(b)
	a := &AccessArgs{FH: decodeFH(d), Access: d.Uint32()}
	return a, d.Err()
}

// AccessRes is ACCESS3res.
type AccessRes struct {
	Status uint32
	Attrs  *Fattr
	Access uint32
}

// Marshal encodes the result.
func (a *AccessRes) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, a.WireSize()))
	e.Uint32(a.Status)
	encodePostOpAttr(e, a.Attrs)
	if a.Status == OK {
		e.Uint32(a.Access)
	}
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (a *AccessRes) WireSize() int {
	n := 4 + postOpAttrSize(a.Attrs)
	if a.Status == OK {
		n += 4
	}
	return n
}

// UnmarshalAccessRes decodes ACCESS3res.
func UnmarshalAccessRes(b []byte) (*AccessRes, error) {
	d := xdr.NewDecoder(b)
	a := &AccessRes{Status: d.Uint32(), Attrs: decodePostOpAttr(d)}
	if a.Status == OK {
		a.Access = d.Uint32()
	}
	return a, d.Err()
}

// CreateArgs is a reduced CREATE3args (unchecked mode, size attribute
// only).
type CreateArgs struct {
	Dir  FH
	Name string
	Size uint64
}

// Marshal encodes the arguments.
func (c *CreateArgs) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, c.WireSize()))
	encodeFH(e, c.Dir)
	e.String(c.Name)
	e.Uint32(0) // createmode3 UNCHECKED
	e.Bool(true)
	e.Uint64(c.Size)
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (c *CreateArgs) WireSize() int {
	return fhWireSize + 4 + pad4(len(c.Name)) + 4 + 4 + 8
}

// UnmarshalCreateArgs decodes CreateArgs.
func UnmarshalCreateArgs(b []byte) (*CreateArgs, error) {
	d := xdr.NewDecoder(b)
	c := &CreateArgs{Dir: decodeFH(d), Name: d.String(MaxName)}
	d.Uint32()
	d.Bool()
	c.Size = d.Uint64()
	return c, d.Err()
}

// CreateRes is a reduced CREATE3res.
type CreateRes struct {
	Status uint32
	FH     FH
	Attrs  *Fattr
}

// Marshal encodes the result.
func (c *CreateRes) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, c.WireSize()))
	e.Uint32(c.Status)
	if c.Status == OK {
		e.Bool(true)
		encodeFH(e, c.FH)
		encodePostOpAttr(e, c.Attrs)
	}
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (c *CreateRes) WireSize() int {
	if c.Status == OK {
		return 4 + 4 + fhWireSize + postOpAttrSize(c.Attrs)
	}
	return 4
}

// UnmarshalCreateRes decodes CreateRes.
func UnmarshalCreateRes(b []byte) (*CreateRes, error) {
	d := xdr.NewDecoder(b)
	c := &CreateRes{Status: d.Uint32()}
	if c.Status == OK {
		d.Bool()
		c.FH = decodeFH(d)
		c.Attrs = decodePostOpAttr(d)
	}
	return c, d.Err()
}

// FsstatRes is a reduced FSSTAT3res.
type FsstatRes struct {
	Status uint32
	Tbytes uint64
	Fbytes uint64
}

// Marshal encodes the result.
func (f *FsstatRes) Marshal() []byte {
	e := xdr.NewEncoder(make([]byte, 0, f.WireSize()))
	e.Uint32(f.Status)
	encodePostOpAttr(e, nil)
	if f.Status == OK {
		e.Uint64(f.Tbytes)
		e.Uint64(f.Fbytes)
		e.Uint64(f.Fbytes) // abytes
		e.Uint64(0)        // tfiles
		e.Uint64(0)        // ffiles
		e.Uint64(0)        // afiles
		e.Uint32(0)        // invarsec
	}
	return e.Bytes()
}

// WireSize reports the exact encoded size.
func (f *FsstatRes) WireSize() int {
	n := 4 + 4
	if f.Status == OK {
		n += 6*8 + 4
	}
	return n
}

// UnmarshalFsstatRes decodes FsstatRes.
func UnmarshalFsstatRes(b []byte) (*FsstatRes, error) {
	d := xdr.NewDecoder(b)
	f := &FsstatRes{Status: d.Uint32()}
	decodePostOpAttr(d)
	if f.Status == OK {
		f.Tbytes = d.Uint64()
		f.Fbytes = d.Uint64()
		d.Uint64()
		d.Uint64()
		d.Uint64()
		d.Uint64()
		d.Uint32()
	}
	return f, d.Err()
}

// ProcName returns a human-readable procedure name.
func ProcName(proc uint32) string {
	switch proc {
	case ProcNull:
		return "NULL"
	case ProcGetattr:
		return "GETATTR"
	case ProcLookup:
		return "LOOKUP"
	case ProcAccess:
		return "ACCESS"
	case ProcRead:
		return "READ"
	case ProcWrite:
		return "WRITE"
	case ProcCreate:
		return "CREATE"
	case ProcFsstat:
		return "FSSTAT"
	default:
		return fmt.Sprintf("PROC%d", proc)
	}
}
