// Package nfsproto defines the NFS version 3 (RFC 1813) message subset
// the reproduction needs: GETATTR, LOOKUP, ACCESS, READ, WRITE, CREATE
// and FSSTAT, with real XDR wire encodings. Each message also reports
// its exact wire size without marshalling, which lets the simulator
// move typed messages around while charging the network for the true
// byte counts (a property verified by tests).
//
// Every message supports two encode forms: AppendTo(buf) appends the
// wire encoding to a caller-owned slice and returns the extended slice
// (the zero-copy hot path — an entire RPC reply is assembled in one
// pooled buffer with exactly one copy of any payload), and Marshal() is
// a convenience wrapper that allocates a right-sized buffer. Tests
// assert the two forms are byte-identical for every message.
package nfsproto

import (
	"fmt"

	"nfstricks/internal/xdr"
)

// Program and version numbers (RFC 1813).
const (
	Program  = 100003
	Version3 = 3
)

// Procedure numbers.
const (
	ProcNull        = 0
	ProcGetattr     = 1
	ProcSetattr     = 2
	ProcLookup      = 3
	ProcAccess      = 4
	ProcRead        = 6
	ProcWrite       = 7
	ProcCreate      = 8
	ProcMkdir       = 9
	ProcRemove      = 12
	ProcRename      = 14
	ProcReaddir     = 16
	ProcReaddirplus = 17
	ProcFsstat      = 18
	ProcCommit      = 21
)

// Status codes (nfsstat3).
const (
	OK           = 0
	ErrPerm      = 1
	ErrNoEnt     = 2
	ErrIO        = 5
	ErrExist     = 17
	ErrNotDir    = 20
	ErrIsDir     = 21
	ErrInval     = 22
	ErrFBig      = 27
	ErrNoSpc     = 28
	ErrNotEmpty  = 66
	ErrStale     = 70
	ErrBadCookie = 10003
)

// ACCESS3 permission bits (RFC 1813 §3.3.4).
const (
	AccessRead    = 0x0001
	AccessLookup  = 0x0002
	AccessModify  = 0x0004
	AccessExtend  = 0x0008
	AccessDelete  = 0x0010
	AccessExecute = 0x0020
)

// MaxData is the largest READ/WRITE payload supported (rsize/wsize era
// value; the paper's workloads use 8 KB requests).
const MaxData = 32 * 1024

// MaxName bounds path component lengths.
const MaxName = 255

// FH is a file handle. NFS3 handles are variable-length opaques up to
// 64 bytes; this implementation uses a fixed 8-byte payload.
type FH uint64

const fhWireBytes = 8

func appendFH(buf []byte, fh FH) []byte {
	buf = xdr.AppendUint32(buf, fhWireBytes)
	return xdr.AppendUint64(buf, uint64(fh))
}

func decodeFH(d *xdr.Decoder) FH {
	b := d.OpaqueView(64)
	if len(b) != fhWireBytes {
		return 0
	}
	var fh FH
	for i := 0; i < 8; i++ {
		fh = fh<<8 | FH(b[i])
	}
	return fh
}

// fhWireSize is the encoded size of an FH (length word + 8 bytes).
const fhWireSize = 4 + fhWireBytes

// File types (ftype3).
const (
	TypeReg = 1
	TypeDir = 2
)

// Fattr is fattr3: the per-object attribute block (84 bytes on the
// wire).
type Fattr struct {
	Type   uint32
	Mode   uint32
	Nlink  uint32
	UID    uint32
	GID    uint32
	Size   uint64
	Used   uint64
	Rdev   uint64
	FSID   uint64
	FileID uint64
	Atime  uint64 // seconds<<32 | nseconds
	Mtime  uint64
	Ctime  uint64
}

// fattrWireSize is the fixed encoded size of fattr3.
const fattrWireSize = 84

func (a *Fattr) appendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, a.Type)
	buf = xdr.AppendUint32(buf, a.Mode)
	buf = xdr.AppendUint32(buf, a.Nlink)
	buf = xdr.AppendUint32(buf, a.UID)
	buf = xdr.AppendUint32(buf, a.GID)
	buf = xdr.AppendUint64(buf, a.Size)
	buf = xdr.AppendUint64(buf, a.Used)
	buf = xdr.AppendUint64(buf, a.Rdev)
	buf = xdr.AppendUint64(buf, a.FSID)
	buf = xdr.AppendUint64(buf, a.FileID)
	buf = xdr.AppendUint64(buf, a.Atime)
	buf = xdr.AppendUint64(buf, a.Mtime)
	return xdr.AppendUint64(buf, a.Ctime)
}

func decodeFattr(d *xdr.Decoder) Fattr {
	return Fattr{
		Type: d.Uint32(), Mode: d.Uint32(), Nlink: d.Uint32(),
		UID: d.Uint32(), GID: d.Uint32(),
		Size: d.Uint64(), Used: d.Uint64(), Rdev: d.Uint64(),
		FSID: d.Uint64(), FileID: d.Uint64(),
		Atime: d.Uint64(), Mtime: d.Uint64(), Ctime: d.Uint64(),
	}
}

// post-op attributes: bool + optional fattr3.
func appendPostOpAttr(buf []byte, a *Fattr) []byte {
	if a == nil {
		return xdr.AppendBool(buf, false)
	}
	buf = xdr.AppendBool(buf, true)
	return a.appendTo(buf)
}

func decodePostOpAttr(d *xdr.Decoder) *Fattr {
	if !d.Bool() {
		return nil
	}
	a := decodeFattr(d)
	return &a
}

func postOpAttrSize(a *Fattr) int {
	if a == nil {
		return 4
	}
	return 4 + fattrWireSize
}

func pad4(n int) int { return xdr.Pad4(n) }

// ReadArgs is READ3args.
type ReadArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
}

// AppendTo appends the encoded arguments to buf.
func (r *ReadArgs) AppendTo(buf []byte) []byte {
	buf = appendFH(buf, r.FH)
	buf = xdr.AppendUint64(buf, r.Offset)
	return xdr.AppendUint32(buf, r.Count)
}

// Marshal encodes the arguments.
func (r *ReadArgs) Marshal() []byte {
	return r.AppendTo(make([]byte, 0, r.WireSize()))
}

// WireSize reports the exact encoded size.
func (r *ReadArgs) WireSize() int { return fhWireSize + 8 + 4 }

// UnmarshalReadArgs decodes READ3args.
func UnmarshalReadArgs(b []byte) (*ReadArgs, error) {
	d := xdr.NewDecoder(b)
	r := &ReadArgs{FH: decodeFH(d), Offset: d.Uint64(), Count: d.Uint32()}
	return r, d.Err()
}

// ReadRes is READ3res.
type ReadRes struct {
	Status uint32
	Attrs  *Fattr
	Count  uint32
	EOF    bool
	Data   []byte
	// DataLen is used in place of len(Data) when Data is nil — the
	// simulator's way of charging for payload bytes it does not carry.
	DataLen uint32
}

func (r *ReadRes) dataLen() int {
	if r.Data != nil {
		return len(r.Data)
	}
	return int(r.DataLen)
}

// AppendTo appends the encoded result to buf — the payload is copied
// exactly once, from Data into buf. When Data is nil but DataLen is
// set, the payload is zero-filled in place with no scratch slice.
func (r *ReadRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, r.Status)
	buf = appendPostOpAttr(buf, r.Attrs)
	if r.Status == OK {
		buf = xdr.AppendUint32(buf, r.Count)
		buf = xdr.AppendBool(buf, r.EOF)
		if r.Data != nil {
			buf = xdr.AppendOpaque(buf, r.Data)
		} else {
			buf = xdr.AppendZeroOpaque(buf, int(r.DataLen))
		}
	}
	return buf
}

// Marshal encodes the result. When Data is nil but DataLen is set, the
// payload is zero-filled (used only by tests; the live server always
// carries real data).
func (r *ReadRes) Marshal() []byte {
	return r.AppendTo(make([]byte, 0, r.WireSize()))
}

// WireSize reports the exact encoded size.
func (r *ReadRes) WireSize() int {
	n := 4 + postOpAttrSize(r.Attrs)
	if r.Status == OK {
		n += 4 + 4 + 4 + pad4(r.dataLen())
	}
	return n
}

// UnmarshalReadRes decodes READ3res. Data aliases b (no copy): the one
// client-side payload copy is the reply-body read from the socket, and
// this decode must not add a second.
func UnmarshalReadRes(b []byte) (*ReadRes, error) {
	d := xdr.NewDecoder(b)
	r := &ReadRes{Status: d.Uint32(), Attrs: decodePostOpAttr(d)}
	if r.Status == OK {
		r.Count = d.Uint32()
		r.EOF = d.Bool()
		r.Data = d.OpaqueView(MaxData)
		r.DataLen = uint32(len(r.Data))
	}
	return r, d.Err()
}

// Write stability levels (stable_how, RFC 1813 §3.3.7): UNSTABLE lets
// the server buffer the write and defer stable storage until COMMIT,
// DATA_SYNC requires the data (not necessarily metadata) on stable
// storage before replying, FILE_SYNC requires both.
const (
	WriteUnstable = 0
	WriteDataSync = 1
	WriteFileSync = 2
)

// StableName returns a human-readable stability-level name.
func StableName(stable uint32) string {
	switch stable {
	case WriteUnstable:
		return "UNSTABLE"
	case WriteDataSync:
		return "DATA_SYNC"
	case WriteFileSync:
		return "FILE_SYNC"
	default:
		return fmt.Sprintf("STABLE%d", stable)
	}
}

// WriteArgs is WRITE3args.
type WriteArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
	Stable uint32
	Data   []byte
	// DataLen substitutes for len(Data) in the simulator (see ReadRes).
	DataLen uint32
}

func (w *WriteArgs) dataLen() int {
	if w.Data != nil {
		return len(w.Data)
	}
	return int(w.DataLen)
}

// AppendTo appends the encoded arguments to buf.
func (w *WriteArgs) AppendTo(buf []byte) []byte {
	buf = appendFH(buf, w.FH)
	buf = xdr.AppendUint64(buf, w.Offset)
	buf = xdr.AppendUint32(buf, w.Count)
	buf = xdr.AppendUint32(buf, w.Stable)
	if w.Data != nil {
		return xdr.AppendOpaque(buf, w.Data)
	}
	return xdr.AppendZeroOpaque(buf, int(w.DataLen))
}

// Marshal encodes the arguments.
func (w *WriteArgs) Marshal() []byte {
	return w.AppendTo(make([]byte, 0, w.WireSize()))
}

// WireSize reports the exact encoded size.
func (w *WriteArgs) WireSize() int {
	return fhWireSize + 8 + 4 + 4 + 4 + pad4(w.dataLen())
}

// UnmarshalWriteArgs decodes WRITE3args. Data aliases b (no copy); a
// server decoding from a recycled receive buffer must consume Data —
// e.g. store it into the file — before the buffer is reused.
func UnmarshalWriteArgs(b []byte) (*WriteArgs, error) {
	d := xdr.NewDecoder(b)
	w := &WriteArgs{FH: decodeFH(d), Offset: d.Uint64(), Count: d.Uint32(), Stable: d.Uint32()}
	w.Data = d.OpaqueView(MaxData)
	w.DataLen = uint32(len(w.Data))
	return w, d.Err()
}

// WriteRes is WRITE3res (wcc_data reduced to post-op attributes).
// Committed is the stability the server actually achieved — it may be
// stronger than the client asked for (an UNSTABLE request answered
// FILE_SYNC by a write-through server) but never weaker. Verf is the
// server's write verifier (boot cookie): it changes exactly when the
// server may have lost uncommitted writes, telling clients to re-send
// everything written since the last COMMIT.
type WriteRes struct {
	Status    uint32
	Attrs     *Fattr
	Count     uint32
	Committed uint32
	Verf      uint64
}

// AppendTo appends the encoded result to buf.
func (w *WriteRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, w.Status)
	buf = appendPostOpAttr(buf, w.Attrs)
	if w.Status == OK {
		buf = xdr.AppendUint32(buf, w.Count)
		buf = xdr.AppendUint32(buf, w.Committed)
		buf = xdr.AppendUint64(buf, w.Verf)
	}
	return buf
}

// Marshal encodes the result.
func (w *WriteRes) Marshal() []byte {
	return w.AppendTo(make([]byte, 0, w.WireSize()))
}

// WireSize reports the exact encoded size.
func (w *WriteRes) WireSize() int {
	n := 4 + postOpAttrSize(w.Attrs)
	if w.Status == OK {
		n += 4 + 4 + 8
	}
	return n
}

// UnmarshalWriteRes decodes WRITE3res.
func UnmarshalWriteRes(b []byte) (*WriteRes, error) {
	d := xdr.NewDecoder(b)
	w := &WriteRes{Status: d.Uint32(), Attrs: decodePostOpAttr(d)}
	if w.Status == OK {
		w.Count = d.Uint32()
		w.Committed = d.Uint32()
		w.Verf = d.Uint64()
	}
	return w, d.Err()
}

// CommitArgs is COMMIT3args: flush [Offset, Offset+Count) — or the
// whole file when Count is 0 — to stable storage.
type CommitArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
}

// AppendTo appends the encoded arguments to buf.
func (c *CommitArgs) AppendTo(buf []byte) []byte {
	buf = appendFH(buf, c.FH)
	buf = xdr.AppendUint64(buf, c.Offset)
	return xdr.AppendUint32(buf, c.Count)
}

// Marshal encodes the arguments.
func (c *CommitArgs) Marshal() []byte {
	return c.AppendTo(make([]byte, 0, c.WireSize()))
}

// WireSize reports the exact encoded size.
func (c *CommitArgs) WireSize() int { return fhWireSize + 8 + 4 }

// UnmarshalCommitArgs decodes COMMIT3args.
func UnmarshalCommitArgs(b []byte) (*CommitArgs, error) {
	d := xdr.NewDecoder(b)
	c := &CommitArgs{FH: decodeFH(d), Offset: d.Uint64(), Count: d.Uint32()}
	return c, d.Err()
}

// CommitRes is COMMIT3res (wcc_data reduced to post-op attributes).
// Verf is the server's write verifier; a client comparing it against
// the verifier its WRITE replies carried detects a server reboot that
// may have dropped uncommitted data (see WriteRes).
type CommitRes struct {
	Status uint32
	Attrs  *Fattr
	Verf   uint64
}

// AppendTo appends the encoded result to buf.
func (c *CommitRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, c.Status)
	buf = appendPostOpAttr(buf, c.Attrs)
	if c.Status == OK {
		buf = xdr.AppendUint64(buf, c.Verf)
	}
	return buf
}

// Marshal encodes the result.
func (c *CommitRes) Marshal() []byte {
	return c.AppendTo(make([]byte, 0, c.WireSize()))
}

// WireSize reports the exact encoded size.
func (c *CommitRes) WireSize() int {
	n := 4 + postOpAttrSize(c.Attrs)
	if c.Status == OK {
		n += 8
	}
	return n
}

// UnmarshalCommitRes decodes COMMIT3res.
func UnmarshalCommitRes(b []byte) (*CommitRes, error) {
	d := xdr.NewDecoder(b)
	c := &CommitRes{Status: d.Uint32(), Attrs: decodePostOpAttr(d)}
	if c.Status == OK {
		c.Verf = d.Uint64()
	}
	return c, d.Err()
}

// LookupArgs is LOOKUP3args.
type LookupArgs struct {
	Dir  FH
	Name string
}

// AppendTo appends the encoded arguments to buf.
func (l *LookupArgs) AppendTo(buf []byte) []byte {
	buf = appendFH(buf, l.Dir)
	return xdr.AppendString(buf, l.Name)
}

// Marshal encodes the arguments.
func (l *LookupArgs) Marshal() []byte {
	return l.AppendTo(make([]byte, 0, l.WireSize()))
}

// WireSize reports the exact encoded size.
func (l *LookupArgs) WireSize() int { return fhWireSize + 4 + pad4(len(l.Name)) }

// UnmarshalLookupArgs decodes LOOKUP3args.
func UnmarshalLookupArgs(b []byte) (*LookupArgs, error) {
	d := xdr.NewDecoder(b)
	l := &LookupArgs{Dir: decodeFH(d), Name: d.String(MaxName)}
	return l, d.Err()
}

// LookupRes is LOOKUP3res.
type LookupRes struct {
	Status uint32
	FH     FH
	Attrs  *Fattr
}

// AppendTo appends the encoded result to buf.
func (l *LookupRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, l.Status)
	if l.Status == OK {
		buf = appendFH(buf, l.FH)
		buf = appendPostOpAttr(buf, l.Attrs)
	}
	return appendPostOpAttr(buf, nil) // dir post-op attributes
}

// Marshal encodes the result.
func (l *LookupRes) Marshal() []byte {
	return l.AppendTo(make([]byte, 0, l.WireSize()))
}

// WireSize reports the exact encoded size.
func (l *LookupRes) WireSize() int {
	n := 4
	if l.Status == OK {
		n += fhWireSize + postOpAttrSize(l.Attrs)
	}
	return n + 4
}

// UnmarshalLookupRes decodes LOOKUP3res.
func UnmarshalLookupRes(b []byte) (*LookupRes, error) {
	d := xdr.NewDecoder(b)
	l := &LookupRes{Status: d.Uint32()}
	if l.Status == OK {
		l.FH = decodeFH(d)
		l.Attrs = decodePostOpAttr(d)
	}
	decodePostOpAttr(d)
	return l, d.Err()
}

// GetattrArgs is GETATTR3args.
type GetattrArgs struct {
	FH FH
}

// AppendTo appends the encoded arguments to buf.
func (g *GetattrArgs) AppendTo(buf []byte) []byte {
	return appendFH(buf, g.FH)
}

// Marshal encodes the arguments.
func (g *GetattrArgs) Marshal() []byte {
	return g.AppendTo(make([]byte, 0, g.WireSize()))
}

// WireSize reports the exact encoded size.
func (g *GetattrArgs) WireSize() int { return fhWireSize }

// UnmarshalGetattrArgs decodes GETATTR3args.
func UnmarshalGetattrArgs(b []byte) (*GetattrArgs, error) {
	d := xdr.NewDecoder(b)
	g := &GetattrArgs{FH: decodeFH(d)}
	return g, d.Err()
}

// GetattrRes is GETATTR3res.
type GetattrRes struct {
	Status uint32
	Attrs  Fattr
}

// AppendTo appends the encoded result to buf.
func (g *GetattrRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, g.Status)
	if g.Status == OK {
		buf = g.Attrs.appendTo(buf)
	}
	return buf
}

// Marshal encodes the result.
func (g *GetattrRes) Marshal() []byte {
	return g.AppendTo(make([]byte, 0, g.WireSize()))
}

// WireSize reports the exact encoded size.
func (g *GetattrRes) WireSize() int {
	if g.Status == OK {
		return 4 + fattrWireSize
	}
	return 4
}

// UnmarshalGetattrRes decodes GETATTR3res.
func UnmarshalGetattrRes(b []byte) (*GetattrRes, error) {
	d := xdr.NewDecoder(b)
	g := &GetattrRes{Status: d.Uint32()}
	if g.Status == OK {
		g.Attrs = decodeFattr(d)
	}
	return g, d.Err()
}

// AccessArgs is ACCESS3args.
type AccessArgs struct {
	FH     FH
	Access uint32
}

// AppendTo appends the encoded arguments to buf.
func (a *AccessArgs) AppendTo(buf []byte) []byte {
	buf = appendFH(buf, a.FH)
	return xdr.AppendUint32(buf, a.Access)
}

// Marshal encodes the arguments.
func (a *AccessArgs) Marshal() []byte {
	return a.AppendTo(make([]byte, 0, a.WireSize()))
}

// WireSize reports the exact encoded size.
func (a *AccessArgs) WireSize() int { return fhWireSize + 4 }

// UnmarshalAccessArgs decodes ACCESS3args.
func UnmarshalAccessArgs(b []byte) (*AccessArgs, error) {
	d := xdr.NewDecoder(b)
	a := &AccessArgs{FH: decodeFH(d), Access: d.Uint32()}
	return a, d.Err()
}

// AccessRes is ACCESS3res.
type AccessRes struct {
	Status uint32
	Attrs  *Fattr
	Access uint32
}

// AppendTo appends the encoded result to buf.
func (a *AccessRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, a.Status)
	buf = appendPostOpAttr(buf, a.Attrs)
	if a.Status == OK {
		buf = xdr.AppendUint32(buf, a.Access)
	}
	return buf
}

// Marshal encodes the result.
func (a *AccessRes) Marshal() []byte {
	return a.AppendTo(make([]byte, 0, a.WireSize()))
}

// WireSize reports the exact encoded size.
func (a *AccessRes) WireSize() int {
	n := 4 + postOpAttrSize(a.Attrs)
	if a.Status == OK {
		n += 4
	}
	return n
}

// UnmarshalAccessRes decodes ACCESS3res.
func UnmarshalAccessRes(b []byte) (*AccessRes, error) {
	d := xdr.NewDecoder(b)
	a := &AccessRes{Status: d.Uint32(), Attrs: decodePostOpAttr(d)}
	if a.Status == OK {
		a.Access = d.Uint32()
	}
	return a, d.Err()
}

// CreateArgs is a reduced CREATE3args (unchecked mode, size attribute
// only).
type CreateArgs struct {
	Dir  FH
	Name string
	Size uint64
}

// AppendTo appends the encoded arguments to buf.
func (c *CreateArgs) AppendTo(buf []byte) []byte {
	buf = appendFH(buf, c.Dir)
	buf = xdr.AppendString(buf, c.Name)
	buf = xdr.AppendUint32(buf, 0) // createmode3 UNCHECKED
	buf = xdr.AppendBool(buf, true)
	return xdr.AppendUint64(buf, c.Size)
}

// Marshal encodes the arguments.
func (c *CreateArgs) Marshal() []byte {
	return c.AppendTo(make([]byte, 0, c.WireSize()))
}

// WireSize reports the exact encoded size.
func (c *CreateArgs) WireSize() int {
	return fhWireSize + 4 + pad4(len(c.Name)) + 4 + 4 + 8
}

// UnmarshalCreateArgs decodes CreateArgs.
func UnmarshalCreateArgs(b []byte) (*CreateArgs, error) {
	d := xdr.NewDecoder(b)
	c := &CreateArgs{Dir: decodeFH(d), Name: d.String(MaxName)}
	d.Uint32()
	d.Bool()
	c.Size = d.Uint64()
	return c, d.Err()
}

// CreateRes is a reduced CREATE3res.
type CreateRes struct {
	Status uint32
	FH     FH
	Attrs  *Fattr
}

// AppendTo appends the encoded result to buf.
func (c *CreateRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, c.Status)
	if c.Status == OK {
		buf = xdr.AppendBool(buf, true)
		buf = appendFH(buf, c.FH)
		buf = appendPostOpAttr(buf, c.Attrs)
	}
	return buf
}

// Marshal encodes the result.
func (c *CreateRes) Marshal() []byte {
	return c.AppendTo(make([]byte, 0, c.WireSize()))
}

// WireSize reports the exact encoded size.
func (c *CreateRes) WireSize() int {
	if c.Status == OK {
		return 4 + 4 + fhWireSize + postOpAttrSize(c.Attrs)
	}
	return 4
}

// UnmarshalCreateRes decodes CreateRes.
func UnmarshalCreateRes(b []byte) (*CreateRes, error) {
	d := xdr.NewDecoder(b)
	c := &CreateRes{Status: d.Uint32()}
	if c.Status == OK {
		d.Bool()
		c.FH = decodeFH(d)
		c.Attrs = decodePostOpAttr(d)
	}
	return c, d.Err()
}

// FsstatArgs is FSSTAT3args: the file handle of the file system root.
type FsstatArgs struct {
	FH FH
}

// AppendTo appends the encoded arguments to buf.
func (f *FsstatArgs) AppendTo(buf []byte) []byte {
	return appendFH(buf, f.FH)
}

// Marshal encodes the arguments.
func (f *FsstatArgs) Marshal() []byte {
	return f.AppendTo(make([]byte, 0, f.WireSize()))
}

// WireSize reports the exact encoded size.
func (f *FsstatArgs) WireSize() int { return fhWireSize }

// UnmarshalFsstatArgs decodes FSSTAT3args.
func UnmarshalFsstatArgs(b []byte) (*FsstatArgs, error) {
	d := xdr.NewDecoder(b)
	f := &FsstatArgs{FH: decodeFH(d)}
	return f, d.Err()
}

// FsstatRes is a reduced FSSTAT3res.
type FsstatRes struct {
	Status uint32
	Tbytes uint64
	Fbytes uint64
}

// AppendTo appends the encoded result to buf.
func (f *FsstatRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, f.Status)
	buf = appendPostOpAttr(buf, nil)
	if f.Status == OK {
		buf = xdr.AppendUint64(buf, f.Tbytes)
		buf = xdr.AppendUint64(buf, f.Fbytes)
		buf = xdr.AppendUint64(buf, f.Fbytes) // abytes
		buf = xdr.AppendUint64(buf, 0)        // tfiles
		buf = xdr.AppendUint64(buf, 0)        // ffiles
		buf = xdr.AppendUint64(buf, 0)        // afiles
		buf = xdr.AppendUint32(buf, 0)        // invarsec
	}
	return buf
}

// Marshal encodes the result.
func (f *FsstatRes) Marshal() []byte {
	return f.AppendTo(make([]byte, 0, f.WireSize()))
}

// WireSize reports the exact encoded size.
func (f *FsstatRes) WireSize() int {
	n := 4 + 4
	if f.Status == OK {
		n += 6*8 + 4
	}
	return n
}

// UnmarshalFsstatRes decodes FsstatRes.
func UnmarshalFsstatRes(b []byte) (*FsstatRes, error) {
	d := xdr.NewDecoder(b)
	f := &FsstatRes{Status: d.Uint32()}
	decodePostOpAttr(d)
	if f.Status == OK {
		f.Tbytes = d.Uint64()
		f.Fbytes = d.Uint64()
		d.Uint64()
		d.Uint64()
		d.Uint64()
		d.Uint64()
		d.Uint32()
	}
	return f, d.Err()
}

// NonIdempotent reports whether a procedure must not be executed twice:
// replaying CREATE/MKDIR/REMOVE/RENAME gives a different (wrong) answer
// the second time — EXIST where the first created, NOENT where the
// first removed. These are the procedures a duplicate request cache
// must shield from retransmissions; everything else (reads, WRITE with
// an explicit offset, COMMIT) replays to the same result.
func NonIdempotent(proc uint32) bool {
	switch proc {
	case ProcCreate, ProcMkdir, ProcRemove, ProcRename:
		return true
	}
	return false
}

// ArgsChecksum hashes a call's XDR argument body (FNV-1a 64). A
// duplicate request cache keys on it alongside (client, XID, proc): XID
// reuse by a rebooted client then mismatches on the arguments instead
// of replaying an old reply to a different call.
func ArgsChecksum(body []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range body {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// ProcName returns a human-readable procedure name.
func ProcName(proc uint32) string {
	switch proc {
	case ProcNull:
		return "NULL"
	case ProcGetattr:
		return "GETATTR"
	case ProcSetattr:
		return "SETATTR"
	case ProcLookup:
		return "LOOKUP"
	case ProcAccess:
		return "ACCESS"
	case ProcRead:
		return "READ"
	case ProcWrite:
		return "WRITE"
	case ProcCreate:
		return "CREATE"
	case ProcMkdir:
		return "MKDIR"
	case ProcRemove:
		return "REMOVE"
	case ProcRename:
		return "RENAME"
	case ProcReaddir:
		return "READDIR"
	case ProcReaddirplus:
		return "READDIRPLUS"
	case ProcFsstat:
		return "FSSTAT"
	case ProcCommit:
		return "COMMIT"
	default:
		return fmt.Sprintf("PROC%d", proc)
	}
}
