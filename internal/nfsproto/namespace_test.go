package nfsproto

import (
	"testing"
	"testing/quick"
)

// TestSetattrRoundTrip covers the size-only SETATTR args and both
// result arms.
func TestSetattrRoundTrip(t *testing.T) {
	a := &SetattrArgs{FH: 9, Size: 1 << 33}
	got, err := UnmarshalSetattrArgs(a.Marshal())
	if err != nil || *got != *a {
		t.Fatalf("args round trip: %+v err=%v", got, err)
	}
	res := &SetattrRes{Status: OK, Attrs: sampleAttrs()}
	gr, err := UnmarshalSetattrRes(res.Marshal())
	if err != nil || gr.Status != OK || gr.Attrs == nil || gr.Attrs.Size != res.Attrs.Size {
		t.Fatalf("res round trip: %+v err=%v", gr, err)
	}
	gr, err = UnmarshalSetattrRes((&SetattrRes{Status: ErrIsDir}).Marshal())
	if err != nil || gr.Status != ErrIsDir || gr.Attrs != nil {
		t.Fatalf("error res round trip: %+v err=%v", gr, err)
	}
}

// TestMkdirRoundTrip covers MKDIR args and the OK-gated result body.
func TestMkdirRoundTrip(t *testing.T) {
	a := &MkdirArgs{Dir: 1, Name: "sub"}
	got, err := UnmarshalMkdirArgs(a.Marshal())
	if err != nil || *got != *a {
		t.Fatalf("args round trip: %+v err=%v", got, err)
	}
	res := &MkdirRes{Status: OK, FH: 77, Attrs: sampleAttrs()}
	gr, err := UnmarshalMkdirRes(res.Marshal())
	if err != nil || gr.FH != 77 || gr.Attrs == nil {
		t.Fatalf("res round trip: %+v err=%v", gr, err)
	}
	gr, err = UnmarshalMkdirRes((&MkdirRes{Status: ErrExist}).Marshal())
	if err != nil || gr.Status != ErrExist || gr.FH != 0 {
		t.Fatalf("error res round trip: %+v err=%v", gr, err)
	}
}

// TestRemoveRenameRoundTrip covers the two name-mutating procedures.
func TestRemoveRenameRoundTrip(t *testing.T) {
	ra := &RemoveArgs{Dir: 1, Name: "victim"}
	gotR, err := UnmarshalRemoveArgs(ra.Marshal())
	if err != nil || *gotR != *ra {
		t.Fatalf("RemoveArgs round trip: %+v err=%v", gotR, err)
	}
	rr, err := UnmarshalRemoveRes((&RemoveRes{Status: ErrNotEmpty}).Marshal())
	if err != nil || rr.Status != ErrNotEmpty {
		t.Fatalf("RemoveRes round trip: %+v err=%v", rr, err)
	}

	na := &RenameArgs{FromDir: 1, FromName: "a", ToDir: 9, ToName: "longer-name"}
	gotN, err := UnmarshalRenameArgs(na.Marshal())
	if err != nil || *gotN != *na {
		t.Fatalf("RenameArgs round trip: %+v err=%v", gotN, err)
	}
	nr := &RenameRes{Status: OK, FromAttrs: sampleAttrs()}
	gotNR, err := UnmarshalRenameRes(nr.Marshal())
	if err != nil || gotNR.FromAttrs == nil || gotNR.ToAttrs != nil {
		t.Fatalf("RenameRes one-sided round trip: %+v err=%v", gotNR, err)
	}
}

// TestReaddirRoundTrip covers the entry-list reply: paging fields,
// multiple entries, the empty page and the error arm.
func TestReaddirRoundTrip(t *testing.T) {
	a := &ReaddirArgs{Dir: 3, Cookie: 41, Cookieverf: 6, Count: 4096}
	got, err := UnmarshalReaddirArgs(a.Marshal())
	if err != nil || *got != *a {
		t.Fatalf("args round trip: %+v err=%v", got, err)
	}
	res := &ReaddirRes{Status: OK, Attrs: sampleAttrs(), Cookieverf: 6, EOF: true,
		Entries: []DirEntry{
			{FileID: 4, Name: "a", Cookie: 1},
			{FileID: 5, Name: "bb", Cookie: 2},
			{FileID: 6, Name: "cc" + string(make([]byte, 61)), Cookie: 9},
		}}
	gr, err := UnmarshalReaddirRes(res.Marshal())
	if err != nil || gr.Cookieverf != 6 || !gr.EOF || len(gr.Entries) != 3 {
		t.Fatalf("res round trip: %+v err=%v", gr, err)
	}
	for i := range res.Entries {
		if gr.Entries[i] != res.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, gr.Entries[i], res.Entries[i])
		}
	}
	gr, err = UnmarshalReaddirRes((&ReaddirRes{Status: OK, Cookieverf: 1}).Marshal())
	if err != nil || len(gr.Entries) != 0 || gr.EOF {
		t.Fatalf("empty page round trip: %+v err=%v", gr, err)
	}
	gr, err = UnmarshalReaddirRes((&ReaddirRes{Status: ErrBadCookie}).Marshal())
	if err != nil || gr.Status != ErrBadCookie {
		t.Fatalf("error res round trip: %+v err=%v", gr, err)
	}
}

// TestReaddirplusRoundTrip covers entryplus3 with and without the
// optional per-entry handle and attributes.
func TestReaddirplusRoundTrip(t *testing.T) {
	a := &ReaddirplusArgs{Dir: 3, Cookie: 1, Cookieverf: 2, DirCount: 512, MaxCount: 8192}
	got, err := UnmarshalReaddirplusArgs(a.Marshal())
	if err != nil || *got != *a {
		t.Fatalf("args round trip: %+v err=%v", got, err)
	}
	res := &ReaddirplusRes{Status: OK, Cookieverf: 2,
		Entries: []DirEntryPlus{
			{FileID: 4, Name: "full", Cookie: 1, Attrs: sampleAttrs(), FH: 4},
			{FileID: 5, Name: "bare", Cookie: 2},
		}}
	gr, err := UnmarshalReaddirplusRes(res.Marshal())
	if err != nil || len(gr.Entries) != 2 {
		t.Fatalf("res round trip: %+v err=%v", gr, err)
	}
	if gr.Entries[0].FH != 4 || gr.Entries[0].Attrs == nil {
		t.Fatalf("full entry lost fields: %+v", gr.Entries[0])
	}
	if gr.Entries[1].FH != 0 || gr.Entries[1].Attrs != nil {
		t.Fatalf("bare entry grew fields: %+v", gr.Entries[1])
	}
}

// TestNamespaceWireSizeProperty extends the WireSize==len(Marshal)
// property to every namespace shape under arbitrary field values.
func TestNamespaceWireSizeProperty(t *testing.T) {
	f := func(fh uint64, cookie uint64, n uint16, name string, ok bool, withAttrs bool) bool {
		if len(name) > MaxName {
			return true
		}
		status := uint32(OK)
		if !ok {
			status = ErrNotEmpty
		}
		var attrs *Fattr
		if withAttrs {
			attrs = sampleAttrs()
		}
		entries := []DirEntry{{FileID: fh, Name: name, Cookie: cookie}}
		entriesPlus := []DirEntryPlus{{FileID: fh, Name: name, Cookie: cookie, Attrs: attrs, FH: FH(fh)}}
		msgs := []interface {
			Marshal() []byte
			WireSize() int
		}{
			&SetattrArgs{FH: FH(fh), Size: cookie},
			&SetattrRes{Status: status, Attrs: attrs},
			&MkdirArgs{Dir: FH(fh), Name: name},
			&MkdirRes{Status: status, FH: FH(fh), Attrs: attrs},
			&RemoveArgs{Dir: FH(fh), Name: name},
			&RemoveRes{Status: status, Attrs: attrs},
			&RenameArgs{FromDir: FH(fh), FromName: name, ToDir: FH(cookie), ToName: name},
			&RenameRes{Status: status, FromAttrs: attrs, ToAttrs: attrs},
			&ReaddirArgs{Dir: FH(fh), Cookie: cookie, Cookieverf: cookie ^ 1, Count: uint32(n)},
			&ReaddirRes{Status: status, Attrs: attrs, Cookieverf: cookie, Entries: entries, EOF: ok},
			&ReaddirplusArgs{Dir: FH(fh), Cookie: cookie, DirCount: uint32(n), MaxCount: uint32(n)},
			&ReaddirplusRes{Status: status, Attrs: attrs, Cookieverf: cookie, Entries: entriesPlus},
		}
		for _, m := range msgs {
			if len(m.Marshal()) != m.WireSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
