package nfsproto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleAttrs() *Fattr {
	return &Fattr{Type: TypeReg, Mode: 0644, Nlink: 1, UID: 1000, GID: 1000,
		Size: 1 << 28, Used: 1 << 28, FSID: 7, FileID: 42}
}

func TestReadArgsRoundTrip(t *testing.T) {
	a := &ReadArgs{FH: 0x1122334455667788, Offset: 1 << 33, Count: 8192}
	b := a.Marshal()
	if len(b) != a.WireSize() {
		t.Fatalf("wire size %d != marshalled %d", a.WireSize(), len(b))
	}
	got, err := UnmarshalReadArgs(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Fatalf("got %+v", got)
	}
}

func TestReadResRoundTrip(t *testing.T) {
	r := &ReadRes{Status: OK, Attrs: sampleAttrs(), Count: 5, EOF: true,
		Data: []byte{1, 2, 3, 4, 5}}
	b := r.Marshal()
	if len(b) != r.WireSize() {
		t.Fatalf("wire size %d != marshalled %d", r.WireSize(), len(b))
	}
	got, err := UnmarshalReadRes(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != OK || got.Count != 5 || !got.EOF || !bytes.Equal(got.Data, r.Data) {
		t.Fatalf("got %+v", got)
	}
	if got.Attrs == nil || got.Attrs.Size != r.Attrs.Size {
		t.Fatalf("attrs lost: %+v", got.Attrs)
	}
}

func TestReadResErrorOmitsPayload(t *testing.T) {
	r := &ReadRes{Status: ErrStale}
	b := r.Marshal()
	if len(b) != r.WireSize() || len(b) != 8 {
		t.Fatalf("error reply size = %d (wire %d), want 8", len(b), r.WireSize())
	}
	got, err := UnmarshalReadRes(b)
	if err != nil || got.Status != ErrStale {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestReadResSimulatedPayloadSize(t *testing.T) {
	// The simulator sets DataLen without carrying bytes; the wire size
	// must match a real payload of that length.
	withData := &ReadRes{Status: OK, Attrs: sampleAttrs(), Count: 8192,
		Data: make([]byte, 8192)}
	simulated := &ReadRes{Status: OK, Attrs: sampleAttrs(), Count: 8192,
		DataLen: 8192}
	if withData.WireSize() != simulated.WireSize() {
		t.Fatalf("simulated size %d != real size %d",
			simulated.WireSize(), withData.WireSize())
	}
	if len(simulated.Marshal()) != simulated.WireSize() {
		t.Fatal("simulated marshal length mismatch")
	}
}

func TestWriteArgsRoundTrip(t *testing.T) {
	w := &WriteArgs{FH: 3, Offset: 8192, Count: 4, Stable: WriteFileSync,
		Data: []byte{9, 8, 7, 6}}
	b := w.Marshal()
	if len(b) != w.WireSize() {
		t.Fatalf("wire size %d != marshalled %d", w.WireSize(), len(b))
	}
	got, err := UnmarshalWriteArgs(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.FH != 3 || got.Offset != 8192 || got.Stable != WriteFileSync ||
		!bytes.Equal(got.Data, w.Data) {
		t.Fatalf("got %+v", got)
	}
}

func TestWriteResVerifierRoundTrip(t *testing.T) {
	w := &WriteRes{Status: OK, Attrs: sampleAttrs(), Count: 8192,
		Committed: WriteUnstable, Verf: 0xfeedface01234567}
	b := w.Marshal()
	if len(b) != w.WireSize() {
		t.Fatalf("wire size %d != marshalled %d", w.WireSize(), len(b))
	}
	got, err := UnmarshalWriteRes(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Committed != WriteUnstable || got.Verf != w.Verf || got.Count != 8192 {
		t.Fatalf("got %+v", got)
	}
}

func TestCommitArgsRoundTrip(t *testing.T) {
	c := &CommitArgs{FH: 0x1122334455667788, Offset: 1 << 40, Count: 1 << 20}
	b := c.Marshal()
	if len(b) != c.WireSize() {
		t.Fatalf("wire size %d != marshalled %d", c.WireSize(), len(b))
	}
	got, err := UnmarshalCommitArgs(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *c {
		t.Fatalf("got %+v, want %+v", got, c)
	}
}

func TestCommitResRoundTrip(t *testing.T) {
	c := &CommitRes{Status: OK, Attrs: sampleAttrs(), Verf: 0x0011223344556677}
	b := c.Marshal()
	if len(b) != c.WireSize() {
		t.Fatalf("wire size %d != marshalled %d", c.WireSize(), len(b))
	}
	got, err := UnmarshalCommitRes(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != OK || got.Verf != c.Verf {
		t.Fatalf("got %+v", got)
	}
	if got.Attrs == nil || got.Attrs.FileID != c.Attrs.FileID {
		t.Fatalf("attrs lost: %+v", got.Attrs)
	}

	errRes := &CommitRes{Status: ErrStale}
	gotE, err := UnmarshalCommitRes(errRes.Marshal())
	if err != nil || gotE.Status != ErrStale || gotE.Verf != 0 {
		t.Fatalf("error arm: %+v err %v", gotE, err)
	}
}

func TestStableName(t *testing.T) {
	for stable, want := range map[uint32]string{
		WriteUnstable: "UNSTABLE", WriteDataSync: "DATA_SYNC",
		WriteFileSync: "FILE_SYNC", 9: "STABLE9",
	} {
		if got := StableName(stable); got != want {
			t.Errorf("StableName(%d) = %q, want %q", stable, got, want)
		}
	}
}

func TestLookupRoundTrip(t *testing.T) {
	a := &LookupArgs{Dir: 1, Name: "f256m"}
	b := a.Marshal()
	if len(b) != a.WireSize() {
		t.Fatalf("args wire size %d != %d", a.WireSize(), len(b))
	}
	gotA, err := UnmarshalLookupArgs(b)
	if err != nil || gotA.Name != "f256m" || gotA.Dir != 1 {
		t.Fatalf("args %+v err %v", gotA, err)
	}

	r := &LookupRes{Status: OK, FH: 55, Attrs: sampleAttrs()}
	rb := r.Marshal()
	if len(rb) != r.WireSize() {
		t.Fatalf("res wire size %d != %d", r.WireSize(), len(rb))
	}
	gotR, err := UnmarshalLookupRes(rb)
	if err != nil || gotR.FH != 55 {
		t.Fatalf("res %+v err %v", gotR, err)
	}
}

func TestLookupNotFound(t *testing.T) {
	r := &LookupRes{Status: ErrNoEnt}
	got, err := UnmarshalLookupRes(r.Marshal())
	if err != nil || got.Status != ErrNoEnt || got.FH != 0 {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestGetattrRoundTrip(t *testing.T) {
	a := &GetattrArgs{FH: 12345}
	got, err := UnmarshalGetattrArgs(a.Marshal())
	if err != nil || got.FH != 12345 {
		t.Fatalf("args %+v err %v", got, err)
	}
	r := &GetattrRes{Status: OK, Attrs: *sampleAttrs()}
	b := r.Marshal()
	if len(b) != r.WireSize() {
		t.Fatalf("res wire size %d != %d", r.WireSize(), len(b))
	}
	gotR, err := UnmarshalGetattrRes(b)
	if err != nil || gotR.Attrs.FileID != 42 {
		t.Fatalf("res %+v err %v", gotR, err)
	}
}

func TestAccessRoundTrip(t *testing.T) {
	a := &AccessArgs{FH: 9, Access: 0x3f}
	got, err := UnmarshalAccessArgs(a.Marshal())
	if err != nil || got.Access != 0x3f {
		t.Fatalf("%+v err %v", got, err)
	}
	r := &AccessRes{Status: OK, Attrs: sampleAttrs(), Access: 0x1f}
	b := r.Marshal()
	if len(b) != r.WireSize() {
		t.Fatalf("wire size %d != %d", r.WireSize(), len(b))
	}
	gotR, err := UnmarshalAccessRes(b)
	if err != nil || gotR.Access != 0x1f {
		t.Fatalf("%+v err %v", gotR, err)
	}
}

func TestCreateRoundTrip(t *testing.T) {
	c := &CreateArgs{Dir: 1, Name: "newfile", Size: 1 << 20}
	b := c.Marshal()
	if len(b) != c.WireSize() {
		t.Fatalf("wire size %d != %d", c.WireSize(), len(b))
	}
	got, err := UnmarshalCreateArgs(b)
	if err != nil || got.Name != "newfile" || got.Size != 1<<20 {
		t.Fatalf("%+v err %v", got, err)
	}
	r := &CreateRes{Status: OK, FH: 77, Attrs: sampleAttrs()}
	rb := r.Marshal()
	if len(rb) != r.WireSize() {
		t.Fatalf("res wire size %d != %d", r.WireSize(), len(rb))
	}
	gotR, err := UnmarshalCreateRes(rb)
	if err != nil || gotR.FH != 77 {
		t.Fatalf("%+v err %v", gotR, err)
	}
}

func TestFsstatRoundTrip(t *testing.T) {
	r := &FsstatRes{Status: OK, Tbytes: 1 << 34, Fbytes: 1 << 33}
	b := r.Marshal()
	if len(b) != r.WireSize() {
		t.Fatalf("wire size %d != %d", r.WireSize(), len(b))
	}
	got, err := UnmarshalFsstatRes(b)
	if err != nil || got.Tbytes != 1<<34 {
		t.Fatalf("%+v err %v", got, err)
	}
}

func TestFHRoundTripProperty(t *testing.T) {
	f := func(fh uint64) bool {
		a := &ReadArgs{FH: FH(fh), Offset: 0, Count: 1}
		got, err := UnmarshalReadArgs(a.Marshal())
		return err == nil && got.FH == FH(fh)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: WireSize always equals the marshalled length, across all
// message types and arbitrary field values. The simulator depends on
// this to charge the network for exact byte counts.
func TestWireSizeMatchesMarshalProperty(t *testing.T) {
	f := func(fh uint64, off uint64, n uint16, name string, ok bool, withAttrs bool) bool {
		if len(name) > MaxName {
			return true
		}
		status := uint32(OK)
		if !ok {
			status = ErrIO
		}
		var attrs *Fattr
		if withAttrs {
			attrs = sampleAttrs()
		}
		data := make([]byte, int(n)%MaxData)
		msgs := []interface {
			Marshal() []byte
			WireSize() int
		}{
			&ReadArgs{FH: FH(fh), Offset: off, Count: uint32(n)},
			&ReadRes{Status: status, Attrs: attrs, Count: uint32(len(data)), Data: data},
			&ReadRes{Status: status, Attrs: attrs, Count: uint32(len(data)), DataLen: uint32(len(data))},
			&WriteArgs{FH: FH(fh), Offset: off, Count: uint32(len(data)), Data: data},
			&WriteRes{Status: status, Attrs: attrs, Count: uint32(n)},
			&LookupArgs{Dir: FH(fh), Name: name},
			&LookupRes{Status: status, FH: FH(fh), Attrs: attrs},
			&GetattrArgs{FH: FH(fh)},
			&GetattrRes{Status: status},
			&AccessArgs{FH: FH(fh), Access: uint32(n)},
			&AccessRes{Status: status, Attrs: attrs, Access: 7},
			&CreateArgs{Dir: FH(fh), Name: name, Size: off},
			&CreateRes{Status: status, FH: FH(fh), Attrs: attrs},
			&FsstatRes{Status: status, Tbytes: off},
			&WriteRes{Status: status, Attrs: attrs, Count: uint32(n), Committed: uint32(n) % 3, Verf: off},
			&CommitArgs{FH: FH(fh), Offset: off, Count: uint32(n)},
			&CommitRes{Status: status, Attrs: attrs, Verf: fh},
		}
		for _, m := range msgs {
			if len(m.Marshal()) != m.WireSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProcName(t *testing.T) {
	if ProcName(ProcRead) != "READ" || ProcName(999) != "PROC999" {
		t.Fatal("ProcName broken")
	}
}
