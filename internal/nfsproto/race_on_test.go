//go:build race

package nfsproto

// raceEnabled reports that the race detector is instrumenting this
// build; exact allocation counts are unreliable under it.
const raceEnabled = true
