package nfsproto

import (
	"fmt"
	"strings"
	"testing"
)

// procNames lists every Proc* constant the package exports with its
// expected name. Adding a procedure constant without extending this
// table (and ProcName) is the drift this test exists to catch — see the
// scan check below, which also fails when ProcName knows a procedure
// this table does not.
var procNames = map[uint32]string{
	ProcNull:        "NULL",
	ProcGetattr:     "GETATTR",
	ProcSetattr:     "SETATTR",
	ProcLookup:      "LOOKUP",
	ProcAccess:      "ACCESS",
	ProcRead:        "READ",
	ProcWrite:       "WRITE",
	ProcCreate:      "CREATE",
	ProcMkdir:       "MKDIR",
	ProcRemove:      "REMOVE",
	ProcRename:      "RENAME",
	ProcReaddir:     "READDIR",
	ProcReaddirplus: "READDIRPLUS",
	ProcFsstat:      "FSSTAT",
	ProcCommit:      "COMMIT",
}

// TestProcNameCoversEveryProc is table-driven over every Proc*
// constant: each must resolve to its RFC 1813 name, never the numeric
// fallback.
func TestProcNameCoversEveryProc(t *testing.T) {
	for proc, want := range procNames {
		if got := ProcName(proc); got != want {
			t.Errorf("ProcName(%d) = %q, want %q", proc, got, want)
		}
		if strings.HasPrefix(ProcName(proc), "PROC") {
			t.Errorf("ProcName(%d) fell through to the numeric fallback", proc)
		}
	}
}

// TestProcNameTableComplete scans the NFS3 procedure number space: any
// procedure ProcName resolves to a non-fallback name must be in the
// procNames table above. A new Proc* constant whose name is added to
// ProcName but not to the table fails here, forcing the table (and so
// the per-constant assertions) to keep up.
func TestProcNameTableComplete(t *testing.T) {
	// NFSPROC3 numbers run 0..21 (RFC 1813); scan beyond for safety.
	for proc := uint32(0); proc < 64; proc++ {
		fallback := fmt.Sprintf("PROC%d", proc)
		got := ProcName(proc)
		if _, known := procNames[proc]; known {
			continue // asserted exactly above
		}
		if got != fallback {
			t.Errorf("ProcName(%d) = %q but %d is missing from the procNames test table", proc, got, proc)
		}
	}
}

// TestProcNameFallback pins the fallback form for unknown procedures.
func TestProcNameFallback(t *testing.T) {
	if got := ProcName(55); got != "PROC55" {
		t.Errorf("ProcName(55) = %q", got)
	}
}
