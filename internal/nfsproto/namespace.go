// The NFSv3 namespace procedures: SETATTR, MKDIR, REMOVE, RENAME,
// READDIR and READDIRPLUS. Same reduced-but-real XDR treatment as the
// data-path messages in nfsproto.go: every message supports
// AppendTo/Marshal/WireSize, args carry only the fields the
// reproduction serves (SETATTR sets size only; MKDIR takes no initial
// attributes), and results reduce wcc_data to post-op attributes.
//
// READDIR's entry list is the one variable-shape reply in the protocol
// subset: entries encode as the RFC 1813 linked list (a follows-bool
// before each entry, a final false, then the EOF flag), and the
// cookie/cookieverf pair carries the paging contract — each entry's
// cookie resumes the scan just past it, and the verifier names the
// directory's cookie epoch so a server can reject cookies that a
// mutation may have invalidated (NFS3ERR_BAD_COOKIE).
package nfsproto

import "nfstricks/internal/xdr"

// SetattrArgs is a reduced SETATTR3args: the size attribute only
// (truncate or extend), which is the one attribute the flat-attribute
// backends honour.
type SetattrArgs struct {
	FH   FH
	Size uint64
}

// AppendTo appends the encoded arguments to buf.
func (s *SetattrArgs) AppendTo(buf []byte) []byte {
	buf = appendFH(buf, s.FH)
	buf = xdr.AppendBool(buf, true) // set_size follows
	return xdr.AppendUint64(buf, s.Size)
}

// Marshal encodes the arguments.
func (s *SetattrArgs) Marshal() []byte {
	return s.AppendTo(make([]byte, 0, s.WireSize()))
}

// WireSize reports the exact encoded size.
func (s *SetattrArgs) WireSize() int { return fhWireSize + 4 + 8 }

// UnmarshalSetattrArgs decodes SetattrArgs.
func UnmarshalSetattrArgs(b []byte) (*SetattrArgs, error) {
	d := xdr.NewDecoder(b)
	s := &SetattrArgs{FH: decodeFH(d)}
	d.Bool()
	s.Size = d.Uint64()
	return s, d.Err()
}

// SetattrRes is a reduced SETATTR3res (wcc_data reduced to post-op
// attributes).
type SetattrRes struct {
	Status uint32
	Attrs  *Fattr
}

// AppendTo appends the encoded result to buf.
func (s *SetattrRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, s.Status)
	return appendPostOpAttr(buf, s.Attrs)
}

// Marshal encodes the result.
func (s *SetattrRes) Marshal() []byte {
	return s.AppendTo(make([]byte, 0, s.WireSize()))
}

// WireSize reports the exact encoded size.
func (s *SetattrRes) WireSize() int { return 4 + postOpAttrSize(s.Attrs) }

// UnmarshalSetattrRes decodes SetattrRes.
func UnmarshalSetattrRes(b []byte) (*SetattrRes, error) {
	d := xdr.NewDecoder(b)
	s := &SetattrRes{Status: d.Uint32(), Attrs: decodePostOpAttr(d)}
	return s, d.Err()
}

// MkdirArgs is a reduced MKDIR3args (no initial attributes).
type MkdirArgs struct {
	Dir  FH
	Name string
}

// AppendTo appends the encoded arguments to buf.
func (m *MkdirArgs) AppendTo(buf []byte) []byte {
	buf = appendFH(buf, m.Dir)
	return xdr.AppendString(buf, m.Name)
}

// Marshal encodes the arguments.
func (m *MkdirArgs) Marshal() []byte {
	return m.AppendTo(make([]byte, 0, m.WireSize()))
}

// WireSize reports the exact encoded size.
func (m *MkdirArgs) WireSize() int { return fhWireSize + 4 + pad4(len(m.Name)) }

// UnmarshalMkdirArgs decodes MkdirArgs.
func UnmarshalMkdirArgs(b []byte) (*MkdirArgs, error) {
	d := xdr.NewDecoder(b)
	m := &MkdirArgs{Dir: decodeFH(d), Name: d.String(MaxName)}
	return m, d.Err()
}

// MkdirRes is a reduced MKDIR3res: the new directory's post-op handle
// and attributes on success.
type MkdirRes struct {
	Status uint32
	FH     FH
	Attrs  *Fattr
}

// AppendTo appends the encoded result to buf.
func (m *MkdirRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, m.Status)
	if m.Status == OK {
		buf = xdr.AppendBool(buf, true)
		buf = appendFH(buf, m.FH)
		buf = appendPostOpAttr(buf, m.Attrs)
	}
	return buf
}

// Marshal encodes the result.
func (m *MkdirRes) Marshal() []byte {
	return m.AppendTo(make([]byte, 0, m.WireSize()))
}

// WireSize reports the exact encoded size.
func (m *MkdirRes) WireSize() int {
	if m.Status == OK {
		return 4 + 4 + fhWireSize + postOpAttrSize(m.Attrs)
	}
	return 4
}

// UnmarshalMkdirRes decodes MkdirRes.
func UnmarshalMkdirRes(b []byte) (*MkdirRes, error) {
	d := xdr.NewDecoder(b)
	m := &MkdirRes{Status: d.Uint32()}
	if m.Status == OK {
		d.Bool()
		m.FH = decodeFH(d)
		m.Attrs = decodePostOpAttr(d)
	}
	return m, d.Err()
}

// RemoveArgs is REMOVE3args. The one REMOVE serves files and empty
// directories both (RMDIR is folded in; a non-empty directory answers
// NFS3ERR_NOTEMPTY).
type RemoveArgs struct {
	Dir  FH
	Name string
}

// AppendTo appends the encoded arguments to buf.
func (r *RemoveArgs) AppendTo(buf []byte) []byte {
	buf = appendFH(buf, r.Dir)
	return xdr.AppendString(buf, r.Name)
}

// Marshal encodes the arguments.
func (r *RemoveArgs) Marshal() []byte {
	return r.AppendTo(make([]byte, 0, r.WireSize()))
}

// WireSize reports the exact encoded size.
func (r *RemoveArgs) WireSize() int { return fhWireSize + 4 + pad4(len(r.Name)) }

// UnmarshalRemoveArgs decodes RemoveArgs.
func UnmarshalRemoveArgs(b []byte) (*RemoveArgs, error) {
	d := xdr.NewDecoder(b)
	r := &RemoveArgs{Dir: decodeFH(d), Name: d.String(MaxName)}
	return r, d.Err()
}

// RemoveRes is a reduced REMOVE3res (dir wcc_data reduced to post-op
// attributes).
type RemoveRes struct {
	Status uint32
	Attrs  *Fattr
}

// AppendTo appends the encoded result to buf.
func (r *RemoveRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, r.Status)
	return appendPostOpAttr(buf, r.Attrs)
}

// Marshal encodes the result.
func (r *RemoveRes) Marshal() []byte {
	return r.AppendTo(make([]byte, 0, r.WireSize()))
}

// WireSize reports the exact encoded size.
func (r *RemoveRes) WireSize() int { return 4 + postOpAttrSize(r.Attrs) }

// UnmarshalRemoveRes decodes RemoveRes.
func UnmarshalRemoveRes(b []byte) (*RemoveRes, error) {
	d := xdr.NewDecoder(b)
	r := &RemoveRes{Status: d.Uint32(), Attrs: decodePostOpAttr(d)}
	return r, d.Err()
}

// RenameArgs is RENAME3args.
type RenameArgs struct {
	FromDir  FH
	FromName string
	ToDir    FH
	ToName   string
}

// AppendTo appends the encoded arguments to buf.
func (r *RenameArgs) AppendTo(buf []byte) []byte {
	buf = appendFH(buf, r.FromDir)
	buf = xdr.AppendString(buf, r.FromName)
	buf = appendFH(buf, r.ToDir)
	return xdr.AppendString(buf, r.ToName)
}

// Marshal encodes the arguments.
func (r *RenameArgs) Marshal() []byte {
	return r.AppendTo(make([]byte, 0, r.WireSize()))
}

// WireSize reports the exact encoded size.
func (r *RenameArgs) WireSize() int {
	return 2*fhWireSize + 4 + pad4(len(r.FromName)) + 4 + pad4(len(r.ToName))
}

// UnmarshalRenameArgs decodes RenameArgs.
func UnmarshalRenameArgs(b []byte) (*RenameArgs, error) {
	d := xdr.NewDecoder(b)
	r := &RenameArgs{FromDir: decodeFH(d), FromName: d.String(MaxName),
		ToDir: decodeFH(d), ToName: d.String(MaxName)}
	return r, d.Err()
}

// RenameRes is a reduced RENAME3res (both directories' wcc_data reduced
// to post-op attributes).
type RenameRes struct {
	Status    uint32
	FromAttrs *Fattr
	ToAttrs   *Fattr
}

// AppendTo appends the encoded result to buf.
func (r *RenameRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, r.Status)
	buf = appendPostOpAttr(buf, r.FromAttrs)
	return appendPostOpAttr(buf, r.ToAttrs)
}

// Marshal encodes the result.
func (r *RenameRes) Marshal() []byte {
	return r.AppendTo(make([]byte, 0, r.WireSize()))
}

// WireSize reports the exact encoded size.
func (r *RenameRes) WireSize() int {
	return 4 + postOpAttrSize(r.FromAttrs) + postOpAttrSize(r.ToAttrs)
}

// UnmarshalRenameRes decodes RenameRes.
func UnmarshalRenameRes(b []byte) (*RenameRes, error) {
	d := xdr.NewDecoder(b)
	r := &RenameRes{Status: d.Uint32(),
		FromAttrs: decodePostOpAttr(d), ToAttrs: decodePostOpAttr(d)}
	return r, d.Err()
}

// ReaddirArgs is READDIR3args. Cookie resumes a scan just past the
// entry that carried it (0 starts from the beginning); Cookieverf must
// be 0 on a fresh scan and otherwise echo the verifier of the reply the
// cookie came from. Count is the reply-size budget in bytes.
type ReaddirArgs struct {
	Dir        FH
	Cookie     uint64
	Cookieverf uint64
	Count      uint32
}

// AppendTo appends the encoded arguments to buf.
func (r *ReaddirArgs) AppendTo(buf []byte) []byte {
	buf = appendFH(buf, r.Dir)
	buf = xdr.AppendUint64(buf, r.Cookie)
	buf = xdr.AppendUint64(buf, r.Cookieverf)
	return xdr.AppendUint32(buf, r.Count)
}

// Marshal encodes the arguments.
func (r *ReaddirArgs) Marshal() []byte {
	return r.AppendTo(make([]byte, 0, r.WireSize()))
}

// WireSize reports the exact encoded size.
func (r *ReaddirArgs) WireSize() int { return fhWireSize + 8 + 8 + 4 }

// UnmarshalReaddirArgs decodes ReaddirArgs.
func UnmarshalReaddirArgs(b []byte) (*ReaddirArgs, error) {
	d := xdr.NewDecoder(b)
	r := &ReaddirArgs{Dir: decodeFH(d), Cookie: d.Uint64(),
		Cookieverf: d.Uint64(), Count: d.Uint32()}
	return r, d.Err()
}

// DirEntry is entry3: one READDIR list entry.
type DirEntry struct {
	FileID uint64
	Name   string
	Cookie uint64
}

// wireSize is the entry's encoded size including its follows-bool.
func (e *DirEntry) wireSize() int { return 4 + 8 + 4 + pad4(len(e.Name)) + 8 }

func (e *DirEntry) appendTo(buf []byte) []byte {
	buf = xdr.AppendBool(buf, true)
	buf = xdr.AppendUint64(buf, e.FileID)
	buf = xdr.AppendString(buf, e.Name)
	return xdr.AppendUint64(buf, e.Cookie)
}

// ReaddirRes is READDIR3res: the directory's post-op attributes, the
// cookie verifier the entries' cookies are valid under, the entry list
// and the EOF flag.
type ReaddirRes struct {
	Status     uint32
	Attrs      *Fattr
	Cookieverf uint64
	Entries    []DirEntry
	EOF        bool
}

// AppendTo appends the encoded result to buf.
func (r *ReaddirRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, r.Status)
	buf = appendPostOpAttr(buf, r.Attrs)
	if r.Status == OK {
		buf = xdr.AppendUint64(buf, r.Cookieverf)
		for i := range r.Entries {
			buf = r.Entries[i].appendTo(buf)
		}
		buf = xdr.AppendBool(buf, false)
		buf = xdr.AppendBool(buf, r.EOF)
	}
	return buf
}

// Marshal encodes the result.
func (r *ReaddirRes) Marshal() []byte {
	return r.AppendTo(make([]byte, 0, r.WireSize()))
}

// WireSize reports the exact encoded size.
func (r *ReaddirRes) WireSize() int {
	n := 4 + postOpAttrSize(r.Attrs)
	if r.Status == OK {
		n += 8
		for i := range r.Entries {
			n += r.Entries[i].wireSize()
		}
		n += 4 + 4
	}
	return n
}

// UnmarshalReaddirRes decodes ReaddirRes. Entry names are copied out of
// b (a directory page outlives the receive buffer it arrived in).
func UnmarshalReaddirRes(b []byte) (*ReaddirRes, error) {
	d := xdr.NewDecoder(b)
	r := &ReaddirRes{Status: d.Uint32(), Attrs: decodePostOpAttr(d)}
	if r.Status == OK {
		r.Cookieverf = d.Uint64()
		for d.Bool() {
			e := DirEntry{FileID: d.Uint64(), Name: d.String(MaxName), Cookie: d.Uint64()}
			if d.Err() != nil {
				break
			}
			r.Entries = append(r.Entries, e)
		}
		r.EOF = d.Bool()
	}
	return r, d.Err()
}

// ReaddirplusArgs is READDIRPLUS3args: DirCount budgets the directory
// fields (names + cookies), MaxCount the whole reply.
type ReaddirplusArgs struct {
	Dir        FH
	Cookie     uint64
	Cookieverf uint64
	DirCount   uint32
	MaxCount   uint32
}

// AppendTo appends the encoded arguments to buf.
func (r *ReaddirplusArgs) AppendTo(buf []byte) []byte {
	buf = appendFH(buf, r.Dir)
	buf = xdr.AppendUint64(buf, r.Cookie)
	buf = xdr.AppendUint64(buf, r.Cookieverf)
	buf = xdr.AppendUint32(buf, r.DirCount)
	return xdr.AppendUint32(buf, r.MaxCount)
}

// Marshal encodes the arguments.
func (r *ReaddirplusArgs) Marshal() []byte {
	return r.AppendTo(make([]byte, 0, r.WireSize()))
}

// WireSize reports the exact encoded size.
func (r *ReaddirplusArgs) WireSize() int { return fhWireSize + 8 + 8 + 4 + 4 }

// UnmarshalReaddirplusArgs decodes ReaddirplusArgs.
func UnmarshalReaddirplusArgs(b []byte) (*ReaddirplusArgs, error) {
	d := xdr.NewDecoder(b)
	r := &ReaddirplusArgs{Dir: decodeFH(d), Cookie: d.Uint64(),
		Cookieverf: d.Uint64(), DirCount: d.Uint32(), MaxCount: d.Uint32()}
	return r, d.Err()
}

// DirEntryPlus is entryplus3: a DirEntry plus the entry's post-op
// attributes and handle. A zero FH encodes as "no handle follows"
// (RFC 1813 allows a server to omit either).
type DirEntryPlus struct {
	FileID uint64
	Name   string
	Cookie uint64
	Attrs  *Fattr
	FH     FH
}

// wireSize is the entry's encoded size including its follows-bool.
func (e *DirEntryPlus) wireSize() int {
	n := 4 + 8 + 4 + pad4(len(e.Name)) + 8 + postOpAttrSize(e.Attrs) + 4
	if e.FH != 0 {
		n += fhWireSize
	}
	return n
}

func (e *DirEntryPlus) appendTo(buf []byte) []byte {
	buf = xdr.AppendBool(buf, true)
	buf = xdr.AppendUint64(buf, e.FileID)
	buf = xdr.AppendString(buf, e.Name)
	buf = xdr.AppendUint64(buf, e.Cookie)
	buf = appendPostOpAttr(buf, e.Attrs)
	if e.FH != 0 {
		buf = xdr.AppendBool(buf, true)
		return appendFH(buf, e.FH)
	}
	return xdr.AppendBool(buf, false)
}

// ReaddirplusRes is READDIRPLUS3res.
type ReaddirplusRes struct {
	Status     uint32
	Attrs      *Fattr
	Cookieverf uint64
	Entries    []DirEntryPlus
	EOF        bool
}

// AppendTo appends the encoded result to buf.
func (r *ReaddirplusRes) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint32(buf, r.Status)
	buf = appendPostOpAttr(buf, r.Attrs)
	if r.Status == OK {
		buf = xdr.AppendUint64(buf, r.Cookieverf)
		for i := range r.Entries {
			buf = r.Entries[i].appendTo(buf)
		}
		buf = xdr.AppendBool(buf, false)
		buf = xdr.AppendBool(buf, r.EOF)
	}
	return buf
}

// Marshal encodes the result.
func (r *ReaddirplusRes) Marshal() []byte {
	return r.AppendTo(make([]byte, 0, r.WireSize()))
}

// WireSize reports the exact encoded size.
func (r *ReaddirplusRes) WireSize() int {
	n := 4 + postOpAttrSize(r.Attrs)
	if r.Status == OK {
		n += 8
		for i := range r.Entries {
			n += r.Entries[i].wireSize()
		}
		n += 4 + 4
	}
	return n
}

// UnmarshalReaddirplusRes decodes ReaddirplusRes. Entry names are
// copied out of b (see UnmarshalReaddirRes).
func UnmarshalReaddirplusRes(b []byte) (*ReaddirplusRes, error) {
	d := xdr.NewDecoder(b)
	r := &ReaddirplusRes{Status: d.Uint32(), Attrs: decodePostOpAttr(d)}
	if r.Status == OK {
		r.Cookieverf = d.Uint64()
		for d.Bool() {
			e := DirEntryPlus{FileID: d.Uint64(), Name: d.String(MaxName), Cookie: d.Uint64()}
			e.Attrs = decodePostOpAttr(d)
			if d.Bool() {
				e.FH = decodeFH(d)
			}
			if d.Err() != nil {
				break
			}
			r.Entries = append(r.Entries, e)
		}
		r.EOF = d.Bool()
	}
	return r, d.Err()
}
