//go:build go1.18

package nfsproto

import (
	"bytes"
	"testing"
)

// FuzzWriteCommitRoundTrip drives the asynchronous write path's wire
// messages — WriteArgs (with stability), verifier-bearing WriteRes,
// CommitArgs and CommitRes — through encode/decode with arbitrary field
// values, asserting the invariants every layer above depends on:
// Marshal length equals WireSize, AppendTo equals Marshal, and a decode
// of the encoding returns the source fields. It also throws the raw
// fuzz bytes at the Unmarshal side, which must return errors, never
// panic, on garbage. Explore with:
//
//	go test -fuzz FuzzWriteCommitRoundTrip ./internal/nfsproto/
func FuzzWriteCommitRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint32(8192), uint32(0), uint64(42), []byte("data"))
	f.Add(uint64(1<<63), uint64(1)<<40, uint32(1<<20), uint32(7), uint64(0), []byte{})
	f.Fuzz(func(t *testing.T, fh uint64, off uint64, count uint32, stable uint32, verf uint64, data []byte) {
		if len(data) > MaxData {
			data = data[:MaxData]
		}

		wa := &WriteArgs{FH: FH(fh), Offset: off, Count: uint32(len(data)),
			Stable: stable, Data: data}
		b := wa.Marshal()
		if len(b) != wa.WireSize() {
			t.Fatalf("WriteArgs marshal %d != wire size %d", len(b), wa.WireSize())
		}
		if !bytes.Equal(wa.AppendTo(nil), b) {
			t.Fatal("WriteArgs AppendTo != Marshal")
		}
		gotWA, err := UnmarshalWriteArgs(b)
		if err != nil {
			t.Fatalf("WriteArgs round trip: %v", err)
		}
		if gotWA.FH != wa.FH || gotWA.Offset != off || gotWA.Stable != stable ||
			!bytes.Equal(gotWA.Data, data) {
			t.Fatalf("WriteArgs: got %+v", gotWA)
		}

		wr := &WriteRes{Status: OK, Count: count, Committed: stable % 3, Verf: verf}
		b = wr.Marshal()
		if len(b) != wr.WireSize() {
			t.Fatalf("WriteRes marshal %d != wire size %d", len(b), wr.WireSize())
		}
		gotWR, err := UnmarshalWriteRes(b)
		if err != nil {
			t.Fatalf("WriteRes round trip: %v", err)
		}
		if gotWR.Count != count || gotWR.Committed != stable%3 || gotWR.Verf != verf {
			t.Fatalf("WriteRes: got %+v", gotWR)
		}

		ca := &CommitArgs{FH: FH(fh), Offset: off, Count: count}
		b = ca.Marshal()
		if len(b) != ca.WireSize() {
			t.Fatalf("CommitArgs marshal %d != wire size %d", len(b), ca.WireSize())
		}
		if !bytes.Equal(ca.AppendTo(nil), b) {
			t.Fatal("CommitArgs AppendTo != Marshal")
		}
		gotCA, err := UnmarshalCommitArgs(b)
		if err != nil {
			t.Fatalf("CommitArgs round trip: %v", err)
		}
		if *gotCA != *ca {
			t.Fatalf("CommitArgs: got %+v, want %+v", gotCA, ca)
		}

		cr := &CommitRes{Status: OK, Verf: verf}
		b = cr.Marshal()
		if len(b) != cr.WireSize() {
			t.Fatalf("CommitRes marshal %d != wire size %d", len(b), cr.WireSize())
		}
		gotCR, err := UnmarshalCommitRes(b)
		if err != nil {
			t.Fatalf("CommitRes round trip: %v", err)
		}
		if gotCR.Verf != verf {
			t.Fatalf("CommitRes: got %+v", gotCR)
		}

		// Decoders must reject or survive raw garbage, never panic.
		UnmarshalWriteArgs(data)
		UnmarshalWriteRes(data)
		UnmarshalCommitArgs(data)
		UnmarshalCommitRes(data)
	})
}

// FuzzReaddirRoundTrip drives the metadata path's one variable-shape
// reply — the READDIR/READDIRPLUS entry list — through encode/decode
// with arbitrary cookies, verifiers and entry names, asserting the
// paging invariants: Marshal length equals WireSize, AppendTo equals
// Marshal, and the decoded page carries the source entries exactly.
// The raw fuzz bytes also go straight at every namespace Unmarshal,
// which must error, never panic. Explore with:
//
//	go test -fuzz FuzzReaddirRoundTrip ./internal/nfsproto/
func FuzzReaddirRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(7), "file.dat", []byte{})
	f.Add(uint64(1<<62), ^uint64(0), uint64(0), "", []byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, dir uint64, cookie uint64, verf uint64, name string, raw []byte) {
		if len(name) > MaxName {
			name = name[:MaxName]
		}

		ra := &ReaddirArgs{Dir: FH(dir), Cookie: cookie, Cookieverf: verf, Count: uint32(cookie)}
		b := ra.Marshal()
		if len(b) != ra.WireSize() {
			t.Fatalf("ReaddirArgs marshal %d != wire size %d", len(b), ra.WireSize())
		}
		if !bytes.Equal(ra.AppendTo(nil), b) {
			t.Fatal("ReaddirArgs AppendTo != Marshal")
		}
		gotRA, err := UnmarshalReaddirArgs(b)
		if err != nil {
			t.Fatalf("ReaddirArgs round trip: %v", err)
		}
		if *gotRA != *ra {
			t.Fatalf("ReaddirArgs: got %+v, want %+v", gotRA, ra)
		}

		// A three-entry page: the fuzzed name plus fixed neighbours, so
		// the follows-bool chain and padding are exercised at every name
		// length.
		res := &ReaddirRes{Status: OK, Cookieverf: verf, EOF: cookie%2 == 0,
			Entries: []DirEntry{
				{FileID: dir, Name: name, Cookie: cookie},
				{FileID: dir + 1, Name: "x", Cookie: cookie + 1},
				{FileID: dir + 2, Name: "yy", Cookie: cookie + 2},
			}}
		b = res.Marshal()
		if len(b) != res.WireSize() {
			t.Fatalf("ReaddirRes marshal %d != wire size %d", len(b), res.WireSize())
		}
		if !bytes.Equal(res.AppendTo(nil), b) {
			t.Fatal("ReaddirRes AppendTo != Marshal")
		}
		gotRes, err := UnmarshalReaddirRes(b)
		if err != nil {
			t.Fatalf("ReaddirRes round trip: %v", err)
		}
		if gotRes.Cookieverf != verf || gotRes.EOF != res.EOF || len(gotRes.Entries) != 3 {
			t.Fatalf("ReaddirRes: got %+v", gotRes)
		}
		for i := range res.Entries {
			if gotRes.Entries[i] != res.Entries[i] {
				t.Fatalf("entry %d: got %+v, want %+v", i, gotRes.Entries[i], res.Entries[i])
			}
		}

		plus := &ReaddirplusRes{Status: OK, Cookieverf: verf,
			Entries: []DirEntryPlus{
				{FileID: dir, Name: name, Cookie: cookie, Attrs: sampleAttrs(), FH: FH(dir | 1)},
				{FileID: dir + 1, Name: "bare", Cookie: cookie + 1},
			}}
		b = plus.Marshal()
		if len(b) != plus.WireSize() {
			t.Fatalf("ReaddirplusRes marshal %d != wire size %d", len(b), plus.WireSize())
		}
		gotPlus, err := UnmarshalReaddirplusRes(b)
		if err != nil {
			t.Fatalf("ReaddirplusRes round trip: %v", err)
		}
		if len(gotPlus.Entries) != 2 || gotPlus.Entries[0].Name != name ||
			gotPlus.Entries[0].FH != FH(dir|1) || gotPlus.Entries[1].FH != 0 {
			t.Fatalf("ReaddirplusRes: got %+v", gotPlus)
		}

		// Garbage in, errors (not panics) out — every namespace decoder.
		UnmarshalSetattrArgs(raw)
		UnmarshalSetattrRes(raw)
		UnmarshalMkdirArgs(raw)
		UnmarshalMkdirRes(raw)
		UnmarshalRemoveArgs(raw)
		UnmarshalRemoveRes(raw)
		UnmarshalRenameArgs(raw)
		UnmarshalRenameRes(raw)
		UnmarshalReaddirArgs(raw)
		UnmarshalReaddirRes(raw)
		UnmarshalReaddirplusArgs(raw)
		UnmarshalReaddirplusRes(raw)
	})
}
