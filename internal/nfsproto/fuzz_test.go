//go:build go1.18

package nfsproto

import (
	"bytes"
	"testing"
)

// FuzzWriteCommitRoundTrip drives the asynchronous write path's wire
// messages — WriteArgs (with stability), verifier-bearing WriteRes,
// CommitArgs and CommitRes — through encode/decode with arbitrary field
// values, asserting the invariants every layer above depends on:
// Marshal length equals WireSize, AppendTo equals Marshal, and a decode
// of the encoding returns the source fields. It also throws the raw
// fuzz bytes at the Unmarshal side, which must return errors, never
// panic, on garbage. Explore with:
//
//	go test -fuzz FuzzWriteCommitRoundTrip ./internal/nfsproto/
func FuzzWriteCommitRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint32(8192), uint32(0), uint64(42), []byte("data"))
	f.Add(uint64(1<<63), uint64(1)<<40, uint32(1<<20), uint32(7), uint64(0), []byte{})
	f.Fuzz(func(t *testing.T, fh uint64, off uint64, count uint32, stable uint32, verf uint64, data []byte) {
		if len(data) > MaxData {
			data = data[:MaxData]
		}

		wa := &WriteArgs{FH: FH(fh), Offset: off, Count: uint32(len(data)),
			Stable: stable, Data: data}
		b := wa.Marshal()
		if len(b) != wa.WireSize() {
			t.Fatalf("WriteArgs marshal %d != wire size %d", len(b), wa.WireSize())
		}
		if !bytes.Equal(wa.AppendTo(nil), b) {
			t.Fatal("WriteArgs AppendTo != Marshal")
		}
		gotWA, err := UnmarshalWriteArgs(b)
		if err != nil {
			t.Fatalf("WriteArgs round trip: %v", err)
		}
		if gotWA.FH != wa.FH || gotWA.Offset != off || gotWA.Stable != stable ||
			!bytes.Equal(gotWA.Data, data) {
			t.Fatalf("WriteArgs: got %+v", gotWA)
		}

		wr := &WriteRes{Status: OK, Count: count, Committed: stable % 3, Verf: verf}
		b = wr.Marshal()
		if len(b) != wr.WireSize() {
			t.Fatalf("WriteRes marshal %d != wire size %d", len(b), wr.WireSize())
		}
		gotWR, err := UnmarshalWriteRes(b)
		if err != nil {
			t.Fatalf("WriteRes round trip: %v", err)
		}
		if gotWR.Count != count || gotWR.Committed != stable%3 || gotWR.Verf != verf {
			t.Fatalf("WriteRes: got %+v", gotWR)
		}

		ca := &CommitArgs{FH: FH(fh), Offset: off, Count: count}
		b = ca.Marshal()
		if len(b) != ca.WireSize() {
			t.Fatalf("CommitArgs marshal %d != wire size %d", len(b), ca.WireSize())
		}
		if !bytes.Equal(ca.AppendTo(nil), b) {
			t.Fatal("CommitArgs AppendTo != Marshal")
		}
		gotCA, err := UnmarshalCommitArgs(b)
		if err != nil {
			t.Fatalf("CommitArgs round trip: %v", err)
		}
		if *gotCA != *ca {
			t.Fatalf("CommitArgs: got %+v, want %+v", gotCA, ca)
		}

		cr := &CommitRes{Status: OK, Verf: verf}
		b = cr.Marshal()
		if len(b) != cr.WireSize() {
			t.Fatalf("CommitRes marshal %d != wire size %d", len(b), cr.WireSize())
		}
		gotCR, err := UnmarshalCommitRes(b)
		if err != nil {
			t.Fatalf("CommitRes round trip: %v", err)
		}
		if gotCR.Verf != verf {
			t.Fatalf("CommitRes: got %+v", gotCR)
		}

		// Decoders must reject or survive raw garbage, never panic.
		UnmarshalWriteArgs(data)
		UnmarshalWriteRes(data)
		UnmarshalCommitArgs(data)
		UnmarshalCommitRes(data)
	})
}
