//go:build !race

package nfsproto

// raceEnabled reports whether the race detector is instrumenting this
// build.
const raceEnabled = false
