package memfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/wgather"
)

// startGatherServer serves a store of nFiles pre-sized files through a
// gathering engine with the given config, returning the service,
// address and handles.
func startGatherServer(t *testing.T, nFiles, fileSize int, cfg wgather.Config) (*Service, string, []nfsproto.FH) {
	t.Helper()
	fs := NewFS()
	fhs := make([]nfsproto.FH, nFiles)
	for i := range fhs {
		fhs[i], _ = fs.Create(RootFH, fmt.Sprintf("w%d", i), make([]byte, fileSize))
	}
	svc := NewServiceGather(fs, nil, nil, cfg)
	srv, err := NewServer("127.0.0.1:0", svc)
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, srv.Addr(), fhs
}

func wpattern(n int, off uint64, seed int) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte((int(off) + j*7 + seed) * 31)
	}
	return b
}

// TestLiveUnstableWriteCommit is the asynchronous write path end to
// end over a real socket: UNSTABLE writes are acknowledged unstable and
// stay off the sink, COMMIT flushes them, and both the page cache and
// the stable image hold the written bytes.
func TestLiveUnstableWriteCommit(t *testing.T) {
	sink := wgather.NewMemSink()
	svc, addr, fhs := startGatherServer(t, 1, 64*1024,
		wgather.Config{Window: time.Minute, Sink: sink})
	c, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const chunk = 8192
	want := make([]byte, 64*1024)
	var verf uint64
	for off := uint64(0); off < 64*1024; off += chunk {
		data := wpattern(chunk, off, 0)
		copy(want[off:], data)
		res, err := c.WriteStable(fhs[0], off, data, nfsproto.WriteUnstable)
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != nfsproto.WriteUnstable {
			t.Fatalf("unstable write acknowledged with stability %d", res.Committed)
		}
		if verf == 0 {
			verf = res.Verf
		} else if res.Verf != verf {
			t.Fatalf("verifier moved mid-stream: %x then %x", verf, res.Verf)
		}
	}
	if got := len(sink.Bytes(uint64(fhs[0]))); got != 0 {
		t.Fatalf("sink holds %d bytes before COMMIT", got)
	}
	cverf, err := c.Commit(fhs[0], 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cverf != verf {
		t.Fatalf("commit verifier %x != write verifier %x on a healthy server", cverf, verf)
	}
	if got := sink.Bytes(uint64(fhs[0])); !bytes.Equal(got[:len(want)], want) {
		t.Fatal("stable image differs from written data after COMMIT")
	}
	// Read-your-writes held throughout: the page cache serves the data
	// even while it was dirty.
	data, _, err := c.Read(fhs[0], 0, chunk)
	if err != nil || !bytes.Equal(data, want[:chunk]) {
		t.Fatalf("read-back mismatch (err %v)", err)
	}
	st := svc.WriteStats()
	if st.WritesUnstable != 8 || st.Commits != 1 {
		t.Fatalf("stats: %d unstable writes, %d commits", st.WritesUnstable, st.Commits)
	}
	if st.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1 coalesced extent for a sequential stream", st.Flushes)
	}
}

// TestLiveDefaultServiceIsWriteThrough pins the legacy configuration:
// NewService (no gather config) answers every write FILE_SYNC — the
// synchronous behaviour the server always had.
func TestLiveDefaultServiceIsWriteThrough(t *testing.T) {
	fs := NewFS()
	fh, _ := fs.Create(RootFH, "f", nil)
	svc := NewService(fs, nil, nil)
	srv, err := NewServer("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); svc.Close() })
	c, err := DialClient("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.WriteStable(fh, 0, []byte("hello"), nfsproto.WriteUnstable)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != nfsproto.WriteFileSync {
		t.Fatalf("default service advertised stability %d, want FILE_SYNC", res.Committed)
	}
	if _, err := c.Commit(fh, 0, 0); err != nil {
		t.Fatalf("COMMIT against the default service: %v", err)
	}
	data, _, err := c.Read(fh, 0, 16)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read-back = %q, %v", data, err)
	}
}

// TestLiveCommitStaleHandle checks COMMIT on an unknown handle answers
// ErrStale rather than inventing state.
func TestLiveCommitStaleHandle(t *testing.T) {
	_, addr, _ := startGatherServer(t, 1, 1024, wgather.Config{Window: time.Minute})
	c, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Commit(nfsproto.FH(9999), 0, 0); err == nil {
		t.Fatal("COMMIT of a stale handle succeeded")
	}
}

// TestWriteBehindRebootRewrite is the verifier-change recovery loop:
// unstable writes buffered server-side are dropped by a simulated
// crash; the client's COMMIT sees the new verifier, re-sends the
// retained writes stable, and the stable image ends complete.
func TestWriteBehindRebootRewrite(t *testing.T) {
	sink := wgather.NewMemSink()
	svc, addr, fhs := startGatherServer(t, 1, 64*1024,
		wgather.Config{Window: time.Minute, Sink: sink})
	c, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const chunk = 8192
	wb := c.NewWriteBehind(fhs[0], 4)
	want := make([]byte, 64*1024)
	for off := uint64(0); off < 64*1024; off += chunk {
		data := wpattern(chunk, off, 3)
		copy(want[off:], data)
		if err := wb.Write(off, data); err != nil {
			t.Fatal(err)
		}
	}
	// Settle every reply (all carry the pre-crash verifier), then crash.
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	if wb.Retained() != 8 {
		t.Fatalf("retained = %d, want 8", wb.Retained())
	}
	svc.Reboot()
	if got := len(sink.Bytes(uint64(fhs[0]))); got != 0 {
		t.Fatalf("sink holds %d bytes the crash should have dropped", got)
	}

	if _, err := wb.Commit(); err != nil {
		t.Fatal(err)
	}
	if wb.Retained() != 0 {
		t.Fatalf("retained = %d after successful commit", wb.Retained())
	}
	got := sink.Bytes(uint64(fhs[0]))
	if len(got) < len(want) || !bytes.Equal(got[:len(want)], want) {
		t.Fatal("stable image incomplete after verifier-change rewrite")
	}
	if svc.WriteStats().Reboots != 1 {
		t.Fatalf("reboots = %d", svc.WriteStats().Reboots)
	}
}

// TestWriteBehindStableVerifierNoRewrite is the healthy-path twin: on a
// server that never reboots, Commit never re-sends.
func TestWriteBehindStableVerifierNoRewrite(t *testing.T) {
	sink := wgather.NewMemSink()
	svc, addr, fhs := startGatherServer(t, 1, 32*1024,
		wgather.Config{Window: time.Minute, Sink: sink})
	c, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wb := c.NewWriteBehind(fhs[0], 4)
	want := make([]byte, 32*1024)
	for off := uint64(0); off < 32*1024; off += 8192 {
		data := wpattern(8192, off, 5)
		copy(want[off:], data)
		if err := wb.Write(off, data); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wb.Commit(); err != nil {
		t.Fatal(err)
	}
	st := svc.WriteStats()
	if st.WritesFileSync != 0 {
		t.Fatalf("healthy commit re-sent %d writes stable", st.WritesFileSync)
	}
	if got := sink.Bytes(uint64(fhs[0])); !bytes.Equal(got[:len(want)], want) {
		t.Fatal("stable image differs after healthy commit")
	}
}

// TestLiveConcurrentUnstableWritersCommit runs many clients writing
// UNSTABLE to their own files concurrently, each committing at the end
// (CI runs this under -race): every reply across every client must
// carry the same write verifier, and every stable image must equal the
// written data.
func TestLiveConcurrentUnstableWritersCommit(t *testing.T) {
	const clients = 8
	const fileSize = 64 * 1024
	const chunk = 8192
	sink := wgather.NewMemSink()
	svc, addr, fhs := startGatherServer(t, clients, fileSize,
		wgather.Config{Window: 2 * time.Millisecond, Sink: sink})

	verfs := make([]uint64, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		network := "udp"
		if i%2 == 0 {
			network = "tcp"
		}
		wg.Add(1)
		go func(i int, network string) {
			defer wg.Done()
			errs <- func() error {
				c, err := DialClient(network, addr)
				if err != nil {
					return err
				}
				defer c.Close()
				var verf uint64
				for off := uint64(0); off < fileSize; off += chunk {
					v, err := c.WriteUnstable(fhs[i], off, wpattern(chunk, off, i))
					if err != nil {
						return fmt.Errorf("client %d: %w", i, err)
					}
					if verf != 0 && v != verf {
						return fmt.Errorf("client %d: verifier moved %x -> %x", i, verf, v)
					}
					verf = v
				}
				cv, err := c.Commit(fhs[i], 0, 0)
				if err != nil {
					return fmt.Errorf("client %d commit: %w", i, err)
				}
				if cv != verf {
					return fmt.Errorf("client %d: commit verifier %x != write verifier %x", i, cv, verf)
				}
				verfs[i] = cv
				return nil
			}()
		}(i, network)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < clients; i++ {
		if verfs[i] != verfs[0] {
			t.Fatalf("clients observed different verifiers: %x vs %x", verfs[i], verfs[0])
		}
	}
	for i := 0; i < clients; i++ {
		want := make([]byte, fileSize)
		for off := uint64(0); off < fileSize; off += chunk {
			copy(want[off:], wpattern(chunk, off, i))
		}
		got := sink.Bytes(uint64(fhs[i]))
		if len(got) < fileSize || !bytes.Equal(got[:fileSize], want) {
			t.Fatalf("client %d: post-commit stable image differs", i)
		}
	}
	st := svc.WriteStats()
	if want := int64(clients * fileSize / chunk); st.WritesUnstable != want {
		t.Fatalf("unstable writes = %d, want %d", st.WritesUnstable, want)
	}
	if st.Commits != clients {
		t.Fatalf("commits = %d, want %d", st.Commits, clients)
	}
}
