// Package memfs is the in-memory storage backend for the live
// (real-socket) NFS server: a hierarchical vfs.Backend holding real
// data bytes with copy-on-write read views, plus the live NFS client
// and its biod-style write-behind pipeline. The protocol work — proc
// dispatch, nfsheur read-ahead heuristics, write gathering, tracing —
// lives in internal/nfsd; the Service/NewService names here are thin
// compatibility wrappers that mount an FS behind that dispatch layer.
package memfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/readahead"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/vfs"
	"nfstricks/internal/wgather"
)

// RootFH is the file handle of the root directory.
const RootFH = vfs.RootFH

// LocalFHBound splits the handle space: ordinary Creates mint handles
// strictly below it, and everything at or above it belongs to external
// placement (the cluster-wide allocator starts here — see
// cluster.fhAllocBase). Keeping the two ranges disjoint is what lets a
// store accept placed handles without its own allocator ever minting a
// colliding one. 2³² local creates exhaust tens of GB of object
// headers long before the counter can reach the bound.
const LocalFHBound nfsproto.FH = 1 << 32

// MaxFileSize bounds a file's length (4 GB); see vfs.MaxFileSize.
const MaxFileSize = vfs.MaxFileSize

// ErrTooBig is returned by Write for offsets or lengths that would grow
// a file past MaxFileSize.
var ErrTooBig = vfs.ErrTooBig

// dirent is one directory entry: the object it names and the readdir
// cookie assigned when it was linked in (see the vfs paging contract).
type dirent struct {
	fh     nfsproto.FH
	cookie uint64
}

// dirState is a directory's namespace: its entries, the monotonic
// cookie allocator, and the cookie verifier (bumped when an entry is
// removed, which is the only mutation that can invalidate an
// in-progress scan's resume cookies).
type dirState struct {
	entries    map[string]dirent
	nextCookie uint64
	verf       uint64
}

// object is one store object. Exactly one of the two roles applies:
// dir == nil makes it a regular file whose contents are data; dir !=
// nil makes it a directory (data stays nil). A file's data is treated
// as an immutable segment: readers receive sub-slice views of it, so a
// write never mutates bytes a view can see — overlapping writes
// copy-on-write to a fresh segment and swap the pointer, and appends
// only ever touch indices at or past the old length, which no view
// covers.
type object struct {
	data []byte
	dir  *dirState
}

func newDir() *object {
	return &object{dir: &dirState{entries: make(map[string]dirent), nextCookie: 1}}
}

// FS is a hierarchical in-memory file store. The root directory exists
// from construction at vfs.RootFH.
type FS struct {
	mu     sync.RWMutex
	objs   map[nfsproto.FH]*object
	nextFH nfsproto.FH
}

// NewFS returns a store holding only an empty root directory.
func NewFS() *FS {
	fs := &FS{
		objs:   make(map[nfsproto.FH]*object),
		nextFH: RootFH + 1,
	}
	fs.objs[RootFH] = newDir()
	return fs
}

// dirAt resolves fh to a directory object (caller holds fs.mu).
func (fs *FS) dirAt(fh nfsproto.FH) (*object, error) {
	o, ok := fs.objs[fh]
	if !ok {
		return nil, fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	if o.dir == nil {
		return nil, fmt.Errorf("%w: %d", vfs.ErrNotDir, fh)
	}
	return o, nil
}

// link adds name→fh to d with a fresh cookie (caller holds fs.mu).
func (fs *FS) link(d *dirState, name string, fh nfsproto.FH) {
	d.entries[name] = dirent{fh: fh, cookie: d.nextCookie}
	d.nextCookie++
}

// unlink removes name from d and bumps the verifier — resume cookies
// issued before the removal may now skip or repeat, so outstanding
// scans must restart (caller holds fs.mu).
func (d *dirState) unlink(name string) {
	delete(d.entries, name)
	d.verf++
}

// Create adds a file under dir with the given contents, replacing any
// previous file of that name, and returns its handle (vfs.Backend).
func (fs *FS) Create(dir nfsproto.FH, name string, data []byte) (nfsproto.FH, error) {
	return fs.install(dir, name, append([]byte(nil), data...))
}

// CreateSized adds a zero-filled file of size bytes (vfs.SizedCreator)
// — one allocation, no payload copy.
func (fs *FS) CreateSized(dir nfsproto.FH, name string, size uint64) (nfsproto.FH, error) {
	return fs.install(dir, name, make([]byte, size))
}

// CreateAt installs a file at a caller-chosen handle, replacing any
// previous file of that name. This is the placement primitive a
// sharded cluster needs: handles come from a cluster-wide allocator
// (so consistent hashing can route them) and must survive migration to
// another store byte-for-byte. Placing a handle below LocalFHBound
// (a shard-local handle arriving by migration) bumps the local counter
// past it so ordinary Creates never collide with it; a handle at or
// above the bound lives in the cluster allocator's reserved range and
// must not drag the local counter up into that range. An existing
// object at fh under a different name is ErrExist.
func (fs *FS) CreateAt(dir nfsproto.FH, name string, fh nfsproto.FH, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.dirAt(dir)
	if err != nil {
		return err
	}
	if old, ok := d.dir.entries[name]; ok {
		if fs.objs[old.fh].dir != nil {
			return fmt.Errorf("%w: %s", vfs.ErrIsDir, name)
		}
		delete(fs.objs, old.fh)
		d.dir.unlink(name)
	}
	if _, taken := fs.objs[fh]; taken {
		return fmt.Errorf("%w: fh %d", vfs.ErrExist, fh)
	}
	if fh < LocalFHBound && fh >= fs.nextFH {
		fs.nextFH = fh + 1
	}
	fs.objs[fh] = &object{data: data}
	fs.link(d.dir, name, fh)
	return nil
}

// install registers a file segment fs now owns as dir/name.
func (fs *FS) install(dir nfsproto.FH, name string, data []byte) (nfsproto.FH, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.dirAt(dir)
	if err != nil {
		return 0, err
	}
	if old, ok := d.dir.entries[name]; ok {
		if fs.objs[old.fh].dir != nil {
			return 0, fmt.Errorf("%w: %s", vfs.ErrIsDir, name)
		}
		delete(fs.objs, old.fh)
		d.dir.unlink(name)
	}
	fh := fs.nextFH
	fs.nextFH++
	fs.objs[fh] = &object{data: data}
	fs.link(d.dir, name, fh)
	return fh, nil
}

// Lookup resolves name under dir (vfs.Backend).
func (fs *FS) Lookup(dir nfsproto.FH, name string) (nfsproto.FH, vfs.Attr, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d, err := fs.dirAt(dir)
	if err != nil {
		return 0, vfs.Attr{}, err
	}
	e, ok := d.dir.entries[name]
	if !ok {
		return 0, vfs.Attr{}, fmt.Errorf("%w: %s", vfs.ErrNoEnt, name)
	}
	return e.fh, fs.objs[e.fh].attr(), nil
}

// attr reports an object's contract attributes (caller holds fs.mu).
func (o *object) attr() vfs.Attr {
	if o.dir != nil {
		return vfs.Attr{Size: int64(len(o.dir.entries)) * vfs.DirEntryBytes, Dir: true}
	}
	return vfs.Attr{Size: int64(len(o.data))}
}

// Mkdir creates an empty directory under dir; an existing entry of
// either kind is ErrExist (vfs.Backend).
func (fs *FS) Mkdir(dir nfsproto.FH, name string) (nfsproto.FH, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.dirAt(dir)
	if err != nil {
		return 0, err
	}
	if _, ok := d.dir.entries[name]; ok {
		return 0, fmt.Errorf("%w: %s", vfs.ErrExist, name)
	}
	fh := fs.nextFH
	fs.nextFH++
	fs.objs[fh] = newDir()
	fs.link(d.dir, name, fh)
	return fh, nil
}

// Readdir returns up to maxEntries entries of dir with cookies
// strictly greater than cookie, ascending (vfs.Backend).
func (fs *FS) Readdir(dir nfsproto.FH, cookie, cookieverf uint64, maxEntries int) (vfs.ReaddirPage, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d, err := fs.dirAt(dir)
	if err != nil {
		return vfs.ReaddirPage{}, err
	}
	if cookie != 0 && cookieverf != d.dir.verf {
		return vfs.ReaddirPage{}, fmt.Errorf("%w: verf %d != %d", vfs.ErrBadCookie, cookieverf, d.dir.verf)
	}
	page := vfs.ReaddirPage{Cookieverf: d.dir.verf}
	for name, e := range d.dir.entries {
		if e.cookie > cookie {
			page.Entries = append(page.Entries, vfs.DirEntry{
				FH: e.fh, Name: name, Cookie: e.cookie, Attr: fs.objs[e.fh].attr()})
		}
	}
	sort.Slice(page.Entries, func(i, j int) bool {
		return page.Entries[i].Cookie < page.Entries[j].Cookie
	})
	if maxEntries > 0 && len(page.Entries) > maxEntries {
		page.Entries = page.Entries[:maxEntries:maxEntries]
	} else {
		page.EOF = true
	}
	return page, nil
}

// Remove unlinks dir/name and returns the removed handle; a directory
// must be empty (vfs.Backend).
func (fs *FS) Remove(dir nfsproto.FH, name string) (nfsproto.FH, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, err := fs.dirAt(dir)
	if err != nil {
		return 0, err
	}
	e, ok := d.dir.entries[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", vfs.ErrNoEnt, name)
	}
	o := fs.objs[e.fh]
	if o.dir != nil && len(o.dir.entries) > 0 {
		return 0, fmt.Errorf("%w: %s", vfs.ErrNotEmpty, name)
	}
	delete(fs.objs, e.fh)
	d.dir.unlink(name)
	return e.fh, nil
}

// Rename moves fromDir/fromName to toDir/toName, atomically replacing
// a file target (vfs.Backend).
func (fs *FS) Rename(fromDir nfsproto.FH, fromName string, toDir nfsproto.FH, toName string) (nfsproto.FH, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, err := fs.dirAt(fromDir)
	if err != nil {
		return 0, err
	}
	td, err := fs.dirAt(toDir)
	if err != nil {
		return 0, err
	}
	src, ok := fd.dir.entries[fromName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", vfs.ErrNoEnt, fromName)
	}
	if fromDir == toDir && fromName == toName {
		return 0, nil // RFC 1813: renaming an entry onto itself succeeds
	}
	srcObj := fs.objs[src.fh]
	if srcObj.dir != nil && fs.inSubtree(src.fh, toDir) {
		return 0, fmt.Errorf("%w: rename dir into own subtree", vfs.ErrInval)
	}
	var replaced nfsproto.FH
	if tgt, ok := td.dir.entries[toName]; ok {
		tgtObj := fs.objs[tgt.fh]
		if tgtObj.dir != nil {
			return 0, fmt.Errorf("%w: %s", vfs.ErrIsDir, toName)
		}
		if srcObj.dir != nil {
			return 0, fmt.Errorf("%w: %s", vfs.ErrNotDir, toName)
		}
		delete(fs.objs, tgt.fh)
		td.dir.unlink(toName)
		replaced = tgt.fh
	}
	fd.dir.unlink(fromName)
	fs.link(td.dir, toName, src.fh)
	return replaced, nil
}

// inSubtree reports whether fh equals root or lies under the directory
// root (caller holds fs.mu). Guard against the cycle a rename of a
// directory into its own subtree would create.
func (fs *FS) inSubtree(root, fh nfsproto.FH) bool {
	if root == fh {
		return true
	}
	o := fs.objs[root]
	if o == nil || o.dir == nil {
		return false
	}
	for _, e := range o.dir.entries {
		if fs.inSubtree(e.fh, fh) {
			return true
		}
	}
	return false
}

// Setattr sets a file's size, truncating or zero-extending
// (vfs.Backend).
func (fs *FS) Setattr(fh nfsproto.FH, size uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	o, ok := fs.objs[fh]
	if !ok {
		return fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	if o.dir != nil {
		return fmt.Errorf("%w: %d", vfs.ErrIsDir, fh)
	}
	if size > MaxFileSize {
		return fmt.Errorf("%w (setattr size=%d)", ErrTooBig, size)
	}
	cur := uint64(len(o.data))
	switch {
	case size < cur:
		// Truncate by reslicing with capped capacity: the dropped bytes
		// stay untouched for outstanding read views, and the cap stops a
		// later in-place append from reviving them.
		o.data = o.data[:size:size]
	case size > cur:
		grown := make([]byte, size)
		copy(grown, o.data)
		o.data = grown
	}
	return nil
}

// Read returns up to count bytes at off from the file. The returned
// slice is a stable read-only view of the file segment, not a copy:
// later Writes never mutate it (copy-on-write), so the only payload
// copy on the READ reply path is the append into the wire buffer.
// Callers must not modify the returned bytes.
func (fs *FS) Read(fh nfsproto.FH, off uint64, count uint32) (data []byte, eof bool, err error) {
	data, _, eof, err = fs.readAt(fh, off, count)
	return data, eof, err
}

// readAt is Read plus the file's current size, fetched under a single
// lock acquisition — the READ hot path needs both.
func (fs *FS) readAt(fh nfsproto.FH, off uint64, count uint32) (data []byte, size uint64, eof bool, err error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.objs[fh]
	if !ok {
		return nil, 0, false, fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	if f.dir != nil {
		return nil, 0, false, fmt.Errorf("%w: %d", vfs.ErrIsDir, fh)
	}
	size = uint64(len(f.data))
	if off >= size {
		return nil, size, true, nil
	}
	end := off + uint64(count)
	if end > size {
		end = size
	}
	// Full slice expression so the view cannot reach the file's spare
	// capacity, which in-place appends are allowed to fill.
	return f.data[off:end:end], size, end == size, nil
}

// Write stores data at off, extending the file as needed. Extension
// capacity is doubled (amortized O(1) appends instead of the quadratic
// exact-size regrow), and any write that touches bytes a Read view
// could see copies to a fresh segment first (see the object type).
func (fs *FS) Write(fh nfsproto.FH, off uint64, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.objs[fh]
	if !ok {
		return fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	if f.dir != nil {
		return fmt.Errorf("%w: %d", vfs.ErrIsDir, fh)
	}
	if off > MaxFileSize || uint64(len(data)) > MaxFileSize-off {
		return fmt.Errorf("%w (off=%d len=%d)", ErrTooBig, off, len(data))
	}
	size := uint64(len(f.data))
	need := off + uint64(len(data))
	if need < size {
		need = size
	}
	if off >= size && need <= uint64(cap(f.data)) {
		// Pure append within capacity: indices >= len were never
		// exposed to a view, so filling them in place is safe.
		grown := f.data[:need]
		clear(grown[size:off])
		copy(grown[off:], data)
		f.data = grown
		return nil
	}
	// Copy-on-write (overlapping write), or append past capacity. Only
	// extensions get the doubled capacity; a pure overwrite stays exact.
	newCap := int(need)
	if doubled := 2 * cap(f.data); need > size && doubled > newCap {
		newCap = doubled
	}
	grown := make([]byte, need, newCap)
	copy(grown, f.data)
	copy(grown[off:], data)
	f.data = grown
	return nil
}

// Size returns an object's length (for a directory, its nominal
// entries × vfs.DirEntryBytes size).
func (fs *FS) Size(fh nfsproto.FH) (int64, bool) {
	a, ok := fs.Getattr(fh)
	return a.Size, ok
}

// The vfs.Backend surface: FS's native methods pre-date the interface;
// the adapters below complete it.

// nominalTotalBytes is the capacity FSSTAT advertises for the
// unbounded in-memory store (1 TB — honest enough for clients that
// divide by it).
const nominalTotalBytes = 1 << 40

// Getattr returns an object's current attributes (vfs.Backend).
func (fs *FS) Getattr(fh nfsproto.FH) (vfs.Attr, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	o, ok := fs.objs[fh]
	if !ok {
		return vfs.Attr{}, false
	}
	return o.attr(), true
}

// Access grants read/modify/extend on files and the directory mask on
// directories (vfs.Backend).
func (fs *FS) Access(fh nfsproto.FH, mask uint32) (uint32, bool) {
	a, ok := fs.Getattr(fh)
	if !ok {
		return 0, false
	}
	if a.Dir {
		return vfs.DirAccess(mask), true
	}
	return vfs.FileAccess(mask), true
}

// ReadAt is the vfs.Backend read: Read plus the file's current size.
// The in-memory store has no prefetch notion, so the read-ahead hint
// is ignored.
func (fs *FS) ReadAt(fh nfsproto.FH, off uint64, count uint32, ahead int) (data []byte, size uint64, eof bool, err error) {
	return fs.readAt(fh, off, count)
}

// WriteAt stores data at off (vfs.Backend).
func (fs *FS) WriteAt(fh nfsproto.FH, off uint64, data []byte) error {
	return fs.Write(fh, off, data)
}

// Commit is a no-op beyond handle validation: the page cache is the
// store, so data is as durable as it ever gets the moment WriteAt
// returns (vfs.Backend).
func (fs *FS) Commit(fh nfsproto.FH, off uint64, count uint32) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if _, ok := fs.objs[fh]; !ok {
		return fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	return nil
}

// Fsstat reports a nominal 1 TB capacity less the bytes in use
// (vfs.Backend).
func (fs *FS) Fsstat() (total, free uint64) {
	fs.mu.RLock()
	var used uint64
	for _, o := range fs.objs {
		used += uint64(len(o.data))
	}
	fs.mu.RUnlock()
	total = nominalTotalBytes
	if used > total {
		return total, 0
	}
	return total, total - used
}

// Service is the live NFS service; it lives in internal/nfsd and is
// aliased here for the packages that grew up against the memfs-hosted
// dispatch.
type Service = nfsd.Service

// ServiceStats counts live-service activity (alias of nfsd.Stats).
type ServiceStats = nfsd.Stats

// NewService mounts fs behind the nfsd dispatch layer. heuristic and
// table may be nil for the live defaults: the paper's SlowDown
// heuristic over a GOMAXPROCS-sharded table (nfsheur.ScaledParams).
// Pass an explicit table with Shards: 1 to reproduce the paper's
// single-table behaviour. The write path is write-through (gather
// window 0); use NewServiceGather to enable the asynchronous write
// pipeline.
func NewService(fs *FS, heuristic readahead.Heuristic, table *nfsheur.Table) *Service {
	return NewServiceGather(fs, heuristic, table, wgather.Config{})
}

// NewServiceGather is NewService with an explicit write-gathering
// configuration (gather window, byte bounds, stable-storage sink). The
// engine's Source is always the wrapped FS — cfg.Source is ignored.
// Close the service to stop the engine's background flusher and flush
// remaining dirty data.
func NewServiceGather(fs *FS, heuristic readahead.Heuristic, table *nfsheur.Table, cfg wgather.Config) *Service {
	return nfsd.New(fs, nfsd.Config{Heuristic: heuristic, Table: table, Gather: cfg})
}

// NewServer binds addr and serves svc over real UDP and TCP sockets.
func NewServer(addr string, svc *Service) (*rpcnet.Server, error) {
	return nfsd.NewServer(addr, svc)
}

// NewServerTap is NewServer with a capture tap observing every served
// RPC (nil tap = NewServer); see nfsd.NewServerTap.
func NewServerTap(addr string, svc *Service, tap rpcnet.Tap) (*rpcnet.Server, error) {
	return nfsd.NewServerTap(addr, svc, tap)
}

// Client is a minimal NFS client over rpcnet for the live service.
// Safe for concurrent use by multiple goroutines: calls issued
// concurrently are pipelined over the one connection (rpcnet.Client
// demultiplexes replies by XID).
type Client struct {
	rpc *rpcnet.Client
	// retry, when non-nil, carries every call through the unified
	// retransmission layer (same-XID retransmits, Jacobson RTO,
	// exponential backoff) instead of single-shot Call.
	retry *rpcnet.Retrier
}

// DialClient connects to a live service at addr over network
// ("udp"/"tcp"). Calls are single-shot: a lost datagram surfaces as
// rpcnet.ErrReplyTimeout after the client timeout. Use DialClientRetry
// for a fault-tolerant path.
func DialClient(network, addr string) (*Client, error) {
	rc, err := rpcnet.Dial(network, addr, nfsproto.Program, nfsproto.Version3)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: rc}, nil
}

// DialClientRetry is DialClient with the unified retry layer on every
// call: retransmission under the same XID (so a server-side duplicate
// request cache recognizes retries), RTT-estimated timeouts,
// exponential backoff and a major timeout after policy.MaxTransmits
// rounds. faults, when non-nil, injects wire faults on this client's
// directions (rpcnet.DialFault).
func DialClientRetry(network, addr string, policy rpcnet.RetryPolicy, faults *rpcnet.FaultInjector) (*Client, error) {
	rc, err := rpcnet.DialFault(network, addr, nfsproto.Program, nfsproto.Version3, faults)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: rc, retry: rc.NewRetrier(policy)}, nil
}

// Retrier exposes the client's retry layer (nil for a plain
// DialClient) — its Stats carry retransmit/major-timeout counts.
func (c *Client) Retrier() *rpcnet.Retrier { return c.retry }

// call routes one RPC through the retry layer when configured.
func (c *Client) call(proc uint32, args []byte) ([]byte, error) {
	if c.retry != nil {
		return c.retry.Call(proc, args)
	}
	return c.rpc.Call(proc, args)
}

// Close releases the transport.
func (c *Client) Close() error { return c.rpc.Close() }

// statusErr wraps a non-OK nfsstat3 so callers can branch on the code
// (errors.Is against the matching vfs sentinel where one exists).
type statusErr struct {
	op     string
	status uint32
}

func (e *statusErr) Error() string {
	return fmt.Sprintf("memfs: %s: status %d", e.op, e.status)
}

func (e *statusErr) Is(target error) bool {
	switch e.status {
	case nfsproto.ErrNoEnt:
		return target == vfs.ErrNoEnt
	case nfsproto.ErrExist:
		return target == vfs.ErrExist
	case nfsproto.ErrNotDir:
		return target == vfs.ErrNotDir
	case nfsproto.ErrIsDir:
		return target == vfs.ErrIsDir
	case nfsproto.ErrNotEmpty:
		return target == vfs.ErrNotEmpty
	case nfsproto.ErrBadCookie:
		return target == vfs.ErrBadCookie
	case nfsproto.ErrStale:
		return target == vfs.ErrStale
	}
	return false
}

func statusError(op string, status uint32) error {
	return &statusErr{op: op, status: status}
}

// Lookup resolves a name under dir and returns the handle and size.
func (c *Client) Lookup(dir nfsproto.FH, name string) (nfsproto.FH, int64, error) {
	body, err := c.call(nfsproto.ProcLookup,
		(&nfsproto.LookupArgs{Dir: dir, Name: name}).Marshal())
	if err != nil {
		return 0, 0, err
	}
	res, err := nfsproto.UnmarshalLookupRes(body)
	if err != nil {
		return 0, 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, 0, statusError(fmt.Sprintf("lookup %q", name), res.Status)
	}
	var size int64
	if res.Attrs != nil {
		size = int64(res.Attrs.Size)
	}
	return res.FH, size, nil
}

// LookupPath resolves a "/"-separated path from the root.
func (c *Client) LookupPath(path string) (nfsproto.FH, int64, error) {
	fh, size := nfsproto.FH(RootFH), int64(0)
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			continue
		}
		var err error
		fh, size, err = c.Lookup(fh, part)
		if err != nil {
			return 0, 0, err
		}
	}
	return fh, size, nil
}

// Read fetches count bytes at off.
func (c *Client) Read(fh nfsproto.FH, off uint64, count uint32) ([]byte, bool, error) {
	body, err := c.call(nfsproto.ProcRead,
		(&nfsproto.ReadArgs{FH: fh, Offset: off, Count: count}).Marshal())
	if err != nil {
		return nil, false, err
	}
	res, err := nfsproto.UnmarshalReadRes(body)
	if err != nil {
		return nil, false, err
	}
	if res.Status != nfsproto.OK {
		return nil, false, statusError("read", res.Status)
	}
	return res.Data, res.EOF, nil
}

// Write stores data at off with FILE_SYNC stability: the data is on
// stable storage when the call returns.
func (c *Client) Write(fh nfsproto.FH, off uint64, data []byte) error {
	_, err := c.WriteStable(fh, off, data, nfsproto.WriteFileSync)
	return err
}

// WriteStable stores data at off with the given stability level and
// returns the full reply (achieved stability, write verifier).
func (c *Client) WriteStable(fh nfsproto.FH, off uint64, data []byte, stable uint32) (*nfsproto.WriteRes, error) {
	body, err := c.call(nfsproto.ProcWrite,
		(&nfsproto.WriteArgs{FH: fh, Offset: off, Count: uint32(len(data)),
			Stable: stable, Data: data}).Marshal())
	if err != nil {
		return nil, err
	}
	res, err := nfsproto.UnmarshalWriteRes(body)
	if err != nil {
		return nil, err
	}
	if res.Status != nfsproto.OK {
		return nil, statusError("write", res.Status)
	}
	return res, nil
}

// WriteUnstable stores data at off with UNSTABLE stability — the
// server may buffer it until a COMMIT — and returns the server's write
// verifier. If a later Commit returns a different verifier, the server
// restarted in between and this write may be lost: re-send it.
func (c *Client) WriteUnstable(fh nfsproto.FH, off uint64, data []byte) (verf uint64, err error) {
	res, err := c.WriteStable(fh, off, data, nfsproto.WriteUnstable)
	if err != nil {
		return 0, err
	}
	return res.Verf, nil
}

// Commit flushes [off, off+count) — or the whole file when count is
// 0 — to stable storage and returns the server's write verifier.
func (c *Client) Commit(fh nfsproto.FH, off uint64, count uint32) (verf uint64, err error) {
	body, err := c.call(nfsproto.ProcCommit,
		(&nfsproto.CommitArgs{FH: fh, Offset: off, Count: count}).Marshal())
	if err != nil {
		return 0, err
	}
	res, err := nfsproto.UnmarshalCommitRes(body)
	if err != nil {
		return 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, statusError("commit", res.Status)
	}
	return res.Verf, nil
}

// Access asks the server which of the mask's ACCESS3 bits it grants
// on fh.
func (c *Client) Access(fh nfsproto.FH, mask uint32) (granted uint32, err error) {
	body, err := c.call(nfsproto.ProcAccess,
		(&nfsproto.AccessArgs{FH: fh, Access: mask}).Marshal())
	if err != nil {
		return 0, err
	}
	res, err := nfsproto.UnmarshalAccessRes(body)
	if err != nil {
		return 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, statusError("access", res.Status)
	}
	return res.Access, nil
}

// Fsstat fetches the server's total and free capacity in bytes.
func (c *Client) Fsstat(fh nfsproto.FH) (total, free uint64, err error) {
	body, err := c.call(nfsproto.ProcFsstat,
		(&nfsproto.FsstatArgs{FH: fh}).Marshal())
	if err != nil {
		return 0, 0, err
	}
	res, err := nfsproto.UnmarshalFsstatRes(body)
	if err != nil {
		return 0, 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, 0, statusError("fsstat", res.Status)
	}
	return res.Tbytes, res.Fbytes, nil
}

// Create makes a zero-filled file of the given size under dir and
// returns its handle.
func (c *Client) Create(dir nfsproto.FH, name string, size uint64) (nfsproto.FH, error) {
	body, err := c.call(nfsproto.ProcCreate,
		(&nfsproto.CreateArgs{Dir: dir, Name: name, Size: size}).Marshal())
	if err != nil {
		return 0, err
	}
	res, err := nfsproto.UnmarshalCreateRes(body)
	if err != nil {
		return 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, statusError(fmt.Sprintf("create %q", name), res.Status)
	}
	return res.FH, nil
}

// Mkdir creates a directory under dir and returns its handle.
func (c *Client) Mkdir(dir nfsproto.FH, name string) (nfsproto.FH, error) {
	body, err := c.call(nfsproto.ProcMkdir,
		(&nfsproto.MkdirArgs{Dir: dir, Name: name}).Marshal())
	if err != nil {
		return 0, err
	}
	res, err := nfsproto.UnmarshalMkdirRes(body)
	if err != nil {
		return 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, statusError(fmt.Sprintf("mkdir %q", name), res.Status)
	}
	return res.FH, nil
}

// Remove unlinks name under dir (a directory must be empty).
func (c *Client) Remove(dir nfsproto.FH, name string) error {
	body, err := c.call(nfsproto.ProcRemove,
		(&nfsproto.RemoveArgs{Dir: dir, Name: name}).Marshal())
	if err != nil {
		return err
	}
	res, err := nfsproto.UnmarshalRemoveRes(body)
	if err != nil {
		return err
	}
	if res.Status != nfsproto.OK {
		return statusError(fmt.Sprintf("remove %q", name), res.Status)
	}
	return nil
}

// Rename moves fromDir/fromName to toDir/toName.
func (c *Client) Rename(fromDir nfsproto.FH, fromName string, toDir nfsproto.FH, toName string) error {
	body, err := c.call(nfsproto.ProcRename,
		(&nfsproto.RenameArgs{FromDir: fromDir, FromName: fromName,
			ToDir: toDir, ToName: toName}).Marshal())
	if err != nil {
		return err
	}
	res, err := nfsproto.UnmarshalRenameRes(body)
	if err != nil {
		return err
	}
	if res.Status != nfsproto.OK {
		return statusError(fmt.Sprintf("rename %q", fromName), res.Status)
	}
	return nil
}

// Setattr sets a file's size (truncate or zero-extend).
func (c *Client) Setattr(fh nfsproto.FH, size uint64) error {
	body, err := c.call(nfsproto.ProcSetattr,
		(&nfsproto.SetattrArgs{FH: fh, Size: size}).Marshal())
	if err != nil {
		return err
	}
	res, err := nfsproto.UnmarshalSetattrRes(body)
	if err != nil {
		return err
	}
	if res.Status != nfsproto.OK {
		return statusError("setattr", res.Status)
	}
	return nil
}

// Getattr fetches an object's attributes.
func (c *Client) Getattr(fh nfsproto.FH) (nfsproto.Fattr, error) {
	body, err := c.call(nfsproto.ProcGetattr,
		(&nfsproto.GetattrArgs{FH: fh}).Marshal())
	if err != nil {
		return nfsproto.Fattr{}, err
	}
	res, err := nfsproto.UnmarshalGetattrRes(body)
	if err != nil {
		return nfsproto.Fattr{}, err
	}
	if res.Status != nfsproto.OK {
		return nfsproto.Fattr{}, statusError("getattr", res.Status)
	}
	return res.Attrs, nil
}

// Readdir fetches one page of dir: entries with cookies greater than
// cookie, valid under cookieverf (0/0 starts a fresh scan). count is
// the reply-size budget in bytes. A stale verifier surfaces as an
// error matching vfs.ErrBadCookie — restart from 0/0.
func (c *Client) Readdir(dir nfsproto.FH, cookie, cookieverf uint64, count uint32) (*nfsproto.ReaddirRes, error) {
	body, err := c.call(nfsproto.ProcReaddir,
		(&nfsproto.ReaddirArgs{Dir: dir, Cookie: cookie, Cookieverf: cookieverf,
			Count: count}).Marshal())
	if err != nil {
		return nil, err
	}
	res, err := nfsproto.UnmarshalReaddirRes(body)
	if err != nil {
		return nil, err
	}
	if res.Status != nfsproto.OK {
		return nil, statusError("readdir", res.Status)
	}
	return res, nil
}

// Readdirplus is Readdir with per-entry attributes and handles.
func (c *Client) Readdirplus(dir nfsproto.FH, cookie, cookieverf uint64, dirCount, maxCount uint32) (*nfsproto.ReaddirplusRes, error) {
	body, err := c.call(nfsproto.ProcReaddirplus,
		(&nfsproto.ReaddirplusArgs{Dir: dir, Cookie: cookie, Cookieverf: cookieverf,
			DirCount: dirCount, MaxCount: maxCount}).Marshal())
	if err != nil {
		return nil, err
	}
	res, err := nfsproto.UnmarshalReaddirplusRes(body)
	if err != nil {
		return nil, err
	}
	if res.Status != nfsproto.OK {
		return nil, statusError("readdirplus", res.Status)
	}
	return res, nil
}

// readdirAllRestarts bounds full-scan restarts after ErrBadCookie in
// ReaddirAll; under sustained concurrent removal a scan could
// otherwise livelock.
const readdirAllRestarts = 8

// ErrReaddirRestarts is returned (wrapped) when ReaddirAll exhausts its
// restart budget: the directory mutated under every attempted scan.
// Callers distinguish this livelock from a transport or protocol
// failure with errors.Is.
var ErrReaddirRestarts = errors.New("memfs: readdir scan restart limit exceeded")

// ReaddirAll pages through dir with the given per-page reply budget
// and returns every entry. If a page resume hits a stale cookie
// verifier (an entry was removed mid-scan) the whole scan restarts
// from cookie 0, a bounded number of times — the RFC 1813 client
// recovery for NFS3ERR_BAD_COOKIE.
func (c *Client) ReaddirAll(dir nfsproto.FH, count uint32) ([]nfsproto.DirEntry, error) {
	var lastErr error
	for attempt := 0; attempt <= readdirAllRestarts; attempt++ {
		var all []nfsproto.DirEntry
		var cookie, verf uint64
		for {
			res, err := c.Readdir(dir, cookie, verf, count)
			if err != nil {
				if errors.Is(err, vfs.ErrBadCookie) {
					lastErr = err
					all = nil
					break // restart from scratch
				}
				return nil, err
			}
			all = append(all, res.Entries...)
			verf = res.Cookieverf
			if len(res.Entries) > 0 {
				cookie = res.Entries[len(res.Entries)-1].Cookie
			}
			if res.EOF {
				return all, nil
			}
			if len(res.Entries) == 0 {
				return nil, fmt.Errorf("memfs: readdir: empty page without EOF")
			}
		}
	}
	return nil, fmt.Errorf("%w: %d restarts: %w",
		ErrReaddirRestarts, readdirAllRestarts, lastErr)
}

// writeBehindTimeout bounds each reply wait inside WriteBehind; an
// expired wait hands the write to the retry layer (see settleOldest),
// so it is a retransmit interval, not a failure deadline.
const writeBehindTimeout = time.Second

// writeBehindPolicy is the retry policy a WriteBehind builds when its
// client has none: the bounds the old private retransmit loop used
// (three retries after the first transmission), expressed through the
// unified layer.
var writeBehindPolicy = rpcnet.RetryPolicy{
	MaxTransmits: 4,
	InitialRTO:   writeBehindTimeout,
}

// WriteBehind is a biod-style write-behind pipeline over one file: it
// issues UNSTABLE writes asynchronously (via the client's Go API, so a
// single goroutine's writes reach the transport in program order),
// keeps at most Window requests in flight, and retains every
// uncommitted write's data until a COMMIT confirms it reached stable
// storage under an unchanged write verifier. If the verifier changes —
// the server restarted and may have dropped buffered writes — Commit
// re-sends the retained writes with FILE_SYNC, exactly the recovery
// RFC 1813 prescribes for the asynchronous write path.
//
// WriteBehind is not safe for concurrent use; it models one writing
// process (the kernel would run one biod pipeline per dirty file).
type WriteBehind struct {
	c      *Client
	fh     nfsproto.FH
	window int
	// retry settles timed-out writes: the client's own retry layer when
	// it has one, else a pipeline-private retrier with the write-behind
	// defaults. WRITE is idempotent, so retransmission is always safe.
	retry *rpcnet.Retrier

	inflight []pendingWrite // issued, reply not yet consumed
	retained []retainedWrite
	verf     uint64
	haveVerf bool
	stale    bool // a reply carried a different verifier
	err      error
}

// pendingWrite is one in-flight UNSTABLE write. data aliases the
// retained copy, so a retransmission needs no further copy.
type pendingWrite struct {
	p    *rpcnet.Pending
	off  uint64
	data []byte
}

// retainedWrite holds a write's data until a COMMIT confirms it.
type retainedWrite struct {
	off  uint64
	data []byte
}

// NewWriteBehind starts a write-behind pipeline on fh with the given
// in-flight window (<= 0 means 8).
func (c *Client) NewWriteBehind(fh nfsproto.FH, window int) *WriteBehind {
	if window <= 0 {
		window = 8
	}
	retry := c.retry
	if retry == nil {
		retry = c.rpc.NewRetrier(writeBehindPolicy)
	}
	return &WriteBehind{c: c, fh: fh, window: window, retry: retry}
}

// Write issues one UNSTABLE write of data at off, blocking only when
// the in-flight window is full (it then settles the oldest reply). The
// data is copied, so the caller may reuse the slice.
func (w *WriteBehind) Write(off uint64, data []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(w.inflight) >= w.window {
		w.settleOldest()
		if w.err != nil {
			return w.err
		}
	}
	kept := append([]byte(nil), data...)
	w.retained = append(w.retained, retainedWrite{off: off, data: kept})
	args := &nfsproto.WriteArgs{FH: w.fh, Offset: off, Count: uint32(len(data)),
		Stable: nfsproto.WriteUnstable, Data: data}
	w.inflight = append(w.inflight, pendingWrite{
		p: w.c.rpc.Go(nfsproto.ProcWrite, args.Marshal()), off: off, data: kept})
	return nil
}

// settleOldest consumes the oldest in-flight reply, recording the
// verifier it carried. A reply wait that times out triggers the
// classic NFS-over-UDP recovery: WRITEs are idempotent, so the write
// is handed to the unified retry layer — same-XID retransmissions with
// backoff until a reply or a major timeout. A dropped request or reply
// datagram costs a retransmit interval, not the pipeline.
func (w *WriteBehind) settleOldest() {
	pw := w.inflight[0]
	w.inflight = w.inflight[1:]
	body, err := pw.p.Wait(writeBehindTimeout)
	if err != nil && errors.Is(err, rpcnet.ErrReplyTimeout) {
		args := &nfsproto.WriteArgs{FH: w.fh, Offset: pw.off,
			Count: uint32(len(pw.data)), Stable: nfsproto.WriteUnstable,
			Data: pw.data}
		body, err = w.retry.Call(nfsproto.ProcWrite, args.Marshal())
	}
	if err != nil {
		w.err = err
		return
	}
	res, err := nfsproto.UnmarshalWriteRes(body)
	if err != nil {
		w.err = err
		return
	}
	if res.Status != nfsproto.OK {
		w.err = fmt.Errorf("memfs: write-behind at %d: status %d", pw.off, res.Status)
		return
	}
	w.observeVerf(res.Verf)
}

// observeVerf folds one reply's verifier into the pipeline's view.
func (w *WriteBehind) observeVerf(verf uint64) {
	if w.haveVerf && verf != w.verf {
		w.stale = true
	}
	w.verf, w.haveVerf = verf, true
}

// Flush settles every in-flight write (without committing).
func (w *WriteBehind) Flush() error {
	for len(w.inflight) > 0 && w.err == nil {
		w.settleOldest()
	}
	return w.err
}

// Commit drains the pipeline, COMMITs the file and verifies the write
// verifier: if any reply (or the COMMIT itself) reported a verifier
// different from the one the retained writes were issued under, the
// server may have dropped them, so they are re-sent with FILE_SYNC
// before returning. On success the retained set is released and the
// server's current verifier returned.
func (w *WriteBehind) Commit() (verf uint64, err error) {
	if err := w.Flush(); err != nil {
		return 0, err
	}
	verf, err = w.c.Commit(w.fh, 0, 0)
	if err != nil {
		return 0, err
	}
	if w.stale || (w.haveVerf && verf != w.verf) {
		// Verifier changed: every uncommitted write may be lost.
		// Re-send stable (no second COMMIT needed) and clear the flag.
		for _, r := range w.retained {
			if _, err := w.c.WriteStable(w.fh, r.off, r.data, nfsproto.WriteFileSync); err != nil {
				return 0, fmt.Errorf("memfs: write-behind rewrite at %d: %w", r.off, err)
			}
		}
		w.stale = false
	}
	w.retained = nil
	w.verf, w.haveVerf = verf, true
	return verf, nil
}

// Retained reports how many writes are held awaiting COMMIT
// confirmation (diagnostics for tests and benchmarks).
func (w *WriteBehind) Retained() int { return len(w.retained) }
