// Package memfs is an in-memory file store with an NFS v3 service
// adapter for the live (real-socket) server. Unlike the simulator it
// carries real data bytes, and its READ path runs the same nfsheur
// table and sequentiality heuristics as the simulated server — so the
// paper's algorithms can be observed over a genuine network transport.
package memfs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/readahead"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/sunrpc"
	"nfstricks/internal/wgather"
)

// RootFH is the file handle of the root directory.
const RootFH nfsproto.FH = 1

// MaxFileSize bounds a file's length (4 GB). Write offsets come off the
// wire, so without this cap a crafted WRITE could demand an absurd
// allocation or overflow offset+len arithmetic into a slice-bounds
// panic.
const MaxFileSize = 1 << 32

// ErrTooBig is returned by Write for offsets or lengths that would grow
// a file past MaxFileSize.
var ErrTooBig = errors.New("memfs: write exceeds max file size")

// file holds one file's contents. data is treated as an immutable
// segment: readers receive sub-slice views of it, so a write never
// mutates bytes a view can see — overlapping writes copy-on-write to a
// fresh segment and swap the pointer, and appends only ever touch
// indices at or past the old length, which no view covers.
type file struct {
	name string
	data []byte
}

// FS is a flat in-memory file store (one root directory).
type FS struct {
	mu     sync.RWMutex
	files  map[string]*file
	byFH   map[nfsproto.FH]*file
	nextFH nfsproto.FH
}

// NewFS returns an empty store.
func NewFS() *FS {
	return &FS{
		files:  make(map[string]*file),
		byFH:   make(map[nfsproto.FH]*file),
		nextFH: RootFH + 1,
	}
}

// Create adds a file with the given contents, replacing any previous
// file of that name, and returns its handle.
func (fs *FS) Create(name string, data []byte) nfsproto.FH {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if old, ok := fs.files[name]; ok {
		for fh, f := range fs.byFH {
			if f == old {
				delete(fs.byFH, fh)
				break
			}
		}
	}
	f := &file{name: name, data: append([]byte(nil), data...)}
	fs.files[name] = f
	fh := fs.nextFH
	fs.nextFH++
	fs.byFH[fh] = f
	return fh
}

// Lookup resolves a name to a handle and size.
func (fs *FS) Lookup(name string) (nfsproto.FH, int64, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, 0, false
	}
	for fh, g := range fs.byFH {
		if g == f {
			return fh, int64(len(f.data)), true
		}
	}
	return 0, 0, false
}

// Read returns up to count bytes at off from the file. The returned
// slice is a stable read-only view of the file segment, not a copy:
// later Writes never mutate it (copy-on-write), so the only payload
// copy on the READ reply path is the append into the wire buffer.
// Callers must not modify the returned bytes.
func (fs *FS) Read(fh nfsproto.FH, off uint64, count uint32) (data []byte, eof bool, err error) {
	data, _, eof, err = fs.readAt(fh, off, count)
	return data, eof, err
}

// readAt is Read plus the file's current size, fetched under a single
// lock acquisition — the READ hot path needs both.
func (fs *FS) readAt(fh nfsproto.FH, off uint64, count uint32) (data []byte, size uint64, eof bool, err error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.byFH[fh]
	if !ok {
		return nil, 0, false, fmt.Errorf("memfs: stale handle %d", fh)
	}
	size = uint64(len(f.data))
	if off >= size {
		return nil, size, true, nil
	}
	end := off + uint64(count)
	if end > size {
		end = size
	}
	// Full slice expression so the view cannot reach the file's spare
	// capacity, which in-place appends are allowed to fill.
	return f.data[off:end:end], size, end == size, nil
}

// Write stores data at off, extending the file as needed. Extension
// capacity is doubled (amortized O(1) appends instead of the quadratic
// exact-size regrow), and any write that touches bytes a Read view
// could see copies to a fresh segment first (see the file type).
func (fs *FS) Write(fh nfsproto.FH, off uint64, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.byFH[fh]
	if !ok {
		return fmt.Errorf("memfs: stale handle %d", fh)
	}
	if off > MaxFileSize || uint64(len(data)) > MaxFileSize-off {
		return fmt.Errorf("%w (off=%d len=%d)", ErrTooBig, off, len(data))
	}
	size := uint64(len(f.data))
	need := off + uint64(len(data))
	if need < size {
		need = size
	}
	if off >= size && need <= uint64(cap(f.data)) {
		// Pure append within capacity: indices >= len were never
		// exposed to a view, so filling them in place is safe.
		grown := f.data[:need]
		clear(grown[size:off])
		copy(grown[off:], data)
		f.data = grown
		return nil
	}
	// Copy-on-write (overlapping write), or append past capacity. Only
	// extensions get the doubled capacity; a pure overwrite stays exact.
	newCap := int(need)
	if doubled := 2 * cap(f.data); need > size && doubled > newCap {
		newCap = doubled
	}
	grown := make([]byte, need, newCap)
	copy(grown, f.data)
	copy(grown[off:], data)
	f.data = grown
	return nil
}

// Size returns a file's length.
func (fs *FS) Size(fh nfsproto.FH) (int64, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.byFH[fh]
	if !ok {
		return 0, false
	}
	return int64(len(f.data)), true
}

// ServiceStats counts live-service activity.
type ServiceStats struct {
	Reads     int64
	BytesRead int64
	// MaxSeqCount is the highest seqcount the heuristic produced — a
	// live view of read-ahead confidence.
	MaxSeqCount int
	// Writes and BytesWritten count served WRITE RPCs (any stability);
	// Commits counts served COMMITs. The per-stability split and the
	// gather/flush accounting live in Service.WriteStats.
	Writes       int64
	BytesWritten int64
	Commits      int64
}

// Service adapts an FS to an rpcnet.Handler speaking the NFS v3 subset,
// running a real nfsheur table + heuristic on the READ path.
//
// Service is safe for concurrent use by multiple goroutines, and its
// hot path holds no global lock: heuristic state is striped across the
// nfsheur table's shards (one forked heuristic per shard, mutated only
// under that shard's lock), counters are atomics, and file data is read
// under the FS's RWMutex read lock only.
type Service struct {
	fs    *FS
	table *nfsheur.Table
	// heur has one heuristic per table shard; heur[i] is only used
	// while shard i's lock is held, which makes stateful heuristics
	// (cursor) race-free without any lock of their own.
	heur []readahead.Heuristic
	// engine is the write-gathering engine every WRITE and COMMIT
	// routes through. The default (gather window 0, NullSink) is
	// write-through: each write is stable before its reply, the
	// behaviour the service had before the engine existed.
	engine *wgather.Engine

	reads        atomic.Int64
	bytesRead    atomic.Int64
	maxSeq       atomic.Int64
	writes       atomic.Int64
	bytesWritten atomic.Int64
	commits      atomic.Int64
	// procs counts served RPCs by procedure number (garbage-args and
	// unknown procedures excluded).
	procs [nfsproto.ProcCommit + 1]atomic.Int64
}

// NewService wraps fs. heuristic and table may be nil for the live
// defaults: the paper's SlowDown heuristic over a GOMAXPROCS-sharded
// table (nfsheur.ScaledParams). Pass an explicit table with Shards: 1
// to reproduce the paper's single-table behaviour. The write path is
// write-through (gather window 0); use NewServiceGather to enable the
// asynchronous write pipeline.
func NewService(fs *FS, heuristic readahead.Heuristic, table *nfsheur.Table) *Service {
	return NewServiceGather(fs, heuristic, table, wgather.Config{})
}

// NewServiceGather is NewService with an explicit write-gathering
// configuration (gather window, byte bounds, stable-storage sink). The
// engine's Source is always the wrapped FS — cfg.Source is ignored.
// Close the service to stop the engine's background flusher and flush
// remaining dirty data.
func NewServiceGather(fs *FS, heuristic readahead.Heuristic, table *nfsheur.Table, cfg wgather.Config) *Service {
	if heuristic == nil {
		heuristic = readahead.SlowDown{}
	}
	if table == nil {
		table = nfsheur.New(nfsheur.ScaledParams())
	}
	cfg.Source = func(fh, off uint64, count uint32) ([]byte, error) {
		data, _, err := fs.Read(nfsproto.FH(fh), off, count)
		return data, err
	}
	engine, err := wgather.New(cfg)
	if err != nil {
		// Source is set above; Config has no other invalid states.
		panic(err)
	}
	// ForkN gives every shard its own instance (or a safely shared
	// one), so the service never races on the caller's heuristic.
	return &Service{fs: fs, table: table,
		heur:   readahead.ForkN(heuristic, table.ShardCount()),
		engine: engine}
}

// Table exposes the service's nfsheur table (for instrumentation).
func (s *Service) Table() *nfsheur.Table { return s.table }

// WriteStats exposes the write-gathering engine's counters: writes by
// stability, commits, sink flushes, bytes gathered vs coalesced vs
// flushed.
func (s *Service) WriteStats() wgather.Stats { return s.engine.Stats() }

// WriteVerifier returns the server's current write verifier.
func (s *Service) WriteVerifier() uint64 { return s.engine.Verifier() }

// Reboot simulates a server crash/restart on the write path: dirty
// uncommitted data is dropped and the write verifier changes, so
// clients holding unstable writes must detect the new verifier and
// re-send (the scenario WriteBehind recovers from).
func (s *Service) Reboot() { s.engine.Reboot() }

// Flush pushes all dirty data to the stable-storage sink without
// changing the verifier (an orderly sync).
func (s *Service) Flush() error { return s.engine.FlushAll() }

// Close stops the gathering engine, flushing remaining dirty data.
func (s *Service) Close() error { return s.engine.Close() }

// ProcCounts returns served-RPC counts indexed by procedure number.
func (s *Service) ProcCounts() []int64 {
	out := make([]int64, len(s.procs))
	for i := range s.procs {
		out[i] = s.procs[i].Load()
	}
	return out
}

// Stats returns a snapshot of the counters. The counters are
// independent atomics (the READ path takes no common lock), so a
// snapshot taken while requests are in flight may be torn by up to a
// request's worth of updates — e.g. Reads incremented before that
// request's bytes land in BytesRead. Quiesce the service for exact
// cross-counter arithmetic.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Reads:        s.reads.Load(),
		BytesRead:    s.bytesRead.Load(),
		MaxSeqCount:  int(s.maxSeq.Load()),
		Writes:       s.writes.Load(),
		BytesWritten: s.bytesWritten.Load(),
		Commits:      s.commits.Load(),
	}
}

// countProc tallies one served RPC for ProcCounts.
func (s *Service) countProc(proc uint32) {
	if proc < uint32(len(s.procs)) {
		s.procs[proc].Add(1)
	}
}

// Handler returns the rpcnet handler for the NFS program. Results are
// appended straight into the server's pooled reply buffer; on the READ
// path the payload is a copy-on-write view of the file segment, so the
// append is the single payload copy between storage and the socket.
func (s *Service) Handler() rpcnet.Handler {
	return func(proc uint32, body []byte, reply []byte) ([]byte, uint32) {
		out, stat := s.dispatch(proc, body, reply)
		if stat == sunrpc.AcceptSuccess {
			// Served RPCs only: garbage args and unknown procedures are
			// rejected above the NFS layer and stay out of ProcCounts.
			s.countProc(proc)
		}
		return out, stat
	}
}

func (s *Service) dispatch(proc uint32, body, reply []byte) ([]byte, uint32) {
	switch proc {
	case nfsproto.ProcNull:
		return reply, sunrpc.AcceptSuccess
	case nfsproto.ProcLookup:
		return s.lookup(body, reply)
	case nfsproto.ProcRead:
		return s.read(body, reply)
	case nfsproto.ProcWrite:
		return s.write(body, reply)
	case nfsproto.ProcCommit:
		return s.commit(body, reply)
	case nfsproto.ProcGetattr:
		return s.getattr(body, reply)
	default:
		return reply, sunrpc.AcceptProcUnavail
	}
}

func (s *Service) lookup(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalLookupArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	if args.Dir != RootFH {
		res := nfsproto.LookupRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	fh, size, ok := s.fs.Lookup(args.Name)
	if !ok {
		res := nfsproto.LookupRes{Status: nfsproto.ErrNoEnt}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	res := nfsproto.LookupRes{
		Status: nfsproto.OK, FH: fh,
		Attrs: &nfsproto.Fattr{Type: nfsproto.TypeReg, Mode: 0644, Nlink: 1,
			Size: uint64(size), Used: uint64(size), FileID: uint64(fh)},
	}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

func (s *Service) read(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalReadArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	if args.Count > nfsproto.MaxData {
		args.Count = nfsproto.MaxData
	}
	if args.FH == 0 {
		// The nfsheur table panics on handle 0; a crafted packet must
		// get a stale-handle error, not crash the server.
		res := nfsproto.ReadRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}

	// The paper's code path: nfsheur lookup + heuristic update. The
	// seqcount would size read-ahead on a disk-backed server; here it
	// is surfaced through stats. Only the handle's shard is locked, so
	// reads of distinct files proceed in parallel.
	var seq int
	s.table.Update(uint64(args.FH), func(shard int, e *nfsheur.Entry, found bool) {
		seq = s.heur[shard].Update(&e.State, args.Offset, uint64(args.Count))
	})
	for {
		cur := s.maxSeq.Load()
		if int64(seq) <= cur || s.maxSeq.CompareAndSwap(cur, int64(seq)) {
			break
		}
	}
	s.reads.Add(1)

	data, size, eof, err := s.fs.readAt(args.FH, args.Offset, args.Count)
	if err != nil {
		res := nfsproto.ReadRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	s.bytesRead.Add(int64(len(data)))
	res := nfsproto.ReadRes{
		Status: nfsproto.OK,
		Attrs: &nfsproto.Fattr{Type: nfsproto.TypeReg, Mode: 0644, Nlink: 1,
			Size: size, Used: size, FileID: uint64(args.FH)},
		Count: uint32(len(data)), EOF: eof, Data: data,
	}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// write applies the data to the page cache (the FS), then routes the
// stability decision through the gathering engine: UNSTABLE writes are
// deferred inside the gather window, DATA_SYNC/FILE_SYNC writes (and
// every write when the window is 0) are flushed to the sink before the
// reply. The reply's Committed reports what the server achieved and
// Verf carries the write verifier clients compare across a COMMIT.
func (s *Service) write(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalWriteArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	if err := s.fs.Write(args.FH, args.Offset, args.Data); err != nil {
		status := uint32(nfsproto.ErrStale)
		if errors.Is(err, ErrTooBig) {
			status = nfsproto.ErrFBig
		}
		res := nfsproto.WriteRes{Status: status}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	committed, werr := s.engine.Write(uint64(args.FH), args.Offset, uint32(len(args.Data)), args.Stable)
	if werr != nil {
		res := nfsproto.WriteRes{Status: nfsproto.ErrIO}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	s.writes.Add(1)
	s.bytesWritten.Add(int64(len(args.Data)))
	size, _ := s.fs.Size(args.FH)
	res := nfsproto.WriteRes{
		Status: nfsproto.OK,
		Attrs: &nfsproto.Fattr{Type: nfsproto.TypeReg, Mode: 0644, Nlink: 1,
			Size: uint64(size), Used: uint64(size), FileID: uint64(args.FH)},
		Count: uint32(len(args.Data)), Committed: committed,
		Verf: s.engine.Verifier(),
	}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// commit serves COMMIT: every dirty extent of the file is flushed to
// the stable-storage sink (the whole file — a server may commit more
// than the requested range, never less), and the reply carries the
// write verifier. Asynchronous flush errors surface here as ErrIO, per
// RFC 1813.
func (s *Service) commit(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalCommitArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	size, ok := s.fs.Size(args.FH)
	if !ok {
		res := nfsproto.CommitRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	verf, cerr := s.engine.Commit(uint64(args.FH))
	if cerr != nil {
		res := nfsproto.CommitRes{Status: nfsproto.ErrIO}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	s.commits.Add(1)
	res := nfsproto.CommitRes{
		Status: nfsproto.OK,
		Attrs: &nfsproto.Fattr{Type: nfsproto.TypeReg, Mode: 0644, Nlink: 1,
			Size: uint64(size), Used: uint64(size), FileID: uint64(args.FH)},
		Verf: verf,
	}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

func (s *Service) getattr(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalGetattrArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	if args.FH == RootFH {
		res := nfsproto.GetattrRes{Status: nfsproto.OK,
			Attrs: nfsproto.Fattr{Type: nfsproto.TypeDir, Mode: 0755, Nlink: 2,
				FileID: uint64(RootFH)}}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	size, ok := s.fs.Size(args.FH)
	if !ok {
		res := nfsproto.GetattrRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	res := nfsproto.GetattrRes{Status: nfsproto.OK,
		Attrs: nfsproto.Fattr{Type: nfsproto.TypeReg, Mode: 0644, Nlink: 1,
			Size: uint64(size), Used: uint64(size), FileID: uint64(args.FH)}}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// NewServer binds addr and serves svc over real UDP and TCP sockets.
func NewServer(addr string, svc *Service) (*rpcnet.Server, error) {
	return NewServerTap(addr, svc, nil)
}

// NewServerTap is NewServer with a capture tap observing every served
// RPC (nil tap = NewServer). Pair it with nfstrace.Capture to record
// live request streams to a .nft trace file:
//
//	w, _ := tracefile.Create("out.nft", time.Now())
//	cap := nfstrace.NewCapture(w)
//	srv, _ := memfs.NewServerTap(addr, svc, cap.Tap)
//
// The tap adds one pointer check per request when nil and one record
// append (no payload copy) when capturing.
func NewServerTap(addr string, svc *Service, tap rpcnet.Tap) (*rpcnet.Server, error) {
	return rpcnet.NewServerTap(addr, nfsproto.Program, nfsproto.Version3, svc.Handler(), tap)
}

// Client is a minimal NFS client over rpcnet for the live service.
// Safe for concurrent use by multiple goroutines: calls issued
// concurrently are pipelined over the one connection (rpcnet.Client
// demultiplexes replies by XID).
type Client struct {
	rpc *rpcnet.Client
}

// DialClient connects to a live service at addr over network
// ("udp"/"tcp").
func DialClient(network, addr string) (*Client, error) {
	rc, err := rpcnet.Dial(network, addr, nfsproto.Program, nfsproto.Version3)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: rc}, nil
}

// Close releases the transport.
func (c *Client) Close() error { return c.rpc.Close() }

// Lookup resolves a name under the root.
func (c *Client) Lookup(name string) (nfsproto.FH, int64, error) {
	body, err := c.rpc.Call(nfsproto.ProcLookup,
		(&nfsproto.LookupArgs{Dir: RootFH, Name: name}).Marshal())
	if err != nil {
		return 0, 0, err
	}
	res, err := nfsproto.UnmarshalLookupRes(body)
	if err != nil {
		return 0, 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, 0, fmt.Errorf("memfs: lookup %q: status %d", name, res.Status)
	}
	var size int64
	if res.Attrs != nil {
		size = int64(res.Attrs.Size)
	}
	return res.FH, size, nil
}

// Read fetches count bytes at off.
func (c *Client) Read(fh nfsproto.FH, off uint64, count uint32) ([]byte, bool, error) {
	body, err := c.rpc.Call(nfsproto.ProcRead,
		(&nfsproto.ReadArgs{FH: fh, Offset: off, Count: count}).Marshal())
	if err != nil {
		return nil, false, err
	}
	res, err := nfsproto.UnmarshalReadRes(body)
	if err != nil {
		return nil, false, err
	}
	if res.Status != nfsproto.OK {
		return nil, false, fmt.Errorf("memfs: read: status %d", res.Status)
	}
	return res.Data, res.EOF, nil
}

// Write stores data at off with FILE_SYNC stability: the data is on
// stable storage when the call returns.
func (c *Client) Write(fh nfsproto.FH, off uint64, data []byte) error {
	_, err := c.WriteStable(fh, off, data, nfsproto.WriteFileSync)
	return err
}

// WriteStable stores data at off with the given stability level and
// returns the full reply (achieved stability, write verifier).
func (c *Client) WriteStable(fh nfsproto.FH, off uint64, data []byte, stable uint32) (*nfsproto.WriteRes, error) {
	body, err := c.rpc.Call(nfsproto.ProcWrite,
		(&nfsproto.WriteArgs{FH: fh, Offset: off, Count: uint32(len(data)),
			Stable: stable, Data: data}).Marshal())
	if err != nil {
		return nil, err
	}
	res, err := nfsproto.UnmarshalWriteRes(body)
	if err != nil {
		return nil, err
	}
	if res.Status != nfsproto.OK {
		return nil, fmt.Errorf("memfs: write: status %d", res.Status)
	}
	return res, nil
}

// WriteUnstable stores data at off with UNSTABLE stability — the
// server may buffer it until a COMMIT — and returns the server's write
// verifier. If a later Commit returns a different verifier, the server
// restarted in between and this write may be lost: re-send it.
func (c *Client) WriteUnstable(fh nfsproto.FH, off uint64, data []byte) (verf uint64, err error) {
	res, err := c.WriteStable(fh, off, data, nfsproto.WriteUnstable)
	if err != nil {
		return 0, err
	}
	return res.Verf, nil
}

// Commit flushes [off, off+count) — or the whole file when count is
// 0 — to stable storage and returns the server's write verifier.
func (c *Client) Commit(fh nfsproto.FH, off uint64, count uint32) (verf uint64, err error) {
	body, err := c.rpc.Call(nfsproto.ProcCommit,
		(&nfsproto.CommitArgs{FH: fh, Offset: off, Count: count}).Marshal())
	if err != nil {
		return 0, err
	}
	res, err := nfsproto.UnmarshalCommitRes(body)
	if err != nil {
		return 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, fmt.Errorf("memfs: commit: status %d", res.Status)
	}
	return res.Verf, nil
}

// writeBehindTimeout bounds each reply wait inside WriteBehind; an
// expired wait triggers a retransmission (see settleOldest), so it is
// deliberately short — a retransmit interval, not a failure deadline.
const writeBehindTimeout = time.Second

// writeBehindRetries bounds retransmissions of one write.
const writeBehindRetries = 3

// WriteBehind is a biod-style write-behind pipeline over one file: it
// issues UNSTABLE writes asynchronously (via the client's Go API, so a
// single goroutine's writes reach the transport in program order),
// keeps at most Window requests in flight, and retains every
// uncommitted write's data until a COMMIT confirms it reached stable
// storage under an unchanged write verifier. If the verifier changes —
// the server restarted and may have dropped buffered writes — Commit
// re-sends the retained writes with FILE_SYNC, exactly the recovery
// RFC 1813 prescribes for the asynchronous write path.
//
// WriteBehind is not safe for concurrent use; it models one writing
// process (the kernel would run one biod pipeline per dirty file).
type WriteBehind struct {
	c      *Client
	fh     nfsproto.FH
	window int

	inflight []pendingWrite // issued, reply not yet consumed
	retained []retainedWrite
	verf     uint64
	haveVerf bool
	stale    bool // a reply carried a different verifier
	err      error
}

// pendingWrite is one in-flight UNSTABLE write. data aliases the
// retained copy, so a retransmission needs no further copy.
type pendingWrite struct {
	p    *rpcnet.Pending
	off  uint64
	data []byte
}

// retainedWrite holds a write's data until a COMMIT confirms it.
type retainedWrite struct {
	off  uint64
	data []byte
}

// NewWriteBehind starts a write-behind pipeline on fh with the given
// in-flight window (<= 0 means 8).
func (c *Client) NewWriteBehind(fh nfsproto.FH, window int) *WriteBehind {
	if window <= 0 {
		window = 8
	}
	return &WriteBehind{c: c, fh: fh, window: window}
}

// Write issues one UNSTABLE write of data at off, blocking only when
// the in-flight window is full (it then settles the oldest reply). The
// data is copied, so the caller may reuse the slice.
func (w *WriteBehind) Write(off uint64, data []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(w.inflight) >= w.window {
		w.settleOldest()
		if w.err != nil {
			return w.err
		}
	}
	kept := append([]byte(nil), data...)
	w.retained = append(w.retained, retainedWrite{off: off, data: kept})
	args := &nfsproto.WriteArgs{FH: w.fh, Offset: off, Count: uint32(len(data)),
		Stable: nfsproto.WriteUnstable, Data: data}
	w.inflight = append(w.inflight, pendingWrite{
		p: w.c.rpc.Go(nfsproto.ProcWrite, args.Marshal()), off: off, data: kept})
	return nil
}

// settleOldest consumes the oldest in-flight reply, recording the
// verifier it carried. A reply wait that times out triggers the
// classic NFS-over-UDP recovery: WRITEs are idempotent, so the write
// is simply retransmitted (synchronously) a bounded number of times —
// a dropped request or reply datagram costs a retransmit interval, not
// the pipeline.
func (w *WriteBehind) settleOldest() {
	pw := w.inflight[0]
	w.inflight = w.inflight[1:]
	body, err := pw.p.Wait(writeBehindTimeout)
	for try := 0; err != nil && errors.Is(err, context.DeadlineExceeded) && try < writeBehindRetries; try++ {
		var res *nfsproto.WriteRes
		res, err = w.c.WriteStable(w.fh, pw.off, pw.data, nfsproto.WriteUnstable)
		if err == nil {
			w.observeVerf(res.Verf)
			return
		}
	}
	if err != nil {
		w.err = err
		return
	}
	res, err := nfsproto.UnmarshalWriteRes(body)
	if err != nil {
		w.err = err
		return
	}
	if res.Status != nfsproto.OK {
		w.err = fmt.Errorf("memfs: write-behind at %d: status %d", pw.off, res.Status)
		return
	}
	w.observeVerf(res.Verf)
}

// observeVerf folds one reply's verifier into the pipeline's view.
func (w *WriteBehind) observeVerf(verf uint64) {
	if w.haveVerf && verf != w.verf {
		w.stale = true
	}
	w.verf, w.haveVerf = verf, true
}

// Flush settles every in-flight write (without committing).
func (w *WriteBehind) Flush() error {
	for len(w.inflight) > 0 && w.err == nil {
		w.settleOldest()
	}
	return w.err
}

// Commit drains the pipeline, COMMITs the file and verifies the write
// verifier: if any reply (or the COMMIT itself) reported a verifier
// different from the one the retained writes were issued under, the
// server may have dropped them, so they are re-sent with FILE_SYNC
// before returning. On success the retained set is released and the
// server's current verifier returned.
func (w *WriteBehind) Commit() (verf uint64, err error) {
	if err := w.Flush(); err != nil {
		return 0, err
	}
	verf, err = w.c.Commit(w.fh, 0, 0)
	if err != nil {
		return 0, err
	}
	if w.stale || (w.haveVerf && verf != w.verf) {
		// Verifier changed: every uncommitted write may be lost.
		// Re-send stable (no second COMMIT needed) and clear the flag.
		for _, r := range w.retained {
			if _, err := w.c.WriteStable(w.fh, r.off, r.data, nfsproto.WriteFileSync); err != nil {
				return 0, fmt.Errorf("memfs: write-behind rewrite at %d: %w", r.off, err)
			}
		}
		w.stale = false
	}
	w.retained = nil
	w.verf, w.haveVerf = verf, true
	return verf, nil
}

// Retained reports how many writes are held awaiting COMMIT
// confirmation (diagnostics for tests and benchmarks).
func (w *WriteBehind) Retained() int { return len(w.retained) }
