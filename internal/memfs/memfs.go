// Package memfs is the in-memory storage backend for the live
// (real-socket) NFS server: a pure vfs.Backend holding real data bytes
// with copy-on-write read views, plus the live NFS client and its
// biod-style write-behind pipeline. The protocol work — proc dispatch,
// nfsheur read-ahead heuristics, write gathering, tracing — lives in
// internal/nfsd; the Service/NewService names here are thin
// compatibility wrappers that mount an FS behind that dispatch layer.
package memfs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/readahead"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/vfs"
	"nfstricks/internal/wgather"
)

// RootFH is the file handle of the root directory.
const RootFH = vfs.RootFH

// MaxFileSize bounds a file's length (4 GB); see vfs.MaxFileSize.
const MaxFileSize = vfs.MaxFileSize

// ErrTooBig is returned by Write for offsets or lengths that would grow
// a file past MaxFileSize.
var ErrTooBig = vfs.ErrTooBig

// file holds one file's contents. data is treated as an immutable
// segment: readers receive sub-slice views of it, so a write never
// mutates bytes a view can see — overlapping writes copy-on-write to a
// fresh segment and swap the pointer, and appends only ever touch
// indices at or past the old length, which no view covers.
type file struct {
	name string
	data []byte
}

// FS is a flat in-memory file store (one root directory).
type FS struct {
	mu     sync.RWMutex
	files  map[string]*file
	byFH   map[nfsproto.FH]*file
	nextFH nfsproto.FH
}

// NewFS returns an empty store.
func NewFS() *FS {
	return &FS{
		files:  make(map[string]*file),
		byFH:   make(map[nfsproto.FH]*file),
		nextFH: RootFH + 1,
	}
}

// Create adds a file with the given contents, replacing any previous
// file of that name, and returns its handle.
func (fs *FS) Create(name string, data []byte) nfsproto.FH {
	return fs.install(name, append([]byte(nil), data...))
}

// CreateSized adds a zero-filled file of size bytes (vfs.SizedCreator)
// — one allocation, no payload copy.
func (fs *FS) CreateSized(name string, size uint64) nfsproto.FH {
	return fs.install(name, make([]byte, size))
}

// install registers a file segment fs now owns under name.
func (fs *FS) install(name string, data []byte) nfsproto.FH {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if old, ok := fs.files[name]; ok {
		for fh, f := range fs.byFH {
			if f == old {
				delete(fs.byFH, fh)
				break
			}
		}
	}
	f := &file{name: name, data: data}
	fs.files[name] = f
	fh := fs.nextFH
	fs.nextFH++
	fs.byFH[fh] = f
	return fh
}

// Lookup resolves a name to a handle and size.
func (fs *FS) Lookup(name string) (nfsproto.FH, int64, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, 0, false
	}
	for fh, g := range fs.byFH {
		if g == f {
			return fh, int64(len(f.data)), true
		}
	}
	return 0, 0, false
}

// Read returns up to count bytes at off from the file. The returned
// slice is a stable read-only view of the file segment, not a copy:
// later Writes never mutate it (copy-on-write), so the only payload
// copy on the READ reply path is the append into the wire buffer.
// Callers must not modify the returned bytes.
func (fs *FS) Read(fh nfsproto.FH, off uint64, count uint32) (data []byte, eof bool, err error) {
	data, _, eof, err = fs.readAt(fh, off, count)
	return data, eof, err
}

// readAt is Read plus the file's current size, fetched under a single
// lock acquisition — the READ hot path needs both.
func (fs *FS) readAt(fh nfsproto.FH, off uint64, count uint32) (data []byte, size uint64, eof bool, err error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.byFH[fh]
	if !ok {
		return nil, 0, false, fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	size = uint64(len(f.data))
	if off >= size {
		return nil, size, true, nil
	}
	end := off + uint64(count)
	if end > size {
		end = size
	}
	// Full slice expression so the view cannot reach the file's spare
	// capacity, which in-place appends are allowed to fill.
	return f.data[off:end:end], size, end == size, nil
}

// Write stores data at off, extending the file as needed. Extension
// capacity is doubled (amortized O(1) appends instead of the quadratic
// exact-size regrow), and any write that touches bytes a Read view
// could see copies to a fresh segment first (see the file type).
func (fs *FS) Write(fh nfsproto.FH, off uint64, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.byFH[fh]
	if !ok {
		return fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	if off > MaxFileSize || uint64(len(data)) > MaxFileSize-off {
		return fmt.Errorf("%w (off=%d len=%d)", ErrTooBig, off, len(data))
	}
	size := uint64(len(f.data))
	need := off + uint64(len(data))
	if need < size {
		need = size
	}
	if off >= size && need <= uint64(cap(f.data)) {
		// Pure append within capacity: indices >= len were never
		// exposed to a view, so filling them in place is safe.
		grown := f.data[:need]
		clear(grown[size:off])
		copy(grown[off:], data)
		f.data = grown
		return nil
	}
	// Copy-on-write (overlapping write), or append past capacity. Only
	// extensions get the doubled capacity; a pure overwrite stays exact.
	newCap := int(need)
	if doubled := 2 * cap(f.data); need > size && doubled > newCap {
		newCap = doubled
	}
	grown := make([]byte, need, newCap)
	copy(grown, f.data)
	copy(grown[off:], data)
	f.data = grown
	return nil
}

// Size returns a file's length.
func (fs *FS) Size(fh nfsproto.FH) (int64, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.byFH[fh]
	if !ok {
		return 0, false
	}
	return int64(len(f.data)), true
}

// The vfs.Backend surface: FS's native methods (Create, Lookup, Read,
// Write, Size) pre-date the interface; the adapters below complete it.

// nominalTotalBytes is the capacity FSSTAT advertises for the
// unbounded in-memory store (1 TB — honest enough for clients that
// divide by it).
const nominalTotalBytes = 1 << 40

// Getattr returns a file's current size (vfs.Backend).
func (fs *FS) Getattr(fh nfsproto.FH) (int64, bool) { return fs.Size(fh) }

// Access grants read/modify/extend on any live handle (vfs.Backend).
func (fs *FS) Access(fh nfsproto.FH, mask uint32) (uint32, bool) {
	if _, ok := fs.Size(fh); !ok {
		return 0, false
	}
	return vfs.FileAccess(mask), true
}

// ReadAt is the vfs.Backend read: Read plus the file's current size.
// The in-memory store has no prefetch notion, so the read-ahead hint
// is ignored.
func (fs *FS) ReadAt(fh nfsproto.FH, off uint64, count uint32, ahead int) (data []byte, size uint64, eof bool, err error) {
	return fs.readAt(fh, off, count)
}

// WriteAt stores data at off (vfs.Backend).
func (fs *FS) WriteAt(fh nfsproto.FH, off uint64, data []byte) error {
	return fs.Write(fh, off, data)
}

// Commit is a no-op beyond handle validation: the page cache is the
// store, so data is as durable as it ever gets the moment WriteAt
// returns (vfs.Backend).
func (fs *FS) Commit(fh nfsproto.FH, off uint64, count uint32) error {
	if _, ok := fs.Size(fh); !ok {
		return fmt.Errorf("%w: %d", vfs.ErrStale, fh)
	}
	return nil
}

// Fsstat reports a nominal 1 TB capacity less the bytes in use
// (vfs.Backend).
func (fs *FS) Fsstat() (total, free uint64) {
	fs.mu.RLock()
	var used uint64
	for _, f := range fs.files {
		used += uint64(len(f.data))
	}
	fs.mu.RUnlock()
	total = nominalTotalBytes
	if used > total {
		return total, 0
	}
	return total, total - used
}

// Service is the live NFS service; it lives in internal/nfsd and is
// aliased here for the packages that grew up against the memfs-hosted
// dispatch.
type Service = nfsd.Service

// ServiceStats counts live-service activity (alias of nfsd.Stats).
type ServiceStats = nfsd.Stats

// NewService mounts fs behind the nfsd dispatch layer. heuristic and
// table may be nil for the live defaults: the paper's SlowDown
// heuristic over a GOMAXPROCS-sharded table (nfsheur.ScaledParams).
// Pass an explicit table with Shards: 1 to reproduce the paper's
// single-table behaviour. The write path is write-through (gather
// window 0); use NewServiceGather to enable the asynchronous write
// pipeline.
func NewService(fs *FS, heuristic readahead.Heuristic, table *nfsheur.Table) *Service {
	return NewServiceGather(fs, heuristic, table, wgather.Config{})
}

// NewServiceGather is NewService with an explicit write-gathering
// configuration (gather window, byte bounds, stable-storage sink). The
// engine's Source is always the wrapped FS — cfg.Source is ignored.
// Close the service to stop the engine's background flusher and flush
// remaining dirty data.
func NewServiceGather(fs *FS, heuristic readahead.Heuristic, table *nfsheur.Table, cfg wgather.Config) *Service {
	return nfsd.New(fs, nfsd.Config{Heuristic: heuristic, Table: table, Gather: cfg})
}

// NewServer binds addr and serves svc over real UDP and TCP sockets.
func NewServer(addr string, svc *Service) (*rpcnet.Server, error) {
	return nfsd.NewServer(addr, svc)
}

// NewServerTap is NewServer with a capture tap observing every served
// RPC (nil tap = NewServer); see nfsd.NewServerTap.
func NewServerTap(addr string, svc *Service, tap rpcnet.Tap) (*rpcnet.Server, error) {
	return nfsd.NewServerTap(addr, svc, tap)
}

// Client is a minimal NFS client over rpcnet for the live service.
// Safe for concurrent use by multiple goroutines: calls issued
// concurrently are pipelined over the one connection (rpcnet.Client
// demultiplexes replies by XID).
type Client struct {
	rpc *rpcnet.Client
}

// DialClient connects to a live service at addr over network
// ("udp"/"tcp").
func DialClient(network, addr string) (*Client, error) {
	rc, err := rpcnet.Dial(network, addr, nfsproto.Program, nfsproto.Version3)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: rc}, nil
}

// Close releases the transport.
func (c *Client) Close() error { return c.rpc.Close() }

// Lookup resolves a name under the root.
func (c *Client) Lookup(name string) (nfsproto.FH, int64, error) {
	body, err := c.rpc.Call(nfsproto.ProcLookup,
		(&nfsproto.LookupArgs{Dir: RootFH, Name: name}).Marshal())
	if err != nil {
		return 0, 0, err
	}
	res, err := nfsproto.UnmarshalLookupRes(body)
	if err != nil {
		return 0, 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, 0, fmt.Errorf("memfs: lookup %q: status %d", name, res.Status)
	}
	var size int64
	if res.Attrs != nil {
		size = int64(res.Attrs.Size)
	}
	return res.FH, size, nil
}

// Read fetches count bytes at off.
func (c *Client) Read(fh nfsproto.FH, off uint64, count uint32) ([]byte, bool, error) {
	body, err := c.rpc.Call(nfsproto.ProcRead,
		(&nfsproto.ReadArgs{FH: fh, Offset: off, Count: count}).Marshal())
	if err != nil {
		return nil, false, err
	}
	res, err := nfsproto.UnmarshalReadRes(body)
	if err != nil {
		return nil, false, err
	}
	if res.Status != nfsproto.OK {
		return nil, false, fmt.Errorf("memfs: read: status %d", res.Status)
	}
	return res.Data, res.EOF, nil
}

// Write stores data at off with FILE_SYNC stability: the data is on
// stable storage when the call returns.
func (c *Client) Write(fh nfsproto.FH, off uint64, data []byte) error {
	_, err := c.WriteStable(fh, off, data, nfsproto.WriteFileSync)
	return err
}

// WriteStable stores data at off with the given stability level and
// returns the full reply (achieved stability, write verifier).
func (c *Client) WriteStable(fh nfsproto.FH, off uint64, data []byte, stable uint32) (*nfsproto.WriteRes, error) {
	body, err := c.rpc.Call(nfsproto.ProcWrite,
		(&nfsproto.WriteArgs{FH: fh, Offset: off, Count: uint32(len(data)),
			Stable: stable, Data: data}).Marshal())
	if err != nil {
		return nil, err
	}
	res, err := nfsproto.UnmarshalWriteRes(body)
	if err != nil {
		return nil, err
	}
	if res.Status != nfsproto.OK {
		return nil, fmt.Errorf("memfs: write: status %d", res.Status)
	}
	return res, nil
}

// WriteUnstable stores data at off with UNSTABLE stability — the
// server may buffer it until a COMMIT — and returns the server's write
// verifier. If a later Commit returns a different verifier, the server
// restarted in between and this write may be lost: re-send it.
func (c *Client) WriteUnstable(fh nfsproto.FH, off uint64, data []byte) (verf uint64, err error) {
	res, err := c.WriteStable(fh, off, data, nfsproto.WriteUnstable)
	if err != nil {
		return 0, err
	}
	return res.Verf, nil
}

// Commit flushes [off, off+count) — or the whole file when count is
// 0 — to stable storage and returns the server's write verifier.
func (c *Client) Commit(fh nfsproto.FH, off uint64, count uint32) (verf uint64, err error) {
	body, err := c.rpc.Call(nfsproto.ProcCommit,
		(&nfsproto.CommitArgs{FH: fh, Offset: off, Count: count}).Marshal())
	if err != nil {
		return 0, err
	}
	res, err := nfsproto.UnmarshalCommitRes(body)
	if err != nil {
		return 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, fmt.Errorf("memfs: commit: status %d", res.Status)
	}
	return res.Verf, nil
}

// Access asks the server which of the mask's ACCESS3 bits it grants
// on fh.
func (c *Client) Access(fh nfsproto.FH, mask uint32) (granted uint32, err error) {
	body, err := c.rpc.Call(nfsproto.ProcAccess,
		(&nfsproto.AccessArgs{FH: fh, Access: mask}).Marshal())
	if err != nil {
		return 0, err
	}
	res, err := nfsproto.UnmarshalAccessRes(body)
	if err != nil {
		return 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, fmt.Errorf("memfs: access: status %d", res.Status)
	}
	return res.Access, nil
}

// Fsstat fetches the server's total and free capacity in bytes.
func (c *Client) Fsstat(fh nfsproto.FH) (total, free uint64, err error) {
	body, err := c.rpc.Call(nfsproto.ProcFsstat,
		(&nfsproto.FsstatArgs{FH: fh}).Marshal())
	if err != nil {
		return 0, 0, err
	}
	res, err := nfsproto.UnmarshalFsstatRes(body)
	if err != nil {
		return 0, 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, 0, fmt.Errorf("memfs: fsstat: status %d", res.Status)
	}
	return res.Tbytes, res.Fbytes, nil
}

// Create makes a zero-filled file of the given size under the root and
// returns its handle.
func (c *Client) Create(name string, size uint64) (nfsproto.FH, error) {
	body, err := c.rpc.Call(nfsproto.ProcCreate,
		(&nfsproto.CreateArgs{Dir: RootFH, Name: name, Size: size}).Marshal())
	if err != nil {
		return 0, err
	}
	res, err := nfsproto.UnmarshalCreateRes(body)
	if err != nil {
		return 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, fmt.Errorf("memfs: create %q: status %d", name, res.Status)
	}
	return res.FH, nil
}

// writeBehindTimeout bounds each reply wait inside WriteBehind; an
// expired wait triggers a retransmission (see settleOldest), so it is
// deliberately short — a retransmit interval, not a failure deadline.
const writeBehindTimeout = time.Second

// writeBehindRetries bounds retransmissions of one write.
const writeBehindRetries = 3

// WriteBehind is a biod-style write-behind pipeline over one file: it
// issues UNSTABLE writes asynchronously (via the client's Go API, so a
// single goroutine's writes reach the transport in program order),
// keeps at most Window requests in flight, and retains every
// uncommitted write's data until a COMMIT confirms it reached stable
// storage under an unchanged write verifier. If the verifier changes —
// the server restarted and may have dropped buffered writes — Commit
// re-sends the retained writes with FILE_SYNC, exactly the recovery
// RFC 1813 prescribes for the asynchronous write path.
//
// WriteBehind is not safe for concurrent use; it models one writing
// process (the kernel would run one biod pipeline per dirty file).
type WriteBehind struct {
	c      *Client
	fh     nfsproto.FH
	window int

	inflight []pendingWrite // issued, reply not yet consumed
	retained []retainedWrite
	verf     uint64
	haveVerf bool
	stale    bool // a reply carried a different verifier
	err      error
}

// pendingWrite is one in-flight UNSTABLE write. data aliases the
// retained copy, so a retransmission needs no further copy.
type pendingWrite struct {
	p    *rpcnet.Pending
	off  uint64
	data []byte
}

// retainedWrite holds a write's data until a COMMIT confirms it.
type retainedWrite struct {
	off  uint64
	data []byte
}

// NewWriteBehind starts a write-behind pipeline on fh with the given
// in-flight window (<= 0 means 8).
func (c *Client) NewWriteBehind(fh nfsproto.FH, window int) *WriteBehind {
	if window <= 0 {
		window = 8
	}
	return &WriteBehind{c: c, fh: fh, window: window}
}

// Write issues one UNSTABLE write of data at off, blocking only when
// the in-flight window is full (it then settles the oldest reply). The
// data is copied, so the caller may reuse the slice.
func (w *WriteBehind) Write(off uint64, data []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(w.inflight) >= w.window {
		w.settleOldest()
		if w.err != nil {
			return w.err
		}
	}
	kept := append([]byte(nil), data...)
	w.retained = append(w.retained, retainedWrite{off: off, data: kept})
	args := &nfsproto.WriteArgs{FH: w.fh, Offset: off, Count: uint32(len(data)),
		Stable: nfsproto.WriteUnstable, Data: data}
	w.inflight = append(w.inflight, pendingWrite{
		p: w.c.rpc.Go(nfsproto.ProcWrite, args.Marshal()), off: off, data: kept})
	return nil
}

// settleOldest consumes the oldest in-flight reply, recording the
// verifier it carried. A reply wait that times out triggers the
// classic NFS-over-UDP recovery: WRITEs are idempotent, so the write
// is simply retransmitted (synchronously) a bounded number of times —
// a dropped request or reply datagram costs a retransmit interval, not
// the pipeline.
func (w *WriteBehind) settleOldest() {
	pw := w.inflight[0]
	w.inflight = w.inflight[1:]
	body, err := pw.p.Wait(writeBehindTimeout)
	for try := 0; err != nil && errors.Is(err, context.DeadlineExceeded) && try < writeBehindRetries; try++ {
		var res *nfsproto.WriteRes
		res, err = w.c.WriteStable(w.fh, pw.off, pw.data, nfsproto.WriteUnstable)
		if err == nil {
			w.observeVerf(res.Verf)
			return
		}
	}
	if err != nil {
		w.err = err
		return
	}
	res, err := nfsproto.UnmarshalWriteRes(body)
	if err != nil {
		w.err = err
		return
	}
	if res.Status != nfsproto.OK {
		w.err = fmt.Errorf("memfs: write-behind at %d: status %d", pw.off, res.Status)
		return
	}
	w.observeVerf(res.Verf)
}

// observeVerf folds one reply's verifier into the pipeline's view.
func (w *WriteBehind) observeVerf(verf uint64) {
	if w.haveVerf && verf != w.verf {
		w.stale = true
	}
	w.verf, w.haveVerf = verf, true
}

// Flush settles every in-flight write (without committing).
func (w *WriteBehind) Flush() error {
	for len(w.inflight) > 0 && w.err == nil {
		w.settleOldest()
	}
	return w.err
}

// Commit drains the pipeline, COMMITs the file and verifies the write
// verifier: if any reply (or the COMMIT itself) reported a verifier
// different from the one the retained writes were issued under, the
// server may have dropped them, so they are re-sent with FILE_SYNC
// before returning. On success the retained set is released and the
// server's current verifier returned.
func (w *WriteBehind) Commit() (verf uint64, err error) {
	if err := w.Flush(); err != nil {
		return 0, err
	}
	verf, err = w.c.Commit(w.fh, 0, 0)
	if err != nil {
		return 0, err
	}
	if w.stale || (w.haveVerf && verf != w.verf) {
		// Verifier changed: every uncommitted write may be lost.
		// Re-send stable (no second COMMIT needed) and clear the flag.
		for _, r := range w.retained {
			if _, err := w.c.WriteStable(w.fh, r.off, r.data, nfsproto.WriteFileSync); err != nil {
				return 0, fmt.Errorf("memfs: write-behind rewrite at %d: %w", r.off, err)
			}
		}
		w.stale = false
	}
	w.retained = nil
	w.verf, w.haveVerf = verf, true
	return verf, nil
}

// Retained reports how many writes are held awaiting COMMIT
// confirmation (diagnostics for tests and benchmarks).
func (w *WriteBehind) Retained() int { return len(w.retained) }
