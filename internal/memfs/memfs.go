// Package memfs is an in-memory file store with an NFS v3 service
// adapter for the live (real-socket) server. Unlike the simulator it
// carries real data bytes, and its READ path runs the same nfsheur
// table and sequentiality heuristics as the simulated server — so the
// paper's algorithms can be observed over a genuine network transport.
package memfs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/readahead"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/sunrpc"
)

// RootFH is the file handle of the root directory.
const RootFH nfsproto.FH = 1

// MaxFileSize bounds a file's length (4 GB). Write offsets come off the
// wire, so without this cap a crafted WRITE could demand an absurd
// allocation or overflow offset+len arithmetic into a slice-bounds
// panic.
const MaxFileSize = 1 << 32

// ErrTooBig is returned by Write for offsets or lengths that would grow
// a file past MaxFileSize.
var ErrTooBig = errors.New("memfs: write exceeds max file size")

// file holds one file's contents. data is treated as an immutable
// segment: readers receive sub-slice views of it, so a write never
// mutates bytes a view can see — overlapping writes copy-on-write to a
// fresh segment and swap the pointer, and appends only ever touch
// indices at or past the old length, which no view covers.
type file struct {
	name string
	data []byte
}

// FS is a flat in-memory file store (one root directory).
type FS struct {
	mu     sync.RWMutex
	files  map[string]*file
	byFH   map[nfsproto.FH]*file
	nextFH nfsproto.FH
}

// NewFS returns an empty store.
func NewFS() *FS {
	return &FS{
		files:  make(map[string]*file),
		byFH:   make(map[nfsproto.FH]*file),
		nextFH: RootFH + 1,
	}
}

// Create adds a file with the given contents, replacing any previous
// file of that name, and returns its handle.
func (fs *FS) Create(name string, data []byte) nfsproto.FH {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if old, ok := fs.files[name]; ok {
		for fh, f := range fs.byFH {
			if f == old {
				delete(fs.byFH, fh)
				break
			}
		}
	}
	f := &file{name: name, data: append([]byte(nil), data...)}
	fs.files[name] = f
	fh := fs.nextFH
	fs.nextFH++
	fs.byFH[fh] = f
	return fh
}

// Lookup resolves a name to a handle and size.
func (fs *FS) Lookup(name string) (nfsproto.FH, int64, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, 0, false
	}
	for fh, g := range fs.byFH {
		if g == f {
			return fh, int64(len(f.data)), true
		}
	}
	return 0, 0, false
}

// Read returns up to count bytes at off from the file. The returned
// slice is a stable read-only view of the file segment, not a copy:
// later Writes never mutate it (copy-on-write), so the only payload
// copy on the READ reply path is the append into the wire buffer.
// Callers must not modify the returned bytes.
func (fs *FS) Read(fh nfsproto.FH, off uint64, count uint32) (data []byte, eof bool, err error) {
	data, _, eof, err = fs.readAt(fh, off, count)
	return data, eof, err
}

// readAt is Read plus the file's current size, fetched under a single
// lock acquisition — the READ hot path needs both.
func (fs *FS) readAt(fh nfsproto.FH, off uint64, count uint32) (data []byte, size uint64, eof bool, err error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.byFH[fh]
	if !ok {
		return nil, 0, false, fmt.Errorf("memfs: stale handle %d", fh)
	}
	size = uint64(len(f.data))
	if off >= size {
		return nil, size, true, nil
	}
	end := off + uint64(count)
	if end > size {
		end = size
	}
	// Full slice expression so the view cannot reach the file's spare
	// capacity, which in-place appends are allowed to fill.
	return f.data[off:end:end], size, end == size, nil
}

// Write stores data at off, extending the file as needed. Extension
// capacity is doubled (amortized O(1) appends instead of the quadratic
// exact-size regrow), and any write that touches bytes a Read view
// could see copies to a fresh segment first (see the file type).
func (fs *FS) Write(fh nfsproto.FH, off uint64, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.byFH[fh]
	if !ok {
		return fmt.Errorf("memfs: stale handle %d", fh)
	}
	if off > MaxFileSize || uint64(len(data)) > MaxFileSize-off {
		return fmt.Errorf("%w (off=%d len=%d)", ErrTooBig, off, len(data))
	}
	size := uint64(len(f.data))
	need := off + uint64(len(data))
	if need < size {
		need = size
	}
	if off >= size && need <= uint64(cap(f.data)) {
		// Pure append within capacity: indices >= len were never
		// exposed to a view, so filling them in place is safe.
		grown := f.data[:need]
		clear(grown[size:off])
		copy(grown[off:], data)
		f.data = grown
		return nil
	}
	// Copy-on-write (overlapping write), or append past capacity. Only
	// extensions get the doubled capacity; a pure overwrite stays exact.
	newCap := int(need)
	if doubled := 2 * cap(f.data); need > size && doubled > newCap {
		newCap = doubled
	}
	grown := make([]byte, need, newCap)
	copy(grown, f.data)
	copy(grown[off:], data)
	f.data = grown
	return nil
}

// Size returns a file's length.
func (fs *FS) Size(fh nfsproto.FH) (int64, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.byFH[fh]
	if !ok {
		return 0, false
	}
	return int64(len(f.data)), true
}

// ServiceStats counts live-service activity.
type ServiceStats struct {
	Reads     int64
	BytesRead int64
	// MaxSeqCount is the highest seqcount the heuristic produced — a
	// live view of read-ahead confidence.
	MaxSeqCount int
}

// Service adapts an FS to an rpcnet.Handler speaking the NFS v3 subset,
// running a real nfsheur table + heuristic on the READ path.
//
// Service is safe for concurrent use by multiple goroutines, and its
// hot path holds no global lock: heuristic state is striped across the
// nfsheur table's shards (one forked heuristic per shard, mutated only
// under that shard's lock), counters are atomics, and file data is read
// under the FS's RWMutex read lock only.
type Service struct {
	fs    *FS
	table *nfsheur.Table
	// heur has one heuristic per table shard; heur[i] is only used
	// while shard i's lock is held, which makes stateful heuristics
	// (cursor) race-free without any lock of their own.
	heur []readahead.Heuristic

	reads     atomic.Int64
	bytesRead atomic.Int64
	maxSeq    atomic.Int64
}

// NewService wraps fs. heuristic and table may be nil for the live
// defaults: the paper's SlowDown heuristic over a GOMAXPROCS-sharded
// table (nfsheur.ScaledParams). Pass an explicit table with Shards: 1
// to reproduce the paper's single-table behaviour.
func NewService(fs *FS, heuristic readahead.Heuristic, table *nfsheur.Table) *Service {
	if heuristic == nil {
		heuristic = readahead.SlowDown{}
	}
	if table == nil {
		table = nfsheur.New(nfsheur.ScaledParams())
	}
	// ForkN gives every shard its own instance (or a safely shared
	// one), so the service never races on the caller's heuristic.
	return &Service{fs: fs, table: table,
		heur: readahead.ForkN(heuristic, table.ShardCount())}
}

// Table exposes the service's nfsheur table (for instrumentation).
func (s *Service) Table() *nfsheur.Table { return s.table }

// Stats returns a snapshot of the counters. The counters are
// independent atomics (the READ path takes no common lock), so a
// snapshot taken while requests are in flight may be torn by up to a
// request's worth of updates — e.g. Reads incremented before that
// request's bytes land in BytesRead. Quiesce the service for exact
// cross-counter arithmetic.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Reads:       s.reads.Load(),
		BytesRead:   s.bytesRead.Load(),
		MaxSeqCount: int(s.maxSeq.Load()),
	}
}

// Handler returns the rpcnet handler for the NFS program. Results are
// appended straight into the server's pooled reply buffer; on the READ
// path the payload is a copy-on-write view of the file segment, so the
// append is the single payload copy between storage and the socket.
func (s *Service) Handler() rpcnet.Handler {
	return func(proc uint32, body []byte, reply []byte) ([]byte, uint32) {
		switch proc {
		case nfsproto.ProcNull:
			return reply, sunrpc.AcceptSuccess
		case nfsproto.ProcLookup:
			return s.lookup(body, reply)
		case nfsproto.ProcRead:
			return s.read(body, reply)
		case nfsproto.ProcWrite:
			return s.write(body, reply)
		case nfsproto.ProcGetattr:
			return s.getattr(body, reply)
		default:
			return reply, sunrpc.AcceptProcUnavail
		}
	}
}

func (s *Service) lookup(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalLookupArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	if args.Dir != RootFH {
		res := nfsproto.LookupRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	fh, size, ok := s.fs.Lookup(args.Name)
	if !ok {
		res := nfsproto.LookupRes{Status: nfsproto.ErrNoEnt}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	res := nfsproto.LookupRes{
		Status: nfsproto.OK, FH: fh,
		Attrs: &nfsproto.Fattr{Type: nfsproto.TypeReg, Mode: 0644, Nlink: 1,
			Size: uint64(size), Used: uint64(size), FileID: uint64(fh)},
	}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

func (s *Service) read(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalReadArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	if args.Count > nfsproto.MaxData {
		args.Count = nfsproto.MaxData
	}
	if args.FH == 0 {
		// The nfsheur table panics on handle 0; a crafted packet must
		// get a stale-handle error, not crash the server.
		res := nfsproto.ReadRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}

	// The paper's code path: nfsheur lookup + heuristic update. The
	// seqcount would size read-ahead on a disk-backed server; here it
	// is surfaced through stats. Only the handle's shard is locked, so
	// reads of distinct files proceed in parallel.
	var seq int
	s.table.Update(uint64(args.FH), func(shard int, e *nfsheur.Entry, found bool) {
		seq = s.heur[shard].Update(&e.State, args.Offset, uint64(args.Count))
	})
	for {
		cur := s.maxSeq.Load()
		if int64(seq) <= cur || s.maxSeq.CompareAndSwap(cur, int64(seq)) {
			break
		}
	}
	s.reads.Add(1)

	data, size, eof, err := s.fs.readAt(args.FH, args.Offset, args.Count)
	if err != nil {
		res := nfsproto.ReadRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	s.bytesRead.Add(int64(len(data)))
	res := nfsproto.ReadRes{
		Status: nfsproto.OK,
		Attrs: &nfsproto.Fattr{Type: nfsproto.TypeReg, Mode: 0644, Nlink: 1,
			Size: size, Used: size, FileID: uint64(args.FH)},
		Count: uint32(len(data)), EOF: eof, Data: data,
	}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

func (s *Service) write(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalWriteArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	if err := s.fs.Write(args.FH, args.Offset, args.Data); err != nil {
		status := uint32(nfsproto.ErrStale)
		if errors.Is(err, ErrTooBig) {
			status = nfsproto.ErrFBig
		}
		res := nfsproto.WriteRes{Status: status}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	size, _ := s.fs.Size(args.FH)
	res := nfsproto.WriteRes{
		Status: nfsproto.OK,
		Attrs: &nfsproto.Fattr{Type: nfsproto.TypeReg, Mode: 0644, Nlink: 1,
			Size: uint64(size), Used: uint64(size), FileID: uint64(args.FH)},
		Count: uint32(len(args.Data)), Committed: args.Stable,
	}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

func (s *Service) getattr(body, reply []byte) ([]byte, uint32) {
	args, err := nfsproto.UnmarshalGetattrArgs(body)
	if err != nil {
		return reply, sunrpc.AcceptGarbageArgs
	}
	if args.FH == RootFH {
		res := nfsproto.GetattrRes{Status: nfsproto.OK,
			Attrs: nfsproto.Fattr{Type: nfsproto.TypeDir, Mode: 0755, Nlink: 2,
				FileID: uint64(RootFH)}}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	size, ok := s.fs.Size(args.FH)
	if !ok {
		res := nfsproto.GetattrRes{Status: nfsproto.ErrStale}
		return res.AppendTo(reply), sunrpc.AcceptSuccess
	}
	res := nfsproto.GetattrRes{Status: nfsproto.OK,
		Attrs: nfsproto.Fattr{Type: nfsproto.TypeReg, Mode: 0644, Nlink: 1,
			Size: uint64(size), Used: uint64(size), FileID: uint64(args.FH)}}
	return res.AppendTo(reply), sunrpc.AcceptSuccess
}

// NewServer binds addr and serves svc over real UDP and TCP sockets.
func NewServer(addr string, svc *Service) (*rpcnet.Server, error) {
	return NewServerTap(addr, svc, nil)
}

// NewServerTap is NewServer with a capture tap observing every served
// RPC (nil tap = NewServer). Pair it with nfstrace.Capture to record
// live request streams to a .nft trace file:
//
//	w, _ := tracefile.Create("out.nft", time.Now())
//	cap := nfstrace.NewCapture(w)
//	srv, _ := memfs.NewServerTap(addr, svc, cap.Tap)
//
// The tap adds one pointer check per request when nil and one record
// append (no payload copy) when capturing.
func NewServerTap(addr string, svc *Service, tap rpcnet.Tap) (*rpcnet.Server, error) {
	return rpcnet.NewServerTap(addr, nfsproto.Program, nfsproto.Version3, svc.Handler(), tap)
}

// Client is a minimal NFS client over rpcnet for the live service.
// Safe for concurrent use by multiple goroutines: calls issued
// concurrently are pipelined over the one connection (rpcnet.Client
// demultiplexes replies by XID).
type Client struct {
	rpc *rpcnet.Client
}

// DialClient connects to a live service at addr over network
// ("udp"/"tcp").
func DialClient(network, addr string) (*Client, error) {
	rc, err := rpcnet.Dial(network, addr, nfsproto.Program, nfsproto.Version3)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: rc}, nil
}

// Close releases the transport.
func (c *Client) Close() error { return c.rpc.Close() }

// Lookup resolves a name under the root.
func (c *Client) Lookup(name string) (nfsproto.FH, int64, error) {
	body, err := c.rpc.Call(nfsproto.ProcLookup,
		(&nfsproto.LookupArgs{Dir: RootFH, Name: name}).Marshal())
	if err != nil {
		return 0, 0, err
	}
	res, err := nfsproto.UnmarshalLookupRes(body)
	if err != nil {
		return 0, 0, err
	}
	if res.Status != nfsproto.OK {
		return 0, 0, fmt.Errorf("memfs: lookup %q: status %d", name, res.Status)
	}
	var size int64
	if res.Attrs != nil {
		size = int64(res.Attrs.Size)
	}
	return res.FH, size, nil
}

// Read fetches count bytes at off.
func (c *Client) Read(fh nfsproto.FH, off uint64, count uint32) ([]byte, bool, error) {
	body, err := c.rpc.Call(nfsproto.ProcRead,
		(&nfsproto.ReadArgs{FH: fh, Offset: off, Count: count}).Marshal())
	if err != nil {
		return nil, false, err
	}
	res, err := nfsproto.UnmarshalReadRes(body)
	if err != nil {
		return nil, false, err
	}
	if res.Status != nfsproto.OK {
		return nil, false, fmt.Errorf("memfs: read: status %d", res.Status)
	}
	return res.Data, res.EOF, nil
}

// Write stores data at off.
func (c *Client) Write(fh nfsproto.FH, off uint64, data []byte) error {
	body, err := c.rpc.Call(nfsproto.ProcWrite,
		(&nfsproto.WriteArgs{FH: fh, Offset: off, Count: uint32(len(data)),
			Stable: nfsproto.WriteFileSync, Data: data}).Marshal())
	if err != nil {
		return err
	}
	res, err := nfsproto.UnmarshalWriteRes(body)
	if err != nil {
		return err
	}
	if res.Status != nfsproto.OK {
		return fmt.Errorf("memfs: write: status %d", res.Status)
	}
	return nil
}
