package memfs_test

import (
	"testing"

	"nfstricks/internal/memfs"
	"nfstricks/internal/vfs"
	"nfstricks/internal/vfs/vfstest"
)

// TestBackendConformance runs the shared vfs.Backend suite against the
// in-memory store — the same contracts zonefs is held to.
func TestBackendConformance(t *testing.T) {
	vfstest.Run(t, func(t *testing.T) vfs.Backend { return memfs.NewFS() })
}
