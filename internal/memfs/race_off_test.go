//go:build !race

package memfs

// raceEnabled reports whether the race detector is instrumenting this
// build.
const raceEnabled = false
