package memfs

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/vfs"
)

// badCookieFS rejects every resumed READDIR page with ErrBadCookie —
// the view of a directory mutating under each and every scan attempt.
type badCookieFS struct {
	*FS
	resumes atomic.Int64
}

func (b *badCookieFS) Readdir(dir nfsproto.FH, cookie, cookieverf uint64, maxEntries int) (vfs.ReaddirPage, error) {
	if cookie != 0 {
		b.resumes.Add(1)
		return vfs.ReaddirPage{}, vfs.ErrBadCookie
	}
	return b.FS.Readdir(dir, cookie, cookieverf, maxEntries)
}

// TestReaddirAllRestartCap: a scan that hits NFS3ERR_BAD_COOKIE on
// every resume must give up after its restart budget with the typed
// ErrReaddirRestarts — not livelock, and not surface as a generic
// transport error. The cause chain keeps the underlying bad-cookie
// failure visible.
func TestReaddirAllRestartCap(t *testing.T) {
	fs := NewFS()
	// Enough entries that a small page budget cannot finish in one page.
	for i := 0; i < 50; i++ {
		fs.Create(RootFH, fmt.Sprintf("f%02d", i), nil)
	}
	backend := &badCookieFS{FS: fs}
	svc := nfsd.New(backend, nfsd.Config{})
	defer svc.Close()
	srv, err := nfsd.NewServer("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialClient("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A budget of ~4 entries per page forces a resume, which always
	// draws BAD_COOKIE here.
	_, err = c.ReaddirAll(RootFH, 4*64)
	if !errors.Is(err, ErrReaddirRestarts) {
		t.Fatalf("err = %v, want ErrReaddirRestarts", err)
	}
	if !errors.Is(err, vfs.ErrBadCookie) {
		t.Fatalf("err = %v, should keep the bad-cookie cause in the chain", err)
	}
	// One rejected resume per attempt: the original plus the budgeted
	// restarts, then stop.
	if got := backend.resumes.Load(); got != readdirAllRestarts+1 {
		t.Fatalf("backend saw %d rejected resumes, want %d (restart cap + original)", got, readdirAllRestarts+1)
	}
}

// TestReaddirAllRecoversWithinBudget: transient mid-scan mutation (a
// bounded number of bad-cookie resumes) still completes the scan.
type flakyCookieFS struct {
	*FS
	failures atomic.Int64
	budget   int64
}

func (b *flakyCookieFS) Readdir(dir nfsproto.FH, cookie, cookieverf uint64, maxEntries int) (vfs.ReaddirPage, error) {
	if cookie != 0 && b.failures.Add(1) <= b.budget {
		return vfs.ReaddirPage{}, vfs.ErrBadCookie
	}
	return b.FS.Readdir(dir, cookie, cookieverf, maxEntries)
}

func TestReaddirAllRecoversWithinBudget(t *testing.T) {
	fs := NewFS()
	for i := 0; i < 50; i++ {
		fs.Create(RootFH, fmt.Sprintf("f%02d", i), nil)
	}
	backend := &flakyCookieFS{FS: fs, budget: 3}
	svc := nfsd.New(backend, nfsd.Config{})
	defer svc.Close()
	srv, err := nfsd.NewServer("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialClient("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	entries, err := c.ReaddirAll(RootFH, 4*64)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 50 {
		t.Fatalf("scan returned %d entries, want 50", len(entries))
	}
}
