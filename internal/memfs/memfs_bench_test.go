package memfs

import (
	"fmt"
	"sync"
	"testing"

	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/readahead"
	"nfstricks/internal/rpcnet"
)

// BenchmarkLiveReadSaturation drives a live loopback server with 8
// concurrent TCP clients (one file each) and sweeps the nfsheur shard
// count: shards=1 is the seed's single-mutex READ path, the others are
// the lock-striped table. One iteration = every client reads its whole
// file in 8 KB blocks. Run as:
//
//	go test -run XXX -bench LiveReadSaturation ./internal/memfs/
func BenchmarkLiveReadSaturation(b *testing.B) {
	const clients = 8
	const fileSize = 1 << 20
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			fs := NewFS()
			payload := make([]byte, fileSize)
			names := make([]string, clients)
			for i := range names {
				names[i] = fmt.Sprintf("f%d", i)
				fs.Create(RootFH, names[i], payload)
			}
			tp := nfsheur.ScaledParams()
			tp.Shards = shards
			svc := NewService(fs, readahead.SlowDown{}, nfsheur.New(tp))
			srv, err := rpcnet.NewServer("127.0.0.1:0", nfsproto.Program, nfsproto.Version3, svc.Handler())
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			cs := make([]*Client, clients)
			fhs := make([]nfsproto.FH, clients)
			for i := range cs {
				c, err := DialClient("tcp", srv.Addr())
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				cs[i] = c
				if fhs[i], _, err = c.Lookup(RootFH, names[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(clients * fileSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make(chan error, clients)
				for j := range cs {
					wg.Add(1)
					go func(c *Client, fh nfsproto.FH) {
						defer wg.Done()
						for off := uint64(0); off < fileSize; off += 8192 {
							if _, _, err := c.Read(fh, off, 8192); err != nil {
								errs <- err
								return
							}
						}
					}(cs[j], fhs[j])
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelinedReadsOneClient measures a single client issuing
// reads from 8 goroutines over one TCP connection — the path that used
// to serialize on the client's one-outstanding-call mutex.
func BenchmarkPipelinedReadsOneClient(b *testing.B) {
	const fileSize = 1 << 20
	fs := NewFS()
	fs.Create(RootFH, "f", make([]byte, fileSize))
	svc := NewService(fs, nil, nil)
	srv, err := rpcnet.NewServer("127.0.0.1:0", nfsproto.Program, nfsproto.Version3, svc.Handler())
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := DialClient("tcp", srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	fh, _, err := c.Lookup(RootFH, "f")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fileSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				span := uint64(fileSize / 8)
				base := uint64(g) * span
				for off := base; off < base+span; off += 8192 {
					if _, _, err := c.Read(fh, off, 8192); err != nil {
						panic(err)
					}
				}
			}(g)
		}
		wg.Wait()
	}
}
