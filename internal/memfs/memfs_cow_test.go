package memfs

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/sunrpc"
)

// TestWriteSemantics pins down Write's observable behaviour across the
// in-place-append and copy-on-write arms: overlap, extension, and
// zero-filled gaps.
func TestWriteSemantics(t *testing.T) {
	fs := NewFS()
	fh, _ := fs.Create(RootFH, "f", []byte("abcdef"))

	// Overlapping overwrite.
	if err := fs.Write(fh, 2, []byte("XY")); err != nil {
		t.Fatal(err)
	}
	got, _, _ := fs.Read(fh, 0, 64)
	if !bytes.Equal(got, []byte("abXYef")) {
		t.Fatalf("after overwrite: %q", got)
	}

	// Append with a gap: the gap must read as zeros.
	if err := fs.Write(fh, 10, []byte("ZZ")); err != nil {
		t.Fatal(err)
	}
	got, eof, _ := fs.Read(fh, 0, 64)
	want := append([]byte("abXYef"), 0, 0, 0, 0, 'Z', 'Z')
	if !bytes.Equal(got, want) || !eof {
		t.Fatalf("after gap append: %q (eof=%v)", got, eof)
	}

	// Straddling write: overlaps the tail and extends.
	if err := fs.Write(fh, 11, []byte("ab")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = fs.Read(fh, 0, 64)
	want = append(want[:11], 'a', 'b')
	if !bytes.Equal(got, want) {
		t.Fatalf("after straddling write: %q", got)
	}
}

// TestWriteAppendAmortized asserts extension uses capacity doubling:
// 256 sequential 1 KB appends must regrow the segment ~log2(256) times,
// not once per write. The exact-size regrow this replaces would cost at
// least one segment allocation per append (≥256 here).
func TestWriteAppendAmortized(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	block := make([]byte, 1024)
	allocs := testing.AllocsPerRun(5, func() {
		fs := NewFS()
		fh, _ := fs.Create(RootFH, "f", nil)
		for i := 0; i < 256; i++ {
			if err := fs.Write(fh, uint64(i)*1024, block); err != nil {
				panic(err)
			}
		}
	})
	if allocs > 100 {
		t.Errorf("256 appends cost %.0f allocations, want amortized (~log n, well under 100)", allocs)
	}
}

// TestWriteHugeOffsetRejected guards the wire boundary: a crafted WRITE
// whose offset overflows offset+len arithmetic (or simply demands an
// absurd file) must come back as ErrFBig, not panic the serving
// goroutine or attempt the allocation.
func TestWriteHugeOffsetRejected(t *testing.T) {
	fs := NewFS()
	fs.Create(RootFH, "f", []byte("data"))
	svc := NewService(fs, nil, nil)
	h := svc.Handler()
	fh, _, _ := fs.Lookup(RootFH, "f")
	for _, off := range []uint64{^uint64(0), ^uint64(0) - 2, 1 << 40, MaxFileSize + 1} {
		body := (&nfsproto.WriteArgs{FH: fh, Offset: off, Count: 4, Data: []byte("boom")}).Marshal()
		out, stat := h(nfsproto.ProcWrite, body, nil)
		if stat != sunrpc.AcceptSuccess {
			t.Fatalf("off=%d: accept stat %d", off, stat)
		}
		res, err := nfsproto.UnmarshalWriteRes(out)
		if err != nil {
			t.Fatalf("off=%d: %v", off, err)
		}
		if res.Status != nfsproto.ErrFBig {
			t.Fatalf("off=%d: status %d, want ErrFBig", off, res.Status)
		}
	}
	// The direct API must refuse too.
	if err := fs.Write(fh, ^uint64(0), []byte("x")); err == nil {
		t.Fatal("FS.Write accepted an overflowing offset")
	}
	if got, _, _ := fs.Read(fh, 0, 64); !bytes.Equal(got, []byte("data")) {
		t.Fatalf("file damaged by rejected writes: %q", got)
	}
}

// TestReadViewStableUnderWrite proves the copy-on-write invariant the
// pooled reply pipeline depends on: a slice returned by Read is never
// mutated by a later Write. Overlapping writes swap in a fresh segment
// and appends only touch indices past every view, so the view's bytes
// stay exactly as read. Run under -race: an in-place mutation would
// also be a data race between the verifying reads below and the writer
// goroutine.
func TestReadViewStableUnderWrite(t *testing.T) {
	fs := NewFS()
	const size = 8192
	fh, _ := fs.Create(RootFH, "f", bytes.Repeat([]byte{0xAA}, size))
	view, eof, err := fs.Read(fh, 0, size)
	if err != nil || !eof || len(view) != size {
		t.Fatalf("Read: len=%d eof=%v err=%v", len(view), eof, err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		block := bytes.Repeat([]byte{0xBB}, 1024)
		for i := 0; i < 300; i++ {
			// Overwrites inside the viewed range, straddling writes, and
			// extensions — none may disturb the view.
			fs.Write(fh, uint64(i*37%size), block)
			fs.Write(fh, uint64(size+i*512), block)
		}
	}()
	for i := 0; i < 300; i++ {
		for j, b := range view {
			if b != 0xAA {
				t.Errorf("view[%d] = %#x after concurrent write, want 0xAA", j, b)
				wg.Wait()
				return
			}
		}
	}
	wg.Wait()
}

// TestLiveReadsConsistentUnderWrites drives a live server with
// concurrent readers and writers over both transports. Each write
// replaces the whole region in one call, so with copy-on-write every
// READ reply must be uniform — a torn reply would mean a pooled reply
// buffer (or the view appended into it) was written after release.
// Run under -race.
func TestLiveReadsConsistentUnderWrites(t *testing.T) {
	const size = 8192
	fs := NewFS()
	fs.Create(RootFH, "f", bytes.Repeat([]byte{0x11}, size))
	svc := NewService(fs, nil, nil)
	srv, err := NewServer("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for _, network := range []string{"udp", "tcp"} {
		writer, err := DialClient(network, srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer writer.Close()
		reader, err := DialClient(network, srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer reader.Close()
		fh, _, err := reader.Lookup(RootFH, "f")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func(c *Client) {
			defer wg.Done()
			fill := byte(0x22)
			for i := 0; i < 100; i++ {
				if err := c.Write(fh, 0, bytes.Repeat([]byte{fill}, size)); err != nil {
					errs <- err
					return
				}
				fill ^= 0x33
			}
		}(writer)
		go func(c *Client) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				data, _, err := c.Read(fh, 0, size)
				if err != nil {
					errs <- err
					return
				}
				for j := 1; j < len(data); j++ {
					if data[j] != data[0] {
						errs <- fmt.Errorf("torn READ reply: data[0]=%#x data[%d]=%#x", data[0], j, data[j])
						return
					}
				}
			}
		}(reader)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestReadReplySingleCopy is the allocation-counting proof of the
// zero-copy reply path: serving a 32 KB READ into a presized reply
// buffer must perform exactly one copy of the payload — the append from
// the file segment into the wire buffer. A second copy anywhere in the
// handler would surface as a payload-sized allocation; the measured
// bytes-per-op bound (a small fraction of the payload) rules that out,
// and the allocs-per-op bound keeps the path free of hidden per-request
// buffers.
func TestReadReplySingleCopy(t *testing.T) {
	fs := NewFS()
	payload := bytes.Repeat([]byte{0x5a}, nfsproto.MaxData)
	fs.Create(RootFH, "f", payload)
	svc := NewService(fs, nil, nil)
	h := svc.Handler()
	fh, _, err := fs.Lookup(RootFH, "f")
	if err != nil {
		t.Fatal(err)
	}
	body := (&nfsproto.ReadArgs{FH: fh, Offset: 0, Count: nfsproto.MaxData}).Marshal()
	reply := make([]byte, 0, 64*1024)

	var out []byte
	var stat uint32
	allocs := testing.AllocsPerRun(200, func() {
		out, stat = h(nfsproto.ProcRead, body, reply)
	})
	if stat != sunrpc.AcceptSuccess {
		t.Fatalf("stat = %d", stat)
	}
	res, err := nfsproto.UnmarshalReadRes(out)
	if err != nil || !bytes.Equal(res.Data, payload) {
		t.Fatalf("reply does not carry the payload (err=%v)", err)
	}
	if raceEnabled {
		// The race detector inflates allocator counters; the content
		// check above is the meaningful part under it.
		return
	}
	if allocs > 6 {
		t.Errorf("READ handler allocates %.1f objects/op, want ≤6 (args/result structs only)", allocs)
	}

	// Byte-level bound: total allocation per op must be a small fraction
	// of the 32 KB payload, proving no payload-sized copy remains.
	const ops = 512
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < ops; i++ {
		h(nfsproto.ProcRead, body, reply)
	}
	runtime.ReadMemStats(&m1)
	perOp := float64(m1.TotalAlloc-m0.TotalAlloc) / ops
	if perOp > float64(nfsproto.MaxData)/8 {
		t.Errorf("READ handler allocates %.0f B/op for a %d B payload — a hidden payload copy", perOp, nfsproto.MaxData)
	}
}
