package memfs

import (
	"bytes"
	"testing"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/readahead"
	"nfstricks/internal/rpcnet"
)

func TestFSCreateLookupRead(t *testing.T) {
	fs := NewFS()
	data := []byte("the quick brown fox")
	fs.Create(RootFH, "f", data)
	fh, attr, err := fs.Lookup(RootFH, "f")
	if err != nil || attr.Size != int64(len(data)) {
		t.Fatalf("lookup: err=%v size=%d", err, attr.Size)
	}
	got, eof, err := fs.Read(fh, 4, 5)
	if err != nil || string(got) != "quick" || eof {
		t.Fatalf("read = %q eof=%v err=%v", got, eof, err)
	}
	got, eof, _ = fs.Read(fh, 10, 100)
	if string(got) != "brown fox" || !eof {
		t.Fatalf("tail read = %q eof=%v", got, eof)
	}
	if _, eof, _ := fs.Read(fh, 1000, 10); !eof {
		t.Fatal("read past EOF not flagged")
	}
}

func TestFSWriteExtends(t *testing.T) {
	fs := NewFS()
	fh, _ := fs.Create(RootFH, "f", []byte("abc"))
	if err := fs.Write(fh, 5, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	got, _, _ := fs.Read(fh, 0, 100)
	want := []byte{'a', 'b', 'c', 0, 0, 'x', 'y', 'z'}
	if !bytes.Equal(got, want) {
		t.Fatalf("after write: %v", got)
	}
}

func TestFSStaleHandle(t *testing.T) {
	fs := NewFS()
	if _, _, err := fs.Read(999, 0, 1); err == nil {
		t.Fatal("stale read succeeded")
	}
	if err := fs.Write(999, 0, []byte("x")); err == nil {
		t.Fatal("stale write succeeded")
	}
}

// startLive spins up a real loopback server and returns its address.
func startLive(t *testing.T) (*Service, string) {
	t.Helper()
	fs := NewFS()
	payload := make([]byte, 256*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	fs.Create(RootFH, "big", payload)
	fs.Create(RootFH, "hello", []byte("hello, world"))
	svc := NewService(fs, nil, nil)
	srv, err := rpcnet.NewServer("127.0.0.1:0", nfsproto.Program, nfsproto.Version3, svc.Handler())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return svc, srv.Addr()
}

func TestLiveServerOverUDPAndTCP(t *testing.T) {
	svc, addr := startLive(t)
	for _, network := range []string{"udp", "tcp"} {
		c, err := DialClient(network, addr)
		if err != nil {
			t.Fatalf("%s: %v", network, err)
		}
		fh, size, err := c.Lookup(RootFH, "hello")
		if err != nil || size != 12 {
			t.Fatalf("%s lookup: size=%d err=%v", network, size, err)
		}
		data, eof, err := c.Read(fh, 0, 64)
		if err != nil || string(data) != "hello, world" || !eof {
			t.Fatalf("%s read = %q eof=%v err=%v", network, data, eof, err)
		}
		c.Close()
	}
	if svc.Stats().Reads != 2 {
		t.Fatalf("service reads = %d", svc.Stats().Reads)
	}
}

func TestLiveSequentialReadBuildsSeqcount(t *testing.T) {
	svc, addr := startLive(t)
	c, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, size, err := c.Lookup(RootFH, "big")
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	const chunk = 8192
	for off := uint64(0); off < uint64(size); off += chunk {
		data, _, err := c.Read(fh, off, chunk)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, data...)
	}
	if len(got) != int(size) {
		t.Fatalf("read %d of %d bytes", len(got), size)
	}
	for i := 0; i < len(got); i += 1013 {
		if got[i] != byte(i*31) {
			t.Fatalf("data corruption at %d", i)
		}
	}
	// A 32-block sequential read must drive the heuristic's confidence up.
	if svc.Stats().MaxSeqCount < 16 {
		t.Fatalf("max seqcount = %d after sequential read", svc.Stats().MaxSeqCount)
	}
}

func TestLiveWriteReadBack(t *testing.T) {
	_, addr := startLive(t)
	c, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, _, err := c.Lookup(RootFH, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(fh, 7, []byte("gopher")); err != nil {
		t.Fatal(err)
	}
	data, _, err := c.Read(fh, 0, 64)
	if err != nil || string(data) != "hello, gopher" {
		t.Fatalf("read back %q err=%v", data, err)
	}
}

func TestLiveLookupMissing(t *testing.T) {
	_, addr := startLive(t)
	c, _ := DialClient("udp", addr)
	defer c.Close()
	if _, _, err := c.Lookup(RootFH, "nope"); err == nil {
		t.Fatal("missing lookup succeeded")
	}
}

// TestLiveZeroHandleRead: a crafted READ with file handle 0 (which the
// nfsheur table panics on) must draw a stale-handle error, not crash
// the server — the server must keep serving afterwards.
func TestLiveZeroHandleRead(t *testing.T) {
	_, addr := startLive(t)
	c, err := DialClient("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Read(0, 0, 8); err == nil {
		t.Fatal("zero-handle read succeeded")
	}
	// The server must still be alive and serving.
	if _, size, err := c.Lookup(RootFH, "hello"); err != nil || size != 12 {
		t.Fatalf("server dead after zero-handle read: size=%d err=%v", size, err)
	}
}

func TestLiveConcurrentClients(t *testing.T) {
	_, addr := startLive(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		network := "tcp"
		if i%2 == 0 {
			network = "udp"
		}
		go func(network string) {
			c, err := DialClient(network, addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			fh, size, err := c.Lookup(RootFH, "big")
			if err != nil {
				done <- err
				return
			}
			total := 0
			for off := uint64(0); off < uint64(size); off += 8192 {
				data, _, err := c.Read(fh, off, 8192)
				if err != nil {
					done <- err
					return
				}
				total += len(data)
			}
			if total != int(size) {
				done <- errShort{total, int(size)}
				return
			}
			done <- nil
		}(network)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errShort struct{ got, want int }

func (e errShort) Error() string { return "short transfer" }

func TestServiceStrideDetectedByCursor(t *testing.T) {
	fs := NewFS()
	payload := make([]byte, 512*1024)
	fs.Create(RootFH, "s", payload)
	svc := NewService(fs, &readahead.CursorHeuristic{}, nil)
	srv, err := rpcnet.NewServer("127.0.0.1:0", nfsproto.Program, nfsproto.Version3, svc.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialClient("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fh, size, err := c.Lookup(RootFH, "s")
	if err != nil {
		t.Fatal(err)
	}
	// 2-stride read: 0, N/2, 1, N/2+1, ...
	half := uint64(size) / 2
	for i := uint64(0); i < half/8192; i++ {
		if _, _, err := c.Read(fh, i*8192, 8192); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Read(fh, half+i*8192, 8192); err != nil {
			t.Fatal(err)
		}
	}
	// The cursor heuristic must have built confidence despite the stride.
	if svc.Stats().MaxSeqCount < 16 {
		t.Fatalf("cursor max seqcount = %d on stride read", svc.Stats().MaxSeqCount)
	}
}

// TestCreateAtAllocatorRanges: placing a cluster-range handle must not
// drag the local allocator into the reserved range (or later local
// Creates would mint handles the cluster-wide allocator also hands
// out), while placing a low handle must still bump the counter past it
// so local Creates never collide with migrated-in files.
func TestCreateAtAllocatorRanges(t *testing.T) {
	fs := NewFS()
	if err := fs.CreateAt(RootFH, "placed", LocalFHBound+7, []byte("p")); err != nil {
		t.Fatal(err)
	}
	fh, err := fs.Create(RootFH, "local", []byte("l"))
	if err != nil {
		t.Fatal(err)
	}
	if fh >= LocalFHBound {
		t.Fatalf("local create minted fh %d inside the placed range (>= %d)", fh, LocalFHBound)
	}

	low := fh + 10
	if err := fs.CreateAt(RootFH, "migrated", low, []byte("m")); err != nil {
		t.Fatal(err)
	}
	next, err := fs.Create(RootFH, "after", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if next != low+1 {
		t.Fatalf("local allocator at %d after placing low handle %d; want %d", next, low, low+1)
	}
}
