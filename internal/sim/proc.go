package sim

import "time"

// errKilled unwinds a process goroutine during Kernel.Shutdown.
type killedError struct{}

func (killedError) Error() string { return "sim: process killed" }

var errKilled = killedError{}

// Proc is a simulated process: a goroutine that runs only when the kernel
// hands it control and yields whenever it blocks on a kernel primitive.
// All Proc methods must be called from the process's own goroutine.
type Proc struct {
	k       *Kernel
	name    string
	resume  chan struct{}
	blocked bool
	killed  bool
	started bool
}

// Go spawns a process named name running fn. The process starts at the
// current virtual time (after already-scheduled events at this instant).
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{}), blocked: true}
	k.procs[p] = struct{}{}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedError); !ok {
					// Real bug in simulation code: surface it loudly.
					delete(k.procs, p)
					k.parked <- struct{}{}
					panic(r)
				}
			}
			delete(k.procs, p)
			k.parked <- struct{}{}
		}()
		<-p.resume
		if p.killed {
			panic(errKilled)
		}
		p.started = true
		fn(p)
	}()
	k.Schedule(0, func() {
		if _, live := k.procs[p]; live {
			k.transfer(p)
		}
	})
	return p
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.Now() }

// park yields control to the kernel until some primitive wakes this
// process. It is the single blocking point for all process primitives.
func (p *Proc) park() {
	if p.k.running != p {
		panic("sim: blocking call from outside the running process (" + p.name + ")")
	}
	p.blocked = true
	p.k.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errKilled)
	}
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.k.Schedule(d, func() { p.k.transfer(p) })
	p.park()
}

// Yield lets every other event scheduled for the current instant run
// before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }
