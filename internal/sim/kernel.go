// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel advances virtual time by draining a (time, sequence)-ordered
// event heap. Simulated activities can be expressed either as plain event
// callbacks or as processes: goroutines that run cooperatively, with the
// guarantee that at any instant exactly one goroutine (the kernel or a
// single process) is executing. All randomness is drawn from a single
// seeded source, so runs with equal seeds are bit-for-bit identical.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Kernel is a discrete-event simulation executive.
//
// A Kernel must be used from a single OS-level flow of control: the
// goroutine that calls Run and the process goroutines it hands control to
// never run concurrently.
type Kernel struct {
	now    int64 // virtual time in nanoseconds
	seq    int64 // tiebreaker for events scheduled at the same instant
	events eventHeap
	rng    *rand.Rand

	running *Proc         // process currently executing, nil if kernel
	parked  chan struct{} // process -> kernel: "I have blocked or exited"
	procs   map[*Proc]struct{}

	eventsRun int64
}

// NewKernel returns a kernel whose random source is seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(chan struct{}),
		procs:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time since the start of the run.
func (k *Kernel) Now() time.Duration { return time.Duration(k.now) }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// EventsRun reports the number of events executed so far; useful for
// runaway detection in tests.
func (k *Kernel) EventsRun() int64 { return k.eventsRun }

// Schedule arranges for fn to run at Now()+delay on the kernel goroutine.
// fn must not block; use Go for blocking activities. Negative delays are
// treated as zero. Schedule may be called from event callbacks and from
// running processes.
func (k *Kernel) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	k.seq++
	heap.Push(&k.events, &event{at: k.now + int64(delay), seq: k.seq, fn: fn})
}

// Run drains the event heap, advancing virtual time, until no events
// remain. Processes blocked on synchronization primitives when the heap
// drains simply remain blocked; call Shutdown to reap them.
func (k *Kernel) Run() {
	k.RunUntil(-1)
}

// RunUntil processes events with timestamps <= limit (a duration from the
// start of the run). A negative limit means "run until the heap drains".
// On return with a non-negative limit, Now() == limit.
func (k *Kernel) RunUntil(limit time.Duration) {
	for len(k.events) > 0 {
		ev := k.events[0]
		if limit >= 0 && ev.at > int64(limit) {
			break
		}
		heap.Pop(&k.events)
		if ev.at > k.now {
			k.now = ev.at
		}
		k.eventsRun++
		ev.fn()
	}
	if limit >= 0 && k.now < int64(limit) {
		k.now = int64(limit)
	}
}

// Idle reports whether the event heap is empty.
func (k *Kernel) Idle() bool { return len(k.events) == 0 }

// Shutdown kills every live process. Processes blocked in a kernel
// primitive unwind via an internal panic recovered by the kernel; the
// goroutines exit. Shutdown must be called after Run returns (never from
// inside an event or process).
func (k *Kernel) Shutdown() {
	if k.running != nil {
		panic("sim: Shutdown called from inside the simulation")
	}
	for p := range k.procs {
		p.killed = true
		if !p.started {
			// Never entered its body; release it so the wrapper exits.
			p.resume <- struct{}{}
			<-k.parked
			continue
		}
		if p.blocked {
			p.resume <- struct{}{}
			<-k.parked
		}
	}
	if len(k.procs) != 0 {
		panic(fmt.Sprintf("sim: %d processes survived shutdown", len(k.procs)))
	}
}

// transfer hands control to p until it blocks or exits.
func (k *Kernel) transfer(p *Proc) {
	prev := k.running
	k.running = p
	p.blocked = false
	p.resume <- struct{}{}
	<-k.parked
	k.running = prev
}

// wake schedules p to resume at the current instant. Each blocked process
// must be woken exactly once per block; primitives enforce this by owning
// their wait queues.
func (k *Kernel) wake(p *Proc) {
	k.Schedule(0, func() { k.transfer(p) })
}

type event struct {
	at  int64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
