package sim

import (
	"math"
	"time"
)

// CPU models a single processor under processor-sharing (round-robin with
// an infinitesimal quantum): n runnable jobs each progress at rate 1/n.
// Background load (e.g. the paper's four "infinite loop" processes on the
// busy client) is modelled as a fixed number of permanently runnable jobs
// that consume shares without ever finishing.
type CPU struct {
	k          *Kernel
	background int
	jobs       map[*cpuJob]struct{}
	lastUpdate int64 // virtual ns of the last remaining-work update
	gen        int64 // invalidates stale completion events
}

type cpuJob struct {
	remaining float64 // pure service time still owed, in ns
	done      *Event
}

// NewCPU returns an idle CPU bound to k.
func NewCPU(k *Kernel) *CPU {
	return &CPU{k: k, jobs: make(map[*cpuJob]struct{})}
}

// SetBackground sets the number of permanently-runnable background jobs
// competing for the processor.
func (c *CPU) SetBackground(n int) {
	if n < 0 {
		n = 0
	}
	c.advance()
	c.background = n
	c.reschedule()
}

// Background returns the configured background job count.
func (c *CPU) Background() int { return c.background }

// Load reports the number of currently runnable jobs, including
// background load.
func (c *CPU) Load() int { return len(c.jobs) + c.background }

// Use consumes d of pure CPU service on behalf of p, blocking p until the
// work completes. Under load the wall-clock (virtual) time taken is
// d * (number of concurrent jobs).
func (c *CPU) Use(p *Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	ev := c.Submit(d)
	ev.Wait(p)
}

// Submit enqueues d of CPU work without blocking and returns an Event
// that fires on completion. Useful from event callbacks.
func (c *CPU) Submit(d time.Duration) *Event {
	ev := NewEvent(c.k)
	if d <= 0 {
		ev.Fire()
		return ev
	}
	c.advance()
	j := &cpuJob{remaining: float64(d), done: ev}
	c.jobs[j] = struct{}{}
	c.reschedule()
	return ev
}

// advance charges elapsed wall time against every active job's remaining
// service requirement.
func (c *CPU) advance() {
	now := int64(c.k.Now())
	elapsed := now - c.lastUpdate
	c.lastUpdate = now
	if elapsed <= 0 || len(c.jobs) == 0 {
		return
	}
	rate := 1.0 / float64(len(c.jobs)+c.background)
	served := float64(elapsed) * rate
	for j := range c.jobs {
		j.remaining -= served
	}
}

// reschedule completes any finished jobs and schedules an event for the
// next completion instant.
func (c *CPU) reschedule() {
	const eps = 0.5 // half a nanosecond of service

	for j := range c.jobs {
		if j.remaining <= eps {
			delete(c.jobs, j)
			j.done.Fire()
		}
	}
	if len(c.jobs) == 0 {
		return
	}
	minRemaining := math.Inf(1)
	for j := range c.jobs {
		if j.remaining < minRemaining {
			minRemaining = j.remaining
		}
	}
	wall := minRemaining * float64(len(c.jobs)+c.background)
	if wall < 1 {
		wall = 1
	}
	c.gen++
	gen := c.gen
	c.k.Schedule(time.Duration(math.Ceil(wall)), func() {
		if gen != c.gen {
			return // superseded by a later arrival/departure
		}
		c.advance()
		c.reschedule()
	})
}
