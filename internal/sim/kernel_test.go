package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	k.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	k.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if k.Now() != 3*time.Millisecond {
		t.Fatalf("final time = %v, want 3ms", k.Now())
	}
}

func TestScheduleSameInstantFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if i != v {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestScheduleNegativeDelayClamped(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.Schedule(-time.Second, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if k.Now() != 0 {
		t.Fatalf("time went backwards or forwards: %v", k.Now())
	}
}

func TestNestedSchedule(t *testing.T) {
	k := NewKernel(1)
	var at []time.Duration
	k.Schedule(time.Millisecond, func() {
		k.Schedule(time.Millisecond, func() { at = append(at, k.Now()) })
	})
	k.Run()
	if len(at) != 1 || at[0] != 2*time.Millisecond {
		t.Fatalf("nested event at %v, want [2ms]", at)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 9 * time.Millisecond} {
		d := d
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(5 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want first two", fired)
	}
	if k.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v after RunUntil(5ms)", k.Now())
	}
	k.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining event never ran: %v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	k := NewKernel(1)
	k.RunUntil(time.Second)
	if k.Now() != time.Second {
		t.Fatalf("idle RunUntil left clock at %v", k.Now())
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel(1)
	var woke time.Duration
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		woke = p.Now()
	})
	k.Run()
	if woke != 7*time.Millisecond {
		t.Fatalf("woke at %v, want 7ms", woke)
	}
}

func TestProcInterleaving(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Go("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(2 * time.Millisecond)
		order = append(order, "a2")
	})
	k.Go("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(1 * time.Millisecond)
		order = append(order, "b1")
	})
	k.Run()
	want := []string{"a0", "b0", "b1", "a2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestChanSendRecv(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[int](k)
	var got []int
	k.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			ch.Send(i)
			p.Sleep(time.Millisecond)
		}
	})
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, ch.Recv(p))
		}
	})
	k.Run()
	k.Shutdown()
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestChanBlockingRecvWakesInFIFOOrder(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[int](k)
	var order []string
	k.Go("r1", func(p *Proc) { ch.Recv(p); order = append(order, "r1") })
	k.Go("r2", func(p *Proc) { ch.Recv(p); order = append(order, "r2") })
	k.Go("sender", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ch.Send(1)
		ch.Send(2)
	})
	k.Run()
	k.Shutdown()
	if len(order) != 2 || order[0] != "r1" || order[1] != "r2" {
		t.Fatalf("wake order = %v", order)
	}
}

func TestChanTryRecv(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[string](k)
	if _, ok := ch.TryRecv(); ok {
		t.Fatal("TryRecv on empty chan succeeded")
	}
	ch.Send("x")
	v, ok := ch.TryRecv()
	if !ok || v != "x" {
		t.Fatalf("TryRecv = %q, %v", v, ok)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 2)
	active, peak := 0, 0
	for i := 0; i < 6; i++ {
		k.Go("worker", func(p *Proc) {
			sem.Acquire(p)
			active++
			if active > peak {
				peak = active
			}
			p.Sleep(time.Millisecond)
			active--
			sem.Release()
		})
	}
	k.Run()
	k.Shutdown()
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 1)
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire failed with a free permit")
	}
	if sem.TryAcquire() {
		t.Fatal("TryAcquire succeeded with no permits")
	}
	sem.Release()
	if sem.Available() != 1 {
		t.Fatalf("Available = %d, want 1", sem.Available())
	}
}

func TestEventBroadcast(t *testing.T) {
	k := NewKernel(1)
	ev := NewEvent(k)
	woken := 0
	for i := 0; i < 3; i++ {
		k.Go("waiter", func(p *Proc) {
			ev.Wait(p)
			woken++
		})
	}
	k.Go("firer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ev.Fire()
		ev.Fire() // double fire is a no-op
	})
	k.Run()
	k.Shutdown()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
	if !ev.Fired() {
		t.Fatal("event not marked fired")
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	k := NewKernel(1)
	ev := NewEvent(k)
	ev.Fire()
	done := false
	k.Go("late", func(p *Proc) {
		ev.Wait(p) // must not block
		done = true
	})
	k.Run()
	k.Shutdown()
	if !done {
		t.Fatal("Wait after Fire blocked")
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel(1)
	wg := NewWaitGroup(k)
	wg.Add(3)
	var finish time.Duration
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Millisecond
		k.Go("w", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	k.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		finish = p.Now()
	})
	k.Run()
	k.Shutdown()
	if finish != 3*time.Millisecond {
		t.Fatalf("waiter released at %v, want 3ms", finish)
	}
}

func TestShutdownReapsBlockedProcs(t *testing.T) {
	k := NewKernel(1)
	ch := NewChan[int](k)
	for i := 0; i < 4; i++ {
		k.Go("stuck", func(p *Proc) { ch.Recv(p) })
	}
	k.Run()
	k.Shutdown() // must not hang or panic
	if len(k.procs) != 0 {
		t.Fatalf("%d procs leaked", len(k.procs))
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int64 {
		k := NewKernel(seed)
		var out []int64
		for i := 0; i < 4; i++ {
			k.Go("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					d := time.Duration(k.Rand().Intn(1000)) * time.Microsecond
					p.Sleep(d)
					out = append(out, int64(p.Now()))
				}
			})
		}
		k.Run()
		k.Shutdown()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestCPUSingleJob(t *testing.T) {
	k := NewKernel(1)
	cpu := NewCPU(k)
	var took time.Duration
	k.Go("job", func(p *Proc) {
		start := p.Now()
		cpu.Use(p, 10*time.Millisecond)
		took = p.Now() - start
	})
	k.Run()
	k.Shutdown()
	if took != 10*time.Millisecond {
		t.Fatalf("uncontended job took %v, want 10ms", took)
	}
}

func TestCPUProcessorSharing(t *testing.T) {
	k := NewKernel(1)
	cpu := NewCPU(k)
	var took [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		k.Go("job", func(p *Proc) {
			start := p.Now()
			cpu.Use(p, 10*time.Millisecond)
			took[i] = p.Now() - start
		})
	}
	k.Run()
	k.Shutdown()
	// Two equal jobs sharing one CPU should each take ~2x.
	for i, d := range took {
		if d < 19*time.Millisecond || d > 21*time.Millisecond {
			t.Fatalf("job %d took %v, want ~20ms", i, d)
		}
	}
}

func TestCPUBackgroundLoadSlowsJobs(t *testing.T) {
	k := NewKernel(1)
	cpu := NewCPU(k)
	cpu.SetBackground(4)
	var took time.Duration
	k.Go("job", func(p *Proc) {
		start := p.Now()
		cpu.Use(p, 10*time.Millisecond)
		took = p.Now() - start
	})
	k.Run()
	k.Shutdown()
	// 1 job + 4 spinners: job gets a 1/5 share.
	if took < 49*time.Millisecond || took > 51*time.Millisecond {
		t.Fatalf("job with background load took %v, want ~50ms", took)
	}
}

func TestCPUStaggeredArrivals(t *testing.T) {
	k := NewKernel(1)
	cpu := NewCPU(k)
	var firstDone, secondDone time.Duration
	k.Go("first", func(p *Proc) {
		cpu.Use(p, 10*time.Millisecond)
		firstDone = p.Now()
	})
	k.Go("second", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		cpu.Use(p, 10*time.Millisecond)
		secondDone = p.Now()
	})
	k.Run()
	k.Shutdown()
	// First runs alone 0-5ms (5ms served), shares 5-15 (5ms more): done ~15ms.
	// Second shares 5-15 (5ms served), alone 15-20: done ~20ms.
	if firstDone < 14*time.Millisecond || firstDone > 16*time.Millisecond {
		t.Fatalf("first done at %v, want ~15ms", firstDone)
	}
	if secondDone < 19*time.Millisecond || secondDone > 21*time.Millisecond {
		t.Fatalf("second done at %v, want ~20ms", secondDone)
	}
}

func TestCPUZeroDuration(t *testing.T) {
	k := NewKernel(1)
	cpu := NewCPU(k)
	ran := false
	k.Go("job", func(p *Proc) {
		cpu.Use(p, 0)
		ran = true
	})
	k.Run()
	k.Shutdown()
	if !ran {
		t.Fatal("zero-duration Use blocked forever")
	}
}
