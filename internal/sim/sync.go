package sim

// This file provides the synchronization primitives processes block on:
// FIFO channels (queues), counting semaphores, one-shot events and
// broadcast conditions. Non-blocking entry points (Send, Fire, Release)
// may also be called from plain event callbacks, which is how hardware
// models (disk, NIC) hand results back to processes.

// Chan is an unbounded FIFO queue of T with blocking receive.
type Chan[T any] struct {
	k     *Kernel
	items []T
	recvq []*chanWaiter[T]
}

type chanWaiter[T any] struct {
	p   *Proc
	val T
}

// NewChan returns an empty queue bound to k.
func NewChan[T any](k *Kernel) *Chan[T] { return &Chan[T]{k: k} }

// Len reports the number of queued (unconsumed) items.
func (c *Chan[T]) Len() int { return len(c.items) }

// Waiters reports the number of processes blocked in Recv.
func (c *Chan[T]) Waiters() int { return len(c.recvq) }

// Send enqueues v, waking the longest-waiting receiver if any. It never
// blocks and is safe to call from event callbacks.
func (c *Chan[T]) Send(v T) {
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		copy(c.recvq, c.recvq[1:])
		c.recvq[len(c.recvq)-1] = nil
		c.recvq = c.recvq[:len(c.recvq)-1]
		w.val = v
		c.k.wake(w.p)
		return
	}
	c.items = append(c.items, v)
}

// Recv dequeues the oldest item, blocking p until one is available.
func (c *Chan[T]) Recv(p *Proc) T {
	if len(c.items) > 0 {
		v := c.items[0]
		var zero T
		c.items[0] = zero
		c.items = c.items[1:]
		return v
	}
	w := &chanWaiter[T]{p: p}
	c.recvq = append(c.recvq, w)
	p.park()
	return w.val
}

// TryRecv dequeues an item if one is immediately available.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if len(c.items) == 0 {
		return zero, false
	}
	v := c.items[0]
	c.items[0] = zero
	c.items = c.items[1:]
	return v, true
}

// Semaphore is a counting semaphore with FIFO wakeup order.
type Semaphore struct {
	k     *Kernel
	avail int
	q     []*Proc
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(k *Kernel, n int) *Semaphore { return &Semaphore{k: k, avail: n} }

// Acquire takes one permit, blocking p until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.avail > 0 {
		s.avail--
		return
	}
	s.q = append(s.q, p)
	p.park()
}

// TryAcquire takes a permit without blocking, reporting success.
func (s *Semaphore) TryAcquire() bool {
	if s.avail > 0 {
		s.avail--
		return true
	}
	return false
}

// Release returns one permit, waking the longest waiter if any. Safe to
// call from event callbacks.
func (s *Semaphore) Release() {
	if len(s.q) > 0 {
		p := s.q[0]
		copy(s.q, s.q[1:])
		s.q[len(s.q)-1] = nil
		s.q = s.q[:len(s.q)-1]
		s.k.wake(p)
		return
	}
	s.avail++
}

// Available reports the current permit count.
func (s *Semaphore) Available() int { return s.avail }

// QueueLen reports the number of blocked acquirers.
func (s *Semaphore) QueueLen() int { return len(s.q) }

// Event is a one-shot completion: waiters block until Fire, after which
// Wait returns immediately forever.
type Event struct {
	k       *Kernel
	fired   bool
	waiters []*Proc
}

// NewEvent returns an unfired event.
func NewEvent(k *Kernel) *Event { return &Event{k: k} }

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Fire marks the event complete and wakes every waiter. Firing twice is a
// no-op. Safe to call from event callbacks.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	for _, p := range e.waiters {
		e.k.wake(p)
	}
	e.waiters = nil
}

// Wait blocks p until the event fires.
func (e *Event) Wait(p *Proc) {
	if e.fired {
		return
	}
	e.waiters = append(e.waiters, p)
	p.park()
}

// WaitGroup counts outstanding activities; Wait blocks until the count
// reaches zero.
type WaitGroup struct {
	k       *Kernel
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a group with a zero count.
func NewWaitGroup(k *Kernel) *WaitGroup { return &WaitGroup{k: k} }

// Add increments the count by n (n may be negative; Done is Add(-1)).
func (w *WaitGroup) Add(n int) {
	w.count += n
	if w.count < 0 {
		panic("sim: negative WaitGroup count")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			w.k.wake(p)
		}
		w.waiters = nil
	}
}

// Done decrements the count by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks p until the count reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.park()
}
