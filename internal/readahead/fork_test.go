package readahead

import (
	"sync"
	"testing"
)

// statefulNoFork is a third-party-style heuristic: it mutates its own
// fields on every Update and does NOT implement Forker.
type statefulNoFork struct {
	calls int
	last  uint64
}

func (h *statefulNoFork) Name() string { return "stateful" }
func (h *statefulNoFork) Update(s *State, off, length uint64) int {
	h.calls++
	h.last = off
	s.SeqCount = 1
	return 1
}
func (h *statefulNoFork) Frontier(s *State) *uint64 { return &s.Frontier }

func TestForkNStatelessShared(t *testing.T) {
	hs := ForkN(SlowDown{}, 4)
	for _, h := range hs {
		if h != (SlowDown{}) {
			t.Fatalf("stateless heuristic not shared as-is: %T", h)
		}
	}
}

func TestForkNForkerForked(t *testing.T) {
	orig := &CursorHeuristic{MaxCursors: 3}
	hs := ForkN(orig, 4)
	seen := map[Heuristic]bool{}
	for _, h := range hs {
		c, ok := h.(*CursorHeuristic)
		if !ok || c == orig {
			t.Fatalf("Forker not forked per domain: %T (orig=%v)", h, c == orig)
		}
		if c.MaxCursors != 3 {
			t.Fatalf("fork lost configuration: %d", c.MaxCursors)
		}
		if seen[h] {
			t.Fatal("two domains share one fork")
		}
		seen[h] = true
	}
}

// TestForkNUnknownStatefulSerialized: a stateful non-Forker heuristic
// must be safe to drive from every domain concurrently (run under
// -race) — ForkN wraps it in a single lock, the guarantee such
// heuristics had under the old global service mutex.
func TestForkNUnknownStatefulSerialized(t *testing.T) {
	raw := &statefulNoFork{}
	hs := ForkN(raw, 8)
	var wg sync.WaitGroup
	const perDomain = 1000
	for d := range hs {
		wg.Add(1)
		go func(h Heuristic, d int) {
			defer wg.Done()
			var s State
			s.Reset()
			for i := 0; i < perDomain; i++ {
				h.Update(&s, uint64(d*i), 8192)
			}
		}(hs[d], d)
	}
	wg.Wait()
	if raw.calls != len(hs)*perDomain {
		t.Fatalf("calls = %d, want %d (updates lost to a race)", raw.calls, len(hs)*perDomain)
	}
	if hs[0].Name() != "stateful" {
		t.Fatalf("wrapper Name = %q", hs[0].Name())
	}
}
