// Package readahead implements the sequentiality heuristics the paper
// studies: the FreeBSD 4.x default (reset on any out-of-order request),
// the paper's SlowDown heuristic (§6.2), a hard-wired "Always
// Read-ahead" reference, and the cursor-based heuristic for stride
// access patterns (§7). Heuristics are pure state machines over a
// per-file State record; the nfsheur table (package nfsheur) decides
// which files get to keep such a record at all.
package readahead

import "sync"

// SeqMax is the ceiling on the sequentiality count. The paper notes the
// count "is never allowed to grow higher than 127, due to the
// implementation of the lower levels of the operating system"
// (FreeBSD's IO_SEQMAX).
const SeqMax = 127

// JitterWindow is how far an offset may deviate from the predicted one
// and still be treated as request-reordering jitter rather than a
// non-sequential access: "within 64k (eight 8k NFS blocks)" (§6.2).
const JitterWindow = 64 * 1024

// DefaultCursors is the per-file cursor limit for the cursor heuristic.
// The paper uses "a small and constant number of cursors" per file
// handle (§8); eight covers its 8-stride experiments.
const DefaultCursors = 8

// State is the per-file-handle sequentiality record: the information
// FreeBSD keeps in an nfsheur slot. Cursors is used only by the Cursor
// heuristic. Frontier tracks how far (in blocks) prefetch has been
// issued for the stream, so the read path issues read-ahead in large
// clustered bursts instead of one block at a time.
type State struct {
	NextOff  uint64 // predicted offset of the next sequential read
	SeqCount int    // current sequentiality count (0..SeqMax)
	Frontier uint64 // prefetch frontier in blocks
	Cursors  []Cursor
}

// Cursor is one tracked sequential sub-stream within a file (§7): its
// own predicted offset, sequentiality count and prefetch frontier, plus
// an LRU stamp.
type Cursor struct {
	NextOff  uint64
	SeqCount int
	Frontier uint64
	lastUse  int64
}

// Reset returns the state to the "newly observed file" condition the
// table installs on (re)insertion: seqcount starts at 1.
func (s *State) Reset() {
	s.NextOff = 0
	s.SeqCount = 1
	s.Frontier = 0
	s.Cursors = s.Cursors[:0]
}

// Heuristic computes the sequentiality count to use for a read and
// updates the per-file state. The stateless heuristics (Default,
// SlowDown, Always) are safe for concurrent use; CursorHeuristic keeps
// cross-call state and is not — concurrent servers give each lock
// domain its own instance via Fork.
type Heuristic interface {
	// Name identifies the heuristic, e.g. "slowdown".
	Name() string
	// Update records a read of length bytes at offset off against s and
	// returns the seqcount the server should use for read-ahead sizing.
	Update(s *State, off, length uint64) int
	// Frontier returns the prefetch frontier of the stream the most
	// recent Update matched. It must be called immediately after Update
	// on the same state (the cursor heuristic remembers which cursor
	// matched). The caller reads and advances the frontier as it issues
	// read-ahead.
	Frontier(s *State) *uint64
}

// Forker is implemented by heuristics that carry cross-call state and
// therefore must not be shared between goroutines: Fork returns a fresh
// instance with the same configuration but no accumulated state.
type Forker interface {
	Fork() Heuristic
}

// Fork returns a heuristic equivalent to h that is safe to use from one
// additional lock domain: Forker implementations are copied, known
// stateless ones are returned as-is, and unknown implementations are
// wrapped in a lock (see ForkN).
func Fork(h Heuristic) Heuristic {
	return ForkN(h, 1)[0]
}

// ForkN returns n heuristics for n independent lock domains (e.g. the
// shards of an nfsheur table): Forker implementations are forked per
// domain, the known-stateless heuristics are shared as-is, and any
// other implementation — possibly stateful, from outside this package —
// is shared behind one mutex, preserving the serialized-but-safe
// behavior such heuristics had when servers held a single global lock.
func ForkN(h Heuristic, n int) []Heuristic {
	out := make([]Heuristic, n)
	switch h.(type) {
	case Default, SlowDown, Always:
		for i := range out {
			out[i] = h
		}
		return out
	}
	if f, ok := h.(Forker); ok {
		for i := range out {
			out[i] = f.Fork()
		}
		return out
	}
	l := &lockedHeuristic{h: h}
	for i := range out {
		out[i] = l
	}
	return out
}

// lockedHeuristic serializes calls to an unknown heuristic
// implementation. Note the Frontier-follows-Update pairing is only
// meaningful per goroutine; interleaved callers get each call
// individually serialized, nothing more.
type lockedHeuristic struct {
	mu sync.Mutex
	h  Heuristic
}

func (l *lockedHeuristic) Name() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Name()
}

func (l *lockedHeuristic) Update(s *State, off, length uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Update(s, off, length)
}

func (l *lockedHeuristic) Frontier(s *State) *uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Frontier(s)
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Default is the FreeBSD 4.x heuristic the paper starts from: an access
// at exactly the predicted offset increments seqcount; any other access
// resets it to 1 — so "read-ahead can be disabled by a small percentage
// of out-of-order requests" (§1).
type Default struct{}

// Name implements Heuristic.
func (Default) Name() string { return "default" }

// Frontier implements Heuristic.
func (Default) Frontier(s *State) *uint64 { return &s.Frontier }

// Update implements Heuristic.
func (Default) Update(s *State, off, length uint64) int {
	if off == s.NextOff {
		s.SeqCount++
		if s.SeqCount > SeqMax {
			s.SeqCount = SeqMax
		}
	} else {
		s.SeqCount = 1
	}
	s.NextOff = off + length
	return s.SeqCount
}

// SlowDown is the paper's §6.2 heuristic: "allow the sequentiality index
// to rise in the same manner as the ordinary heuristic, but fall less
// rapidly." Exact matches increment; offsets within JitterWindow of the
// prediction leave the count unchanged (it may just be jitter); larger
// jumps halve it — additive-increase/multiplicative-decrease, as the
// paper's analogy to TCP congestion control suggests.
type SlowDown struct{}

// Name implements Heuristic.
func (SlowDown) Name() string { return "slowdown" }

// Frontier implements Heuristic.
func (SlowDown) Frontier(s *State) *uint64 { return &s.Frontier }

// Update implements Heuristic.
func (SlowDown) Update(s *State, off, length uint64) int {
	updateSlowDown(&s.NextOff, &s.SeqCount, off, length)
	return s.SeqCount
}

// updateSlowDown is the shared AIMD step, also used per-cursor.
func updateSlowDown(nextOff *uint64, seqCount *int, off, length uint64) {
	switch {
	case off == *nextOff:
		*seqCount++
		if *seqCount > SeqMax {
			*seqCount = SeqMax
		}
		*nextOff = off + length
	case absDiff(off, *nextOff) <= JitterWindow:
		// Possibly reordering jitter: leave the count alone. Track the
		// farthest point seen so the stream can re-synchronize once the
		// reordered requests have all arrived.
		if off+length > *nextOff {
			*nextOff = off + length
		}
	default:
		*seqCount /= 2
		if *seqCount < 1 {
			*seqCount = 1
		}
		*nextOff = off + length
	}
}

// Always hard-wires the maximum count: the paper's "Always Read-ahead"
// upper-bound configuration (§6.1).
type Always struct{}

// Name implements Heuristic.
func (Always) Name() string { return "always" }

// Frontier implements Heuristic.
func (Always) Frontier(s *State) *uint64 { return &s.Frontier }

// Update implements Heuristic.
func (Always) Update(s *State, off, length uint64) int {
	s.NextOff = off + length
	s.SeqCount = SeqMax
	return SeqMax
}

// CursorHeuristic detects sequential sub-streams within one file (§7):
// stride readers and concurrent readers of a shared file. Each read is
// matched (within JitterWindow, like SlowDown) against a small set of
// per-file cursors; an unmatched read allocates a cursor, recycling the
// least recently used one past the limit. Truly random access creates
// cursors whose counts never grow, so no extra read-ahead is performed.
type CursorHeuristic struct {
	// MaxCursors limits cursors per file (DefaultCursors if zero).
	MaxCursors int

	clock   int64
	lastIdx int // cursor the most recent Update matched or created
}

// Name implements Heuristic.
func (c *CursorHeuristic) Name() string { return "cursor" }

// Fork implements Forker: a fresh heuristic with the same cursor limit
// and no clock/match state, for per-shard use by concurrent servers.
func (c *CursorHeuristic) Fork() Heuristic {
	return &CursorHeuristic{MaxCursors: c.MaxCursors}
}

// Frontier implements Heuristic. It returns the frontier of the cursor
// the immediately preceding Update call touched, falling back to the
// whole-file frontier if the state has no cursors (never the case after
// an Update).
func (c *CursorHeuristic) Frontier(s *State) *uint64 {
	if c.lastIdx >= 0 && c.lastIdx < len(s.Cursors) {
		return &s.Cursors[c.lastIdx].Frontier
	}
	return &s.Frontier
}

// Update implements Heuristic.
func (c *CursorHeuristic) Update(s *State, off, length uint64) int {
	maxCur := c.MaxCursors
	if maxCur <= 0 {
		maxCur = DefaultCursors
	}
	c.clock++

	// Find the closest cursor within the match window.
	best := -1
	var bestDist uint64
	for i := range s.Cursors {
		d := absDiff(off, s.Cursors[i].NextOff)
		if d <= JitterWindow && (best == -1 || d < bestDist) {
			best, bestDist = i, d
		}
	}
	if best >= 0 {
		cur := &s.Cursors[best]
		updateSlowDown(&cur.NextOff, &cur.SeqCount, off, length)
		cur.lastUse = c.clock
		c.lastIdx = best
		return cur.SeqCount
	}

	// No match: start a new cursor, recycling the LRU slot when full.
	nc := Cursor{NextOff: off + length, SeqCount: 1, lastUse: c.clock}
	if len(s.Cursors) < maxCur {
		s.Cursors = append(s.Cursors, nc)
		c.lastIdx = len(s.Cursors) - 1
		return nc.SeqCount
	}
	lru := 0
	for i := 1; i < len(s.Cursors); i++ {
		if s.Cursors[i].lastUse < s.Cursors[lru].lastUse {
			lru = i
		}
	}
	s.Cursors[lru] = nc
	c.lastIdx = lru
	return nc.SeqCount
}

// Window converts a sequentiality count into a read-ahead window in
// blocks, capped at maxBlocks. It mirrors how FreeBSD feeds seqcount
// into cluster_read: more confidence, more read-ahead; a count of zero
// or one asks for no speculation beyond the demanded block.
func Window(seqCount, maxBlocks int) int {
	if seqCount <= 1 {
		return 0
	}
	w := seqCount
	if w > maxBlocks {
		w = maxBlocks
	}
	return w
}
