package readahead

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const blk = 8192 // NFS block size used throughout the paper

func seqRead(h Heuristic, s *State, n int) int {
	last := 0
	for i := 0; i < n; i++ {
		last = h.Update(s, uint64(i*blk), blk)
	}
	return last
}

func TestDefaultGrowsOnSequential(t *testing.T) {
	var s State
	s.Reset()
	got := seqRead(Default{}, &s, 10)
	// Starts at 1, +1 per matching read after the first.
	if got < 10 {
		t.Fatalf("seqcount after 10 sequential reads = %d, want >= 10", got)
	}
}

func TestDefaultCapsAtSeqMax(t *testing.T) {
	var s State
	s.Reset()
	got := seqRead(Default{}, &s, 500)
	if got != SeqMax {
		t.Fatalf("seqcount = %d, want cap %d", got, SeqMax)
	}
}

func TestDefaultResetsOnAnyReorder(t *testing.T) {
	var s State
	s.Reset()
	seqRead(Default{}, &s, 20)
	// One request a single block out of order: paper §1 — "read-ahead
	// can be disabled by a small percentage of out-of-order requests".
	got := Default{}.Update(&s, 21*blk, blk) // skipped block 20
	if got != 1 {
		t.Fatalf("default after 8KB jitter = %d, want reset to 1", got)
	}
}

func TestSlowDownToleratesJitter(t *testing.T) {
	var s State
	s.Reset()
	seqRead(SlowDown{}, &s, 20)
	before := s.SeqCount
	// A swap of two adjacent requests: 21 arrives before 20.
	c1 := (SlowDown{}).Update(&s, 21*blk, blk)
	if c1 != before {
		t.Fatalf("slowdown changed count on +8KB jitter: %d -> %d", before, c1)
	}
	c2 := (SlowDown{}).Update(&s, 20*blk, blk)
	if c2 < before {
		t.Fatalf("slowdown dropped count on the late half of a swap: %d", c2)
	}
	// Stream re-synchronizes and keeps growing.
	c3 := (SlowDown{}).Update(&s, 22*blk, blk)
	if c3 < before {
		t.Fatalf("slowdown failed to resync after swap: %d < %d", c3, before)
	}
}

func TestSlowDownHalvesOnBigJump(t *testing.T) {
	var s State
	s.Reset()
	seqRead(SlowDown{}, &s, 64) // count 64
	before := s.SeqCount
	got := (SlowDown{}).Update(&s, 1000*blk, blk) // >64KB away
	if got != before/2 {
		t.Fatalf("slowdown after big jump = %d, want %d", got, before/2)
	}
}

func TestSlowDownRandomPatternDecaysQuickly(t *testing.T) {
	// "if the access pattern is truly random, it will quickly disable
	// read-ahead" (§6.2): repeated halving chops the count to 1.
	var s State
	s.Reset()
	seqRead(SlowDown{}, &s, 127)
	rng := rand.New(rand.NewSource(7))
	h := SlowDown{}
	count := SeqMax
	for i := 0; i < 10; i++ {
		off := uint64(rng.Intn(1<<20)) * blk * 100
		count = h.Update(&s, off, blk)
	}
	if count > 1 {
		t.Fatalf("slowdown after 10 random reads = %d, want 1", count)
	}
}

func TestSlowDownNeverBelowOne(t *testing.T) {
	var s State
	s.Reset()
	h := SlowDown{}
	for i := 0; i < 20; i++ {
		if got := h.Update(&s, uint64(i)*1<<30, blk); got < 1 {
			t.Fatalf("slowdown count fell below 1: %d", got)
		}
	}
}

func TestAlwaysIsConstant(t *testing.T) {
	var s State
	s.Reset()
	h := Always{}
	for _, off := range []uint64{0, 5 * blk, 1 << 30, 3} {
		if got := h.Update(&s, off, blk); got != SeqMax {
			t.Fatalf("always = %d at off %d", got, off)
		}
	}
}

func TestCursorDetectsStride(t *testing.T) {
	// A 2-stride read of a file: blocks 0, N/2, 1, N/2+1, ... (§7).
	// Both sub-streams must build sequentiality.
	const half = 1 << 27
	h := &CursorHeuristic{}
	var s State
	s.Reset()
	var low, high int
	for i := 0; i < 32; i++ {
		low = h.Update(&s, uint64(i*blk), blk)
		high = h.Update(&s, half+uint64(i*blk), blk)
	}
	if low < 30 || high < 30 {
		t.Fatalf("stride sub-streams seqcount = %d/%d, want ~32", low, high)
	}
	if len(s.Cursors) != 2 {
		t.Fatalf("cursors allocated = %d, want 2", len(s.Cursors))
	}
}

func TestCursorEightStride(t *testing.T) {
	h := &CursorHeuristic{}
	var s State
	s.Reset()
	const stride = 1 << 25
	counts := make([]int, 8)
	for i := 0; i < 16; i++ {
		for sub := 0; sub < 8; sub++ {
			counts[sub] = h.Update(&s, uint64(sub)*stride+uint64(i*blk), blk)
		}
	}
	for sub, c := range counts {
		if c < 14 {
			t.Fatalf("sub-stream %d seqcount = %d, want ~16", sub, c)
		}
	}
}

func TestCursorRandomAccessNoReadAhead(t *testing.T) {
	// "If the access pattern is truly random, then many cursors are
	// created, but their sequentiality counts do not grow" (§7).
	h := &CursorHeuristic{}
	var s State
	s.Reset()
	rng := rand.New(rand.NewSource(11))
	maxCount := 0
	for i := 0; i < 200; i++ {
		off := uint64(rng.Intn(1<<22)) * blk * 64
		if got := h.Update(&s, off, blk); got > maxCount {
			maxCount = got
		}
	}
	if maxCount > 2 {
		t.Fatalf("random access built seqcount %d; cursors should not grow", maxCount)
	}
	if len(s.Cursors) != DefaultCursors {
		t.Fatalf("cursor count = %d, want full set %d", len(s.Cursors), DefaultCursors)
	}
}

func TestCursorLRURecycling(t *testing.T) {
	h := &CursorHeuristic{MaxCursors: 2}
	var s State
	s.Reset()
	h.Update(&s, 0, blk)     // cursor A
	h.Update(&s, 1<<30, blk) // cursor B
	h.Update(&s, blk, blk)   // touch A
	h.Update(&s, 1<<31, blk) // C must recycle B (LRU)
	if len(s.Cursors) != 2 {
		t.Fatalf("cursors = %d, want 2", len(s.Cursors))
	}
	// A must still match and grow.
	if got := h.Update(&s, 2*blk, blk); got < 3 {
		t.Fatalf("surviving cursor count = %d, want >= 3", got)
	}
}

func TestCursorToleratesJitterPerStream(t *testing.T) {
	h := &CursorHeuristic{}
	var s State
	s.Reset()
	for i := 0; i < 10; i++ {
		h.Update(&s, uint64(i*blk), blk)
	}
	before := s.Cursors[0].SeqCount
	h.Update(&s, 11*blk, blk) // skipped one block: jitter
	if s.Cursors[0].SeqCount != before {
		t.Fatalf("cursor count changed on jitter: %d -> %d", before, s.Cursors[0].SeqCount)
	}
	if len(s.Cursors) != 1 {
		t.Fatalf("jitter spawned a new cursor: %d", len(s.Cursors))
	}
}

func TestWindow(t *testing.T) {
	cases := []struct{ seq, max, want int }{
		{0, 16, 0},
		{1, 16, 0},
		{2, 16, 2},
		{8, 16, 8},
		{127, 16, 16},
		{127, 8, 8},
	}
	for _, c := range cases {
		if got := Window(c.seq, c.max); got != c.want {
			t.Errorf("Window(%d,%d) = %d, want %d", c.seq, c.max, got, c.want)
		}
	}
}

func TestResetClearsCursors(t *testing.T) {
	h := &CursorHeuristic{}
	var s State
	s.Reset()
	h.Update(&s, 0, blk)
	h.Update(&s, 1<<30, blk)
	s.Reset()
	if len(s.Cursors) != 0 || s.SeqCount != 1 || s.NextOff != 0 {
		t.Fatalf("Reset left state %+v", s)
	}
}

// Property: every heuristic keeps seqcount within [1, SeqMax] after the
// first update, for arbitrary access patterns.
func TestHeuristicBoundsProperty(t *testing.T) {
	heuristics := []Heuristic{Default{}, SlowDown{}, Always{}, &CursorHeuristic{}}
	f := func(offs []uint32) bool {
		for _, h := range heuristics {
			var s State
			s.Reset()
			for _, o := range offs {
				got := h.Update(&s, uint64(o)*512, blk)
				if got < 1 || got > SeqMax {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: for purely sequential access SlowDown and Default agree.
func TestSlowDownMatchesDefaultWhenSequential(t *testing.T) {
	f := func(n uint8) bool {
		var a, b State
		a.Reset()
		b.Reset()
		count := int(n%64) + 2
		return seqRead(Default{}, &a, count) == seqRead(SlowDown{}, &b, count)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SlowDown's count after any single perturbation of a long
// sequential run is >= Default's.
func TestSlowDownDominatesDefaultUnderPerturbation(t *testing.T) {
	f := func(jump uint32) bool {
		var a, b State
		a.Reset()
		b.Reset()
		seqRead(Default{}, &a, 40)
		seqRead(SlowDown{}, &b, 40)
		off := uint64(jump) * 512
		da := (Default{}).Update(&a, off, blk)
		db := (SlowDown{}).Update(&b, off, blk)
		return db >= da
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cursor count never exceeds the configured maximum.
func TestCursorCountBounded(t *testing.T) {
	f := func(offs []uint32, maxCur uint8) bool {
		m := int(maxCur%8) + 1
		h := &CursorHeuristic{MaxCursors: m}
		var s State
		s.Reset()
		for _, o := range offs {
			h.Update(&s, uint64(o)*4096, blk)
			if len(s.Cursors) > m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
