package replay

import (
	"bytes"
	"sort"
	"sync"
	"testing"
	"time"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/nfstrace"
	"nfstricks/internal/tracefile"
	"nfstricks/internal/wgather"
)

// replayTarget is a live capturing server to replay against.
type replayTarget struct {
	addr string
	fhA  nfsproto.FH
	fhB  nfsproto.FH
}

func newTarget(t *testing.T) (*replayTarget, func() []tracefile.Record) {
	t.Helper()
	fs := memfs.NewFS()
	payload := make([]byte, 256*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	fhA, _ := fs.Create(memfs.RootFH, "a", payload)
	fhB, _ := fs.Create(memfs.RootFH, "b", payload)
	svc := memfs.NewService(fs, nil, nil)

	var buf bytes.Buffer
	start := time.Now()
	w, err := tracefile.NewWriter(&buf, start)
	if err != nil {
		t.Fatal(err)
	}
	capt := nfstrace.NewCaptureAt(w, start)
	srv, err := memfs.NewServerTap("127.0.0.1:0", svc, capt.Tap)
	if err != nil {
		t.Fatal(err)
	}
	tg := &replayTarget{addr: srv.Addr(), fhA: fhA, fhB: fhB}
	var once sync.Once
	collect := func() []tracefile.Record {
		var recs []tracefile.Record
		once.Do(func() {
			srv.Close()
			if err := capt.Err(); err != nil {
				t.Fatal(err)
			}
			if err := capt.Close(); err != nil {
				t.Fatal(err)
			}
		})
		_, recs, err := tracefile.ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	t.Cleanup(func() { collect() })
	return tg, collect
}

// opKey is the per-stream dispatch identity the subsystem must preserve.
type opKey struct {
	proc   uint32
	fh     uint64
	offset uint64
	count  uint32
}

// keysByStream groups a capture by stream in arrival order. The file
// itself is in completion order — concurrent handlers finish out of
// arrival order, which is the paper's reordering made visible — so the
// client-intended per-stream order is recovered by the captured arrival
// timestamps.
func keysByStream(recs []tracefile.Record) map[uint32][]opKey {
	byArrival := append([]tracefile.Record(nil), recs...)
	sort.SliceStable(byArrival, func(i, j int) bool { return byArrival[i].When < byArrival[j].When })
	m := make(map[uint32][]opKey)
	for _, r := range byArrival {
		m[r.Stream] = append(m[r.Stream], opKey{r.Proc, r.FH, r.Offset, r.Count})
	}
	return m
}

// traceFor builds a synthetic two-stream trace against the target's
// handles: stream 1 reads file A sequentially with a WRITE in the
// middle, stream 2 reads file B and carries a LOOKUP (which replay must
// send as a GETATTR surrogate) plus a NULL.
func traceFor(tg *replayTarget, gap time.Duration) []tracefile.Record {
	var recs []tracefile.Record
	when := time.Duration(0)
	add := func(stream uint32, proc uint32, fh nfsproto.FH, off uint64, count uint32) {
		recs = append(recs, tracefile.Record{
			When: when, Stream: stream, Proc: proc, FH: uint64(fh),
			Offset: off, Count: count,
		})
		when += gap
	}
	for i := 0; i < 10; i++ {
		add(1, nfsproto.ProcRead, tg.fhA, uint64(i)*8192, 8192)
		add(2, nfsproto.ProcRead, tg.fhB, uint64(9-i)*8192, 8192)
		if i == 4 {
			add(1, nfsproto.ProcWrite, tg.fhA, 256*1024, 4096)
			add(2, nfsproto.ProcLookup, memfs.RootFH, 0, 0)
		}
	}
	add(1, nfsproto.ProcGetattr, tg.fhA, 0, 0)
	add(2, nfsproto.ProcNull, 0, 0, 0)
	return recs
}

// expectedKeys maps a source trace to what the capturing target should
// observe per stream: identical sequences, with non-native procedures
// rewritten to GETATTR surrogates.
func expectedKeys(src []tracefile.Record) map[uint32][]opKey {
	m := make(map[uint32][]opKey)
	for _, r := range src {
		k := opKey{r.Proc, r.FH, r.Offset, r.Count}
		switch r.Proc {
		case nfsproto.ProcNull, nfsproto.ProcGetattr, nfsproto.ProcRead, nfsproto.ProcWrite:
		default:
			k = opKey{nfsproto.ProcGetattr, r.FH, 0, 0}
		}
		m[r.Stream] = append(m[r.Stream], k)
	}
	return m
}

// matchStreams verifies the captured per-stream sequences are exactly
// the expected ones, up to stream-id relabeling (replay allocates fresh
// connections, so ids differ from the source trace).
func matchStreams(t *testing.T, want, got map[uint32][]opKey) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d streams, want %d", len(got), len(want))
	}
	used := make(map[uint32]bool)
	for wid, wseq := range want {
		found := false
		for gid, gseq := range got {
			if used[gid] || len(gseq) != len(wseq) {
				continue
			}
			same := true
			for i := range wseq {
				if wseq[i] != gseq[i] {
					same = false
					break
				}
			}
			if same {
				used[gid] = true
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("source stream %d: no replayed stream carries its sequence %v\n got %v", wid, wseq, got)
		}
	}
}

// TestReplayPreservesPerStreamSequences is the subsystem's acceptance
// property over real sockets: replaying a trace reproduces each
// stream's (proc, FH, offset, count) sequence exactly, over UDP and
// TCP, closed and open loop.
func TestReplayPreservesPerStreamSequences(t *testing.T) {
	for _, network := range []string{"udp", "tcp"} {
		for _, open := range []bool{false, true} {
			tg, collect := newTarget(t)
			src := traceFor(tg, 0)
			st, err := Run(src, Options{
				Network: network, Addr: tg.addr, Timing: AsFast, OpenLoop: open,
			})
			if err != nil {
				t.Fatalf("%s open=%v: %v", network, open, err)
			}
			if st.Ops != int64(len(src)) || st.Errors != 0 {
				t.Fatalf("%s open=%v: stats %+v", network, open, st)
			}
			if st.Surrogates != 1 {
				t.Fatalf("%s open=%v: surrogates = %d, want 1 (the LOOKUP)", network, open, st.Surrogates)
			}
			if st.Streams != 2 {
				t.Fatalf("%s open=%v: streams = %d", network, open, st.Streams)
			}
			// The WRITE extends file A; all reads and getattrs are OK, so
			// no NFS errors.
			if st.NFSErrors != 0 {
				t.Fatalf("%s open=%v: nfs errors = %d", network, open, st.NFSErrors)
			}
			matchStreams(t, expectedKeys(src), keysByStream(collect()))
		}
	}
}

// TestReplayTimingPolicies checks the schedule policies: faithful
// replay reproduces the captured arrival span within scheduling noise,
// scaled replay compresses it, and as-fast ignores it.
func TestReplayTimingPolicies(t *testing.T) {
	tg, _ := newTarget(t)
	const gap = 5 * time.Millisecond
	src := traceFor(tg, gap) // 22 records: span = 21 * gap = 105ms
	span := src[len(src)-1].When - src[0].When

	faithful, err := Run(src, Options{Addr: tg.addr, Timing: Faithful})
	if err != nil {
		t.Fatal(err)
	}
	if faithful.IssueSpan < span-gap || faithful.IssueSpan > span+150*time.Millisecond {
		t.Fatalf("faithful issue span %v, captured span %v", faithful.IssueSpan, span)
	}

	scaled, err := Run(src, Options{Addr: tg.addr, Timing: Scaled, Speed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.IssueSpan > span/2 || scaled.IssueSpan < span/16 {
		t.Fatalf("4x-scaled issue span %v, captured span %v", scaled.IssueSpan, span)
	}

	fast, err := Run(src, Options{Addr: tg.addr, Timing: AsFast})
	if err != nil {
		t.Fatal(err)
	}
	if fast.IssueSpan > span/2 {
		t.Fatalf("as-fast issue span %v not faster than captured %v", fast.IssueSpan, span)
	}
	if fast.OpsPerSec <= faithful.OpsPerSec {
		t.Fatalf("as-fast %.0f ops/s not above faithful %.0f", fast.OpsPerSec, faithful.OpsPerSec)
	}
}

// TestReplayCaptureRoundTrip closes the full loop: drive a live
// workload, capture it, replay the capture against a second capturing
// server, and compare the two captures stream for stream.
func TestReplayCaptureRoundTrip(t *testing.T) {
	// First server: capture a real client workload.
	tg1, collect1 := newTarget(t)
	c, err := memfs.DialClient("tcp", tg1.addr)
	if err != nil {
		t.Fatal(err)
	}
	fh, size, err := c.Lookup(memfs.RootFH, "a")
	if err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < uint64(size); off += 16384 {
		if _, _, err := c.Read(fh, off, 16384); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	captured := collect1()
	if len(captured) == 0 {
		t.Fatal("nothing captured")
	}

	// Second server: replay the capture into a fresh capture. Handles
	// match because both stores were built identically.
	tg2, collect2 := newTarget(t)
	st, err := Run(captured, Options{Addr: tg2.addr, Timing: AsFast})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != int64(len(captured)) || st.Errors != 0 || st.NFSErrors != 0 {
		t.Fatalf("round-trip stats %+v", st)
	}
	matchStreams(t, expectedKeys(captured), keysByStream(collect2()))
}

// TestReplayDispatchesInArrivalOrder: .nft files hold records in
// completion order, where a pipelined stream's arrival times regress;
// replay must dispatch by arrival time, not file position.
func TestReplayDispatchesInArrivalOrder(t *testing.T) {
	tg, collect := newTarget(t)
	// One stream, file order scrambled relative to arrival (When) order:
	// completion-order capture of a pipelined client.
	src := []tracefile.Record{
		{When: 10 * time.Millisecond, Stream: 1, Proc: nfsproto.ProcRead, FH: uint64(tg.fhA), Offset: 8192, Count: 8192},
		{When: 5 * time.Millisecond, Stream: 1, Proc: nfsproto.ProcRead, FH: uint64(tg.fhA), Offset: 0, Count: 8192},
		{When: 15 * time.Millisecond, Stream: 1, Proc: nfsproto.ProcRead, FH: uint64(tg.fhA), Offset: 16384, Count: 8192},
	}
	if _, err := Run(src, Options{Addr: tg.addr, Timing: AsFast}); err != nil {
		t.Fatal(err)
	}
	got := keysByStream(collect())
	if len(got) != 1 {
		t.Fatalf("streams = %d", len(got))
	}
	for _, seq := range got {
		wantOffsets := []uint64{0, 8192, 16384} // arrival order, not file order
		if len(seq) != 3 {
			t.Fatalf("ops = %d", len(seq))
		}
		for i, k := range seq {
			if k.offset != wantOffsets[i] {
				t.Fatalf("dispatch order: op %d offset %d, want %d (file order leaked through)", i, k.offset, wantOffsets[i])
			}
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	recs := []tracefile.Record{{Proc: nfsproto.ProcNull}}
	for _, opts := range []Options{
		{},                                     // no addr
		{Addr: "x", Network: "sctp"},           // bad network
		{Addr: "x", Timing: Scaled},            // scaled without speed
		{Addr: "x", Timing: Scaled, Speed: -1}, // negative speed
	} {
		if _, err := Run(recs, opts); err == nil {
			t.Fatalf("options %+v accepted", opts)
		}
	}
	// Empty trace: no error, zero stats, no dial.
	st, err := Run(nil, Options{Addr: "127.0.0.1:1"})
	if err != nil || st.Ops != 0 {
		t.Fatalf("empty trace: %v %+v", err, st)
	}
}

// TestReplayWriteStabilityAndCommit replays an asynchronous write
// stream — UNSTABLE writes capped by COMMITs, plus one FILE_SYNC
// write — against a gathering live server and checks the server
// observed exactly the recorded stability mix and commit count.
func TestReplayWriteStabilityAndCommit(t *testing.T) {
	fs := memfs.NewFS()
	fh, _ := fs.Create(memfs.RootFH, "w", make([]byte, 256*1024))
	svc := memfs.NewServiceGather(fs, nil, nil, wgather.Config{Window: time.Minute})
	defer svc.Close()
	srv, err := memfs.NewServer("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var recs []tracefile.Record
	when := time.Duration(0)
	add := func(proc uint32, off uint64, count, stable uint32) {
		recs = append(recs, tracefile.Record{
			When: when, Stream: 1, Proc: proc, FH: uint64(fh),
			Offset: off, Count: count, Stable: stable,
		})
		when += time.Millisecond
	}
	for i := 0; i < 8; i++ {
		add(nfsproto.ProcWrite, uint64(i)*8192, 8192, nfsproto.WriteUnstable)
		if i%4 == 3 {
			add(nfsproto.ProcCommit, 0, 0, 0)
		}
	}
	add(nfsproto.ProcWrite, 8*8192, 8192, nfsproto.WriteFileSync)

	st, err := Run(recs, Options{Network: "tcp", Addr: srv.Addr(), Timing: AsFast})
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 0 || st.NFSErrors != 0 || st.Surrogates != 0 {
		t.Fatalf("replay stats %+v", st)
	}
	ws := svc.WriteStats()
	if ws.WritesUnstable != 8 || ws.WritesFileSync != 1 || ws.Commits != 2 {
		t.Fatalf("server observed unstable=%d filesync=%d commits=%d, want 8/1/2",
			ws.WritesUnstable, ws.WritesFileSync, ws.Commits)
	}
}

// TestReplayV1TraceStillWorks replays a version-1 (no stability field)
// stream: its writes must arrive FILE_SYNC — what the v1-era client
// actually sent — and the per-stream order must hold.
func TestReplayV1TraceStillWorks(t *testing.T) {
	fs := memfs.NewFS()
	fh, _ := fs.Create(memfs.RootFH, "w", make([]byte, 64*1024))
	svc := memfs.NewServiceGather(fs, nil, nil, wgather.Config{Window: time.Minute})
	defer svc.Close()
	srv, err := memfs.NewServer("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Simulate records loaded from a v1 file: the Reader synthesizes
	// Stable = V1Stable (FILE_SYNC).
	var recs []tracefile.Record
	for i := 0; i < 4; i++ {
		recs = append(recs, tracefile.Record{
			When: time.Duration(i) * time.Millisecond, Stream: 1,
			Proc: nfsproto.ProcWrite, FH: uint64(fh),
			Offset: uint64(i) * 8192, Count: 8192, Stable: tracefile.V1Stable,
		})
	}
	st, err := Run(recs, Options{Network: "udp", Addr: srv.Addr(), Timing: AsFast})
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 0 || st.NFSErrors != 0 {
		t.Fatalf("replay stats %+v", st)
	}
	ws := svc.WriteStats()
	if ws.WritesFileSync != 4 || ws.WritesUnstable != 0 {
		t.Fatalf("v1 writes arrived unstable=%d filesync=%d, want 0/4",
			ws.WritesUnstable, ws.WritesFileSync)
	}
	// FILE_SYNC write-through: everything already flushed, nothing dirty.
	if ws.DirtyBytes != 0 {
		t.Fatalf("dirty = %d after v1 replay", ws.DirtyBytes)
	}
}
