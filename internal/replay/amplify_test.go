package replay

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/rpcnet"
)

// TestReplayAmplify: M tenants replay the whole trace each — M× the
// ops, every per-stream sequence intact, zero errors.
func TestReplayAmplify(t *testing.T) {
	tg, collect := newTarget(t)
	src := traceFor(tg, 0)
	const tenants = 3
	// PoolSize = stream count: one pooled connection per stream, so the
	// capture tap sees each tenant×stream as its own server-side stream
	// and per-stream ordering is checkable. (The default pool would
	// share 2 sockets across all 6 streams — fewer sockets is the
	// point of pooling, but it interleaves sequences at the server.)
	st, err := Run(src, Options{
		Network: "tcp", Addr: tg.addr,
		OpenLoop: true, Amplify: tenants, PoolSize: 2 * tenants,
		TenantFH: func(tenant int, fh uint64) nfsproto.FH { return nfsproto.FH(fh) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants != tenants {
		t.Fatalf("Tenants = %d, want %d", st.Tenants, tenants)
	}
	if want := int64(len(src) * tenants); st.Ops != want {
		t.Fatalf("Ops = %d, want %d", st.Ops, want)
	}
	if st.Streams != 2*tenants {
		t.Fatalf("Streams = %d, want %d", st.Streams, 2*tenants)
	}
	if st.Errors != 0 || st.NFSErrors != 0 {
		t.Fatalf("errors: %+v", st)
	}

	// Each captured stream must carry one of the two source sequences;
	// each source sequence must appear exactly `tenants` times.
	want := expectedKeys(src)
	got := keysByStream(collect())
	if len(got) != 2*tenants {
		t.Fatalf("captured %d streams, want %d", len(got), 2*tenants)
	}
	matches := make(map[uint32]int)
	for gid, gseq := range got {
		found := false
		for wid, wseq := range want {
			if len(gseq) != len(wseq) {
				continue
			}
			same := true
			for i := range wseq {
				if wseq[i] != gseq[i] {
					same = false
					break
				}
			}
			if same {
				matches[wid]++
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("captured stream %d matches no source sequence", gid)
		}
	}
	for wid, n := range matches {
		if n != tenants {
			t.Fatalf("source stream %d replayed %d times, want %d", wid, n, tenants)
		}
	}
}

// TestReplayAmplifyPoolsConnections: an explicit pool bounds the
// socket count no matter the amplification factor.
func TestReplayAmplifyPoolsConnections(t *testing.T) {
	tg, _ := newTarget(t)
	src := traceFor(tg, 0)
	pool := NewPool("tcp", tg.addr, 3, 5*time.Second)
	defer pool.Close()
	st, err := Run(src, Options{
		Network: "tcp", Addr: tg.addr,
		OpenLoop: true, Amplify: 8,
		Dial: pool.Dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 0 || st.NFSErrors != 0 {
		t.Fatalf("errors: %+v", st)
	}
	if got := pool.Conns(); got != 3 {
		t.Fatalf("pool opened %d connections, want 3 (16 streams shared)", got)
	}
}

// TestPoolSurfacesExhaustionTyped: a dial failing with resource
// exhaustion fails the run immediately with the typed error — no
// hang, no silent retry.
func TestPoolSurfacesExhaustionTyped(t *testing.T) {
	tg, _ := newTarget(t)
	src := traceFor(tg, 0)
	pool := NewPool("tcp", tg.addr, 4, 0)
	pool.dialFn = func(network, addr string) (*rpcnet.Client, error) {
		return nil, fmt.Errorf("rpcnet: %w: dial tcp: %v",
			rpcnet.ErrConnExhausted, syscall.EADDRNOTAVAIL)
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(src, Options{
			Network: "tcp", Addr: tg.addr,
			Amplify: 4, Dial: pool.Dial,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, rpcnet.ErrConnExhausted) {
			t.Fatalf("err = %v, want ErrConnExhausted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("replay hung on exhausted dial")
	}
}
