// Package replay turns captured .nft traces (internal/tracefile) into
// live load: it replays a recorded request stream against a real server
// over UDP or TCP, preserving each client stream's request order while
// letting streams race each other — which is exactly how the paper's
// observed request reordering arises, now reproducible on demand from a
// file. Three timing policies are supported (as fast as possible,
// timestamp-faithful, speed-scaled) under either closed-loop dispatch
// (the next request waits for the previous reply, like a synchronous
// client) or open-loop dispatch (requests fire on the captured
// schedule regardless of outstanding replies, like independent client
// processes behind a kernel RPC pipeline).
package replay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/tracefile"
)

// Timing selects the replay schedule.
type Timing int

const (
	// AsFast ignores captured timestamps: each stream issues its next
	// request as soon as dispatch allows (back-to-back in closed loop).
	AsFast Timing = iota
	// Faithful reproduces the captured inter-arrival gaps.
	Faithful
	// Scaled reproduces the captured gaps divided by Options.Speed
	// (2 = twice as fast, 0.5 = half speed).
	Scaled
)

func (t Timing) String() string {
	switch t {
	case AsFast:
		return "as-fast-as-possible"
	case Faithful:
		return "faithful"
	case Scaled:
		return "scaled"
	default:
		return fmt.Sprintf("Timing(%d)", int(t))
	}
}

// Options configures a replay run.
type Options struct {
	// Network is "udp" or "tcp" (default "tcp").
	Network string
	// Addr is the target server.
	Addr string
	// Timing is the schedule policy; Speed applies when Timing is
	// Scaled (must be > 0).
	Timing Timing
	Speed  float64
	// OpenLoop fires requests on schedule without waiting for earlier
	// replies (bounded by Window); the default closed loop issues each
	// stream's next request only after the previous reply.
	OpenLoop bool
	// Window bounds outstanding requests per stream in open loop
	// (default 128).
	Window int
	// MapFH remaps captured file handles to the target server's (nil =
	// identity, for replays against the same store).
	MapFH func(uint64) nfsproto.FH
	// Timeout bounds each reply wait (default 10s).
	Timeout time.Duration
	// Amplify replays the trace as this many independent tenants
	// (default 1): every captured stream runs once per tenant,
	// concurrently, on the shared schedule — one laptop capture
	// becomes an M× cluster-scale load. Combined with Scaled timing
	// (K× speed) this is the paper-honest way to scale load: the op
	// mix, per-stream ordering and burstiness stay those of the
	// capture, only the tenant count and clock change.
	Amplify int
	// TenantFH remaps a captured handle for one tenant, giving each
	// tenant its own file set (nil = MapFH for every tenant, so
	// tenants share files).
	TenantFH func(tenant int, fh uint64) nfsproto.FH
	// Dial supplies the transport for a replay stream (nil = dedicated
	// rpcnet connection per stream to Network/Addr — except under
	// amplification, where streams share a Pool of PoolSize
	// connections; dialing per tenant×stream exhausts ephemeral
	// ports). Transports returned by a custom Dial are not closed by
	// Run; their owner closes them.
	Dial func(stream uint32) (Transport, error)
	// PoolSize bounds the automatic pool used when Amplify > 1 and
	// Dial is nil (default: one connection per captured stream, capped
	// at 16).
	PoolSize int
}

// Pending is one in-flight replayed call. *rpcnet.Pending satisfies
// it; so does a shard-aware client's redirect-chasing pending.
type Pending interface {
	Wait(d time.Duration) ([]byte, error)
}

// Transport issues a replay stream's calls. fh is the handle the call
// is routed by — a cluster transport hashes it to pick the shard; the
// plain transport ignores it.
type Transport interface {
	Go(proc uint32, fh nfsproto.FH, args []byte) Pending
	Close() error
}

// conn is the plain transport: one dedicated rpcnet connection.
type conn struct{ c *rpcnet.Client }

func (t conn) Go(proc uint32, fh nfsproto.FH, args []byte) Pending {
	return t.c.Go(proc, args)
}

func (t conn) Close() error { return t.c.Close() }

// dialConn opens a dedicated connection transport. The client-side
// timeout stays armed: it puts a write deadline on each send, so a
// stalled TCP target (accepting but never reading) fails the transport
// and the run finishes with errors counted instead of wedging forever
// in the writer.
func dialConn(opts *Options) (Transport, error) {
	c, err := rpcnet.Dial(opts.Network, opts.Addr, nfsproto.Program, nfsproto.Version3)
	if err != nil {
		return nil, err
	}
	c.SetTimeout(opts.Timeout)
	return conn{c}, nil
}

func (o *Options) fill() error {
	if o.Network == "" {
		o.Network = "tcp"
	}
	if o.Network != "udp" && o.Network != "tcp" {
		return fmt.Errorf("replay: unsupported network %q", o.Network)
	}
	if o.Addr == "" {
		return errors.New("replay: no target address")
	}
	switch o.Timing {
	case AsFast, Faithful:
	case Scaled:
		if !(o.Speed > 0) {
			return fmt.Errorf("replay: scaled timing needs Speed > 0, have %g", o.Speed)
		}
	default:
		return fmt.Errorf("replay: unknown timing policy %d", int(o.Timing))
	}
	if o.Window <= 0 {
		o.Window = 128
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Amplify <= 0 {
		o.Amplify = 1
	}
	return nil
}

// Stats summarizes a replay run.
type Stats struct {
	Ops        int64 // requests issued
	Errors     int64 // transport or RPC-layer failures
	NFSErrors  int64 // replies carrying a non-OK NFS status
	Surrogates int64 // ops without replayable args, sent as GETATTR
	Streams    int   // concurrent client streams (captured × tenants)
	Tenants    int   // amplification factor applied
	// Duration spans first issue to last completion; IssueSpan spans
	// first to last issue — under Faithful timing it should match the
	// captured trace's arrival span within scheduling noise.
	Duration  time.Duration
	IssueSpan time.Duration
	OpsPerSec float64
	// Reply latency percentiles (includes queueing delay in open loop).
	P50, P90, P99 time.Duration
}

// String renders the stats on one line.
func (s *Stats) String() string {
	return fmt.Sprintf("ops=%d streams=%d errors=%d nfserrors=%d surrogates=%d ops/s=%.0f span=%v p50=%v p99=%v",
		s.Ops, s.Streams, s.Errors, s.NFSErrors, s.Surrogates, s.OpsPerSec,
		s.IssueSpan.Round(time.Millisecond),
		s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond))
}

// streamResult is one stream goroutine's contribution.
type streamResult struct {
	ops, errors, nfsErrors, surrogates int64
	latencies                          []time.Duration
	firstIssue, lastIssue, lastDone    time.Time
	err                                error // dial failure; ops were not attempted
}

// File replays a trace file (see Run).
func File(path string, opts Options) (*Stats, error) {
	_, recs, err := tracefile.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Run(recs, opts)
}

// Run replays records against opts.Addr. Each captured stream gets its
// own connection and issues its records in captured order; streams run
// concurrently and race each other exactly as the original clients did.
// READ, WRITE, COMMIT, GETATTR, SETATTR, READDIR, READDIRPLUS and NULL
// are replayed natively (WRITE payloads are zero-filled to the captured
// length, at the captured stability level; READDIR scans restart from
// cookie 0 since captured cookies belong to the original server);
// procedures whose arguments a trace cannot reconstruct (LOOKUP,
// MKDIR, REMOVE and RENAME names, ACCESS bits, ...) are sent as
// GETATTR on the captured handle to preserve the request's slot in the
// schedule, and counted in Stats.Surrogates.
func Run(records []tracefile.Record, opts Options) (*Stats, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return &Stats{}, nil
	}

	// Split into per-stream schedules. The file stores records in
	// completion order (arrival times regress by up to a service
	// latency when the captured clients pipelined), so each stream is
	// stable-sorted by arrival time to recover the client's send order —
	// the order the transport delivered and the schedule to reproduce.
	streams := make(map[uint32][]tracefile.Record)
	var order []uint32
	origin := records[0].When
	for _, r := range records {
		if r.When < origin {
			origin = r.When
		}
		if _, ok := streams[r.Stream]; !ok {
			order = append(order, r.Stream)
		}
		streams[r.Stream] = append(streams[r.Stream], r)
	}
	for _, recs := range streams {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].When < recs[j].When })
	}

	// Transport plumbing: a custom Dial wins; otherwise amplified runs
	// share a bounded pool (tenants must not multiply the dial count)
	// and plain runs keep a dedicated connection per stream.
	dial := opts.Dial
	ownTransports := dial == nil
	if dial == nil {
		if opts.Amplify > 1 {
			size := opts.PoolSize
			if size <= 0 {
				size = len(order)
				if size > 16 {
					size = 16
				}
			}
			pool := NewPool(opts.Network, opts.Addr, size, opts.Timeout)
			defer pool.Close()
			dial = pool.Dial
			ownTransports = false // pool.Close owns the connections
		} else {
			dial = func(uint32) (Transport, error) { return dialConn(&opts) }
		}
	}

	start := time.Now()
	results := make(chan streamResult, len(order)*opts.Amplify)
	var wg sync.WaitGroup
	for tenant := 0; tenant < opts.Amplify; tenant++ {
		mapFH := opts.MapFH
		if opts.TenantFH != nil {
			t := tenant
			mapFH = func(fh uint64) nfsproto.FH { return opts.TenantFH(t, fh) }
		}
		for i, id := range order {
			wg.Add(1)
			// Distinct transport identity per (tenant, stream) so a
			// pool can spread them; record order within the stream is
			// preserved per goroutine exactly as before.
			streamID := uint32(tenant*len(order) + i)
			go func(recs []tracefile.Record, streamID uint32, mapFH func(uint64) nfsproto.FH) {
				defer wg.Done()
				results <- replayStream(recs, origin, start, &opts, dial, streamID, ownTransports, mapFH)
			}(streams[id], streamID, mapFH)
		}
	}
	wg.Wait()
	close(results)

	st := &Stats{Streams: len(order) * opts.Amplify, Tenants: opts.Amplify}
	var all []time.Duration
	var firstIssue, lastIssue, lastDone time.Time
	for r := range results {
		if r.err != nil {
			return nil, r.err
		}
		st.Ops += r.ops
		st.Errors += r.errors
		st.NFSErrors += r.nfsErrors
		st.Surrogates += r.surrogates
		all = append(all, r.latencies...)
		if firstIssue.IsZero() || r.firstIssue.Before(firstIssue) {
			firstIssue = r.firstIssue
		}
		if r.lastIssue.After(lastIssue) {
			lastIssue = r.lastIssue
		}
		if r.lastDone.After(lastDone) {
			lastDone = r.lastDone
		}
	}
	if !firstIssue.IsZero() {
		st.Duration = lastDone.Sub(firstIssue)
		st.IssueSpan = lastIssue.Sub(firstIssue)
	}
	if st.Duration > 0 {
		st.OpsPerSec = float64(st.Ops) / st.Duration.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	st.P50, st.P90, st.P99 = pct(0.50), pct(0.90), pct(0.99)
	return st, nil
}

// inflight is one open-loop request awaiting its reply.
type inflight struct {
	p         Pending
	issued    time.Time
	surrogate bool
}

// replayStream drives one captured stream over its transport.
func replayStream(recs []tracefile.Record, origin time.Duration, start time.Time,
	opts *Options, dial func(uint32) (Transport, error), streamID uint32,
	ownTransport bool, mapFH func(uint64) nfsproto.FH) streamResult {
	var res streamResult
	t, err := dial(streamID)
	if err != nil {
		res.err = err
		return res
	}
	if ownTransport {
		defer t.Close()
	}

	res.latencies = make([]time.Duration, 0, len(recs))
	settle := func(fl inflight) {
		body, err := fl.p.Wait(opts.Timeout)
		now := time.Now()
		res.latencies = append(res.latencies, now.Sub(fl.issued))
		if now.After(res.lastDone) {
			res.lastDone = now
		}
		switch {
		case err != nil:
			res.errors++
		case !fl.surrogate && len(body) >= 4:
			// nfsstat3 opens every non-NULL result.
			if binary.BigEndian.Uint32(body) != nfsproto.OK {
				res.nfsErrors++
			}
		}
	}

	var pending chan inflight
	var drained sync.WaitGroup
	if opts.OpenLoop {
		// The collector settles replies while the scheduler keeps
		// firing; the channel capacity is the outstanding-request
		// window.
		pending = make(chan inflight, opts.Window)
		drained.Add(1)
		go func() {
			defer drained.Done()
			for fl := range pending {
				settle(fl)
			}
		}()
	}

	for _, rec := range recs {
		// Schedule: captured offset from the trace origin, scaled.
		switch opts.Timing {
		case Faithful:
			time.Sleep(time.Until(start.Add(rec.When - origin)))
		case Scaled:
			time.Sleep(time.Until(start.Add(time.Duration(float64(rec.When-origin) / opts.Speed))))
		}
		proc, fh, args, surrogate := buildCall(rec, mapFH)
		if surrogate {
			res.surrogates++
		}
		issued := time.Now()
		if res.firstIssue.IsZero() {
			res.firstIssue = issued
		}
		res.lastIssue = issued
		res.ops++
		fl := inflight{p: t.Go(proc, fh, args), issued: issued, surrogate: surrogate}
		if opts.OpenLoop {
			pending <- fl
		} else {
			settle(fl)
		}
	}
	if opts.OpenLoop {
		close(pending)
		drained.Wait()
	}
	return res
}

// buildCall reconstructs a request's procedure, routing handle and
// arguments from its trace record. NULL proc replays with no arguments
// even when recorded with stray fields.
func buildCall(rec tracefile.Record, mapFH func(uint64) nfsproto.FH) (proc uint32, fh nfsproto.FH, args []byte, surrogate bool) {
	fh = nfsproto.FH(rec.FH)
	if mapFH != nil {
		fh = mapFH(rec.FH)
	}
	switch rec.Proc {
	case nfsproto.ProcNull:
		return nfsproto.ProcNull, fh, nil, false
	case nfsproto.ProcGetattr:
		return rec.Proc, fh, (&nfsproto.GetattrArgs{FH: fh}).Marshal(), false
	case nfsproto.ProcRead:
		return rec.Proc, fh, (&nfsproto.ReadArgs{FH: fh, Offset: rec.Offset, Count: rec.Count}).Marshal(), false
	case nfsproto.ProcWrite:
		// The captured payload is not stored; a zero-fill of the same
		// length exercises the same wire and storage path. The recorded
		// stability is replayed faithfully (v1 traces surface FILE_SYNC,
		// what their era's client sent), so a captured asynchronous
		// write stream drives the target's gathering engine the same way
		// the original did.
		w := &nfsproto.WriteArgs{FH: fh, Offset: rec.Offset, Count: rec.Count,
			Stable: rec.Stable, DataLen: rec.Count}
		return rec.Proc, fh, w.Marshal(), false
	case nfsproto.ProcCommit:
		return rec.Proc, fh, (&nfsproto.CommitArgs{FH: fh, Offset: rec.Offset, Count: rec.Count}).Marshal(), false
	case nfsproto.ProcSetattr:
		// Capture stores the requested size in Offset.
		return rec.Proc, fh, (&nfsproto.SetattrArgs{FH: fh, Size: rec.Offset}).Marshal(), false
	case nfsproto.ProcReaddir:
		// Captured cookies belong to the original server's scan state;
		// replaying them verbatim against a fresh store would draw
		// BAD_COOKIE. A fresh scan (cookie 0) at the captured count
		// exercises the same directory and reply-size path.
		return rec.Proc, fh, (&nfsproto.ReaddirArgs{Dir: fh, Count: rec.Count}).Marshal(), false
	case nfsproto.ProcReaddirplus:
		return rec.Proc, fh, (&nfsproto.ReaddirplusArgs{Dir: fh, DirCount: rec.Count, MaxCount: rec.Count}).Marshal(), false
	default:
		// LOOKUP names, ACCESS bits and CREATE/MKDIR/REMOVE/RENAME name
		// arguments are not in the trace; a GETATTR on the captured
		// (directory) handle keeps the request's slot (and its handle
		// locality) in the replayed schedule.
		return nfsproto.ProcGetattr, fh, (&nfsproto.GetattrArgs{FH: fh}).Marshal(), true
	}
}
