package replay

import (
	"sync"
	"time"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/rpcnet"
)

// Pool shares a bounded set of connections to one target across replay
// streams. Amplified replay multiplies stream count by the tenant
// factor; dialing per stream at M×K scale burns through ephemeral
// ports and file descriptors (rpcnet.ErrConnExhausted is the typed
// symptom), so the pool hands the same connections out round-robin —
// rpcnet clients pipeline safely across goroutines, each stream's send
// order is preserved because Go issues before returning, and the total
// socket count stays at Size regardless of amplification.
type Pool struct {
	network, addr string
	size          int
	timeout       time.Duration

	// dialFn is swappable for tests (fault-injected dial outcomes).
	dialFn func(network, addr string) (*rpcnet.Client, error)

	mu    sync.Mutex
	conns []*rpcnet.Client
	next  int
}

// NewPool builds a pool of at most size connections to addr.
func NewPool(network, addr string, size int, timeout time.Duration) *Pool {
	if size <= 0 {
		size = 1
	}
	return &Pool{
		network: network, addr: addr, size: size, timeout: timeout,
		dialFn: func(network, addr string) (*rpcnet.Client, error) {
			return rpcnet.Dial(network, addr, nfsproto.Program, nfsproto.Version3)
		},
	}
}

// Dial is a replay Options.Dial: it returns a shared-connection
// transport, dialing lazily until the pool is full, then reusing
// round-robin. A dial failure — including the typed
// rpcnet.ErrConnExhausted — surfaces to the stream immediately instead
// of hanging the run.
func (p *Pool) Dial(stream uint32) (Transport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.conns) < p.size {
		c, err := p.dialFn(p.network, p.addr)
		if err != nil {
			return nil, err
		}
		if p.timeout > 0 {
			c.SetTimeout(p.timeout)
		}
		p.conns = append(p.conns, c)
		return shared{c}, nil
	}
	c := p.conns[p.next%len(p.conns)]
	p.next++
	return shared{c}, nil
}

// Conns reports how many connections the pool opened.
func (p *Pool) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Close closes every pooled connection.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var first error
	for _, c := range p.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	p.conns = nil
	return first
}

// shared is a pooled connection handed to one stream; Close is a no-op
// because the pool owns the connection's lifetime.
type shared struct{ c *rpcnet.Client }

func (s shared) Go(proc uint32, fh nfsproto.FH, args []byte) Pending {
	return s.c.Go(proc, args)
}

func (s shared) Close() error { return nil }
