// Package netsim models the paper's benchmark network: hosts with
// gigabit NICs behind a store-and-forward switch, with the server's
// effective bandwidth capped by its PCI/DMA path (the paper measured
// 54 MB/s against the 1 Gb/s link). Messages carry typed payloads plus
// their exact wire size; the network charges serialization per Ethernet
// frame, fragments UDP datagrams at the MTU (losing a whole datagram if
// any fragment is lost), and provides an in-order reliable stream for
// NFS-over-TCP.
package netsim

import (
	"fmt"
	"time"

	"nfstricks/internal/sim"
)

// Config sets network-wide parameters.
type Config struct {
	// LinkBps is the link speed in bits per second (default 1 Gb/s).
	LinkBps float64
	// SwitchLatency is the fixed store-and-forward + propagation delay.
	SwitchLatency time.Duration
	// MTU is the Ethernet payload limit (default 1500).
	MTU int
	// FrameOverhead is per-frame bytes beyond the IP payload (Ethernet
	// header/CRC/preamble/gap; default 38).
	FrameOverhead int
	// LossProb is the per-frame loss probability (default 0: the
	// paper's fully switched LAN).
	LossProb float64
	// MSS is the TCP maximum segment size (default 1448).
	MSS int
}

func (c *Config) fill() {
	if c.LinkBps == 0 {
		c.LinkBps = 1e9
	}
	if c.SwitchLatency == 0 {
		c.SwitchLatency = 20 * time.Microsecond
	}
	if c.MTU == 0 {
		c.MTU = 1500
	}
	if c.FrameOverhead == 0 {
		c.FrameOverhead = 38
	}
	if c.MSS == 0 {
		c.MSS = 1448
	}
}

// ipUDPHeader is the IP+UDP header size consumed from each fragment.
const ipUDPHeader = 28

// ipTCPHeader is the IP+TCP header size per segment.
const ipTCPHeader = 40

// Message is a payload in flight: a typed value plus its exact size in
// bytes as it would appear on the wire (RPC message, pre-IP).
type Message struct {
	Payload any
	Size    int
}

// Addr names a socket endpoint.
type Addr struct {
	Host string
	Port int
}

// String renders "host:port".
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// Packet is a received datagram.
type Packet struct {
	From Addr
	Msg  Message
}

// Stats counts network activity.
type Stats struct {
	FramesSent     int64
	BytesSent      int64
	DatagramsSent  int64
	DatagramsLost  int64
	SegmentsSent   int64
	MessagesQueued int64
}

// Network is the switch fabric connecting hosts.
type Network struct {
	k     *sim.Kernel
	cfg   Config
	hosts map[string]*Host
	stats Stats
}

// New creates a network on kernel k.
func New(k *sim.Kernel, cfg Config) *Network {
	cfg.fill()
	return &Network{k: k, cfg: cfg, hosts: make(map[string]*Host)}
}

// Stats returns a copy of the counters.
func (n *Network) Stats() Stats { return n.stats }

// Host registers a host. dmaBps caps the host's effective send rate in
// BYTES per second (0 = no cap beyond the link): the paper's server
// could push only ~54 MB/s through its PCI bus.
func (n *Network) Host(name string, dmaBps float64) *Host {
	if _, dup := n.hosts[name]; dup {
		panic("netsim: duplicate host " + name)
	}
	h := &Host{name: name, net: n, dmaBps: dmaBps,
		udp:       make(map[int]*UDPSocket),
		listeners: make(map[int]*Listener),
	}
	n.hosts[name] = h
	return h
}

// Host is a machine on the network with one NIC.
type Host struct {
	name   string
	net    *Network
	dmaBps float64
	txFree time.Duration // when the NIC finishes its current backlog

	udp       map[int]*UDPSocket
	listeners map[int]*Listener
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// effByteRate is the host's effective transmit rate in bytes/second.
func (h *Host) effByteRate() float64 {
	rate := h.net.cfg.LinkBps / 8
	if h.dmaBps > 0 && h.dmaBps < rate {
		rate = h.dmaBps
	}
	return rate
}

// transmit serializes wireBytes out of the NIC (FIFO with prior
// transmissions) and returns the arrival time at the far side of the
// switch.
func (h *Host) transmit(wireBytes int) time.Duration {
	now := h.net.k.Now()
	start := now
	if h.txFree > start {
		start = h.txFree
	}
	dur := time.Duration(float64(wireBytes) / h.effByteRate() * float64(time.Second))
	h.txFree = start + dur
	h.net.stats.BytesSent += int64(wireBytes)
	return h.txFree + h.net.cfg.SwitchLatency
}

// fragments returns the per-frame payload sizes for n bytes of
// IP-layer payload under the MTU.
func (n *Network) fragments(payload, perFragHeader int) []int {
	maxData := n.cfg.MTU - perFragHeader
	var out []int
	for payload > 0 {
		f := payload
		if f > maxData {
			f = maxData
		}
		out = append(out, f+perFragHeader+n.cfg.FrameOverhead)
		payload -= f
	}
	if len(out) == 0 {
		out = []int{perFragHeader + n.cfg.FrameOverhead}
	}
	return out
}

// UDPSocket is a bound datagram socket.
type UDPSocket struct {
	host *Host
	port int
	rx   *sim.Chan[Packet]
}

// UDP binds a datagram socket on port.
func (h *Host) UDP(port int) *UDPSocket {
	if _, dup := h.udp[port]; dup {
		panic(fmt.Sprintf("netsim: %s UDP port %d in use", h.name, port))
	}
	s := &UDPSocket{host: h, port: port, rx: sim.NewChan[Packet](h.net.k)}
	h.udp[port] = s
	return s
}

// Addr returns the socket's address.
func (s *UDPSocket) Addr() Addr { return Addr{Host: s.host.name, Port: s.port} }

// SendTo transmits msg as one datagram. Oversized messages are
// fragmented; loss of any fragment loses the datagram silently (UDP
// semantics — the RPC layer above retransmits).
func (s *UDPSocket) SendTo(dst Addr, msg Message) {
	n := s.host.net
	n.stats.DatagramsSent++
	lost := false
	var arrival time.Duration
	for _, frame := range n.fragments(msg.Size, ipUDPHeader) {
		arrival = s.host.transmit(frame)
		n.stats.FramesSent++
		if n.cfg.LossProb > 0 && n.k.Rand().Float64() < n.cfg.LossProb {
			lost = true
		}
	}
	if lost {
		n.stats.DatagramsLost++
		return
	}
	dstHost, ok := n.hosts[dst.Host]
	if !ok {
		return // unroutable: silently dropped, like real UDP
	}
	dstSock, ok := dstHost.udp[dst.Port]
	if !ok {
		return // port unreachable
	}
	from := s.Addr()
	n.k.Schedule(arrival-n.k.Now(), func() {
		dstSock.rx.Send(Packet{From: from, Msg: msg})
	})
}

// Recv blocks until a datagram arrives.
func (s *UDPSocket) Recv(p *sim.Proc) Packet { return s.rx.Recv(p) }

// Pending reports queued datagrams.
func (s *UDPSocket) Pending() int { return s.rx.Len() }

// Listener accepts stream connections on a port.
type Listener struct {
	host    *Host
	port    int
	backlog *sim.Chan[*Conn]
}

// Listen binds a stream listener on port.
func (h *Host) Listen(port int) *Listener {
	if _, dup := h.listeners[port]; dup {
		panic(fmt.Sprintf("netsim: %s TCP port %d in use", h.name, port))
	}
	l := &Listener{host: h, port: port, backlog: sim.NewChan[*Conn](h.net.k)}
	h.listeners[port] = l
	return l
}

// Accept blocks until a connection arrives.
func (l *Listener) Accept(p *sim.Proc) *Conn { return l.backlog.Recv(p) }

// Conn is one endpoint of an established in-order reliable stream — the
// NFS-over-TCP transport. Messages are segmented at the MSS and
// serialized through the sender's NIC; delivery is strictly FIFO per
// direction (the property that keeps TCP-mounted NFS requests in
// order). Loss and retransmission are not modelled: the paper's LAN is
// fully switched and effectively loss-free for TCP.
type Conn struct {
	host *Host
	peer *Conn
	rx   *sim.Chan[Message]
}

// Dial opens a stream from h to dst, handing the passive end to dst's
// listener. It never blocks (the handshake cost is folded into the
// first message's latency, a deliberate simplification).
func (h *Host) Dial(dst Addr) (*Conn, error) {
	dstHost, ok := h.net.hosts[dst.Host]
	if !ok {
		return nil, fmt.Errorf("netsim: no host %q", dst.Host)
	}
	l, ok := dstHost.listeners[dst.Port]
	if !ok {
		return nil, fmt.Errorf("netsim: connection refused at %s", dst)
	}
	local := &Conn{host: h, rx: sim.NewChan[Message](h.net.k)}
	remote := &Conn{host: dstHost, rx: sim.NewChan[Message](h.net.k)}
	local.peer, remote.peer = remote, local
	l.backlog.Send(remote)
	return local, nil
}

// Send transmits msg on the stream. The +4 accounts for RPC record
// marking, which NFS-over-TCP requires.
func (c *Conn) Send(msg Message) {
	n := c.host.net
	n.stats.MessagesQueued++
	bytes := msg.Size + 4
	var arrival time.Duration
	for bytes > 0 {
		seg := bytes
		if seg > n.cfg.MSS {
			seg = n.cfg.MSS
		}
		arrival = c.host.transmit(seg + ipTCPHeader + n.cfg.FrameOverhead)
		n.stats.SegmentsSent++
		n.stats.FramesSent++
		bytes -= seg
	}
	peer := c.peer
	n.k.Schedule(arrival-n.k.Now(), func() {
		peer.rx.Send(msg)
	})
}

// Recv blocks until a message arrives.
func (c *Conn) Recv(p *sim.Proc) Message { return c.rx.Recv(p) }

// Pending reports queued messages.
func (c *Conn) Pending() int { return c.rx.Len() }

// SegmentsFor reports how many TCP segments a message of size bytes
// occupies — used by endpoints to charge per-segment protocol CPU.
func (n *Network) SegmentsFor(size int) int {
	bytes := size + 4
	segs := (bytes + n.cfg.MSS - 1) / n.cfg.MSS
	if segs < 1 {
		segs = 1
	}
	return segs
}
