package netsim

import (
	"testing"
	"time"

	"nfstricks/internal/sim"
)

func pair(seed int64, cfg Config) (*sim.Kernel, *Network, *Host, *Host) {
	k := sim.NewKernel(seed)
	n := New(k, cfg)
	a := n.Host("client", 0)
	b := n.Host("server", 54e6)
	return k, n, a, b
}

func TestUDPDelivery(t *testing.T) {
	k, _, a, b := pair(1, Config{})
	sa := a.UDP(1000)
	sb := b.UDP(2049)
	var got Packet
	k.Go("rx", func(p *sim.Proc) { got = sb.Recv(p) })
	k.Go("tx", func(p *sim.Proc) {
		sa.SendTo(sb.Addr(), Message{Payload: "hello", Size: 100})
	})
	k.Run()
	k.Shutdown()
	if got.Msg.Payload != "hello" || got.Msg.Size != 100 {
		t.Fatalf("got %+v", got)
	}
	if got.From != sa.Addr() {
		t.Fatalf("from = %v", got.From)
	}
}

func TestUDPLatencyScalesWithSize(t *testing.T) {
	arrival := func(size int) time.Duration {
		k, _, a, b := pair(1, Config{})
		sa := a.UDP(1)
		sb := b.UDP(2)
		var at time.Duration
		k.Go("rx", func(p *sim.Proc) {
			sb.Recv(p)
			at = p.Now()
		})
		sa.SendTo(sb.Addr(), Message{Size: size})
		k.Run()
		k.Shutdown()
		return at
	}
	small, big := arrival(100), arrival(64*1024)
	if big <= small {
		t.Fatalf("64KB (%v) not slower than 100B (%v)", big, small)
	}
	// 64 KB at 1 Gb/s is ~0.5 ms of serialization.
	if big < 400*time.Microsecond || big > 2*time.Millisecond {
		t.Fatalf("64KB arrival = %v, outside plausible range", big)
	}
}

func TestUDPFragmentationCounts(t *testing.T) {
	k, n, a, b := pair(1, Config{})
	sa := a.UDP(1)
	sb := b.UDP(2)
	sa.SendTo(sb.Addr(), Message{Size: 8192 + 120}) // an 8KB READ reply
	k.Run()
	st := n.Stats()
	// 8312 bytes + 28 header over 1472-byte fragments = 6 frames.
	if st.FramesSent != 6 {
		t.Fatalf("frames = %d, want 6", st.FramesSent)
	}
	if st.DatagramsSent != 1 {
		t.Fatalf("datagrams = %d", st.DatagramsSent)
	}
}

func TestUDPLossDropsWholeDatagram(t *testing.T) {
	k, n, a, b := pair(1, Config{LossProb: 1.0})
	sa := a.UDP(1)
	sb := b.UDP(2)
	received := false
	k.Go("rx", func(p *sim.Proc) {
		sb.Recv(p)
		received = true
	})
	sa.SendTo(sb.Addr(), Message{Size: 5000})
	k.Run()
	k.Shutdown()
	if received {
		t.Fatal("datagram survived 100% loss")
	}
	if n.Stats().DatagramsLost != 1 {
		t.Fatalf("lost = %d", n.Stats().DatagramsLost)
	}
}

func TestUDPUnroutableSilentlyDropped(t *testing.T) {
	k, _, a, _ := pair(1, Config{})
	sa := a.UDP(1)
	sa.SendTo(Addr{Host: "nowhere", Port: 9}, Message{Size: 10})
	sa.SendTo(Addr{Host: "server", Port: 9999}, Message{Size: 10})
	k.Run() // must not panic
}

func TestNICSerializesBackToBack(t *testing.T) {
	// Two datagrams sent at the same instant must arrive separated by
	// at least the serialization time of the first.
	k, _, a, b := pair(1, Config{})
	sa := a.UDP(1)
	sb := b.UDP(2)
	var arrivals []time.Duration
	k.Go("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			sb.Recv(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	sa.SendTo(sb.Addr(), Message{Size: 60000})
	sa.SendTo(sb.Addr(), Message{Size: 60000})
	k.Run()
	k.Shutdown()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	gap := arrivals[1] - arrivals[0]
	if gap < 400*time.Microsecond {
		t.Fatalf("second datagram arrived %v after first; NIC not serializing", gap)
	}
}

func TestDMACapSlowsServerSends(t *testing.T) {
	// The server's DMA cap (54 MB/s) must make its sends slower than
	// the client's (uncapped, 125 MB/s link rate).
	// Direct comparison: send ~1 MB each way.
	send := func(srcName, dstName string, dma bool) time.Duration {
		k := sim.NewKernel(1)
		n := New(k, Config{})
		c := n.Host("client", 0)
		s := n.Host("server", 54e6)
		hosts := map[string]*Host{"client": c, "server": s}
		_ = dma
		src := hosts[srcName].UDP(1)
		dst := hosts[dstName].UDP(2)
		var at time.Duration
		k.Go("rx", func(p *sim.Proc) {
			for i := 0; i < 16; i++ {
				dst.Recv(p)
			}
			at = p.Now()
		})
		for i := 0; i < 16; i++ {
			src.SendTo(dst.Addr(), Message{Size: 65000})
		}
		k.Run()
		k.Shutdown()
		return at
	}
	fromServer := send("server", "client", true)
	fromClient := send("client", "server", false)
	if fromServer <= fromClient {
		t.Fatalf("DMA-capped server (%v) not slower than client (%v)", fromServer, fromClient)
	}
	rate := 16 * 65000 / fromServer.Seconds() / 1e6
	if rate > 56 || rate < 40 {
		t.Fatalf("server send rate %.1f MB/s, want ~54", rate)
	}
}

func TestStreamInOrderDelivery(t *testing.T) {
	k, _, a, b := pair(1, Config{})
	l := b.Listen(2049)
	var got []int
	k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		for i := 0; i < 50; i++ {
			m := c.Recv(p)
			got = append(got, m.Payload.(int))
		}
	})
	k.Go("client", func(p *sim.Proc) {
		c, err := a.Dial(Addr{Host: "server", Port: 2049})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 50; i++ {
			c.Send(Message{Payload: i, Size: 100 + i*37})
			if i%7 == 0 {
				p.Sleep(time.Duration(i) * time.Microsecond)
			}
		}
	})
	k.Run()
	k.Shutdown()
	if len(got) != 50 {
		t.Fatalf("received %d messages", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out-of-order delivery at %d: %v", i, got[:i+1])
		}
	}
}

func TestStreamBidirectional(t *testing.T) {
	k, _, a, b := pair(1, Config{})
	l := b.Listen(2049)
	var reply Message
	k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		m := c.Recv(p)
		c.Send(Message{Payload: m.Payload.(string) + "-reply", Size: 200})
	})
	k.Go("client", func(p *sim.Proc) {
		c, _ := a.Dial(Addr{Host: "server", Port: 2049})
		c.Send(Message{Payload: "req", Size: 120})
		reply = c.Recv(p)
	})
	k.Run()
	k.Shutdown()
	if reply.Payload != "req-reply" {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestDialUnknownHost(t *testing.T) {
	_, _, a, _ := pair(1, Config{})
	if _, err := a.Dial(Addr{Host: "ghost", Port: 1}); err == nil {
		t.Fatal("dial to unknown host succeeded")
	}
	if _, err := a.Dial(Addr{Host: "server", Port: 7777}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestSegmentsFor(t *testing.T) {
	_, n, _, _ := pair(1, Config{})
	if s := n.SegmentsFor(100); s != 1 {
		t.Fatalf("small message segments = %d", s)
	}
	if s := n.SegmentsFor(8192 + 120); s != 6 {
		t.Fatalf("8KB reply segments = %d, want 6", s)
	}
}

func TestDuplicatePortPanics(t *testing.T) {
	_, _, a, _ := pair(1, Config{})
	a.UDP(5)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate UDP bind accepted")
		}
	}()
	a.UDP(5)
}
