package iosched

// Elevator is a cyclical one-way SCAN (C-LOOK), modelled on FreeBSD's
// bufqdisksort: requests at or beyond the last serviced position join the
// current sweep; requests behind it wait for the next sweep. Because a
// stream reading sequentially keeps inserting requests just ahead of the
// head, it can monopolize the current sweep — the unfairness the paper
// demonstrates in Figure 3.
type Elevator struct {
	cur  []Item // current sweep, ascending LBA
	next []Item // next sweep, ascending LBA
	last int64  // LBA of the most recently popped request
}

// NewElevator returns an empty elevator starting its sweep at LBA 0.
func NewElevator() *Elevator { return &Elevator{} }

// Push implements Scheduler. Requests at or past the sweep position join
// the current sweep (and may be serviced before older requests behind
// the head).
func (e *Elevator) Push(it Item) {
	if it.Pos() >= e.last {
		e.cur = insertSorted(e.cur, it)
	} else {
		e.next = insertSorted(e.next, it)
	}
}

// Pop implements Scheduler.
func (e *Elevator) Pop(head int64) Item {
	if len(e.cur) == 0 {
		e.cur, e.next = e.next, nil
		e.last = 0
	}
	it := e.cur[0]
	copy(e.cur, e.cur[1:])
	e.cur[len(e.cur)-1] = nil
	e.cur = e.cur[:len(e.cur)-1]
	e.last = it.Pos()
	return it
}

// Len implements Scheduler.
func (e *Elevator) Len() int { return len(e.cur) + len(e.next) }

// Name implements Scheduler.
func (e *Elevator) Name() string { return "elevator" }

// NCSCAN is the N-step CSCAN variant the paper patches into FreeBSD:
// the schedule for the current scan is frozen, and every arrival —
// wherever it lands — waits for the next scan. The expected latency of
// each operation is proportional to the queue length when the sweep
// begins, which makes service fair at a substantial throughput cost
// (Figure 3).
type NCSCAN struct {
	cur  []Item
	next []Item
}

// NewNCSCAN returns an empty N-step CSCAN scheduler.
func NewNCSCAN() *NCSCAN { return &NCSCAN{} }

// Push implements Scheduler. Arrivals never join the in-progress sweep.
func (n *NCSCAN) Push(it Item) { n.next = insertSorted(n.next, it) }

// Pop implements Scheduler.
func (n *NCSCAN) Pop(head int64) Item {
	if len(n.cur) == 0 {
		n.cur, n.next = n.next, nil
	}
	it := n.cur[0]
	copy(n.cur, n.cur[1:])
	n.cur[len(n.cur)-1] = nil
	n.cur = n.cur[:len(n.cur)-1]
	return it
}

// Len implements Scheduler.
func (n *NCSCAN) Len() int { return len(n.cur) + len(n.next) }

// Name implements Scheduler.
func (n *NCSCAN) Name() string { return "ncscan" }
