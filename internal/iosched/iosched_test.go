package iosched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type req int64

func (r req) Pos() int64 { return int64(r) }

func drain(s Scheduler, head int64) []int64 {
	var out []int64
	for s.Len() > 0 {
		it := s.Pop(head)
		head = it.Pos()
		out = append(out, head)
	}
	return out
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO()
	for _, p := range []int64{5, 1, 9, 3} {
		f.Push(req(p))
	}
	got := drain(f, 0)
	want := []int64{5, 1, 9, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FIFO order = %v, want %v", got, want)
		}
	}
}

func TestSSTFPicksNearest(t *testing.T) {
	s := NewSSTF()
	for _, p := range []int64{100, 10, 55} {
		s.Push(req(p))
	}
	if it := s.Pop(50); it.Pos() != 55 {
		t.Fatalf("SSTF from 50 picked %d, want 55", it.Pos())
	}
	// From 55, LBAs 10 and 100 are equidistant; the tie breaks low.
	if it := s.Pop(55); it.Pos() != 10 {
		t.Fatalf("SSTF from 55 picked %d, want 10 (tie breaks low)", it.Pos())
	}
	if it := s.Pop(10); it.Pos() != 100 {
		t.Fatalf("SSTF from 10 picked %d, want 100", it.Pos())
	}
}

func TestSSTFTieBreaksLow(t *testing.T) {
	s := NewSSTF()
	s.Push(req(40))
	s.Push(req(60))
	if it := s.Pop(50); it.Pos() != 40 {
		t.Fatalf("SSTF tie picked %d, want 40", it.Pos())
	}
}

func TestElevatorAscendingSweep(t *testing.T) {
	e := NewElevator()
	for _, p := range []int64{30, 10, 20} {
		e.Push(req(p))
	}
	got := drain(e, 0)
	want := []int64{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep order = %v, want %v", got, want)
		}
	}
}

func TestElevatorAdmitsAheadOfHead(t *testing.T) {
	e := NewElevator()
	e.Push(req(10))
	e.Push(req(1000))
	if e.Pop(0).Pos() != 10 {
		t.Fatal("expected 10 first")
	}
	// A new request just ahead of the head jumps the far request: the
	// unfairness mechanism from the paper.
	e.Push(req(11))
	if got := e.Pop(10).Pos(); got != 11 {
		t.Fatalf("elevator served %d, want 11 (ahead-of-head insertion)", got)
	}
	if got := e.Pop(11).Pos(); got != 1000 {
		t.Fatalf("elevator served %d, want 1000", got)
	}
}

func TestElevatorBehindHeadWaitsForNextSweep(t *testing.T) {
	e := NewElevator()
	e.Push(req(100))
	if e.Pop(0).Pos() != 100 {
		t.Fatal("expected 100")
	}
	e.Push(req(50))  // behind: next sweep
	e.Push(req(150)) // ahead: current sweep
	if got := e.Pop(100).Pos(); got != 150 {
		t.Fatalf("served %d, want 150", got)
	}
	if got := e.Pop(150).Pos(); got != 50 {
		t.Fatalf("served %d, want 50 on next sweep", got)
	}
}

func TestNCSCANFreezesCurrentSweep(t *testing.T) {
	n := NewNCSCAN()
	n.Push(req(10))
	n.Push(req(100))
	if n.Pop(0).Pos() != 10 {
		t.Fatal("expected 10")
	}
	// Arrival ahead of head must NOT jump into the current sweep.
	n.Push(req(11))
	if got := n.Pop(10).Pos(); got != 100 {
		t.Fatalf("N-CSCAN served %d, want 100 (sweep frozen)", got)
	}
	if got := n.Pop(100).Pos(); got != 11 {
		t.Fatalf("N-CSCAN served %d, want 11 on next sweep", got)
	}
}

func TestNCSCANSweepSorted(t *testing.T) {
	n := NewNCSCAN()
	for _, p := range []int64{9, 3, 7, 1} {
		n.Push(req(p))
	}
	got := drain(n, 0)
	want := []int64{1, 3, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
}

func TestSchedulersConserveRequests(t *testing.T) {
	// Property: every pushed request is popped exactly once, regardless
	// of interleaving of pushes and pops.
	f := func(ops []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, mk := range []Factory{
			func() Scheduler { return NewFIFO() },
			func() Scheduler { return NewSSTF() },
			func() Scheduler { return NewElevator() },
			func() Scheduler { return NewNCSCAN() },
		} {
			s := mk()
			pushed := make(map[int64]int)
			popped := make(map[int64]int)
			head := int64(0)
			for _, op := range ops {
				if op%2 == 0 || s.Len() == 0 {
					p := int64(rng.Intn(1 << 20))
					pushed[p]++
					s.Push(req(p))
				} else {
					it := s.Pop(head)
					head = it.Pos()
					popped[head]++
				}
			}
			for s.Len() > 0 {
				it := s.Pop(head)
				head = it.Pos()
				popped[head]++
			}
			if len(pushed) != len(popped) {
				return false
			}
			for p, n := range pushed {
				if popped[p] != n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSortedStable(t *testing.T) {
	type tagged struct {
		pos int64
		id  int
	}
	var q []Item
	type titem struct{ tagged }
	_ = titem{}
	items := []tagged{{5, 0}, {5, 1}, {3, 2}, {5, 3}}
	for _, it := range items {
		it := it
		q = insertSorted(q, req5{it.pos, it.id})
	}
	// All pos=5 items must be in insertion order 0,1,3 after the pos=3.
	ids := []int{}
	for _, it := range q {
		ids = append(ids, it.(req5).id)
	}
	want := []int{2, 0, 1, 3}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("stable order = %v, want %v", ids, want)
		}
	}
}

type req5 struct {
	pos int64
	id  int
}

func (r req5) Pos() int64 { return r.pos }
