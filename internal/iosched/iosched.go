// Package iosched implements host-side disk scheduling disciplines.
//
// The paper contrasts FreeBSD's bufqdisksort — a cyclical variant of the
// Elevator/SCAN algorithm — with N-step CSCAN, a fair variant that
// freezes the schedule for the current sweep (§5.3). Both are provided
// here, plus FIFO and SSTF baselines. Schedulers are pure data
// structures: the disk driver feeds them requests and asks for the next
// one given the current head position.
package iosched

// Item is anything a scheduler can order: a disk request exposing its
// starting logical block address.
type Item interface {
	Pos() int64
}

// Scheduler is a queue of pending disk requests with a pluggable service
// order. Push and Pop are never called concurrently (the simulation is
// single-threaded) and Pop is only called when Len() > 0.
type Scheduler interface {
	// Push adds a request to the queue.
	Push(it Item)
	// Pop removes and returns the next request to service, given the
	// current head position (an LBA).
	Pop(head int64) Item
	// Len reports the number of queued requests.
	Len() int
	// Name identifies the discipline, e.g. "elevator".
	Name() string
}

// Factory constructs a fresh scheduler; used when building testbeds.
type Factory func() Scheduler

// FIFO services requests strictly in arrival order.
type FIFO struct {
	q []Item
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Push implements Scheduler.
func (f *FIFO) Push(it Item) { f.q = append(f.q, it) }

// Pop implements Scheduler.
func (f *FIFO) Pop(head int64) Item {
	it := f.q[0]
	copy(f.q, f.q[1:])
	f.q[len(f.q)-1] = nil
	f.q = f.q[:len(f.q)-1]
	return it
}

// Len implements Scheduler.
func (f *FIFO) Len() int { return len(f.q) }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "fifo" }

// SSTF services the request closest to the current head position
// (shortest seek time first). Ties break toward lower LBA.
type SSTF struct {
	q []Item
}

// NewSSTF returns an empty SSTF scheduler.
func NewSSTF() *SSTF { return &SSTF{} }

// Push implements Scheduler.
func (s *SSTF) Push(it Item) { s.q = append(s.q, it) }

// Pop implements Scheduler.
func (s *SSTF) Pop(head int64) Item {
	best := 0
	bestDist := dist(s.q[0].Pos(), head)
	for i := 1; i < len(s.q); i++ {
		d := dist(s.q[i].Pos(), head)
		if d < bestDist || (d == bestDist && s.q[i].Pos() < s.q[best].Pos()) {
			best, bestDist = i, d
		}
	}
	it := s.q[best]
	s.q = append(s.q[:best], s.q[best+1:]...)
	return it
}

// Len implements Scheduler.
func (s *SSTF) Len() int { return len(s.q) }

// Name implements Scheduler.
func (s *SSTF) Name() string { return "sstf" }

func dist(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// insertSorted inserts it into q keeping ascending Pos order; equal
// positions keep arrival order (stable).
func insertSorted(q []Item, it Item) []Item {
	lo, hi := 0, len(q)
	for lo < hi {
		mid := (lo + hi) / 2
		if q[mid].Pos() <= it.Pos() {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q = append(q, nil)
	copy(q[lo+1:], q[lo:])
	q[lo] = it
	return q
}
