package cluster

import (
	"encoding/binary"
	"fmt"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/xdr"
)

// Control-plane RPC program. It rides the same sunrpc/rpcnet transport
// as NFS itself — a private program number, four procedures, all tiny.
const (
	CtrlProgram = 390903
	CtrlVersion = 1

	// CtrlGetMap: args = client's current version (uint64, 0 = none);
	// reply = status, marshalled Map. Clients poll this only when a
	// redirect tells them their map is stale.
	CtrlGetMap = 1
	// CtrlAllocFH: args = count (uint32); reply = status, first handle
	// (uint64). Handles are allocated cluster-wide so the ring can
	// route a file before any shard has seen it.
	CtrlAllocFH = 2
	// CtrlDrain: args = shard id; reply = status, new map version.
	CtrlDrain = 3
	// CtrlAddShard: args = none; reply = status, new shard id, addr,
	// new map version.
	CtrlAddShard = 4
)

// Control-plane reply statuses.
const (
	ctrlOK  = 0
	ctrlErr = 1
)

// ProcClusterCreate extends the NFS program on cluster shards: create a
// file at a cluster-allocated handle (flat, under the root directory).
// args = fh (opaque<8>), name (string), size (uint64, zero-filled);
// reply = status. The guard serves it directly — ownership routing
// applies exactly as for any other handle-bearing procedure.
const ProcClusterCreate = 22

// StatusWrongShard is the nfsstat3-position status a guard returns for
// a handle it does not own under its current map: status (4 bytes)
// followed by the guard's map version (8 bytes). The value lives in
// the private gap above the standard codes so it can never collide
// with a real NFS status.
const StatusWrongShard = 10071

// appendRedirect builds the wrong-shard reply body.
func appendRedirect(reply []byte, version uint64) []byte {
	reply = xdr.AppendUint32(reply, StatusWrongShard)
	return xdr.AppendUint64(reply, version)
}

// parseRedirect reports whether body is a wrong-shard redirect and, if
// so, the version the responding guard held.
func parseRedirect(body []byte) (version uint64, ok bool) {
	if len(body) < 12 || binary.BigEndian.Uint32(body) != StatusWrongShard {
		return 0, false
	}
	return binary.BigEndian.Uint64(body[4:]), true
}

// peekFH extracts the leading file handle from an NFS request body.
// Every NFSv3 procedure this system serves, NULL aside, opens with a
// handle — the object handle for data procs, the directory handle for
// namespace procs — encoded as opaque<64> of exactly 8 bytes. That
// uniform prefix is what makes process-level striping cheap: routing
// never decodes past byte 12.
func peekFH(body []byte) (nfsproto.FH, bool) {
	if len(body) < 12 || binary.BigEndian.Uint32(body) != 8 {
		return 0, false
	}
	return nfsproto.FH(binary.BigEndian.Uint64(body[4:])), true
}

// clusterCreateArgs is the ProcClusterCreate argument body.
type clusterCreateArgs struct {
	FH   nfsproto.FH
	Name string
	Size uint64
}

func (c *clusterCreateArgs) Marshal() []byte {
	buf := make([]byte, 0, 12+4+len(c.Name)+3+8)
	buf = xdr.AppendUint32(buf, 8)
	buf = xdr.AppendUint64(buf, uint64(c.FH))
	buf = xdr.AppendString(buf, c.Name)
	return xdr.AppendUint64(buf, c.Size)
}

func (c *clusterCreateArgs) Unmarshal(body []byte) error {
	d := xdr.NewDecoder(body)
	if n := d.Uint32(); n != 8 {
		return fmt.Errorf("cluster: create fh length %d", n)
	}
	c.FH = nfsproto.FH(d.Uint64())
	c.Name = d.String(4096)
	c.Size = d.Uint64()
	return d.Err()
}
