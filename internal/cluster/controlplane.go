package cluster

import (
	"fmt"
	"sync/atomic"

	"nfstricks/internal/memfs"
	"nfstricks/internal/obs"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/sunrpc"
	"nfstricks/internal/xdr"
)

// fhAllocBase is where cluster-wide handle allocation starts: the top
// of the range memfs reserves for placement. A shard's local counter
// stays strictly below it (memfs.CreateAt never bumps the counter for
// placed handles in this range), so placed handles and shard-local
// handles (the root, pre-cluster files) can never collide.
const fhAllocBase = uint64(memfs.LocalFHBound)

// ControlPlane is the cluster's registry: it owns the current shard
// map, the cluster-wide file-handle allocator, and the membership
// procedures (add/drain), which it delegates to the owning Cluster via
// callbacks. It serves all of this over a four-procedure RPC program
// on the same transport stack as NFS itself.
type ControlPlane struct {
	cur     atomic.Pointer[Map]
	nextFH  atomic.Uint64
	srv     *rpcnet.Server
	reg     *obs.Registry
	fetches *obs.Counter
	allocs  *obs.Counter
	changes *obs.Counter

	// Membership callbacks, fixed at construction — before the server
	// accepts its first connection — so handler reads never race an
	// assignment (nil = reject).
	onDrain func(id uint32) (uint64, error)
	onAdd   func() (ShardInfo, uint64, error)
}

// newControlPlane builds the control plane; serve starts it. The split
// exists so the owner can finish wiring (its own cp pointer, which the
// callbacks reach through) before any client can connect.
func newControlPlane(initial *Map, reg *obs.Registry,
	onDrain func(uint32) (uint64, error), onAdd func() (ShardInfo, uint64, error)) *ControlPlane {
	cp := &ControlPlane{reg: reg, onDrain: onDrain, onAdd: onAdd}
	cp.cur.Store(initial)
	cp.nextFH.Store(fhAllocBase)
	cp.fetches = reg.Counter("cluster_map_fetches_total")
	cp.allocs = reg.Counter("cluster_fh_allocated_total")
	cp.changes = reg.Counter("cluster_membership_changes_total")
	reg.GaugeFunc("cluster_map_version", func() float64 {
		return float64(cp.cur.Load().Version)
	})
	reg.GaugeFunc("cluster_shards", func() float64 {
		return float64(len(cp.cur.Load().Shards))
	})
	return cp
}

// serve binds the control-plane server on addr and begins accepting.
func (cp *ControlPlane) serve(addr string) error {
	srv, err := rpcnet.NewServerInfo(addr, CtrlProgram, CtrlVersion, cp.handle, rpcnet.ServerOptions{})
	if err != nil {
		return err
	}
	cp.srv = srv
	return nil
}

// Current returns the live map.
func (cp *ControlPlane) Current() *Map { return cp.cur.Load() }

// Addr is the control-plane server's bound address.
func (cp *ControlPlane) Addr() string { return cp.srv.Addr() }

// Close stops the server (a no-op if serve never succeeded).
func (cp *ControlPlane) Close() error {
	if cp.srv == nil {
		return nil
	}
	return cp.srv.Close()
}

// handle dispatches one control-plane call.
func (cp *ControlPlane) handle(info rpcnet.CallInfo, proc uint32, body, reply []byte) ([]byte, uint32) {
	switch proc {
	case CtrlGetMap:
		cp.fetches.Add(1)
		reply = xdr.AppendUint32(reply, ctrlOK)
		return cp.cur.Load().AppendTo(reply), sunrpc.AcceptSuccess
	case CtrlAllocFH:
		d := xdr.NewDecoder(body)
		n := d.Uint32()
		if d.Err() != nil || n == 0 || n > 1<<20 {
			return xdr.AppendUint32(reply, ctrlErr), sunrpc.AcceptSuccess
		}
		first := cp.nextFH.Add(uint64(n)) - uint64(n)
		cp.allocs.Add(int64(n))
		reply = xdr.AppendUint32(reply, ctrlOK)
		return xdr.AppendUint64(reply, first), sunrpc.AcceptSuccess
	case CtrlDrain:
		d := xdr.NewDecoder(body)
		id := d.Uint32()
		if d.Err() != nil || cp.onDrain == nil {
			return xdr.AppendUint32(reply, ctrlErr), sunrpc.AcceptSuccess
		}
		version, err := cp.onDrain(id)
		if err != nil {
			return xdr.AppendUint32(reply, ctrlErr), sunrpc.AcceptSuccess
		}
		cp.changes.Add(1)
		reply = xdr.AppendUint32(reply, ctrlOK)
		return xdr.AppendUint64(reply, version), sunrpc.AcceptSuccess
	case CtrlAddShard:
		if cp.onAdd == nil {
			return xdr.AppendUint32(reply, ctrlErr), sunrpc.AcceptSuccess
		}
		info, version, err := cp.onAdd()
		if err != nil {
			return xdr.AppendUint32(reply, ctrlErr), sunrpc.AcceptSuccess
		}
		cp.changes.Add(1)
		reply = xdr.AppendUint32(reply, ctrlOK)
		reply = xdr.AppendUint32(reply, info.ID)
		reply = xdr.AppendString(reply, info.Addr)
		return xdr.AppendUint64(reply, version), sunrpc.AcceptSuccess
	default:
		return reply, sunrpc.AcceptProcUnavail
	}
}

// fetchMap pulls the current map over an open control-plane client.
func fetchMap(c *rpcnet.Client, haveVersion uint64) (*Map, error) {
	args := xdr.AppendUint64(nil, haveVersion)
	body, err := c.Call(CtrlGetMap, args)
	if err != nil {
		return nil, err
	}
	d := xdr.NewDecoder(body)
	if st := d.Uint32(); d.Err() != nil || st != ctrlOK {
		return nil, fmt.Errorf("cluster: getmap status %d (%v)", st, d.Err())
	}
	return DecodeMap(d)
}
