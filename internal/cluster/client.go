package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/replay"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/xdr"
)

// ClientConfig tunes a shard-aware client.
type ClientConfig struct {
	// PoolSize is the connection count per shard (default 4). Streams
	// share these round-robin — amplified replay must not dial per
	// tenant or it exhausts ephemeral ports.
	PoolSize int
	// Timeout bounds each call and map fetch (default 10s).
	Timeout time.Duration
	// MaxRedirects bounds wrong-shard retries per call (default 8) —
	// a map changing faster than a client can chase it should fail
	// loudly, not loop.
	MaxRedirects int
}

func (c *ClientConfig) fill() {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxRedirects <= 0 {
		c.MaxRedirects = 8
	}
}

// ErrRedirectLoop marks a call still redirected after MaxRedirects
// map refreshes.
var ErrRedirectLoop = errors.New("cluster: redirected past retry budget")

// ClientStats counts the coordination work a client performed — the
// overhead side of the cluster-scale ledger.
type ClientStats struct {
	Redirects    int64  // wrong-shard replies received
	MapRefreshes int64  // control-plane map fetches triggered
	Dials        int64  // shard connections opened
	MapVersion   uint64 // currently held map version
}

// shardPool is one shard's shared connections.
type shardPool struct {
	conns []*rpcnet.Client
	next  atomic.Uint32
}

// Client routes NFS calls to the owning shard by consistent hash on
// the file handle. It holds a versioned map from the control plane and
// a bounded connection pool per shard; on a wrong-shard redirect it
// refreshes the map (single-flight), re-routes, and re-issues —
// callers never see the redirect, only the final reply.
type Client struct {
	network string
	cfg     ClientConfig
	ctrl    *rpcnet.Client
	cur     atomic.Pointer[Map]

	mu    sync.Mutex // pools growth + refresh single-flight
	pools map[uint32]*shardPool

	redirects atomic.Int64
	refreshes atomic.Int64
	dials     atomic.Int64

	allocMu   sync.Mutex
	allocNext uint64
	allocEnd  uint64
}

// DialClient connects to a cluster via its control plane.
func DialClient(network, ctrlAddr string, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	ctrl, err := rpcnet.Dial(network, ctrlAddr, CtrlProgram, CtrlVersion)
	if err != nil {
		return nil, err
	}
	ctrl.SetTimeout(cfg.Timeout)
	m, err := fetchMap(ctrl, 0)
	if err != nil {
		ctrl.Close()
		return nil, err
	}
	c := &Client{
		network: network,
		cfg:     cfg,
		ctrl:    ctrl,
		pools:   make(map[uint32]*shardPool),
	}
	c.cur.Store(m)
	return c, nil
}

// MapVersion is the version of the map the client currently routes by.
func (c *Client) MapVersion() uint64 { return c.cur.Load().Version }

// Stats returns the client's coordination counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Redirects:    c.redirects.Load(),
		MapRefreshes: c.refreshes.Load(),
		Dials:        c.dials.Load(),
		MapVersion:   c.MapVersion(),
	}
}

// conn returns a pooled connection to the shard owning fh, plus the
// map consulted (for error messages).
func (c *Client) conn(fh nfsproto.FH) (*rpcnet.Client, error) {
	m := c.cur.Load()
	owner, ok := m.Owner(uint64(fh))
	if !ok {
		return nil, fmt.Errorf("cluster: empty map v%d", m.Version)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.pools[owner.ID]
	if p == nil {
		p = &shardPool{}
		c.pools[owner.ID] = p
	}
	if len(p.conns) < c.cfg.PoolSize {
		cl, err := rpcnet.Dial(c.network, owner.Addr, nfsproto.Program, nfsproto.Version3)
		if err != nil {
			// rpcnet typed the exhaustion case (ErrConnExhausted);
			// surface it as-is so amplified callers can diagnose.
			return nil, err
		}
		cl.SetTimeout(c.cfg.Timeout)
		c.dials.Add(1)
		p.conns = append(p.conns, cl)
		return cl, nil
	}
	return p.conns[p.next.Add(1)%uint32(len(p.conns))], nil
}

// ensureVersion refreshes the map if the held version is older than
// min. Concurrent callers collapse to one fetch.
func (c *Client) ensureVersion(min uint64) error {
	if c.cur.Load().Version >= min {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur.Load().Version >= min {
		return nil
	}
	m, err := fetchMap(c.ctrl, c.cur.Load().Version)
	if err != nil {
		return err
	}
	c.refreshes.Add(1)
	if m.Version > c.cur.Load().Version {
		c.cur.Store(m)
	}
	return nil
}

// Pending is one routed in-flight call; Wait resolves redirects before
// returning, so the body a caller sees is always from the owning
// shard.
type Pending struct {
	c    *Client
	proc uint32
	fh   nfsproto.FH
	args []byte
	p    *rpcnet.Pending
	err  error
}

// Go issues proc with args, routed by fh.
func (c *Client) Go(proc uint32, fh nfsproto.FH, args []byte) *Pending {
	p := &Pending{c: c, proc: proc, fh: fh, args: args}
	cl, err := c.conn(fh)
	if err != nil {
		p.err = err
		return p
	}
	p.p = cl.Go(proc, args)
	return p
}

// Wait blocks for the reply, chasing wrong-shard redirects: refresh
// the map to at least the redirect's version, re-route, re-issue.
func (p *Pending) Wait(d time.Duration) ([]byte, error) {
	if p.err != nil {
		return nil, p.err
	}
	for attempt := 0; ; attempt++ {
		body, err := p.p.Wait(d)
		if err != nil {
			return nil, err
		}
		version, redirected := parseRedirect(body)
		if !redirected {
			return body, nil
		}
		p.c.redirects.Add(1)
		if attempt >= p.c.cfg.MaxRedirects {
			return nil, fmt.Errorf("%w: proc %d fh %d", ErrRedirectLoop, p.proc, p.fh)
		}
		if err := p.c.ensureVersion(version); err != nil {
			return nil, err
		}
		cl, err := p.c.conn(p.fh)
		if err != nil {
			return nil, err
		}
		p.p = cl.Go(p.proc, p.args)
	}
}

// Call is Go + Wait.
func (c *Client) Call(proc uint32, fh nfsproto.FH, args []byte) ([]byte, error) {
	return c.Go(proc, fh, args).Wait(c.cfg.Timeout)
}

// AllocFH returns one cluster-allocated handle, drawing batches from
// the control plane so placement-heavy callers don't serialize on RPC.
func (c *Client) AllocFH() (nfsproto.FH, error) {
	c.allocMu.Lock()
	defer c.allocMu.Unlock()
	if c.allocNext >= c.allocEnd {
		const batch = 256
		body, err := c.ctrl.Call(CtrlAllocFH, xdr.AppendUint32(nil, batch))
		if err != nil {
			return 0, err
		}
		d := xdr.NewDecoder(body)
		if st := d.Uint32(); d.Err() != nil || st != ctrlOK {
			return 0, fmt.Errorf("cluster: allocfh status %d (%v)", st, d.Err())
		}
		first := d.Uint64()
		if err := d.Err(); err != nil {
			return 0, err
		}
		c.allocNext, c.allocEnd = first, first+batch
	}
	fh := nfsproto.FH(c.allocNext)
	c.allocNext++
	return fh, nil
}

// Create places a zero-filled file of the given size in the cluster,
// at a freshly allocated handle, and returns the handle. The ring
// decides which shard stores it; redirects are chased like any call.
func (c *Client) Create(name string, size uint64) (nfsproto.FH, error) {
	fh, err := c.AllocFH()
	if err != nil {
		return 0, err
	}
	args := (&clusterCreateArgs{FH: fh, Name: name, Size: size}).Marshal()
	body, err := c.Call(ProcClusterCreate, fh, args)
	if err != nil {
		return 0, err
	}
	if len(body) < 4 {
		return 0, fmt.Errorf("cluster: short create reply")
	}
	if st := binary.BigEndian.Uint32(body); st != nfsproto.OK {
		return 0, fmt.Errorf("cluster: create %q: nfs status %d", name, st)
	}
	return fh, nil
}

// Drain asks the control plane to drain a shard; it returns the new
// map version.
func (c *Client) Drain(id uint32) (uint64, error) {
	body, err := c.ctrl.Call(CtrlDrain, xdr.AppendUint32(nil, id))
	if err != nil {
		return 0, err
	}
	d := xdr.NewDecoder(body)
	if st := d.Uint32(); d.Err() != nil || st != ctrlOK {
		return 0, fmt.Errorf("cluster: drain status %d (%v)", st, d.Err())
	}
	v := d.Uint64()
	return v, d.Err()
}

// AddShard asks the control plane to grow the cluster; it returns the
// new shard and map version.
func (c *Client) AddShard() (ShardInfo, uint64, error) {
	body, err := c.ctrl.Call(CtrlAddShard, nil)
	if err != nil {
		return ShardInfo{}, 0, err
	}
	d := xdr.NewDecoder(body)
	if st := d.Uint32(); d.Err() != nil || st != ctrlOK {
		return ShardInfo{}, 0, fmt.Errorf("cluster: addshard status %d (%v)", st, d.Err())
	}
	info := ShardInfo{ID: d.Uint32(), Addr: d.String(256)}
	v := d.Uint64()
	return info, v, d.Err()
}

// transport adapts the client to replay.Transport: one shared routed
// client serves every replay stream, which is the connection-churn fix
// — per-shard pools instead of a dial per tenant×stream.
type transport struct{ c *Client }

// ReplayDial is a replay.Options.Dial: every stream shares this
// client.
func (c *Client) ReplayDial(stream uint32) (replay.Transport, error) {
	return transport{c}, nil
}

func (t transport) Go(proc uint32, fh nfsproto.FH, args []byte) replay.Pending {
	return t.c.Go(proc, fh, args)
}

// Close here is a no-op: the transport is a view of the shared client,
// whose lifetime the caller owns.
func (t transport) Close() error { return nil }

// Close closes every pooled connection and the control-plane link.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, p := range c.pools {
		for _, cl := range p.conns {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if err := c.ctrl.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
