package cluster

import (
	"math/rand"
	"testing"

	"nfstricks/internal/xdr"
)

func members(n int) []ShardInfo {
	out := make([]ShardInfo, n)
	for i := range out {
		out[i] = ShardInfo{ID: uint32(i), Addr: "127.0.0.1:0"}
	}
	return out
}

func sampleFHs(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		// Mix small sequential handles (what allocators hand out) with
		// random ones; the ring must balance both.
		if i%2 == 0 {
			out[i] = uint64(i)
		} else {
			out[i] = rng.Uint64()
		}
	}
	return out
}

// TestRingDeterministic: two processes building the same map must
// route every handle identically — the protocol has no other way to
// agree.
func TestRingDeterministic(t *testing.T) {
	a := NewMap(1, members(5))
	b := NewMap(1, members(5))
	for _, fh := range sampleFHs(10000, 1) {
		oa, _ := a.OwnerID(fh)
		ob, _ := b.OwnerID(fh)
		if oa != ob {
			t.Fatalf("fh %d: owner %d vs %d", fh, oa, ob)
		}
	}
}

// TestRingBalance: no shard should own more than ~2x its fair share.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		m := NewMap(1, members(n))
		fhs := sampleFHs(100000, 2)
		counts := make(map[uint32]int)
		for _, fh := range fhs {
			id, ok := m.OwnerID(fh)
			if !ok {
				t.Fatal("no owner")
			}
			counts[id]++
		}
		fair := len(fhs) / n
		for id, c := range counts {
			if c > 2*fair || c < fair/2 {
				t.Errorf("n=%d shard %d owns %d of %d (fair %d)", n, id, c, len(fhs), fair)
			}
		}
	}
}

// TestRingMinimalMovementAdd: adding one shard moves keys only onto
// the new shard, and only ~1/(N+1) of them.
func TestRingMinimalMovementAdd(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		before := NewMap(1, members(n))
		after := NewMap(2, members(n+1))
		newID := uint32(n)
		fhs := sampleFHs(100000, 3)
		moved := 0
		for _, fh := range fhs {
			ob, _ := before.OwnerID(fh)
			oa, _ := after.OwnerID(fh)
			if ob != oa {
				moved++
				if oa != newID {
					t.Fatalf("n=%d fh %d moved %d→%d, not to the new shard %d",
						n, fh, ob, oa, newID)
				}
			}
		}
		frac := float64(moved) / float64(len(fhs))
		fair := 1 / float64(n+1)
		if frac > 2*fair {
			t.Errorf("n=%d→%d moved %.1f%% (fair %.1f%%)", n, n+1, 100*frac, 100*fair)
		}
		if frac < fair/2 {
			t.Errorf("n=%d→%d moved only %.1f%% — new shard underloaded", n, n+1, 100*frac)
		}
	}
}

// TestRingMinimalMovementDrain: draining one shard moves exactly that
// shard's keys — every other assignment is untouched.
func TestRingMinimalMovementDrain(t *testing.T) {
	for _, n := range []int{3, 4, 8} {
		before := NewMap(1, members(n))
		drained := uint32(n - 1)
		var rest []ShardInfo
		for _, s := range members(n) {
			if s.ID != drained {
				rest = append(rest, s)
			}
		}
		after := NewMap(2, rest)
		fhs := sampleFHs(100000, 4)
		moved := 0
		for _, fh := range fhs {
			ob, _ := before.OwnerID(fh)
			oa, _ := after.OwnerID(fh)
			if ob == drained {
				moved++
				if oa == drained {
					t.Fatalf("fh %d still owned by drained shard", fh)
				}
				continue
			}
			if ob != oa {
				t.Fatalf("n=%d fh %d moved %d→%d though %d was not drained",
					n, fh, ob, oa, drained)
			}
		}
		frac := float64(moved) / float64(len(fhs))
		fair := 1 / float64(n)
		if frac > 2*fair || frac < fair/2 {
			t.Errorf("n=%d drain moved %.1f%% (fair %.1f%%)", n, 100*frac, 100*fair)
		}
	}
}

func TestMapWireRoundTrip(t *testing.T) {
	m := NewMap(42, []ShardInfo{{ID: 3, Addr: "127.0.0.1:1053"}, {ID: 9, Addr: "[::1]:99"}})
	buf := m.AppendTo(nil)
	got, err := DecodeMap(xdr.NewDecoder(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 42 || len(got.Shards) != 2 || got.Shards[1].Addr != "[::1]:99" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for _, fh := range sampleFHs(1000, 5) {
		a, _ := m.OwnerID(fh)
		b, _ := got.OwnerID(fh)
		if a != b {
			t.Fatalf("decoded map routes fh %d to %d, original to %d", fh, b, a)
		}
	}
}

func TestRedirectWire(t *testing.T) {
	body := appendRedirect(nil, 17)
	v, ok := parseRedirect(body)
	if !ok || v != 17 {
		t.Fatalf("parseRedirect = %d, %v", v, ok)
	}
	if _, ok := parseRedirect([]byte{0, 0, 0, 0}); ok {
		t.Fatal("OK status misparsed as redirect")
	}
}
