package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/rpcnet"
)

func newTestCluster(t *testing.T, shards int) *Cluster {
	t.Helper()
	c, err := New(Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func readOK(t *testing.T, cl *Client, fh nfsproto.FH, size uint64) {
	t.Helper()
	body, err := cl.Call(nfsproto.ProcRead,
		fh, (&nfsproto.ReadArgs{FH: fh, Offset: 0, Count: uint32(size)}).Marshal())
	if err != nil {
		t.Fatalf("read fh %d: %v", fh, err)
	}
	if st := binary.BigEndian.Uint32(body); st != nfsproto.OK {
		t.Fatalf("read fh %d: nfs status %d", fh, st)
	}
}

// TestClusterCreateAndRead places files across shards and reads them
// back through the routed client.
func TestClusterCreateAndRead(t *testing.T) {
	c := newTestCluster(t, 3)
	cl, err := DialClient("tcp", c.CtrlAddr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 60
	fhs := make([]nfsproto.FH, n)
	for i := range fhs {
		fh, err := cl.Create(fmt.Sprintf("f%d", i), 4096)
		if err != nil {
			t.Fatal(err)
		}
		fhs[i] = fh
	}
	for _, fh := range fhs {
		readOK(t, cl, fh, 4096)
	}
	// The ring must have spread both placement and reads: more than one
	// shard executed work.
	busy := 0
	for _, st := range c.Stats() {
		if st.Executed > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("expected ≥2 busy shards, stats %+v", c.Stats())
	}
}

// TestDrainUnderLoad drains a shard while readers hammer the cluster;
// the bar is zero failed operations — every request either lands on
// the owner or is redirected and retried, never errored.
func TestDrainUnderLoad(t *testing.T) {
	c := newTestCluster(t, 4)
	cl, err := DialClient("tcp", c.CtrlAddr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 80
	fhs := make([]nfsproto.FH, n)
	for i := range fhs {
		fh, err := cl.Create(fmt.Sprintf("g%d", i), 1024)
		if err != nil {
			t.Fatal(err)
		}
		fhs[i] = fh
	}
	v1 := cl.MapVersion()

	var stop atomic.Bool
	var failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				fh := fhs[(i*7+w)%n]
				body, err := cl.Call(nfsproto.ProcRead,
					fh, (&nfsproto.ReadArgs{FH: fh, Count: 1024}).Marshal())
				if err != nil || binary.BigEndian.Uint32(body) != nfsproto.OK {
					failures.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	target := c.Map().Shards[0].ID
	v2, err := cl.Drain(target)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if got := failures.Load(); got != 0 {
		t.Fatalf("%d failed ops during drain", got)
	}
	if v2 <= v1 {
		t.Fatalf("drain version %d not above %d", v2, v1)
	}
	if cl.Stats().Redirects == 0 {
		t.Fatal("expected redirects while the client's map was stale")
	}
	if cl.MapVersion() != v2 {
		t.Fatalf("client converged to v%d, want v%d", cl.MapVersion(), v2)
	}
	// The drained shard must have shipped its files; all reads still OK.
	for _, fh := range fhs {
		readOK(t, cl, fh, 1024)
	}
}

// TestStaleRedirectCarriesNewVersion talks to a shard directly (as a
// client with a frozen map would) and checks the redirect names the
// version to refresh to.
func TestStaleRedirectCarriesNewVersion(t *testing.T) {
	c := newTestCluster(t, 3)
	cl, err := DialClient("tcp", c.CtrlAddr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Find a file owned by shard 0, then drain shard 0 so it moves.
	m1 := c.Map()
	var fh nfsproto.FH
	for i := 0; ; i++ {
		f, err := cl.Create(fmt.Sprintf("h%d", i), 64)
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := m1.OwnerID(uint64(f)); owner == m1.Shards[0].ID {
			fh = f
			break
		}
	}
	v2, err := cl.Drain(m1.Shards[0].ID)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := rpcnet.Dial("tcp", m1.Shards[0].Addr, nfsproto.Program, nfsproto.Version3)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	body, err := direct.Call(nfsproto.ProcGetattr, (&nfsproto.GetattrArgs{FH: fh}).Marshal())
	if err != nil {
		t.Fatal(err)
	}
	ver, redirected := parseRedirect(body)
	if !redirected {
		t.Fatalf("drained shard served fh %d instead of redirecting", fh)
	}
	if ver != v2 {
		t.Fatalf("redirect carries v%d, want v%d", ver, v2)
	}
	if ver <= m1.Version {
		t.Fatalf("redirect version %d not above stale %d", ver, m1.Version)
	}
}

// TestVersionsMonotonic: every membership change must bump the version
// by exactly observing strictly increasing values at the control
// plane.
func TestVersionsMonotonic(t *testing.T) {
	c := newTestCluster(t, 2)
	last := c.Map().Version
	for i := 0; i < 3; i++ {
		info, v, err := c.AddShard()
		if err != nil {
			t.Fatal(err)
		}
		if v <= last {
			t.Fatalf("add: version %d after %d", v, last)
		}
		last = v
		v, err = c.Drain(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v <= last {
			t.Fatalf("drain: version %d after %d", v, last)
		}
		last = v
	}
}

// TestMergedSnapshotLabels: per-shard registries merge under a shard
// label, and the same counter from different shards stays distinct.
func TestMergedSnapshotLabels(t *testing.T) {
	c := newTestCluster(t, 2)
	cl, err := DialClient("tcp", c.CtrlAddr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 20; i++ {
		fh, err := cl.Create(fmt.Sprintf("m%d", i), 128)
		if err != nil {
			t.Fatal(err)
		}
		readOK(t, cl, fh, 128)
	}
	snap := c.MergedSnapshot()
	perShard := 0
	for name := range snap.Counters {
		base, labels := splitName(name)
		if base == "nfsd_executed_total" && labels != "" {
			perShard++
		}
	}
	if perShard < 2 {
		t.Fatalf("merged snapshot has %d labeled executed counters; want ≥2", perShard)
	}
	if _, ok := snap.Gauges[`cluster_map_version{shard="cp"}`]; !ok {
		t.Fatalf("control-plane gauge missing from merge: %v", keys(snap.Gauges))
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
