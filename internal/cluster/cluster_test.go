package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/rpcnet"
)

func newTestCluster(t *testing.T, shards int) *Cluster {
	t.Helper()
	c, err := New(Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func readOK(t *testing.T, cl *Client, fh nfsproto.FH, size uint64) {
	t.Helper()
	body, err := cl.Call(nfsproto.ProcRead,
		fh, (&nfsproto.ReadArgs{FH: fh, Offset: 0, Count: uint32(size)}).Marshal())
	if err != nil {
		t.Fatalf("read fh %d: %v", fh, err)
	}
	if st := binary.BigEndian.Uint32(body); st != nfsproto.OK {
		t.Fatalf("read fh %d: nfs status %d", fh, st)
	}
}

// TestClusterCreateAndRead places files across shards and reads them
// back through the routed client.
func TestClusterCreateAndRead(t *testing.T) {
	c := newTestCluster(t, 3)
	cl, err := DialClient("tcp", c.CtrlAddr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 60
	fhs := make([]nfsproto.FH, n)
	for i := range fhs {
		fh, err := cl.Create(fmt.Sprintf("f%d", i), 4096)
		if err != nil {
			t.Fatal(err)
		}
		fhs[i] = fh
	}
	for _, fh := range fhs {
		readOK(t, cl, fh, 4096)
	}
	// The ring must have spread both placement and reads: more than one
	// shard executed work.
	busy := 0
	for _, st := range c.Stats() {
		if st.Executed > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("expected ≥2 busy shards, stats %+v", c.Stats())
	}
}

// TestDrainUnderLoad drains a shard while readers hammer the cluster;
// the bar is zero failed operations — every request either lands on
// the owner or is redirected and retried, never errored.
func TestDrainUnderLoad(t *testing.T) {
	c := newTestCluster(t, 4)
	cl, err := DialClient("tcp", c.CtrlAddr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 80
	fhs := make([]nfsproto.FH, n)
	for i := range fhs {
		fh, err := cl.Create(fmt.Sprintf("g%d", i), 1024)
		if err != nil {
			t.Fatal(err)
		}
		fhs[i] = fh
	}
	v1 := cl.MapVersion()

	var stop atomic.Bool
	var failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				fh := fhs[(i*7+w)%n]
				body, err := cl.Call(nfsproto.ProcRead,
					fh, (&nfsproto.ReadArgs{FH: fh, Count: 1024}).Marshal())
				if err != nil || binary.BigEndian.Uint32(body) != nfsproto.OK {
					failures.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	target := c.Map().Shards[0].ID
	v2, err := cl.Drain(target)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if got := failures.Load(); got != 0 {
		t.Fatalf("%d failed ops during drain", got)
	}
	if v2 <= v1 {
		t.Fatalf("drain version %d not above %d", v2, v1)
	}
	if cl.Stats().Redirects == 0 {
		t.Fatal("expected redirects while the client's map was stale")
	}
	if cl.MapVersion() != v2 {
		t.Fatalf("client converged to v%d, want v%d", cl.MapVersion(), v2)
	}
	// The drained shard must have shipped its files; all reads still OK.
	for _, fh := range fhs {
		readOK(t, cl, fh, 1024)
	}
}

// TestStaleRedirectCarriesNewVersion talks to a shard directly (as a
// client with a frozen map would) and checks the redirect names the
// version to refresh to.
func TestStaleRedirectCarriesNewVersion(t *testing.T) {
	c := newTestCluster(t, 3)
	cl, err := DialClient("tcp", c.CtrlAddr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Find a file owned by shard 0, then drain shard 0 so it moves.
	m1 := c.Map()
	var fh nfsproto.FH
	for i := 0; ; i++ {
		f, err := cl.Create(fmt.Sprintf("h%d", i), 64)
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := m1.OwnerID(uint64(f)); owner == m1.Shards[0].ID {
			fh = f
			break
		}
	}
	v2, err := cl.Drain(m1.Shards[0].ID)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := rpcnet.Dial("tcp", m1.Shards[0].Addr, nfsproto.Program, nfsproto.Version3)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	body, err := direct.Call(nfsproto.ProcGetattr, (&nfsproto.GetattrArgs{FH: fh}).Marshal())
	if err != nil {
		t.Fatal(err)
	}
	ver, redirected := parseRedirect(body)
	if !redirected {
		t.Fatalf("drained shard served fh %d instead of redirecting", fh)
	}
	if ver != v2 {
		t.Fatalf("redirect carries v%d, want v%d", ver, v2)
	}
	if ver <= m1.Version {
		t.Fatalf("redirect version %d not above stale %d", ver, m1.Version)
	}
}

// TestVersionsMonotonic: every membership change must bump the version
// by exactly observing strictly increasing values at the control
// plane.
func TestVersionsMonotonic(t *testing.T) {
	c := newTestCluster(t, 2)
	last := c.Map().Version
	for i := 0; i < 3; i++ {
		info, v, err := c.AddShard()
		if err != nil {
			t.Fatal(err)
		}
		if v <= last {
			t.Fatalf("add: version %d after %d", v, last)
		}
		last = v
		v, err = c.Drain(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v <= last {
			t.Fatalf("drain: version %d after %d", v, last)
		}
		last = v
	}
}

// TestMergedSnapshotLabels: per-shard registries merge under a shard
// label, and the same counter from different shards stays distinct.
func TestMergedSnapshotLabels(t *testing.T) {
	c := newTestCluster(t, 2)
	cl, err := DialClient("tcp", c.CtrlAddr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 20; i++ {
		fh, err := cl.Create(fmt.Sprintf("m%d", i), 128)
		if err != nil {
			t.Fatal(err)
		}
		readOK(t, cl, fh, 128)
	}
	snap := c.MergedSnapshot()
	perShard := 0
	for name := range snap.Counters {
		base, labels := splitName(name)
		if base == "nfsd_executed_total" && labels != "" {
			perShard++
		}
	}
	if perShard < 2 {
		t.Fatalf("merged snapshot has %d labeled executed counters; want ≥2", perShard)
	}
	if _, ok := snap.Gauges[`cluster_map_version{shard="cp"}`]; !ok {
		t.Fatalf("control-plane gauge missing from merge: %v", keys(snap.Gauges))
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestRebalancePreservesRacingWrites hammers a small file set with
// writers (each owning a private 8-byte slot per file) while shards are
// added and drained. The delta copy pass re-ships bytes written during
// the migration window; a write that lands on the gaining shard after
// the map flip must park on the migration fence until that delta has
// landed, or the re-ship silently reverts it. The bar: every slot ends
// holding the last value its writer was ACKed for, and no write errors.
func TestRebalancePreservesRacingWrites(t *testing.T) {
	c := newTestCluster(t, 2)
	cl, err := DialClient("tcp", c.CtrlAddr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Enough files of enough size that the delta copy pass has real
	// work: the lost-update window (post-flip write vs its handle's
	// delta re-ship) is only open while the delta pass runs.
	const nFiles = 96
	const fileSize = 64 << 10
	const writers = 8
	fhs := make([]nfsproto.FH, nFiles)
	for i := range fhs {
		fh, err := cl.Create(fmt.Sprintf("w%d", i), fileSize)
		if err != nil {
			t.Fatal(err)
		}
		fhs[i] = fh
	}

	var stop atomic.Bool
	var failures atomic.Int64
	var lastAcked [writers][nFiles]uint64
	// pause parks every writer between ops so the checker can read a
	// quiescent store: writers hold the read side across one RPC, the
	// checker takes the write side.
	var pause sync.RWMutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := uint64(1); !stop.Load(); i++ {
				j := int(i*2654435761+uint64(w)) % nFiles
				binary.BigEndian.PutUint64(buf, i)
				pause.RLock()
				body, err := cl.Call(nfsproto.ProcWrite, fhs[j], (&nfsproto.WriteArgs{
					FH: fhs[j], Offset: uint64(w * 8), Count: 8,
					Stable: nfsproto.WriteFileSync, Data: buf,
				}).Marshal())
				if err != nil || binary.BigEndian.Uint32(body) != nfsproto.OK {
					failures.Add(1)
					pause.RUnlock()
					continue
				}
				lastAcked[w][j] = i
				pause.RUnlock()
			}
		}(w)
	}

	// verify runs with writers parked: every slot must hold the last
	// value its writer was acked for. It must run right after each
	// membership change — a later successful write to a slot would mask
	// an update the rebalance lost.
	verify := func(tag string) {
		pause.Lock()
		defer pause.Unlock()
		m := c.Map()
		for j, fh := range fhs {
			owner, ok := m.OwnerID(uint64(fh))
			if !ok {
				t.Fatalf("%s: file %d has no owner", tag, j)
			}
			for w := 0; w < writers; w++ {
				want := lastAcked[w][j]
				if want == 0 {
					continue
				}
				data, _, err := c.shards[owner].fs.Read(fh, uint64(w*8), 8)
				if err != nil {
					t.Fatalf("%s: read back file %d slot %d: %v", tag, j, w, err)
				}
				if got := binary.BigEndian.Uint64(data); got != want {
					t.Fatalf("%s: lost update: file %d writer %d holds %d, last acked %d",
						tag, j, w, got, want)
				}
			}
		}
	}

	// Churn membership: each cycle adds a shard and drains the oldest
	// active one, so ownership keeps moving among survivors.
	for cycle := 0; cycle < 3; cycle++ {
		time.Sleep(5 * time.Millisecond)
		if _, _, err := c.AddShard(); err != nil {
			t.Fatal(err)
		}
		verify(fmt.Sprintf("cycle %d add", cycle))
		time.Sleep(5 * time.Millisecond)
		if _, err := c.Drain(c.Map().Shards[0].ID); err != nil {
			t.Fatal(err)
		}
		verify(fmt.Sprintf("cycle %d drain", cycle))
	}
	stop.Store(true)
	wg.Wait()

	if got := failures.Load(); got != 0 {
		t.Fatalf("%d failed writes during rebalance", got)
	}
	verify("final")
}

// TestFenceParksPostFlipWriteUntilDelta drives the exact interleaving
// of the rebalance lost-update race deterministically, via the
// schedule seams: a write dirties a migrating handle at its source
// during the copy window, then — after the flip and quiesce, with the
// delta copy still pending — a second write to the same handle reaches
// the gaining shard. The fence must park that write until the delta
// lands; were it admitted first, the delta's CreateAt would replace the
// file with the pre-flip bytes and silently revert an acked write.
func TestFenceParksPostFlipWriteUntilDelta(t *testing.T) {
	c := newTestCluster(t, 2)
	cl, err := DialClient("tcp", c.CtrlAddr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A file owned by the shard we will drain, so it must migrate.
	m1 := c.Map()
	srcID := m1.Shards[0].ID
	var fh nfsproto.FH
	for i := 0; ; i++ {
		f, err := cl.Create(fmt.Sprintf("park%d", i), 8)
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := m1.OwnerID(uint64(f)); owner == srcID {
			fh = f
			break
		}
	}

	write := func(val uint64) error {
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, val)
		body, err := cl.Call(nfsproto.ProcWrite, fh, (&nfsproto.WriteArgs{
			FH: fh, Count: 8, Stable: nfsproto.WriteFileSync, Data: buf,
		}).Marshal())
		if err != nil {
			return err
		}
		if st := binary.BigEndian.Uint32(body); st != nfsproto.OK {
			return fmt.Errorf("nfs status %d", st)
		}
		return nil
	}

	var w2done atomic.Bool
	var w2err error
	var wg sync.WaitGroup
	c.hookAfterTracking = func() {
		// Pre-flip write: lands on the source, marking fh dirty so the
		// delta pass will re-ship it.
		if err := write(1); err != nil {
			t.Errorf("pre-flip write: %v", err)
		}
	}
	c.hookAfterQuiesce = func() {
		// Post-flip write: chases the redirect to the gaining shard while
		// fh's delta copy is still pending. It must park on the fence.
		wg.Add(1)
		go func() {
			defer wg.Done()
			w2err = write(2)
			w2done.Store(true)
		}()
		deadline := time.Now().Add(100 * time.Millisecond)
		for time.Now().Before(deadline) {
			if w2done.Load() {
				t.Error("post-flip write committed before the delta pass — fence did not park it")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	if _, err := c.Drain(srcID); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if w2err != nil {
		t.Fatalf("post-flip write: %v", w2err)
	}

	owner, ok := c.Map().OwnerID(uint64(fh))
	if !ok {
		t.Fatal("no owner after drain")
	}
	data, _, err := c.shards[owner].fs.Read(fh, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(data); got != 2 {
		t.Fatalf("delta pass reverted the post-flip write: file holds %d, want 2", got)
	}
}
