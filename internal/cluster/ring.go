// Package cluster shards the NFS namespace across N nfsd instances by
// consistent hashing on file handle — the nfsheur lock-striping pattern
// lifted to process level. A tiny control plane hands clients a
// versioned shard map over RPC and coordinates shard add/drain with
// minimal key movement; each shard fronts its nfsd dispatch with a
// guard that redirects requests for handles it no longer owns, carrying
// the map version the client should refresh to.
package cluster

import (
	"fmt"
	"sort"

	"nfstricks/internal/xdr"
)

// vnodesPerShard is the number of ring points each shard contributes.
// 128 keeps the max/mean key imbalance under ~20% for small clusters
// while the ring stays tiny (1k points at 8 shards).
const vnodesPerShard = 128

// hash64 is splitmix64 — deterministic (unlike maphash's per-process
// seed), so every process that holds the same map computes the same
// owner for every handle. That determinism is the whole protocol: a
// client's routing decision must agree with the guard's ownership
// check without any per-request coordination.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardInfo is one shard's entry in the map.
type ShardInfo struct {
	ID   uint32
	Addr string
}

// Map is one version of the cluster's shard layout. Versions are
// strictly monotonic; ownership is decided by a consistent-hash ring
// built from the member list, so adding or draining one shard moves
// only ~1/N of the key space (property-tested in ring_test.go).
type Map struct {
	Version uint64
	Shards  []ShardInfo

	ring []ringPoint // sorted by hash
	byID map[uint32]ShardInfo
}

type ringPoint struct {
	hash  uint64
	shard uint32
}

// NewMap builds a map (and its ring) from a member list.
func NewMap(version uint64, shards []ShardInfo) *Map {
	m := &Map{
		Version: version,
		Shards:  append([]ShardInfo(nil), shards...),
		byID:    make(map[uint32]ShardInfo, len(shards)),
	}
	for _, s := range m.Shards {
		m.byID[s.ID] = s
		// Double-hashed vnode placement: a single hash of `id<<32|v`
		// would put each vnode at hash64(k) for a small structured k —
		// the same positions file handles from a sequential allocator
		// hash to, which once made every handle in an allocator run
		// land "exactly on" one shard's vnodes. Hashing the id first
		// moves the vnode inputs into a random region of the domain no
		// allocator emits.
		for v := uint64(0); v < vnodesPerShard; v++ {
			m.ring = append(m.ring, ringPoint{
				hash:  hash64(hash64(uint64(s.ID)) + v),
				shard: s.ID,
			})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool { return m.ring[i].hash < m.ring[j].hash })
	return m
}

// OwnerID returns the shard owning fh (false on an empty map).
func (m *Map) OwnerID(fh uint64) (uint32, bool) {
	if len(m.ring) == 0 {
		return 0, false
	}
	h := hash64(fh)
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	if i == len(m.ring) {
		i = 0
	}
	return m.ring[i].shard, true
}

// Owner returns the owning shard's full entry.
func (m *Map) Owner(fh uint64) (ShardInfo, bool) {
	id, ok := m.OwnerID(fh)
	if !ok {
		return ShardInfo{}, false
	}
	s, ok := m.byID[id]
	return s, ok
}

// Lookup returns the entry for a shard id.
func (m *Map) Lookup(id uint32) (ShardInfo, bool) {
	s, ok := m.byID[id]
	return s, ok
}

// AppendTo marshals the map (version, count, [id, addr]...).
func (m *Map) AppendTo(buf []byte) []byte {
	buf = xdr.AppendUint64(buf, m.Version)
	buf = xdr.AppendUint32(buf, uint32(len(m.Shards)))
	for _, s := range m.Shards {
		buf = xdr.AppendUint32(buf, s.ID)
		buf = xdr.AppendString(buf, s.Addr)
	}
	return buf
}

// DecodeMap unmarshals a map and rebuilds its ring.
func DecodeMap(d *xdr.Decoder) (*Map, error) {
	version := d.Uint64()
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("cluster: map header: %w", err)
	}
	if n > 4096 {
		return nil, fmt.Errorf("cluster: absurd shard count %d", n)
	}
	shards := make([]ShardInfo, 0, n)
	for i := uint32(0); i < n; i++ {
		id := d.Uint32()
		addr := d.String(256)
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("cluster: map entry %d: %w", i, err)
		}
		shards = append(shards, ShardInfo{ID: id, Addr: addr})
	}
	return NewMap(version, shards), nil
}
