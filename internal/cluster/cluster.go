package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/obs"
	"nfstricks/internal/readahead"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/vfs"
)

// Config sizes an in-process cluster.
type Config struct {
	// Shards is the initial shard count (default 1).
	Shards int
	// Addr is the bind address for each shard's NFS server (default
	// "127.0.0.1:0" — a fresh port per shard).
	Addr string
	// CtrlAddr is the control plane's bind address (default
	// "127.0.0.1:0").
	CtrlAddr string
	// TableShards is the nfsheur stripe count inside each shard
	// process. The default 1 is deliberate: one lock per process is
	// the serialization the cluster exists to stripe — each added
	// shard adds a whole process worth of lock, heap, and socket
	// capacity, which is the nfsheur striping pattern lifted one
	// level up.
	TableShards int
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.CtrlAddr == "" {
		c.CtrlAddr = "127.0.0.1:0"
	}
	if c.TableShards <= 0 {
		c.TableShards = 1
	}
}

// shard is one nfsd instance plus its cluster guard.
type shard struct {
	info    ShardInfo
	fs      *memfs.FS
	svc     *nfsd.Service
	guard   *guard
	srv     *rpcnet.Server
	reg     *obs.Registry
	drained bool

	migratedIn  *obs.Counter
	migratedOut *obs.Counter
}

// Cluster is an in-process shard group: N guarded nfsd instances, each
// with its own store, heuristics table, registry and listening
// sockets, plus the control plane. Membership changes (AddShard,
// Drain) rebalance with minimal key movement: only handles whose ring
// owner changes are copied, then the new map is published atomically
// and a quiesce + fenced delta pass catches writes that raced the flip
// (see rebalance).
type Cluster struct {
	cfg   Config
	cp    *ControlPlane
	cpReg *obs.Registry

	mu     sync.Mutex // serializes membership changes
	shards map[uint32]*shard
	nextID uint32

	// Test seams pinning the rebalance schedule at its two
	// race-sensitive points; both nil outside tests.
	hookAfterTracking func() // tracking+fences on, copy pass not started
	hookAfterQuiesce  func() // map flipped and quiesced, delta not started
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	cfg.fill()
	c := &Cluster{cfg: cfg, shards: make(map[uint32]*shard)}
	empty := NewMap(0, nil)
	var members []ShardInfo
	for i := 0; i < cfg.Shards; i++ {
		s, err := c.newShard(empty)
		if err != nil {
			c.Close()
			return nil, err
		}
		members = append(members, s.info)
	}
	initial := NewMap(1, members)
	for _, s := range c.shards {
		s.guard.setMap(initial)
	}
	c.cpReg = obs.NewRegistry()
	// c.cp must be set before serve: the membership callbacks reach back
	// through it, and a client may connect the moment the listener is up.
	c.cp = newControlPlane(initial, c.cpReg, c.Drain, c.AddShard)
	if err := c.cp.serve(cfg.CtrlAddr); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// newShard starts one guarded nfsd instance (caller holds c.mu or is
// still single-threaded in New).
func (c *Cluster) newShard(view *Map) (*shard, error) {
	id := c.nextID
	c.nextID++
	reg := obs.NewRegistry()
	fs := memfs.NewFS()
	tp := nfsheur.ScaledParams()
	tp.Shards = c.cfg.TableShards
	svc := nfsd.New(fs, nfsd.Config{
		Heuristic: readahead.SlowDown{},
		Table:     nfsheur.New(tp),
		Obs:       reg,
	})
	g := newGuard(id, view, svc.InfoHandler(), fs, reg)
	srv, err := rpcnet.NewServerInfo(c.cfg.Addr, nfsproto.Program, nfsproto.Version3,
		g.handler, rpcnet.ServerOptions{Spans: svc.SpanTable()})
	if err != nil {
		svc.Close()
		return nil, err
	}
	s := &shard{
		info:        ShardInfo{ID: id, Addr: srv.Addr()},
		fs:          fs,
		svc:         svc,
		guard:       g,
		srv:         srv,
		reg:         reg,
		migratedIn:  reg.Counter("cluster_migrated_in_total"),
		migratedOut: reg.Counter("cluster_migrated_out_total"),
	}
	c.shards[id] = s
	return s, nil
}

// CtrlAddr is the control plane's address — what clients dial.
func (c *Cluster) CtrlAddr() string { return c.cp.Addr() }

// Map returns the current shard map.
func (c *Cluster) Map() *Map { return c.cp.Current() }

// AddShard brings up a fresh shard, rebalances ~1/(N+1) of the key
// space onto it, and returns its entry and the new map version.
func (c *Cluster) AddShard() (ShardInfo, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.cp.Current()
	s, err := c.newShard(cur)
	if err != nil {
		return ShardInfo{}, 0, err
	}
	next := NewMap(cur.Version+1, append(append([]ShardInfo(nil), cur.Shards...), s.info))
	if err := c.rebalance(cur, next); err != nil {
		return ShardInfo{}, 0, err
	}
	return s.info, next.Version, nil
}

// Drain moves shard id's keys to the remaining members and removes it
// from the map. The drained instance keeps serving — every request it
// sees from then on is answered with a redirect to the new map, which
// is what lets clients holding the old map catch up without a single
// failed operation.
func (c *Cluster) Drain(id uint32) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.shards[id]
	if !ok || s.drained {
		return 0, fmt.Errorf("cluster: no active shard %d", id)
	}
	cur := c.cp.Current()
	var rest []ShardInfo
	for _, m := range cur.Shards {
		if m.ID != id {
			rest = append(rest, m)
		}
	}
	if len(rest) == 0 {
		return 0, fmt.Errorf("cluster: cannot drain the last shard")
	}
	next := NewMap(cur.Version+1, rest)
	if err := c.rebalance(cur, next); err != nil {
		return 0, err
	}
	s.drained = true
	return next.Version, nil
}

// active returns the non-drained shards (caller holds c.mu).
func (c *Cluster) active() []*shard {
	var out []*shard
	for _, s := range c.shards {
		if !s.drained {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].info.ID < out[j].info.ID })
	return out
}

// rebalance migrates from the cur map to the next (caller holds c.mu):
//
//  1. dirty tracking and migration fences on, then copy every file
//     whose owner changes — the long pass, running while the old map
//     still serves;
//  2. publish next atomically (control plane + every guard);
//  3. quiesce each member's old-epoch requests so no pre-flip write is
//     still mid-dispatch;
//  4. delta-copy the handles written during the copy pass;
//  5. lift the fences — post-flip mutations to migrated handles, which
//     the gaining guard parked so the delta could not overwrite them,
//     now apply on top of the shipped bytes (last-writer-wins holds);
//  6. prune files from shards that no longer own them.
//
// Steps 3–5 close the copy/write race in both directions: a write that
// completes on the source before the flip is quiesced, dirty-tracked
// and re-shipped, and a write that lands on the new owner after the
// flip waits out the delta behind the fence instead of being clobbered
// by it. The remaining documented anomaly: a client still holding the
// old map can read stale bytes from the source between copy and its
// first redirect; it can never write them (writes dirty-track and
// re-ship).
func (c *Cluster) rebalance(cur, next *Map) error {
	members := c.active()
	for _, s := range members {
		s.guard.trackDirty(true)
		s.guard.setFence(cur)
	}
	// Every exit path — including a failed copy pass — must stop dirty
	// tracking (or the sets grow without bound until the next membership
	// change) and release any requests parked on a fence.
	defer func() {
		for _, s := range members {
			s.guard.trackDirty(false)
			s.guard.liftFence()
		}
	}()
	if c.hookAfterTracking != nil {
		c.hookAfterTracking()
	}
	if err := c.copyPass(members, next, nil); err != nil {
		return err
	}

	// Flip: control plane first (new fetches see it), then the guards.
	c.cp.cur.Store(next)
	for _, s := range c.shards {
		s.guard.setMap(next)
	}
	for _, s := range members {
		s.guard.quiesce(cur.Version)
	}
	if c.hookAfterQuiesce != nil {
		c.hookAfterQuiesce()
	}

	// Delta: re-ship what was written while the copy pass ran. Gaining
	// guards hold their fences until this lands, so no post-flip write
	// can interleave under a CreateAt that would replace it.
	for _, s := range members {
		dirty := s.guard.takeDirty()
		if len(dirty) == 0 {
			continue
		}
		set := make(map[nfsproto.FH]struct{}, len(dirty))
		for _, fh := range dirty {
			set[fh] = struct{}{}
		}
		if err := c.copyPass([]*shard{s}, next, set); err != nil {
			return err
		}
	}

	// Delta landed: release parked mutations before the prune walk so
	// they don't wait out work that cannot affect them.
	for _, s := range members {
		s.guard.liftFence()
	}

	// Prune: drop every file from shards that no longer own it.
	for _, s := range members {
		page, err := s.fs.Readdir(vfs.RootFH, 0, 0, 0)
		if err != nil {
			return err
		}
		for _, e := range page.Entries {
			if e.Attr.Dir {
				continue
			}
			if owner, ok := next.OwnerID(uint64(e.FH)); ok && owner != s.info.ID {
				if _, err := s.fs.Remove(vfs.RootFH, e.Name); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// copyPass ships every file on the given shards whose next-map owner
// differs, optionally restricted to a handle set (the delta pass).
func (c *Cluster) copyPass(from []*shard, next *Map, only map[nfsproto.FH]struct{}) error {
	for _, s := range from {
		page, err := s.fs.Readdir(vfs.RootFH, 0, 0, 0)
		if err != nil {
			return err
		}
		for _, e := range page.Entries {
			if e.Attr.Dir {
				continue
			}
			if only != nil {
				if _, ok := only[e.FH]; !ok {
					continue
				}
			}
			owner, ok := next.OwnerID(uint64(e.FH))
			if !ok || owner == s.info.ID {
				continue
			}
			dst, ok := c.shards[owner]
			if !ok {
				return fmt.Errorf("cluster: map names unknown shard %d", owner)
			}
			if err := migrate(s, dst, e); err != nil {
				return err
			}
		}
	}
	return nil
}

// migrate copies one file between stores at the same handle. The bytes
// are cloned rather than shared: the source object is about to be
// pruned and the two stores must not alias COW segments.
func migrate(src, dst *shard, e vfs.DirEntry) error {
	data, _, err := src.fs.Read(e.FH, 0, uint32(e.Attr.Size))
	if err != nil {
		return err
	}
	if err := dst.fs.CreateAt(vfs.RootFH, e.Name, e.FH, append([]byte(nil), data...)); err != nil {
		return err
	}
	src.migratedOut.Add(1)
	dst.migratedIn.Add(1)
	return nil
}

// MergedSnapshot merges every shard's registry (and the control
// plane's, labeled "cp") into one snapshot with a `shard` label — the
// single view the bench report and an admin endpoint export.
func (c *Cluster) MergedSnapshot() obs.Snapshot {
	c.mu.Lock()
	ids := make([]uint32, 0, len(c.shards))
	for id := range c.shards {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]obs.LabeledSnapshot, 0, len(ids)+1)
	for _, id := range ids {
		parts = append(parts, obs.LabeledSnapshot{
			Value: strconv.FormatUint(uint64(id), 10),
			Snap:  c.shards[id].reg.Dump(),
		})
	}
	c.mu.Unlock()
	parts = append(parts, obs.LabeledSnapshot{Value: "cp", Snap: c.cpReg.Dump()})
	return obs.MergeLabeled("shard", parts)
}

// ShardStat is one shard's contribution to a merged report.
type ShardStat struct {
	ID        uint32
	Drained   bool
	Executed  int64
	Redirects int64
}

// Stats summarizes per-shard load — how evenly the ring spread the
// work, and how much of it was redirect coordination.
func (c *Cluster) Stats() []ShardStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []ShardStat
	for _, s := range c.active() {
		out = append(out, c.statLocked(s))
	}
	for _, s := range c.shards {
		if s.drained {
			out = append(out, c.statLocked(s))
		}
	}
	return out
}

func (c *Cluster) statLocked(s *shard) ShardStat {
	snap := s.reg.Dump()
	st := ShardStat{ID: s.info.ID, Drained: s.drained}
	for name, v := range snap.Counters {
		base, _ := splitName(name)
		switch base {
		case "nfsd_executed_total":
			st.Executed += v
		case "cluster_redirects_total":
			st.Redirects += v
		}
	}
	return st
}

// splitName strips a label block off a metric name.
func splitName(name string) (base, labels string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i], name[i:]
		}
	}
	return name, ""
}

// Close shuts down every shard (including drained ones) and the
// control plane.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	if c.cp != nil {
		if err := c.cp.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range c.shards {
		if err := s.srv.Close(); err != nil && first == nil {
			first = err
		}
		if err := s.svc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
