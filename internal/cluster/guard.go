package cluster

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/obs"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/sunrpc"
	"nfstricks/internal/vfs"
	"nfstricks/internal/xdr"
)

// guard fronts one shard's nfsd dispatch with the cluster's ownership
// check: requests whose leading handle hashes to another shard under
// the guard's current map view are answered with a wrong-shard
// redirect carrying that view's version — the client refreshes and
// re-routes; the server never proxies. The guard also serves
// ProcClusterCreate (placement at a cluster-allocated handle) and
// keeps the two pieces of state rebalancing needs: an in-flight
// request count (for quiescing a source shard after a map flip) and a
// dirty-handle set (for the delta copy pass).
type guard struct {
	id    uint32
	view  atomic.Pointer[Map]
	inner rpcnet.InfoHandler
	fs    *memfs.FS

	inflight atomic.Int64

	mu       sync.Mutex
	tracking bool
	dirty    map[nfsproto.FH]struct{}

	redirects *obs.Counter
	creates   *obs.Counter
}

func newGuard(id uint32, initial *Map, inner rpcnet.InfoHandler, fs *memfs.FS, reg *obs.Registry) *guard {
	g := &guard{
		id:        id,
		inner:     inner,
		fs:        fs,
		redirects: reg.Counter("cluster_redirects_total"),
		creates:   reg.Counter("cluster_creates_total"),
	}
	g.view.Store(initial)
	return g
}

// setMap publishes a new map view to this guard.
func (g *guard) setMap(m *Map) { g.view.Store(m) }

// trackDirty toggles dirty-handle recording; turning it off clears the
// set.
func (g *guard) trackDirty(on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tracking = on
	if !on {
		g.dirty = nil
	}
}

// takeDirty returns and clears the recorded dirty handles.
func (g *guard) takeDirty() []nfsproto.FH {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]nfsproto.FH, 0, len(g.dirty))
	for fh := range g.dirty {
		out = append(out, fh)
	}
	g.dirty = nil
	return out
}

func (g *guard) markDirty(fh nfsproto.FH) {
	g.mu.Lock()
	if g.tracking {
		if g.dirty == nil {
			g.dirty = make(map[nfsproto.FH]struct{})
		}
		g.dirty[fh] = struct{}{}
	}
	g.mu.Unlock()
}

// handler is the rpcnet.InfoHandler served by the shard.
func (g *guard) handler(info rpcnet.CallInfo, proc uint32, body, reply []byte) ([]byte, uint32) {
	g.inflight.Add(1)
	defer g.inflight.Add(-1)

	if proc == nfsproto.ProcNull {
		return g.inner(info, proc, body, reply)
	}
	fh, ok := peekFH(body)
	if !ok {
		// Unroutable garbage; let the NFS layer reject it.
		return g.inner(info, proc, body, reply)
	}
	m := g.view.Load()
	if owner, ok := m.OwnerID(uint64(fh)); ok && owner != g.id {
		g.redirects.Add(1)
		info.Span.Mark(obs.StageExec)
		return appendRedirect(reply, m.Version), sunrpc.AcceptSuccess
	}
	if proc == ProcClusterCreate {
		return g.clusterCreate(info, body, reply)
	}
	if mutates(proc) {
		g.markDirty(fh)
	}
	return g.inner(info, proc, body, reply)
}

// mutates reports whether proc can change the bytes or size of the
// file its leading handle names — the set the delta copy pass must
// re-ship after a map flip.
func mutates(proc uint32) bool {
	switch proc {
	case nfsproto.ProcWrite, nfsproto.ProcSetattr, ProcClusterCreate:
		return true
	}
	return false
}

// clusterCreate places a zero-filled file at a cluster-allocated
// handle, flat under the shard's root.
func (g *guard) clusterCreate(info rpcnet.CallInfo, body, reply []byte) ([]byte, uint32) {
	var args clusterCreateArgs
	if err := args.Unmarshal(body); err != nil {
		info.Span.Mark(obs.StageExec)
		return reply, sunrpc.AcceptGarbageArgs
	}
	g.markDirty(args.FH)
	err := g.fs.CreateAt(vfs.RootFH, args.Name, args.FH, make([]byte, args.Size))
	info.Span.Mark(obs.StageExec)
	if err != nil {
		st := uint32(nfsproto.ErrIO)
		if errors.Is(err, vfs.ErrExist) {
			st = nfsproto.ErrExist
		}
		return xdr.AppendUint32(reply, st), sunrpc.AcceptSuccess
	}
	g.creates.Add(1)
	return xdr.AppendUint32(reply, nfsproto.OK), sunrpc.AcceptSuccess
}

// quiesce spins until no request is mid-dispatch in this guard — the
// post-flip barrier that guarantees the delta pass sees every write
// that raced the flip.
func (g *guard) quiesce() {
	for g.inflight.Load() > 0 {
		// In-flight requests are sub-millisecond memory operations; a
		// busy-yield is cheaper than parking machinery for a path that
		// runs once per membership change.
		runtime.Gosched()
	}
}
