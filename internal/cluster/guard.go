package cluster

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/obs"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/sunrpc"
	"nfstricks/internal/vfs"
	"nfstricks/internal/xdr"
)

// guard fronts one shard's nfsd dispatch with the cluster's ownership
// check: requests whose leading handle hashes to another shard under
// the guard's current map view are answered with a wrong-shard
// redirect carrying that view's version — the client refreshes and
// re-routes; the server never proxies. The guard also serves
// ProcClusterCreate (placement at a cluster-allocated handle) and
// keeps the three pieces of state rebalancing needs: per-map-epoch
// in-flight request counts (for quiescing requests admitted under the
// old map after a flip), a dirty-handle set (for the delta copy pass),
// and a migration fence (so a post-flip write can never be overwritten
// by the delta copy it raced).
type guard struct {
	id    uint32
	view  atomic.Pointer[Map]
	inner rpcnet.InfoHandler
	fs    *memfs.FS

	// inflight counts requests per map-version parity: a request is
	// counted under the view it was admitted with, so quiesce can wait
	// for exactly the old map's stragglers while new-map traffic —
	// including mutations parked on the fence — keeps flowing. Two
	// slots suffice: membership changes are serialized by Cluster.mu
	// and each drains version v before v+2 can exist.
	inflight [2]atomic.Int64

	// fence, when non-nil, parks mutations to handles still awaiting
	// their rebalance delta copy (see fence type).
	fence atomic.Pointer[fence]

	mu       sync.Mutex
	tracking bool
	dirty    map[nfsproto.FH]struct{}

	redirects *obs.Counter
	creates   *obs.Counter
}

// fence is the rebalance write barrier. It is installed on every
// gaining shard before the map flip and lifted after the delta copy
// pass: in between, a mutation to a handle this shard did not own
// under prev (i.e. one migrating in) blocks on done rather than
// executing, because the delta pass may still re-ship that handle's
// pre-flip bytes — letting the write through first would let the delta
// silently overwrite it. Blocked requests are counted under the new
// map's inflight slot, so they never deadlock the old-epoch quiesce.
type fence struct {
	prev *Map
	done chan struct{}
}

// covers reports whether fh is migrating into shard self across this
// fence's flip (self did not own it under the pre-flip map).
func (f *fence) covers(self uint32, fh uint64) bool {
	owner, ok := f.prev.OwnerID(fh)
	return !ok || owner != self
}

func newGuard(id uint32, initial *Map, inner rpcnet.InfoHandler, fs *memfs.FS, reg *obs.Registry) *guard {
	g := &guard{
		id:        id,
		inner:     inner,
		fs:        fs,
		redirects: reg.Counter("cluster_redirects_total"),
		creates:   reg.Counter("cluster_creates_total"),
	}
	g.view.Store(initial)
	return g
}

// setMap publishes a new map view to this guard.
func (g *guard) setMap(m *Map) { g.view.Store(m) }

// setFence installs the migration write barrier for a flip away from
// prev; liftFence removes it and releases every parked request. Lifting
// an absent fence is a no-op, so error paths can lift unconditionally.
func (g *guard) setFence(prev *Map) {
	g.fence.Store(&fence{prev: prev, done: make(chan struct{})})
}

func (g *guard) liftFence() {
	if f := g.fence.Swap(nil); f != nil {
		close(f.done)
	}
}

// admit counts the caller in flight under the current map view and
// returns that view plus the release function. The re-check loop closes
// the window between loading the view and bumping its counter: once
// both agree, any later setMap(next) is ordered after the increment, so
// a quiesce following that flip cannot miss this request.
func (g *guard) admit() (*Map, func()) {
	for {
		m := g.view.Load()
		slot := &g.inflight[m.Version&1]
		slot.Add(1)
		if g.view.Load() == m {
			return m, func() { slot.Add(-1) }
		}
		slot.Add(-1)
	}
}

// trackDirty toggles dirty-handle recording; turning it off clears the
// set.
func (g *guard) trackDirty(on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tracking = on
	if !on {
		g.dirty = nil
	}
}

// takeDirty returns and clears the recorded dirty handles.
func (g *guard) takeDirty() []nfsproto.FH {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]nfsproto.FH, 0, len(g.dirty))
	for fh := range g.dirty {
		out = append(out, fh)
	}
	g.dirty = nil
	return out
}

func (g *guard) markDirty(fh nfsproto.FH) {
	g.mu.Lock()
	if g.tracking {
		if g.dirty == nil {
			g.dirty = make(map[nfsproto.FH]struct{})
		}
		g.dirty[fh] = struct{}{}
	}
	g.mu.Unlock()
}

// handler is the rpcnet.InfoHandler served by the shard.
func (g *guard) handler(info rpcnet.CallInfo, proc uint32, body, reply []byte) ([]byte, uint32) {
	m, release := g.admit()
	defer release()

	if proc == nfsproto.ProcNull {
		return g.inner(info, proc, body, reply)
	}
	fh, ok := peekFH(body)
	if !ok {
		// Unroutable garbage; let the NFS layer reject it.
		return g.inner(info, proc, body, reply)
	}
	if owner, ok := m.OwnerID(uint64(fh)); ok && owner != g.id {
		g.redirects.Add(1)
		info.Span.Mark(obs.StageExec)
		return appendRedirect(reply, m.Version), sunrpc.AcceptSuccess
	}
	if mutates(proc) {
		// Only a post-flip view reaches here for a migrating handle (the
		// pre-flip view redirects it), so a parked request is always in
		// the new map's inflight slot — the old epoch drains regardless.
		if f := g.fence.Load(); f != nil && f.covers(g.id, uint64(fh)) {
			<-f.done
		}
		g.markDirty(fh)
	}
	if proc == ProcClusterCreate {
		return g.clusterCreate(info, body, reply)
	}
	return g.inner(info, proc, body, reply)
}

// mutates reports whether proc can change the bytes or size of the
// file its leading handle names — the set the delta copy pass must
// re-ship after a map flip.
func mutates(proc uint32) bool {
	switch proc {
	case nfsproto.ProcWrite, nfsproto.ProcSetattr, ProcClusterCreate:
		return true
	}
	return false
}

// clusterCreate places a zero-filled file at a cluster-allocated
// handle, flat under the shard's root.
func (g *guard) clusterCreate(info rpcnet.CallInfo, body, reply []byte) ([]byte, uint32) {
	var args clusterCreateArgs
	if err := args.Unmarshal(body); err != nil {
		info.Span.Mark(obs.StageExec)
		return reply, sunrpc.AcceptGarbageArgs
	}
	// handler already dirty-marked the handle (ProcClusterCreate is in
	// mutates and args.FH is the peeked routing handle).
	err := g.fs.CreateAt(vfs.RootFH, args.Name, args.FH, make([]byte, args.Size))
	info.Span.Mark(obs.StageExec)
	if err != nil {
		st := uint32(nfsproto.ErrIO)
		if errors.Is(err, vfs.ErrExist) {
			st = nfsproto.ErrExist
		}
		return xdr.AppendUint32(reply, st), sunrpc.AcceptSuccess
	}
	g.creates.Add(1)
	return xdr.AppendUint32(reply, nfsproto.OK), sunrpc.AcceptSuccess
}

// quiesce spins until no request admitted under map version oldVersion
// is still mid-dispatch — the post-flip barrier that guarantees the
// delta pass sees every write that raced the flip. Requests admitted
// under the new map count in the other parity slot, so sustained
// open-loop load (and mutations parked on the fence) cannot starve the
// wait: the old slot drains monotonically once the flip is published.
func (g *guard) quiesce(oldVersion uint64) {
	for g.inflight[oldVersion&1].Load() > 0 {
		// Old-epoch requests are sub-millisecond memory operations; a
		// busy-yield is cheaper than parking machinery for a path that
		// runs once per membership change.
		runtime.Gosched()
	}
}
