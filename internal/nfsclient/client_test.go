package nfsclient

import (
	"testing"

	"nfstricks/internal/buffercache"
	"nfstricks/internal/disk"
	"nfstricks/internal/ffs"
	"nfstricks/internal/iosched"
	"nfstricks/internal/netsim"
	"nfstricks/internal/nfsheur"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/nfsserver"
	"nfstricks/internal/readahead"
	"nfstricks/internal/sim"
)

type rig struct {
	k    *sim.Kernel
	srv  *nfsserver.Server
	fs   *ffs.FS
	mnt  *Mount
	net  *netsim.Network
	root nfsproto.FH
}

func newRig(t *testing.T, clientCfg Config, netCfg netsim.Config) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	m := disk.WD200BB()
	dev := disk.NewDevice(k, m)
	dr := disk.NewDriver(k, dev, iosched.NewElevator())
	cache := buffercache.New(k, dr, 4096)
	fsys := ffs.New(k, cache, m.Geo.QuarterPartitions("ide")[0], ffs.Config{})

	net := netsim.New(k, netCfg)
	serverHost := net.Host("server", 54e6)
	clientHost := net.Host("client", 0)

	srv := nfsserver.New(k, serverHost, nfsserver.Config{
		Heuristic: readahead.SlowDown{},
		Table:     nfsheur.ImprovedParams(),
	})
	srv.Export(fsys)
	srv.Start()

	cpu := sim.NewCPU(k)
	mnt := New(k, cpu, clientHost, 900,
		netsim.Addr{Host: "server", Port: nfsserver.Port}, clientCfg)
	if err := mnt.Start(); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, srv: srv, fs: fsys, mnt: mnt, net: net, root: srv.RootFH(0)}
}

func TestOpenAndSize(t *testing.T) {
	r := newRig(t, Config{}, netsim.Config{})
	r.fs.Create("f", 5<<20)
	r.k.Go("app", func(p *sim.Proc) {
		rf, err := r.mnt.Open(p, r.root, "f")
		if err != nil {
			t.Error(err)
			return
		}
		if rf.Size() != 5<<20 || rf.FH() == 0 {
			t.Errorf("size=%d fh=%d", rf.Size(), rf.FH())
		}
	})
	r.k.Run()
	r.k.Shutdown()
}

func TestOpenMissing(t *testing.T) {
	r := newRig(t, Config{}, netsim.Config{})
	r.k.Go("app", func(p *sim.Proc) {
		if _, err := r.mnt.Open(p, r.root, "ghost"); err == nil {
			t.Error("open of missing file succeeded")
		}
	})
	r.k.Run()
	r.k.Shutdown()
}

func TestSequentialReadCountsAndEOF(t *testing.T) {
	r := newRig(t, Config{}, netsim.Config{})
	size := int64(2<<20 + 100)
	r.fs.Create("f", size)
	r.k.Go("app", func(p *sim.Proc) {
		rf, err := r.mnt.Open(p, r.root, "f")
		if err != nil {
			t.Error(err)
			return
		}
		var total int64
		for off := int64(0); off < size; off += BlockSize {
			total += rf.Read(p, off, BlockSize)
		}
		if total != size {
			t.Errorf("read %d of %d bytes", total, size)
		}
		if n := rf.Read(p, size+BlockSize, BlockSize); n != 0 {
			t.Errorf("read past EOF returned %d", n)
		}
	})
	r.k.Run()
	r.k.Shutdown()
	if r.srv.Stats().BytesRead < size {
		t.Fatalf("server saw %d bytes", r.srv.Stats().BytesRead)
	}
}

func TestClientReadAheadIssued(t *testing.T) {
	r := newRig(t, Config{}, netsim.Config{})
	r.fs.Create("f", 2<<20)
	r.k.Go("app", func(p *sim.Proc) {
		rf, _ := r.mnt.Open(p, r.root, "f")
		for off := int64(0); off < 1<<20; off += BlockSize {
			rf.Read(p, off, BlockSize)
		}
	})
	r.k.Run()
	r.k.Shutdown()
	st := r.mnt.Stats()
	if st.ReadAheads == 0 {
		t.Fatal("no client read-ahead issued for sequential reads")
	}
	if st.CacheHits == 0 {
		t.Fatal("read-ahead produced no cache hits")
	}
}

func TestSecondSequentialPassHitsClientCache(t *testing.T) {
	r := newRig(t, Config{}, netsim.Config{})
	r.fs.Create("f", 1<<20)
	r.k.Go("app", func(p *sim.Proc) {
		rf, _ := r.mnt.Open(p, r.root, "f")
		for pass := 0; pass < 2; pass++ {
			for off := int64(0); off < 1<<20; off += BlockSize {
				rf.Read(p, off, BlockSize)
			}
		}
	})
	r.k.Run()
	r.k.Shutdown()
	// The second pass must be nearly all client cache hits: the server
	// sees roughly one set of READs, not two.
	if reads := r.srv.Stats().Reads; reads > 140 {
		t.Fatalf("server reads = %d for 128 distinct blocks read twice", reads)
	}
}

func TestFlushDropsClientCache(t *testing.T) {
	r := newRig(t, Config{}, netsim.Config{})
	r.fs.Create("f", 1<<20)
	r.k.Go("app", func(p *sim.Proc) {
		rf, _ := r.mnt.Open(p, r.root, "f")
		for off := int64(0); off < 1<<20; off += BlockSize {
			rf.Read(p, off, BlockSize)
		}
		before := r.srv.Stats().Reads
		r.mnt.Flush()
		for off := int64(0); off < 1<<20; off += BlockSize {
			rf.Read(p, off, BlockSize)
		}
		if r.srv.Stats().Reads <= before {
			t.Error("flush did not force re-fetch")
		}
	})
	r.k.Run()
	r.k.Shutdown()
}

func TestWriteThrough(t *testing.T) {
	r := newRig(t, Config{}, netsim.Config{})
	r.fs.Create("f", 1<<20)
	r.k.Go("app", func(p *sim.Proc) {
		rf, _ := r.mnt.Open(p, r.root, "f")
		if !rf.Write(p, 0, BlockSize) {
			t.Error("write failed")
		}
	})
	r.k.Run()
	r.k.Shutdown()
	if r.srv.Stats().Writes != 1 {
		t.Fatalf("server writes = %d", r.srv.Stats().Writes)
	}
}

func TestCreateOverMount(t *testing.T) {
	r := newRig(t, Config{}, netsim.Config{})
	r.k.Go("app", func(p *sim.Proc) {
		rf, err := r.mnt.Create(p, r.root, "newfile", 4*BlockSize)
		if err != nil {
			t.Error(err)
			return
		}
		if rf.Size() != 4*BlockSize {
			t.Errorf("created size = %d", rf.Size())
		}
	})
	r.k.Run()
	r.k.Shutdown()
	if _, ok := r.fs.Lookup("newfile"); !ok {
		t.Fatal("file not created on server")
	}
}

func TestGetAttr(t *testing.T) {
	r := newRig(t, Config{}, netsim.Config{})
	f, _ := r.fs.Create("f", 3<<20)
	r.k.Go("app", func(p *sim.Proc) {
		attrs, err := r.mnt.GetAttr(p, nfsproto.FH(f.Handle()))
		if err != nil || attrs.Size != 3<<20 {
			t.Errorf("getattr: %+v err=%v", attrs, err)
		}
	})
	r.k.Run()
	r.k.Shutdown()
}

func TestUDPRetransmissionUnderLoss(t *testing.T) {
	// 20% frame loss: reads must still complete via retransmission.
	r := newRig(t, Config{RetransTimeout: 50 * 1e6}, netsim.Config{LossProb: 0.2})
	r.fs.Create("f", 256<<10)
	done := false
	r.k.Go("app", func(p *sim.Proc) {
		rf, err := r.mnt.Open(p, r.root, "f")
		if err != nil {
			t.Error(err)
			return
		}
		var total int64
		for off := int64(0); off < rf.Size(); off += BlockSize {
			total += rf.Read(p, off, BlockSize)
		}
		done = total == rf.Size()
	})
	r.k.Run()
	r.k.Shutdown()
	if !done {
		t.Fatal("reads did not complete under loss")
	}
	if r.mnt.Stats().Retrans == 0 {
		t.Fatal("no retransmissions under 20% loss")
	}
}

func TestTCPMountKeepsOrder(t *testing.T) {
	r := newRig(t, Config{UseTCP: true}, netsim.Config{})
	r.fs.Create("f", 2<<20)
	r.k.Go("app", func(p *sim.Proc) {
		rf, _ := r.mnt.Open(p, r.root, "f")
		for off := int64(0); off < 2<<20; off += BlockSize {
			rf.Read(p, off, BlockSize)
		}
	})
	r.k.Run()
	r.k.Shutdown()
	if st := r.srv.Stats(); st.ReorderedReads != 0 {
		t.Fatalf("TCP mount reordered %d reads", st.ReorderedReads)
	}
}

func TestUDPMountReordersUnderConcurrency(t *testing.T) {
	r := newRig(t, Config{}, netsim.Config{})
	r.fs.Create("f", 4<<20)
	r.k.Go("app", func(p *sim.Proc) {
		rf, _ := r.mnt.Open(p, r.root, "f")
		for off := int64(0); off < 4<<20; off += BlockSize {
			rf.Read(p, off, BlockSize)
		}
	})
	r.k.Run()
	r.k.Shutdown()
	if st := r.srv.Stats(); st.ReorderedReads == 0 {
		t.Fatal("UDP mount never reordered; jitter model inert")
	}
}
