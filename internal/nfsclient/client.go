// Package nfsclient implements the simulated NFS client: a block cache,
// a client-side sequentiality heuristic that drives read-ahead, and a
// pool of nfsiod processes that issue those read-aheads. Each nfsiod
// burns a jittered slice of (possibly contended) client CPU marshalling
// before it transmits, so requests that were generated in order can
// reach the wire out of order — the reordering mechanism the paper
// traces to "queuing issues in the client nfsiod daemon" (§6). A TCP
// mount serializes sends through a connection send-lock (FreeBSD's
// nfs_sndlock), which is why the paper measures far less reordering
// over TCP than over UDP.
package nfsclient

import (
	"container/list"
	"fmt"
	"time"

	"nfstricks/internal/netsim"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/nfsrpc"
	"nfstricks/internal/readahead"
	"nfstricks/internal/sim"
)

// BlockSize is the NFS read granularity (8 KB, matching the server FS).
const BlockSize = 8192

// Config tunes a mount.
type Config struct {
	// NumNFSIOD is the nfsiod pool size. The paper runs eight.
	NumNFSIOD int
	// ReadAhead is the client read-ahead window ceiling in blocks.
	ReadAhead int
	// MarshalCPU is the mean client CPU cost to build and send one RPC.
	MarshalCPU time.Duration
	// MarshalJitter is the maximum uniform extra CPU added to a
	// marshal; this is the reordering knob.
	MarshalJitter time.Duration
	// PreemptJitter is additional maximum jitter per background process
	// on the client CPU: a loaded client preempts nfsiods mid-marshal,
	// which is why "the frequency of packet reordering increases in
	// tandem with the number of active processes on the client" (§6.1).
	PreemptJitter time.Duration
	// SocketCPU is the serialized cost of the socket enqueue step; it
	// staggers concurrent marshals so most bursts stay in order.
	SocketCPU time.Duration
	// RecvCPU is the client CPU cost to receive one reply.
	RecvCPU time.Duration
	// PerBlockCPU is the client CPU spent per block delivered to the
	// application (copyout, syscall return). With background load this
	// is where the busy client loses throughput.
	PerBlockCPU time.Duration
	// PerSegCPU is the additional CPU per TCP segment.
	PerSegCPU time.Duration
	// UseTCP selects the transport ("The RPC transport protocol used by
	// each file system mounted via NFS is chosen when the file system
	// is mounted", §5.4).
	UseTCP bool
	// RetransTimeout is the UDP retransmission timeout.
	RetransTimeout time.Duration
	// CacheBlocks sizes the client block cache (1 GB RAM worth by
	// default, like the paper's clients).
	CacheBlocks int
}

func (c *Config) fill() {
	if c.NumNFSIOD == 0 {
		c.NumNFSIOD = 8
	}
	if c.ReadAhead == 0 {
		c.ReadAhead = 8
	}
	if c.MarshalCPU == 0 {
		c.MarshalCPU = 50 * time.Microsecond
	}
	if c.MarshalJitter == 0 {
		c.MarshalJitter = 16 * time.Microsecond
	}
	if c.PreemptJitter == 0 {
		c.PreemptJitter = 2 * time.Microsecond
	}
	if c.PerBlockCPU == 0 {
		c.PerBlockCPU = 60 * time.Microsecond
	}
	if c.SocketCPU == 0 {
		c.SocketCPU = 10 * time.Microsecond
	}
	if c.RecvCPU == 0 {
		c.RecvCPU = 40 * time.Microsecond
	}
	if c.PerSegCPU == 0 {
		c.PerSegCPU = 25 * time.Microsecond
	}
	if c.RetransTimeout == 0 {
		c.RetransTimeout = 900 * time.Millisecond
	}
	if c.CacheBlocks == 0 {
		c.CacheBlocks = 131072 // 1 GB of 8 KB blocks
	}
}

// Stats aggregates client counters.
type Stats struct {
	Calls      int64
	Retrans    int64
	CacheHits  int64
	CacheWaits int64 // demand reads that joined an in-flight fetch
	DemandRPCs int64
	ReadAheads int64
}

type pendingCall struct {
	done    *sim.Event
	res     nfsrpc.Sized
	msg     netsim.Message
	retries int
}

type blockKey struct {
	fh    nfsproto.FH
	block int64
}

type iodJob struct {
	fh    nfsproto.FH
	block int64
	count uint32
}

// Mount is one NFS mount: a transport to a server plus client state.
type Mount struct {
	k       *sim.Kernel
	cpu     *sim.CPU
	cfg     Config
	server  netsim.Addr
	host    *netsim.Host
	udp     *netsim.UDPSocket
	conn    *netsim.Conn
	sndlock *sim.Semaphore

	nextXID uint32
	pending map[uint32]*pendingCall
	iodq    *sim.Chan[iodJob]

	lru      *list.List
	resident map[blockKey]*list.Element
	inflight map[blockKey]*sim.Event

	stats Stats
}

// New creates a mount on host targeting server. port is the local UDP
// port to bind (distinct per mount). cpu is the client machine's CPU
// resource, shared with any background load.
func New(k *sim.Kernel, cpu *sim.CPU, host *netsim.Host, port int, server netsim.Addr, cfg Config) *Mount {
	cfg.fill()
	m := &Mount{
		k:        k,
		cpu:      cpu,
		cfg:      cfg,
		server:   server,
		host:     host,
		sndlock:  sim.NewSemaphore(k, 1),
		pending:  make(map[uint32]*pendingCall),
		iodq:     sim.NewChan[iodJob](k),
		lru:      list.New(),
		resident: make(map[blockKey]*list.Element),
		inflight: make(map[blockKey]*sim.Event),
	}
	if !cfg.UseTCP {
		m.udp = host.UDP(port)
	}
	return m
}

// Stats returns a copy of the counters.
func (m *Mount) Stats() Stats { return m.stats }

// Config returns the mount configuration in effect.
func (m *Mount) Config() Config { return m.cfg }

// CPU returns the client CPU resource.
func (m *Mount) CPU() *sim.CPU { return m.cpu }

// Flush drops the client block cache (between benchmark runs).
func (m *Mount) Flush() {
	m.lru.Init()
	m.resident = make(map[blockKey]*list.Element)
}

// Start connects (TCP) and spawns the reply demultiplexer and nfsiods.
func (m *Mount) Start() error {
	if m.cfg.UseTCP {
		conn, err := m.host.Dial(m.server)
		if err != nil {
			return fmt.Errorf("nfsclient: %w", err)
		}
		m.conn = conn
		m.k.Go("nfs-demux-tcp", func(p *sim.Proc) {
			for {
				msg := m.conn.Recv(p)
				m.cpu.Use(p, m.cfg.RecvCPU+time.Duration(segsFor(msg.Size))*m.cfg.PerSegCPU)
				m.complete(msg.Payload.(nfsrpc.Reply))
			}
		})
	} else {
		m.k.Go("nfs-demux-udp", func(p *sim.Proc) {
			for {
				pkt := m.udp.Recv(p)
				m.cpu.Use(p, m.cfg.RecvCPU)
				m.complete(pkt.Msg.Payload.(nfsrpc.Reply))
			}
		})
	}
	for i := 0; i < m.cfg.NumNFSIOD; i++ {
		m.k.Go(fmt.Sprintf("nfsiod%d", i), m.nfsiod)
	}
	return nil
}

func segsFor(size int) int {
	segs := (size + 4 + 1447) / 1448
	if segs < 1 {
		segs = 1
	}
	return segs
}

// complete routes a reply to its waiting caller. Unknown XIDs (replies
// to retransmitted calls that already completed) are dropped.
func (m *Mount) complete(r nfsrpc.Reply) {
	pc, ok := m.pending[r.XID]
	if !ok {
		return
	}
	delete(m.pending, r.XID)
	pc.res = r.Res
	pc.done.Fire()
}

// call performs one RPC from process p and returns the result.
func (m *Mount) call(p *sim.Proc, proc uint32, args nfsrpc.Sized) nfsrpc.Sized {
	m.stats.Calls++
	m.nextXID++
	xid := m.nextXID
	msg := netsim.Message{
		Payload: nfsrpc.Call{XID: xid, Proc: proc, Args: args},
		Size:    nfsrpc.CallSize(args),
	}
	pc := &pendingCall{done: sim.NewEvent(m.k), msg: msg}
	m.pending[xid] = pc

	jitter := time.Duration(0)
	maxJitter := m.cfg.MarshalJitter +
		time.Duration(m.cpu.Background())*m.cfg.PreemptJitter
	if maxJitter > 0 {
		jitter = time.Duration(m.k.Rand().Int63n(int64(maxJitter)))
	}
	if m.cfg.UseTCP {
		// The connection send-lock (FreeBSD's nfs_sndlock) serializes
		// marshal+send: requests reach the stream in the order the lock
		// is granted (FIFO), so a TCP mount barely reorders.
		m.sndlock.Acquire(p)
		m.cpu.Use(p, m.cfg.SocketCPU+m.cfg.MarshalCPU+jitter+
			time.Duration(segsFor(msg.Size))*m.cfg.PerSegCPU)
		m.conn.Send(msg)
		m.sndlock.Release()
	} else {
		// UDP: a short serialized step (request dequeue + socket
		// bookkeeping) staggers concurrent senders, then the marshals
		// race on the shared CPU. A burst of read-aheads handed to
		// several nfsiods can therefore swap order when one marshal
		// runs long — the paper's reordering mechanism.
		m.sndlock.Acquire(p)
		m.cpu.Use(p, m.cfg.SocketCPU)
		m.sndlock.Release()
		m.cpu.Use(p, m.cfg.MarshalCPU+jitter)
		m.udp.SendTo(m.server, msg)
		m.scheduleRetrans(xid, m.cfg.RetransTimeout)
	}
	pc.done.Wait(p)
	return pc.res
}

// scheduleRetrans re-sends a still-pending UDP call after the timeout,
// with exponential backoff.
func (m *Mount) scheduleRetrans(xid uint32, timeout time.Duration) {
	m.k.Schedule(timeout, func() {
		pc, ok := m.pending[xid]
		if !ok {
			return
		}
		pc.retries++
		m.stats.Retrans++
		m.udp.SendTo(m.server, pc.msg)
		m.scheduleRetrans(xid, 2*timeout)
	})
}

// nfsiod services asynchronous read-ahead jobs.
func (m *Mount) nfsiod(p *sim.Proc) {
	for {
		job := m.iodq.Recv(p)
		res := m.call(p, nfsproto.ProcRead, &nfsproto.ReadArgs{
			FH: job.fh, Offset: uint64(job.block) * BlockSize, Count: job.count,
		})
		m.finishFetch(blockKey{job.fh, job.block}, res)
	}
}

// finishFetch installs a fetched block and wakes demand readers.
func (m *Mount) finishFetch(key blockKey, res nfsrpc.Sized) {
	if ev, ok := m.inflight[key]; ok {
		delete(m.inflight, key)
		ev.Fire()
	}
	if _, ok := res.(*nfsproto.ReadRes); ok {
		m.insert(key)
	}
}

// insert adds a block to the client cache with LRU eviction.
func (m *Mount) insert(key blockKey) {
	if el, ok := m.resident[key]; ok {
		m.lru.MoveToFront(el)
		return
	}
	m.resident[key] = m.lru.PushFront(key)
	for m.lru.Len() > m.cfg.CacheBlocks {
		tail := m.lru.Back()
		m.lru.Remove(tail)
		delete(m.resident, tail.Value.(blockKey))
	}
}

// RemoteFile is an open file on the mount, carrying the client-side
// sequentiality state that drives client read-ahead.
type RemoteFile struct {
	m     *Mount
	fh    nfsproto.FH
	size  int64
	state readahead.State
	h     readahead.Heuristic
}

// Open looks up name under the export root and returns a descriptor.
func (m *Mount) Open(p *sim.Proc, root nfsproto.FH, name string) (*RemoteFile, error) {
	res := m.call(p, nfsproto.ProcLookup, &nfsproto.LookupArgs{Dir: root, Name: name})
	lr, ok := res.(*nfsproto.LookupRes)
	if !ok || lr.Status != nfsproto.OK {
		return nil, fmt.Errorf("nfsclient: lookup %q failed", name)
	}
	rf := &RemoteFile{m: m, fh: lr.FH, h: readahead.Default{}}
	if lr.Attrs != nil {
		rf.size = int64(lr.Attrs.Size)
	}
	rf.state.Reset()
	return rf, nil
}

// FH returns the file's handle.
func (rf *RemoteFile) FH() nfsproto.FH { return rf.fh }

// Size returns the file size learned at open time.
func (rf *RemoteFile) Size() int64 { return rf.size }

// Read reads length bytes at off through the client cache, blocking p
// as needed, and schedules client read-ahead via the nfsiods. It
// returns the byte count (short at EOF).
func (rf *RemoteFile) Read(p *sim.Proc, off, length int64) int64 {
	if off >= rf.size {
		return 0
	}
	if off+length > rf.size {
		length = rf.size - off
	}
	m := rf.m
	seq := rf.h.Update(&rf.state, uint64(off), uint64(length))

	first := off / BlockSize
	last := (off + length - 1) / BlockSize
	m.cpu.Use(p, time.Duration(last-first+1)*m.cfg.PerBlockCPU)
	for b := first; b <= last; b++ {
		key := blockKey{rf.fh, b}
		if el, ok := m.resident[key]; ok {
			m.lru.MoveToFront(el)
			m.stats.CacheHits++
			continue
		}
		if ev, ok := m.inflight[key]; ok {
			m.stats.CacheWaits++
			ev.Wait(p)
			continue
		}
		// Demand fetch by the reading process itself.
		m.stats.DemandRPCs++
		m.inflight[key] = sim.NewEvent(m.k)
		res := m.call(p, nfsproto.ProcRead, &nfsproto.ReadArgs{
			FH: rf.fh, Offset: uint64(b) * BlockSize, Count: rf.countFor(b),
		})
		m.finishFetch(key, res)
	}

	// Client read-ahead: when the demand read approaches the prefetch
	// frontier, hand a whole window of fetches to the nfsiods at once.
	// The burst makes several nfsiods marshal concurrently, which is
	// exactly how requests come to be reordered on a UDP mount.
	window := int64(readahead.Window(seq, m.cfg.ReadAhead))
	if window > 0 {
		frontier := rf.h.Frontier(&rf.state)
		demandEnd := last + 1
		front := int64(*frontier)
		if front < demandEnd {
			front = demandEnd
		}
		if demandEnd+window/2 >= front {
			newFront := demandEnd + window
			if lastBlock := (rf.size-1)/BlockSize + 1; newFront > lastBlock {
				newFront = lastBlock
			}
			for b := front; b < newFront; b++ {
				key := blockKey{rf.fh, b}
				if _, ok := m.resident[key]; ok {
					continue
				}
				if _, ok := m.inflight[key]; ok {
					continue
				}
				m.inflight[key] = sim.NewEvent(m.k)
				m.stats.ReadAheads++
				m.iodq.Send(iodJob{fh: rf.fh, block: b, count: rf.countFor(b)})
			}
			if newFront > front {
				*frontier = uint64(newFront)
			}
		}
	}
	return length
}

// countFor returns the request size for block b (short at EOF).
func (rf *RemoteFile) countFor(b int64) uint32 {
	n := rf.size - b*BlockSize
	if n >= BlockSize {
		return BlockSize
	}
	return uint32(n)
}

// Write issues a WRITE for length bytes at off (FILE_SYNC) and reports
// success.
func (rf *RemoteFile) Write(p *sim.Proc, off, length int64) bool {
	res := rf.m.call(p, nfsproto.ProcWrite, &nfsproto.WriteArgs{
		FH: rf.fh, Offset: uint64(off), Count: uint32(length),
		Stable: nfsproto.WriteFileSync, DataLen: uint32(length),
	})
	wr, ok := res.(*nfsproto.WriteRes)
	if ok && wr.Status == nfsproto.OK && int64(wr.Count) >= length {
		if off+length > rf.size {
			rf.size = off + length
		}
		return true
	}
	return false
}

// GetAttr fetches attributes for fh.
func (m *Mount) GetAttr(p *sim.Proc, fh nfsproto.FH) (*nfsproto.Fattr, error) {
	res := m.call(p, nfsproto.ProcGetattr, &nfsproto.GetattrArgs{FH: fh})
	gr, ok := res.(*nfsproto.GetattrRes)
	if !ok || gr.Status != nfsproto.OK {
		return nil, fmt.Errorf("nfsclient: getattr failed")
	}
	return &gr.Attrs, nil
}

// Create makes a file of the given size under root.
func (m *Mount) Create(p *sim.Proc, root nfsproto.FH, name string, size int64) (*RemoteFile, error) {
	res := m.call(p, nfsproto.ProcCreate, &nfsproto.CreateArgs{Dir: root, Name: name, Size: uint64(size)})
	cr, ok := res.(*nfsproto.CreateRes)
	if !ok || cr.Status != nfsproto.OK {
		return nil, fmt.Errorf("nfsclient: create %q failed", name)
	}
	rf := &RemoteFile{m: m, fh: cr.FH, size: size, h: readahead.Default{}}
	rf.state.Reset()
	return rf, nil
}
