package nfsheur

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

// seedTable is a verbatim reimplementation of the pre-sharding table
// algorithm (single slot array, single probe loop), kept as the oracle
// for the Shards: 1 equivalence tests below.
type seedTable struct {
	params Params
	slots  []Entry
	stats  Stats
}

func newSeedTable(p Params) *seedTable {
	if p.Slots < 1 {
		p.Slots = 1
	}
	if p.Probes < 1 {
		p.Probes = 1
	}
	if p.Probes > p.Slots {
		p.Probes = p.Slots
	}
	return &seedTable{params: p, slots: make([]Entry, p.Slots)}
}

func (t *seedTable) lookup(fh uint64) (e *Entry, found bool) {
	h := int(hash(fh) % uint64(t.params.Slots))
	victim := -1
	for i := 0; i < t.params.Probes; i++ {
		idx := (h + i) % t.params.Slots
		s := &t.slots[idx]
		if s.FH == fh {
			t.stats.Hits++
			s.Use += t.params.UseInc
			if s.Use > t.params.UseMax {
				s.Use = t.params.UseMax
			}
			return s, true
		}
		if victim == -1 || t.slots[idx].Use < t.slots[victim].Use {
			victim = idx
		}
		if s.FH != 0 {
			s.Use--
			if s.Use < 0 {
				s.Use = 0
			}
		}
	}
	t.stats.Misses++
	v := &t.slots[victim]
	if v.FH != 0 {
		t.stats.Ejections++
	}
	v.FH = fh
	v.Use = t.params.UseInit
	v.State.Reset()
	return v, false
}

// TestShards1MatchesSeedEvictionOrder replays long pseudorandom handle
// sequences against a Shards: 1 table and the seed oracle and demands
// identical found flags, identical per-slot contents after every step,
// and identical counters — i.e. the exact eviction order the paper
// reproductions were calibrated against.
func TestShards1MatchesSeedEvictionOrder(t *testing.T) {
	for _, p := range []Params{
		DefaultParams(),
		ImprovedParams(),
		{Slots: 7, Probes: 3, UseInit: 64, UseInc: 16, UseMax: 2048, Shards: 1},
	} {
		rng := rand.New(rand.NewSource(42))
		tbl := New(p)
		oracle := newSeedTable(p)
		if len(tbl.shards) != 1 {
			t.Fatalf("%+v: expected 1 shard, got %d", p, len(tbl.shards))
		}
		for step := 0; step < 5000; step++ {
			fh := uint64(rng.Intn(4*p.Slots)) + 1
			e, found := tbl.Lookup(fh)
			oe, ofound := oracle.lookup(fh)
			if found != ofound {
				t.Fatalf("%+v step %d fh %d: found=%v oracle=%v", p, step, fh, found, ofound)
			}
			if e.FH != oe.FH || e.Use != oe.Use {
				t.Fatalf("%+v step %d fh %d: entry {%d %d} oracle {%d %d}",
					p, step, fh, e.FH, e.Use, oe.FH, oe.Use)
			}
			for i := range oracle.slots {
				if tbl.shards[0].slots[i].FH != oracle.slots[i].FH {
					t.Fatalf("%+v step %d: slot %d diverged: %d vs %d",
						p, step, i, tbl.shards[0].slots[i].FH, oracle.slots[i].FH)
				}
			}
		}
		if got, want := tbl.Stats(), oracle.stats; got != want {
			t.Fatalf("%+v: stats %+v, oracle %+v", p, got, want)
		}
	}
}

// TestShardedCountersSum drives a multi-shard table and checks that the
// per-shard atomic counters sum to exactly the operation totals: every
// lookup is a hit or a miss, and ejections never exceed misses.
func TestShardedCountersSum(t *testing.T) {
	p := Params{Slots: 64, Probes: 4, UseInit: 64, UseInc: 16, UseMax: 2048, Shards: 4}
	tbl := New(p)
	if tbl.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", tbl.ShardCount())
	}
	const handles, rounds = 48, 50
	var lookups int64
	for r := 0; r < rounds; r++ {
		for fh := uint64(1); fh <= handles; fh++ {
			tbl.Lookup(fh)
			lookups++
		}
	}
	st := tbl.Stats()
	if st.Hits+st.Misses != lookups {
		t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, lookups)
	}
	if st.Ejections > st.Misses {
		t.Fatalf("ejections %d > misses %d", st.Ejections, st.Misses)
	}
	// Cross-check against summing each shard by hand.
	var byHand Stats
	for _, sh := range tbl.shards {
		byHand.Hits += sh.hits.Load()
		byHand.Misses += sh.misses.Load()
		byHand.Ejections += sh.ejections.Load()
	}
	if byHand != st {
		t.Fatalf("Stats() %+v != per-shard sum %+v", st, byHand)
	}
}

// TestShardsClampedToSlots: a table can't have more stripes than slots,
// the zero value is deterministic (1 shard, the seed semantics), and
// ScaledParams opts into GOMAXPROCS striping explicitly.
func TestShardsClampedToSlots(t *testing.T) {
	tbl := New(Params{Slots: 3, Probes: 1, Shards: 16})
	if tbl.ShardCount() != 3 {
		t.Fatalf("ShardCount = %d, want 3", tbl.ShardCount())
	}
	total := 0
	for _, sh := range tbl.shards {
		total += len(sh.slots)
	}
	if total != 3 {
		t.Fatalf("total slots = %d, want 3", total)
	}
	tbl = New(Params{Slots: 1024, Probes: 4})
	if tbl.ShardCount() != 1 {
		t.Fatalf("zero-value ShardCount = %d, want 1 (host-independent)", tbl.ShardCount())
	}
	if got, want := New(ScaledParams()).ShardCount(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("ScaledParams ShardCount = %d, want GOMAXPROCS %d", got, want)
	}
	if tbl.Params().Shards != tbl.ShardCount() {
		t.Fatal("Params().Shards not resolved")
	}
}

// TestConcurrentUpdate hammers one table from many goroutines (run
// under -race). Each goroutine counts its own lookups; the table's
// counters must account for every single one.
func TestConcurrentUpdate(t *testing.T) {
	tbl := New(ScaledParams())
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				fh := uint64(g*64+i%64) + 1
				tbl.Update(fh, func(shard int, e *Entry, found bool) {
					if e.FH != fh {
						panic("entry for wrong handle")
					}
					if shard < 0 || shard >= tbl.ShardCount() {
						panic("shard index out of range")
					}
					e.State.SeqCount++
				})
			}
		}(g)
	}
	wg.Wait()
	st := tbl.Stats()
	if st.Hits+st.Misses != goroutines*perG {
		t.Fatalf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, goroutines*perG)
	}
	if tbl.Active() > tbl.Params().Slots {
		t.Fatalf("Active %d > Slots %d", tbl.Active(), tbl.Params().Slots)
	}
}

// Property: sharded and single-shard tables agree that a just-looked-up
// handle is resident regardless of shard count.
func TestShardedResidencyProperty(t *testing.T) {
	f := func(fhs []uint64, shards uint8) bool {
		p := ImprovedParams()
		p.Shards = int(shards%8) + 1
		tbl := New(p)
		for _, fh := range fhs {
			if fh == 0 {
				continue
			}
			tbl.Lookup(fh)
			if !tbl.Contains(fh) {
				return false
			}
		}
		return tbl.Active() <= p.Slots
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkTableLookupParallel measures concurrent Update throughput at
// 1 shard (the seed's effective configuration: one global lock) vs the
// GOMAXPROCS-scaled default — the contention the live server used to
// serialize on.
func BenchmarkTableLookupParallel(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"shards=1", 1},
		{"shards=auto", 0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			p := ScaledParams()
			p.Shards = cfg.shards
			tbl := New(p)
			b.RunParallel(func(pb *testing.PB) {
				fh := uint64(rand.Int63n(1<<20) + 1)
				for pb.Next() {
					fh = fh%(1<<20) + 1
					tbl.Update(fh, func(int, *Entry, bool) {})
				}
			})
		})
	}
}
