package nfsheur

import (
	"testing"
	"testing/quick"

	"nfstricks/internal/readahead"
)

func TestLookupInstallsAndFinds(t *testing.T) {
	tbl := New(ImprovedParams())
	e, found := tbl.Lookup(42)
	if found {
		t.Fatal("fresh table claims handle resident")
	}
	if e.State.SeqCount != 1 {
		t.Fatalf("new entry seqcount = %d, want 1", e.State.SeqCount)
	}
	e.State.SeqCount = 99
	e2, found := tbl.Lookup(42)
	if !found {
		t.Fatal("installed handle not found")
	}
	if e2.State.SeqCount != 99 {
		t.Fatalf("state not preserved: %d", e2.State.SeqCount)
	}
}

func TestZeroHandlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero handle accepted")
		}
	}()
	New(DefaultParams()).Lookup(0)
}

func TestEjectionLosesState(t *testing.T) {
	// One-slot table: two handles must eject each other, and re-lookup
	// must observe reset state — the paper's "when a file is ejected
	// from the table, all of the information used to compute its
	// sequentiality metric is lost" (§6.3).
	tbl := New(Params{Slots: 1, Probes: 1, UseInit: 64, UseInc: 16, UseMax: 2048})
	e, _ := tbl.Lookup(1)
	e.State.SeqCount = 77
	tbl.Lookup(2)
	e, found := tbl.Lookup(1)
	if found {
		t.Fatal("handle survived ejection in a 1-slot table")
	}
	if e.State.SeqCount != 77 && e.State.SeqCount != 1 {
		t.Fatalf("unexpected seqcount %d", e.State.SeqCount)
	}
	if e.State.SeqCount != 1 {
		t.Fatalf("reinstalled entry kept stale seqcount %d", e.State.SeqCount)
	}
	if tbl.Stats().Ejections < 2 {
		t.Fatalf("ejections = %d, want >= 2", tbl.Stats().Ejections)
	}
}

func TestDefaultTableThrashesUnderPaperWorkload(t *testing.T) {
	// 32 concurrently active files against the FreeBSD 4.x table:
	// interleaved accesses must cause steady ejections (the Figure 7
	// failure mode).
	tbl := New(DefaultParams())
	for round := 0; round < 100; round++ {
		for fh := uint64(1); fh <= 32; fh++ {
			tbl.Lookup(fh)
		}
	}
	st := tbl.Stats()
	if st.Ejections == 0 {
		t.Fatal("default table never ejected with 32 active files")
	}
	// Well over half the lookups after warmup should miss.
	if st.Misses < st.Hits {
		t.Fatalf("default table unexpectedly healthy: hits=%d misses=%d", st.Hits, st.Misses)
	}
}

func TestImprovedTableHoldsPaperWorkload(t *testing.T) {
	// The improved table must keep 32 interleaved handles resident:
	// "with the new table implementation SlowDown matches the Always
	// Read-ahead heuristic" because nothing is ejected.
	tbl := New(ImprovedParams())
	for fh := uint64(1); fh <= 32; fh++ {
		tbl.Lookup(fh) // warm
	}
	st0 := tbl.Stats()
	for round := 0; round < 100; round++ {
		for fh := uint64(1); fh <= 32; fh++ {
			tbl.Lookup(fh)
		}
	}
	st := tbl.Stats()
	missRate := float64(st.Misses-st0.Misses) / float64(3200)
	if missRate > 0.05 {
		t.Fatalf("improved table miss rate %.2f%% with 32 active files", missRate*100)
	}
}

func TestImprovedBeatsDefaultAtEveryConcurrency(t *testing.T) {
	missRate := func(p Params, files int) float64 {
		tbl := New(p)
		for fh := uint64(1); fh <= uint64(files); fh++ {
			tbl.Lookup(fh)
		}
		before := tbl.Stats().Misses
		const rounds = 200
		for r := 0; r < rounds; r++ {
			for fh := uint64(1); fh <= uint64(files); fh++ {
				tbl.Lookup(fh)
			}
		}
		return float64(tbl.Stats().Misses-before) / float64(rounds*files)
	}
	for _, files := range []int{8, 16, 32} {
		def := missRate(DefaultParams(), files)
		imp := missRate(ImprovedParams(), files)
		if imp > def {
			t.Errorf("%d files: improved miss rate %.3f > default %.3f", files, imp, def)
		}
	}
	// And the default must degrade as concurrency rises.
	if missRate(DefaultParams(), 32) <= missRate(DefaultParams(), 4) {
		t.Error("default table does not degrade with concurrency")
	}
}

func TestContainsDoesNotDisturb(t *testing.T) {
	tbl := New(ImprovedParams())
	tbl.Lookup(7)
	h0 := tbl.Stats().Hits
	if !tbl.Contains(7) {
		t.Fatal("Contains(7) = false")
	}
	if tbl.Contains(8) {
		t.Fatal("Contains(8) = true")
	}
	if tbl.Stats().Hits != h0 {
		t.Fatal("Contains counted as a hit")
	}
}

func TestFlush(t *testing.T) {
	tbl := New(ImprovedParams())
	tbl.Lookup(1)
	tbl.Lookup(2)
	if tbl.Active() != 2 {
		t.Fatalf("Active = %d", tbl.Active())
	}
	tbl.Flush()
	if tbl.Active() != 0 {
		t.Fatalf("Active after flush = %d", tbl.Active())
	}
}

func TestParamsClamping(t *testing.T) {
	tbl := New(Params{Slots: 0, Probes: 0})
	if tbl.Params().Slots != 1 || tbl.Params().Probes != 1 {
		t.Fatalf("params not clamped: %+v", tbl.Params())
	}
	tbl = New(Params{Slots: 2, Probes: 10})
	if tbl.Params().Probes != 2 {
		t.Fatalf("probes not clamped to slots: %+v", tbl.Params())
	}
}

// Property: a handle just returned by Lookup is always resident, and a
// second Lookup returns the same state.
func TestLookupIdempotentProperty(t *testing.T) {
	f := func(fhs []uint64) bool {
		tbl := New(ImprovedParams())
		for _, fh := range fhs {
			if fh == 0 {
				continue
			}
			e, _ := tbl.Lookup(fh)
			e.State.SeqCount = int(fh % 100)
			e2, found := tbl.Lookup(fh)
			if !found || e2.State.SeqCount != int(fh%100) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Active never exceeds Slots and ejections only happen when a
// probe window is saturated.
func TestActiveBoundedProperty(t *testing.T) {
	f := func(fhs []uint64, slots, probes uint8) bool {
		p := Params{
			Slots:   int(slots%32) + 1,
			Probes:  int(probes%8) + 1,
			UseInit: 64, UseInc: 16, UseMax: 2048,
		}
		tbl := New(p)
		for _, fh := range fhs {
			if fh != 0 {
				tbl.Lookup(fh)
			}
		}
		return tbl.Active() <= tbl.Params().Slots
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The heuristics and the table compose: state survives via the table for
// resident handles.
func TestTableHeuristicIntegration(t *testing.T) {
	tbl := New(ImprovedParams())
	h := readahead.SlowDown{}
	var last int
	for i := 0; i < 20; i++ {
		e, _ := tbl.Lookup(99)
		last = h.Update(&e.State, uint64(i*8192), 8192)
	}
	if last < 20 {
		t.Fatalf("seqcount through table = %d, want >= 20", last)
	}
}
