// Package nfsheur implements the NFS server's per-file read-ahead state
// cache — FreeBSD's nfsheur table. NFS v2/v3 are stateless (no
// open/close), so the server keeps a small fixed table of recently
// active file handles and their sequentiality state; when an active
// handle is ejected, everything the heuristic learned about that file is
// lost (§6.3).
//
// Two parameter sets matter to the paper:
//
//   - Default: the FreeBSD 4.x table — tiny (15 slots) with a single
//     probe, so concurrently active files eject one another well before
//     the table is "full".
//   - Improved: the paper's fix — a larger table with a multi-slot probe
//     window and use-count-based victim selection, making ejections
//     unlikely until the table genuinely fills.
//
// The table is lock-striped: slots are partitioned into Params.Shards
// independent shards keyed by a hash of the file handle, each guarded by
// its own mutex, with counters kept as atomics. A Table is therefore
// safe for concurrent use by multiple goroutines via Update (and the
// read-only accessors); concurrent callers must not retain the *Entry
// returned by Lookup, which exists for single-goroutine callers such as
// the simulator. With Shards: 1 the probe sequence, victim selection and
// eviction order are exactly those of the original single-table
// implementation, which the paper reproductions rely on.
package nfsheur

import (
	"runtime"
	"sync"
	"sync/atomic"

	"nfstricks/internal/readahead"
)

// Params configures a table.
type Params struct {
	// Slots is the total table size across all shards.
	Slots int
	// Probes is the open-hashing window: a handle may live in any of
	// the Probes slots starting at its hash (within its shard).
	Probes int
	// UseInit/UseInc/UseMax drive victim selection, as in FreeBSD
	// (NHUSE_INIT/NHUSE_INC/NHUSE_MAX): entries gain use on hits and
	// the lowest-use entry in the probe window is ejected on a miss.
	UseInit, UseInc, UseMax int
	// Shards is the number of independent lock-striped partitions. Zero
	// (and 1) mean a single shard — the original table's exact
	// semantics, deterministic on every host; concurrent servers opt
	// into GOMAXPROCS-scaled striping via ScaledParams. Clamped to
	// Slots.
	Shards int
}

// DefaultParams mirrors the FreeBSD 4.x table the paper found "simply
// too small": 15 slots, one probe. Single-sharded (the zero default),
// so the paper's eviction behaviour is reproduced exactly.
func DefaultParams() Params {
	return Params{Slots: 15, Probes: 1, UseInit: 64, UseInc: 16, UseMax: 2048}
}

// ImprovedParams mirrors the paper's enlarged table with better hash
// parameters (ejections unlikely while not full). Single-sharded for
// the paper reproductions.
func ImprovedParams() Params {
	return Params{Slots: 64, Probes: 4, UseInit: 64, UseInc: 16, UseMax: 2048}
}

// LargeParams is a further-scaled table for ablations (modern servers
// with many concurrently active files).
func LargeParams() Params {
	return Params{Slots: 1024, Probes: 8, UseInit: 64, UseInc: 16, UseMax: 2048}
}

// ScaledParams is the live-server default: a GOMAXPROCS-scaled shard
// count so concurrent READs on distinct files proceed without lock
// contention, with enough slots per shard that a loaded server does not
// thrash (the paper's §6.3 failure mode).
func ScaledParams() Params {
	ns := defaultShards()
	return Params{Slots: 128 * ns, Probes: 4, UseInit: 64, UseInc: 16, UseMax: 2048, Shards: ns}
}

// defaultShards picks the shard count for Params.Shards == 0.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// Entry is one table slot: a file handle plus its heuristic state.
type Entry struct {
	FH    uint64 // 0 means empty
	Use   int
	State readahead.State
}

// Stats aggregates table counters.
type Stats struct {
	Hits      int64 // lookups that found the handle resident
	Misses    int64 // lookups that had to (re)install the handle
	Ejections int64 // installs that evicted another live handle
}

// shard is one lock-striped partition: a contiguous run of slots with
// its own mutex and counters.
type shard struct {
	mu    sync.Mutex
	slots []Entry

	hits, misses, ejections atomic.Int64
}

// Table is the nfsheur cache. Safe for concurrent use by multiple
// goroutines via Update and the accessor methods; see Lookup for the
// single-goroutine escape hatch.
type Table struct {
	params Params
	shards []*shard
}

// New returns an empty table with the given parameters.
func New(p Params) *Table {
	if p.Slots < 1 {
		p.Slots = 1
	}
	if p.Probes < 1 {
		p.Probes = 1
	}
	if p.Probes > p.Slots {
		p.Probes = p.Slots
	}
	if p.Shards <= 0 {
		p.Shards = 1
	}
	if p.Shards > p.Slots {
		p.Shards = p.Slots
	}
	t := &Table{params: p, shards: make([]*shard, p.Shards)}
	// Distribute slots across shards as evenly as possible; the first
	// Slots%Shards shards take one extra.
	base, extra := p.Slots/p.Shards, p.Slots%p.Shards
	for i := range t.shards {
		n := base
		if i < extra {
			n++
		}
		t.shards[i] = &shard{slots: make([]Entry, n)}
	}
	return t
}

// Params returns the table's configuration with defaults resolved.
func (t *Table) Params() Params { return t.params }

// ShardCount returns the number of lock stripes.
func (t *Table) ShardCount() int { return len(t.shards) }

// Stats returns a snapshot of the counters summed across shards.
func (t *Table) Stats() Stats {
	var st Stats
	for _, sh := range t.shards {
		st.Hits += sh.hits.Load()
		st.Misses += sh.misses.Load()
		st.Ejections += sh.ejections.Load()
	}
	return st
}

// hash mixes the file handle with FNV-1a.
func hash(fh uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (fh >> (8 * i)) & 0xff
		h *= prime64
	}
	return h
}

// locate maps a handle to its shard (index and pointer) and home slot
// within that shard. With one shard the slot index is hash % Slots —
// bit-for-bit the original implementation's placement.
func (t *Table) locate(fh uint64) (si int, sh *shard, home int) {
	h := hash(fh)
	si = int(h % uint64(len(t.shards)))
	sh = t.shards[si]
	return si, sh, int((h / uint64(len(t.shards))) % uint64(len(sh.slots)))
}

// probeSpan is the shard's effective probe window: Params.Probes capped
// at the shard's own slot count.
func (t *Table) probeSpan(sh *shard) int {
	probes := t.params.Probes
	if probes > len(sh.slots) {
		probes = len(sh.slots)
	}
	return probes
}

// lookupLocked runs the probe/install step on one shard. Caller holds
// sh.mu. The loop body is the original single-table algorithm, so one
// shard preserves the seed's probe order, use decay and victim choice.
func (t *Table) lookupLocked(sh *shard, home int, fh uint64) (e *Entry, found bool) {
	probes := t.probeSpan(sh)
	victim := -1
	for i := 0; i < probes; i++ {
		idx := (home + i) % len(sh.slots)
		s := &sh.slots[idx]
		if s.FH == fh {
			sh.hits.Add(1)
			s.Use += t.params.UseInc
			if s.Use > t.params.UseMax {
				s.Use = t.params.UseMax
			}
			return s, true
		}
		if victim == -1 || sh.slots[idx].Use < sh.slots[victim].Use {
			victim = idx
		}
		// Decay: probing past an entry costs it standing, so stale
		// entries age out (FreeBSD decays nh_use similarly).
		if s.FH != 0 {
			s.Use--
			if s.Use < 0 {
				s.Use = 0
			}
		}
	}
	sh.misses.Add(1)
	v := &sh.slots[victim]
	if v.FH != 0 {
		sh.ejections.Add(1)
	}
	v.FH = fh
	v.Use = t.params.UseInit
	v.State.Reset()
	return v, false
}

// Lookup returns the entry for fh, installing it if absent. found
// reports whether the handle was already resident; when false the
// returned entry has freshly Reset state (any prior sequentiality
// knowledge about this file is gone — the failure mode the paper
// diagnoses). The returned pointer is valid until the next Lookup.
//
// Lookup is for single-goroutine callers (the simulator, tests):
// the entry is returned after the shard lock is released, so concurrent
// callers must use Update instead.
func (t *Table) Lookup(fh uint64) (e *Entry, found bool) {
	if fh == 0 {
		panic("nfsheur: zero file handle")
	}
	_, sh, home := t.locate(fh)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return t.lookupLocked(sh, home, fh)
}

// Update looks up fh (installing it if absent, exactly as Lookup) and
// invokes fn with the handle's shard index and entry while the shard
// lock is held. This is the concurrent-server API: fn may freely mutate
// the entry's heuristic state, and calls for handles on different
// shards proceed in parallel. fn must not call back into the table.
func (t *Table) Update(fh uint64, fn func(shard int, e *Entry, found bool)) {
	if fh == 0 {
		panic("nfsheur: zero file handle")
	}
	si, sh, home := t.locate(fh)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, found := t.lookupLocked(sh, home, fh)
	fn(si, e, found)
}

// Contains reports whether fh is resident without disturbing the table.
func (t *Table) Contains(fh uint64) bool {
	_, sh, home := t.locate(fh)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	probes := t.probeSpan(sh)
	for i := 0; i < probes; i++ {
		if sh.slots[(home+i)%len(sh.slots)].FH == fh {
			return true
		}
	}
	return false
}

// Active counts non-empty slots.
func (t *Table) Active() int {
	n := 0
	for _, sh := range t.shards {
		sh.mu.Lock()
		for i := range sh.slots {
			if sh.slots[i].FH != 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Flush empties the table.
func (t *Table) Flush() {
	for _, sh := range t.shards {
		sh.mu.Lock()
		for i := range sh.slots {
			sh.slots[i] = Entry{}
		}
		sh.mu.Unlock()
	}
}
