// Package nfsheur implements the NFS server's per-file read-ahead state
// cache — FreeBSD's nfsheur table. NFS v2/v3 are stateless (no
// open/close), so the server keeps a small fixed table of recently
// active file handles and their sequentiality state; when an active
// handle is ejected, everything the heuristic learned about that file is
// lost (§6.3).
//
// Two parameter sets matter to the paper:
//
//   - Default: the FreeBSD 4.x table — tiny (15 slots) with a single
//     probe, so concurrently active files eject one another well before
//     the table is "full".
//   - Improved: the paper's fix — a larger table with a multi-slot probe
//     window and use-count-based victim selection, making ejections
//     unlikely until the table genuinely fills.
package nfsheur

import "nfstricks/internal/readahead"

// Params configures a table.
type Params struct {
	// Slots is the table size.
	Slots int
	// Probes is the open-hashing window: a handle may live in any of
	// the Probes slots starting at its hash.
	Probes int
	// UseInit/UseInc/UseMax drive victim selection, as in FreeBSD
	// (NHUSE_INIT/NHUSE_INC/NHUSE_MAX): entries gain use on hits and
	// the lowest-use entry in the probe window is ejected on a miss.
	UseInit, UseInc, UseMax int
}

// DefaultParams mirrors the FreeBSD 4.x table the paper found "simply
// too small": 15 slots, one probe.
func DefaultParams() Params {
	return Params{Slots: 15, Probes: 1, UseInit: 64, UseInc: 16, UseMax: 2048}
}

// ImprovedParams mirrors the paper's enlarged table with better hash
// parameters (ejections unlikely while not full).
func ImprovedParams() Params {
	return Params{Slots: 64, Probes: 4, UseInit: 64, UseInc: 16, UseMax: 2048}
}

// LargeParams is a further-scaled table for ablations (modern servers
// with many concurrently active files).
func LargeParams() Params {
	return Params{Slots: 1024, Probes: 8, UseInit: 64, UseInc: 16, UseMax: 2048}
}

// Entry is one table slot: a file handle plus its heuristic state.
type Entry struct {
	FH    uint64 // 0 means empty
	Use   int
	State readahead.State
}

// Stats aggregates table counters.
type Stats struct {
	Hits      int64 // lookups that found the handle resident
	Misses    int64 // lookups that had to (re)install the handle
	Ejections int64 // installs that evicted another live handle
}

// Table is the nfsheur cache.
type Table struct {
	params Params
	slots  []Entry
	stats  Stats
}

// New returns an empty table with the given parameters.
func New(p Params) *Table {
	if p.Slots < 1 {
		p.Slots = 1
	}
	if p.Probes < 1 {
		p.Probes = 1
	}
	if p.Probes > p.Slots {
		p.Probes = p.Slots
	}
	return &Table{params: p, slots: make([]Entry, p.Slots)}
}

// Params returns the table's configuration.
func (t *Table) Params() Params { return t.params }

// Stats returns a copy of the counters.
func (t *Table) Stats() Stats { return t.stats }

// hash mixes the file handle with FNV-1a and reduces it to a slot.
func (t *Table) hash(fh uint64) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (fh >> (8 * i)) & 0xff
		h *= prime64
	}
	return int(h % uint64(t.params.Slots))
}

// Lookup returns the entry for fh, installing it if absent. found
// reports whether the handle was already resident; when false the
// returned entry has freshly Reset state (any prior sequentiality
// knowledge about this file is gone — the failure mode the paper
// diagnoses). The returned pointer is valid until the next Lookup.
func (t *Table) Lookup(fh uint64) (e *Entry, found bool) {
	if fh == 0 {
		panic("nfsheur: zero file handle")
	}
	h := t.hash(fh)
	victim := -1
	for i := 0; i < t.params.Probes; i++ {
		idx := (h + i) % t.params.Slots
		s := &t.slots[idx]
		if s.FH == fh {
			t.stats.Hits++
			s.Use += t.params.UseInc
			if s.Use > t.params.UseMax {
				s.Use = t.params.UseMax
			}
			return s, true
		}
		if victim == -1 || t.slots[idx].Use < t.slots[victim].Use {
			victim = idx
		}
		// Decay: probing past an entry costs it standing, so stale
		// entries age out (FreeBSD decays nh_use similarly).
		if s.FH != 0 {
			s.Use--
			if s.Use < 0 {
				s.Use = 0
			}
		}
	}
	t.stats.Misses++
	v := &t.slots[victim]
	if v.FH != 0 {
		t.stats.Ejections++
	}
	v.FH = fh
	v.Use = t.params.UseInit
	v.State.Reset()
	return v, false
}

// Contains reports whether fh is resident without disturbing the table.
func (t *Table) Contains(fh uint64) bool {
	h := t.hash(fh)
	for i := 0; i < t.params.Probes; i++ {
		if t.slots[(h+i)%t.params.Slots].FH == fh {
			return true
		}
	}
	return false
}

// Active counts non-empty slots.
func (t *Table) Active() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].FH != 0 {
			n++
		}
	}
	return n
}

// Flush empties the table.
func (t *Table) Flush() {
	for i := range t.slots {
		t.slots[i] = Entry{}
	}
}
