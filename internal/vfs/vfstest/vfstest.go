// Package vfstest is the shared conformance suite for vfs.Backend
// implementations. Every backend mounted behind the live dispatch
// layer must pass it: the data-plane contracts (copy-on-write read
// views, extend-with-zero-fill writes, access grants, space
// accounting, commit semantics) are exercised directly against the
// backend, and the control-plane contracts (stability routing through
// the write-gathering engine, write-verifier semantics, file-handle
// stability across a simulated reboot) are exercised through an
// nfsd.Service wrapped around it — the exact stack a live client
// talks to.
package vfstest

import (
	"bytes"
	"testing"
	"time"

	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/sunrpc"
	"nfstricks/internal/vfs"
	"nfstricks/internal/wgather"
)

// Factory builds a fresh, empty backend for one subtest.
type Factory func(t *testing.T) vfs.Backend

// Run drives the whole conformance suite against backends built by
// mk.
func Run(t *testing.T, mk Factory) {
	t.Run("CreateLookupGetattr", func(t *testing.T) { testCreateLookupGetattr(t, mk(t)) })
	t.Run("ReadViewCOW", func(t *testing.T) { testReadViewCOW(t, mk(t)) })
	t.Run("WriteExtendZeroFill", func(t *testing.T) { testWriteExtendZeroFill(t, mk(t)) })
	t.Run("Access", func(t *testing.T) { testAccess(t, mk(t)) })
	t.Run("Fsstat", func(t *testing.T) { testFsstat(t, mk(t)) })
	t.Run("Commit", func(t *testing.T) { testCommit(t, mk(t)) })
	t.Run("StabilityRouting", func(t *testing.T) { testStabilityRouting(t, mk(t)) })
	t.Run("VerifierAndRebootFHStability", func(t *testing.T) { testVerifierReboot(t, mk(t)) })
}

func testCreateLookupGetattr(t *testing.T, b vfs.Backend) {
	data := []byte("the quick brown fox")
	fh := b.Create("f", data)
	if fh == 0 {
		t.Fatal("Create returned 0 on an empty backend")
	}
	if fh == vfs.RootFH {
		t.Fatalf("Create returned the root handle %d", fh)
	}
	got, size, ok := b.Lookup("f")
	if !ok || got != fh || size != int64(len(data)) {
		t.Fatalf("Lookup = (%d, %d, %v), want (%d, %d, true)", got, size, ok, fh, len(data))
	}
	if _, _, ok := b.Lookup("missing"); ok {
		t.Fatal("Lookup of a missing name succeeded")
	}
	if size, ok := b.Getattr(fh); !ok || size != int64(len(data)) {
		t.Fatalf("Getattr = (%d, %v)", size, ok)
	}
	if _, ok := b.Getattr(fh + 999); ok {
		t.Fatal("Getattr of a stale handle succeeded")
	}

	view, rsize, eof, err := b.ReadAt(fh, 4, 5, 0)
	if err != nil || string(view) != "quick" || eof || rsize != uint64(len(data)) {
		t.Fatalf("ReadAt = (%q, %d, %v, %v)", view, rsize, eof, err)
	}
	if _, _, eof, err := b.ReadAt(fh, uint64(len(data))+10, 8, 0); err != nil || !eof {
		t.Fatalf("read past EOF: eof=%v err=%v", eof, err)
	}
	if _, _, _, err := b.ReadAt(fh+999, 0, 1, 0); err == nil {
		t.Fatal("ReadAt of a stale handle succeeded")
	}
}

// testReadViewCOW pins the copy-on-write contract the zero-copy reply
// pipeline depends on: a view returned by ReadAt must never observe a
// later WriteAt.
func testReadViewCOW(t *testing.T, b vfs.Backend) {
	const size = 4 * 8192
	fh := b.Create("f", bytes.Repeat([]byte{0xAA}, size))
	view, _, _, err := b.ReadAt(fh, 0, size, 0)
	if err != nil || len(view) != size {
		t.Fatalf("ReadAt: len=%d err=%v", len(view), err)
	}
	// Overwrite inside the view, straddle its end, and append past it.
	for _, off := range []uint64{0, size - 512, size + 8192} {
		if err := b.WriteAt(fh, off, bytes.Repeat([]byte{0xBB}, 1024)); err != nil {
			t.Fatalf("WriteAt(%d): %v", off, err)
		}
	}
	for i, c := range view {
		if c != 0xAA {
			t.Fatalf("view[%d] = %#x after overlapping writes, want 0xAA", i, c)
		}
	}
	// A fresh read must see the new bytes.
	got, _, _, err := b.ReadAt(fh, 0, 8, 0)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xBB}, 8)) {
		t.Fatalf("re-read = %x err=%v, want BB..", got, err)
	}
}

func testWriteExtendZeroFill(t *testing.T, b vfs.Backend) {
	fh := b.Create("f", []byte("abc"))
	if err := b.WriteAt(fh, 5, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	got, size, eof, err := b.ReadAt(fh, 0, 64, 0)
	want := []byte{'a', 'b', 'c', 0, 0, 'x', 'y', 'z'}
	if err != nil || !bytes.Equal(got, want) || !eof || size != 8 {
		t.Fatalf("after gap write: %v size=%d eof=%v err=%v", got, size, eof, err)
	}
	if err := b.WriteAt(fh+999, 0, []byte("x")); err == nil {
		t.Fatal("WriteAt on a stale handle succeeded")
	}
}

func testAccess(t *testing.T, b vfs.Backend) {
	fh := b.Create("f", []byte("data"))
	mask := uint32(nfsproto.AccessRead | nfsproto.AccessModify |
		nfsproto.AccessExtend | nfsproto.AccessDelete | nfsproto.AccessExecute)
	granted, ok := b.Access(fh, mask)
	if !ok {
		t.Fatal("Access on a live handle not ok")
	}
	if granted&nfsproto.AccessRead == 0 || granted&nfsproto.AccessModify == 0 {
		t.Fatalf("granted = %#x, want at least read|modify", granted)
	}
	if granted&^mask != 0 {
		t.Fatalf("granted %#x outside the requested mask %#x", granted, mask)
	}
	if _, ok := b.Access(fh+999, mask); ok {
		t.Fatal("Access on a stale handle ok")
	}
}

func testFsstat(t *testing.T, b vfs.Backend) {
	total0, free0 := b.Fsstat()
	if total0 == 0 || free0 > total0 {
		t.Fatalf("empty Fsstat = (%d, %d)", total0, free0)
	}
	b.Create("f", make([]byte, 64*1024))
	total1, free1 := b.Fsstat()
	if total1 != total0 {
		t.Fatalf("total changed across Create: %d -> %d", total0, total1)
	}
	if free1 >= free0 {
		t.Fatalf("free did not shrink across a 64 KB create: %d -> %d", free0, free1)
	}
}

func testCommit(t *testing.T, b vfs.Backend) {
	fh := b.Create("f", make([]byte, 3*8192))
	if err := b.WriteAt(fh, 100, []byte("durable?")); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(fh, 0, 0); err != nil {
		t.Fatalf("whole-file Commit: %v", err)
	}
	if err := b.Commit(fh, 8192, 8192); err != nil {
		t.Fatalf("range Commit: %v", err)
	}
	if err := b.Commit(fh+999, 0, 0); err == nil {
		t.Fatal("Commit on a stale handle succeeded")
	}
	// Committed data must still read back.
	got, _, _, err := b.ReadAt(fh, 100, 8, 0)
	if err != nil || string(got) != "durable?" {
		t.Fatalf("read after commit = %q err=%v", got, err)
	}
}

// call drives one RPC through a service handler without sockets.
func call(t *testing.T, svc *nfsd.Service, proc uint32, args []byte) []byte {
	t.Helper()
	h := svc.Handler()
	out, stat := h(proc, args, nil)
	if stat != sunrpc.AcceptSuccess {
		t.Fatalf("proc %s: accept stat %d", nfsproto.ProcName(proc), stat)
	}
	return out
}

func writeVia(t *testing.T, svc *nfsd.Service, fh nfsproto.FH, off uint64, data []byte, stable uint32) *nfsproto.WriteRes {
	t.Helper()
	out := call(t, svc, nfsproto.ProcWrite, (&nfsproto.WriteArgs{
		FH: fh, Offset: off, Count: uint32(len(data)), Stable: stable, Data: data,
	}).Marshal())
	res, err := nfsproto.UnmarshalWriteRes(out)
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("WRITE: status=%d err=%v", res.Status, err)
	}
	return res
}

// testStabilityRouting checks the stability contract through the full
// dispatch stack: with a gather window open, UNSTABLE writes are
// acknowledged UNSTABLE (deferred), synchronous stabilities come back
// FILE_SYNC, and with no window everything is write-through.
func testStabilityRouting(t *testing.T, b vfs.Backend) {
	fh := b.Create("f", make([]byte, 64*1024))

	gathered := nfsd.New(b, nfsd.Config{Gather: wgather.Config{Window: time.Minute}})
	defer gathered.Close()
	if res := writeVia(t, gathered, fh, 0, []byte("unstable"), nfsproto.WriteUnstable); res.Committed != nfsproto.WriteUnstable {
		t.Fatalf("gathered UNSTABLE write acked %s", nfsproto.StableName(res.Committed))
	}
	if res := writeVia(t, gathered, fh, 8192, []byte("datasync"), nfsproto.WriteDataSync); res.Committed != nfsproto.WriteFileSync {
		t.Fatalf("DATA_SYNC write acked %s, want FILE_SYNC", nfsproto.StableName(res.Committed))
	}
	if res := writeVia(t, gathered, fh, 16384, []byte("filesync"), nfsproto.WriteFileSync); res.Committed != nfsproto.WriteFileSync {
		t.Fatalf("FILE_SYNC write acked %s", nfsproto.StableName(res.Committed))
	}

	through := nfsd.New(b, nfsd.Config{})
	defer through.Close()
	if res := writeVia(t, through, fh, 0, []byte("unstable"), nfsproto.WriteUnstable); res.Committed != nfsproto.WriteFileSync {
		t.Fatalf("write-through UNSTABLE write acked %s, want FILE_SYNC", nfsproto.StableName(res.Committed))
	}
}

// testVerifierReboot checks verifier semantics and FH stability: the
// verifier is constant across writes and COMMIT, changes exactly on
// Reboot, and handles issued before the reboot still name the same
// file afterwards.
func testVerifierReboot(t *testing.T, b vfs.Backend) {
	payload := []byte("survives reboots")
	fh := b.Create("f", payload)
	svc := nfsd.New(b, nfsd.Config{Gather: wgather.Config{Window: time.Minute}})
	defer svc.Close()

	v0 := svc.WriteVerifier()
	res := writeVia(t, svc, fh, 0, []byte("S"), nfsproto.WriteUnstable)
	if res.Verf != v0 {
		t.Fatalf("write verifier %x, service verifier %x", res.Verf, v0)
	}
	out := call(t, svc, nfsproto.ProcCommit, (&nfsproto.CommitArgs{FH: fh}).Marshal())
	cres, err := nfsproto.UnmarshalCommitRes(out)
	if err != nil || cres.Status != nfsproto.OK || cres.Verf != v0 {
		t.Fatalf("COMMIT: status=%d verf=%x err=%v, want verf %x", cres.Status, cres.Verf, err, v0)
	}

	svc.Reboot()
	if svc.WriteVerifier() == v0 {
		t.Fatal("verifier unchanged across Reboot")
	}
	// FH stability: the pre-reboot handle still reads the same file.
	rout := call(t, svc, nfsproto.ProcRead, (&nfsproto.ReadArgs{FH: fh, Offset: 0, Count: 64}).Marshal())
	rres, err := nfsproto.UnmarshalReadRes(rout)
	if err != nil || rres.Status != nfsproto.OK {
		t.Fatalf("READ after reboot: status=%d err=%v", rres.Status, err)
	}
	want := append([]byte("S"), payload[1:]...)
	if !bytes.Equal(rres.Data, want) {
		t.Fatalf("READ after reboot = %q, want %q", rres.Data, want)
	}
}
