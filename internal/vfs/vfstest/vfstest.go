// Package vfstest is the shared conformance suite for vfs.Backend
// implementations. Every backend mounted behind the live dispatch
// layer must pass it: the data-plane contracts (copy-on-write read
// views, extend-with-zero-fill writes, access grants, space
// accounting, commit semantics), the namespace contracts (hierarchy,
// readdir cookie/cookieverf paging under concurrent mutation, rename
// and remove semantics, setattr), and the control-plane contracts
// (stability routing through the write-gathering engine,
// write-verifier semantics, file- and directory-handle stability
// across a simulated reboot) — the last group exercised through an
// nfsd.Service wrapped around the backend, the exact stack a live
// client talks to.
package vfstest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"nfstricks/internal/nfsd"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/sunrpc"
	"nfstricks/internal/vfs"
	"nfstricks/internal/wgather"
)

// Factory builds a fresh, empty backend for one subtest.
type Factory func(t *testing.T) vfs.Backend

// Run drives the whole conformance suite against backends built by
// mk.
func Run(t *testing.T, mk Factory) {
	t.Run("CreateLookupGetattr", func(t *testing.T) { testCreateLookupGetattr(t, mk(t)) })
	t.Run("ReadViewCOW", func(t *testing.T) { testReadViewCOW(t, mk(t)) })
	t.Run("WriteExtendZeroFill", func(t *testing.T) { testWriteExtendZeroFill(t, mk(t)) })
	t.Run("Access", func(t *testing.T) { testAccess(t, mk(t)) })
	t.Run("Fsstat", func(t *testing.T) { testFsstat(t, mk(t)) })
	t.Run("Commit", func(t *testing.T) { testCommit(t, mk(t)) })
	t.Run("Hierarchy", func(t *testing.T) { testHierarchy(t, mk(t)) })
	t.Run("ReaddirPaging", func(t *testing.T) { testReaddirPaging(t, mk(t)) })
	t.Run("ReaddirCookieStability", func(t *testing.T) { testReaddirCookieStability(t, mk(t)) })
	t.Run("ReaddirBadCookie", func(t *testing.T) { testReaddirBadCookie(t, mk(t)) })
	t.Run("RemoveSemantics", func(t *testing.T) { testRemoveSemantics(t, mk(t)) })
	t.Run("RenameSemantics", func(t *testing.T) { testRenameSemantics(t, mk(t)) })
	t.Run("Setattr", func(t *testing.T) { testSetattr(t, mk(t)) })
	t.Run("StabilityRouting", func(t *testing.T) { testStabilityRouting(t, mk(t)) })
	t.Run("VerifierAndRebootFHStability", func(t *testing.T) { testVerifierReboot(t, mk(t)) })
	t.Run("DirFHStabilityAcrossReboot", func(t *testing.T) { testDirReboot(t, mk(t)) })
}

// create is Create under the root with a fatal on error.
func create(t *testing.T, b vfs.Backend, dir nfsproto.FH, name string, data []byte) nfsproto.FH {
	t.Helper()
	fh, err := b.Create(dir, name, data)
	if err != nil {
		t.Fatalf("Create %q: %v", name, err)
	}
	return fh
}

func mkdir(t *testing.T, b vfs.Backend, dir nfsproto.FH, name string) nfsproto.FH {
	t.Helper()
	fh, err := b.Mkdir(dir, name)
	if err != nil {
		t.Fatalf("Mkdir %q: %v", name, err)
	}
	return fh
}

func testCreateLookupGetattr(t *testing.T, b vfs.Backend) {
	data := []byte("the quick brown fox")
	fh := create(t, b, vfs.RootFH, "f", data)
	if fh == 0 {
		t.Fatal("Create returned 0 on an empty backend")
	}
	if fh == vfs.RootFH {
		t.Fatalf("Create returned the root handle %d", fh)
	}
	got, attr, err := b.Lookup(vfs.RootFH, "f")
	if err != nil || got != fh || attr.Size != int64(len(data)) || attr.Dir {
		t.Fatalf("Lookup = (%d, %+v, %v), want (%d, size %d, nil)", got, attr, err, fh, len(data))
	}
	if _, _, err := b.Lookup(vfs.RootFH, "missing"); !errors.Is(err, vfs.ErrNoEnt) {
		t.Fatalf("Lookup of a missing name: %v, want ErrNoEnt", err)
	}
	if _, _, err := b.Lookup(fh, "x"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("Lookup under a file handle: %v, want ErrNotDir", err)
	}
	if a, ok := b.Getattr(fh); !ok || a.Size != int64(len(data)) || a.Dir {
		t.Fatalf("Getattr = (%+v, %v)", a, ok)
	}
	if a, ok := b.Getattr(vfs.RootFH); !ok || !a.Dir {
		t.Fatalf("Getattr(root) = (%+v, %v), want a directory", a, ok)
	}
	if _, ok := b.Getattr(fh + 999); ok {
		t.Fatal("Getattr of a stale handle succeeded")
	}

	view, rsize, eof, err := b.ReadAt(fh, 4, 5, 0)
	if err != nil || string(view) != "quick" || eof || rsize != uint64(len(data)) {
		t.Fatalf("ReadAt = (%q, %d, %v, %v)", view, rsize, eof, err)
	}
	if _, _, eof, err := b.ReadAt(fh, uint64(len(data))+10, 8, 0); err != nil || !eof {
		t.Fatalf("read past EOF: eof=%v err=%v", eof, err)
	}
	if _, _, _, err := b.ReadAt(fh+999, 0, 1, 0); err == nil {
		t.Fatal("ReadAt of a stale handle succeeded")
	}
	if _, _, _, err := b.ReadAt(vfs.RootFH, 0, 1, 0); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("ReadAt of a directory: %v, want ErrIsDir", err)
	}
}

// testReadViewCOW pins the copy-on-write contract the zero-copy reply
// pipeline depends on: a view returned by ReadAt must never observe a
// later WriteAt.
func testReadViewCOW(t *testing.T, b vfs.Backend) {
	const size = 4 * 8192
	fh := create(t, b, vfs.RootFH, "f", bytes.Repeat([]byte{0xAA}, size))
	view, _, _, err := b.ReadAt(fh, 0, size, 0)
	if err != nil || len(view) != size {
		t.Fatalf("ReadAt: len=%d err=%v", len(view), err)
	}
	// Overwrite inside the view, straddle its end, and append past it.
	for _, off := range []uint64{0, size - 512, size + 8192} {
		if err := b.WriteAt(fh, off, bytes.Repeat([]byte{0xBB}, 1024)); err != nil {
			t.Fatalf("WriteAt(%d): %v", off, err)
		}
	}
	for i, c := range view {
		if c != 0xAA {
			t.Fatalf("view[%d] = %#x after overlapping writes, want 0xAA", i, c)
		}
	}
	// A fresh read must see the new bytes.
	got, _, _, err := b.ReadAt(fh, 0, 8, 0)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xBB}, 8)) {
		t.Fatalf("re-read = %x err=%v, want BB..", got, err)
	}
}

func testWriteExtendZeroFill(t *testing.T, b vfs.Backend) {
	fh := create(t, b, vfs.RootFH, "f", []byte("abc"))
	if err := b.WriteAt(fh, 5, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	got, size, eof, err := b.ReadAt(fh, 0, 64, 0)
	want := []byte{'a', 'b', 'c', 0, 0, 'x', 'y', 'z'}
	if err != nil || !bytes.Equal(got, want) || !eof || size != 8 {
		t.Fatalf("after gap write: %v size=%d eof=%v err=%v", got, size, eof, err)
	}
	if err := b.WriteAt(fh+999, 0, []byte("x")); err == nil {
		t.Fatal("WriteAt on a stale handle succeeded")
	}
}

func testAccess(t *testing.T, b vfs.Backend) {
	fh := create(t, b, vfs.RootFH, "f", []byte("data"))
	mask := uint32(nfsproto.AccessRead | nfsproto.AccessModify |
		nfsproto.AccessExtend | nfsproto.AccessDelete | nfsproto.AccessExecute)
	granted, ok := b.Access(fh, mask)
	if !ok {
		t.Fatal("Access on a live handle not ok")
	}
	if granted&nfsproto.AccessRead == 0 || granted&nfsproto.AccessModify == 0 {
		t.Fatalf("granted = %#x, want at least read|modify", granted)
	}
	if granted&^mask != 0 {
		t.Fatalf("granted %#x outside the requested mask %#x", granted, mask)
	}
	dgranted, ok := b.Access(vfs.RootFH, mask)
	if !ok || dgranted&nfsproto.AccessLookup != 0 {
		// Lookup was not requested in the mask; nothing outside it.
		t.Fatalf("root Access = (%#x, %v)", dgranted, ok)
	}
	if _, ok := b.Access(fh+999, mask); ok {
		t.Fatal("Access on a stale handle ok")
	}
}

func testFsstat(t *testing.T, b vfs.Backend) {
	total0, free0 := b.Fsstat()
	if total0 == 0 || free0 > total0 {
		t.Fatalf("empty Fsstat = (%d, %d)", total0, free0)
	}
	create(t, b, vfs.RootFH, "f", make([]byte, 64*1024))
	total1, free1 := b.Fsstat()
	if total1 != total0 {
		t.Fatalf("total changed across Create: %d -> %d", total0, total1)
	}
	if free1 >= free0 {
		t.Fatalf("free did not shrink across a 64 KB create: %d -> %d", free0, free1)
	}
}

func testCommit(t *testing.T, b vfs.Backend) {
	fh := create(t, b, vfs.RootFH, "f", make([]byte, 3*8192))
	if err := b.WriteAt(fh, 100, []byte("durable?")); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(fh, 0, 0); err != nil {
		t.Fatalf("whole-file Commit: %v", err)
	}
	if err := b.Commit(fh, 8192, 8192); err != nil {
		t.Fatalf("range Commit: %v", err)
	}
	if err := b.Commit(fh+999, 0, 0); err == nil {
		t.Fatal("Commit on a stale handle succeeded")
	}
	// Committed data must still read back.
	got, _, _, err := b.ReadAt(fh, 100, 8, 0)
	if err != nil || string(got) != "durable?" {
		t.Fatalf("read after commit = %q err=%v", got, err)
	}
}

// testHierarchy builds a small tree and checks directory-first-class
// semantics: directories have their own handles and attributes,
// lookups are per-parent, Mkdir never replaces.
func testHierarchy(t *testing.T, b vfs.Backend) {
	d1 := mkdir(t, b, vfs.RootFH, "sub")
	d2 := mkdir(t, b, d1, "deeper")
	if d1 == 0 || d2 == 0 || d1 == d2 || d1 == vfs.RootFH {
		t.Fatalf("Mkdir handles: %d, %d", d1, d2)
	}
	f1 := create(t, b, d1, "f", []byte("in sub"))
	f2 := create(t, b, d2, "f", []byte("in deeper"))
	if f1 == f2 {
		t.Fatal("same name in different directories shares a handle")
	}
	// Per-parent resolution: the same name resolves differently.
	got1, _, err1 := b.Lookup(d1, "f")
	got2, _, err2 := b.Lookup(d2, "f")
	if err1 != nil || err2 != nil || got1 != f1 || got2 != f2 {
		t.Fatalf("per-dir Lookup = (%d,%v) (%d,%v)", got1, err1, got2, err2)
	}
	if _, _, err := b.Lookup(vfs.RootFH, "f"); !errors.Is(err, vfs.ErrNoEnt) {
		t.Fatalf("root Lookup of nested name: %v, want ErrNoEnt", err)
	}
	// Directory attributes: Dir set, handle stays a directory.
	if a, ok := b.Getattr(d1); !ok || !a.Dir {
		t.Fatalf("Getattr(dir) = (%+v, %v)", a, ok)
	}
	// Mkdir never replaces — an existing entry of either kind refuses.
	if _, err := b.Mkdir(d1, "f"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("Mkdir over a file: %v, want ErrExist", err)
	}
	if _, err := b.Mkdir(vfs.RootFH, "sub"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("Mkdir over a dir: %v, want ErrExist", err)
	}
	// Creating a file over a directory name refuses.
	if _, err := b.Create(vfs.RootFH, "sub", []byte("x")); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("Create over a dir: %v, want ErrIsDir", err)
	}
	// Mkdir under a file handle refuses.
	if _, err := b.Mkdir(f1, "x"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("Mkdir under a file: %v, want ErrNotDir", err)
	}
}

// readdirAll pages through a directory with the given page size and
// returns every entry, failing the test on any error.
func readdirAll(t *testing.T, b vfs.Backend, dir nfsproto.FH, pageSize int) []vfs.DirEntry {
	t.Helper()
	var all []vfs.DirEntry
	var cookie, verf uint64
	for {
		page, err := b.Readdir(dir, cookie, verf, pageSize)
		if err != nil {
			t.Fatalf("Readdir(cookie=%d): %v", cookie, err)
		}
		all = append(all, page.Entries...)
		verf = page.Cookieverf
		if len(page.Entries) > 0 {
			cookie = page.Entries[len(page.Entries)-1].Cookie
		}
		if page.EOF {
			return all
		}
		if len(page.Entries) == 0 {
			t.Fatal("empty Readdir page without EOF")
		}
	}
}

// testReaddirPaging scans a 1000-entry directory in small pages and
// checks the scan is exact: every entry once, ascending cookies, EOF
// on the last page only.
func testReaddirPaging(t *testing.T, b vfs.Backend) {
	const n = 1000
	dir := mkdir(t, b, vfs.RootFH, "big")
	want := make(map[string]nfsproto.FH, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("f%04d", i)
		want[name] = create(t, b, dir, name, nil)
	}
	all := readdirAll(t, b, dir, 37) // deliberately odd page size
	if len(all) != n {
		t.Fatalf("paged scan returned %d entries, want %d", len(all), n)
	}
	var last uint64
	for i, e := range all {
		if e.Cookie <= last {
			t.Fatalf("entry %d cookie %d not ascending (prev %d)", i, e.Cookie, last)
		}
		last = e.Cookie
		fh, ok := want[e.Name]
		if !ok {
			t.Fatalf("unexpected or duplicated entry %q", e.Name)
		}
		if e.FH != fh {
			t.Fatalf("entry %q handle %d, want %d", e.Name, e.FH, fh)
		}
		delete(want, e.Name)
	}
	if len(want) != 0 {
		t.Fatalf("%d entries missing from the scan", len(want))
	}
	// An unlimited scan agrees.
	if whole := readdirAll(t, b, dir, 0); len(whole) != n {
		t.Fatalf("unlimited scan returned %d entries", len(whole))
	}
}

// testReaddirCookieStability pins the mid-scan mutation contract:
// entries created after a scan started do not disturb the pages
// already returned — the resumed scan picks up exactly the entries
// past its cookie, old and new.
func testReaddirCookieStability(t *testing.T, b vfs.Backend) {
	dir := mkdir(t, b, vfs.RootFH, "d")
	for i := 0; i < 10; i++ {
		create(t, b, dir, fmt.Sprintf("old%d", i), nil)
	}
	page1, err := b.Readdir(dir, 0, 0, 4)
	if err != nil || len(page1.Entries) != 4 || page1.EOF {
		t.Fatalf("page1 = %d entries eof=%v err=%v", len(page1.Entries), page1.EOF, err)
	}
	// Create mid-scan: must NOT invalidate the cookie.
	create(t, b, dir, "new0", nil)
	cookie := page1.Entries[len(page1.Entries)-1].Cookie
	rest := readdirAllFrom(t, b, dir, cookie, page1.Cookieverf, 4)
	seen := map[string]bool{}
	for _, e := range page1.Entries {
		seen[e.Name] = true
	}
	for _, e := range rest {
		if seen[e.Name] {
			t.Fatalf("entry %q repeated after mid-scan create", e.Name)
		}
		seen[e.Name] = true
	}
	if len(seen) != 11 {
		t.Fatalf("scan saw %d distinct entries, want 11 (10 old + 1 mid-scan create)", len(seen))
	}
	if !seen["new0"] {
		t.Fatal("mid-scan create not visible to the resumed scan")
	}
}

// readdirAllFrom resumes a scan at (cookie, verf) and drains it.
func readdirAllFrom(t *testing.T, b vfs.Backend, dir nfsproto.FH, cookie, verf uint64, pageSize int) []vfs.DirEntry {
	t.Helper()
	var all []vfs.DirEntry
	for {
		page, err := b.Readdir(dir, cookie, verf, pageSize)
		if err != nil {
			t.Fatalf("Readdir(cookie=%d): %v", cookie, err)
		}
		all = append(all, page.Entries...)
		verf = page.Cookieverf
		if len(page.Entries) > 0 {
			cookie = page.Entries[len(page.Entries)-1].Cookie
		}
		if page.EOF {
			return all
		}
	}
}

// testReaddirBadCookie pins verifier invalidation: a removal bumps the
// directory's cookie verifier, so a scan resumed with the old verifier
// gets ErrBadCookie, and a restarted scan (cookie 0, any verifier)
// succeeds.
func testReaddirBadCookie(t *testing.T, b vfs.Backend) {
	dir := mkdir(t, b, vfs.RootFH, "d")
	for i := 0; i < 8; i++ {
		create(t, b, dir, fmt.Sprintf("f%d", i), nil)
	}
	page1, err := b.Readdir(dir, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Remove(dir, page1.Entries[0].Name); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	cookie := page1.Entries[len(page1.Entries)-1].Cookie
	_, err = b.Readdir(dir, cookie, page1.Cookieverf, 3)
	if !errors.Is(err, vfs.ErrBadCookie) {
		t.Fatalf("resume after removal: %v, want ErrBadCookie", err)
	}
	// The RFC 1813 client recovery: restart from cookie 0.
	if all := readdirAll(t, b, dir, 3); len(all) != 7 {
		t.Fatalf("restarted scan returned %d entries, want 7", len(all))
	}
}

func testRemoveSemantics(t *testing.T, b vfs.Backend) {
	dir := mkdir(t, b, vfs.RootFH, "d")
	fh := create(t, b, dir, "f", []byte("bytes"))
	// Non-empty directory removal refuses.
	if _, err := b.Remove(vfs.RootFH, "d"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("Remove of non-empty dir: %v, want ErrNotEmpty", err)
	}
	// File removal returns the orphaned handle and stales it.
	removed, err := b.Remove(dir, "f")
	if err != nil || removed != fh {
		t.Fatalf("Remove = (%d, %v), want (%d, nil)", removed, err, fh)
	}
	if _, _, err := b.Lookup(dir, "f"); !errors.Is(err, vfs.ErrNoEnt) {
		t.Fatalf("Lookup after Remove: %v, want ErrNoEnt", err)
	}
	if _, ok := b.Getattr(fh); ok {
		t.Fatal("Getattr of a removed file succeeded")
	}
	if _, err := b.Remove(dir, "f"); !errors.Is(err, vfs.ErrNoEnt) {
		t.Fatalf("double Remove: %v, want ErrNoEnt", err)
	}
	// Now-empty directory removal succeeds and stales the dir handle.
	if removed, err := b.Remove(vfs.RootFH, "d"); err != nil || removed != dir {
		t.Fatalf("rmdir = (%d, %v), want (%d, nil)", removed, err, dir)
	}
	if _, ok := b.Getattr(dir); ok {
		t.Fatal("Getattr of a removed dir succeeded")
	}
}

func testRenameSemantics(t *testing.T, b vfs.Backend) {
	d1 := mkdir(t, b, vfs.RootFH, "d1")
	d2 := mkdir(t, b, vfs.RootFH, "d2")
	src := create(t, b, d1, "src", []byte("payload"))
	tgt := create(t, b, d2, "tgt", []byte("doomed"))

	// Rename over an existing file: atomic replace, the target's
	// handle comes back orphaned.
	replaced, err := b.Rename(d1, "src", d2, "tgt")
	if err != nil || replaced != tgt {
		t.Fatalf("Rename-over-existing = (%d, %v), want (%d, nil)", replaced, err, tgt)
	}
	if got, attr, err := b.Lookup(d2, "tgt"); err != nil || got != src || attr.Size != 7 {
		t.Fatalf("target after rename = (%d, %+v, %v), want src handle %d", got, attr, err, src)
	}
	if _, _, err := b.Lookup(d1, "src"); !errors.Is(err, vfs.ErrNoEnt) {
		t.Fatalf("source still present after rename: %v", err)
	}
	if _, ok := b.Getattr(tgt); ok {
		t.Fatal("replaced target's handle still live")
	}
	// The moved file keeps its handle and bytes.
	data, _, _, err := b.ReadAt(src, 0, 16, 0)
	if err != nil || string(data) != "payload" {
		t.Fatalf("moved file reads %q, %v", data, err)
	}

	// Rename to a fresh name (no replacement) reports handle 0.
	if replaced, err := b.Rename(d2, "tgt", d2, "renamed"); err != nil || replaced != 0 {
		t.Fatalf("plain rename = (%d, %v)", replaced, err)
	}
	// Self-rename is a no-op success.
	if _, err := b.Rename(d2, "renamed", d2, "renamed"); err != nil {
		t.Fatalf("self rename: %v", err)
	}
	// Missing source.
	if _, err := b.Rename(d1, "ghost", d2, "x"); !errors.Is(err, vfs.ErrNoEnt) {
		t.Fatalf("rename of missing source: %v, want ErrNoEnt", err)
	}
	// A directory target never gets replaced.
	sub := mkdir(t, b, d1, "sub")
	if _, err := b.Rename(d2, "renamed", vfs.RootFH, "d1"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("rename file over dir: %v, want ErrIsDir", err)
	}
	// A directory source cannot replace a file.
	blocker := create(t, b, d2, "blocker", nil)
	_ = blocker
	if _, err := b.Rename(d1, "sub", d2, "blocker"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("rename dir over file: %v, want ErrNotDir", err)
	}
	// Renaming a directory into its own subtree refuses.
	if _, err := b.Rename(vfs.RootFH, "d1", sub, "loop"); !errors.Is(err, vfs.ErrInval) {
		t.Fatalf("rename dir into own subtree: %v, want ErrInval", err)
	}
	// A directory rename that creates no cycle works and keeps the
	// subtree reachable.
	if _, err := b.Rename(d1, "sub", d2, "sub"); err != nil {
		t.Fatalf("dir rename: %v", err)
	}
	if got, _, err := b.Lookup(d2, "sub"); err != nil || got != sub {
		t.Fatalf("moved dir = (%d, %v), want %d", got, err, sub)
	}
}

func testSetattr(t *testing.T, b vfs.Backend) {
	fh := create(t, b, vfs.RootFH, "f", []byte("0123456789"))
	// Truncate.
	if err := b.Setattr(fh, 4); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	got, size, eof, err := b.ReadAt(fh, 0, 64, 0)
	if err != nil || string(got) != "0123" || !eof || size != 4 {
		t.Fatalf("after truncate: %q size=%d eof=%v err=%v", got, size, eof, err)
	}
	// Extend: the new range reads as zeros.
	if err := b.Setattr(fh, 8); err != nil {
		t.Fatalf("extend: %v", err)
	}
	got, size, _, err = b.ReadAt(fh, 0, 64, 0)
	if err != nil || size != 8 || !bytes.Equal(got, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
		t.Fatalf("after extend: %v size=%d err=%v", got, size, err)
	}
	// Old views survive both (copy-on-write applies to Setattr too).
	view, _, _, _ := b.ReadAt(fh, 0, 4, 0)
	if err := b.Setattr(fh, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Setattr(fh, 16); err != nil {
		t.Fatal(err)
	}
	if string(view) != "0123" {
		t.Fatalf("view mutated by Setattr: %q", view)
	}
	// Errors.
	if err := b.Setattr(vfs.RootFH, 0); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("Setattr on a dir: %v, want ErrIsDir", err)
	}
	if err := b.Setattr(fh+999, 0); err == nil {
		t.Fatal("Setattr on a stale handle succeeded")
	}
	if err := b.Setattr(fh, vfs.MaxFileSize+1); !errors.Is(err, vfs.ErrTooBig) {
		t.Fatalf("Setattr past MaxFileSize: %v, want ErrTooBig", err)
	}
}

// call drives one RPC through a service handler without sockets.
func call(t *testing.T, svc *nfsd.Service, proc uint32, args []byte) []byte {
	t.Helper()
	h := svc.Handler()
	out, stat := h(proc, args, nil)
	if stat != sunrpc.AcceptSuccess {
		t.Fatalf("proc %s: accept stat %d", nfsproto.ProcName(proc), stat)
	}
	return out
}

func writeVia(t *testing.T, svc *nfsd.Service, fh nfsproto.FH, off uint64, data []byte, stable uint32) *nfsproto.WriteRes {
	t.Helper()
	out := call(t, svc, nfsproto.ProcWrite, (&nfsproto.WriteArgs{
		FH: fh, Offset: off, Count: uint32(len(data)), Stable: stable, Data: data,
	}).Marshal())
	res, err := nfsproto.UnmarshalWriteRes(out)
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("WRITE: status=%d err=%v", res.Status, err)
	}
	return res
}

// testStabilityRouting checks the stability contract through the full
// dispatch stack: with a gather window open, UNSTABLE writes are
// acknowledged UNSTABLE (deferred), synchronous stabilities come back
// FILE_SYNC, and with no window everything is write-through.
func testStabilityRouting(t *testing.T, b vfs.Backend) {
	fh := create(t, b, vfs.RootFH, "f", make([]byte, 64*1024))

	gathered := nfsd.New(b, nfsd.Config{Gather: wgather.Config{Window: time.Minute}})
	defer gathered.Close()
	if res := writeVia(t, gathered, fh, 0, []byte("unstable"), nfsproto.WriteUnstable); res.Committed != nfsproto.WriteUnstable {
		t.Fatalf("gathered UNSTABLE write acked %s", nfsproto.StableName(res.Committed))
	}
	if res := writeVia(t, gathered, fh, 8192, []byte("datasync"), nfsproto.WriteDataSync); res.Committed != nfsproto.WriteFileSync {
		t.Fatalf("DATA_SYNC write acked %s, want FILE_SYNC", nfsproto.StableName(res.Committed))
	}
	if res := writeVia(t, gathered, fh, 16384, []byte("filesync"), nfsproto.WriteFileSync); res.Committed != nfsproto.WriteFileSync {
		t.Fatalf("FILE_SYNC write acked %s", nfsproto.StableName(res.Committed))
	}

	through := nfsd.New(b, nfsd.Config{})
	defer through.Close()
	if res := writeVia(t, through, fh, 0, []byte("unstable"), nfsproto.WriteUnstable); res.Committed != nfsproto.WriteFileSync {
		t.Fatalf("write-through UNSTABLE write acked %s, want FILE_SYNC", nfsproto.StableName(res.Committed))
	}
}

// testVerifierReboot checks verifier semantics and FH stability: the
// verifier is constant across writes and COMMIT, changes exactly on
// Reboot, and handles issued before the reboot still name the same
// file afterwards.
func testVerifierReboot(t *testing.T, b vfs.Backend) {
	payload := []byte("survives reboots")
	fh := create(t, b, vfs.RootFH, "f", payload)
	svc := nfsd.New(b, nfsd.Config{Gather: wgather.Config{Window: time.Minute}})
	defer svc.Close()

	v0 := svc.WriteVerifier()
	res := writeVia(t, svc, fh, 0, []byte("S"), nfsproto.WriteUnstable)
	if res.Verf != v0 {
		t.Fatalf("write verifier %x, service verifier %x", res.Verf, v0)
	}
	out := call(t, svc, nfsproto.ProcCommit, (&nfsproto.CommitArgs{FH: fh}).Marshal())
	cres, err := nfsproto.UnmarshalCommitRes(out)
	if err != nil || cres.Status != nfsproto.OK || cres.Verf != v0 {
		t.Fatalf("COMMIT: status=%d verf=%x err=%v, want verf %x", cres.Status, cres.Verf, err, v0)
	}

	svc.Reboot()
	if svc.WriteVerifier() == v0 {
		t.Fatal("verifier unchanged across Reboot")
	}
	// FH stability: the pre-reboot handle still reads the same file.
	rout := call(t, svc, nfsproto.ProcRead, (&nfsproto.ReadArgs{FH: fh, Offset: 0, Count: 64}).Marshal())
	rres, err := nfsproto.UnmarshalReadRes(rout)
	if err != nil || rres.Status != nfsproto.OK {
		t.Fatalf("READ after reboot: status=%d err=%v", rres.Status, err)
	}
	want := append([]byte("S"), payload[1:]...)
	if !bytes.Equal(rres.Data, want) {
		t.Fatalf("READ after reboot = %q, want %q", rres.Data, want)
	}
}

// testDirReboot checks directory-handle stability across Reboot
// through the dispatch stack: a directory handle issued before the
// verifier changed still serves LOOKUP and READDIR afterwards.
func testDirReboot(t *testing.T, b vfs.Backend) {
	dir := mkdir(t, b, vfs.RootFH, "d")
	fh := create(t, b, dir, "f", []byte("x"))
	svc := nfsd.New(b, nfsd.Config{Gather: wgather.Config{Window: time.Minute}})
	defer svc.Close()

	svc.Reboot()

	lout := call(t, svc, nfsproto.ProcLookup, (&nfsproto.LookupArgs{Dir: dir, Name: "f"}).Marshal())
	lres, err := nfsproto.UnmarshalLookupRes(lout)
	if err != nil || lres.Status != nfsproto.OK || lres.FH != fh {
		t.Fatalf("LOOKUP after reboot = (%d, status %d, %v), want %d", lres.FH, lres.Status, err, fh)
	}
	rout := call(t, svc, nfsproto.ProcReaddir, (&nfsproto.ReaddirArgs{Dir: dir, Count: 4096}).Marshal())
	rres, err := nfsproto.UnmarshalReaddirRes(rout)
	if err != nil || rres.Status != nfsproto.OK || len(rres.Entries) != 1 || rres.Entries[0].Name != "f" {
		t.Fatalf("READDIR after reboot: status=%d entries=%v err=%v", rres.Status, rres.Entries, err)
	}
}
