// Package vfs defines the storage-backend contract behind the live NFS
// dispatch layer (internal/nfsd). A Backend is everything the protocol
// layer needs from storage — a hierarchical namespace (directories are
// first-class objects with their own file handles), attributes, access
// checks, reads, writes, durability and space accounting — expressed
// over file handles, so the same dispatch code (proc switch, counters,
// read-ahead heuristics, write gathering, trace taps) serves any
// store: the in-memory memfs, the ZCAV disk-backed zonefs, or anything
// written later.
//
// Three contracts matter beyond the method signatures:
//
// Copy-on-write read views: the slice ReadAt returns is a stable
// read-only view of the file at the moment of the call. Later WriteAt
// calls must never mutate bytes a returned view can see — overlapping
// writes copy to a fresh segment, appends only touch indices past
// every view. The zero-copy reply pipeline depends on this: a READ
// payload is appended straight from the view into the pooled wire
// buffer, after the handler returned.
//
// Stability: WriteAt lands data in the backend's page cache only. The
// data is durable when Commit returns for a covering range. The nfsd
// layer's write-gathering engine decides when Commit is called (per
// the RFC 1813 stable_how the client asked for and the gather window);
// the backend decides what durability costs. FHs — of files and of
// directories — are stable across a server reboot (nfsd.Service.
// Reboot): a handle issued before the verifier changed still names the
// same object afterwards.
//
// Readdir paging: every directory carries a monotonic cookie space and
// a cookie verifier. Each entry is assigned a cookie when it is linked
// into the directory, and Readdir(dir, cookie, ...) returns entries
// with cookies strictly greater than the given one, in ascending
// cookie order — so a multi-page scan resumes exactly where it left
// off. Entries created mid-scan land at the cookie frontier and are
// picked up by later pages without disturbing earlier ones; removing
// an entry (including renaming it away) bumps the directory's
// verifier, and a resumed scan presenting the old verifier gets
// ErrBadCookie — the client must restart from cookie 0. A fresh scan
// (cookie 0) never checks the verifier.
package vfs

import (
	"errors"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/obs"
)

// RootFH is the file handle of the root directory every backend
// exports. The root is an ordinary directory object: Getattr, Access
// and Readdir answer for it like any other handle.
const RootFH nfsproto.FH = 1

// MaxFileSize bounds a file's length (4 GB). Write offsets come off
// the wire, so without this cap a crafted WRITE could demand an absurd
// allocation or overflow offset+len arithmetic into a slice-bounds
// panic.
const MaxFileSize = 1 << 32

// MaxCreateSize bounds the initial size a live CREATE may request
// (the backend must materialize the zeroes somewhere; this keeps one
// crafted RPC from demanding gigabytes).
const MaxCreateSize = 256 << 20

// Sentinel errors backends report and the dispatch layer maps to
// nfsstat3 codes.
var (
	// ErrStale marks an unknown or no-longer-valid file handle.
	ErrStale = errors.New("vfs: stale file handle")
	// ErrTooBig marks a write that would grow a file past MaxFileSize.
	ErrTooBig = errors.New("vfs: write exceeds max file size")
	// ErrNoSpace marks a backend out of room (zonefs: the placement
	// region's LBA range is exhausted).
	ErrNoSpace = errors.New("vfs: no space left on backend")
	// ErrNoEnt marks a name that does not exist in the directory.
	ErrNoEnt = errors.New("vfs: no such entry")
	// ErrExist marks a create/mkdir target name already in use when
	// the operation does not replace (Mkdir never replaces).
	ErrExist = errors.New("vfs: entry exists")
	// ErrNotDir marks a handle used as a directory that names a file.
	ErrNotDir = errors.New("vfs: not a directory")
	// ErrIsDir marks a directory handle where a file was required
	// (data-path ops, Remove-replacing-a-dir targets, ...).
	ErrIsDir = errors.New("vfs: is a directory")
	// ErrNotEmpty marks an attempt to remove a non-empty directory.
	ErrNotEmpty = errors.New("vfs: directory not empty")
	// ErrBadCookie marks a Readdir resume cookie whose verifier no
	// longer matches the directory — an entry was removed since the
	// scan started, so the cookie may skip or repeat entries. Restart
	// from cookie 0.
	ErrBadCookie = errors.New("vfs: stale readdir cookie")
	// ErrInval marks a structurally invalid namespace operation, e.g.
	// renaming a directory into its own subtree.
	ErrInval = errors.New("vfs: invalid operation")
)

// DirEntryBytes is the nominal on-store size of one directory entry.
// A directory's Attr.Size is entries × DirEntryBytes, and zonefs sizes
// a directory's entry blocks by it (128 entries per 8 KB block).
const DirEntryBytes = 64

// Attr is the attribute set the contract carries for an object: its
// size (for a directory, a nominal entries×per-entry-bytes figure) and
// whether it is a directory.
type Attr struct {
	Size int64
	Dir  bool
}

// DirEntry is one Readdir result entry.
type DirEntry struct {
	FH     nfsproto.FH
	Name   string
	Cookie uint64
	Attr   Attr
}

// ReaddirPage is one page of a directory scan. Cookieverf is the
// verifier the page's cookies are valid under; a client resuming with
// any of these cookies must present it. EOF reports that the page
// reached the end of the directory (an empty page with EOF set is a
// completed scan).
type ReaddirPage struct {
	Entries    []DirEntry
	Cookieverf uint64
	EOF        bool
}

// Backend is a hierarchical file store behind the live dispatch layer.
// Implementations must be safe for concurrent use by multiple
// goroutines; ReadAt on distinct files should not serialize (the
// dispatch hot path holds no global lock of its own).
type Backend interface {
	// Create adds a file under dir with the given contents, replacing
	// any previous *file* of that name (replacing a directory is
	// ErrIsDir), and returns its handle. Errors: ErrStale, ErrNotDir,
	// ErrIsDir, ErrNoSpace.
	Create(dir nfsproto.FH, name string, data []byte) (nfsproto.FH, error)

	// Lookup resolves name under dir. Errors: ErrStale, ErrNotDir,
	// ErrNoEnt.
	Lookup(dir nfsproto.FH, name string) (nfsproto.FH, Attr, error)

	// Mkdir creates an empty directory under dir. Unlike Create it
	// never replaces: an existing entry of either kind is ErrExist.
	Mkdir(dir nfsproto.FH, name string) (nfsproto.FH, error)

	// Readdir returns up to maxEntries entries of dir with cookies
	// strictly greater than cookie, in ascending cookie order (see the
	// package comment for the paging contract). maxEntries <= 0 means
	// no limit. Errors: ErrStale, ErrNotDir, ErrBadCookie.
	Readdir(dir nfsproto.FH, cookie, cookieverf uint64, maxEntries int) (ReaddirPage, error)

	// Remove unlinks name from dir and returns the removed object's
	// handle (so the dispatch layer can drop per-file state keyed on
	// it). A directory must be empty (ErrNotEmpty). Errors: ErrStale,
	// ErrNotDir, ErrNoEnt, ErrNotEmpty.
	Remove(dir nfsproto.FH, name string) (nfsproto.FH, error)

	// Rename moves fromDir/fromName to toDir/toName, atomically
	// replacing a file target (replaced is its handle, 0 when the
	// target did not exist). Replacing a directory target is ErrIsDir
	// (even an empty one — the reduced contract keeps replacement to
	// files); renaming a directory to a file target is ErrNotDir per
	// RFC 1813. Errors: ErrStale, ErrNotDir, ErrNoEnt, ErrIsDir,
	// ErrExist.
	Rename(fromDir nfsproto.FH, fromName string, toDir nfsproto.FH, toName string) (replaced nfsproto.FH, err error)

	// Setattr sets a file's size, truncating or zero-extending.
	// Errors: ErrStale, ErrIsDir, ErrTooBig, ErrNoSpace.
	Setattr(fh nfsproto.FH, size uint64) error

	// Getattr returns an object's current attributes; ok is false for
	// handles the backend does not know.
	Getattr(fh nfsproto.FH) (Attr, bool)

	// Access reports which of the requested ACCESS3 mask bits the
	// backend grants on fh; ok is false for stale handles.
	Access(fh nfsproto.FH, mask uint32) (granted uint32, ok bool)

	// ReadAt returns up to count bytes at off as a stable
	// copy-on-write view (see the package comment), plus the file's
	// current size and an EOF flag. ahead is the read-ahead window, in
	// blocks, the sequentiality heuristic recommends beyond this
	// request; backends without a prefetch notion ignore it.
	ReadAt(fh nfsproto.FH, off uint64, count uint32, ahead int) (data []byte, size uint64, eof bool, err error)

	// WriteAt stores data at off in the backend's page cache,
	// extending the file as needed (gaps read as zeros). Durability is
	// deferred to Commit.
	WriteAt(fh nfsproto.FH, off uint64, data []byte) error

	// Commit makes [off, off+count) — or the whole file when count is
	// 0 — durable. The dispatch layer's gathering engine calls this on
	// COMMIT, on synchronous-stability writes, and when the gather
	// window expires.
	Commit(fh nfsproto.FH, off uint64, count uint32) error

	// Fsstat reports the store's total and free capacity in bytes.
	Fsstat() (totalBytes, freeBytes uint64)
}

// SizedCreator is an optional Backend capability: create a
// zero-filled file of the given size without the caller materializing
// the zeroes. The dispatch layer uses it to serve CREATE with one
// allocation instead of a payload copy.
type SizedCreator interface {
	// CreateSized is Create for a zero-filled file of size bytes.
	CreateSized(dir nfsproto.FH, name string, size uint64) (nfsproto.FH, error)
}

// SpanReader is an optional Backend capability: ReadAt with a latency
// span the backend attributes its internal stage costs to — a
// disk-backed backend reports time actually slept for simulated disk
// service as obs.StageDisk, carving it out of the caller's backend
// stage. The dispatch layer detects the capability once at mount and
// uses it whenever a request carries a span; ReadAtSpan with a nil span
// must behave exactly like ReadAt.
type SpanReader interface {
	// ReadAtSpan is Backend.ReadAt with stage attribution onto sp.
	ReadAtSpan(fh nfsproto.FH, off uint64, count uint32, ahead int, sp *obs.Span) (data []byte, size uint64, eof bool, err error)
}

// FileAccess is the ACCESS3 grant every current backend gives on a
// regular file: read and write (modify/extend), no execute.
func FileAccess(mask uint32) uint32 {
	return mask & (nfsproto.AccessRead | nfsproto.AccessModify | nfsproto.AccessExtend)
}

// DirAccess is the grant on a directory: lookup, read (readdir) and
// namespace mutation (create/remove entries), no execute.
func DirAccess(mask uint32) uint32 {
	return mask & (nfsproto.AccessRead | nfsproto.AccessLookup |
		nfsproto.AccessModify | nfsproto.AccessExtend | nfsproto.AccessDelete)
}

// RootAccess is the grant on the root directory (alias of DirAccess
// now that the root is an ordinary directory; kept for PR 1–5 call
// sites).
func RootAccess(mask uint32) uint32 { return DirAccess(mask) }
