// Package vfs defines the storage-backend contract behind the live NFS
// dispatch layer (internal/nfsd). A Backend is everything the protocol
// layer needs from storage — name resolution, attributes, access
// checks, reads, writes, durability and space accounting — expressed
// over file handles, so the same dispatch code (proc switch, counters,
// read-ahead heuristics, write gathering, trace taps) serves any
// store: the in-memory memfs, the ZCAV disk-backed zonefs, or anything
// written later.
//
// Two contracts matter beyond the method signatures:
//
// Copy-on-write read views: the slice ReadAt returns is a stable
// read-only view of the file at the moment of the call. Later WriteAt
// calls must never mutate bytes a returned view can see — overlapping
// writes copy to a fresh segment, appends only touch indices past
// every view. The zero-copy reply pipeline depends on this: a READ
// payload is appended straight from the view into the pooled wire
// buffer, after the handler returned.
//
// Stability: WriteAt lands data in the backend's page cache only. The
// data is durable when Commit returns for a covering range. The nfsd
// layer's write-gathering engine decides when Commit is called (per
// the RFC 1813 stable_how the client asked for and the gather window);
// the backend decides what durability costs. FHs are stable across a
// server reboot (nfsd.Service.Reboot): a handle issued before the
// verifier changed still names the same file afterwards.
package vfs

import (
	"errors"

	"nfstricks/internal/nfsproto"
)

// RootFH is the file handle of the single root directory every backend
// exports. Backends only ever see file handles; the dispatch layer
// answers for the root itself.
const RootFH nfsproto.FH = 1

// MaxFileSize bounds a file's length (4 GB). Write offsets come off
// the wire, so without this cap a crafted WRITE could demand an absurd
// allocation or overflow offset+len arithmetic into a slice-bounds
// panic.
const MaxFileSize = 1 << 32

// MaxCreateSize bounds the initial size a live CREATE may request
// (the backend must materialize the zeroes somewhere; this keeps one
// crafted RPC from demanding gigabytes).
const MaxCreateSize = 256 << 20

// Sentinel errors backends report and the dispatch layer maps to
// nfsstat3 codes.
var (
	// ErrStale marks an unknown or no-longer-valid file handle.
	ErrStale = errors.New("vfs: stale file handle")
	// ErrTooBig marks a write that would grow a file past MaxFileSize.
	ErrTooBig = errors.New("vfs: write exceeds max file size")
	// ErrNoSpace marks a backend out of room (zonefs: the placement
	// region's LBA range is exhausted).
	ErrNoSpace = errors.New("vfs: no space left on backend")
)

// Backend is a flat file store (one root directory) behind the live
// dispatch layer. Implementations must be safe for concurrent use by
// multiple goroutines; ReadAt on distinct files should not serialize
// (the dispatch hot path holds no global lock of its own).
type Backend interface {
	// Create adds a file with the given contents, replacing any
	// previous file of that name, and returns its handle. A zero
	// handle means the backend is out of space.
	Create(name string, data []byte) nfsproto.FH

	// Lookup resolves a name under the root to a handle and size.
	Lookup(name string) (fh nfsproto.FH, size int64, ok bool)

	// Getattr returns a file's current size; ok is false for handles
	// the backend does not know.
	Getattr(fh nfsproto.FH) (size int64, ok bool)

	// Access reports which of the requested ACCESS3 mask bits the
	// backend grants on fh; ok is false for stale handles.
	Access(fh nfsproto.FH, mask uint32) (granted uint32, ok bool)

	// ReadAt returns up to count bytes at off as a stable
	// copy-on-write view (see the package comment), plus the file's
	// current size and an EOF flag. ahead is the read-ahead window, in
	// blocks, the sequentiality heuristic recommends beyond this
	// request; backends without a prefetch notion ignore it.
	ReadAt(fh nfsproto.FH, off uint64, count uint32, ahead int) (data []byte, size uint64, eof bool, err error)

	// WriteAt stores data at off in the backend's page cache,
	// extending the file as needed (gaps read as zeros). Durability is
	// deferred to Commit.
	WriteAt(fh nfsproto.FH, off uint64, data []byte) error

	// Commit makes [off, off+count) — or the whole file when count is
	// 0 — durable. The dispatch layer's gathering engine calls this on
	// COMMIT, on synchronous-stability writes, and when the gather
	// window expires.
	Commit(fh nfsproto.FH, off uint64, count uint32) error

	// Fsstat reports the store's total and free capacity in bytes.
	Fsstat() (totalBytes, freeBytes uint64)
}

// SizedCreator is an optional Backend capability: create a
// zero-filled file of the given size without the caller materializing
// the zeroes. The dispatch layer uses it to serve CREATE with one
// allocation instead of a payload copy.
type SizedCreator interface {
	// CreateSized is Create for a zero-filled file of size bytes;
	// returns 0 when the backend has no space.
	CreateSized(name string, size uint64) nfsproto.FH
}

// FileAccess is the ACCESS3 grant every current backend gives on a
// regular file: read and write (modify/extend), no delete or execute
// (the flat root owns its entries).
func FileAccess(mask uint32) uint32 {
	return mask & (nfsproto.AccessRead | nfsproto.AccessModify | nfsproto.AccessExtend)
}

// RootAccess is the grant on the root directory: lookup and read
// (never modify, delete or execute — the flat root is immutable
// through ACCESS-gated paths; CREATE has its own policy).
func RootAccess(mask uint32) uint32 {
	return mask & (nfsproto.AccessRead | nfsproto.AccessLookup)
}
