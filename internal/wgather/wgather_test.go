package wgather

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// memStore is a minimal page cache backing Config.Source in tests.
type memStore struct {
	mu    sync.Mutex
	files map[uint64][]byte
}

func newMemStore() *memStore { return &memStore{files: make(map[uint64][]byte)} }

func (m *memStore) write(fh, off uint64, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := m.files[fh]
	if need := off + uint64(len(data)); need > uint64(len(img)) {
		grown := make([]byte, need)
		copy(grown, img)
		img = grown
	}
	copy(img[off:], data)
	m.files[fh] = img
}

func (m *memStore) source(fh, off uint64, count uint32) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := m.files[fh]
	if off >= uint64(len(img)) {
		return nil, nil
	}
	end := off + uint64(count)
	if end > uint64(len(img)) {
		end = uint64(len(img))
	}
	return append([]byte(nil), img[off:end]...), nil
}

// recordingSink records every flush call (and forwards to a MemSink
// image) so tests can assert flush counts and coalescing.
type recordingSink struct {
	mu      sync.Mutex
	flushes []extent
	img     *MemSink
}

func newRecordingSink() *recordingSink { return &recordingSink{img: NewMemSink()} }

func (r *recordingSink) Flush(fh, off uint64, data []byte) error {
	r.mu.Lock()
	r.flushes = append(r.flushes, extent{off: off, end: off + uint64(len(data))})
	r.mu.Unlock()
	return r.img.Flush(fh, off, data)
}

func (r *recordingSink) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.flushes)
}

func newEngine(t *testing.T, store *memStore, cfg Config) *Engine {
	t.Helper()
	cfg.Source = store.source
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*3 + seed
	}
	return b
}

// TestWriteThroughZeroWindow pins the degenerate configuration: with
// Window 0 every write — even UNSTABLE — reaches the sink before Write
// returns, advertises FILE_SYNC, and the stable image matches the page
// cache bit for bit.
func TestWriteThroughZeroWindow(t *testing.T) {
	store := newMemStore()
	sink := newRecordingSink()
	e := newEngine(t, store, Config{Window: 0, Sink: sink})

	const writes = 16
	for i := 0; i < writes; i++ {
		data := pattern(100, byte(i))
		store.write(1, uint64(i*100), data)
		committed, err := e.Write(1, uint64(i*100), 100, Unstable)
		if err != nil {
			t.Fatal(err)
		}
		if committed != FileSync {
			t.Fatalf("write %d: committed = %d, want FileSync", i, committed)
		}
	}
	if got := sink.count(); got != writes {
		t.Fatalf("sink flushes = %d, want %d (one per write)", got, writes)
	}
	if !bytes.Equal(sink.img.Bytes(1), store.files[1]) {
		t.Fatal("stable image differs from page cache under write-through")
	}
	if st := e.Stats(); st.DirtyBytes != 0 || st.GatheredBytes != 0 {
		t.Fatalf("write-through left dirty=%d gathered=%d", st.DirtyBytes, st.GatheredBytes)
	}
}

// TestGatherCoalescesAndCommitFlushes drives sequential UNSTABLE writes
// inside a wide window: nothing reaches the sink until COMMIT, which
// flushes them as one coalesced extent.
func TestGatherCoalescesAndCommitFlushes(t *testing.T) {
	store := newMemStore()
	sink := newRecordingSink()
	e := newEngine(t, store, Config{Window: time.Minute, Sink: sink})

	const writes = 32
	for i := 0; i < writes; i++ {
		data := pattern(512, byte(i))
		store.write(7, uint64(i*512), data)
		committed, err := e.Write(7, uint64(i*512), 512, Unstable)
		if err != nil {
			t.Fatal(err)
		}
		if committed != Unstable {
			t.Fatalf("write %d: committed = %d, want Unstable", i, committed)
		}
	}
	if got := sink.count(); got != 0 {
		t.Fatalf("sink saw %d flushes before COMMIT", got)
	}
	if st := e.Stats(); st.DirtyBytes != writes*512 {
		t.Fatalf("dirty = %d, want %d", st.DirtyBytes, writes*512)
	}
	if _, err := e.Commit(7); err != nil {
		t.Fatal(err)
	}
	if got := sink.count(); got != 1 {
		t.Fatalf("COMMIT made %d flushes, want 1 coalesced extent", got)
	}
	if !bytes.Equal(sink.img.Bytes(7), store.files[7]) {
		t.Fatal("stable image differs from page cache after COMMIT")
	}
	st := e.Stats()
	if st.DirtyBytes != 0 || st.FlushedBytes != writes*512 || st.GatheredBytes != writes*512 {
		t.Fatalf("stats after commit: %+v", st)
	}
}

// TestOverlapAbsorption rewrites the same range repeatedly: gathered
// bytes pile up, dirty and flushed bytes do not.
func TestOverlapAbsorption(t *testing.T) {
	store := newMemStore()
	sink := newRecordingSink()
	e := newEngine(t, store, Config{Window: time.Minute, Sink: sink})

	const passes = 10
	for p := 0; p < passes; p++ {
		data := pattern(1000, byte(p))
		store.write(3, 0, data)
		if _, err := e.Write(3, 0, 1000, Unstable); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.GatheredBytes != passes*1000 {
		t.Fatalf("gathered = %d, want %d", st.GatheredBytes, passes*1000)
	}
	if st.DirtyBytes != 1000 {
		t.Fatalf("dirty = %d, want 1000 (overlaps absorbed)", st.DirtyBytes)
	}
	if st.CoalescedBytes != (passes-1)*1000 {
		t.Fatalf("coalesced = %d, want %d", st.CoalescedBytes, (passes-1)*1000)
	}
	if _, err := e.Commit(3); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.FlushedBytes != 1000 {
		t.Fatalf("flushed = %d, want 1000", st.FlushedBytes)
	}
	if !bytes.Equal(sink.img.Bytes(3), store.files[3]) {
		t.Fatal("stable image differs after overlap commit")
	}
}

// TestExtentMerging exercises insert's merge cases directly through
// out-of-order and overlapping writes, checking the committed image.
func TestExtentMerging(t *testing.T) {
	store := newMemStore()
	sink := newRecordingSink()
	e := newEngine(t, store, Config{Window: time.Minute, Sink: sink})

	// Disjoint, adjacent, overlapping, containing — in shuffled order.
	ranges := [][2]uint64{{100, 200}, {300, 400}, {200, 300}, {50, 120}, {0, 500}, {600, 700}}
	for i, r := range ranges {
		data := pattern(int(r[1]-r[0]), byte(i*17))
		store.write(9, r[0], data)
		if _, err := e.Write(9, r[0], uint32(r[1]-r[0]), Unstable); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.DirtyBytes != 600 {
		t.Fatalf("dirty = %d, want 600 ([0,500) + [600,700))", st.DirtyBytes)
	}
	if _, err := e.Commit(9); err != nil {
		t.Fatal(err)
	}
	if got := sink.count(); got != 2 {
		t.Fatalf("flushes = %d, want 2 extents", got)
	}
	img := sink.img.Bytes(9)
	want := store.files[9]
	// Only bytes inside the dirty extents are defined in the image; the
	// gap [500,600) was never written.
	if !bytes.Equal(img[:500], want[:500]) || !bytes.Equal(img[600:700], want[600:700]) {
		t.Fatal("stable image differs inside committed extents")
	}
}

// TestSyncWriteFlushesOverlappingDirty checks a FILE_SYNC write drags
// the dirty ranges it touches to stable storage with it, as one
// contiguous flush.
func TestSyncWriteFlushesOverlappingDirty(t *testing.T) {
	store := newMemStore()
	sink := newRecordingSink()
	e := newEngine(t, store, Config{Window: time.Minute, Sink: sink})

	store.write(4, 0, pattern(1000, 1))
	if _, err := e.Write(4, 0, 1000, Unstable); err != nil {
		t.Fatal(err)
	}
	// Sync write overlapping the tail of the dirty range.
	store.write(4, 900, pattern(200, 2))
	committed, err := e.Write(4, 900, 200, FileSync)
	if err != nil {
		t.Fatal(err)
	}
	if committed != FileSync {
		t.Fatalf("committed = %d, want FileSync", committed)
	}
	if got := sink.count(); got != 1 {
		t.Fatalf("flushes = %d, want 1 merged flush", got)
	}
	if st := e.Stats(); st.DirtyBytes != 0 || st.FlushedBytes != 1100 {
		t.Fatalf("after sync write: dirty=%d flushed=%d, want 0/1100", st.DirtyBytes, st.FlushedBytes)
	}
	if !bytes.Equal(sink.img.Bytes(4), store.files[4]) {
		t.Fatal("stable image differs after sync write")
	}
}

// TestWindowExpiryFlushes verifies the background flusher pushes dirty
// data out once the gather window elapses, without any COMMIT.
func TestWindowExpiryFlushes(t *testing.T) {
	store := newMemStore()
	sink := newRecordingSink()
	e := newEngine(t, store, Config{Window: 20 * time.Millisecond, Sink: sink})

	store.write(5, 0, pattern(4096, 9))
	if _, err := e.Write(5, 0, 4096, Unstable); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("window expired but nothing was flushed")
		}
		time.Sleep(time.Millisecond)
	}
	if !bytes.Equal(sink.img.Bytes(5), store.files[5]) {
		t.Fatal("stable image differs after window flush")
	}
	if st := e.Stats(); st.DirtyBytes != 0 {
		t.Fatalf("dirty = %d after window flush", st.DirtyBytes)
	}
}

// TestMaxFileBytesForcesEarlyFlush checks the per-file byte bound.
func TestMaxFileBytesForcesEarlyFlush(t *testing.T) {
	store := newMemStore()
	sink := newRecordingSink()
	e := newEngine(t, store, Config{Window: time.Hour, MaxFileBytes: 4096, Sink: sink})

	for i := 0; i < 8; i++ {
		store.write(6, uint64(i*1024), pattern(1024, byte(i)))
		if _, err := e.Write(6, uint64(i*1024), 1024, Unstable); err != nil {
			t.Fatal(err)
		}
	}
	if got := sink.count(); got == 0 {
		t.Fatal("per-file bound never forced a flush")
	}
	if st := e.Stats(); st.MaxDirtyBytes > 4096 {
		t.Fatalf("max dirty %d exceeded the 4096 per-file bound", st.MaxDirtyBytes)
	}
}

// TestMaxTotalBytesForcesFlushAll checks the global memory-pressure cap.
func TestMaxTotalBytesForcesFlushAll(t *testing.T) {
	store := newMemStore()
	sink := newRecordingSink()
	e := newEngine(t, store, Config{Window: time.Hour, MaxFileBytes: 1 << 30, MaxTotalBytes: 8192, Sink: sink})

	for fh := uint64(1); fh <= 16; fh++ {
		store.write(fh, 0, pattern(1024, byte(fh)))
		if _, err := e.Write(fh, 0, 1024, Unstable); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.DirtyBytes >= 8192 {
		t.Fatalf("dirty = %d, cap 8192 never enforced", st.DirtyBytes)
	}
	if sink.count() == 0 {
		t.Fatal("memory pressure never flushed")
	}
}

// TestRebootDropsDirtyAndChangesVerifier is the crash contract: dirty
// uncommitted data never reaches the sink, and the verifier changes so
// clients know to re-send.
func TestRebootDropsDirtyAndChangesVerifier(t *testing.T) {
	store := newMemStore()
	sink := newRecordingSink()
	e := newEngine(t, store, Config{Window: time.Hour, Sink: sink})

	v0 := e.Verifier()
	store.write(2, 0, pattern(2048, 5))
	if _, err := e.Write(2, 0, 2048, Unstable); err != nil {
		t.Fatal(err)
	}
	e.Reboot()
	if e.Verifier() == v0 {
		t.Fatal("verifier unchanged across reboot")
	}
	verf, err := e.Commit(2)
	if err != nil {
		t.Fatal(err)
	}
	if verf != e.Verifier() {
		t.Fatal("commit returned a stale verifier")
	}
	if got := sink.count(); got != 0 {
		t.Fatalf("dropped dirty data still reached the sink (%d flushes)", got)
	}
	if len(sink.img.Bytes(2)) != 0 {
		t.Fatal("stable image contains data written only before the crash")
	}
}

// TestCommitReportsAsyncSinkError pins the RFC 1813 error contract:
// a background flush failure surfaces on the next COMMIT.
func TestCommitReportsAsyncSinkError(t *testing.T) {
	store := newMemStore()
	boom := errors.New("disk on fire")
	fail := failingSink{err: boom}
	cfg := Config{Window: 5 * time.Millisecond, Sink: fail, Source: store.source}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	store.write(1, 0, pattern(128, 1))
	if _, err := e.Write(1, 0, 128, Unstable); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := e.Commit(1)
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("commit error = %v, want wrapped %v", err, boom)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("async sink error never surfaced on COMMIT")
		}
		time.Sleep(time.Millisecond)
	}
}

type failingSink struct{ err error }

func (f failingSink) Flush(uint64, uint64, []byte) error { return f.err }

// TestRebootClearsAsyncError pins the recovery protocol: a rebooted
// server has no memory of the old boot's flush failures, so after the
// verifier-change rewrite the client's COMMIT must succeed.
func TestRebootClearsAsyncError(t *testing.T) {
	store := newMemStore()
	boom := errors.New("disk on fire")
	cfg := Config{Window: 2 * time.Millisecond, Sink: failingSink{err: boom}, Source: store.source}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	store.write(1, 0, pattern(128, 1))
	if _, err := e.Write(1, 0, 128, Unstable); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := e.Commit(1); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async sink error never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
	e.Reboot()
	if _, err := e.Commit(1); err != nil {
		t.Fatalf("COMMIT after reboot still fails: %v", err)
	}
}

// TestWriteAfterCloseIsWriteThrough pins Close's documented contract:
// later writes degrade to write-through instead of parking data in a
// queue the departed flusher will never drain.
func TestWriteAfterCloseIsWriteThrough(t *testing.T) {
	store := newMemStore()
	sink := newRecordingSink()
	cfg := Config{Window: time.Hour, Sink: sink, Source: store.source}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	store.write(1, 0, pattern(256, 4))
	committed, err := e.Write(1, 0, 256, Unstable)
	if err != nil {
		t.Fatal(err)
	}
	if committed != FileSync {
		t.Fatalf("post-Close write committed = %d, want FileSync (write-through)", committed)
	}
	if sink.count() != 1 {
		t.Fatalf("post-Close write made %d flushes, want 1", sink.count())
	}
	if !bytes.Equal(sink.img.Bytes(1), store.files[1]) {
		t.Fatal("post-Close write did not reach the sink")
	}
}

// TestConcurrentWritersRace hammers the engine from many goroutines
// (run under -race in CI): concurrent writers on shared and distinct
// files, commits racing the background flusher, and a final commit
// whose image must match the store.
func TestConcurrentWritersRace(t *testing.T) {
	store := newMemStore()
	sink := newRecordingSink()
	e := newEngine(t, store, Config{Window: time.Millisecond, Sink: sink})

	const goroutines = 8
	const writesEach = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fh := uint64(g%4 + 1) // shared across pairs of goroutines
			for i := 0; i < writesEach; i++ {
				off := uint64((g*writesEach + i) % 64 * 64)
				data := pattern(64, byte(g*31+i))
				store.write(fh, off, data)
				if _, err := e.Write(fh, off, 64, Unstable); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 49 {
					if _, err := e.Commit(fh); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for fh := uint64(1); fh <= 4; fh++ {
		if _, err := e.Commit(fh); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.DirtyBytes != 0 {
		t.Fatalf("dirty = %d after final commits", st.DirtyBytes)
	}
}

// TestCloseFlushesRemainingDirty checks orderly shutdown pushes dirty
// data to the sink.
func TestCloseFlushesRemainingDirty(t *testing.T) {
	store := newMemStore()
	sink := newRecordingSink()
	cfg := Config{Window: time.Hour, Sink: sink, Source: store.source}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store.write(1, 0, pattern(512, 3))
	if _, err := e.Write(1, 0, 512, Unstable); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.img.Bytes(1), store.files[1]) {
		t.Fatal("Close did not flush remaining dirty data")
	}
}

// TestSourceRequired pins the constructor contract.
func TestSourceRequired(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a config without a Source")
	}
}

// TestThrottledSinkCharges checks the cost model sleeps.
func TestThrottledSinkCharges(t *testing.T) {
	inner := NewMemSink()
	s := &ThrottledSink{Inner: inner, Latency: 10 * time.Millisecond}
	t0 := time.Now()
	if err := s.Flush(1, 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Fatalf("flush took %v, want >= 10ms", d)
	}
	if !bytes.Equal(inner.Bytes(1), []byte("abc")) {
		t.Fatal("throttled sink did not forward to inner")
	}
}

// TestStatsString smoke-checks that stability accounting by level works
// through the three write kinds.
func TestStabilityAccounting(t *testing.T) {
	store := newMemStore()
	e := newEngine(t, store, Config{Window: time.Minute})
	store.write(1, 0, pattern(64, 0))
	for _, s := range []uint32{Unstable, DataSync, FileSync, 99} {
		if _, err := e.Write(1, 0, 64, s); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.WritesUnstable != 1 || st.WritesDataSync != 1 || st.WritesFileSync != 2 {
		t.Fatalf("stability mix = %d/%d/%d, want 1/1/2 (unknown clamps to FILE_SYNC)",
			st.WritesUnstable, st.WritesDataSync, st.WritesFileSync)
	}
}

// BenchmarkGatherWrite measures the deferred-write hot path: one 8 KB
// unstable write recorded into an existing dirty extent.
func BenchmarkGatherWrite(b *testing.B) {
	store := newMemStore()
	store.write(1, 0, make([]byte, 8192))
	cfg := Config{Window: time.Hour, MaxFileBytes: 1 << 40, MaxTotalBytes: 1 << 40,
		Source: store.source}
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.SetBytes(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Write(1, 0, 8192, Unstable); err != nil {
			b.Fatal(err)
		}
	}
	if st := e.Stats(); st.DirtyBytes != 8192 {
		b.Fatalf("dirty = %d", st.DirtyBytes)
	}
}
