// Package wgather is the server-side write-gathering engine behind the
// live NFS service's asynchronous write path. The paper's server-side
// tricks are two-sided — read-ahead heuristics and gathering/deferring
// writes — and this package is the write half: UNSTABLE writes land in
// the page cache immediately but their stable-storage flush is deferred
// inside a gather window, during which adjacent and overlapping dirty
// ranges coalesce, so a stream of small client writes reaches stable
// storage as a few large flushes instead of one flush per RPC.
//
// The engine tracks per-file dirty extents (the page cache itself —
// memfs — holds the bytes; the engine holds only ranges), bounded three
// ways: a time window (no write stays dirty longer than Config.Window),
// a per-file byte bound (a file accumulating Config.MaxFileBytes of
// dirty data is flushed early) and a global memory-pressure cap
// (Config.MaxTotalBytes across all files forces a full flush). All
// three are first-class, sweepable parameters — the benchmarking-crimes
// literature's complaint about buffering policy silently deciding what
// a benchmark measures is exactly why they are knobs and not constants.
//
// Stable storage is a pluggable Sink: NullSink (stable storage as fast
// as the page cache — the in-memory immediate sink), MemSink (retains
// the flushed bytes, so tests can check exactly what would survive a
// crash) and ThrottledSink (a bandwidth/latency cost model, so
// gathering has something real to win against).
//
// A Window of 0 disables gathering entirely: every write, whatever its
// requested stability, is flushed through the sink before the reply —
// the synchronous behaviour the live server had before this engine
// existed.
package wgather

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stability levels, wire-compatible with nfsproto.WriteUnstable et al.
// (redeclared so the engine has no protocol dependency).
const (
	Unstable = 0
	DataSync = 1
	FileSync = 2
)

// Sink is stable storage: Flush persists one coalesced extent. The
// engine may call Flush from its background flusher and from request
// goroutines concurrently, but never concurrently for the same file.
type Sink interface {
	Flush(fh uint64, off uint64, data []byte) error
}

// NullSink is the immediate in-memory sink: stable storage costs
// nothing beyond the page cache the data already sits in.
type NullSink struct{}

// Flush is a no-op.
func (NullSink) Flush(uint64, uint64, []byte) error { return nil }

// MemSink is an in-memory sink that retains what was flushed, byte for
// byte. It is the observable "disk" of the crash/rewrite tests: data a
// client wrote UNSTABLE but never committed is absent from it after a
// Reboot, and present again once the client detects the verifier change
// and rewrites.
type MemSink struct {
	mu    sync.Mutex
	files map[uint64][]byte
}

// NewMemSink returns an empty sink.
func NewMemSink() *MemSink {
	return &MemSink{files: make(map[uint64][]byte)}
}

// Flush stores the extent, extending the stable image as needed.
func (m *MemSink) Flush(fh uint64, off uint64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := m.files[fh]
	if need := off + uint64(len(data)); need > uint64(len(img)) {
		grown := make([]byte, need)
		copy(grown, img)
		img = grown
	}
	copy(img[off:], data)
	m.files[fh] = img
	return nil
}

// Bytes returns a copy of the stable image of fh.
func (m *MemSink) Bytes(fh uint64) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.files[fh]...)
}

// ThrottledSink charges a fixed per-flush latency plus a bandwidth cost
// per byte before delegating to Inner — the cost model of a disk whose
// seek/sync overhead is what write-gathering amortizes. A FILE_SYNC
// workload pays Latency once per RPC; a gathered workload pays it once
// per coalesced extent.
type ThrottledSink struct {
	// Inner receives the flushed data (nil = discard).
	Inner Sink
	// Latency is the fixed cost per Flush call.
	Latency time.Duration
	// BytesPerSec is the transfer bandwidth (0 = infinite).
	BytesPerSec float64
}

// Flush sleeps out the cost model, then delegates.
func (t *ThrottledSink) Flush(fh uint64, off uint64, data []byte) error {
	d := t.Latency
	if t.BytesPerSec > 0 {
		d += time.Duration(float64(len(data)) / t.BytesPerSec * float64(time.Second))
	}
	if d > 0 {
		time.Sleep(d)
	}
	if t.Inner == nil {
		return nil
	}
	return t.Inner.Flush(fh, off, data)
}

// Config parameterizes an Engine. The zero value (plus a Source) is a
// valid write-through configuration: Window 0, NullSink.
type Config struct {
	// Window is the gather window: the longest an UNSTABLE write may
	// stay dirty before the background flusher pushes it to the sink.
	// 0 disables gathering — every write is flushed synchronously.
	Window time.Duration
	// MaxFileBytes flushes a file early once its dirty extents hold
	// this many bytes (0 = DefaultMaxFileBytes).
	MaxFileBytes int64
	// MaxTotalBytes is the memory-pressure cap: when dirty bytes across
	// all files reach it, everything is flushed (0 = DefaultMaxTotalBytes).
	MaxTotalBytes int64
	// Sink is stable storage (nil = NullSink).
	Sink Sink
	// Source reads current file data for a flush — the page cache the
	// engine defers writes of. Required.
	Source func(fh, off uint64, count uint32) ([]byte, error)
	// Verifier seeds the write verifier (0 = derived from the clock, a
	// real boot cookie).
	Verifier uint64
}

// Default byte bounds (see Config).
const (
	DefaultMaxFileBytes  = 1 << 20
	DefaultMaxTotalBytes = 16 << 20
)

// flushChunk bounds one Source read / Sink.Flush call, so an enormous
// coalesced extent streams through bounded memory.
const flushChunk = 1 << 20

// verifierStep is the odd constant a Reboot adds to the verifier —
// any nonzero step proves "changed" to clients; an odd one never cycles
// back to a previous value within 2^64 reboots.
const verifierStep = 0x9e3779b97f4a7c15

// Stats is a snapshot of the engine's counters. Counters are
// independent atomics; see memfs.ServiceStats for the torn-snapshot
// caveat under load.
type Stats struct {
	// WritesUnstable/DataSync/FileSync count Write calls by requested
	// stability.
	WritesUnstable int64
	WritesDataSync int64
	WritesFileSync int64
	// Commits counts Commit calls.
	Commits int64
	// Flushes counts Sink.Flush calls; FlushedBytes the bytes they
	// carried.
	Flushes      int64
	FlushedBytes int64
	// GatheredBytes counts UNSTABLE bytes accepted into the dirty set;
	// CoalescedBytes is the portion absorbed by already-dirty ranges
	// (overlap rewrites) — gathered minus net-new dirty bytes.
	GatheredBytes  int64
	CoalescedBytes int64
	// DirtyBytes is the current dirty total; MaxDirtyBytes its
	// high-water mark.
	DirtyBytes    int64
	MaxDirtyBytes int64
	// Reboots counts simulated server restarts (verifier changes).
	Reboots int64
}

// extent is one dirty range, [off, end).
type extent struct{ off, end uint64 }

// fileState tracks one file's dirty extents. The extents slice and
// dirty count are guarded by the engine mutex; flushMu serializes sink
// flushes of this file (held across Source reads and Sink calls, so a
// Commit waiting on it returns only after in-flight flushes land).
type fileState struct {
	flushMu sync.Mutex
	extents []extent
	dirty   int64
	queued  bool // an entry for this file sits in the flusher queue
}

// flushEntry is one deferred flush: fh's dirty data is due at deadline.
type flushEntry struct {
	fh       uint64
	deadline time.Time
}

// Engine gathers writes. Safe for concurrent use.
type Engine struct {
	cfg  Config
	verf atomic.Uint64

	mu         sync.Mutex
	files      map[uint64]*fileState
	dirtyTotal int64
	asyncErr   error // first background flush error; reported by Commit
	closed     bool

	// queue feeds the background flusher; entries carry non-decreasing
	// deadlines (every file gets now+Window on its clean→dirty edge).
	queue   chan flushEntry
	stop    chan struct{}
	flusher sync.Once // starts the goroutine on first deferred write
	wg      sync.WaitGroup

	writes       [3]atomic.Int64
	commits      atomic.Int64
	flushes      atomic.Int64
	flushedBytes atomic.Int64
	gathered     atomic.Int64
	coalesced    atomic.Int64
	maxDirty     atomic.Int64
	reboots      atomic.Int64
}

// New builds an engine. Config.Source is required.
func New(cfg Config) (*Engine, error) {
	if cfg.Source == nil {
		return nil, errors.New("wgather: Config.Source is required")
	}
	if cfg.Sink == nil {
		cfg.Sink = NullSink{}
	}
	if cfg.MaxFileBytes <= 0 {
		cfg.MaxFileBytes = DefaultMaxFileBytes
	}
	if cfg.MaxTotalBytes <= 0 {
		cfg.MaxTotalBytes = DefaultMaxTotalBytes
	}
	if cfg.Verifier == 0 {
		cfg.Verifier = uint64(time.Now().UnixNano()) | 1
	}
	e := &Engine{
		cfg:   cfg,
		files: make(map[uint64]*fileState),
		queue: make(chan flushEntry, 4096),
		stop:  make(chan struct{}),
	}
	e.verf.Store(cfg.Verifier)
	return e, nil
}

// Verifier returns the current write verifier (boot cookie).
func (e *Engine) Verifier() uint64 { return e.verf.Load() }

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	dirty := e.dirtyTotal
	e.mu.Unlock()
	return Stats{
		WritesUnstable: e.writes[Unstable].Load(),
		WritesDataSync: e.writes[DataSync].Load(),
		WritesFileSync: e.writes[FileSync].Load(),
		Commits:        e.commits.Load(),
		Flushes:        e.flushes.Load(),
		FlushedBytes:   e.flushedBytes.Load(),
		GatheredBytes:  e.gathered.Load(),
		CoalescedBytes: e.coalesced.Load(),
		DirtyBytes:     dirty,
		MaxDirtyBytes:  e.maxDirty.Load(),
		Reboots:        e.reboots.Load(),
	}
}

// file returns fh's state, creating it. Caller holds e.mu.
func (e *Engine) file(fh uint64) *fileState {
	f := e.files[fh]
	if f == nil {
		f = &fileState{}
		e.files[fh] = f
	}
	return f
}

// insert merges [off, end) into f's extent set (adjacent and
// overlapping ranges coalesce) and returns the net-new dirty bytes.
// Caller holds e.mu.
func (f *fileState) insert(off, end uint64) int64 {
	ext := f.extents
	// First extent that could touch [off, end): ext.end >= off (== is
	// adjacency, which also merges).
	i := sort.Search(len(ext), func(i int) bool { return ext[i].end >= off })
	// Last merge candidate: extents with ext.off <= end.
	j := i
	merged := extent{off: off, end: end}
	var overlap int64
	for j < len(ext) && ext[j].off <= end {
		if ext[j].off < merged.off {
			merged.off = ext[j].off
		}
		if ext[j].end > merged.end {
			merged.end = ext[j].end
		}
		// Overlap of the new range with this existing extent.
		lo, hi := ext[j].off, ext[j].end
		if off > lo {
			lo = off
		}
		if end < hi {
			hi = end
		}
		if hi > lo {
			overlap += int64(hi - lo)
		}
		j++
	}
	added := int64(end-off) - overlap
	if i == j {
		// No merge: splice the new extent in at i.
		ext = append(ext, extent{})
		copy(ext[i+1:], ext[i:])
		ext[i] = merged
	} else {
		ext[i] = merged
		ext = append(ext[:i+1], ext[j:]...)
	}
	f.extents = ext
	f.dirty += added
	return added
}

// takeOverlapping removes and returns the extents intersecting or
// adjacent to [off, end), updating dirty accounting. Caller holds e.mu.
func (e *Engine) takeOverlapping(f *fileState, off, end uint64) []extent {
	ext := f.extents
	i := sort.Search(len(ext), func(i int) bool { return ext[i].end >= off })
	j := i
	for j < len(ext) && ext[j].off <= end {
		j++
	}
	if i == j {
		return nil
	}
	taken := append([]extent(nil), ext[i:j]...)
	f.extents = append(ext[:i], ext[j:]...)
	for _, t := range taken {
		f.dirty -= int64(t.end - t.off)
		e.dirtyTotal -= int64(t.end - t.off)
	}
	return taken
}

// takeAll removes and returns every dirty extent of f. Caller holds e.mu.
func (e *Engine) takeAll(f *fileState) []extent {
	if len(f.extents) == 0 {
		return nil
	}
	taken := f.extents
	f.extents = nil
	e.dirtyTotal -= f.dirty
	f.dirty = 0
	return taken
}

// flushExtents reads each extent from the source and pushes it through
// the sink. Caller holds f.flushMu (never e.mu).
func (e *Engine) flushExtents(fh uint64, exts []extent) error {
	for _, x := range exts {
		for off := x.off; off < x.end; {
			n := x.end - off
			if n > flushChunk {
				n = flushChunk
			}
			data, err := e.cfg.Source(fh, off, uint32(n))
			if err != nil {
				return fmt.Errorf("wgather: source: %w", err)
			}
			if len(data) == 0 {
				// The page cache holds less than the dirty range claims
				// (a reboot raced the flush); nothing left to persist.
				break
			}
			if err := e.cfg.Sink.Flush(fh, off, data); err != nil {
				return fmt.Errorf("wgather: sink: %w", err)
			}
			e.flushes.Add(1)
			e.flushedBytes.Add(int64(len(data)))
			off += uint64(len(data))
		}
	}
	return nil
}

// Write records one completed page-cache write of n bytes at off and
// returns the stability level the reply should advertise. The data
// itself must already be applied to the store Config.Source reads —
// the engine tracks only the dirty range.
//
// UNSTABLE writes (with a nonzero Window) are deferred: the range joins
// the file's dirty extents and is flushed by COMMIT, by the gather
// window expiring, or by a byte bound. DATA_SYNC and FILE_SYNC writes —
// and every write when Window is 0 — are flushed before returning,
// together with any already-dirty extents they touch, and advertise
// FILE_SYNC (the server achieved more than DATA_SYNC asked for).
func (e *Engine) Write(fh, off uint64, n uint32, stable uint32) (committed uint32, err error) {
	if stable > FileSync {
		stable = FileSync
	}
	e.writes[stable].Add(1)
	end := off + uint64(n)

	if e.cfg.Window <= 0 || stable != Unstable {
		return FileSync, e.flushRange(fh, off, end)
	}

	e.mu.Lock()
	if e.closed {
		// The flusher is gone; deferring now would park data in a queue
		// nobody drains. Degrade to write-through, as Close documents.
		e.mu.Unlock()
		return FileSync, e.flushRange(fh, off, end)
	}
	e.gathered.Add(int64(n))
	f := e.file(fh)
	wasClean := f.dirty == 0
	added := f.insert(off, end)
	e.dirtyTotal += added
	e.coalesced.Add(int64(n) - added)
	for {
		cur := e.maxDirty.Load()
		if e.dirtyTotal <= cur || e.maxDirty.CompareAndSwap(cur, e.dirtyTotal) {
			break
		}
	}
	enqueue := wasClean && f.dirty > 0 && !f.queued
	if enqueue {
		f.queued = true
	}
	fileOver := f.dirty >= e.cfg.MaxFileBytes
	totalOver := e.dirtyTotal >= e.cfg.MaxTotalBytes
	e.mu.Unlock()

	if enqueue {
		e.startFlusher()
		select {
		case e.queue <- flushEntry{fh: fh, deadline: time.Now().Add(e.cfg.Window)}:
		default:
			// Queue full — memory pressure by another name; flush now.
			e.mu.Lock()
			f.queued = false
			e.mu.Unlock()
			return Unstable, e.flushFile(fh)
		}
	}
	if totalOver {
		return Unstable, e.FlushAll()
	}
	if fileOver {
		return Unstable, e.flushFile(fh)
	}
	return Unstable, nil
}

// Commit flushes every dirty extent of fh to the sink and returns the
// write verifier the reply must carry. A first background-flush error,
// if any, is reported here — COMMIT is where RFC 1813 surfaces
// asynchronous write failures.
func (e *Engine) Commit(fh uint64) (verf uint64, err error) {
	e.commits.Add(1)
	err = e.flushFile(fh)
	e.mu.Lock()
	if err == nil {
		err = e.asyncErr
	}
	e.mu.Unlock()
	return e.verf.Load(), err
}

// flushRange synchronously flushes [off, end) plus any dirty extents it
// touches (their union is one contiguous interval).
func (e *Engine) flushRange(fh, off, end uint64) error {
	e.mu.Lock()
	f := e.file(fh)
	e.mu.Unlock()
	f.flushMu.Lock()
	defer f.flushMu.Unlock()
	e.mu.Lock()
	taken := e.takeOverlapping(f, off, end)
	e.mu.Unlock()
	for _, t := range taken {
		if t.off < off {
			off = t.off
		}
		if t.end > end {
			end = t.end
		}
	}
	if end == off {
		return nil
	}
	return e.flushExtents(fh, []extent{{off: off, end: end}})
}

// flushFile flushes all of fh's dirty extents.
func (e *Engine) flushFile(fh uint64) error {
	e.mu.Lock()
	f := e.files[fh]
	e.mu.Unlock()
	if f == nil {
		return nil
	}
	f.flushMu.Lock()
	defer f.flushMu.Unlock()
	e.mu.Lock()
	taken := e.takeAll(f)
	e.mu.Unlock()
	if len(taken) == 0 {
		return nil
	}
	return e.flushExtents(fh, taken)
}

// FlushAll flushes every file's dirty extents (memory pressure, orderly
// shutdown).
func (e *Engine) FlushAll() error {
	e.mu.Lock()
	fhs := make([]uint64, 0, len(e.files))
	for fh, f := range e.files {
		if f.dirty > 0 {
			fhs = append(fhs, fh)
		}
	}
	e.mu.Unlock()
	var first error
	for _, fh := range fhs {
		if err := e.flushFile(fh); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// startFlusher launches the background flusher on the first deferred
// write, so write-through engines never spawn a goroutine.
func (e *Engine) startFlusher() {
	e.flusher.Do(func() {
		e.wg.Add(1)
		go e.runFlusher()
	})
}

// runFlusher drains the deadline queue: entries arrive in deadline
// order (every file gets now+Window on its clean→dirty edge), so the
// head is always the next expiry.
func (e *Engine) runFlusher() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stop:
			return
		case ent := <-e.queue:
			if d := time.Until(ent.deadline); d > 0 {
				select {
				case <-e.stop:
					return // Close flushes everything itself
				case <-time.After(d):
				}
			}
			e.mu.Lock()
			if f := e.files[ent.fh]; f != nil {
				f.queued = false
			}
			e.mu.Unlock()
			if err := e.flushFile(ent.fh); err != nil {
				e.mu.Lock()
				if e.asyncErr == nil {
					e.asyncErr = err
				}
				e.mu.Unlock()
			}
		}
	}
}

// Forget drops fh's dirty extents without flushing them — the file is
// being replaced or removed, so there is nothing left worth
// persisting. Without this, a flush racing the removal would read a
// stale handle from the Source and latch a permanent asynchronous
// error.
func (e *Engine) Forget(fh uint64) {
	e.mu.Lock()
	if f := e.files[fh]; f != nil {
		e.takeAll(f)
	}
	e.mu.Unlock()
}

// Reboot simulates a server crash and restart: every uncommitted dirty
// extent is dropped without reaching the sink and the write verifier
// changes, which is exactly the signal that tells clients to re-send
// writes issued since their last successful COMMIT (RFC 1813 §3.3.7).
func (e *Engine) Reboot() {
	e.mu.Lock()
	for _, f := range e.files {
		f.extents = nil
		f.dirty = 0
		f.queued = false
	}
	e.dirtyTotal = 0
	// A rebooted server has no memory of the old boot's flush failures;
	// keeping the sticky error would make every post-recovery COMMIT
	// fail and defeat the verifier-change rewrite protocol.
	e.asyncErr = nil
	e.mu.Unlock()
	e.verf.Add(verifierStep)
	e.reboots.Add(1)
}

// Close stops the background flusher and flushes all remaining dirty
// data. The engine is unusable afterwards for deferred writes (pending
// queue entries are dropped), but Write/Commit still work in
// write-through fashion.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stop)
	e.wg.Wait()
	err := e.FlushAll()
	e.mu.Lock()
	if err == nil {
		err = e.asyncErr
	}
	e.mu.Unlock()
	return err
}
