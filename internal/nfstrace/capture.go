package nfstrace

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"nfstricks/internal/nfsproto"
	"nfstricks/internal/rpcnet"
	"nfstricks/internal/sunrpc"
	"nfstricks/internal/tracefile"
	"nfstricks/internal/xdr"
)

// Capture turns a live server's rpcnet tap events into tracefile
// records: it decodes the NFS-level fields (file handle, offset, count)
// from each request body, reads the NFS status off the reply, and
// appends one record per served RPC to a tracefile.Writer. Install it
// with rpcnet.NewServerTap (or memfs.NewServerTap):
//
//	w, _ := tracefile.Create("out.nft", time.Now())
//	cap := nfstrace.NewCapture(w)
//	srv, _ := memfs.NewServerTap(addr, svc, cap.Tap)
//	...
//	cap.Close() // flush; then close w's file via w or cap
//
// Capture is safe for concurrent use: tap events arrive from every
// serving goroutine and are serialized onto the writer under one lock.
type Capture struct {
	mu    sync.Mutex
	w     *tracefile.Writer
	start time.Time
	err   error
	total int64
	// streams tracks each stream's recently seen XIDs so a
	// retransmission (same stream, same XID again) is recorded
	// distinctly (tracefile.StatusRetransmit) instead of posing as
	// fresh offered load.
	streams map[uint32]*xidWindow
	retrans int64
}

// captureXIDWindow is how many recent XIDs per stream a capture
// remembers for retransmission detection. A retransmit interval spans
// at most a few hundred in-flight calls; an XID falling out of the
// window just means a (very) late retransmission records as fresh.
const captureXIDWindow = 256

// captureMaxStreams bounds the stream map on a long-running capture
// facing UDP peer churn (same policy as rpcnet's stream-id map: reset,
// never grow forever).
const captureMaxStreams = 4096

// xidWindow is one stream's recent-XID set with FIFO eviction.
type xidWindow struct {
	seen map[uint32]struct{}
	fifo [captureXIDWindow]uint32
	n    int // total inserted; fifo slot = n % captureXIDWindow
}

// observe reports whether xid was recently seen on the stream,
// inserting it if not.
func (w *xidWindow) observe(xid uint32) bool {
	if _, ok := w.seen[xid]; ok {
		return true
	}
	if w.n >= captureXIDWindow {
		delete(w.seen, w.fifo[w.n%captureXIDWindow])
	}
	w.fifo[w.n%captureXIDWindow] = xid
	w.seen[xid] = struct{}{}
	w.n++
	return false
}

// NewCapture wraps w, timestamping records relative to the writer's
// own header origin (w.Start()), so file header and record offsets
// always agree. NewCaptureAt overrides the origin for tests or trace
// rewriting.
func NewCapture(w *tracefile.Writer) *Capture {
	return NewCaptureAt(w, w.Start())
}

// NewCaptureAt is NewCapture with an explicit time origin (records
// store arrival time minus start).
func NewCaptureAt(w *tracefile.Writer, start time.Time) *Capture {
	return &Capture{w: w, start: start, streams: make(map[uint32]*xidWindow)}
}

// Tap is the rpcnet.Tap. It parses the event and appends a record; the
// event's buffers are consumed before returning, per the tap contract.
func (c *Capture) Tap(ev rpcnet.TapEvent) {
	rec := tracefile.Record{
		When:    ev.When.Sub(c.start),
		Stream:  ev.Stream,
		Proc:    ev.Proc,
		Latency: ev.Latency,
	}
	rec.FH, rec.Offset, rec.Count, rec.Stable = parseArgs(ev.Proc, ev.Body)
	if ev.Stat != sunrpc.AcceptSuccess {
		rec.Status = tracefile.StatusRPCError | ev.Stat
	} else if ev.Proc != nfsproto.ProcNull && len(ev.Result) >= 4 {
		// Every non-NULL NFS3 result opens with its nfsstat3.
		rec.Status = binary.BigEndian.Uint32(ev.Result)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	win := c.streams[ev.Stream]
	if win == nil {
		if len(c.streams) >= captureMaxStreams {
			c.streams = make(map[uint32]*xidWindow)
		}
		win = &xidWindow{seen: make(map[uint32]struct{})}
		c.streams[ev.Stream] = win
	}
	if win.observe(ev.XID) {
		rec.Status |= tracefile.StatusRetransmit
		c.retrans++
	}
	c.err = c.w.Append(rec)
	if c.err == nil {
		c.total++
	}
}

// parseArgs decodes the handle/offset/count (and, for WRITE, the
// requested stability) a procedure's arguments carry (zero for
// procedures without the field). The decode mirrors nfsproto's
// Unmarshal*Args but stops at the traced fields, so capture never
// copies a WRITE payload.
func parseArgs(proc uint32, body []byte) (fh uint64, offset uint64, count uint32, stable uint32) {
	d := xdr.NewDecoder(body)
	readFH := func() uint64 {
		b := d.OpaqueView(64)
		if len(b) != 8 {
			return 0
		}
		return binary.BigEndian.Uint64(b)
	}
	switch proc {
	case nfsproto.ProcGetattr, nfsproto.ProcLookup, nfsproto.ProcAccess,
		nfsproto.ProcCreate, nfsproto.ProcFsstat,
		nfsproto.ProcMkdir, nfsproto.ProcRemove, nfsproto.ProcRename:
		// First field is the (directory) handle; names and access bits
		// are not traced. RENAME records its from-directory.
		fh = readFH()
	case nfsproto.ProcSetattr:
		// The requested size rides in Offset so analyze/replay can see
		// truncations without a new record field.
		fh = readFH()
		d.Bool() // set_size discriminant (always true on our wire)
		offset = d.Uint64()
	case nfsproto.ProcRead, nfsproto.ProcCommit:
		fh = readFH()
		offset = d.Uint64()
		count = d.Uint32()
	case nfsproto.ProcWrite:
		fh = readFH()
		offset = d.Uint64()
		count = d.Uint32()
		stable = d.Uint32()
	case nfsproto.ProcReaddir:
		// Cookie rides in Offset; the verifier is not traced (replay
		// starts scans fresh anyway).
		fh = readFH()
		offset = d.Uint64()
		d.Uint64() // cookieverf
		count = d.Uint32()
	case nfsproto.ProcReaddirplus:
		fh = readFH()
		offset = d.Uint64()
		d.Uint64()         // cookieverf
		d.Uint32()         // dircount
		count = d.Uint32() // maxcount
	}
	if d.Err() != nil {
		return 0, 0, 0, 0
	}
	return fh, offset, count, stable
}

// Total reports how many records were captured.
func (c *Capture) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Retransmits reports how many captured records were recognized as
// retransmissions (tagged tracefile.StatusRetransmit).
func (c *Capture) Retransmits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retrans
}

// Err reports the first writer error, if any; records after it were
// dropped.
func (c *Capture) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close flushes and closes the underlying writer. The server should be
// closed (or the tap quiesced) first; late events after Close are
// dropped.
func (c *Capture) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.w.Close()
	if c.err == nil {
		c.err = err
	}
	return c.err
}

// FromTracefile converts captured on-disk records to analyzer records,
// so Analyze, OpMix and InterarrivalStats run identically on live
// traces and on simulator traces. The file stores records in completion
// order; the analyzers measure the server-observed arrival order, so
// the records are stable-sorted by arrival time first (without this, a
// pipelined capture would charge its own completion jitter as request
// reordering).
func FromTracefile(recs []tracefile.Record) []Record {
	byArrival := append([]tracefile.Record(nil), recs...)
	sort.SliceStable(byArrival, func(i, j int) bool { return byArrival[i].When < byArrival[j].When })
	out := make([]Record, len(byArrival))
	for i, r := range byArrival {
		out[i] = Record{
			When:   r.When,
			Proc:   r.Proc,
			FH:     r.FH,
			Offset: r.Offset,
			Count:  r.Count,
			Stable: r.Stable,
		}
	}
	return out
}

// WriteStabilityMix tallies a capture's WRITE records by requested
// stability level (index by nfsproto.WriteUnstable/DataSync/FileSync).
// Stability levels beyond FILE_SYNC — impossible from a conforming
// client — count as FILE_SYNC, matching how the server clamps them.
func WriteStabilityMix(recs []tracefile.Record) (mix [3]int64) {
	for _, r := range recs {
		if r.Proc != nfsproto.ProcWrite {
			continue
		}
		s := r.Stable
		if s > nfsproto.WriteFileSync {
			s = nfsproto.WriteFileSync
		}
		mix[s]++
	}
	return mix
}

// FormatWriteStabilityMix renders a stability mix compactly.
func FormatWriteStabilityMix(mix [3]int64) string {
	return fmt.Sprintf("%s:%d %s:%d %s:%d",
		nfsproto.StableName(nfsproto.WriteUnstable), mix[nfsproto.WriteUnstable],
		nfsproto.StableName(nfsproto.WriteDataSync), mix[nfsproto.WriteDataSync],
		nfsproto.StableName(nfsproto.WriteFileSync), mix[nfsproto.WriteFileSync])
}

// CommitDistanceStats summarizes how far WRITEs sit from the COMMIT
// that makes them stable — the client-side shape of the asynchronous
// write pipeline. Distance is measured in requests: how many of the
// same stream's subsequent requests arrive before a COMMIT on the same
// file handle (0 = the very next request is the COMMIT). WRITEs never
// followed by a COMMIT on their handle are Uncommitted — for UNSTABLE
// writes that is data the server was still free to lose when the
// capture ended.
type CommitDistanceStats struct {
	Writes      int64
	Committed   int64
	Uncommitted int64
	MeanOps     float64
	P50Ops      int
	MaxOps      int
}

// String renders the stats on one line.
func (s CommitDistanceStats) String() string {
	return fmt.Sprintf("writes=%d committed=%d uncommitted=%d distance mean=%.1f p50=%d max=%d",
		s.Writes, s.Committed, s.Uncommitted, s.MeanOps, s.P50Ops, s.MaxOps)
}

// CommitDistances computes the WRITE→COMMIT distance distribution over
// a capture. Records are processed per stream in arrival order, so a
// pipelined capture's completion jitter does not distort distances.
func CommitDistances(recs []tracefile.Record) CommitDistanceStats {
	byArrival := append([]tracefile.Record(nil), recs...)
	sort.SliceStable(byArrival, func(i, j int) bool { return byArrival[i].When < byArrival[j].When })

	// Per-stream request index and, per (stream, fh), the indices of
	// writes awaiting a commit.
	type key struct {
		stream uint32
		fh     uint64
	}
	idx := make(map[uint32]int)
	pending := make(map[key][]int)
	var st CommitDistanceStats
	var dists []int
	for _, r := range byArrival {
		i := idx[r.Stream]
		idx[r.Stream] = i + 1
		switch r.Proc {
		case nfsproto.ProcWrite:
			st.Writes++
			k := key{r.Stream, r.FH}
			pending[k] = append(pending[k], i)
		case nfsproto.ProcCommit:
			k := key{r.Stream, r.FH}
			for _, wi := range pending[k] {
				dists = append(dists, i-wi-1)
			}
			delete(pending, k)
		}
	}
	st.Committed = int64(len(dists))
	st.Uncommitted = st.Writes - st.Committed
	if len(dists) == 0 {
		return st
	}
	sort.Ints(dists)
	var sum int64
	for _, d := range dists {
		sum += int64(d)
	}
	st.MeanOps = float64(sum) / float64(len(dists))
	st.P50Ops = dists[len(dists)/2]
	st.MaxOps = dists[len(dists)-1]
	return st
}

// FromFile reads a captured .nft trace into analyzer records — the
// FromFile path that lets the reordering/sequentiality analyzers run on
// captured live traffic instead of only on the simulated kernel.
func FromFile(path string) ([]Record, error) {
	_, recs, err := tracefile.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromTracefile(recs), nil
}

// AnalyzeFile runs the paper's reordering/sequentiality analysis over a
// captured trace file's READ records.
func AnalyzeFile(path string) (Analysis, error) {
	recs, err := FromFile(path)
	if err != nil {
		return Analysis{}, err
	}
	return Analyze(recs, nfsproto.ProcRead), nil
}
