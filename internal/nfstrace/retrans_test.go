package nfstrace

import (
	"bytes"
	"testing"
	"time"

	"nfstricks/internal/rpcnet"
	"nfstricks/internal/sunrpc"
	"nfstricks/internal/tracefile"
)

// tapEvent builds a minimal successful GETATTR-ish event.
func tapEvent(stream, xid uint32, at time.Duration, start time.Time) rpcnet.TapEvent {
	return rpcnet.TapEvent{
		When:   start.Add(at),
		Stream: stream,
		XID:    xid,
		Proc:   1,
		Stat:   sunrpc.AcceptSuccess,
		Result: []byte{0, 0, 0, 0}, // nfsstat3 OK
	}
}

// TestCaptureTagsRetransmissions: a repeated (stream, XID) records with
// StatusRetransmit set; fresh XIDs and the same XID on a different
// stream do not. The flag composes with the NFS status so replay/info
// can mask it back off.
func TestCaptureTagsRetransmissions(t *testing.T) {
	var buf bytes.Buffer
	start := time.Now()
	w, err := tracefile.NewWriter(&buf, start)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCaptureAt(w, start)

	c.Tap(tapEvent(1, 100, 1*time.Millisecond, start)) // fresh
	c.Tap(tapEvent(1, 101, 2*time.Millisecond, start)) // fresh
	c.Tap(tapEvent(1, 100, 3*time.Millisecond, start)) // retransmission
	c.Tap(tapEvent(2, 100, 4*time.Millisecond, start)) // same XID, other stream: fresh
	c.Tap(tapEvent(1, 100, 5*time.Millisecond, start)) // retransmission again

	if got := c.Retransmits(); got != 2 {
		t.Fatalf("Retransmits() = %d, want 2", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := tracefile.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("%d records, want 5", len(recs))
	}
	wantFlag := []bool{false, false, true, false, true}
	for i, rec := range recs {
		if got := rec.Status&tracefile.StatusRetransmit != 0; got != wantFlag[i] {
			t.Errorf("record %d: retransmit flag %v, want %v", i, got, wantFlag[i])
		}
		if rec.Status&^uint32(tracefile.StatusFlags) != 0 {
			t.Errorf("record %d: NFS status %#x corrupted by flag", i, rec.Status&^uint32(tracefile.StatusFlags))
		}
	}
}

// TestCaptureXIDWindowEvicts: an XID older than the window records as
// fresh when it finally retransmits — the documented trade of the
// bounded window.
func TestCaptureXIDWindowEvicts(t *testing.T) {
	var buf bytes.Buffer
	start := time.Now()
	w, err := tracefile.NewWriter(&buf, start)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCaptureAt(w, start)
	c.Tap(tapEvent(1, 7, 0, start))
	// Flood the window until XID 7 is evicted.
	for i := 0; i < captureXIDWindow; i++ {
		c.Tap(tapEvent(1, 1000+uint32(i), time.Duration(i)*time.Microsecond, start))
	}
	c.Tap(tapEvent(1, 7, time.Millisecond, start))
	if got := c.Retransmits(); got != 0 {
		t.Fatalf("Retransmits() = %d, want 0 (the duplicate fell out of the window)", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
