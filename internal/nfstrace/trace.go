// Package nfstrace records and analyzes NFS request streams, in the
// spirit of the passive-tracing study ("Passive NFS Tracing of Email
// and Research Workloads", FAST '03) that motivated the paper: the
// authors noticed in traces that "many NFS requests arrive at the
// server in a different order than originally intended by the client"
// and built SlowDown in response. The tracer hooks the simulated
// server, and the analyzer computes exactly the metrics the paper
// cites: per-file request-reordering fractions and sequentiality runs.
package nfstrace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Record is one traced NFS request.
type Record struct {
	When   time.Duration // virtual arrival time at the server
	Proc   uint32        // NFS procedure number
	FH     uint64
	Offset uint64
	Count  uint32
	Stable uint32 // requested write stability (WRITE records)
}

// Tracer collects records; a zero Tracer is ready to use. A Limit > 0
// caps memory by keeping only the most recent records (ring buffer).
type Tracer struct {
	Limit   int
	records []Record
	start   int // ring start when wrapped
	total   int64
}

// Add appends a record.
func (t *Tracer) Add(r Record) {
	t.total++
	if t.Limit <= 0 || len(t.records) < t.Limit {
		t.records = append(t.records, r)
		return
	}
	t.records[t.start] = r
	t.start = (t.start + 1) % t.Limit
}

// Total reports how many records were ever added.
func (t *Tracer) Total() int64 { return t.total }

// Records returns the retained records in arrival order.
func (t *Tracer) Records() []Record {
	if t.start == 0 {
		return append([]Record(nil), t.records...)
	}
	out := make([]Record, 0, len(t.records))
	out = append(out, t.records[t.start:]...)
	out = append(out, t.records[:t.start]...)
	return out
}

// Reset discards all records.
func (t *Tracer) Reset() {
	t.records = t.records[:0]
	t.start = 0
	t.total = 0
}

// Analysis summarizes a trace of READ requests.
type Analysis struct {
	Reads          int64
	Files          int
	Reordered      int64   // reads whose offset regressed within their file
	ReorderFrac    float64 // Reordered / Reads
	MeanRunBlocks  float64 // mean length of strictly sequential runs
	SequentialFrac float64 // fraction of reads continuing the previous one
}

// Analyze computes reordering and sequentiality metrics over the READ
// records of a trace, per file handle, in arrival order — the paper's
// §6 measurement ("we were unable to exceed 6% request reordering on
// UDP and 2% on TCP").
func Analyze(records []Record, readProc uint32) Analysis {
	type fileState struct {
		maxEnd  uint64
		nextOff uint64
		haveOff bool
	}
	files := make(map[uint64]*fileState)
	var a Analysis
	var runLen int64
	var runs []int64

	for _, r := range records {
		if r.Proc != readProc {
			continue
		}
		a.Reads++
		st := files[r.FH]
		if st == nil {
			st = &fileState{}
			files[r.FH] = st
		}
		if st.haveOff && r.Offset < st.maxEnd {
			a.Reordered++
		}
		if st.haveOff && r.Offset == st.nextOff {
			a.SequentialFrac++ // counted; normalized below
			runLen++
		} else {
			if runLen > 0 {
				runs = append(runs, runLen)
			}
			runLen = 1
		}
		st.nextOff = r.Offset + uint64(r.Count)
		if st.nextOff > st.maxEnd {
			st.maxEnd = st.nextOff
		}
		st.haveOff = true
	}
	if runLen > 0 {
		runs = append(runs, runLen)
	}
	a.Files = len(files)
	if a.Reads > 0 {
		a.ReorderFrac = float64(a.Reordered) / float64(a.Reads)
		a.SequentialFrac = a.SequentialFrac / float64(a.Reads)
	}
	if len(runs) > 0 {
		var sum int64
		for _, r := range runs {
			sum += r
		}
		a.MeanRunBlocks = float64(sum) / float64(len(runs))
	}
	return a
}

// String renders the analysis compactly.
func (a Analysis) String() string {
	return fmt.Sprintf("reads=%d files=%d reordered=%.2f%% sequential=%.1f%% meanrun=%.1f",
		a.Reads, a.Files, 100*a.ReorderFrac, 100*a.SequentialFrac, a.MeanRunBlocks)
}

// OpMix tallies requests by procedure.
func OpMix(records []Record) map[uint32]int64 {
	mix := make(map[uint32]int64)
	for _, r := range records {
		mix[r.Proc]++
	}
	return mix
}

// FormatOpMix renders a mix sorted by descending count, using names
// from the given namer (e.g. nfsproto.ProcName).
func FormatOpMix(mix map[uint32]int64, name func(uint32) string) string {
	type kv struct {
		proc uint32
		n    int64
	}
	var items []kv
	for p, n := range mix {
		items = append(items, kv{p, n})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].proc < items[j].proc
	})
	var b strings.Builder
	for i, it := range items {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", name(it.proc), it.n)
	}
	return b.String()
}

// InterarrivalStats returns the mean and maximum gap between
// consecutive records (diagnosing bursts).
func InterarrivalStats(records []Record) (mean, max time.Duration) {
	if len(records) < 2 {
		return 0, 0
	}
	var sum time.Duration
	for i := 1; i < len(records); i++ {
		gap := records[i].When - records[i-1].When
		if gap < 0 {
			gap = 0
		}
		sum += gap
		if gap > max {
			max = gap
		}
	}
	return sum / time.Duration(len(records)-1), max
}
