package nfstrace

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"nfstricks/internal/memfs"
	"nfstricks/internal/nfsproto"
	"nfstricks/internal/tracefile"
	"nfstricks/internal/wgather"
)

// captureRun serves a small live store with capture enabled, drives a
// known workload over the given network, and returns the decoded trace.
func captureRun(t *testing.T, network string) []tracefile.Record {
	t.Helper()
	var buf bytes.Buffer
	start := time.Now()
	w, err := tracefile.NewWriter(&buf, start)
	if err != nil {
		t.Fatal(err)
	}
	cap := NewCaptureAt(w, start)

	fs := memfs.NewFS()
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	fs.Create(memfs.RootFH, "data", payload)
	svc := memfs.NewService(fs, nil, nil)
	srv, err := memfs.NewServerTap("127.0.0.1:0", svc, cap.Tap)
	if err != nil {
		t.Fatal(err)
	}

	c, err := memfs.DialClient(network, srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	fh, size, err := c.Lookup(memfs.RootFH, "data")
	if err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < uint64(size); off += 8192 {
		if _, _, err := c.Read(fh, off, 8192); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Write(fh, uint64(size), []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Lookup(memfs.RootFH, "missing"); err == nil {
		t.Fatal("lookup of missing file succeeded")
	}
	c.Close()
	srv.Close()

	if err := cap.Err(); err != nil {
		t.Fatal(err)
	}
	if err := cap.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := tracefile.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestCaptureLiveServer checks the whole capture path over both
// transports: every RPC traced with correct proc/FH/offset/count/status
// and non-decreasing per-arrival times up to completion-order jitter.
func TestCaptureLiveServer(t *testing.T) {
	for _, network := range []string{"udp", "tcp"} {
		recs := captureRun(t, network)
		// 1 lookup + 8 reads + 1 write + 1 failed lookup = 11.
		if len(recs) != 11 {
			t.Fatalf("%s: %d records, want 11", network, len(recs))
		}
		var reads, lookups, writes int
		var lastOffset uint64
		var fh uint64
		for _, r := range recs {
			if r.Status&tracefile.StatusRPCError != 0 {
				t.Fatalf("%s: RPC-level error captured: %+v", network, r)
			}
			switch r.Proc {
			case nfsproto.ProcLookup:
				lookups++
				if r.FH != uint64(memfs.RootFH) {
					t.Fatalf("%s: lookup dir FH = %d", network, r.FH)
				}
			case nfsproto.ProcRead:
				reads++
				if r.Count != 8192 {
					t.Fatalf("%s: read count = %d", network, r.Count)
				}
				if fh == 0 {
					fh = r.FH
				} else if r.FH != fh {
					t.Fatalf("%s: read FH changed: %d then %d", network, fh, r.FH)
				}
				if reads > 1 && r.Offset != lastOffset+8192 {
					t.Fatalf("%s: read offsets not sequential: %d after %d", network, r.Offset, lastOffset)
				}
				lastOffset = r.Offset
				if r.Status != nfsproto.OK {
					t.Fatalf("%s: read status = %d", network, r.Status)
				}
			case nfsproto.ProcWrite:
				writes++
				if r.Offset != 64*1024 || r.Count != 4 {
					t.Fatalf("%s: write off=%d count=%d", network, r.Offset, r.Count)
				}
			}
		}
		if reads != 8 || lookups != 2 || writes != 1 {
			t.Fatalf("%s: reads=%d lookups=%d writes=%d", network, reads, lookups, writes)
		}
		// The failed lookup carries its NFS error status.
		var sawNoEnt bool
		for _, r := range recs {
			if r.Proc == nfsproto.ProcLookup && r.Status == nfsproto.ErrNoEnt {
				sawNoEnt = true
			}
		}
		if !sawNoEnt {
			t.Fatalf("%s: missing-file lookup status not captured", network)
		}
		// Latencies are plausible (positive, sub-second on loopback).
		for _, r := range recs {
			if r.Latency <= 0 || r.Latency > 10*time.Second {
				t.Fatalf("%s: latency %v", network, r.Latency)
			}
		}

		// The analyzer integration: a sequential capture shows no
		// reordering and high sequentiality.
		a := Analyze(FromTracefile(recs), nfsproto.ProcRead)
		if a.Reads != 8 || a.Reordered != 0 {
			t.Fatalf("%s: analysis %+v", network, a)
		}
		if a.SequentialFrac < 0.8 {
			t.Fatalf("%s: sequential frac %.2f", network, a.SequentialFrac)
		}
	}
}

// TestFromTracefileSortsByArrival: analyzers measure server-observed
// arrival order, but trace files are completion-ordered; the conversion
// must not charge completion jitter as request reordering.
func TestFromTracefileSortsByArrival(t *testing.T) {
	// Arrival order (by When) is perfectly sequential; file order is
	// scrambled, as a pipelined capture would store it.
	recs := []tracefile.Record{
		{When: 2 * time.Millisecond, Proc: nfsproto.ProcRead, FH: 1, Offset: 2 * 8192, Count: 8192},
		{When: 0, Proc: nfsproto.ProcRead, FH: 1, Offset: 0, Count: 8192},
		{When: 3 * time.Millisecond, Proc: nfsproto.ProcRead, FH: 1, Offset: 3 * 8192, Count: 8192},
		{When: 1 * time.Millisecond, Proc: nfsproto.ProcRead, FH: 1, Offset: 1 * 8192, Count: 8192},
	}
	converted := FromTracefile(recs)
	for i, r := range converted {
		if r.When != time.Duration(i)*time.Millisecond {
			t.Fatalf("converted[%d].When = %v, not arrival-sorted", i, r.When)
		}
	}
	a := Analyze(converted, nfsproto.ProcRead)
	if a.Reordered != 0 {
		t.Fatalf("completion jitter charged as reordering: %+v", a)
	}
	if a.SequentialFrac < 0.7 {
		t.Fatalf("sequential frac %.2f", a.SequentialFrac)
	}
}

// TestAnalyzeFile runs the FromFile path end to end through a real file.
func TestAnalyzeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cap.nft")
	w, err := tracefile.Create(path, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rec := tracefile.Record{
			When: time.Duration(i) * time.Millisecond, Stream: 1,
			Proc: nfsproto.ProcRead, FH: 7, Offset: uint64(i) * 8192, Count: 8192,
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Reads != 20 || a.Reordered != 0 || a.Files != 1 {
		t.Fatalf("analysis %+v", a)
	}
	recs, err := FromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 || recs[19].When != 19*time.Millisecond {
		t.Fatalf("FromFile: %d records, last When %v", len(recs), recs[len(recs)-1].When)
	}
	if mix := OpMix(recs); mix[nfsproto.ProcRead] != 20 {
		t.Fatalf("op mix %v", mix)
	}
}

// TestCaptureWritePath drives UNSTABLE writes plus a COMMIT through a
// gathering live server and checks capture records their stability
// levels and the COMMIT's range — the fields the replay engine needs to
// reproduce an asynchronous write stream.
func TestCaptureWritePath(t *testing.T) {
	var buf bytes.Buffer
	start := time.Now()
	w, err := tracefile.NewWriter(&buf, start)
	if err != nil {
		t.Fatal(err)
	}
	cap := NewCaptureAt(w, start)

	fs := memfs.NewFS()
	fh, _ := fs.Create(memfs.RootFH, "w", make([]byte, 64*1024))
	svc := memfs.NewServiceGather(fs, nil, nil, wgather.Config{Window: time.Minute})
	defer svc.Close()
	srv, err := memfs.NewServerTap("127.0.0.1:0", svc, cap.Tap)
	if err != nil {
		t.Fatal(err)
	}

	c, err := memfs.DialClient("tcp", srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	data := make([]byte, 8192)
	for off := uint64(0); off < 4*8192; off += 8192 {
		if _, err := c.WriteUnstable(fh, off, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Write(fh, 4*8192, data); err != nil { // FILE_SYNC
		t.Fatal(err)
	}
	if _, err := c.Commit(fh, 0, 0); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Close()
	if err := cap.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs, err := tracefile.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var unstable, filesync, commits int
	for _, r := range recs {
		switch r.Proc {
		case nfsproto.ProcWrite:
			switch r.Stable {
			case nfsproto.WriteUnstable:
				unstable++
			case nfsproto.WriteFileSync:
				filesync++
			default:
				t.Fatalf("write captured with stability %d", r.Stable)
			}
		case nfsproto.ProcCommit:
			commits++
			if r.FH != uint64(fh) || r.Offset != 0 || r.Count != 0 {
				t.Fatalf("commit captured as fh=%d off=%d count=%d", r.FH, r.Offset, r.Count)
			}
			if r.Status != nfsproto.OK {
				t.Fatalf("commit status %d", r.Status)
			}
		}
	}
	if unstable != 4 || filesync != 1 || commits != 1 {
		t.Fatalf("captured unstable=%d filesync=%d commits=%d, want 4/1/1", unstable, filesync, commits)
	}

	mix := WriteStabilityMix(recs)
	if mix[nfsproto.WriteUnstable] != 4 || mix[nfsproto.WriteFileSync] != 1 {
		t.Fatalf("stability mix %v", mix)
	}
	cd := CommitDistances(recs)
	if cd.Writes != 5 || cd.Committed != 5 || cd.Uncommitted != 0 {
		t.Fatalf("commit distances %+v", cd)
	}
	// The last write (FILE_SYNC, immediately before COMMIT) is 0 ops
	// away; the first unstable write is 4 ops away.
	if cd.MaxOps != 4 || cd.P50Ops != 2 {
		t.Fatalf("commit distances %+v", cd)
	}
}

// TestCommitDistancesUncommitted checks writes with no following COMMIT
// are reported as uncommitted.
func TestCommitDistancesUncommitted(t *testing.T) {
	recs := []tracefile.Record{
		{When: 0, Stream: 1, Proc: nfsproto.ProcWrite, FH: 1, Stable: nfsproto.WriteUnstable},
		{When: 1, Stream: 1, Proc: nfsproto.ProcWrite, FH: 2, Stable: nfsproto.WriteUnstable},
		{When: 2, Stream: 1, Proc: nfsproto.ProcCommit, FH: 1},
	}
	cd := CommitDistances(recs)
	if cd.Writes != 2 || cd.Committed != 1 || cd.Uncommitted != 1 {
		t.Fatalf("%+v", cd)
	}
	if cd.MaxOps != 1 {
		t.Fatalf("distance to commit = %d, want 1 (one request between)", cd.MaxOps)
	}
}
