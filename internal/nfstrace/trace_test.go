package nfstrace

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

const readProc = 6

func readRec(fh, block uint64) Record {
	return Record{Proc: readProc, FH: fh, Offset: block * 8192, Count: 8192}
}

func TestTracerUnlimited(t *testing.T) {
	var tr Tracer
	for i := 0; i < 100; i++ {
		tr.Add(readRec(1, uint64(i)))
	}
	if tr.Total() != 100 || len(tr.Records()) != 100 {
		t.Fatalf("total=%d len=%d", tr.Total(), len(tr.Records()))
	}
}

func TestTracerRingBuffer(t *testing.T) {
	tr := Tracer{Limit: 10}
	for i := 0; i < 25; i++ {
		tr.Add(readRec(1, uint64(i)))
	}
	recs := tr.Records()
	if len(recs) != 10 || tr.Total() != 25 {
		t.Fatalf("len=%d total=%d", len(recs), tr.Total())
	}
	// Must retain the most recent 10, in arrival order.
	for i, r := range recs {
		if want := uint64(15 + i); r.Offset != want*8192 {
			t.Fatalf("recs[%d].Offset = %d, want block %d", i, r.Offset, want)
		}
	}
}

// TestTracerWraparoundBoundary pins the exact Limit boundary: at
// Total == Limit nothing has been evicted and order is untouched; the
// very next Add evicts exactly the oldest record.
func TestTracerWraparoundBoundary(t *testing.T) {
	tr := Tracer{Limit: 8}
	for i := 0; i < 8; i++ {
		tr.Add(readRec(1, uint64(i)))
	}
	recs := tr.Records()
	if len(recs) != 8 || tr.Total() != 8 {
		t.Fatalf("at limit: len=%d total=%d", len(recs), tr.Total())
	}
	for i, r := range recs {
		if r.Offset != uint64(i)*8192 {
			t.Fatalf("pre-wrap order broken at %d: %+v", i, r)
		}
	}

	// One past the limit: block 0 evicted, order still arrival order.
	tr.Add(readRec(1, 8))
	recs = tr.Records()
	if len(recs) != 8 || tr.Total() != 9 {
		t.Fatalf("one past limit: len=%d total=%d", len(recs), tr.Total())
	}
	for i, r := range recs {
		if want := uint64(1 + i); r.Offset != want*8192 {
			t.Fatalf("post-wrap order: recs[%d] = block %d, want %d", i, r.Offset/8192, want)
		}
	}
}

// TestTracerWrapsManyTimes drives the ring through several full
// revolutions: Total counts every Add ever made while Records always
// returns the newest Limit records in arrival order.
func TestTracerWrapsManyTimes(t *testing.T) {
	const limit = 7
	tr := Tracer{Limit: limit}
	for n := 1; n <= 5*limit+3; n++ {
		tr.Add(readRec(1, uint64(n-1)))
		if tr.Total() != int64(n) {
			t.Fatalf("after %d adds Total = %d", n, tr.Total())
		}
		recs := tr.Records()
		wantLen := n
		if wantLen > limit {
			wantLen = limit
		}
		if len(recs) != wantLen {
			t.Fatalf("after %d adds len = %d, want %d", n, len(recs), wantLen)
		}
		first := n - wantLen
		for i, r := range recs {
			if want := uint64(first + i); r.Offset != want*8192 {
				t.Fatalf("after %d adds recs[%d] = block %d, want %d", n, i, r.Offset/8192, want)
			}
		}
	}
}

func TestTracerReset(t *testing.T) {
	tr := Tracer{Limit: 4}
	for i := 0; i < 8; i++ {
		tr.Add(readRec(1, uint64(i)))
	}
	tr.Reset()
	if tr.Total() != 0 || len(tr.Records()) != 0 {
		t.Fatal("reset incomplete")
	}
	tr.Add(readRec(1, 0))
	if len(tr.Records()) != 1 {
		t.Fatal("tracer unusable after reset")
	}
}

func TestAnalyzeSequential(t *testing.T) {
	var recs []Record
	for i := 0; i < 50; i++ {
		recs = append(recs, readRec(1, uint64(i)))
	}
	a := Analyze(recs, readProc)
	if a.Reads != 50 || a.Files != 1 {
		t.Fatalf("reads=%d files=%d", a.Reads, a.Files)
	}
	if a.Reordered != 0 || a.ReorderFrac != 0 {
		t.Fatalf("sequential trace shows reordering: %+v", a)
	}
	if a.SequentialFrac < 0.9 {
		t.Fatalf("sequential fraction = %.2f", a.SequentialFrac)
	}
	if a.MeanRunBlocks < 40 {
		t.Fatalf("mean run = %.1f for one 50-block run", a.MeanRunBlocks)
	}
}

func TestAnalyzeDetectsSwaps(t *testing.T) {
	// Blocks 0,1,3,2,4,5: one swap = one regression.
	var recs []Record
	for _, b := range []uint64{0, 1, 3, 2, 4, 5} {
		recs = append(recs, readRec(1, b))
	}
	a := Analyze(recs, readProc)
	if a.Reordered != 1 {
		t.Fatalf("reordered = %d, want 1", a.Reordered)
	}
	if a.ReorderFrac < 0.15 || a.ReorderFrac > 0.18 {
		t.Fatalf("reorder frac = %.3f, want 1/6", a.ReorderFrac)
	}
}

func TestAnalyzePerFileIndependence(t *testing.T) {
	// Interleaved reads of two files, each internally sequential: no
	// reordering should be charged.
	var recs []Record
	for i := 0; i < 20; i++ {
		recs = append(recs, readRec(1, uint64(i)))
		recs = append(recs, readRec(2, uint64(i)))
	}
	a := Analyze(recs, readProc)
	if a.Files != 2 || a.Reordered != 0 {
		t.Fatalf("%+v", a)
	}
}

func TestAnalyzeIgnoresNonReads(t *testing.T) {
	recs := []Record{
		{Proc: 1, FH: 1},
		readRec(1, 0),
		{Proc: 4, FH: 1},
		readRec(1, 1),
	}
	a := Analyze(recs, readProc)
	if a.Reads != 2 {
		t.Fatalf("reads = %d, want 2", a.Reads)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil, readProc)
	if a.Reads != 0 || a.ReorderFrac != 0 {
		t.Fatalf("%+v", a)
	}
	if !strings.Contains(a.String(), "reads=0") {
		t.Fatalf("String() = %q", a.String())
	}
}

func TestOpMixAndFormat(t *testing.T) {
	recs := []Record{
		{Proc: 6}, {Proc: 6}, {Proc: 6},
		{Proc: 1}, {Proc: 4},
	}
	mix := OpMix(recs)
	if mix[6] != 3 || mix[1] != 1 {
		t.Fatalf("mix = %v", mix)
	}
	out := FormatOpMix(mix, func(p uint32) string {
		return map[uint32]string{6: "READ", 1: "GETATTR", 4: "ACCESS"}[p]
	})
	if !strings.HasPrefix(out, "READ:3") {
		t.Fatalf("FormatOpMix = %q", out)
	}
}

func TestInterarrival(t *testing.T) {
	recs := []Record{
		{When: 0}, {When: 10 * time.Millisecond}, {When: 40 * time.Millisecond},
	}
	mean, max := InterarrivalStats(recs)
	if mean != 20*time.Millisecond || max != 30*time.Millisecond {
		t.Fatalf("mean=%v max=%v", mean, max)
	}
	if m, x := InterarrivalStats(recs[:1]); m != 0 || x != 0 {
		t.Fatal("single-record stats nonzero")
	}
}

// Property: ReorderFrac is 0 for any per-file monotone trace and always
// within [0, 1].
func TestAnalyzeProperties(t *testing.T) {
	f := func(blocks []uint8, twoFiles bool) bool {
		var recs []Record
		next := map[uint64]uint64{}
		for i, b := range blocks {
			fh := uint64(1)
			if twoFiles && i%2 == 0 {
				fh = 2
			}
			_ = b
			recs = append(recs, readRec(fh, next[fh]))
			next[fh]++
		}
		a := Analyze(recs, readProc)
		return a.Reordered == 0 && a.ReorderFrac >= 0 && a.ReorderFrac <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the ring buffer always returns at most Limit records and
// the newest record is always retained.
func TestTracerRingProperty(t *testing.T) {
	f := func(n uint8, limit uint8) bool {
		lim := int(limit%16) + 1
		tr := Tracer{Limit: lim}
		for i := 0; i < int(n); i++ {
			tr.Add(readRec(1, uint64(i)))
		}
		recs := tr.Records()
		if len(recs) > lim {
			return false
		}
		if n > 0 {
			last := recs[len(recs)-1]
			if last.Offset != uint64(n-1)*8192 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
