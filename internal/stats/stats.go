// Package stats provides the small set of summary statistics the
// benchmark harness reports: mean, standard deviation, min/max and
// relative deviation, matching the paper's "average of at least ten
// separate runs / standard deviation below 5% of the mean" methodology.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample summarizes a set of measurements. It also retains the raw
// per-run values (in run order), so a saved artifact carries enough to
// re-test two runs against each other with rank statistics later —
// summary numbers alone can't answer "does this clear the noise?".
// Median and Values are omitted from JSON when absent, so artifacts
// written before they existed still decode (compare falls back to the
// mean/stddev normal approximation for those).
type Sample struct {
	N      int
	Mean   float64
	StdDev float64 // sample (n-1) standard deviation
	Min    float64
	Max    float64
	Median float64   `json:",omitempty"`
	Values []float64 `json:",omitempty"` // raw measurements, run order
}

// Summarize computes summary statistics over xs. An empty input yields a
// zero Sample. The input is copied into Values, so later mutation of xs
// does not alias the sample.
func Summarize(xs []float64) Sample {
	s := Sample{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Values = append([]float64(nil), xs...)
	s.Median = Median(xs)
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// RelDev returns the standard deviation as a fraction of the mean
// (0 if the mean is 0).
func (s Sample) RelDev() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / math.Abs(s.Mean)
}

// String renders "mean (stddev)" with two decimals, the paper's Table 1
// format.
func (s Sample) String() string {
	return fmt.Sprintf("%.2f (%.2f)", s.Mean, s.StdDev)
}

// Median returns the middle value of xs (the mean of the central pair
// for even n), 0 for empty input. xs is not mutated.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
