package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almost(s.Mean, 5) {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if !almost(s.StdDev, math.Sqrt(32.0/7.0)) {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty sample = %+v", s)
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.StdDev != 0 {
		t.Fatalf("single sample = %+v", s)
	}
}

func TestRelDev(t *testing.T) {
	s := Sample{Mean: 10, StdDev: 0.5}
	if !almost(s.RelDev(), 0.05) {
		t.Fatalf("RelDev = %v", s.RelDev())
	}
	if (Sample{}).RelDev() != 0 {
		t.Fatal("zero-mean RelDev should be 0")
	}
}

func TestStringFormat(t *testing.T) {
	s := Sample{Mean: 11.49, StdDev: 0.29}
	if got := s.String(); got != "11.49 (0.29)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 50); p != 5 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

// Property: mean is always within [min, max] and stddev is non-negative.
func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip degenerate float inputs
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: shifting all values shifts the mean and preserves stddev.
func TestSummarizeShiftInvariance(t *testing.T) {
	f := func(xs []float64, shift float64) bool {
		if len(xs) == 0 || math.IsNaN(shift) || math.Abs(shift) > 1e6 {
			return true
		}
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
			clean = append(clean, x)
		}
		a := Summarize(clean)
		shifted := make([]float64, len(clean))
		for i, x := range clean {
			shifted[i] = x + shift
		}
		b := Summarize(shifted)
		return math.Abs((a.Mean+shift)-b.Mean) < 1e-6 && math.Abs(a.StdDev-b.StdDev) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
