// Rank and resampling statistics for comparing two sets of benchmark
// runs. The harness's compare mode flags a difference only when it
// clears run-to-run noise, which needs two instruments the summary
// stats can't provide: a distribution-free two-sample test (benchstat's
// choice, the Mann-Whitney U test — medians and ranks, so one outlier
// run can't manufacture a significant result) and bootstrap confidence
// intervals for medians and median shifts. Everything here is
// deterministic for a given seed and uses no external dependencies.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// mwExactLimit bounds the sample sizes for which MannWhitney uses the
// exact null distribution; beyond it (or with ties) the tie-corrected
// normal approximation takes over. 40 total observations keeps the DP
// table small while covering every realistic benchmark rep count.
const mwExactLimit = 40

// MannWhitney performs a two-sided Mann-Whitney U test on two
// independent samples and returns the U statistic for a along with the
// p-value for the null hypothesis that a and b are drawn from the same
// distribution. Tie-free samples with at most mwExactLimit total
// observations use the exact null distribution; larger or tied inputs
// use the normal approximation with tie correction and continuity
// correction. Degenerate inputs (either sample empty, or zero variance
// from every value equal) return p = 1: no evidence of a difference.
func MannWhitney(a, b []float64) (u, p float64) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, 1
	}

	// Rank the pooled sample, assigning tied values their average rank.
	type obs struct {
		v    float64
		from int // 0 = a, 1 = b
	}
	pool := make([]obs, 0, n+m)
	for _, x := range a {
		pool = append(pool, obs{x, 0})
	}
	for _, x := range b {
		pool = append(pool, obs{x, 1})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })

	var ra float64     // rank sum of sample a
	var tieSum float64 // Σ (t³ - t) over tie groups
	ties := false
	for i := 0; i < len(pool); {
		j := i
		for j < len(pool) && pool[j].v == pool[i].v {
			j++
		}
		t := float64(j - i)
		if j-i > 1 {
			ties = true
			tieSum += t*t*t - t
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			if pool[k].from == 0 {
				ra += avgRank
			}
		}
		i = j
	}
	u = ra - float64(n)*float64(n+1)/2

	if !ties && n+m <= mwExactLimit {
		return u, mwExactP(u, n, m)
	}
	return u, mwApproxP(u, n, m, tieSum)
}

// mwExactP computes the two-sided p-value from the exact null
// distribution of U: the number of rank arrangements with statistic
// ≤ u, counted by the standard recurrence
//
//	f(u; n, m) = f(u-m; n-1, m) + f(u; n, m-1)
//
// (the largest of sample a's observations either is the overall maximum
// — contributing m to U and leaving f(u-m; n-1, m) — or the maximum
// lies in b and contributes nothing). Valid only for tie-free samples.
func mwExactP(u float64, n, m int) float64 {
	// By symmetry the null distribution of U is symmetric around nm/2;
	// fold onto the lower tail.
	nm := float64(n * m)
	uSmall := math.Min(u, nm-u)
	k := int(math.Floor(uSmall))

	// mwCount returns the number of tie-free rank arrangements of n
	// a-observations and m b-observations whose U statistic equals u.
	// The memo is per-call, so concurrent tests never share state.
	memo := map[[3]int]float64{}
	var mwCount func(u, n, m int) float64
	mwCount = func(u, n, m int) float64 {
		if u < 0 || n < 0 || m < 0 {
			return 0
		}
		if n == 0 || m == 0 {
			if u == 0 {
				return 1
			}
			return 0
		}
		key := [3]int{u, n, m}
		if v, ok := memo[key]; ok {
			return v
		}
		v := mwCount(u-m, n-1, m) + mwCount(u, n, m-1)
		memo[key] = v
		return v
	}

	cdf := 0.0
	total := binomial(n+m, n)
	for t := 0; t <= k; t++ {
		cdf += mwCount(t, n, m)
	}
	p := 2 * cdf / total
	if p > 1 {
		p = 1
	}
	return p
}

// binomial returns C(n, k) as a float64 (exact for the sizes the exact
// test handles).
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

// mwApproxP computes the two-sided p-value from the normal
// approximation with tie correction (tieSum = Σ (t³-t) over tie
// groups) and a 0.5 continuity correction toward the mean.
func mwApproxP(u float64, n, m int, tieSum float64) float64 {
	nf, mf, nt := float64(n), float64(m), float64(n+m)
	mu := nf * mf / 2
	variance := nf * mf / 12 * ((nt + 1) - tieSum/(nt*(nt-1)))
	if variance <= 0 {
		return 1 // every pooled value identical: no evidence either way
	}
	d := u - mu
	switch {
	case d > 0.5:
		d -= 0.5
	case d < -0.5:
		d += 0.5
	default:
		d = 0
	}
	z := d / math.Sqrt(variance)
	// Two-sided: p = 2·(1 − Φ(|z|)) = erfc(|z|/√2).
	return math.Erfc(math.Abs(z) / math.Sqrt2)
}

// BootstrapMedianCI returns a percentile-bootstrap confidence interval
// for the median of xs at the given confidence level (e.g. 0.95), using
// the given number of resamples. Deterministic for a given seed. For
// n < 2 the interval collapses to the single value (or 0,0 when empty).
func BootstrapMedianCI(xs []float64, resamples int, conf float64, seed int64) (lo, hi float64) {
	switch len(xs) {
	case 0:
		return 0, 0
	case 1:
		return xs[0], xs[0]
	}
	if resamples <= 0 {
		resamples = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	meds := make([]float64, resamples)
	tmp := make([]float64, len(xs))
	for i := range meds {
		meds[i] = resampleMedian(rng, xs, tmp)
	}
	return percentileInterval(meds, conf)
}

// BootstrapShiftCI returns a percentile-bootstrap confidence interval
// for median(b) − median(a), resampling both sides independently.
// Deterministic for a given seed; degenerate inputs collapse to the
// point estimate.
func BootstrapShiftCI(a, b []float64, resamples int, conf float64, seed int64) (lo, hi float64) {
	if len(a) == 0 || len(b) == 0 {
		d := Median(b) - Median(a)
		return d, d
	}
	if resamples <= 0 {
		resamples = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	diffs := make([]float64, resamples)
	ta := make([]float64, len(a))
	tb := make([]float64, len(b))
	for i := range diffs {
		diffs[i] = resampleMedian(rng, b, tb) - resampleMedian(rng, a, ta)
	}
	return percentileInterval(diffs, conf)
}

// resampleMedian draws one bootstrap resample of xs into tmp and
// returns its median.
func resampleMedian(rng *rand.Rand, xs, tmp []float64) float64 {
	for j := range tmp {
		tmp[j] = xs[rng.Intn(len(xs))]
	}
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// percentileInterval returns the central conf-level interval of xs
// (sorts in place).
func percentileInterval(xs []float64, conf float64) (lo, hi float64) {
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	sort.Float64s(xs)
	alpha := (1 - conf) / 2
	loIdx := int(alpha * float64(len(xs)))
	hiIdx := int((1 - alpha) * float64(len(xs)))
	if hiIdx >= len(xs) {
		hiIdx = len(xs) - 1
	}
	return xs[loIdx], xs[hiIdx]
}
