package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.xs); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("Median mutated its input")
	}
}

func TestSummarizeRetainsValuesAndMedian(t *testing.T) {
	in := []float64{4, 1, 3}
	s := Summarize(in)
	if s.Median != 3 {
		t.Fatalf("Median = %v, want 3", s.Median)
	}
	if len(s.Values) != 3 || s.Values[0] != 4 || s.Values[2] != 3 {
		t.Fatalf("Values = %v, want input order preserved", s.Values)
	}
	in[0] = 99
	if s.Values[0] != 4 {
		t.Fatal("Values aliases the caller's slice")
	}
}

func TestMannWhitneyDegenerate(t *testing.T) {
	if _, p := MannWhitney(nil, []float64{1, 2}); p != 1 {
		t.Fatalf("empty a: p = %v, want 1", p)
	}
	if _, p := MannWhitney([]float64{1, 2}, nil); p != 1 {
		t.Fatalf("empty b: p = %v, want 1", p)
	}
	// All-identical values: zero variance, no evidence.
	if _, p := MannWhitney([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Fatalf("identical constants: p = %v, want 1", p)
	}
}

func TestMannWhitneyKnownValues(t *testing.T) {
	// Complete separation, n = m = 10, tie-free: U = 0, and the exact
	// two-sided p is 2/C(20,10) = 2/184756.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{101, 102, 103, 104, 105, 106, 107, 108, 109, 110}
	u, p := MannWhitney(a, b)
	if u != 0 {
		t.Fatalf("U = %v, want 0", u)
	}
	want := 2.0 / 184756.0
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("p = %v, want %v", p, want)
	}
	// Swapping the samples mirrors U and preserves p.
	u2, p2 := MannWhitney(b, a)
	if u2 != 100 {
		t.Fatalf("mirrored U = %v, want 100", u2)
	}
	if math.Abs(p-p2) > 1e-12 {
		t.Fatalf("p not symmetric: %v vs %v", p, p2)
	}
}

// Property: U_a + U_b = n·m for tie-free samples, and p is symmetric.
func TestMannWhitneySymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n, m := 2+rng.Intn(10), 2+rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ua, pa := MannWhitney(a, b)
		ub, pb := MannWhitney(b, a)
		if math.Abs(ua+ub-float64(n*m)) > 1e-9 {
			t.Fatalf("U_a + U_b = %v, want %d", ua+ub, n*m)
		}
		if math.Abs(pa-pb) > 1e-12 {
			t.Fatalf("p asymmetric: %v vs %v", pa, pb)
		}
		if pa < 0 || pa > 1 {
			t.Fatalf("p out of range: %v", pa)
		}
	}
}

// Property: exact and normal-approximation p-values agree closely for
// mid-size tie-free samples.
func TestMannWhitneyExactVsApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		a := make([]float64, 10)
		b := make([]float64, 10)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64() + rng.Float64()
		}
		u, pExact := MannWhitney(a, b)
		pApprox := mwApproxP(u, len(a), len(b), 0)
		if math.Abs(pExact-pApprox) > 0.03 {
			t.Fatalf("trial %d: exact %v vs approx %v (u=%v)", trial, pExact, pApprox, u)
		}
	}
}

// Property: under the null (same distribution, different seeds) the
// test rejects at ~alpha. 400 A/A trials at alpha=0.05 give a rejection
// count that is binomial(400, ~0.05); 40 (10%) is a ~5-sigma bound.
func TestMannWhitneyFalsePositiveRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rejects := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 8)
		b := make([]float64, 8)
		for i := range a {
			a[i] = 10 + rng.NormFloat64()
			b[i] = 10 + rng.NormFloat64()
		}
		if _, p := MannWhitney(a, b); p < 0.05 {
			rejects++
		}
	}
	if rejects > trials/10 {
		t.Fatalf("false-positive rate %d/%d exceeds 10%%", rejects, trials)
	}
}

// Property: a 3-sigma shift with n=8 per side is detected nearly always.
func TestMannWhitneyPower(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	detected := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 8)
		b := make([]float64, 8)
		for i := range a {
			a[i] = 10 + rng.NormFloat64()
			b[i] = 13 + rng.NormFloat64()
		}
		if _, p := MannWhitney(a, b); p < 0.05 {
			detected++
		}
	}
	if detected < trials*85/100 {
		t.Fatalf("3-sigma shift detected only %d/%d times", detected, trials)
	}
}

// Ties force the approximation path; the result must stay a valid
// p-value and identical heavy-tie samples must not look significant.
func TestMannWhitneyTies(t *testing.T) {
	a := []float64{1, 1, 2, 2, 3, 3}
	b := []float64{1, 2, 2, 3, 3, 3}
	_, p := MannWhitney(a, b)
	if p < 0.3 || p > 1 {
		t.Fatalf("tied near-identical samples: p = %v", p)
	}
	// Ties plus a real shift must still be detected.
	c := []float64{10, 10, 10, 11, 11, 11, 10, 11}
	d := []float64{20, 20, 20, 21, 21, 21, 20, 21}
	if _, p := MannWhitney(c, d); p > 0.01 {
		t.Fatalf("tied separated samples: p = %v", p)
	}
}

func TestBootstrapMedianCIBasics(t *testing.T) {
	if lo, hi := BootstrapMedianCI(nil, 100, 0.95, 1); lo != 0 || hi != 0 {
		t.Fatalf("empty: [%v, %v]", lo, hi)
	}
	if lo, hi := BootstrapMedianCI([]float64{7}, 100, 0.95, 1); lo != 7 || hi != 7 {
		t.Fatalf("single: [%v, %v]", lo, hi)
	}
	xs := []float64{9.8, 10.1, 10.0, 10.2, 9.9, 10.0, 10.1, 9.9}
	lo, hi := BootstrapMedianCI(xs, 1000, 0.95, 1)
	med := Median(xs)
	if lo > med || hi < med {
		t.Fatalf("CI [%v, %v] excludes the sample median %v", lo, hi, med)
	}
	if lo < 9.8 || hi > 10.2 {
		t.Fatalf("CI [%v, %v] outside the data range", lo, hi)
	}
	// Determinism: same seed, same interval.
	lo2, hi2 := BootstrapMedianCI(xs, 1000, 0.95, 1)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic for a fixed seed")
	}
}

// Property: the 95% bootstrap CI covers the true median of a known
// distribution in the large majority of seeded trials (percentile
// bootstrap under-covers slightly at small n, so the bound is 80%).
func TestBootstrapMedianCICoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const trials = 200
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 15)
		for i := range xs {
			xs[i] = 50 + 2*rng.NormFloat64() // true median 50
		}
		lo, hi := BootstrapMedianCI(xs, 500, 0.95, int64(trial+1))
		if lo <= 50 && 50 <= hi {
			covered++
		}
	}
	if covered < trials*80/100 {
		t.Fatalf("coverage %d/%d below 80%%", covered, trials)
	}
}

func TestBootstrapShiftCI(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := make([]float64, 12)
	b := make([]float64, 12)
	for i := range a {
		a[i] = 100 + rng.NormFloat64()
		b[i] = 120 + rng.NormFloat64() // true shift +20
	}
	lo, hi := BootstrapShiftCI(a, b, 1000, 0.95, 1)
	if lo > 20 || hi < 20 {
		t.Fatalf("shift CI [%v, %v] excludes the true shift 20", lo, hi)
	}
	if lo < 15 || hi > 25 {
		t.Fatalf("shift CI [%v, %v] implausibly wide", lo, hi)
	}
	// A/A: the CI must straddle zero.
	for i := range b {
		b[i] = 100 + rng.NormFloat64()
	}
	lo, hi = BootstrapShiftCI(a, b, 1000, 0.95, 1)
	if lo > 0 || hi < 0 {
		t.Fatalf("A/A shift CI [%v, %v] excludes zero", lo, hi)
	}
}
