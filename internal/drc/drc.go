// Package drc is the NFS duplicate request cache (Juszczak's classic
// BSD design): a bounded cache of recent replies to non-idempotent
// calls, keyed by the retransmission identity ONC RPC provides —
// (client address, XID, procedure, argument checksum). A retransmitted
// REMOVE whose original already executed gets the original's reply
// replayed instead of a wrong NOENT; a retransmission that races the
// original (still executing) is dropped — neither re-executed nor
// blocked on — and the client's next retransmission finds the
// completed reply. The cache is byte-budgeted with LRU eviction of
// completed entries, so a burst of large replies degrades it gracefully
// toward a smaller effective window, never unbounded growth.
package drc

import (
	"fmt"
	"net/netip"
	"sync"
)

// Key is one call's retransmission identity. The argument checksum
// guards against XID reuse: a rebooted client that recycles an old XID
// for a different call must not receive the old call's reply.
type Key struct {
	Client    netip.AddrPort
	XID, Proc uint32
	Sum       uint64
}

// Outcome is Begin's verdict on a call.
type Outcome int

const (
	// Miss: never seen — execute it. The cache now holds an
	// in-progress reservation; the caller must Complete it.
	Miss Outcome = iota
	// Hit: already executed — replay the cached reply, do not execute.
	Hit
	// Busy: the original is still executing — drop the call without
	// replying (the classic DRC answer: the original's reply is coming,
	// and a dropped retransmission just retries).
	Busy
)

// Config bounds the cache.
type Config struct {
	// MaxBytes budgets the completed replies retained (default 1 MB).
	// In-progress reservations are pinned and don't count against it.
	MaxBytes int
}

// DefaultMaxBytes is the reply byte budget when Config leaves it zero.
const DefaultMaxBytes = 1 << 20

// Stats is a cache activity snapshot.
type Stats struct {
	Hits      int64 // retransmissions answered from the cache
	Misses    int64 // fresh calls admitted
	Busy      int64 // retransmissions dropped against an in-progress original
	Evictions int64 // completed entries evicted under the byte budget
	Bypasses  int64 // replies too large to retain at all
	Entries   int   // current completed + in-progress entries
	Bytes     int   // current retained reply bytes
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d busy=%d evict=%d bypass=%d entries=%d bytes=%d",
		s.Hits, s.Misses, s.Busy, s.Evictions, s.Bypasses, s.Entries, s.Bytes)
}

// entry is one cached call. Completed entries sit on the LRU list;
// in-progress ones exist only in the map (pinned: evicting one would
// turn the racing retransmission it exists to catch into a re-execute).
type entry struct {
	key        Key
	done       bool
	reply      []byte // cache-owned copy
	stat       uint32
	prev, next *entry // LRU neighbors, valid when done
}

// entryOverhead approximates the per-entry bookkeeping charged to the
// byte budget on top of the reply bytes.
const entryOverhead = 96

func (e *entry) size() int { return len(e.reply) + entryOverhead }

// Cache is the duplicate request cache. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int
	bytes    int
	entries  map[Key]*entry
	lru      entry // sentinel: lru.next = most recent, lru.prev = oldest

	hits, misses, busy, evictions, bypasses int64
}

// New builds a cache under cfg's budget.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	c := &Cache{maxBytes: cfg.MaxBytes, entries: make(map[Key]*entry)}
	c.lru.next, c.lru.prev = &c.lru, &c.lru
	return c
}

func (c *Cache) pushFront(e *entry) {
	e.prev, e.next = &c.lru, c.lru.next
	e.prev.next, e.next.prev = e, e
}

func (c *Cache) unlink(e *entry) {
	e.prev.next, e.next.prev = e.next, e.prev
	e.prev, e.next = nil, nil
}

// Begin classifies one incoming call. On Miss the caller MUST execute
// the call and Complete the key with the reply it sends. On Hit the
// returned reply and accept status are the original's; the returned
// slice is cache-owned and must only be copied from, never retained or
// written. On Busy the caller must drop the call without replying.
func (c *Cache) Begin(k Key) (Outcome, []byte, uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		if !e.done {
			c.busy++
			return Busy, nil, 0
		}
		c.hits++
		c.unlink(e)
		c.pushFront(e)
		return Hit, e.reply, e.stat
	}
	c.misses++
	c.entries[k] = &entry{key: k}
	return Miss, nil, 0
}

// Complete records the reply sent for a key Begin admitted as a Miss.
// reply may alias a transient buffer; the cache keeps its own copy. A
// reply too large for the whole budget is not retained (counted as a
// bypass): a later retransmission of that call will re-execute, the
// cache's documented degradation mode.
func (c *Cache) Complete(k Key, reply []byte, stat uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok || e.done {
		return
	}
	if len(reply)+entryOverhead > c.maxBytes {
		delete(c.entries, k)
		c.bypasses++
		return
	}
	e.done = true
	e.reply = append([]byte(nil), reply...)
	e.stat = stat
	c.pushFront(e)
	c.bytes += e.size()
	for c.bytes > c.maxBytes {
		old := c.lru.prev
		if old == &c.lru {
			break
		}
		c.unlink(old)
		delete(c.entries, old.key)
		c.bytes -= old.size()
		c.evictions++
	}
}

// Abort releases an in-progress reservation without caching anything
// (the call failed before a reply was sent). A no-op for completed or
// unknown keys.
func (c *Cache) Abort(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok && !e.done {
		delete(c.entries, k)
	}
}

// Stats returns a snapshot of the cache's counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Busy: c.busy,
		Evictions: c.evictions, Bypasses: c.bypasses,
		Entries: len(c.entries), Bytes: c.bytes,
	}
}
