package drc

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
)

func key(xid uint32) Key {
	return Key{
		Client: netip.MustParseAddrPort("10.0.0.1:1023"),
		XID:    xid, Proc: 12, Sum: uint64(xid) * 7,
	}
}

// TestLifecycle: miss → busy while in progress → hit after completion,
// with the original's exact reply and status replayed.
func TestLifecycle(t *testing.T) {
	c := New(Config{})
	k := key(1)
	if out, _, _ := c.Begin(k); out != Miss {
		t.Fatalf("first Begin = %v, want Miss", out)
	}
	if out, _, _ := c.Begin(k); out != Busy {
		t.Fatalf("Begin while in progress = %v, want Busy", out)
	}
	c.Complete(k, []byte("the reply"), 0)
	out, reply, stat := c.Begin(k)
	if out != Hit || string(reply) != "the reply" || stat != 0 {
		t.Fatalf("Begin after Complete = %v %q %d, want Hit", out, reply, stat)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Busy != 1 || s.Hits != 1 || s.Entries != 1 {
		t.Fatalf("stats %v", s)
	}
}

// TestKeyDiscriminates: any field differing — client, XID, proc, or the
// argument checksum (XID reuse by a rebooted client) — is a different
// call, never a hit.
func TestKeyDiscriminates(t *testing.T) {
	c := New(Config{})
	base := key(1)
	c.Begin(base)
	c.Complete(base, []byte("r"), 0)
	for name, k := range map[string]Key{
		"client": {Client: netip.MustParseAddrPort("10.0.0.2:1023"), XID: base.XID, Proc: base.Proc, Sum: base.Sum},
		"port":   {Client: netip.MustParseAddrPort("10.0.0.1:2000"), XID: base.XID, Proc: base.Proc, Sum: base.Sum},
		"xid":    {Client: base.Client, XID: 2, Proc: base.Proc, Sum: base.Sum},
		"proc":   {Client: base.Client, XID: base.XID, Proc: 14, Sum: base.Sum},
		"sum":    {Client: base.Client, XID: base.XID, Proc: base.Proc, Sum: 999},
	} {
		if out, _, _ := c.Begin(k); out != Miss {
			t.Errorf("%s variant: Begin = %v, want Miss", name, out)
		}
	}
}

// TestCompleteCopiesReply: the cache must own its reply bytes; mutating
// the caller's buffer after Complete must not corrupt a later replay.
func TestCompleteCopiesReply(t *testing.T) {
	c := New(Config{})
	k := key(1)
	c.Begin(k)
	buf := []byte("pristine")
	c.Complete(k, buf, 0)
	copy(buf, "clobberd")
	if _, reply, _ := c.Begin(k); string(reply) != "pristine" {
		t.Fatalf("replayed reply %q aliases the caller's buffer", reply)
	}
}

// TestAbort releases the reservation: the next Begin is a fresh Miss,
// not Busy-forever.
func TestAbort(t *testing.T) {
	c := New(Config{})
	k := key(1)
	c.Begin(k)
	c.Abort(k)
	if out, _, _ := c.Begin(k); out != Miss {
		t.Fatalf("Begin after Abort = %v, want Miss", out)
	}
	// Abort of a completed key is a no-op; the entry stays replayable.
	c.Complete(k, []byte("r"), 0)
	c.Abort(k)
	if out, _, _ := c.Begin(k); out != Hit {
		t.Fatalf("Begin after no-op Abort = %v, want Hit", out)
	}
}

// TestByteBudgetEviction: completed entries evict oldest-first once the
// budget is exceeded; evicted calls become misses again.
func TestByteBudgetEviction(t *testing.T) {
	reply := make([]byte, 200)
	perEntry := len(reply) + entryOverhead
	c := New(Config{MaxBytes: 4 * perEntry})
	for xid := uint32(1); xid <= 6; xid++ {
		k := key(xid)
		c.Begin(k)
		c.Complete(k, reply, 0)
	}
	s := c.Stats()
	if s.Evictions != 2 || s.Entries != 4 || s.Bytes != 4*perEntry {
		t.Fatalf("stats %v, want 2 evictions, 4 entries", s)
	}
	// The two oldest are gone, the four newest replay.
	for xid := uint32(1); xid <= 6; xid++ {
		out, _, _ := c.Begin(key(xid))
		want := Hit
		if xid <= 2 {
			want = Miss
		}
		if out != want {
			t.Errorf("xid %d: Begin = %v, want %v", xid, out, want)
		}
		if want == Miss {
			c.Abort(key(xid))
		}
	}
}

// TestHitRefreshesLRU: replaying an entry moves it to the front, so a
// hot retransmitted call outlives colder neighbors under pressure.
func TestHitRefreshesLRU(t *testing.T) {
	reply := make([]byte, 100)
	perEntry := len(reply) + entryOverhead
	c := New(Config{MaxBytes: 3 * perEntry})
	for xid := uint32(1); xid <= 3; xid++ {
		c.Begin(key(xid))
		c.Complete(key(xid), reply, 0)
	}
	c.Begin(key(1)) // refresh the oldest
	// Two more completions must evict 2 and 3, not 1.
	for xid := uint32(4); xid <= 5; xid++ {
		c.Begin(key(xid))
		c.Complete(key(xid), reply, 0)
	}
	if out, _, _ := c.Begin(key(1)); out != Hit {
		t.Fatalf("refreshed entry evicted: Begin = %v", out)
	}
	if out, _, _ := c.Begin(key(2)); out != Miss {
		t.Fatalf("cold entry survived: Begin = %v", out)
	}
}

// TestOversizedReplyBypasses: a reply larger than the whole budget is
// not retained and does not wedge the cache.
func TestOversizedReplyBypasses(t *testing.T) {
	c := New(Config{MaxBytes: 256})
	k := key(1)
	c.Begin(k)
	c.Complete(k, make([]byte, 1024), 0)
	s := c.Stats()
	if s.Bypasses != 1 || s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("stats %v, want 1 bypass, empty cache", s)
	}
	if out, _, _ := c.Begin(k); out != Miss {
		t.Fatalf("Begin after bypass = %v, want Miss (re-execute is the documented degradation)", out)
	}
}

// TestInProgressPinnedAgainstEviction: reservations don't count against
// the budget and are never evicted — evicting one would turn the racing
// retransmission it guards against into a re-execution.
func TestInProgressPinnedAgainstEviction(t *testing.T) {
	reply := make([]byte, 100)
	perEntry := len(reply) + entryOverhead
	c := New(Config{MaxBytes: 2 * perEntry})
	pinned := key(100)
	c.Begin(pinned)
	for xid := uint32(1); xid <= 10; xid++ {
		c.Begin(key(xid))
		c.Complete(key(xid), reply, 0)
	}
	if out, _, _ := c.Begin(pinned); out != Busy {
		t.Fatalf("in-progress entry evicted under pressure: Begin = %v", out)
	}
	c.Complete(pinned, reply, 0)
	if out, _, _ := c.Begin(pinned); out != Hit {
		t.Fatalf("pinned entry lost its completion: Begin = %v", out)
	}
}

// TestConcurrentAccess hammers the cache from many goroutines with
// overlapping keys. Run under -race; the property checked is that every
// key settles to exactly one cached reply.
func TestConcurrentAccess(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 16})
	const workers, keys = 8, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := key(uint32(i))
				switch out, reply, _ := c.Begin(k); out {
				case Miss:
					c.Complete(k, []byte(fmt.Sprintf("reply-%d", i)), 0)
				case Hit:
					if string(reply) != fmt.Sprintf("reply-%d", i) {
						t.Errorf("key %d: wrong cached reply %q", i, reply)
					}
				case Busy:
					// The original is mid-flight in another goroutine.
				}
			}
		}(w)
	}
	wg.Wait()
}
