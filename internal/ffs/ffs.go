// Package ffs implements the file-system substrate: an FFS-flavoured
// extent allocator over a disk partition, plus the vnode-level read path
// (demand block reads with heuristic-driven cluster read-ahead through
// the buffer cache). It captures the properties the paper's experiments
// rest on — files laid out mostly contiguously in partition order, with
// small metadata gaps, optional aging-induced fragmentation, and a
// sequential-access detector that scales read-ahead.
package ffs

import (
	"fmt"

	"nfstricks/internal/buffercache"
	"nfstricks/internal/disk"
	"nfstricks/internal/readahead"
	"nfstricks/internal/sim"
)

// BlockSize is the file-system block size (8 KB).
const BlockSize = buffercache.BlockSize

// SectorsPerBlock is BlockSize in sectors.
const SectorsPerBlock = buffercache.SectorsPerBlock

// DefaultExtentBlocks is the contiguous run length between metadata
// gaps (2 MB — roughly the span an indirect block covers before FFS
// inserts bookkeeping blocks).
const DefaultExtentBlocks = 256

// DefaultMaxReadAhead is the per-file read-ahead ceiling in blocks
// (128 KB), the cluster_read-era limit.
const DefaultMaxReadAhead = 16

// Config tunes a file system instance.
type Config struct {
	// ExtentBlocks is the contiguous allocation run length in blocks
	// (DefaultExtentBlocks if zero).
	ExtentBlocks int
	// AgingSkipBlocks, when positive, fragments allocation: after each
	// extent the allocator skips a pseudo-random number of blocks up to
	// this bound, emulating an aged file system (paper §3 argues their
	// gains grow with aging; this is the ablation knob).
	AgingSkipBlocks int
	// MaxReadAhead caps the read-ahead window in blocks
	// (DefaultMaxReadAhead if zero).
	MaxReadAhead int
	// HandleBase sets the file-handle numbering base, so multiple file
	// systems exported by one server have disjoint handle spaces. If
	// zero, a base is derived from the partition's start LBA (which is
	// only unique within a single disk).
	HandleBase uint64
}

type extent struct {
	firstBlock int64 // file-relative block number of the extent start
	lba        int64
	blocks     int64
}

// File is an allocated file: a name, a size and an extent map. The
// Handle doubles as the NFS file-handle identity.
type File struct {
	name    string
	size    int64
	handle  uint64
	extents []extent
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the file's length in bytes.
func (f *File) Size() int64 { return f.size }

// Handle returns the file's stable handle (non-zero).
func (f *File) Handle() uint64 { return f.handle }

// Blocks returns the number of (whole or partial) blocks in the file.
func (f *File) Blocks() int64 { return (f.size + BlockSize - 1) / BlockSize }

// FS is one file system on one partition, sharing the volume's buffer
// cache.
type FS struct {
	k     *sim.Kernel
	cache *buffercache.Cache
	part  disk.Partition
	cfg   Config

	files   map[string]*File
	byFH    map[uint64]*File
	nextLBA int64
	rootFH  uint64
	nextFH  uint64
}

// New creates an empty file system on part, caching through cache.
func New(k *sim.Kernel, cache *buffercache.Cache, part disk.Partition, cfg Config) *FS {
	if cfg.ExtentBlocks <= 0 {
		cfg.ExtentBlocks = DefaultExtentBlocks
	}
	if cfg.MaxReadAhead <= 0 {
		cfg.MaxReadAhead = DefaultMaxReadAhead
	}
	base := cfg.HandleBase
	if base == 0 {
		base = uint64(part.StartLBA)/16 + 1
	}
	return &FS{
		k:       k,
		cache:   cache,
		part:    part,
		cfg:     cfg,
		files:   make(map[string]*File),
		byFH:    make(map[uint64]*File),
		nextLBA: part.StartLBA,
		rootFH:  base,
		nextFH:  base + 1,
	}
}

// RootHandle returns the handle of the file system's root directory.
func (fs *FS) RootHandle() uint64 { return fs.rootFH }

// Partition returns the underlying partition.
func (fs *FS) Partition() disk.Partition { return fs.part }

// Cache returns the buffer cache the file system reads through.
func (fs *FS) Cache() *buffercache.Cache { return fs.cache }

// Create allocates a file of size bytes filled with (notionally)
// non-zero data, as the paper's benchmark setup does. Allocation is
// first-fit from the partition start: files created in order sit in
// ascending LBA order.
func (fs *FS) Create(name string, size int64) (*File, error) {
	if _, dup := fs.files[name]; dup {
		return nil, fmt.Errorf("ffs: %q already exists", name)
	}
	if size <= 0 {
		return nil, fmt.Errorf("ffs: size must be positive, got %d", size)
	}
	f := &File{name: name, handle: fs.nextFH}
	fs.nextFH++
	if err := fs.extend(f, size); err != nil {
		return nil, err
	}
	fs.files[name] = f
	fs.byFH[f.handle] = f
	return f, nil
}

// extend grows f to newSize, allocating extents.
func (fs *FS) extend(f *File, newSize int64) error {
	partEnd := fs.part.StartLBA + fs.part.Sectors
	blocksNeeded := (newSize+BlockSize-1)/BlockSize - f.Blocks()
	for blocksNeeded > 0 {
		run := int64(fs.cfg.ExtentBlocks)
		if run > blocksNeeded {
			run = blocksNeeded
		}
		if fs.nextLBA+run*SectorsPerBlock > partEnd {
			return fmt.Errorf("ffs: partition %s full", fs.part.Name)
		}
		var allocated int64
		for _, e := range f.extents {
			allocated += e.blocks
		}
		f.extents = append(f.extents, extent{
			firstBlock: allocated,
			lba:        fs.nextLBA,
			blocks:     run,
		})
		fs.nextLBA += run * SectorsPerBlock
		// Metadata gap after each full extent, plus aging skip.
		fs.nextLBA += SectorsPerBlock
		if fs.cfg.AgingSkipBlocks > 0 {
			skip := int64(fs.k.Rand().Intn(fs.cfg.AgingSkipBlocks + 1))
			fs.nextLBA += skip * SectorsPerBlock
		}
		blocksNeeded -= run
	}
	f.size = newSize
	return nil
}

// Lookup finds a file by name.
func (fs *FS) Lookup(name string) (*File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// ByHandle finds a file by its handle.
func (fs *FS) ByHandle(fh uint64) (*File, bool) {
	f, ok := fs.byFH[fh]
	return f, ok
}

// Remove deletes a file. Its blocks are not reused (the benchmark never
// needs reuse; an aged FS is modelled via Config instead).
func (fs *FS) Remove(name string) bool {
	f, ok := fs.files[name]
	if !ok {
		return false
	}
	delete(fs.files, name)
	delete(fs.byFH, f.handle)
	return true
}

// BlockLBA maps a file-relative block number to its LBA.
func (fs *FS) BlockLBA(f *File, block int64) int64 {
	if block < 0 || block >= f.Blocks() {
		panic(fmt.Sprintf("ffs: block %d out of range for %s (%d blocks)", block, f.name, f.Blocks()))
	}
	for _, e := range f.extents {
		if block >= e.firstBlock && block < e.firstBlock+e.blocks {
			return e.lba + (block-e.firstBlock)*SectorsPerBlock
		}
	}
	panic(fmt.Sprintf("ffs: no extent for block %d of %s", block, f.name))
}

// ReadBlocks performs a demand read of count blocks starting at block,
// blocking p until they are resident. Read-ahead is issued separately
// via Prefetch, whose window the caller derives from its sequentiality
// heuristic.
func (fs *FS) ReadBlocks(p *sim.Proc, f *File, block, count int64) {
	for b := block; b < block+count && b < f.Blocks(); b++ {
		fs.cache.Read(p, fs.BlockLBA(f, b))
	}
}

// Prefetch implements frontier-based clustered read-ahead, as FreeBSD's
// cluster_read does: read-ahead is issued only when the demand read
// (ending at block demandEnd) approaches the stream's prefetch frontier,
// and then the frontier advances by the whole window. Prefetch thus
// reaches the disk as a few large commands instead of trickling out one
// block per read, which would forfeit the benefit of clustering. The
// frontier is owned by the caller's per-stream heuristic state.
func (fs *FS) Prefetch(f *File, demandEnd int64, window int, frontier *uint64) {
	if window <= 0 {
		return
	}
	front := int64(*frontier)
	if front < demandEnd {
		front = demandEnd
	}
	if demandEnd+int64(window)/2 < front {
		return // plenty already prefetched
	}
	newFront := demandEnd + int64(window)
	if max := f.Blocks(); newFront > max {
		newFront = max
	}
	if newFront <= front {
		return
	}
	fs.readAhead(f, front, int(newFront-front))
	*frontier = uint64(newFront)
}

// readAhead prefetches up to n blocks of f starting at block,
// splitting at extent boundaries so the cache sees contiguous LBA runs.
func (fs *FS) readAhead(f *File, block int64, n int) {
	for n > 0 && block < f.Blocks() {
		lba := fs.BlockLBA(f, block)
		run := 1
		for run < n && block+int64(run) < f.Blocks() &&
			fs.BlockLBA(f, block+int64(run)) == lba+int64(run)*SectorsPerBlock {
			run++
		}
		fs.cache.ReadAhead(lba, run)
		block += int64(run)
		n -= run
	}
}

// WriteBlocks installs count blocks starting at block as written,
// extending the file if needed, with asynchronous write-through.
func (fs *FS) WriteBlocks(p *sim.Proc, f *File, block, count int64) error {
	need := (block + count) * BlockSize
	if need > f.size {
		if err := fs.extend(f, need); err != nil {
			return err
		}
	}
	for b := block; b < block+count; b++ {
		fs.cache.Write(fs.BlockLBA(f, b))
	}
	return nil
}

// OpenFile is a local open-file descriptor: it carries the vnode-level
// sequential-access state FreeBSD keeps per open file, driving local
// cluster read-ahead. (The NFS server cannot use this — NFS has no
// opens — which is the whole reason nfsheur exists.)
type OpenFile struct {
	fs    *FS
	f     *File
	h     readahead.Heuristic
	state readahead.State
}

// Open returns a descriptor for name with the default (FreeBSD local)
// sequentiality heuristic.
func (fs *FS) Open(name string) (*OpenFile, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("ffs: %q not found", name)
	}
	of := &OpenFile{fs: fs, f: f, h: readahead.Default{}}
	of.state.Reset()
	return of, nil
}

// File returns the underlying file.
func (of *OpenFile) File() *File { return of.f }

// Read reads length bytes at offset off, blocking p for any disk I/O,
// and triggers heuristic-scaled read-ahead. It returns the number of
// bytes read (short at EOF).
func (of *OpenFile) Read(p *sim.Proc, off, length int64) int64 {
	if off >= of.f.size {
		return 0
	}
	if off+length > of.f.size {
		length = of.f.size - off
	}
	seq := of.h.Update(&of.state, uint64(off), uint64(length))
	first := off / BlockSize
	last := (off + length - 1) / BlockSize
	of.fs.ReadBlocks(p, of.f, first, last-first+1)
	w := readahead.Window(seq, of.fs.cfg.MaxReadAhead)
	of.fs.Prefetch(of.f, last+1, w, of.h.Frontier(&of.state))
	return length
}
