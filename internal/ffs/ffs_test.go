package ffs

import (
	"testing"
	"testing/quick"
	"time"

	"nfstricks/internal/buffercache"
	"nfstricks/internal/disk"
	"nfstricks/internal/iosched"
	"nfstricks/internal/sim"
)

// rig builds a kernel + IDE disk + elevator driver + cache + FS on the
// outermost quarter partition.
func rig(seed int64, cfg Config) (*sim.Kernel, *FS, *buffercache.Cache) {
	k := sim.NewKernel(seed)
	m := disk.WD200BB()
	dev := disk.NewDevice(k, m)
	dr := disk.NewDriver(k, dev, iosched.NewElevator())
	cache := buffercache.New(k, dr, 8192)
	parts := m.Geo.QuarterPartitions("ide")
	fs := New(k, cache, parts[0], cfg)
	return k, fs, cache
}

func TestCreateAndLookup(t *testing.T) {
	_, fs, _ := rig(1, Config{})
	f, err := fs.Create("a", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1<<20 || f.Blocks() != 128 {
		t.Fatalf("size/blocks = %d/%d", f.Size(), f.Blocks())
	}
	got, ok := fs.Lookup("a")
	if !ok || got != f {
		t.Fatal("Lookup failed")
	}
	if _, ok := fs.ByHandle(f.Handle()); !ok {
		t.Fatal("ByHandle failed")
	}
	if f.Handle() == 0 {
		t.Fatal("zero handle")
	}
}

func TestCreateRejectsDuplicatesAndBadSizes(t *testing.T) {
	_, fs, _ := rig(1, Config{})
	if _, err := fs.Create("a", 8192); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("a", 8192); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := fs.Create("b", 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestCreateFailsWhenPartitionFull(t *testing.T) {
	k := sim.NewKernel(1)
	m := disk.WD200BB()
	dev := disk.NewDevice(k, m)
	dr := disk.NewDriver(k, dev, iosched.NewFIFO())
	cache := buffercache.New(k, dr, 64)
	tiny := disk.Partition{Name: "tiny", StartLBA: 0, Sectors: 160} // 10 blocks
	fs := New(k, cache, tiny, Config{})
	if _, err := fs.Create("big", 1<<20); err == nil {
		t.Fatal("overfull create accepted")
	}
}

func TestBlockLBAMonotonicWithinFile(t *testing.T) {
	_, fs, _ := rig(1, Config{})
	f, _ := fs.Create("a", 16<<20)
	prev := int64(-1)
	for b := int64(0); b < f.Blocks(); b++ {
		lba := fs.BlockLBA(f, b)
		if lba <= prev {
			t.Fatalf("LBA not increasing at block %d: %d <= %d", b, lba, prev)
		}
		prev = lba
	}
}

func TestFilesCreatedInOrderAscendOnDisk(t *testing.T) {
	_, fs, _ := rig(1, Config{})
	a, _ := fs.Create("a", 1<<20)
	b, _ := fs.Create("b", 1<<20)
	if fs.BlockLBA(b, 0) <= fs.BlockLBA(a, a.Blocks()-1) {
		t.Fatal("second file does not follow the first on disk")
	}
}

func TestExtentGapsAreSmall(t *testing.T) {
	_, fs, _ := rig(1, Config{})
	f, _ := fs.Create("a", 8<<20) // spans several extents
	for b := int64(1); b < f.Blocks(); b++ {
		gap := fs.BlockLBA(f, b) - fs.BlockLBA(f, b-1) - SectorsPerBlock
		if gap < 0 {
			t.Fatalf("overlapping blocks at %d", b)
		}
		if gap > 2*SectorsPerBlock {
			t.Fatalf("fresh FS gap of %d sectors at block %d", gap, b)
		}
	}
}

func TestAgingIncreasesFragmentation(t *testing.T) {
	span := func(cfg Config) int64 {
		_, fs, _ := rig(7, cfg)
		f, _ := fs.Create("a", 32<<20)
		return fs.BlockLBA(f, f.Blocks()-1) - fs.BlockLBA(f, 0)
	}
	fresh := span(Config{})
	aged := span(Config{AgingSkipBlocks: 512})
	if aged <= fresh {
		t.Fatalf("aged span %d <= fresh span %d", aged, fresh)
	}
}

func TestSequentialReadUsesClusters(t *testing.T) {
	k, fs, cache := rig(1, Config{})
	f, _ := fs.Create("a", 4<<20)
	var elapsed time.Duration
	k.Go("reader", func(p *sim.Proc) {
		of, err := fs.Open("a")
		if err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		for off := int64(0); off < f.Size(); off += BlockSize {
			of.Read(p, off, BlockSize)
		}
		elapsed = p.Now() - start
	})
	k.Run()
	k.Shutdown()

	st := cache.Stats()
	if st.ReadAheads == 0 {
		t.Fatal("sequential read issued no read-ahead")
	}
	// Read-ahead must make most demand reads cache hits.
	hitRate := float64(st.Hits+st.InFlight) / float64(st.Hits+st.InFlight+st.Misses)
	if hitRate < 0.7 {
		t.Fatalf("hit rate %.2f; read-ahead ineffective", hitRate)
	}
	// Throughput should approach the outer-zone media rate (~41 MB/s).
	rate := float64(f.Size()) / elapsed.Seconds() / 1e6
	if rate < 20 {
		t.Fatalf("sequential read rate %.1f MB/s; too slow for clustered read-ahead", rate)
	}
}

func TestReadBeyondEOF(t *testing.T) {
	k, fs, _ := rig(1, Config{})
	fs.Create("a", BlockSize)
	var n int64 = -1
	k.Go("reader", func(p *sim.Proc) {
		of, _ := fs.Open("a")
		n = of.Read(p, 2*BlockSize, BlockSize)
	})
	k.Run()
	k.Shutdown()
	if n != 0 {
		t.Fatalf("read past EOF returned %d", n)
	}
}

func TestShortReadAtEOF(t *testing.T) {
	k, fs, _ := rig(1, Config{})
	fs.Create("a", BlockSize+100)
	var n int64
	k.Go("reader", func(p *sim.Proc) {
		of, _ := fs.Open("a")
		n = of.Read(p, BlockSize, BlockSize)
	})
	k.Run()
	k.Shutdown()
	if n != 100 {
		t.Fatalf("short read = %d, want 100", n)
	}
}

func TestOpenMissingFile(t *testing.T) {
	_, fs, _ := rig(1, Config{})
	if _, err := fs.Open("nope"); err == nil {
		t.Fatal("Open of missing file succeeded")
	}
}

func TestWriteBlocksExtendsFile(t *testing.T) {
	k, fs, _ := rig(1, Config{})
	f, _ := fs.Create("a", BlockSize)
	k.Go("writer", func(p *sim.Proc) {
		if err := fs.WriteBlocks(p, f, 10, 2); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	k.Shutdown()
	if f.Blocks() < 12 {
		t.Fatalf("file not extended: %d blocks", f.Blocks())
	}
}

func TestRemove(t *testing.T) {
	_, fs, _ := rig(1, Config{})
	f, _ := fs.Create("a", BlockSize)
	if !fs.Remove("a") {
		t.Fatal("Remove failed")
	}
	if _, ok := fs.Lookup("a"); ok {
		t.Fatal("file still present")
	}
	if _, ok := fs.ByHandle(f.Handle()); ok {
		t.Fatal("handle still present")
	}
	if fs.Remove("a") {
		t.Fatal("second Remove succeeded")
	}
}

// Property: the block->LBA map is injective and stays within the
// partition for arbitrary file sizes.
func TestBlockLBAWithinPartition(t *testing.T) {
	f := func(sizesMB []uint8, aging bool) bool {
		cfg := Config{}
		if aging {
			cfg.AgingSkipBlocks = 64
		}
		_, fs, _ := rig(3, cfg)
		part := fs.Partition()
		seen := make(map[int64]bool)
		for i, s := range sizesMB {
			size := (int64(s%16) + 1) << 20
			file, err := fs.Create(name(i), size)
			if err != nil {
				return true // partition full is legal
			}
			for b := int64(0); b < file.Blocks(); b++ {
				lba := fs.BlockLBA(file, b)
				if lba < part.StartLBA || lba >= part.StartLBA+part.Sectors {
					return false
				}
				if seen[lba] {
					return false
				}
				seen[lba] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func name(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }
