package disk

import (
	"time"

	"nfstricks/internal/iosched"
	"nfstricks/internal/sim"
)

// Driver couples a host-side scheduler to a device, emulating the
// FreeBSD block layer: requests pass through the kernel's disksort queue
// and are dispatched to the drive. With the drive's tagged command queue
// enabled, up to QueueDepth commands are pushed down immediately and the
// *drive* effectively decides service order; with TCQ disabled only one
// command is outstanding and the host scheduler's order is authoritative
// (the paper's §5.2 observation).
type Driver struct {
	k        *sim.Kernel
	dev      *Device
	sched    iosched.Scheduler
	inflight int

	// stats
	submitted int64
	completed int64
	waitTotal time.Duration
}

// NewDriver returns a driver feeding dev from sched.
func NewDriver(k *sim.Kernel, dev *Device, sched iosched.Scheduler) *Driver {
	return &Driver{k: k, dev: dev, sched: sched}
}

// Device returns the underlying device.
func (dr *Driver) Device() *Device { return dr.dev }

// Scheduler returns the host-side scheduler currently in use.
func (dr *Driver) Scheduler() iosched.Scheduler { return dr.sched }

// SetScheduler swaps the host scheduling discipline at runtime (the
// paper added a sysctl switch for exactly this). Pending requests are
// migrated in arbitrary order.
func (dr *Driver) SetScheduler(s iosched.Scheduler) {
	for dr.sched.Len() > 0 {
		s.Push(dr.sched.Pop(dr.dev.HeadLBA()))
	}
	dr.sched = s
}

// Submit queues a request; its Done callback fires on completion.
func (dr *Driver) Submit(r *Request) {
	dr.submitted++
	start := dr.k.Now()
	orig := r.Done
	r.Done = func(req *Request) {
		dr.inflight--
		dr.completed++
		dr.waitTotal += dr.k.Now() - start
		if orig != nil {
			orig(req)
		}
		dr.pump()
	}
	dr.sched.Push(r)
	dr.pump()
}

// Pending reports requests queued at the host but not yet dispatched.
func (dr *Driver) Pending() int { return dr.sched.Len() }

// Inflight reports commands dispatched to the device and not complete.
func (dr *Driver) Inflight() int { return dr.inflight }

// AvgWait reports the mean submit-to-completion latency.
func (dr *Driver) AvgWait() time.Duration {
	if dr.completed == 0 {
		return 0
	}
	return dr.waitTotal / time.Duration(dr.completed)
}

func (dr *Driver) pump() {
	for dr.inflight < dr.dev.QueueDepth() && dr.sched.Len() > 0 {
		r := dr.sched.Pop(dr.dev.HeadLBA())
		dr.inflight++
		dr.dev.Start(r.(*Request))
	}
}
