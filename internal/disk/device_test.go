package disk

import (
	"testing"
	"time"

	"nfstricks/internal/iosched"
	"nfstricks/internal/sim"
)

// runOne submits a single request and returns its completion time.
func runOne(t *testing.T, d *Device, k *sim.Kernel, lba int64, sectors int) time.Duration {
	t.Helper()
	var done time.Duration
	start := k.Now()
	d.Start(&Request{LBA: lba, Sectors: sectors, Done: func(*Request) { done = k.Now() }})
	k.Run()
	if done == 0 && start == done {
		// A request at t=0 completing instantly would be a model bug.
		t.Fatal("request completed in zero time or never")
	}
	return done - start
}

func TestSequentialReadsHitStreamCache(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, WD200BB())
	first := runOne(t, d, k, 1000, 16)
	second := runOne(t, d, k, 1016, 16) // continues the stream
	if second >= first {
		t.Fatalf("sequential continuation (%v) not faster than cold read (%v)", second, first)
	}
	st := d.Stats()
	if st.Streamed != 1 || st.Repositions != 1 {
		t.Fatalf("streamed/repositions = %d/%d, want 1/1", st.Streamed, st.Repositions)
	}
}

func TestIdlePrefetchFillsBuffer(t *testing.T) {
	// Read a block, let the drive idle (firmware prefetches), reposition
	// elsewhere, then return to the first stream: the return must be a
	// buffer hit, not a mechanical reposition.
	k := sim.NewKernel(1)
	d := NewDevice(k, WD200BB())
	var step func(int)
	times := make([]time.Duration, 0, 4)
	reqs := []struct {
		lba   int64
		delay time.Duration
	}{
		{1000, 0},
		{30_000_000, 5 * time.Millisecond}, // far away, after idle
		{1016, 0},                          // back to stream 1: buffered
	}
	step = func(i int) {
		if i == len(reqs) {
			return
		}
		k.Schedule(reqs[i].delay, func() {
			start := k.Now()
			d.Start(&Request{LBA: reqs[i].lba, Sectors: 16, Done: func(*Request) {
				times = append(times, k.Now()-start)
				step(i + 1)
			}})
		})
	}
	step(0)
	k.Run()
	if len(times) != 3 {
		t.Fatalf("completed %d", len(times))
	}
	if d.Stats().CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1 (idle prefetch)", d.Stats().CacheHits)
	}
	if times[2] >= times[1] {
		t.Fatalf("buffered return (%v) not faster than reposition (%v)", times[2], times[1])
	}
}

func TestNoIdleNoBufferHit(t *testing.T) {
	// Back-to-back stream switches with zero idle time must all pay
	// repositions: the drive had no chance to prefetch.
	k := sim.NewKernel(1)
	d := NewDevice(k, WD200BB())
	lbas := []int64{1000, 30_000_000, 1016, 30_000_016}
	i := 0
	var next func()
	next = func() {
		if i == len(lbas) {
			return
		}
		lba := lbas[i]
		i++
		d.Start(&Request{LBA: lba, Sectors: 16, Done: func(*Request) { next() }})
	}
	next()
	k.Run()
	if hits := d.Stats().CacheHits; hits != 0 {
		t.Fatalf("cache hits = %d, want 0 under saturation", hits)
	}
	if repos := d.Stats().Repositions; repos != 4 {
		t.Fatalf("repositions = %d, want 4", repos)
	}
}

func TestSequentialThroughputApproachesMediaRate(t *testing.T) {
	k := sim.NewKernel(1)
	m := WD200BB()
	d := NewDevice(k, m)
	// Read 8 MB in 64 KB commands sequentially from the outer zone.
	const cmds = 128
	const sectors = 128
	var finished time.Duration
	lba := int64(0)
	var next func()
	i := 0
	next = func() {
		if i == cmds {
			finished = k.Now()
			return
		}
		i++
		r := &Request{LBA: lba, Sectors: sectors, Done: func(*Request) { next() }}
		lba += sectors
		d.Start(r)
	}
	next()
	k.Run()
	bytes := float64(cmds * sectors * SectorSize)
	rate := bytes / finished.Seconds()
	media := m.MediaRateAt(0)
	if rate < 0.7*media || rate > 1.05*media {
		t.Fatalf("sequential rate %.1f MB/s, media rate %.1f MB/s", rate/1e6, media/1e6)
	}
}

func TestZCAVInnerSlowerThanOuter(t *testing.T) {
	read := func(start int64) time.Duration {
		k := sim.NewKernel(1)
		m := WD200BB()
		d := NewDevice(k, m)
		var finished time.Duration
		lba := start
		i := 0
		var next func()
		next = func() {
			if i == 64 {
				finished = k.Now()
				return
			}
			i++
			r := &Request{LBA: lba, Sectors: 128, Done: func(*Request) { next() }}
			lba += 128
			d.Start(r)
		}
		next()
		k.Run()
		return finished
	}
	m := WD200BB()
	outer := read(0)
	inner := read(m.Geo.TotalSectors() - 64*128 - 1000)
	if inner <= outer {
		t.Fatalf("inner zone read (%v) not slower than outer (%v)", inner, outer)
	}
	ratio := float64(inner) / float64(outer)
	if ratio < 1.2 {
		t.Fatalf("ZCAV ratio %.2f too weak", ratio)
	}
}

func TestRandomReadsPayPositioning(t *testing.T) {
	k := sim.NewKernel(1)
	m := IBMDDYS36950()
	d := NewDevice(k, m)
	// Far-apart reads must each take at least a seek + transfer.
	t1 := runOne(t, d, k, 0, 16)
	t2 := runOne(t, d, k, m.Geo.TotalSectors()/2, 16)
	if t2 < m.SeekAvg/2 {
		t.Fatalf("far read took %v, expected at least a real seek", t2)
	}
	_ = t1
	if d.Stats().Repositions != 2 {
		t.Fatalf("repositions = %d, want 2", d.Stats().Repositions)
	}
}

func TestSegmentLRURecycling(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, IBMDDYS36950())
	// Touch NumSegments+2 distinct streams; the table must not grow.
	for i := 0; i < NumSegments+2; i++ {
		runOne(t, d, k, int64(i)*1_000_000, 16)
	}
	if len(d.segments) != NumSegments {
		t.Fatalf("segment table has %d entries, want %d", len(d.segments), NumSegments)
	}
}

func TestTCQReordersForShorterPositioning(t *testing.T) {
	k := sim.NewKernel(1)
	m := IBMDDYS36950()
	d := NewDevice(k, m)
	d.SetTCQ(true)

	var order []int64
	mk := func(lba int64) *Request {
		return &Request{LBA: lba, Sectors: 16, Done: func(r *Request) { order = append(order, r.LBA) }}
	}
	// While the first (far) command is in service, queue one far and one
	// near command; with TCQ the near one should be serviced first.
	d.Start(mk(m.Geo.TotalSectors() - 5000))
	far := mk(5_000_000)
	near := mk(m.Geo.TotalSectors() - 4984) // continues first stream
	d.Start(far)
	d.Start(near)
	k.Run()
	if len(order) != 3 {
		t.Fatalf("completed %d commands", len(order))
	}
	if order[1] != near.LBA {
		t.Fatalf("TCQ service order = %v, want near request second", order)
	}
	if d.Stats().Reordered == 0 {
		t.Fatal("no reordering recorded")
	}
}

func TestTCQAgingPreventsStarvation(t *testing.T) {
	k := sim.NewKernel(1)
	m := IBMDDYS36950()
	d := NewDevice(k, m)
	d.SetTCQ(true)

	served := make(map[int64]bool)
	var mkSeq func(lba int64)
	count := 0
	mkSeq = func(lba int64) {
		d.Start(&Request{LBA: lba, Sectors: 16, Done: func(r *Request) {
			served[r.LBA] = true
			count++
			if count < 200 {
				mkSeq(lba + 16) // keep a hot sequential stream running
			}
		}})
	}
	farLBA := m.Geo.TotalSectors() - 1000
	var farDone time.Duration
	d.Start(&Request{LBA: farLBA, Sectors: 16, Done: func(*Request) { farDone = k.Now() }})
	mkSeq(0)
	k.Run()
	if farDone == 0 {
		t.Fatal("far request starved forever")
	}
	// With aging, the far request must complete well before the hot
	// stream finishes all 200 commands.
	if count < 200 {
		t.Fatalf("stream stalled at %d", count)
	}
	if farDone > 500*time.Millisecond {
		t.Fatalf("far request waited %v; aging too weak", farDone)
	}
}

func TestSetTCQRespectsModelSupport(t *testing.T) {
	k := sim.NewKernel(1)
	ide := NewDevice(k, WD200BB())
	ide.SetTCQ(true)
	if ide.TCQ() {
		t.Fatal("IDE model must not enable TCQ")
	}
	if ide.QueueDepth() != 1 {
		t.Fatalf("IDE queue depth = %d, want 1", ide.QueueDepth())
	}
	scsi := NewDevice(k, IBMDDYS36950())
	if !scsi.TCQ() {
		t.Fatal("SCSI TCQ should default on")
	}
	scsi.SetTCQ(false)
	if scsi.TCQ() || scsi.QueueDepth() != 1 {
		t.Fatal("SetTCQ(false) did not take effect")
	}
}

func TestDriverWindowOneWithoutTCQ(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, IBMDDYS36950())
	d.SetTCQ(false)
	dr := NewDriver(k, d, iosched.NewElevator())
	maxInflight := 0
	for i := 0; i < 10; i++ {
		lba := int64(i) * 100000
		dr.Submit(&Request{LBA: lba, Sectors: 16, Done: func(*Request) {
			if dr.Inflight() > maxInflight {
				maxInflight = dr.Inflight()
			}
		}})
	}
	if dr.Inflight() != 1 {
		t.Fatalf("inflight = %d immediately after submit, want 1", dr.Inflight())
	}
	k.Run()
	if dr.Pending() != 0 || dr.Inflight() != 0 {
		t.Fatalf("driver left work: pending=%d inflight=%d", dr.Pending(), dr.Inflight())
	}
}

func TestDriverDispatchesWindowWithTCQ(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, IBMDDYS36950())
	dr := NewDriver(k, d, iosched.NewElevator())
	for i := 0; i < 100; i++ {
		dr.Submit(&Request{LBA: int64(i) * 100000, Sectors: 16})
	}
	if dr.Inflight() != d.Model().QueueDepth {
		t.Fatalf("inflight = %d, want %d", dr.Inflight(), d.Model().QueueDepth)
	}
	k.Run()
}

func TestDriverSchedulerSwap(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, WD200BB())
	dr := NewDriver(k, d, iosched.NewElevator())
	done := 0
	for i := 0; i < 20; i++ {
		dr.Submit(&Request{LBA: int64(i) * 50000, Sectors: 16, Done: func(*Request) { done++ }})
	}
	dr.SetScheduler(iosched.NewNCSCAN())
	if dr.Scheduler().Name() != "ncscan" {
		t.Fatalf("scheduler = %s", dr.Scheduler().Name())
	}
	k.Run()
	if done != 20 {
		t.Fatalf("completed %d of 20 after scheduler swap", done)
	}
}

func TestDriverAvgWaitPositive(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDevice(k, WD200BB())
	dr := NewDriver(k, d, iosched.NewFIFO())
	for i := 0; i < 5; i++ {
		dr.Submit(&Request{LBA: int64(i) * 1000000, Sectors: 16})
	}
	k.Run()
	if dr.AvgWait() <= 0 {
		t.Fatalf("AvgWait = %v", dr.AvgWait())
	}
}
