package disk

import (
	"math"
	"time"
)

// Model is the performance envelope of a drive: geometry plus timing
// parameters. Seek time follows the classic two-regime curve (square
// root of distance for short seeks — the acceleration-limited regime —
// and linear for long, coast-limited seeks), pinned to the single-track,
// average and full-stroke figures from the data sheet.
type Model struct {
	Name  string
	Geo   *Geometry
	RPM   int
	Heads int

	SeekSingle time.Duration // adjacent-cylinder seek
	SeekAvg    time.Duration // seek over one third of the surface
	SeekFull   time.Duration // full-stroke seek

	// Overhead charged per discrete command (controller, bus protocol).
	CommandOverhead time.Duration

	// InterfaceMBps is the sustained host-interface transfer rate in
	// MB/s, used when a command is served from the drive's buffer.
	InterfaceMBps float64

	// SupportsTCQ reports whether the drive implements tagged command
	// queueing (the paper's IDE drive does not).
	SupportsTCQ bool
	// QueueDepth is the internal tagged-queue capacity when TCQ is on.
	QueueDepth int

	// TCQAging is the on-disk scheduler's starvation-avoidance weight:
	// each nanosecond a tagged request has waited reduces its effective
	// positioning cost by this many nanoseconds. Real drive firmware
	// bounds starvation this way; it is why the paper measures the
	// on-disk scheduler as *fairer* (but slower for this workload) than
	// the host's elevator.
	TCQAging float64
}

// RevTime returns the duration of one platter revolution.
func (m *Model) RevTime() time.Duration {
	return time.Duration(float64(time.Minute) / float64(m.RPM))
}

// MediaRateAt returns the sustained media transfer rate, in bytes per
// second, for the zone containing lba. This is where ZCAV lives: outer
// zones pass more sectors under the head per revolution.
func (m *Model) MediaRateAt(lba int64) float64 {
	spt := m.Geo.SectorsPerTrackAt(lba)
	revsPerSec := float64(m.RPM) / 60.0
	return float64(spt) * SectorSize * revsPerSec
}

// TransferTime returns the media time to transfer n sectors starting at
// lba.
func (m *Model) TransferTime(lba int64, sectors int) time.Duration {
	rate := m.MediaRateAt(lba)
	bytes := float64(sectors) * SectorSize
	return time.Duration(bytes / rate * float64(time.Second))
}

// SeekTime returns the head repositioning time between two cylinders.
func (m *Model) SeekTime(from, to int) time.Duration {
	d := from - to
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	total := float64(m.Geo.Cylinders())
	third := total / 3
	df := float64(d)

	single := float64(m.SeekSingle)
	avg := float64(m.SeekAvg)
	full := float64(m.SeekFull)

	if df <= third {
		// single + b*(sqrt(d)-1), with b fixed so seek(third) == avg.
		b := (avg - single) / (math.Sqrt(third) - 1)
		return time.Duration(single + b*(math.Sqrt(df)-1))
	}
	// Linear regime: seek(third) == avg, seek(total) == full.
	slope := (full - avg) / (total - third)
	return time.Duration(avg + slope*(df-third))
}

// avgRotational is half a revolution — the expected rotational delay for
// a randomly placed target.
func (m *Model) avgRotational() time.Duration { return m.RevTime() / 2 }

// InterfaceRate returns the host-interface rate in bytes per second.
func (m *Model) InterfaceRate() float64 {
	if m.InterfaceMBps <= 0 {
		return 80e6
	}
	return m.InterfaceMBps * 1e6
}

// IBMDDYS36950 approximates the paper's SCSI drive (IBM DDYS-T36950N,
// Ultrastar-class, 10k RPM, ~36.9 GB). Zone rates run ~33 MB/s on the
// outermost cylinders to ~22 MB/s on the innermost — the 3:2 ZCAV ratio
// the paper cites as typical, and consistent with the scsi1 vs scsi4
// curves in Figure 1.
func IBMDDYS36950() *Model {
	zones := []Zone{
		{Cylinders: 2800, SectorsPerTrack: 387},
		{Cylinders: 2800, SectorsPerTrack: 368},
		{Cylinders: 2800, SectorsPerTrack: 350},
		{Cylinders: 2800, SectorsPerTrack: 331},
		{Cylinders: 2800, SectorsPerTrack: 312},
		{Cylinders: 2800, SectorsPerTrack: 294},
		{Cylinders: 2800, SectorsPerTrack: 275},
		{Cylinders: 2800, SectorsPerTrack: 258},
	}
	return &Model{
		Name:            "scsi (IBM DDYS-T36950N)",
		Geo:             MustGeometry(10, zones),
		RPM:             10000,
		Heads:           10,
		SeekSingle:      600 * time.Microsecond,
		SeekAvg:         4900 * time.Microsecond,
		SeekFull:        10500 * time.Microsecond,
		CommandOverhead: 200 * time.Microsecond,
		InterfaceMBps:   90, // Ultra160 bus, sustained
		SupportsTCQ:     true,
		QueueDepth:      64,
		TCQAging:        1.0,
	}
}

// WD200BB approximates the paper's IDE drive (Western Digital
// WD200BB-75CAA0, 7200 RPM, ~20 GB, ATA/66). Its ZCAV spread is more
// pronounced than the SCSI drive's (Figure 1), and it has no tagged
// command queue.
func WD200BB() *Model {
	zones := []Zone{
		{Cylinders: 2300, SectorsPerTrack: 668},
		{Cylinders: 2300, SectorsPerTrack: 630},
		{Cylinders: 2300, SectorsPerTrack: 592},
		{Cylinders: 2300, SectorsPerTrack: 556},
		{Cylinders: 2300, SectorsPerTrack: 520},
		{Cylinders: 2300, SectorsPerTrack: 486},
		{Cylinders: 2300, SectorsPerTrack: 455},
		{Cylinders: 2300, SectorsPerTrack: 424},
	}
	return &Model{
		Name:            "ide (WD WD200BB-75CAA0)",
		Geo:             MustGeometry(4, zones),
		RPM:             7200,
		Heads:           4,
		SeekSingle:      2 * time.Millisecond,
		SeekAvg:         8900 * time.Microsecond,
		SeekFull:        21 * time.Millisecond,
		CommandOverhead: 300 * time.Microsecond,
		InterfaceMBps:   60, // ATA/66, sustained
		SupportsTCQ:     false,
		QueueDepth:      1,
	}
}
