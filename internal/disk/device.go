package disk

import (
	"time"

	"nfstricks/internal/sim"
)

// Request is one disk command: a contiguous sector run to read or write.
type Request struct {
	LBA     int64
	Sectors int
	Write   bool
	// Done is invoked (in kernel event context) when the command
	// completes.
	Done func(*Request)

	queuedAt time.Duration // when the device accepted the command
}

// Pos implements iosched.Item.
func (r *Request) Pos() int64 { return r.LBA }

// end returns the LBA just past the request.
func (r *Request) end() int64 { return r.LBA + int64(r.Sectors) }

// segment tracks one sequential stream in the drive's buffer, emulating
// the multi-segment read cache real drives use. The head can only be in
// one place, so a stream's buffer fills exclusively while the drive
// idles on that stream (firmware keeps reading the current track after
// a command completes). Returning to a stream whose buffer has run dry
// costs a mechanical reposition.
type segment struct {
	next    int64 // LBA the stream's consumed data has reached
	fill    int64 // sectors buffered (prefetched) beyond next
	lastUse int64 // LRU clock
}

// maxSkipSectors is how far ahead of a tracked stream a request may land
// and still be treated as the same stream (the media passes over the
// gap). 128 KB covers file-system metadata holes and small strides.
const maxSkipSectors = 256

// NumSegments is the number of concurrent sequential streams the drive's
// buffer can track.
const NumSegments = 8

// segBufSectors caps one segment's prefetch buffer (256 KB — a slice of
// the drive's 2-4 MB cache).
const segBufSectors = 512

// Stats aggregates device-level counters.
type Stats struct {
	Commands     int64
	SectorsMoved int64
	Streamed     int64 // continued the stream under the head (media rate)
	CacheHits    int64 // served from a segment's prefetch buffer
	Repositions  int64 // paid seek + rotational latency
	Reordered    int64 // TCQ serviced a command ahead of an older one
	BusyTime     time.Duration
}

// Device is a simulated drive. Commands are accepted via Start and
// complete asynchronously via Request.Done. With TCQ enabled the device
// queues up to QueueDepth commands and services them in
// shortest-positioning-time-first order with an aging bonus (bounded
// starvation); with TCQ disabled it services strictly in arrival order,
// leaving scheduling decisions to the host.
type Device struct {
	k   *sim.Kernel
	m   *Model
	tcq bool

	queue    []*Request
	busy     bool
	headCyl  int
	lastEnd  int64
	segments []*segment
	curSeg   *segment // stream the head is physically positioned on
	lastSeg  *segment // stream most recently serviced (gets idle prefetch)
	idleFrom time.Duration
	useClock int64

	stats Stats
}

// NewDevice returns an idle device for model m bound to kernel k. TCQ
// starts enabled if the model supports it (FreeBSD's default behaviour).
func NewDevice(k *sim.Kernel, m *Model) *Device {
	return &Device{k: k, m: m, tcq: m.SupportsTCQ, lastEnd: -1}
}

// Model returns the device's performance model.
func (d *Device) Model() *Model { return d.m }

// SetTCQ enables or disables the tagged command queue. Disabling it on a
// model without TCQ support is a no-op (it is already off).
func (d *Device) SetTCQ(on bool) { d.tcq = on && d.m.SupportsTCQ }

// TCQ reports whether the tagged command queue is active.
func (d *Device) TCQ() bool { return d.tcq }

// QueueDepth reports how many commands the device will accept at once.
func (d *Device) QueueDepth() int {
	if d.tcq {
		return d.m.QueueDepth
	}
	return 1
}

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// HeadLBA reports the approximate current head position as an LBA (the
// end of the last serviced command), for host schedulers.
func (d *Device) HeadLBA() int64 {
	if d.lastEnd < 0 {
		return 0
	}
	return d.lastEnd
}

// QueueLen reports the number of commands queued inside the device.
func (d *Device) QueueLen() int { return len(d.queue) }

// Start accepts a command. The caller (host driver) is responsible for
// respecting QueueDepth; the device itself queues without limit.
func (d *Device) Start(r *Request) {
	if r.Sectors <= 0 {
		panic("disk: request with no sectors")
	}
	r.queuedAt = d.k.Now()
	d.queue = append(d.queue, r)
	if !d.busy {
		d.creditIdlePrefetch()
		d.serviceNext()
	}
}

// creditIdlePrefetch converts the time the drive sat idle into prefetch
// buffer for the most recently serviced stream: firmware keeps reading
// ahead of the last access while it waits for the next command. This is
// what makes latency-bound multi-stream workloads (like the paper's
// synchronous stride reads) run at buffer speed, while a saturated
// drive switching between streams pays a reposition on every switch.
func (d *Device) creditIdlePrefetch() {
	if d.lastSeg == nil {
		return
	}
	idle := d.k.Now() - d.idleFrom
	if idle <= 0 {
		return
	}
	rate := d.m.MediaRateAt(d.lastSeg.next) // bytes/sec
	gained := int64(float64(idle) / float64(time.Second) * rate / SectorSize)
	d.lastSeg.fill += gained
	if d.lastSeg.fill > segBufSectors {
		d.lastSeg.fill = segBufSectors
	}
}

// serviceNext picks the next queued command, computes its service time,
// and schedules its completion.
func (d *Device) serviceNext() {
	idx := 0
	if d.tcq && len(d.queue) > 1 {
		idx = d.pickTCQ()
	}
	if idx != 0 {
		d.stats.Reordered++
	}
	r := d.queue[idx]
	d.queue = append(d.queue[:idx], d.queue[idx+1:]...)

	svc := d.serviceTime(r, true)
	d.busy = true
	d.stats.Commands++
	d.stats.SectorsMoved += int64(r.Sectors)
	d.stats.BusyTime += svc
	d.k.Schedule(svc, func() {
		d.headCyl = d.m.Geo.CylinderOf(r.end() - 1)
		d.lastEnd = r.end()
		d.busy = false
		d.idleFrom = d.k.Now()
		if r.Done != nil {
			r.Done(r)
		}
		if len(d.queue) > 0 && !d.busy {
			d.serviceNext()
		}
	})
}

// findSegment returns the tracked stream that request r continues, or
// nil.
func (d *Device) findSegment(r *Request) *segment {
	for _, s := range d.segments {
		if r.LBA >= s.next && r.LBA-s.next <= maxSkipSectors {
			return s
		}
	}
	return nil
}

// serviceTime computes the time to execute r from the current head
// state. When commit is true the segment table and hit/miss stats are
// updated; the TCQ picker calls it with commit=false to cost candidates.
func (d *Device) serviceTime(r *Request, commit bool) time.Duration {
	seg := d.findSegment(r)
	span := int64(0)
	if seg != nil {
		span = r.end() - seg.next
	}

	switch {
	case seg != nil && seg == d.curSeg:
		// The head is on this stream: keep streaming at media rate over
		// the gap (if any) and the requested sectors.
		t := d.m.CommandOverhead/2 + d.m.TransferTime(seg.next, int(span))
		if commit {
			d.useClock++
			seg.next = r.end()
			seg.fill = 0
			seg.lastUse = d.useClock
			d.lastSeg = seg
			d.stats.Streamed++
		}
		return t

	case seg != nil && span <= seg.fill:
		// The data was prefetched into this stream's buffer while the
		// drive idled on it earlier: serve at the host interface rate
		// with no mechanical work. The head does not move.
		bytes := float64(r.Sectors) * SectorSize
		t := d.m.CommandOverhead/2 +
			time.Duration(bytes/d.m.InterfaceRate()*float64(time.Second))
		if commit {
			d.useClock++
			seg.next = r.end()
			seg.fill -= span
			seg.lastUse = d.useClock
			d.lastSeg = seg
			d.stats.CacheHits++
		}
		return t
	}

	// Reposition: seek, rotational latency, media transfer.
	cyl := d.m.Geo.CylinderOf(r.LBA)
	t := d.m.CommandOverhead + d.m.SeekTime(d.headCyl, cyl)
	if commit {
		// Rotational latency: uniformly distributed target angle.
		t += time.Duration(d.k.Rand().Int63n(int64(d.m.RevTime())))
	} else {
		t += d.m.avgRotational()
	}
	t += d.m.TransferTime(r.LBA, r.Sectors)
	if commit {
		d.useClock++
		if seg != nil {
			seg.next = r.end()
			seg.fill = 0
			seg.lastUse = d.useClock
			d.curSeg = seg
		} else {
			d.curSeg = d.touchSegment(r)
		}
		d.lastSeg = d.curSeg
		d.stats.Repositions++
	}
	return t
}

// touchSegment records r as the head of a (possibly new) tracked stream,
// recycling the least recently used slot when full.
func (d *Device) touchSegment(r *Request) *segment {
	if len(d.segments) < NumSegments {
		s := &segment{next: r.end(), lastUse: d.useClock}
		d.segments = append(d.segments, s)
		return s
	}
	lru := d.segments[0]
	for _, s := range d.segments[1:] {
		if s.lastUse < lru.lastUse {
			lru = s
		}
	}
	lru.next = r.end()
	lru.fill = 0
	lru.lastUse = d.useClock
	return lru
}

// pickTCQ chooses the queued command with the lowest effective
// positioning cost, where cost is discounted by age (starvation bound).
// This emulates on-disk firmware schedulers, which the paper observes to
// be fairer than the host's elevator at the price of breaking up long
// sequential runs.
func (d *Device) pickTCQ() int {
	now := d.k.Now()
	best := 0
	bestCost := float64(0)
	for i, r := range d.queue {
		cost := float64(d.positioningCost(r))
		age := float64(now - r.queuedAt)
		cost -= age * d.m.TCQAging
		if i == 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// positioningCost estimates the mechanical delay (excluding transfer) to
// begin servicing r.
func (d *Device) positioningCost(r *Request) time.Duration {
	if seg := d.findSegment(r); seg != nil {
		if seg == d.curSeg || r.end()-seg.next <= seg.fill {
			return d.m.TransferTime(seg.next, int(r.LBA-seg.next))
		}
	}
	cyl := d.m.Geo.CylinderOf(r.LBA)
	return d.m.SeekTime(d.headCyl, cyl) + d.m.avgRotational()
}
