package disk

import (
	"testing"
	"testing/quick"
	"time"
)

func testGeo(t *testing.T) *Geometry {
	t.Helper()
	g, err := NewGeometry(2, []Zone{
		{Cylinders: 10, SectorsPerTrack: 100},
		{Cylinders: 10, SectorsPerTrack: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeometryTotals(t *testing.T) {
	g := testGeo(t)
	// 10 cyl * 2 heads * 100 + 10 * 2 * 50 = 2000 + 1000.
	if got := g.TotalSectors(); got != 3000 {
		t.Fatalf("TotalSectors = %d, want 3000", got)
	}
	if got := g.TotalBytes(); got != 3000*SectorSize {
		t.Fatalf("TotalBytes = %d", got)
	}
	if got := g.Cylinders(); got != 20 {
		t.Fatalf("Cylinders = %d, want 20", got)
	}
}

func TestGeometryValidation(t *testing.T) {
	if _, err := NewGeometry(0, []Zone{{1, 1}}); err == nil {
		t.Fatal("zero heads accepted")
	}
	if _, err := NewGeometry(2, nil); err == nil {
		t.Fatal("empty zones accepted")
	}
	if _, err := NewGeometry(2, []Zone{{0, 10}}); err == nil {
		t.Fatal("zero-cylinder zone accepted")
	}
}

func TestCylinderOfBoundaries(t *testing.T) {
	g := testGeo(t)
	cases := []struct {
		lba  int64
		want int
	}{
		{0, 0},
		{199, 0},   // last sector of cylinder 0 (2 heads * 100 spt)
		{200, 1},   // first sector of cylinder 1
		{1999, 9},  // last sector of zone 0
		{2000, 10}, // first sector of zone 1 (2 heads * 50 spt per cyl)
		{2099, 10}, //
		{2100, 11}, //
		{2999, 19}, // last sector of the disk
	}
	for _, c := range cases {
		if got := g.CylinderOf(c.lba); got != c.want {
			t.Errorf("CylinderOf(%d) = %d, want %d", c.lba, got, c.want)
		}
	}
}

func TestLBAOfCylinderRoundTrip(t *testing.T) {
	g := testGeo(t)
	for c := 0; c < g.Cylinders(); c++ {
		lba := g.LBAOfCylinder(c)
		if got := g.CylinderOf(lba); got != c {
			t.Fatalf("CylinderOf(LBAOfCylinder(%d)) = %d", c, got)
		}
	}
}

func TestSectorsPerTrackAt(t *testing.T) {
	g := testGeo(t)
	if got := g.SectorsPerTrackAt(0); got != 100 {
		t.Fatalf("outer zone spt = %d", got)
	}
	if got := g.SectorsPerTrackAt(2500); got != 50 {
		t.Fatalf("inner zone spt = %d", got)
	}
}

func TestQuarterPartitions(t *testing.T) {
	g := testGeo(t)
	parts := g.QuarterPartitions("test")
	if parts[0].Name != "test1" || parts[3].Name != "test4" {
		t.Fatalf("names = %v %v", parts[0].Name, parts[3].Name)
	}
	var total int64
	prevEnd := int64(0)
	for _, p := range parts {
		if p.StartLBA != prevEnd {
			t.Fatalf("partition %s starts at %d, want %d", p.Name, p.StartLBA, prevEnd)
		}
		prevEnd = p.StartLBA + p.Sectors
		total += p.Sectors
	}
	if total > g.TotalSectors() {
		t.Fatalf("partitions exceed disk: %d > %d", total, g.TotalSectors())
	}
}

// Property: CylinderOf is monotonically non-decreasing in LBA and every
// result is a valid cylinder.
func TestCylinderOfMonotonic(t *testing.T) {
	g := MustGeometry(4, []Zone{
		{Cylinders: 100, SectorsPerTrack: 300},
		{Cylinders: 150, SectorsPerTrack: 250},
		{Cylinders: 120, SectorsPerTrack: 200},
	})
	f := func(a, b uint32) bool {
		la := int64(a) % g.TotalSectors()
		lb := int64(b) % g.TotalSectors()
		if la > lb {
			la, lb = lb, la
		}
		ca, cb := g.CylinderOf(la), g.CylinderOf(lb)
		return ca <= cb && ca >= 0 && cb < g.Cylinders()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperModelsSanity(t *testing.T) {
	for _, m := range []*Model{IBMDDYS36950(), WD200BB()} {
		outer := m.MediaRateAt(0)
		inner := m.MediaRateAt(m.Geo.TotalSectors() - 1)
		if outer <= inner {
			t.Errorf("%s: outer rate %.1f <= inner rate %.1f (no ZCAV)", m.Name, outer, inner)
		}
		ratio := outer / inner
		if ratio < 1.3 || ratio > 2.2 {
			t.Errorf("%s: ZCAV ratio %.2f outside the paper's 2:3..1:2 band", m.Name, ratio)
		}
		// Seek curve must be monotonic and pinned at the endpoints.
		if m.SeekTime(0, 0) != 0 {
			t.Errorf("%s: zero-distance seek nonzero", m.Name)
		}
		if got := m.SeekTime(0, 1); got != m.SeekSingle {
			t.Errorf("%s: single seek = %v, want %v", m.Name, got, m.SeekSingle)
		}
		full := m.SeekTime(0, m.Geo.Cylinders())
		const tol = 10 * time.Microsecond
		if diff := full - m.SeekFull; diff < -tol || diff > tol {
			t.Errorf("%s: full seek = %v, want %v", m.Name, full, m.SeekFull)
		}
		prev := m.SeekTime(0, 1)
		for d := 2; d < m.Geo.Cylinders(); d += m.Geo.Cylinders() / 50 {
			cur := m.SeekTime(0, d)
			if cur < prev {
				t.Errorf("%s: seek curve decreasing at distance %d", m.Name, d)
				break
			}
			prev = cur
		}
	}
}

func TestModelCapacities(t *testing.T) {
	scsi := IBMDDYS36950()
	gb := float64(scsi.Geo.TotalBytes()) / 1e9
	if gb < 30 || gb > 45 {
		t.Errorf("SCSI capacity %.1f GB, want ~36.9", gb)
	}
	ide := WD200BB()
	gb = float64(ide.Geo.TotalBytes()) / 1e9
	if gb < 15 || gb > 25 {
		t.Errorf("IDE capacity %.1f GB, want ~20", gb)
	}
}

func TestMediaRatesMatchPaperBallpark(t *testing.T) {
	scsi := IBMDDYS36950()
	if r := scsi.MediaRateAt(0) / 1e6; r < 30 || r > 36 {
		t.Errorf("SCSI outer rate %.1f MB/s, want ~33", r)
	}
	ide := WD200BB()
	if r := ide.MediaRateAt(0) / 1e6; r < 38 || r > 45 {
		t.Errorf("IDE outer rate %.1f MB/s, want ~41", r)
	}
}
