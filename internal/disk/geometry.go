// Package disk models a zoned (ZCAV) disk drive at the level the paper's
// experiments depend on: multi-zone geometry with higher transfer rates
// on outer cylinders, a piecewise seek-time curve, rotational latency,
// an optional on-disk tagged command queue that reorders requests, and a
// host driver that couples a pluggable kernel scheduler to the device.
package disk

import "fmt"

// SectorSize is the fixed sector size in bytes.
const SectorSize = 512

// Zone is a contiguous run of cylinders sharing a sectors-per-track
// count. Zones are listed from the outermost (fastest) inward.
type Zone struct {
	Cylinders       int // number of cylinders in the zone
	SectorsPerTrack int
}

// Geometry describes a zoned drive: cylinders grouped into zones, with a
// fixed head (surface) count. Logical block addresses are laid out
// cylinder-by-cylinder from the outermost zone inward, which is how
// drives of the paper's era numbered blocks — so low LBAs (partition 1)
// see the highest media rate.
type Geometry struct {
	Heads int
	Zones []Zone

	// derived
	totalCyls    int
	totalSectors int64
	zoneStartCyl []int   // first cylinder of each zone
	zoneStartLBA []int64 // first LBA of each zone
}

// NewGeometry validates and finishes a geometry.
func NewGeometry(heads int, zones []Zone) (*Geometry, error) {
	if heads <= 0 {
		return nil, fmt.Errorf("disk: heads must be positive, got %d", heads)
	}
	if len(zones) == 0 {
		return nil, fmt.Errorf("disk: geometry needs at least one zone")
	}
	g := &Geometry{Heads: heads, Zones: zones}
	g.zoneStartCyl = make([]int, len(zones))
	g.zoneStartLBA = make([]int64, len(zones))
	cyl := 0
	var lba int64
	for i, z := range zones {
		if z.Cylinders <= 0 || z.SectorsPerTrack <= 0 {
			return nil, fmt.Errorf("disk: zone %d has non-positive size", i)
		}
		g.zoneStartCyl[i] = cyl
		g.zoneStartLBA[i] = lba
		cyl += z.Cylinders
		lba += int64(z.Cylinders) * int64(heads) * int64(z.SectorsPerTrack)
	}
	g.totalCyls = cyl
	g.totalSectors = lba
	return g, nil
}

// MustGeometry is NewGeometry that panics on error; for static models.
func MustGeometry(heads int, zones []Zone) *Geometry {
	g, err := NewGeometry(heads, zones)
	if err != nil {
		panic(err)
	}
	return g
}

// TotalSectors reports the drive capacity in sectors.
func (g *Geometry) TotalSectors() int64 { return g.totalSectors }

// TotalBytes reports the drive capacity in bytes.
func (g *Geometry) TotalBytes() int64 { return g.totalSectors * SectorSize }

// Cylinders reports the total cylinder count.
func (g *Geometry) Cylinders() int { return g.totalCyls }

// zoneOfLBA returns the index of the zone containing lba.
func (g *Geometry) zoneOfLBA(lba int64) int {
	lo, hi := 0, len(g.Zones)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.zoneStartLBA[mid] <= lba {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// CylinderOf maps an LBA to its cylinder number.
func (g *Geometry) CylinderOf(lba int64) int {
	if lba < 0 || lba >= g.totalSectors {
		panic(fmt.Sprintf("disk: LBA %d out of range [0,%d)", lba, g.totalSectors))
	}
	zi := g.zoneOfLBA(lba)
	z := g.Zones[zi]
	perCyl := int64(g.Heads) * int64(z.SectorsPerTrack)
	return g.zoneStartCyl[zi] + int((lba-g.zoneStartLBA[zi])/perCyl)
}

// SectorsPerTrackAt reports the sectors per track for the zone holding lba.
func (g *Geometry) SectorsPerTrackAt(lba int64) int {
	return g.Zones[g.zoneOfLBA(lba)].SectorsPerTrack
}

// LBAOfCylinder returns the first LBA of cylinder c.
func (g *Geometry) LBAOfCylinder(c int) int64 {
	if c < 0 || c >= g.totalCyls {
		panic(fmt.Sprintf("disk: cylinder %d out of range [0,%d)", c, g.totalCyls))
	}
	zi := 0
	for zi+1 < len(g.Zones) && g.zoneStartCyl[zi+1] <= c {
		zi++
	}
	z := g.Zones[zi]
	perCyl := int64(g.Heads) * int64(z.SectorsPerTrack)
	return g.zoneStartLBA[zi] + int64(c-g.zoneStartCyl[zi])*perCyl
}

// Partition is a contiguous LBA range on a drive. The paper divides each
// test disk into four equal partitions, numbered 1 (outermost) to 4
// (innermost).
type Partition struct {
	Name     string
	StartLBA int64
	Sectors  int64
}

// Bytes reports the partition size in bytes.
func (p Partition) Bytes() int64 { return p.Sectors * SectorSize }

// QuarterPartitions splits the drive into four equal partitions named
// prefix+"1" .. prefix+"4", outermost first — the paper's scsi1..scsi4 /
// ide1..ide4 layout.
func (g *Geometry) QuarterPartitions(prefix string) [4]Partition {
	var out [4]Partition
	quarter := g.totalSectors / 4
	for i := 0; i < 4; i++ {
		out[i] = Partition{
			Name:     fmt.Sprintf("%s%d", prefix, i+1),
			StartLBA: int64(i) * quarter,
			Sectors:  quarter,
		}
	}
	return out
}
