package bench

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"
)

// EnvMeta identifies the environment a process runs in: the exact tree
// the binary was built from and the machine shape the numbers depend
// on. It is the part of RunMeta that is not specific to a benchmark
// sweep, so the server's /statsz can reuse it to make a scraped
// snapshot self-identifying the way Artifacts already are.
type EnvMeta struct {
	GitRev     string `json:"git_rev,omitempty"`
	GitDirty   bool   `json:"git_dirty,omitempty"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Hostname   string `json:"hostname,omitempty"`
	Timestamp  string `json:"timestamp"`
}

// RunMeta identifies one nfsbench invocation precisely enough to
// reproduce it: the environment plus the sweep parameters. It is
// embedded in every JSON artifact so a result file is self-describing.
// EnvMeta is embedded anonymously, so the JSON layout is unchanged from
// when its fields lived here directly.
type RunMeta struct {
	EnvMeta
	Seed        int64    `json:"seed"`
	Runs        int      `json:"runs"`
	Scale       int      `json:"scale"`
	Experiments []string `json:"experiments"`
}

// Artifact is the JSON document nfsbench -json writes: the run's
// metadata plus every experiment's result.
type Artifact struct {
	Meta    RunMeta   `json:"meta"`
	Results []*Result `json:"results"`
}

// ResultByID finds a result by its experiment ID.
func (a *Artifact) ResultByID(id string) (*Result, bool) {
	for _, r := range a.Results {
		if r.ID == id {
			return r, true
		}
	}
	return nil, false
}

// CollectEnvMeta gathers environment metadata. Git queries run
// best-effort (a binary executed outside its repo simply omits the
// revision).
func CollectEnvMeta() EnvMeta {
	m := EnvMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Timestamp:  time.Now().Format(time.RFC3339),
	}
	if host, err := os.Hostname(); err == nil {
		m.Hostname = host
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		m.GitRev = strings.TrimSpace(string(out))
		if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
			m.GitDirty = len(strings.TrimSpace(string(status))) > 0
		}
	}
	return m
}

// CollectMeta gathers run metadata for a benchmark invocation.
func CollectMeta(p Params, experiments []string) RunMeta {
	p.fill()
	return RunMeta{
		EnvMeta:     CollectEnvMeta(),
		Seed:        p.Seed,
		Runs:        p.Runs,
		Scale:       p.Scale,
		Experiments: experiments,
	}
}

// startCellProfile begins a CPU profile for one experiment cell,
// written as <ProfileDir>/<cell>.cpu.pprof, and returns the stop
// function. With ProfileDir unset (or on any setup error) it is a
// no-op: profiling must never fail a measurement. Only one CPU profile
// can run at a time, so cells call this strictly sequentially.
func (p Params) startCellProfile(cell string) func() {
	if p.ProfileDir == "" {
		return func() {}
	}
	f, err := os.Create(filepath.Join(p.ProfileDir, cell+".cpu.pprof"))
	if err != nil {
		return func() {}
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return func() {}
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}
