package bench

import (
	"strings"
	"testing"
)

// TestClusterScaleEndToEnd runs the scale-out experiment small and
// checks its acceptance shape: every cell produced load with zero
// failed ops (the cells self-assert that), the drain note reports the
// churn numbers, and the merged per-shard balance made it into the
// report.
func TestClusterScaleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster experiment")
	}
	r, err := ClusterScale(Params{Runs: 1, Scale: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.X) != len(clusterShardCounts) {
		t.Fatalf("X = %v", r.X)
	}
	for _, s := range r.Series {
		if len(s.Samples) != len(r.X) {
			t.Fatalf("series %q has %d samples for %d cells", s.Label, len(s.Samples), len(r.X))
		}
		for i, sm := range s.Samples {
			if sm.Mean <= 0 {
				t.Fatalf("series %q cell %d: mean %.2f", s.Label, r.X[i], sm.Mean)
			}
		}
	}
	var drainNote, balanceNote bool
	for _, n := range r.Notes {
		if strings.Contains(n, "drain mid-replay") && strings.Contains(n, "0 failed ops") {
			drainNote = true
		}
		if strings.Contains(n, "per-shard executed") && strings.Contains(n, "=") {
			balanceNote = true
		}
	}
	if !drainNote {
		t.Fatalf("drain note missing: %q", r.Notes)
	}
	if !balanceNote {
		t.Fatalf("balance note missing: %q", r.Notes)
	}
}
